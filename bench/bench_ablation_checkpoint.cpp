// Ablation A2 — relayer checkpoint lag: a fresher checkpoint shortens
// dispute evidence (less gas) but risks anchoring past a disputed tx; a
// staler one lengthens every evidence chain. Measures merchant-evidence
// gas as a function of how far the anchor trails the tip at dispute time.
#include <cstdio>

#include "bench_table.h"
#include "btc/pow.h"
#include "btcfast/customer.h"
#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcsim/scenario.h"

using namespace btcfast;
using namespace btcfast::core;

namespace {

constexpr std::uint64_t kHourMs = 60ULL * 60 * 1000;

}  // namespace

int main() {
  std::printf("# Ablation A2 — checkpoint lag vs dispute evidence cost\n");
  std::printf("# evidence must span anchor..tip; the anchor trails the tip by `lag`\n\n");

  bench::Table t({"lag (blocks)", "evidence headers", "merchant evidence gas",
                  "evidence bytes"});

  for (std::uint32_t lag : {3u, 6u, 12u, 24u, 48u, 96u}) {
    btc::ChainParams params = btc::ChainParams::regtest();
    btc::Chain chain(params);
    sim::Party customer_party = sim::Party::make(11);
    sim::Party merchant_party = sim::Party::make(22);
    for (const auto& b : sim::build_funding_chain(params, {customer_party.script}, 2)) {
      (void)chain.submit_block(b);
    }

    auto mine = [&] {
      btc::Block b;
      b.header.prev_hash = chain.tip_hash();
      b.header.time = chain.tip_header().time + 600;
      b.header.bits = params.genesis_bits;
      btc::Transaction cb;
      btc::TxIn in;
      in.prevout.index = 0xffffffff;
      in.sequence = chain.height() + 1;
      cb.inputs.push_back(in);
      cb.outputs.push_back(btc::TxOut{params.subsidy, merchant_party.script});
      b.txs.push_back(cb);
      (void)btc::mine_block(b, params);
      (void)chain.submit_block(b);
    };

    // The anchor is the tip now; the chain then grows `lag` blocks before
    // the dispute evidence is cut.
    PayJudgerConfig cfg;
    cfg.pow_limit = params.pow_limit;
    cfg.initial_checkpoint = chain.tip_hash();
    cfg.required_depth = 3;
    cfg.evidence_window_ms = kHourMs;
    cfg.min_collateral = 1'000;
    cfg.dispute_bond = 500;
    psc::PscChain psc;
    const auto judger = psc.deploy("payjudger", std::make_unique<PayJudger>(cfg));
    const auto customer_psc = psc::Address::from_label("customer");
    const auto merchant_psc = psc::Address::from_label("merchant");
    psc.mint(customer_psc, 10'000'000'000ULL);
    psc.mint(merchant_psc, 10'000'000'000ULL);
    CustomerWallet wallet(customer_party, customer_psc, 1);
    (void)psc.execute_now(wallet.make_deposit_tx(judger, 200'000, 100 * kHourMs), 0);

    const auto coins = sim::find_spendable(chain, customer_party.script);
    const auto [coin_op, coin] = coins.front();
    Invoice inv;
    inv.amount_sat = coin.out.value / 2;
    inv.compensation = 50'000;
    inv.pay_to = merchant_party.script;
    inv.merchant_psc = merchant_psc;
    inv.expires_at_ms = 100 * kHourMs;
    FastPayPackage pkg = wallet.create_fastpay(inv, coin_op, coin.out.value, 0, 100 * kHourMs);

    psc::PscTx open;
    open.from = merchant_psc;
    open.to = judger;
    open.value = cfg.dispute_bond;
    open.method = "openDispute";
    open.args = encode_open_dispute_args(1, pkg.binding);
    (void)psc.execute_now(open, kHourMs);

    for (std::uint32_t i = 0; i < lag; ++i) mine();

    const auto headers = *headers_since(chain, cfg.initial_checkpoint);
    psc::PscTx mev;
    mev.from = merchant_psc;
    mev.to = judger;
    mev.method = "submitMerchantEvidence";
    mev.args = encode_merchant_evidence_args(1, headers);
    mev.gas_limit = 30'000'000;
    const auto r = psc.execute_now(mev, kHourMs + 1);

    t.row({std::to_string(lag), std::to_string(headers.size()), bench::fmt_u(r.gas_used),
           std::to_string(mev.args.size())});
  }
  t.print();

  std::printf(
      "\n# Reading: gas is ~1.7k per header of lag, so even a very conservative\n"
      "# 96-block (16 h) checkpoint keeps a dispute under ~200k gas. The\n"
      "# PayJudger caps evidence at 144 headers (one day) as a DoS bound.\n");

  bench::JsonDoc doc;
  doc.set("experiment", "ablation_checkpoint");
  doc.add_table("checkpoint_lag", t);
  doc.write("BENCH_ablation_checkpoint.json");
  return 0;
}
