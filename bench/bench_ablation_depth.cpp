// Ablation A1 — judgment depth k: the security / dispute-cost / latency
// trade-off behind PayJudger's required_depth parameter.
#include <cstdio>

#include "analysis/doublespend.h"
#include "analysis/attack_cost.h"
#include "bench_table.h"
#include "btc/pow.h"
#include "btcfast/customer.h"
#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcsim/scenario.h"

using namespace btcfast;
using namespace btcfast::core;

namespace {

constexpr std::uint64_t kHourMs = 60ULL * 60 * 1000;

/// Measured gas for a customer evidence submission at depth k.
psc::Gas measure_customer_evidence_gas(std::uint32_t k) {
  btc::ChainParams params = btc::ChainParams::regtest();
  btc::Chain chain(params);
  sim::Party customer_party = sim::Party::make(11);
  sim::Party merchant_party = sim::Party::make(22);
  for (const auto& b : sim::build_funding_chain(params, {customer_party.script}, 2)) {
    (void)chain.submit_block(b);
  }
  PayJudgerConfig cfg;
  cfg.pow_limit = params.pow_limit;
  cfg.initial_checkpoint = chain.tip_hash();
  cfg.required_depth = k;
  cfg.evidence_window_ms = kHourMs;
  cfg.min_collateral = 1'000;
  cfg.dispute_bond = 500;
  psc::PscChain psc;
  const auto judger = psc.deploy("payjudger", std::make_unique<PayJudger>(cfg));
  const auto customer_psc = psc::Address::from_label("customer");
  const auto merchant_psc = psc::Address::from_label("merchant");
  psc.mint(customer_psc, 1'000'000'000);
  psc.mint(merchant_psc, 1'000'000'000);
  CustomerWallet wallet(customer_party, customer_psc, 1);
  (void)psc.execute_now(wallet.make_deposit_tx(judger, 200'000, 100 * kHourMs), 0);

  const auto coins = sim::find_spendable(chain, customer_party.script);
  const auto [coin_op, coin] = coins.front();
  Invoice inv;
  inv.amount_sat = coin.out.value / 2;
  inv.compensation = 50'000;
  inv.pay_to = merchant_party.script;
  inv.merchant_psc = merchant_psc;
  inv.expires_at_ms = 100 * kHourMs;
  FastPayPackage pkg = wallet.create_fastpay(inv, coin_op, coin.out.value, 0, 100 * kHourMs);

  psc::PscTx open;
  open.from = merchant_psc;
  open.to = judger;
  open.value = cfg.dispute_bond;
  open.method = "openDispute";
  open.args = encode_open_dispute_args(1, pkg.binding);
  (void)psc.execute_now(open, kHourMs);

  auto mine = [&](std::vector<btc::Transaction> txs) {
    btc::Block b;
    b.header.prev_hash = chain.tip_hash();
    b.header.time = chain.tip_header().time + 600;
    b.header.bits = params.genesis_bits;
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = chain.height() + 1;
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, merchant_party.script});
    b.txs.push_back(cb);
    for (auto& tx : txs) b.txs.push_back(std::move(tx));
    (void)btc::mine_block(b, params);
    (void)chain.submit_block(b);
  };
  mine({pkg.payment_tx});
  for (std::uint32_t i = 1; i < k; ++i) mine({});

  const auto ev =
      build_inclusion_evidence(chain, cfg.initial_checkpoint, pkg.payment_tx.txid(), k);
  psc::PscTx cev;
  cev.from = customer_psc;
  cev.to = judger;
  cev.method = "submitCustomerEvidence";
  cev.args = encode_customer_evidence_args(1, ev->headers, ev->proof, ev->header_index);
  cev.gas_limit = 20'000'000;
  return psc.execute_now(cev, kHourMs + 2).gas_used;
}

}  // namespace

int main() {
  std::printf("# Ablation A1 — judgment depth k: security vs cost vs latency\n\n");

  const auto econ = analysis::MainnetReference::late2020();
  bench::Table t({"k", "forgery risk q=0.10", "forgery risk q=0.25", "attack cost (USD)",
                  "customer evidence gas", "min dispute latency"});
  for (std::uint32_t k : {1u, 2u, 3u, 6u, 9u, 12u}) {
    const psc::Gas gas = measure_customer_evidence_gas(k);
    // The customer cannot prove before the tx is k deep: k block intervals.
    const double latency_min = static_cast<double>(k) * 10.0;
    t.row({std::to_string(k), bench::fmt_sci(analysis::rosenfeld_probability(0.10, k)),
           bench::fmt_sci(analysis::rosenfeld_probability(0.25, k)),
           bench::fmt(analysis::forgery_cost_usd(econ, k), 0), bench::fmt_u(gas),
           bench::fmt(latency_min, 0) + " min"});
  }
  t.print();

  std::printf(
      "\n# Reading: security improves exponentially in k while evidence gas and\n"
      "# the customer's minimum defense latency grow only linearly — k=6 is the\n"
      "# sweet spot the paper adopts; larger escrows justify larger k (see E6).\n");

  bench::JsonDoc doc;
  doc.set("experiment", "ablation_depth");
  doc.add_table("depth", t);
  doc.write("BENCH_ablation_depth.json");
  return 0;
}
