// Ablation A3 — optimistic vs reserved exposure mode: the paper's
// zero-fee fast path trusts merchants to track their own exposure; the
// reserved extension locks exposure on-chain per payment. This harness
// runs both modes end-to-end and prices the difference.
#include <cstdio>

#include "analysis/economics.h"
#include "bench_table.h"
#include "btcfast/orchestrator.h"

using namespace btcfast;
using namespace btcfast::core;

namespace {

struct ModeResult {
  std::size_t payments = 0;
  std::size_t settled = 0;
  psc::Gas reserve_gas = 0;
  psc::Gas release_gas = 0;
  psc::Value reserved_peak = 0;
};

ModeResult run_mode(bool reserved) {
  DeploymentConfig cfg;
  cfg.seed = 7100 + (reserved ? 1 : 0);
  cfg.reserve_payments = reserved;
  cfg.settle_confirmations = 2;
  cfg.compensation = 400'000;
  cfg.funded_coins = 4;
  Deployment dep(cfg);

  ModeResult res;
  for (int i = 0; i < 3; ++i) {
    const auto r = dep.perform_fastpay(3 * btc::kCoin);
    if (r.accepted) ++res.payments;
    dep.run_for(20 * kMinute);
    if (const auto v = dep.escrow_view(); v && v->reserved > res.reserved_peak) {
      res.reserved_peak = v->reserved;
    }
  }
  dep.run_for(2 * kHour);

  res.settled = dep.summarize().payments_settled;
  for (const auto& r : dep.receipts_for("reservePayment")) res.reserve_gas += r.gas_used;
  for (const auto& r : dep.receipts_for("releaseReservation")) res.release_gas += r.gas_used;
  return res;
}

}  // namespace

int main() {
  std::printf("# Ablation A3 — optimistic vs reserved exposure mode (3 payments)\n\n");

  const auto gas_ref = analysis::GasReference::late2020();
  const ModeResult optimistic = run_mode(false);
  const ModeResult reserved = run_mode(true);

  bench::Table t({"mode", "payments settled", "reserve+release gas", "USD per payment",
                  "peak on-chain reserved", "cross-merchant safety"});
  t.row({"optimistic (paper)", std::to_string(optimistic.settled), "0", "0.00000",
         bench::fmt_u(optimistic.reserved_peak), "merchant-side only"});
  const psc::Gas per_payment =
      reserved.payments > 0
          ? (reserved.reserve_gas + reserved.release_gas) / reserved.payments
          : 0;
  t.row({"reserved (extension)", std::to_string(reserved.settled),
         bench::fmt_u(reserved.reserve_gas + reserved.release_gas),
         bench::fmt(gas_ref.gas_to_usd(per_payment), 5), bench::fmt_u(reserved.reserved_peak),
         "contract-enforced"});
  t.print();

  std::printf(
      "\n# Reading: contract-enforced exposure costs ~%llu gas (~$%.2f) per payment\n"
      "# — it trades away the 'no per-payment fee' headline for protection against\n"
      "# a customer double-booking one escrow across many merchants at once.\n",
      static_cast<unsigned long long>(per_payment), gas_ref.gas_to_usd(per_payment));

  bench::JsonDoc doc;
  doc.set("experiment", "ablation_reserve");
  doc.add_table("reserve", t);
  doc.write("BENCH_ablation_reserve.json");
  return 0;
}
