// E10 — marketplace-scale simulation: many customers (a fraction
// dishonest, race-attacking every payment) and merchants sharing one
// PayJudger over a simulated business day. The system-level bottom line:
// sub-second acceptance at scale, and every successfully double-spent
// payment converted into an escrow compensation.
#include <cstdio>

#include "bench_table.h"
#include "btcfast/marketplace.h"

int main() {
  using namespace btcfast;
  using namespace btcfast::core;

  std::printf("# E10 — marketplace simulation (12 simulated hours + 18 h dispute drain)\n\n");

  bench::Table t({"population", "attempted", "accepted", "settled", "race attacks",
                  "DS landed", "disputes", "merch wins", "cust wins", "made whole?",
                  "mean accept us"});

  auto run = [&](const char* label, std::uint32_t dishonest, std::uint64_t seed) {
    MarketplaceConfig cfg;
    cfg.customers = 4;
    cfg.merchants = 3;
    cfg.dishonest_customers = dishonest;
    cfg.payments_per_hour_per_customer = 1.0;
    cfg.duration = 12LL * 60 * 60 * 1000;
    cfg.seed = seed;
    const MarketplaceResult r = run_marketplace(cfg);
    t.row({label, std::to_string(r.payments_attempted), std::to_string(r.payments_accepted),
           std::to_string(r.payments_settled), std::to_string(r.race_attacks),
           std::to_string(r.double_spends_landed), std::to_string(r.disputes_opened),
           std::to_string(r.judged_for_merchant), std::to_string(r.judged_for_customer),
           r.merchants_made_whole ? "yes" : "NO", bench::fmt(r.mean_decision_micros, 0)});
  };

  run("all honest", 0, 11);
  run("1/4 dishonest", 1, 12);
  run("2/4 dishonest", 2, 13);

  t.print();

  std::printf(
      "\n# Reading: race attacks (conflict broadcast to miners) sometimes beat the\n"
      "# payment onto the chain; each such loss triggers a dispute the merchant\n"
      "# wins — merchants end the day made whole, honest traffic never touches\n"
      "# the contract, and acceptance latency is unchanged by scale.\n");

  bench::JsonDoc doc;
  doc.set("experiment", "e10_marketplace");
  doc.add_table("marketplace", t);
  doc.write("BENCH_e10.json");
  return 0;
}
