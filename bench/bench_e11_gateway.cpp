// E11 — Gateway serving throughput: N customer threads hammer the
// sharded fast-pay gateway (wire decode -> micro-batched verify ->
// reentrant evaluate -> per-shard reservation ledger) against M escrows,
// measuring sustained accepts/s, tail latency and the per-stage time
// breakdown, plus the admission-control shed behaviour under deliberate
// overload. Emits BENCH_e11_gateway.json.
//
// Workload methodology (the old fixed-256-payment run saturated in
// ~90 ms and conflated setup with steady state):
//   - the payment count scales with the thread count (per_thread each),
//     so every configuration runs long enough to measure;
//   - a warm-up slice runs first and the stats are reset after it, so
//     the table reports steady state, not cache/allocator warm-up;
//   - every frame carries unique signatures, so steady state still pays
//     real (batched) verification work, not just cache hits.
//
// The simulator is quiescent while customer threads run: the concurrent
// stages only read node state, and the per-shard ledgers are the only
// writers — exactly the serving model documented in DESIGN.md §10.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_table.h"
#include "btcfast/orchestrator.h"
#include "common/thread_pool.h"
#include "crypto/sigcache.h"
#include "gateway/pipeline.h"
#include "gateway/wire.h"
#include "store/recovery.h"

using namespace btcfast;

namespace {

double elapsed_us(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(b - a).count();
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

constexpr gateway::Stage kStages[] = {
    gateway::Stage::kDecode, gateway::Stage::kVerify,  gateway::Stage::kEvaluate,
    gateway::Stage::kReserve, gateway::Stage::kWal,    gateway::Stage::kCommit,
    gateway::Stage::kRespond,
};

}  // namespace

int main() {
  // BTCFAST_GATEWAY_SMOKE=1 shrinks the run for the tier-1 smoke gate.
  const bool smoke = std::getenv("BTCFAST_GATEWAY_SMOKE") != nullptr;
  const std::size_t kEscrows = smoke ? 4 : 8;
  const std::vector<std::size_t> thread_counts = smoke ? std::vector<std::size_t>{1, 8}
                                                       : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t max_threads = thread_counts.back();
  // Steady-state payments grow with the thread count so a 8-thread run
  // has 8x the work of a 1-thread run instead of finishing 8x sooner.
  const std::size_t per_thread = env_size("BTCFAST_E11_PER_THREAD", smoke ? 32 : 512);
  const std::size_t kWarmup = smoke ? 32 : 128;
  const std::size_t kSteadyMax = per_thread * max_threads;
  const std::size_t kPayments = kWarmup + kSteadyMax;  // distinct frames prebuilt
  const std::size_t per_escrow = (kPayments + kEscrows - 1) / kEscrows;

  std::printf("# E11 — gateway serving throughput (%zu/thread + %zu warm-up, %zu escrows)\n\n",
              per_thread, kWarmup, kEscrows);

  core::DeploymentConfig cfg;
  cfg.seed = 11;
  cfg.funded_coins = static_cast<btc::Amount>(kPayments);
  // Collateral sized so the largest run fits each escrow.
  cfg.collateral = cfg.compensation * static_cast<psc::Value>(per_escrow + 1);
  // Low difficulty: funding thousands of coins must cost microseconds of
  // PoW per block, not milliseconds (same trick as the scenario fuzzer).
  cfg.params.pow_limit = crypto::U256::one() << 250;
  cfg.params.genesis_bits = btc::target_to_bits(cfg.params.pow_limit);
  core::Deployment dep(cfg);

  const auto now = static_cast<std::uint64_t>(dep.simulator().now());
  const auto& judger = dep.judger_address();

  // Escrow 1 is the deployment's own; stand up escrows 2..M for the same
  // customer identity and fund them directly on the PSC chain.
  std::vector<std::unique_ptr<core::CustomerWallet>> wallets;
  dep.psc().mint(dep.customer_psc_address(),
                 cfg.collateral * static_cast<psc::Value>(kEscrows));
  for (std::size_t e = 2; e <= kEscrows; ++e) {
    auto w = std::make_unique<core::CustomerWallet>(dep.customer().btc_identity(),
                                                    dep.customer_psc_address(),
                                                    static_cast<core::EscrowId>(e));
    const auto receipt =
        dep.psc().execute_now(w->make_deposit_tx(judger, cfg.collateral,
                                                 cfg.escrow_unlock_delay_ms),
                              now);
    if (!receipt.success) {
      std::fprintf(stderr, "escrow %zu deposit failed: %s\n", e, receipt.revert_reason.c_str());
      return 1;
    }
    wallets.push_back(std::move(w));
  }

  // Pre-build one wire frame per payment, round-robin across escrows.
  // Distinct coins and nonces: every binding/input signature is unique,
  // so steady state takes real verification misses. Frames [0, kWarmup)
  // are the warm-up slice; each run then serves the next
  // per_thread * threads frames.
  const auto coins =
      sim::find_spendable(dep.customer_node().chain(), dep.customer().btc_identity().script);
  if (coins.size() < kPayments) {
    std::fprintf(stderr, "only %zu spendable coins (need %zu)\n", coins.size(), kPayments);
    return 1;
  }
  std::vector<core::Invoice> invoices;
  std::vector<Bytes> frames;
  for (std::size_t i = 0; i < kPayments; ++i) {
    core::Invoice inv =
        dep.merchant().make_invoice(2 * btc::kCoin, cfg.compensation, now, 60ULL * 60 * 1000);
    const std::size_t e = i % kEscrows;
    core::FastPayPackage pkg =
        (e == 0 ? dep.customer() : *wallets[e - 1])
            .create_fastpay(inv, coins[i].first, coins[i].second.out.value, now,
                            cfg.binding_ttl_ms);
    gateway::SubmitFastPayRequest req;
    req.invoice_id = inv.invoice_id;
    req.package = std::move(pkg);
    frames.push_back(gateway::make_frame(gateway::MsgType::kSubmitFastPay,
                                         /*request_id=*/i + 1, req.serialize()));
    invoices.push_back(std::move(inv));
  }

  auto run = [&](std::size_t threads, std::size_t max_inflight, double* out_wall_us,
                 std::size_t* out_steady, store::DurableStore* store = nullptr) {
    gateway::GatewayConfig gwcfg;
    gwcfg.max_inflight = max_inflight;
    // BTCFAST_PUBKEY_PRECOMP_CAP bounds (or, at 0, disables) the
    // per-pubkey GLV precomp cache, so runs can compare cached vs
    // uncached verify without a rebuild.
    gwcfg.pubkey_precomp_max =
        env_size("BTCFAST_PUBKEY_PRECOMP_CAP", gwcfg.pubkey_precomp_max);
    if (const char* cap = std::getenv("BTCFAST_PUBKEY_PRECOMP_CAP");
        cap != nullptr && cap[0] == '0' && cap[1] == '\0') {
      gwcfg.pubkey_precomp_max = 0;
    }
    auto gw = std::make_unique<gateway::Gateway>(dep.merchant(), common::ThreadPool::global(),
                                                 gwcfg);
    if (store != nullptr) gw->attach_store(store);
    for (const auto& inv : invoices) gw->register_invoice(inv);
    for (std::size_t e = 1; e <= kEscrows; ++e) {
      gw->track_escrow(static_cast<core::EscrowId>(e));
    }
    // Cold caches per run so thread counts are comparable: the sig cache
    // replays and the per-pubkey precomp tables both reset.
    crypto::SigCache::global().clear();
    crypto::PubkeyPrecompCache::global().clear();

    const std::size_t steady = per_thread * threads;
    *out_steady = steady;
    auto serve_slice = [&](std::size_t begin, std::size_t count) {
      std::vector<std::thread> customers;
      for (std::size_t t = 0; t < threads; ++t) {
        customers.emplace_back([&, t]() {
          // Interleaved slices: every thread touches every escrow, which
          // is the worst case for shard/stripe contention.
          for (std::size_t i = t; i < count; i += threads) {
            (void)gw->serve(frames[begin + i], now);
          }
        });
      }
      for (auto& c : customers) c.join();
    };

    // Warm-up, then reset so the measured window is steady state only.
    serve_slice(0, kWarmup);
    gw->reset_stats();

    const auto t0 = std::chrono::steady_clock::now();
    serve_slice(kWarmup, steady);
    const auto t1 = std::chrono::steady_clock::now();
    *out_wall_us = elapsed_us(t0, t1);
    return gw;
  };

  bench::Table throughput({"threads", "payments", "accepts", "rejects", "sheds", "accepts/s",
                           "p50 (us)", "p99 (us)"});
  bench::Table stage_table({"threads", "stage", "count", "mean (us)", "p50 (us)", "p99 (us)"});
  bool coverage_ok = true;
  double accepts_s_first = 0, accepts_s_last = 0, p99_last = 0;
  std::uint64_t batcher_batches = 0, batcher_coalesced = 0;
  std::uint64_t sig_hits = 0, sig_misses = 0;
  std::uint64_t pre_hits = 0, pre_misses = 0, pre_insertions = 0, pre_evictions = 0;
  for (const std::size_t threads : thread_counts) {
    double wall_us = 0;
    std::size_t steady = 0;
    const auto gw = run(threads, /*max_inflight=*/1024, &wall_us, &steady);
    const auto st = gw->stats();
    const double accepts_s = st.accepts() / (wall_us / 1e6);
    if (threads == thread_counts.front()) accepts_s_first = accepts_s;
    if (threads == max_threads) {
      accepts_s_last = accepts_s;
      p99_last = st.latency().percentile_us(99);
      batcher_batches = gw->batcher().batches();
      batcher_coalesced = gw->batcher().coalesced_jobs();
      sig_hits = st.sigcache_hits();
      sig_misses = st.sigcache_misses();
      pre_hits = st.precomp_hits();
      pre_misses = st.precomp_misses();
      pre_insertions = st.precomp_insertions();
      pre_evictions = st.precomp_evictions();
    }
    throughput.row({bench::fmt_u(threads), bench::fmt_u(steady), bench::fmt_u(st.accepts()),
                    bench::fmt_u(st.rejects()), bench::fmt_u(st.sheds()),
                    bench::fmt(accepts_s, 0), bench::fmt(st.latency().percentile_us(50), 1),
                    bench::fmt(st.latency().percentile_us(99), 1)});
    for (const auto stage : kStages) {
      const auto& h = st.stage(stage);
      if (h.count() == 0) continue;
      stage_table.row({bench::fmt_u(threads), gateway::stage_name(stage), bench::fmt_u(h.count()),
                       bench::fmt(h.mean_us(), 1), bench::fmt(h.percentile_us(50), 1),
                       bench::fmt(h.percentile_us(99), 1)});
    }
    // Every steady payment fits its escrow; the ledgers must have
    // granted all of them and over-reserved none.
    for (std::size_t e = 1; e <= kEscrows; ++e) {
      const auto snap = gw->escrow_snapshot(static_cast<core::EscrowId>(e));
      if (!snap || snap->view.reserved + snap->local_reserved > snap->view.collateral) {
        coverage_ok = false;
      }
    }
    if (st.accepts() != steady) coverage_ok = false;
  }
  throughput.print();
  std::printf("\n# per-stage latency breakdown (steady state)\n");
  stage_table.print();

  const double scale_ratio = accepts_s_first > 0 ? accepts_s_last / accepts_s_first : 0;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("\n# scaling: %zu-thread / 1-thread accepts/s = %.2fx (hardware threads: %u)\n",
              max_threads, scale_ratio, hw_threads);

  // Persistence cost: the same serve loop with the durable store
  // attached — every accept WAL-commits a kReserve before its response,
  // so the delta vs the table above is the price of ack-time durability.
  bench::Table durable_table(
      {"threads", "accepts", "accepts/s", "wal appends", "fsyncs", "p99 (us)"});
  for (const std::size_t threads : {std::size_t{1}, max_threads}) {
    const auto store_dir =
        std::filesystem::temp_directory_path() /
        ("btcfast-bench-e11-store-" + std::to_string(threads) + "-" +
         std::to_string(static_cast<unsigned long>(::getpid())));
    std::filesystem::remove_all(store_dir);
    store::StoreOptions sopts;
    sopts.policy = store::FsyncPolicy::kBatch;
    auto st = store::DurableStore::open(store_dir.string(), sopts);
    if (st == nullptr) {
      std::fprintf(stderr, "cannot open durable store in %s\n", store_dir.string().c_str());
      return 1;
    }
    double wall_us = 0;
    std::size_t steady = 0;
    const auto gw = run(threads, /*max_inflight=*/1024, &wall_us, &steady, st.get());
    const auto st_stats = gw->stats();
    const double accepts_s = st_stats.accepts() / (wall_us / 1e6);
    durable_table.row({bench::fmt_u(threads), bench::fmt_u(st_stats.accepts()),
                       bench::fmt(accepts_s, 0), bench::fmt_u(st->wal_appends()),
                       bench::fmt_u(st->wal_syncs()),
                       bench::fmt(st_stats.latency().percentile_us(99), 1)});
    if (st_stats.accepts() != steady) coverage_ok = false;
    st.reset();
    std::filesystem::remove_all(store_dir);
  }
  std::printf("\n# with durable store attached (batch fsync)\n");
  durable_table.print();

  // Overload: more customer threads than admission slots — the surplus
  // must be shed with RetryAfter, not queued.
  const std::size_t overload_threads = 8;
  const std::size_t overload_inflight = 2;
  double overload_wall_us = 0;
  std::size_t overload_steady = 0;
  const auto overloaded =
      run(overload_threads, overload_inflight, &overload_wall_us, &overload_steady);
  const double overload_shed_rate = static_cast<double>(overloaded->stats().sheds()) /
                                    static_cast<double>(overload_steady);
  std::printf("\n# overload: threads=%zu max_inflight=%zu sheds=%llu (rate %.3f)\n",
              overload_threads, overload_inflight,
              static_cast<unsigned long long>(overloaded->stats().sheds()), overload_shed_rate);
  std::printf("# coverage invariant (no escrow over-reserved, all accepted): %s\n",
              coverage_ok ? "yes" : "NO");

  bench::JsonDoc doc;
  doc.set("experiment", "e11_gateway");
  doc.set("escrows", static_cast<std::uint64_t>(kEscrows));
  doc.set("per_thread_payments", static_cast<std::uint64_t>(per_thread));
  doc.set("warmup_payments", static_cast<std::uint64_t>(kWarmup));
  doc.set("shards", static_cast<std::uint64_t>(gateway::GatewayConfig{}.shards));
  doc.set("hw_threads", static_cast<std::uint64_t>(hw_threads));
  doc.set("scale_threads", static_cast<std::uint64_t>(max_threads));
  doc.set("scale_ratio", scale_ratio);
  doc.set("p99_us_at_max_threads", p99_last);
  doc.set("verify_batches", batcher_batches);
  doc.set("verify_coalesced_jobs", batcher_coalesced);
  doc.set("pubkey_precomp_cap",
          static_cast<std::uint64_t>(env_size(
              "BTCFAST_PUBKEY_PRECOMP_CAP", crypto::PubkeyPrecompCache::kDefaultMaxEntries)));
  doc.set("sigcache_hits", sig_hits);
  doc.set("sigcache_misses", sig_misses);
  doc.set("precomp_hits", pre_hits);
  doc.set("precomp_misses", pre_misses);
  doc.set("precomp_insertions", pre_insertions);
  doc.set("precomp_evictions", pre_evictions);
  doc.set("coverage_ok", coverage_ok ? "yes" : "no");
  doc.set("overload_threads", static_cast<std::uint64_t>(overload_threads));
  doc.set("overload_max_inflight", static_cast<std::uint64_t>(overload_inflight));
  doc.set("overload_sheds", overloaded->stats().sheds());
  doc.set("overload_shed_rate", overload_shed_rate);
  doc.add_table("throughput", throughput);
  doc.add_table("stage_breakdown", stage_table);
  doc.add_table("durable_throughput", durable_table);
  doc.write("BENCH_e11_gateway.json");
  return coverage_ok ? 0 : 1;
}
