// E12 — Durability cost and recovery scaling: measures what the durable
// state store charges the serving path (appends/s and commit latency
// under each fsync policy, and the group-commit amortization curve) and
// what a crash costs at restart (recovery time vs WAL length, with and
// without snapshot compaction bounding the replay suffix). Emits
// BENCH_e12_durability.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_table.h"
#include "store/recovery.h"

using namespace btcfast;

namespace {

namespace fs = std::filesystem;

double elapsed_us(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(b - a).count();
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p / 100.0 * static_cast<double>(v.size() - 1));
  return v[idx];
}

std::string scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("btcfast-bench-e12-" + tag + "-" +
                      std::to_string(static_cast<unsigned long>(::getpid())));
  fs::remove_all(p);
  return p.string();
}

/// The serving path's commonest record shape: a collateral hold.
store::StoreRecord reserve_rec(std::uint64_t rid) {
  store::StoreRecord r;
  r.kind = store::RecordKind::kReserve;
  r.reservation_id = rid;
  r.escrow_id = 1 + (rid % 8);
  r.amount = 1'000'000;
  r.expires_at_ms = 600'000 + rid;
  r.txid[0] = static_cast<std::uint8_t>(rid);
  r.txid[1] = static_cast<std::uint8_t>(rid >> 8);
  return r;
}

store::StoreRecord release_rec(std::uint64_t rid) {
  store::StoreRecord r;
  r.kind = store::RecordKind::kRelease;
  r.reservation_id = rid;
  r.cause = store::ReleaseCause::kResolved;
  return r;
}

const char* policy_name(store::FsyncPolicy p) {
  switch (p) {
    case store::FsyncPolicy::kAlways: return "always";
    case store::FsyncPolicy::kBatch: return "batch";
    case store::FsyncPolicy::kNone: return "none";
  }
  return "?";
}

}  // namespace

int main() {
  // BTCFAST_DURABILITY_SMOKE=1 shrinks the run for the tier-1 smoke gate.
  const bool smoke = std::getenv("BTCFAST_DURABILITY_SMOKE") != nullptr;

  // ------------------------------------------------- append throughput
  // One reserve/release pair per iteration (the image stays tiny, so
  // this measures the log, not apply_record), commit after every pair —
  // the ack-time durability point the gateway pays on the serving path.
  struct PolicyRun {
    store::FsyncPolicy policy;
    std::size_t pairs;
  };
  const std::vector<PolicyRun> policy_runs = {
      // fsync-per-commit is milliseconds on real disks: keep it short.
      {store::FsyncPolicy::kAlways, smoke ? std::size_t{32} : std::size_t{256}},
      {store::FsyncPolicy::kBatch, smoke ? std::size_t{512} : std::size_t{4096}},
      {store::FsyncPolicy::kNone, smoke ? std::size_t{1024} : std::size_t{16384}},
  };

  std::printf("# E12 — durable store: fsync policy cost%s\n\n", smoke ? " (smoke)" : "");

  bench::Table append_table(
      {"policy", "commits", "appends/s", "commit p50 (us)", "commit p99 (us)", "fsyncs"});
  bench::JsonDoc doc;
  doc.set("experiment", "e12_durability");
  doc.set("smoke", smoke ? "yes" : "no");

  for (const auto& run : policy_runs) {
    const std::string dir = scratch_dir(std::string("policy-") + policy_name(run.policy));
    store::StoreOptions opts;
    opts.policy = run.policy;
    opts.batch_records = 32;
    auto st = store::DurableStore::open(dir, opts);
    if (st == nullptr) {
      std::fprintf(stderr, "cannot open store in %s\n", dir.c_str());
      return 1;
    }
    std::vector<double> commit_us;
    commit_us.reserve(run.pairs);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < run.pairs; ++i) {
      (void)st->append(reserve_rec(i + 1));
      (void)st->append(release_rec(i + 1));
      const auto c0 = std::chrono::steady_clock::now();
      if (!st->commit()) {
        std::fprintf(stderr, "commit failed (policy %s)\n", policy_name(run.policy));
        return 1;
      }
      commit_us.push_back(elapsed_us(c0, std::chrono::steady_clock::now()));
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_us = elapsed_us(t0, t1);
    const double appends_s = static_cast<double>(st->wal_appends()) / (wall_us / 1e6);
    append_table.row({policy_name(run.policy), bench::fmt_u(run.pairs), bench::fmt(appends_s, 0),
                      bench::fmt(percentile(commit_us, 50), 2),
                      bench::fmt(percentile(commit_us, 99), 2), bench::fmt_u(st->wal_syncs())});
    doc.set(std::string("appends_per_s_") + policy_name(run.policy), appends_s);
    st.reset();
    fs::remove_all(dir);
  }
  append_table.print();

  // ----------------------------------------------- group-commit batching
  // kBatch amortizes one fsync across the batch: sweep the batch size at
  // a fixed record count and report per-record cost.
  const std::size_t group_records = smoke ? 1024 : 8192;
  const std::vector<std::size_t> batch_sizes = {1, 8, 32, 128};
  bench::Table group_table({"batch records", "appends/s", "fsyncs", "us/record"});
  for (const std::size_t batch : batch_sizes) {
    const std::string dir = scratch_dir("group-" + std::to_string(batch));
    store::StoreOptions opts;
    opts.policy = store::FsyncPolicy::kBatch;
    opts.batch_records = batch;
    auto st = store::DurableStore::open(dir, opts);
    if (st == nullptr) return 1;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < group_records; i += 2) {
      (void)st->append(reserve_rec(i + 1));
      (void)st->append(release_rec(i + 1));
      (void)st->commit();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_us = elapsed_us(t0, t1);
    const double appends_s = static_cast<double>(st->wal_appends()) / (wall_us / 1e6);
    group_table.row({bench::fmt_u(batch), bench::fmt(appends_s, 0), bench::fmt_u(st->wal_syncs()),
                     bench::fmt(wall_us / static_cast<double>(group_records), 3)});
    st.reset();
    fs::remove_all(dir);
  }
  std::printf("\n# group commit (batch policy, %zu records)\n", group_records);
  group_table.print();

  // ---------------------------------------------------- recovery scaling
  // Build logs of increasing length, then measure a cold open. The
  // snapshot variant compacts every 1024 records, so its replay suffix —
  // and therefore its recovery time — stays flat as the log grows.
  const std::vector<std::size_t> log_lengths =
      smoke ? std::vector<std::size_t>{256, 1024} : std::vector<std::size_t>{1024, 4096, 16384};
  bench::Table recovery_table({"records", "snapshot", "recovery (ms)", "replayed", "records/s"});
  bool recovery_ok = true;
  for (const bool with_snapshot : {false, true}) {
    for (const std::size_t len : log_lengths) {
      const std::string dir =
          scratch_dir("recover-" + std::to_string(len) + (with_snapshot ? "-snap" : "-wal"));
      store::StoreOptions opts;
      opts.policy = store::FsyncPolicy::kNone;
      opts.snapshot_every = with_snapshot ? 1024 : 0;
      {
        auto st = store::DurableStore::open(dir, opts);
        if (st == nullptr) return 1;
        for (std::uint64_t i = 0; i < len; i += 2) {
          (void)st->append(reserve_rec(i + 1));
          (void)st->append(release_rec(i + 1));
        }
        (void)st->sync();
      }
      store::RecoveryInfo info;
      const auto t0 = std::chrono::steady_clock::now();
      auto st = store::DurableStore::open(dir, opts, &info);
      const auto t1 = std::chrono::steady_clock::now();
      if (st == nullptr) {
        std::fprintf(stderr, "recovery failed: %s\n", info.error.c_str());
        return 1;
      }
      // The recovered image must be the empty book (every pair released).
      if (!st->image_copy().reservations.empty()) recovery_ok = false;
      if (with_snapshot && info.replayed_records > 1024) recovery_ok = false;
      const double ms = elapsed_us(t0, t1) / 1e3;
      const double rate = static_cast<double>(len) / (ms / 1e3);
      recovery_table.row({bench::fmt_u(len), with_snapshot ? "yes" : "no", bench::fmt(ms, 3),
                          bench::fmt_u(info.replayed_records), bench::fmt(rate, 0)});
      if (!with_snapshot && len == log_lengths.back()) {
        doc.set("recovery_ms_longest_wal", ms);
      }
      st.reset();
      fs::remove_all(dir);
    }
  }
  std::printf("\n# recovery scaling (fsync none; snapshot_every=1024 when on)\n");
  recovery_table.print();
  std::printf("\n# recovery invariant (image exact, snapshot bounds replay): %s\n",
              recovery_ok ? "yes" : "NO");

  doc.set("group_records", static_cast<std::uint64_t>(group_records));
  doc.set("recovery_ok", recovery_ok ? "yes" : "no");
  doc.add_table("append_throughput", append_table);
  doc.add_table("group_commit", group_table);
  doc.add_table("recovery_scaling", recovery_table);
  doc.write("BENCH_e12_durability.json");
  return recovery_ok ? 0 : 1;
}
