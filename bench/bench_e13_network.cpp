// E13 — TCP front-end throughput: fork-based loopback load generator
// against the epoll gateway server. Each forked client process opens a
// real TCP connection, pipelines fast-pay submissions in windows, and
// reassembles responses with the same FrameAssembler the server uses;
// latency is measured on the client side of the socket, so the numbers
// include framing, epoll dispatch, and write-back — not just
// Gateway::serve. Emits BENCH_e13_network.json.
//
// Three phases:
//   1. load  — BTCFAST_E13_CLIENTS processes x BTCFAST_E13_REQUESTS
//      submissions each, pipelined BTCFAST_E13_PIPELINE deep: accepts/s
//      and client-observed p50/p99.
//   2. abuse — one client repeatedly sends garbage magic: expects a typed
//      kError reply per offence, then a ban, then refused reconnects.
//   3. overload — a burst against a zero-admission gateway: every frame
//      must come back kRetryAfter (the shed path over real sockets).
//
// Forked clients inherit the prebuilt frames copy-on-write, report
// through a pipe (counts + raw latencies), and _exit without running
// destructors — the parent owns every real resource.
//
// BTCFAST_E13_SMOKE=1 shrinks everything for the tier-1 net-smoke gate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_table.h"
#include "btcfast/orchestrator.h"
#include "common/thread_pool.h"
#include "gateway/pipeline.h"
#include "gateway/wire.h"
#include "net/frame_assembler.h"
#include "net/server.h"

using namespace btcfast;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::atol(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct timeval tv{};
  tv.tv_sec = 30;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) return fd;
    if (errno == ECONNREFUSED) {
      ::usleep(10'000);  // listener not up yet
      continue;
    }
    break;
  }
  ::close(fd);
  return -1;
}

bool write_full(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_full(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Fixed-size head of every child's pipe report; `nlat` doubles
/// (latencies in microseconds) follow.
struct ChildReport {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;    ///< kFastPayResult (load) / kError replies (abuse)
  std::uint64_t shed = 0;  ///< kRetryAfter responses seen (retried, not final)
  std::uint64_t err = 0;   ///< kError + transport failures (load) / refused conns (abuse)
  std::uint64_t retried = 0;  ///< resubmissions after honoring a retry hint
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t nlat = 0;
};

/// Load client: submit a contiguous slice of prebuilt frames, `pipeline`
/// at a time, classifying responses by wire type. A kRetryAfter reply is
/// honored, not dropped: the frame is requeued and resubmitted after the
/// server's hinted backoff (capped so the bench stays bounded), so the
/// reported throughput is goodput — work that actually landed.
void run_load_client(std::uint16_t port, const std::vector<Bytes>& frames, std::size_t begin,
                     std::size_t count, std::size_t pipeline, int out_fd) {
  ChildReport rep;
  std::vector<double> lat;
  lat.reserve(count);
  const int fd = connect_loopback(port);
  if (fd < 0) {
    rep.err = count;
    (void)write_full(out_fd, reinterpret_cast<const std::uint8_t*>(&rep), sizeof(rep));
    return;
  }
  net::FrameAssembler assembler;
  std::uint8_t buf[65536];
  std::vector<std::size_t> work(count);
  for (std::size_t i = 0; i < count; ++i) work[i] = begin + i;
  constexpr int kRetryRounds = 10;
  constexpr std::uint64_t kMaxBackoffMs = 50;
  rep.start_ns = mono_ns();
  for (int round = 0; round <= kRetryRounds && !work.empty(); ++round) {
    if (round > 0) rep.retried += work.size();
    std::vector<std::size_t> requeue;
    std::uint64_t backoff_ms = 1;
    bool transport_dead = false;
    for (std::size_t done = 0; done < work.size();) {
      const std::size_t batch = std::min(pipeline, work.size() - done);
      Bytes out;
      for (std::size_t i = 0; i < batch; ++i) append(out, frames[work[done + i]]);
      const std::uint64_t t_send = mono_ns();
      if (!write_full(fd, out.data(), out.size())) {
        rep.err += work.size() - done;
        transport_dead = true;
        break;
      }
      rep.sent += batch;
      std::size_t got = 0;
      while (got < batch) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) break;
        if (!assembler.feed({buf, static_cast<std::size_t>(n)})) break;
        while (auto frame = assembler.next_frame()) {
          lat.push_back(static_cast<double>(mono_ns() - t_send) / 1e3);
          switch ((*frame)[4]) {
            case static_cast<std::uint8_t>(gateway::MsgType::kFastPayResult): ++rep.ok; break;
            case static_cast<std::uint8_t>(gateway::MsgType::kRetryAfter): {
              // Responses come back in submit order on this connection,
              // so the got-th reply belongs to the got-th frame sent.
              ++rep.shed;
              requeue.push_back(work[done + got]);
              if (const auto parsed = gateway::Frame::deserialize(*frame)) {
                if (const auto hint = gateway::RetryAfterResponse::deserialize(parsed->payload)) {
                  backoff_ms = std::max(backoff_ms, std::min(hint->retry_after_ms, kMaxBackoffMs));
                }
              }
              break;
            }
            default: ++rep.err; break;
          }
          ++got;
        }
      }
      if (got < batch) {
        rep.err += work.size() - done - got;
        transport_dead = true;
        break;
      }
      done += batch;
    }
    if (transport_dead) {
      work.clear();  // unanswered frames were already counted as errors
      break;
    }
    work = std::move(requeue);
    if (!work.empty() && round < kRetryRounds) {
      ::usleep(static_cast<useconds_t>(backoff_ms * 1000));
    }
  }
  rep.err += work.size();  // still shed after the full retry budget
  rep.end_ns = mono_ns();
  ::close(fd);
  rep.nlat = lat.size();
  (void)write_full(out_fd, reinterpret_cast<const std::uint8_t*>(&rep), sizeof(rep));
  (void)write_full(out_fd, reinterpret_cast<const std::uint8_t*>(lat.data()),
                   lat.size() * sizeof(double));
}

/// Admission brownout in front of the gateway: the first
/// `brownout_frames` requests are answered kRetryAfter before the
/// gateway sees them. The single-threaded server never runs two serve()
/// calls at once, so the gateway's own depth guard cannot trip under
/// this bench's load — the brownout manufactures the deterministic
/// overload window the clients' retry loop must recover from, making the
/// reported goodput include demonstrably re-earned work.
class BrownoutHandler final : public net::FrameHandler {
 public:
  BrownoutHandler(net::FrameHandler& inner, std::uint64_t brownout_frames,
                  std::uint64_t retry_after_ms)
      : inner_(inner), remaining_(brownout_frames), retry_after_ms_(retry_after_ms) {}

  [[nodiscard]] std::vector<Bytes> handle(const std::vector<Bytes>& frames,
                                          std::uint64_t now_ms) override {
    if (remaining_ == 0) return inner_.handle(frames, now_ms);
    std::vector<Bytes> out;
    out.reserve(frames.size());
    for (const auto& bytes : frames) {
      if (remaining_ == 0) {
        // Mid-batch recovery: delegate the tail one frame at a time so
        // responses stay index-aligned.
        auto one = inner_.handle({bytes}, now_ms);
        out.push_back(std::move(one.front()));
        continue;
      }
      --remaining_;
      std::uint64_t rid = 0;
      if (const auto f = gateway::Frame::deserialize(bytes)) rid = f->request_id;
      gateway::RetryAfterResponse shed;
      shed.retry_after_ms = retry_after_ms_;
      shed.queue_depth = remaining_ + 1;
      out.push_back(gateway::make_frame(gateway::MsgType::kRetryAfter, rid, shed.serialize()));
    }
    return out;
  }

 private:
  net::FrameHandler& inner_;
  std::uint64_t remaining_;
  std::uint64_t retry_after_ms_;
};

/// Abuse client: each attempt connects and sends garbage magic. Early
/// attempts must earn a typed kError reply (counted in ok); once the
/// score crosses the ban threshold, connects are cut without a single
/// response byte (counted in err as refusals).
void run_abuse_client(std::uint16_t port, std::size_t attempts, int out_fd) {
  ChildReport rep;
  for (std::size_t a = 0; a < attempts; ++a) {
    const int fd = connect_loopback(port);
    if (fd < 0) {
      ++rep.err;
      continue;
    }
    ++rep.sent;
    const std::uint8_t garbage[16] = {0xde, 0xad, 0xbe, 0xef};
    (void)write_full(fd, garbage, sizeof(garbage));
    net::FrameAssembler assembler;
    bool any_reply = false;
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;  // server closes after flushing the error
      any_reply = true;
      (void)assembler.feed({buf, static_cast<std::size_t>(n)});
    }
    while (auto frame = assembler.next_frame()) {
      if ((*frame)[4] == static_cast<std::uint8_t>(gateway::MsgType::kError)) ++rep.ok;
    }
    if (!any_reply) ++rep.err;  // banned: cut on arrival
    ::close(fd);
  }
  (void)write_full(out_fd, reinterpret_cast<const std::uint8_t*>(&rep), sizeof(rep));
}

/// Overload client: one pipelined burst against a zero-admission
/// gateway; every frame must bounce back as kRetryAfter.
void run_overload_client(std::uint16_t port, std::size_t burst, int out_fd) {
  ChildReport rep;
  const int fd = connect_loopback(port);
  if (fd >= 0) {
    Bytes out;
    for (std::size_t i = 0; i < burst; ++i) {
      append(out, gateway::make_frame(gateway::MsgType::kGetReceipt, i + 1, Bytes{1, 2, 3}));
    }
    rep.sent = burst;
    if (write_full(fd, out.data(), out.size())) {
      net::FrameAssembler assembler;
      std::uint8_t buf[65536];
      std::size_t got = 0;
      while (got < burst) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) break;
        if (!assembler.feed({buf, static_cast<std::size_t>(n)})) break;
        while (auto frame = assembler.next_frame()) {
          if ((*frame)[4] == static_cast<std::uint8_t>(gateway::MsgType::kRetryAfter)) {
            ++rep.shed;
          } else {
            ++rep.err;
          }
          ++got;
        }
      }
    }
    ::close(fd);
  } else {
    rep.err = burst;
  }
  (void)write_full(out_fd, reinterpret_cast<const std::uint8_t*>(&rep), sizeof(rep));
}

/// Fork `n` children, run `body(child_index, pipe_write_fd)` in each, and
/// collect one ChildReport (+ its latency tail) per child.
template <typename Body>
std::vector<std::pair<ChildReport, std::vector<double>>> fork_clients(std::size_t n, Body body) {
  std::vector<int> read_fds;
  std::vector<pid_t> pids;
  for (std::size_t c = 0; c < n; ++c) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) std::abort();
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(pipe_fds[0]);
      body(c, pipe_fds[1]);
      ::close(pipe_fds[1]);
      ::_exit(0);  // no destructors: the parent owns the real resources
    }
    ::close(pipe_fds[1]);
    read_fds.push_back(pipe_fds[0]);
    pids.push_back(pid);
  }
  std::vector<std::pair<ChildReport, std::vector<double>>> reports;
  for (std::size_t c = 0; c < n; ++c) {
    ChildReport rep;
    std::vector<double> lat;
    if (read_full(read_fds[c], reinterpret_cast<std::uint8_t*>(&rep), sizeof(rep))) {
      lat.resize(rep.nlat);
      if (rep.nlat > 0 &&
          !read_full(read_fds[c], reinterpret_cast<std::uint8_t*>(lat.data()),
                     lat.size() * sizeof(double))) {
        lat.clear();
      }
    }
    ::close(read_fds[c]);
    int status = 0;
    (void)::waitpid(pids[c], &status, 0);
    reports.emplace_back(rep, std::move(lat));
  }
  return reports;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p / 100.0 * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  const bool smoke = std::getenv("BTCFAST_E13_SMOKE") != nullptr;
  const std::size_t kClients = env_size("BTCFAST_E13_CLIENTS", smoke ? 2 : 4);
  const std::size_t kRequests = env_size("BTCFAST_E13_REQUESTS", smoke ? 25 : 300);
  const std::size_t kPipeline = env_size("BTCFAST_E13_PIPELINE", smoke ? 8 : 16);
  const std::size_t kTotal = kClients * kRequests;
  const std::size_t kEscrows = 4;
  const std::size_t per_escrow = (kTotal + kEscrows - 1) / kEscrows;

  std::printf("# E13 — TCP front end (%zu clients x %zu requests, pipeline %zu)\n\n", kClients,
              kRequests, kPipeline);

  core::DeploymentConfig cfg;
  cfg.seed = 13;
  cfg.funded_coins = static_cast<btc::Amount>(kTotal);
  cfg.collateral = cfg.compensation * static_cast<psc::Value>(per_escrow + 1);
  cfg.params.pow_limit = crypto::U256::one() << 250;
  cfg.params.genesis_bits = btc::target_to_bits(cfg.params.pow_limit);
  core::Deployment dep(cfg);

  const auto now = static_cast<std::uint64_t>(dep.simulator().now());
  const auto& judger = dep.judger_address();

  std::vector<std::unique_ptr<core::CustomerWallet>> wallets;
  dep.psc().mint(dep.customer_psc_address(), cfg.collateral * static_cast<psc::Value>(kEscrows));
  for (std::size_t e = 2; e <= kEscrows; ++e) {
    auto w = std::make_unique<core::CustomerWallet>(dep.customer().btc_identity(),
                                                    dep.customer_psc_address(),
                                                    static_cast<core::EscrowId>(e));
    const auto receipt = dep.psc().execute_now(
        w->make_deposit_tx(judger, cfg.collateral, cfg.escrow_unlock_delay_ms), now);
    if (!receipt.success) {
      std::fprintf(stderr, "escrow %zu deposit failed: %s\n", e, receipt.revert_reason.c_str());
      return 1;
    }
    wallets.push_back(std::move(w));
  }

  const auto coins =
      sim::find_spendable(dep.customer_node().chain(), dep.customer().btc_identity().script);
  if (coins.size() < kTotal) {
    std::fprintf(stderr, "only %zu spendable coins (need %zu)\n", coins.size(), kTotal);
    return 1;
  }
  std::vector<core::Invoice> invoices;
  std::vector<Bytes> frames;  // inherited copy-on-write by the forked clients
  for (std::size_t i = 0; i < kTotal; ++i) {
    core::Invoice inv =
        dep.merchant().make_invoice(2 * btc::kCoin, cfg.compensation, now, 60ULL * 60 * 1000);
    const std::size_t e = i % kEscrows;
    core::FastPayPackage pkg =
        (e == 0 ? dep.customer() : *wallets[e - 1])
            .create_fastpay(inv, coins[i].first, coins[i].second.out.value, now, cfg.binding_ttl_ms);
    gateway::SubmitFastPayRequest req;
    req.invoice_id = inv.invoice_id;
    req.package = std::move(pkg);
    frames.push_back(
        gateway::make_frame(gateway::MsgType::kSubmitFastPay, /*request_id=*/i + 1,
                            req.serialize()));
    invoices.push_back(std::move(inv));
  }

  gateway::GatewayConfig gcfg;
  gcfg.retry_after_ms = 1;  // hint the retrying clients honor; keeps the bench brisk
  gateway::Gateway gw(dep.merchant(), common::ThreadPool::global(), gcfg);
  for (const auto& inv : invoices) gw.register_invoice(inv);
  for (std::size_t e = 1; e <= kEscrows; ++e) gw.track_escrow(static_cast<core::EscrowId>(e));

  net::GatewayHandler handler(gw);
  handler.pin_time(now);  // sim clock is quiescent; sockets run on real time
  // The brownout is fully drained by the load phase (every frame must end
  // accepted), so the later abuse phase sees the gateway directly.
  const std::uint64_t kBrownout = std::max<std::size_t>(1, kTotal / 10);
  BrownoutHandler brownout(handler, kBrownout, gcfg.retry_after_ms);
  net::ServerConfig scfg;
  net::TcpServer server(brownout, scfg);
  if (!server.start()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  const std::uint16_t port = server.port();
  std::thread loop([&] { server.run(); });

  // --- phase 1: load -----------------------------------------------------
  const auto load = fork_clients(kClients, [&](std::size_t c, int out_fd) {
    run_load_client(port, frames, c * kRequests, kRequests, kPipeline, out_fd);
  });

  bench::Table per_client(
      {"client", "sent", "ok", "shed", "retried", "err", "p50 (us)", "p99 (us)"});
  ChildReport total;
  std::vector<double> lat_all;
  std::uint64_t start_min = ~0ULL, end_max = 0;
  for (std::size_t c = 0; c < load.size(); ++c) {
    const auto& [rep, lat] = load[c];
    total.sent += rep.sent;
    total.ok += rep.ok;
    total.shed += rep.shed;
    total.err += rep.err;
    total.retried += rep.retried;
    start_min = std::min(start_min, rep.start_ns);
    end_max = std::max(end_max, rep.end_ns);
    auto mine = lat;
    std::sort(mine.begin(), mine.end());
    per_client.row({bench::fmt_u(c), bench::fmt_u(rep.sent), bench::fmt_u(rep.ok),
                    bench::fmt_u(rep.shed), bench::fmt_u(rep.retried), bench::fmt_u(rep.err),
                    bench::fmt(percentile(mine, 50), 1), bench::fmt(percentile(mine, 99), 1)});
    lat_all.insert(lat_all.end(), lat.begin(), lat.end());
  }
  std::sort(lat_all.begin(), lat_all.end());
  const double wall_s =
      end_max > start_min ? static_cast<double>(end_max - start_min) / 1e9 : 0;
  const double accepts_s = wall_s > 0 ? static_cast<double>(total.ok) / wall_s : 0;
  const double p50 = percentile(lat_all, 50), p99 = percentile(lat_all, 99);
  per_client.print();
  std::printf("\n# load: %llu ok in %.3f s = %.0f goodput accepts/s (%llu retried after "
              "kRetryAfter), p50 %.1f us, p99 %.1f us\n",
              static_cast<unsigned long long>(total.ok), wall_s, accepts_s,
              static_cast<unsigned long long>(total.retried), p50, p99);

  // --- phase 2: abuse ----------------------------------------------------
  const std::size_t kAbuseAttempts = 6;
  const auto abuse = fork_clients(
      1, [&](std::size_t, int out_fd) { run_abuse_client(port, kAbuseAttempts, out_fd); });
  const auto& abuse_rep = abuse[0].first;
  std::printf("# abuse: %llu error replies, %llu refused of %zu attempts\n",
              static_cast<unsigned long long>(abuse_rep.ok),
              static_cast<unsigned long long>(abuse_rep.err), kAbuseAttempts);

  server.stop();
  loop.join();
  server.fold_into(gw);
  const auto net = server.stats();
  const auto gwst = gw.stats();

  // --- phase 3: overload (separate zero-admission gateway) ---------------
  gateway::GatewayConfig shed_cfg;
  shed_cfg.max_inflight = 0;  // every request sheds: the kRetryAfter path end-to-end
  gateway::Gateway gw_shed(dep.merchant(), common::ThreadPool::global(), shed_cfg);
  net::GatewayHandler shed_handler(gw_shed);
  shed_handler.pin_time(now);
  net::TcpServer shed_server(shed_handler, scfg);
  if (!shed_server.start()) {
    std::fprintf(stderr, "overload server start failed\n");
    return 1;
  }
  const std::uint16_t shed_port = shed_server.port();
  std::thread shed_loop([&] { shed_server.run(); });
  const std::size_t kBurst = kPipeline * 4;
  const auto overload = fork_clients(
      1, [&](std::size_t, int out_fd) { run_overload_client(shed_port, kBurst, out_fd); });
  shed_server.stop();
  shed_loop.join();
  const auto& over_rep = overload[0].first;
  const auto shed_net = shed_server.stats();
  std::printf("# overload: %llu of %zu frames shed (server saw %llu, paused reads %llu times)\n",
              static_cast<unsigned long long>(over_rep.shed), kBurst,
              static_cast<unsigned long long>(shed_net.sheds_seen),
              static_cast<unsigned long long>(shed_net.read_pauses));

  // Shed replies are retried, not final, so every frame must end as ok
  // or err once the retry budget is spent — and the brownout window
  // guarantees the retry path actually ran.
  const bool coverage_ok = total.ok + total.err == kTotal && total.ok > 0 &&
                           gwst.accepts() == total.ok && total.shed == kBrownout &&
                           total.retried > 0 && abuse_rep.ok >= 1 && abuse_rep.err >= 1 &&
                           net.bans_issued >= 1 && net.conns_refused_banned >= 1 &&
                           over_rep.shed == kBurst && shed_net.sheds_seen >= kBurst;
  std::printf("# coverage (all answered, parity with gateway accepts, retry + ban + shed "
              "exercised): %s\n",
              coverage_ok ? "yes" : "NO");

  bench::JsonDoc doc;
  doc.set("experiment", "e13_network");
  doc.set("clients", static_cast<std::uint64_t>(kClients));
  doc.set("requests_per_client", static_cast<std::uint64_t>(kRequests));
  doc.set("pipeline", static_cast<std::uint64_t>(kPipeline));
  doc.set("total_requests", static_cast<std::uint64_t>(kTotal));
  doc.set("ok", total.ok);
  doc.set("shed", total.shed);
  doc.set("retries", total.retried);
  doc.set("brownout_frames", kBrownout);
  doc.set("errors", total.err);
  doc.set("accepts_per_s", accepts_s);
  doc.set("p50_us", p50);
  doc.set("p99_us", p99);
  doc.set("gateway_accepts", gwst.accepts());
  doc.set("net_conns_accepted", net.conns_accepted);
  doc.set("net_frames_in", net.frames_in);
  doc.set("net_responses_out", net.responses_out);
  doc.set("net_bytes_in", net.bytes_in);
  doc.set("net_bytes_out", net.bytes_out);
  doc.set("net_framing_errors", net.framing_errors);
  doc.set("net_bans_issued", net.bans_issued);
  doc.set("net_conns_refused_banned", net.conns_refused_banned);
  doc.set("net_sheds_seen", net.sheds_seen);
  doc.set("net_read_pauses", net.read_pauses);
  doc.set("net_write_overflows", net.write_overflows);
  doc.set("abuse_attempts", static_cast<std::uint64_t>(kAbuseAttempts));
  doc.set("abuse_error_replies", abuse_rep.ok);
  doc.set("abuse_refused", abuse_rep.err);
  doc.set("overload_burst", static_cast<std::uint64_t>(kBurst));
  doc.set("overload_sheds", shed_net.sheds_seen);
  doc.set("overload_read_pauses", shed_net.read_pauses);
  doc.set("coverage_ok", coverage_ok ? "yes" : "no");
  doc.add_table("per_client", per_client);
  doc.write("BENCH_e13_network.json");
  return coverage_ok ? 0 : 1;
}
