// E14 — Dispute storm engine: deduped batch PoW judgment vs the naive
// per-dispute path, under a flash double-spend wave whose evidence
// chains share segments Zipf-style (a few deep anchors carry most of the
// disputes — everyone proves against the same recent chain suffix).
//
// Twin worlds are built from the same seed; one executes the storm batch
// one transaction at a time (naive), the other through the StormEngine
// (one deduped parallel hashing sweep, then identical sequential metered
// execution). Receipts and gas must match byte-for-byte — the engine is
// only allowed to be faster, never different.
//
// BTCFAST_E14_SMOKE=1 shrinks the workload for the tier1.sh gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>

#include "bench_table.h"
#include "btc/pow.h"
#include "btcfast/customer.h"
#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcsim/scenario.h"
#include "common/thread_pool.h"
#include "dispute/storm_engine.h"

using namespace btcfast;

namespace {

constexpr std::uint64_t kHourMs = 60ULL * 60 * 1000;

struct Workload {
  std::size_t disputes = 48;
  std::size_t waves = 6;        ///< distinct checkpoint anchors
  int blocks_per_wave = 22;     ///< chain segment between anchors
  int repetitions = 5;
};

struct World {
  btc::ChainParams params;
  std::unique_ptr<btc::Chain> chain;
  psc::PscChain psc;
  core::PayJudgerConfig cfg;
  psc::Address judger;
  psc::Address merchant = psc::Address::from_label("merchant");
  std::vector<sim::Party> parties;
  std::vector<psc::Address> customers;
  std::vector<std::unique_ptr<core::CustomerWallet>> wallets;
  std::vector<psc::PscTx> storm;
  std::uint64_t eval_time = 0;
  std::size_t evidence_headers = 0;  ///< total headers across storm txs
};

void mine(World& w, std::vector<btc::Transaction> txs) {
  btc::Block b;
  b.header.prev_hash = w.chain->tip_hash();
  b.header.time = w.chain->tip_header().time + 600;
  b.header.bits = w.params.genesis_bits;
  btc::Transaction cb;
  btc::TxIn in;
  in.prevout.index = 0xffffffff;
  in.sequence = w.chain->height() + 1;
  cb.inputs.push_back(in);
  cb.outputs.push_back(btc::TxOut{w.params.subsidy, w.parties[0].script});
  b.txs.push_back(cb);
  for (auto& tx : txs) b.txs.push_back(std::move(tx));
  if (!btc::mine_block(b, w.params) ||
      w.chain->submit_block(b) != btc::SubmitResult::kActiveTip) {
    std::fprintf(stderr, "FATAL: mining failed during setup\n");
    std::abort();
  }
}

/// Zipf-ish wave assignment: wave w receives a share proportional to
/// 1/(w+1), so the deepest anchors carry the most disputes.
std::vector<std::size_t> wave_of_dispute(const Workload& wl) {
  double norm = 0;
  for (std::size_t w = 0; w < wl.waves; ++w) norm += 1.0 / static_cast<double>(w + 1);
  std::vector<std::size_t> waves;
  std::size_t assigned = 0;
  for (std::size_t w = 0; w < wl.waves && assigned < wl.disputes; ++w) {
    std::size_t quota = static_cast<std::size_t>(
        static_cast<double>(wl.disputes) / (static_cast<double>(w + 1) * norm) + 0.5);
    if (w + 1 == wl.waves || quota == 0) quota = wl.disputes - assigned;
    for (std::size_t i = 0; i < quota && assigned < wl.disputes; ++i, ++assigned) {
      waves.push_back(w);
    }
  }
  return waves;
}

std::unique_ptr<World> build_world(std::uint64_t seed, const Workload& wl) {
  auto w = std::make_unique<World>();
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  w->params = btc::ChainParams::regtest();
  w->params.pow_limit = crypto::U256::one() << 250;  // ~2^6 hashes/block
  w->params.genesis_bits = btc::target_to_bits(w->params.pow_limit);
  w->chain = std::make_unique<btc::Chain>(w->params);

  std::vector<btc::ScriptPubKey> scripts;
  for (std::size_t i = 0; i < wl.disputes; ++i) {
    w->parties.push_back(sim::Party::make(100 + static_cast<unsigned>(i)));
    scripts.push_back(w->parties.back().script);
    w->customers.push_back(psc::Address::from_label("customer/" + std::to_string(i)));
  }
  for (const auto& b : sim::build_funding_chain(w->params, scripts, 1)) {
    (void)w->chain->submit_block(b);
  }

  w->cfg.pow_limit = w->params.pow_limit;
  w->cfg.initial_checkpoint = w->chain->tip_hash();
  w->cfg.required_depth = 3;
  w->cfg.evidence_window_ms = 10'000 * kHourMs;
  w->cfg.min_collateral = 1'000;
  w->cfg.dispute_bond = 500;
  w->judger = w->psc.deploy("payjudger", std::make_unique<core::PayJudger>(w->cfg));
  w->psc.mint(w->merchant, 1'000'000'000);

  for (std::size_t i = 0; i < wl.disputes; ++i) {
    w->psc.mint(w->customers[i], 1'000'000'000);
    w->wallets.push_back(std::make_unique<core::CustomerWallet>(
        w->parties[i], w->customers[i], i + 1));
    (void)w->psc.execute_now(w->wallets[i]->make_deposit_tx(w->judger, 100'000, 10'000 * kHourMs), 0);
  }

  const auto waves = wave_of_dispute(wl);
  std::vector<btc::BlockHash> anchors(wl.disputes);
  std::vector<btc::Txid> txids(wl.disputes);
  btc::BlockHash checkpoint = w->cfg.initial_checkpoint;
  std::uint64_t t = 1'000;
  std::size_t next = 0;
  for (std::size_t wave = 0; wave < wl.waves; ++wave) {
    if (wave > 0 && w->chain->tip_hash() != checkpoint) {
      const auto advance = core::headers_since(*w->chain, checkpoint);
      if (advance && !advance->empty()) {
        psc::PscTx tx;
        tx.from = w->merchant;
        tx.to = w->judger;
        tx.method = "updateCheckpoint";
        tx.args = core::encode_checkpoint_args(*advance);
        tx.gas_limit = 30'000'000;
        (void)w->psc.execute_now(tx, t);
        checkpoint = w->chain->tip_hash();
      }
    }
    std::vector<btc::Transaction> payments;
    for (; next < waves.size() && waves[next] == wave; ++next) {
      const auto coins = sim::find_spendable(*w->chain, w->parties[next].script);
      if (coins.empty()) continue;
      const auto [op, coin] = coins.front();
      core::Invoice inv;
      inv.amount_sat = coin.out.value / 2;
      inv.compensation = 400;
      inv.pay_to = w->parties[next].script;
      inv.merchant_psc = w->merchant;
      inv.expires_at_ms = t + 100 * kHourMs;
      core::FastPayPackage pkg =
          w->wallets[next]->create_fastpay(inv, op, coin.out.value, t, t + 100 * kHourMs);
      txids[next] = pkg.payment_tx.txid();
      anchors[next] = checkpoint;
      payments.push_back(pkg.payment_tx);
      psc::PscTx tx;
      tx.from = w->merchant;
      tx.to = w->judger;
      tx.value = 500;
      tx.method = "openDispute";
      tx.args = core::encode_open_dispute_args(next + 1, pkg.binding);
      const auto r = w->psc.execute_now(tx, t);
      if (!r.success) {
        std::fprintf(stderr, "FATAL: openDispute: %s\n", r.revert_reason.c_str());
        std::abort();
      }
      t += 10;
    }
    mine(*w, std::move(payments));
    for (int b = 1; b < wl.blocks_per_wave; ++b) mine(*w, {});
  }
  for (std::uint32_t d = 0; d < w->cfg.required_depth; ++d) mine(*w, {});

  for (std::size_t i = 0; i < wl.disputes; ++i) {
    const auto chain_headers = core::headers_since(*w->chain, anchors[i]);
    if (!chain_headers || chain_headers->empty() || chain_headers->size() > 144) {
      std::fprintf(stderr, "FATAL: bad evidence chain for dispute %zu\n", i);
      std::abort();
    }
    psc::PscTx m;
    m.from = w->merchant;
    m.to = w->judger;
    m.method = "submitMerchantEvidence";
    m.args = core::encode_merchant_evidence_args(i + 1, *chain_headers);
    m.gas_limit = 30'000'000;
    w->evidence_headers += chain_headers->size();
    w->storm.push_back(std::move(m));

    const auto ev =
        core::build_inclusion_evidence(*w->chain, anchors[i], txids[i], w->cfg.required_depth);
    if (!ev) {
      std::fprintf(stderr, "FATAL: no inclusion evidence for dispute %zu\n", i);
      std::abort();
    }
    psc::PscTx c;
    c.from = w->customers[i];
    c.to = w->judger;
    c.method = "submitCustomerEvidence";
    c.args = core::encode_customer_evidence_args(i + 1, ev->headers, ev->proof, ev->header_index);
    c.gas_limit = 30'000'000;
    w->evidence_headers += ev->headers.size();
    w->storm.push_back(std::move(c));
  }
  std::shuffle(w->storm.begin(), w->storm.end(), rng);
  w->eval_time = t + 1'000;
  return w;
}

struct RunOutcome {
  double seconds = 0;
  psc::Gas total_gas = 0;
  std::size_t failures = 0;
  dispute::HeaderIndexStats stats;
};

RunOutcome run_naive(World& w) {
  RunOutcome o;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& tx : w.storm) {
    const auto r = w.psc.execute_now(tx, w.eval_time);
    if (!r.success) ++o.failures;
  }
  const auto t1 = std::chrono::steady_clock::now();
  o.seconds = std::chrono::duration<double>(t1 - t0).count();
  o.total_gas = w.psc.total_gas_used();
  return o;
}

RunOutcome run_storm(World& w) {
  RunOutcome o;
  dispute::StormEngine engine(w.psc, w.judger);
  const auto t0 = std::chrono::steady_clock::now();
  const auto receipts = engine.execute_batch(w.storm, w.eval_time);
  const auto t1 = std::chrono::steady_clock::now();
  for (const auto& r : receipts) {
    if (!r.success) ++o.failures;
  }
  o.seconds = std::chrono::duration<double>(t1 - t0).count();
  o.total_gas = w.psc.total_gas_used();
  o.stats = engine.stats();
  return o;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("BTCFAST_E14_SMOKE") != nullptr;
  Workload wl;
  if (smoke) {
    wl.disputes = 10;
    wl.waves = 3;
    wl.blocks_per_wave = 5;
    wl.repetitions = 1;
  }
  common::ThreadPool::configure_global(0);  // single-core reference container

  std::printf("# E14 — dispute storm: deduped batch judgment vs naive per-dispute\n");
  std::printf("# %zu disputes, %zu Zipf-shared anchors, %d-block segments%s\n\n", wl.disputes,
              wl.waves, wl.blocks_per_wave, smoke ? " [smoke]" : "");

  RunOutcome best_naive, best_storm;
  std::size_t evidence_headers = 0, storm_txs = 0;
  bool gas_match = true;
  for (int rep = 0; rep < wl.repetitions; ++rep) {
    auto w_naive = build_world(1, wl);
    auto w_storm = build_world(1, wl);
    evidence_headers = w_naive->evidence_headers;
    storm_txs = w_naive->storm.size();
    const RunOutcome naive = run_naive(*w_naive);
    const RunOutcome storm = run_storm(*w_storm);
    gas_match &= naive.total_gas == storm.total_gas && naive.failures == storm.failures;
    if (rep == 0 || naive.seconds < best_naive.seconds) best_naive = naive;
    if (rep == 0 || storm.seconds < best_storm.seconds) best_storm = storm;
  }

  const double evidence_mb = static_cast<double>(evidence_headers) * 80.0 / 1e6;
  const double dps_naive = static_cast<double>(wl.disputes) / best_naive.seconds;
  const double dps_storm = static_cast<double>(wl.disputes) / best_storm.seconds;
  const double speedup = dps_storm / dps_naive;
  const double hit_rate = best_storm.stats.hit_rate();
  const std::uint64_t unique_hashed = best_storm.stats.misses;

  bench::Table t({"path", "time ms", "disputes/s", "evidence MB/s", "headers hashed"});
  t.row({"naive per-dispute", bench::fmt(best_naive.seconds * 1e3, 2), bench::fmt(dps_naive, 1),
         bench::fmt(evidence_mb / best_naive.seconds, 2), bench::fmt_u(evidence_headers)});
  t.row({"storm engine", bench::fmt(best_storm.seconds * 1e3, 2), bench::fmt(dps_storm, 1),
         bench::fmt(evidence_mb / best_storm.seconds, 2), bench::fmt_u(unique_hashed)});
  t.print();

  std::printf(
      "\n# %zu evidence txs over %zu disputes carry %zu headers (%.2f MB of 80-byte\n"
      "# headers); only %llu are unique. Dedup hit rate %.1f%%, speedup %.2fx.\n"
      "# Gas and verdicts byte-identical across paths: %s\n",
      storm_txs, wl.disputes, evidence_headers, evidence_mb,
      static_cast<unsigned long long>(unique_hashed), hit_rate * 100.0, speedup,
      gas_match ? "yes" : "NO");

  bench::JsonDoc doc;
  doc.set("experiment", "e14_dispute_storm");
  doc.set("smoke", smoke ? "yes" : "no");
  doc.set("disputes", static_cast<std::uint64_t>(wl.disputes));
  doc.set("storm_txs", static_cast<std::uint64_t>(storm_txs));
  doc.set("anchors", static_cast<std::uint64_t>(wl.waves));
  doc.set("evidence_headers_total", static_cast<std::uint64_t>(evidence_headers));
  doc.set("unique_headers_hashed", unique_hashed);
  doc.set("dedup_hit_rate", hit_rate);
  doc.set("disputes_per_s_naive", dps_naive);
  doc.set("disputes_per_s_storm", dps_storm);
  doc.set("evidence_mb_per_s_naive", evidence_mb / best_naive.seconds);
  doc.set("evidence_mb_per_s_storm", evidence_mb / best_storm.seconds);
  doc.set("speedup", speedup);
  doc.set("gas_parity", gas_match ? "yes" : "no");
  doc.write("BENCH_e14_dispute_storm.json");
  return gas_match ? 0 : 1;
}
