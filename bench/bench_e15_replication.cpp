// E15 — Replication cost and failover: measures what quorum-gated
// acknowledgement charges the serving path (acks/s at quorum 0/1/2 over
// WAL-shipping followers), how fast a deposed primary's role moves (wall
// time from failover decision to the promoted store accepting its first
// quorum-gated record, with a byte-exactness audit of the promoted
// state), and how quickly a rejoining follower drains its backlog.
// Emits BENCH_e15_replication.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_table.h"
#include "replication/failover.h"
#include "replication/follower.h"
#include "replication/log_ship.h"
#include "store/recovery.h"
#include "store/snapshot.h"

using namespace btcfast;

namespace {

namespace fs = std::filesystem;

double elapsed_us(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(b - a).count();
}

std::string scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("btcfast-bench-e15-" + tag + "-" +
                      std::to_string(static_cast<unsigned long>(::getpid())));
  fs::remove_all(p);
  return p.string();
}

store::StoreRecord reserve_rec(std::uint64_t rid) {
  store::StoreRecord r;
  r.kind = store::RecordKind::kReserve;
  r.reservation_id = rid;
  r.escrow_id = 1 + (rid % 8);
  r.amount = 1'000'000;
  r.expires_at_ms = 600'000 + rid;
  r.txid[0] = static_cast<std::uint8_t>(rid);
  r.txid[1] = static_cast<std::uint8_t>(rid >> 8);
  return r;
}

store::StoreRecord release_rec(std::uint64_t rid) {
  store::StoreRecord r;
  r.kind = store::RecordKind::kRelease;
  r.reservation_id = rid;
  r.cause = store::ReleaseCause::kResolved;
  return r;
}

/// One payment's WAL footprint, E12's idiom: a reserve/release pair per
/// iteration keeps the live book tiny, so the numbers measure the log
/// and the shipping protocol, not apply_record's book scan.
bool append_pair(store::DurableStore& st, std::uint64_t i, std::uint64_t* seq_out) {
  if (!st.append(reserve_rec(i))) return false;
  const auto seq = st.append(release_rec(i));
  if (!seq) return false;
  *seq_out = *seq;
  return true;
}

/// Drive the shipper to convergence: pump() is bounded per call (64
/// batches per follower), so a deep backlog needs several rounds. The
/// advancing clock steps past any retry backoff.
bool pump_until(replication::LogShipper& shipper, const replication::Follower& f,
                std::uint64_t target_seq) {
  for (std::uint64_t round = 0; round < 10'000; ++round) {
    if (f.cursor().last_seq >= target_seq) return true;
    shipper.pump(1'000'000 + round * 3'000);
  }
  return f.cursor().last_seq >= target_seq;
}

store::StoreOptions no_fsync() {
  store::StoreOptions o;
  o.policy = store::FsyncPolicy::kNone;
  return o;
}

/// Primary + N followers over in-process links, fsync-free: the bench
/// isolates replication protocol cost, not disk latency (E12 covers
/// that axis).
struct Cluster {
  std::unique_ptr<store::DurableStore> primary;
  std::vector<std::unique_ptr<replication::Follower>> followers;
  std::vector<std::unique_ptr<replication::LocalFollowerLink>> links;
  std::vector<std::string> dirs;
  std::string primary_dir;

  static Cluster make(const std::string& tag, std::size_t n_followers) {
    Cluster c;
    c.primary_dir = scratch_dir(tag + "-primary");
    c.primary = store::DurableStore::open(c.primary_dir, no_fsync());
    for (std::size_t i = 0; i < n_followers; ++i) {
      c.dirs.push_back(scratch_dir(tag + "-f" + std::to_string(i)));
      replication::Follower::Options fopts;
      fopts.store = no_fsync();
      c.followers.push_back(replication::Follower::open(c.dirs[i], fopts));
      c.links.push_back(std::make_unique<replication::LocalFollowerLink>(c.followers[i].get()));
    }
    return c;
  }

  Cluster() = default;
  Cluster(Cluster&&) = default;
  Cluster& operator=(Cluster&&) = default;
  ~Cluster() {
    for (const auto& d : dirs) fs::remove_all(d);
    if (!primary_dir.empty()) fs::remove_all(primary_dir);
  }
};

/// Byte-exact control: replay the primary's WAL to `upto` and compare
/// against the promoted image (whose epoch the promotion itself wrote).
bool promoted_is_exact(store::DurableStore& primary, store::DurableStore& promoted,
                       std::uint64_t upto, std::uint64_t new_epoch,
                       const store::StoreRecord* post_failover_rec) {
  store::StateImage want;
  const auto scan = primary.read_range(1, 1 << 22);
  if (!scan.ok() || scan.pruned) return false;
  for (const auto& wr : scan.records) {
    if (wr.seq > upto) break;
    const auto rec = store::StoreRecord::deserialize(wr.payload);
    if (!rec || !store::apply_record(want, *rec, wr.seq)) return false;
  }
  want.epoch = new_epoch;
  // The promoted log continues past the carried-over prefix with the
  // kEpochChange record and any records accepted after the switch.
  if (post_failover_rec != nullptr &&
      !store::apply_record(want, *post_failover_rec, promoted.last_committed_seq())) {
    return false;
  }
  want.last_seq = promoted.last_committed_seq();
  return promoted.image_copy().serialize() == want.serialize();
}

}  // namespace

int main() {
  // BTCFAST_E15_SMOKE=1 shrinks the run for the tier-1 smoke gate.
  const bool smoke = std::getenv("BTCFAST_E15_SMOKE") != nullptr;
  const std::uint64_t ack_records = smoke ? 2'000 : 50'000;
  const std::uint64_t backlog_records = smoke ? 2'000 : 100'000;

  std::printf("# E15 — replication: quorum ack cost and failover%s\n\n", smoke ? " (smoke)" : "");

  bench::JsonDoc doc;
  doc.set("experiment", "e15_replication");
  doc.set("smoke", smoke ? "yes" : "no");

  // -------------------------------------------- quorum ack throughput
  // One reserve/release pair per iteration, commit + quorum_commit every
  // time — the exact durability sequence the gateway's accept path pays.
  // Two followers throughout; only the required ack count varies.
  bench::Table ack_table({"quorum", "payments", "acks/s", "batches shipped", "records shipped"});
  std::uint64_t quorum_acks = 0;
  for (std::size_t quorum = 0; quorum <= 2; ++quorum) {
    Cluster c = Cluster::make("ack-q" + std::to_string(quorum), 2);
    replication::ReplicationConfig rcfg;
    rcfg.quorum = quorum;
    replication::ReplicationGroup group(rcfg);
    group.attach_primary(c.primary.get());
    for (auto& link : c.links) group.add_follower(link.get());

    std::uint64_t acks = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 1; i <= ack_records; ++i) {
      std::uint64_t seq = 0;
      if (!append_pair(*c.primary, i, &seq) || !c.primary->commit()) return 1;
      if (group.quorum_commit(seq, i)) ++acks;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double acks_s = static_cast<double>(acks) / (elapsed_us(t0, t1) / 1e6);
    const auto stats = group.stats();
    ack_table.row({bench::fmt_u(quorum), bench::fmt_u(ack_records), bench::fmt(acks_s, 0),
                   bench::fmt_u(stats.batches_shipped), bench::fmt_u(stats.records_shipped)});
    doc.set("quorum" + std::to_string(quorum) + "_acks_per_s", acks_s);
    if (quorum > 0) quorum_acks += acks;
    group.detach_primary();
  }
  ack_table.print();
  doc.set("quorum_gated_acks", quorum_acks);

  // ------------------------------------------ failover time-to-accept
  // Build a quorum-acked history, depose the primary, promote the best
  // follower and measure the wall time until the promoted store accepts
  // its first quorum-gated record from the surviving follower set.
  const std::uint64_t history = smoke ? 1'000 : 20'000;
  bool failover_exact = true;
  double failover_ms = 0;
  {
    Cluster c = Cluster::make("failover", 2);
    replication::ReplicationConfig rcfg;
    rcfg.quorum = 1;
    replication::ReplicationGroup group(rcfg);
    group.attach_primary(c.primary.get());
    for (auto& link : c.links) group.add_follower(link.get());
    for (std::uint64_t i = 1; i <= history; ++i) {
      std::uint64_t seq = 0;
      if (!append_pair(*c.primary, i, &seq) || !c.primary->commit() ||
          !group.quorum_commit(seq, i)) {
        return 1;
      }
    }
    const std::uint64_t acked_high = group.acked_high();

    const auto t0 = std::chrono::steady_clock::now();
    const auto plan = group.plan_promotion();
    if (!plan.ok()) return 1;
    group.detach_primary();
    auto promo = replication::promote_follower(*c.followers[plan.index], plan.new_epoch);
    if (!promo.ok() || promo.promoted_seq < acked_high) return 1;

    // The promoted store takes over with the surviving follower.
    replication::ReplicationGroup after(rcfg);
    after.attach_primary(promo.store.get());
    const std::size_t survivor = plan.index == 0 ? 1 : 0;
    after.add_follower(c.links[survivor].get());
    (void)after.fence_followers(after.epoch());
    const auto seq = promo.store->append(reserve_rec(history + 1));
    if (!seq || !promo.store->commit() || !after.quorum_commit(*seq, history + 1)) return 1;
    const auto t1 = std::chrono::steady_clock::now();
    failover_ms = elapsed_us(t0, t1) / 1e3;

    const auto accepted = reserve_rec(history + 1);
    failover_exact = promoted_is_exact(*c.primary, *promo.store, promo.promoted_seq,
                                       plan.new_epoch, &accepted);
    after.detach_primary();
  }
  std::printf("\n# failover: time to first quorum-gated accept = %.3f ms (exact: %s)\n",
              failover_ms, failover_exact ? "yes" : "NO");
  doc.set("failover_ms", failover_ms);
  doc.set("failover_exact", failover_exact ? "yes" : "no");
  doc.set("failover_history_payments", history);

  // --------------------------------------------------- catch-up drain
  // A follower misses `backlog_records`, rejoins, and the shipper drains
  // the delta from the primary's on-disk segments.
  double catchup_rate = 0;
  {
    Cluster c = Cluster::make("catchup", 1);
    replication::LogShipper shipper(replication::LogShipper::Options{});
    shipper.attach_primary(c.primary.get());
    shipper.add_follower(c.links[0].get());
    c.links[0]->set_down(true);
    for (std::uint64_t i = 1; i <= backlog_records / 2; ++i) {
      std::uint64_t seq = 0;
      if (!append_pair(*c.primary, i, &seq)) return 1;
      if (i % 16 == 0) (void)c.primary->commit();
    }
    (void)c.primary->commit();
    c.links[0]->set_down(false);

    const auto t0 = std::chrono::steady_clock::now();
    const bool converged = pump_until(shipper, *c.followers[0], c.primary->last_committed_seq());
    const auto t1 = std::chrono::steady_clock::now();
    if (!converged) {
      std::fprintf(stderr, "catch-up did not converge\n");
      return 1;
    }
    catchup_rate = static_cast<double>(backlog_records) / (elapsed_us(t0, t1) / 1e6);
    shipper.detach_primary();
  }
  std::printf("# catch-up: %.0f records/s over a %llu-record backlog\n", catchup_rate,
              static_cast<unsigned long long>(backlog_records));
  doc.set("catchup_records_per_s", catchup_rate);
  doc.set("catchup_backlog_records", backlog_records);

  doc.add_table("quorum_acks", ack_table);
  doc.write("BENCH_e15_replication.json");
  return failover_exact ? 0 : 1;
}
