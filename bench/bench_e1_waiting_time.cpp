// E1 — Merchant waiting time per approach: how long between "customer
// initiates payment" and "merchant safely releases the goods". Expected
// values from the model plus measured values from the event simulator and
// real CPU timings of the cryptographic fast paths.
#include <chrono>
#include <cstdio>

#include "baselines/acceptance_policy.h"
#include "baselines/channel.h"
#include "bench_table.h"
#include "btcfast/orchestrator.h"
#include "btcsim/miner.h"

using namespace btcfast;

namespace {

/// Simulated seconds from tx broadcast to z confirmations on an observer
/// node, averaged over `trials`.
double measure_conf_wait_s(std::uint32_t z, int trials) {
  double total_s = 0;
  for (int trial = 0; trial < trials; ++trial) {
    btc::ChainParams params = btc::ChainParams::regtest();
    sim::Simulator simulator;
    sim::Network net(simulator, params, {}, 900 + static_cast<std::uint64_t>(trial));
    const auto observer = net.add_node();
    const auto miner_node = net.add_node();
    const sim::Party owner = sim::Party::make(1);
    const sim::Party payee = sim::Party::make(2);
    const sim::Party miner = sim::Party::make(3);

    const auto funding = sim::build_funding_chain(params, {owner.script}, 1);
    sim::seed_node(net.node(observer), funding);
    sim::seed_node(net.node(miner_node), funding);
    simulator.run_all();

    sim::MinerProcess proc(net, miner_node, 1.0, miner.script,
                           7000 + static_cast<std::uint64_t>(trial));
    proc.start();

    const auto coins = sim::find_spendable(net.node(observer).chain(), owner.script);
    const auto tx = sim::build_payment(owner, coins[0].first, coins[0].second.out.value,
                                       payee.script, btc::kCoin);
    const btc::Txid txid = tx.txid();
    net.submit_tx(observer, tx);

    const SimTime start = simulator.now();
    SimTime reached = -1;
    while (reached < 0) {
      simulator.run_until(simulator.now() + 10 * kSecond);
      if (net.node(observer).chain().confirmations(txid) >= z) reached = simulator.now();
      if (simulator.now() > 400 * kMinute) break;  // give up (shouldn't happen)
    }
    proc.stop();
    total_s += static_cast<double>(reached - start) / 1000.0;
  }
  return total_s / trials;
}

}  // namespace

int main() {
  std::printf("# E1 — merchant waiting time per payment approach\n");
  std::printf("# network model: 50-100 ms propagation; Bitcoin 600 s block interval\n\n");

  // --- BTCFast measured: one deployment, several decisions. ---
  core::DeploymentConfig cfg;
  cfg.seed = 5;
  cfg.funded_coins = 6;
  core::Deployment dep(cfg);
  double decision_sum_us = 0;
  double hop_ms = 0;
  int accepted = 0;
  for (int i = 0; i < 5; ++i) {
    const auto r = dep.perform_fastpay(2 * btc::kCoin);
    if (r.accepted) {
      ++accepted;
      decision_sum_us += r.decision_micros;
      hop_ms = static_cast<double>(r.message_latency_ms);
    }
    dep.run_for(30 * kMinute);
  }
  const double btcfast_wait_s =
      (hop_ms + decision_sum_us / (accepted > 0 ? accepted : 1) / 1000.0) / 1000.0;

  // --- Channel per-payment CPU (sign + verify). ---
  double channel_pay_us = 0;
  {
    btc::ChainParams params = btc::ChainParams::regtest();
    btc::Chain chain(params);
    const sim::Party customer = sim::Party::make(1);
    const sim::Party merchant = sim::Party::make(2);
    for (const auto& b : sim::build_funding_chain(params, {customer.script}, 1)) {
      (void)chain.submit_block(b);
    }
    const auto coins = sim::find_spendable(chain, customer.script);
    baselines::PaymentChannel ch(customer, merchant, coins[0].first,
                                 coins[0].second.out.value, 40 * btc::kCoin, 6);
    const auto t0 = std::chrono::steady_clock::now();
    const int n = 20;
    for (int i = 0; i < n; ++i) {
      auto s = ch.pay(btc::kCoin / 10);
      (void)ch.accept(*s);
    }
    const auto t1 = std::chrono::steady_clock::now();
    channel_pay_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(t1 - t0).count() / n;
  }

  // --- k-conf measured in the simulator. ---
  const double one_conf_s = measure_conf_wait_s(1, 5);
  const double six_conf_s = measure_conf_wait_s(6, 3);

  bench::Table t({"approach", "expected wait", "measured wait", "risk at q=0.10", "note"});
  t.row({"6-conf (standard)", "3600 s", bench::fmt(six_conf_s, 0) + " s",
         bench::fmt_sci(baselines::KConfPolicy{6}.double_spend_risk(0.10)),
         "the paper's 1-hour baseline"});
  t.row({"1-conf", "600 s", bench::fmt(one_conf_s, 0) + " s",
         bench::fmt_sci(baselines::KConfPolicy{1}.double_spend_risk(0.10)), "fast but risky"});
  t.row({"zero-conf", "0 s", "~0.1 s",
         bench::fmt_sci(baselines::KConfPolicy{0}.double_spend_risk(0.10)),
         "race-attack exposed"});
  t.row({"payment channel", "3600 s setup", bench::fmt(channel_pay_us / 1e6, 4) + " s/pay",
         bench::fmt_sci(0.0), "capacity locked per merchant"});
  t.row({"central escrow", "~0.2 s", "~0.2 s", "custodial",
         "custodian can steal/censor"});
  t.row({"BTCFast", "< 1 s", bench::fmt(btcfast_wait_s, 3) + " s",
         bench::fmt_sci(baselines::KConfPolicy{dep.config().required_depth}
                            .double_spend_risk(0.10)),
         "hop + local verify; escrow-backed"});
  t.print();

  std::printf(
      "\n# Reading: BTCFast's wait is one message hop plus ~%0.0f us of local\n"
      "# signature/escrow checks — under a second, 3-4 orders of magnitude below\n"
      "# the 6-confirmation baseline, with the k=%u-confirmation security bound.\n",
      decision_sum_us / (accepted > 0 ? accepted : 1), dep.config().required_depth);

  bench::JsonDoc doc;
  doc.set("experiment", "e1_waiting_time");
  doc.set("btcfast_wait_s", btcfast_wait_s);
  doc.set("six_conf_wait_s", six_conf_s);
  doc.add_table("waiting_time", t);
  doc.write("BENCH_e1.json");
  return 0;
}
