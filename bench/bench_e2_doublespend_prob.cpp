// E2 — Double-spend success probability vs confirmations z and attacker
// hash share q (Nakamoto approximation and Rosenfeld exact form). This is
// the "comparable security" yardstick: BTCFast with judgment depth k
// offers the merchant the row-z=k bound without the row-z=k wait.
#include <cstdio>

#include "analysis/doublespend.h"
#include "bench_table.h"

int main() {
  using namespace btcfast;
  using namespace btcfast::analysis;

  bench::JsonDoc doc;
  doc.set("experiment", "e2_doublespend_prob");

  std::printf("# E2 — double-spend success probability (closed forms)\n");
  std::printf("# rows: attacker share q; columns: confirmations z\n\n");

  const std::vector<std::uint32_t> zs = {0, 1, 2, 3, 4, 5, 6, 8, 10};
  const std::vector<double> qs = {0.02, 0.06, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40};

  std::printf("## Rosenfeld (exact race, attacker must get strictly ahead)\n");
  {
    std::vector<std::string> headers{"q"};
    for (auto z : zs) headers.push_back("z=" + std::to_string(z));
    bench::Table t(headers);
    for (double q : qs) {
      std::vector<std::string> row{bench::fmt(q, 2)};
      for (auto z : zs) row.push_back(bench::fmt_sci(rosenfeld_probability(q, z)));
      t.row(row);
    }
    t.print();
    doc.add_table("rosenfeld", t);
  }

  std::printf("\n## Nakamoto (whitepaper Poisson approximation)\n");
  {
    std::vector<std::string> headers{"q"};
    for (auto z : zs) headers.push_back("z=" + std::to_string(z));
    bench::Table t(headers);
    for (double q : qs) {
      std::vector<std::string> row{bench::fmt(q, 2)};
      for (auto z : zs) row.push_back(bench::fmt_sci(nakamoto_probability(q, z)));
      t.row(row);
    }
    t.print();
    doc.add_table("nakamoto", t);
  }

  std::printf("\n## Confirmations needed to push risk below a target (Rosenfeld)\n");
  {
    bench::Table t({"q", "risk<=1%", "risk<=0.1%", "risk<=0.01%"});
    for (double q : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
      t.row({bench::fmt(q, 2), std::to_string(confirmations_for_risk(q, 0.01)),
             std::to_string(confirmations_for_risk(q, 0.001)),
             std::to_string(confirmations_for_risk(q, 0.0001))});
    }
    t.print();
    doc.add_table("confirmations_for_risk", t);
  }

  std::printf("\n## Rational k-conf merchant: wait grows with payment value\n");
  std::printf("# z chosen so expected loss (risk x value) stays below $1; q = 0.10\n");
  {
    bench::Table t({"payment value (USD)", "required z", "wait (min)", "BTCFast wait"});
    for (double value : {10.0, 100.0, 1e3, 1e4, 1e5, 1e6}) {
      const auto z = confirmations_for_risk(0.10, 1.0 / value);
      t.row({bench::fmt(value, 0), std::to_string(z), bench::fmt(z * 10.0, 0), "< 1 s"});
    }
    t.print();
    doc.add_table("rational_kconf_wait", t);
  }

  std::printf(
      "\n# Reading: a BTCFast judgment depth k gives the merchant the z=k column's\n"
      "# security while its waiting time stays sub-second (see E1) — and unlike a\n"
      "# rational k-conf merchant, that wait does not grow with the payment value.\n");
  doc.write("BENCH_e2.json");
  return 0;
}
