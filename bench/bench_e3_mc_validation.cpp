// E3 — Monte-Carlo validation of the closed-form double-spend analysis:
// the Bernoulli-race simulator (the same race the full network simulator
// plays out with real blocks) against Rosenfeld's formula, with 95%
// confidence intervals.
#include <cstdio>

#include "analysis/doublespend.h"
#include "bench_table.h"
#include "btcsim/race.h"

int main() {
  using namespace btcfast;
  using namespace btcfast::analysis;

  std::printf("# E3 — Monte-Carlo validation of double-spend probabilities\n");
  std::printf("# 200,000 simulated races per cell, fixed seeds\n\n");

  bench::Table t({"q", "z", "closed-form", "monte-carlo", "95%% CI +/-", "|diff|/CI"});
  const std::uint64_t trials = 200'000;

  int cell = 0;
  for (double q : {0.05, 0.10, 0.20, 0.30, 0.45}) {
    for (std::uint32_t z : {0u, 1u, 2u, 4u, 6u}) {
      sim::RaceConfig cfg;
      cfg.q = q;
      cfg.z = z;
      cfg.give_up_deficit = 200;
      const auto mc = sim::estimate_double_spend_probability(cfg, trials,
                                                             1000 + static_cast<std::uint64_t>(cell++));
      const double closed = rosenfeld_probability(q, z);
      const double ci = 1.96 * mc.stderr_;
      const double ratio = ci > 0 ? std::abs(mc.success_rate - closed) / ci : 0.0;
      t.row({bench::fmt(q, 2), std::to_string(z), bench::fmt_sci(closed),
             bench::fmt_sci(mc.success_rate), bench::fmt_sci(ci), bench::fmt(ratio, 2)});
    }
  }
  t.print();
  std::printf(
      "\n# Reading: |diff|/CI < 1 for essentially every cell — the implementation's\n"
      "# race dynamics match the analysis the security claims rest on.\n");

  bench::JsonDoc doc;
  doc.set("experiment", "e3_mc_validation");
  doc.add_table("mc_vs_closed_form", t);
  doc.write("BENCH_e3.json");
  return 0;
}
