// E4 — PayJudger operation costs: gas per contract call (EVM Istanbul
// cost schedule), USD at frozen reference prices, and the amortized
// per-payment fee that substantiates "no extra operation fee".
#include <cstdio>

#include "analysis/economics.h"
#include "bench_table.h"
#include "btc/pow.h"
#include "btcfast/customer.h"
#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcsim/scenario.h"

using namespace btcfast;
using namespace btcfast::core;

namespace {

constexpr std::uint64_t kHourMs = 60ULL * 60 * 1000;

struct Harness {
  btc::ChainParams params = btc::ChainParams::regtest();
  btc::Chain btc_chain{params};
  sim::Party customer_party = sim::Party::make(11);
  sim::Party merchant_party = sim::Party::make(22);
  psc::PscChain psc;
  PayJudgerConfig cfg;
  psc::Address judger;
  psc::Address customer_psc = psc::Address::from_label("customer");
  psc::Address merchant_psc = psc::Address::from_label("merchant");
  CustomerWallet wallet{customer_party, customer_psc, 1};

  Harness() {
    for (const auto& b : sim::build_funding_chain(params, {customer_party.script}, 2)) {
      (void)btc_chain.submit_block(b);
    }
    cfg.pow_limit = params.pow_limit;
    cfg.initial_checkpoint = btc_chain.tip_hash();
    cfg.required_depth = 6;
    cfg.evidence_window_ms = kHourMs;
    cfg.min_collateral = 1'000;
    cfg.dispute_bond = 500;
    judger = psc.deploy("payjudger", std::make_unique<PayJudger>(cfg));
    psc.mint(customer_psc, 1'000'000'000);
    psc.mint(merchant_psc, 1'000'000'000);
  }

  void mine_block_with(std::vector<btc::Transaction> txs) {
    btc::Block b;
    b.header.prev_hash = btc_chain.tip_hash();
    b.header.time = btc_chain.tip_header().time + 600;
    b.header.bits = params.genesis_bits;
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = btc_chain.height() + 1;
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, merchant_party.script});
    b.txs.push_back(cb);
    for (auto& tx : txs) b.txs.push_back(std::move(tx));
    (void)btc::mine_block(b, params);
    (void)btc_chain.submit_block(b);
  }
};

}  // namespace

int main() {
  Harness h;
  const auto gas_ref = analysis::GasReference::late2020();
  const auto btc_ref = analysis::BtcFeeReference::late2020();

  std::printf("# E4 — PayJudger operation costs (gas / USD)\n");
  std::printf("# gas: EVM Istanbul-derived schedule; USD: %g gwei, ETH=$%g\n\n",
              gas_ref.gas_price_gwei, gas_ref.eth_usd);

  bench::Table t({"operation", "who pays", "when", "gas", "USD"});

  // Deploy (one-time, flat CREATE-equivalent from the schedule).
  const auto deploy_gas = h.psc.schedule().contract_deploy;
  t.row({"deploy PayJudger", "operator", "once ever", bench::fmt_u(deploy_gas),
         bench::fmt(gas_ref.gas_to_usd(deploy_gas), 4)});

  // Deposit.
  const auto dep = h.psc.execute_now(h.wallet.make_deposit_tx(h.judger, 200'000, 48 * kHourMs), 0);
  t.row({"deposit (escrow setup)", "customer", "once per escrow", bench::fmt_u(dep.gas_used),
         bench::fmt(gas_ref.gas_to_usd(dep.gas_used), 4)});

  // Top-up.
  const auto topup = h.psc.execute_now(h.wallet.make_topup_tx(h.judger, 50'000), 1);
  t.row({"topUp", "customer", "occasional", bench::fmt_u(topup.gas_used),
         bench::fmt(gas_ref.gas_to_usd(topup.gas_used), 4)});

  // Fast payment: off-chain.
  t.row({"fast payment (bind+verify)", "-", "per payment", "0", "0.0000"});

  // Dispute flow: build the binding and evidence.
  const auto coins = sim::find_spendable(h.btc_chain, h.customer_party.script);
  const auto [coin_op, coin] = coins.front();
  Invoice inv;
  inv.amount_sat = coin.out.value / 2;
  inv.compensation = 50'000;
  inv.pay_to = h.merchant_party.script;
  inv.merchant_psc = h.merchant_psc;
  inv.expires_at_ms = 100 * kHourMs;
  FastPayPackage pkg = h.wallet.create_fastpay(inv, coin_op, coin.out.value, 0, 100 * kHourMs);

  psc::PscTx open;
  open.from = h.merchant_psc;
  open.to = h.judger;
  open.value = h.cfg.dispute_bond;
  open.method = "openDispute";
  open.args = encode_open_dispute_args(1, pkg.binding);
  const auto open_r = h.psc.execute_now(open, kHourMs);
  t.row({"openDispute", "merchant (bond)", "per dispute", bench::fmt_u(open_r.gas_used),
         bench::fmt(gas_ref.gas_to_usd(open_r.gas_used), 4)});

  // 6-header merchant evidence.
  h.mine_block_with({pkg.payment_tx});
  for (int i = 0; i < 5; ++i) h.mine_block_with({});
  const auto headers = *headers_since(h.btc_chain, h.cfg.initial_checkpoint);
  psc::PscTx mev;
  mev.from = h.merchant_psc;
  mev.to = h.judger;
  mev.method = "submitMerchantEvidence";
  mev.args = encode_merchant_evidence_args(1, headers);
  mev.gas_limit = 8'000'000;
  const auto mev_r = h.psc.execute_now(mev, kHourMs + 1);
  t.row({"submitMerchantEvidence (6 hdr)", "merchant", "per dispute",
         bench::fmt_u(mev_r.gas_used), bench::fmt(gas_ref.gas_to_usd(mev_r.gas_used), 4)});

  // Customer inclusion evidence (6 headers + Merkle proof).
  const auto ev = build_inclusion_evidence(h.btc_chain, h.cfg.initial_checkpoint,
                                           pkg.payment_tx.txid(), h.cfg.required_depth);
  psc::PscTx cev;
  cev.from = h.customer_psc;
  cev.to = h.judger;
  cev.method = "submitCustomerEvidence";
  cev.args = encode_customer_evidence_args(1, ev->headers, ev->proof, ev->header_index);
  cev.gas_limit = 8'000'000;
  const auto cev_r = h.psc.execute_now(cev, kHourMs + 2);
  t.row({"submitCustomerEvidence (6 hdr)", "customer", "per dispute",
         bench::fmt_u(cev_r.gas_used), bench::fmt(gas_ref.gas_to_usd(cev_r.gas_used), 4)});

  // Judge.
  psc::PscTx judge;
  judge.from = h.merchant_psc;
  judge.to = h.judger;
  judge.method = "judge";
  judge.args = encode_escrow_id_arg(1);
  const auto judge_r = h.psc.execute_now(judge, kHourMs + h.cfg.evidence_window_ms + 1);
  t.row({"judge", "either", "per dispute", bench::fmt_u(judge_r.gas_used),
         bench::fmt(gas_ref.gas_to_usd(judge_r.gas_used), 4)});

  // Checkpoint update, 10 headers.
  for (int i = 0; i < 4; ++i) h.mine_block_with({});
  const auto cp_headers = *headers_since(h.btc_chain, h.cfg.initial_checkpoint);
  psc::PscTx cp;
  cp.from = h.merchant_psc;
  cp.to = h.judger;
  cp.method = "updateCheckpoint";
  cp.args = encode_checkpoint_args(cp_headers);
  cp.gas_limit = 8'000'000;
  const auto cp_r = h.psc.execute_now(cp, kHourMs + h.cfg.evidence_window_ms + 2);
  t.row({"updateCheckpoint (10 hdr)", "relayer", "periodic", bench::fmt_u(cp_r.gas_used),
         bench::fmt(gas_ref.gas_to_usd(cp_r.gas_used), 4)});

  // Withdraw.
  const auto wd = h.psc.execute_now(h.wallet.make_withdraw_tx(h.judger), 50 * kHourMs);
  t.row({"withdraw (escrow close)", "customer", "once per escrow", bench::fmt_u(wd.gas_used),
         bench::fmt(gas_ref.gas_to_usd(wd.gas_used), 4)});

  t.print();

  std::printf("\n## Amortized extra fee per fast payment (honest path)\n");
  std::printf("# setup = deposit + withdraw; disputes are paid by the losing party\n");
  {
    const std::uint64_t setup_gas = dep.gas_used + wd.gas_used;
    bench::Table amort({"payments through escrow", "setup USD", "extra fee per payment USD",
                        "vs on-chain BTC fee/tx"});
    for (std::uint64_t n : {1ULL, 10ULL, 100ULL, 1000ULL, 10000ULL}) {
      const auto row = analysis::amortize(setup_gas, n, gas_ref);
      amort.row({bench::fmt_u(n), bench::fmt(row.setup_usd, 4),
                 bench::fmt(row.per_payment_usd, 5), bench::fmt(btc_ref.tx_fee_usd(), 3)});
    }
    amort.print();

    bench::JsonDoc doc;
    doc.set("experiment", "e4_gas_costs");
    doc.add_table("operation_gas", t);
    doc.add_table("amortized_fee", amort);
    doc.write("BENCH_e4.json");
  }

  std::printf(
      "\n# Reading: the honest fast path performs zero on-chain operations per\n"
      "# payment; the one-time escrow setup amortizes to well under a cent —\n"
      "# 'no extra operation fee' relative to the ~$1.8 BTC tx fee both schemes pay.\n");
  return 0;
}
