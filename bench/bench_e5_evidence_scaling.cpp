// E5 — Judgment verification cost vs evidence size: gas and CPU time for
// PayJudger to verify k-header evidence chains (merchant side) and
// k-header + Merkle-proof evidence (customer side). Each case runs with
// the verification pool inline (0 threads) and at 4 threads: header PoW
// hashing fans out, but gas must be bit-identical — the metered pass is
// sequential by construction.
#include <chrono>
#include <cstdio>

#include "analysis/economics.h"
#include "bench_table.h"
#include "btc/pow.h"
#include "btcfast/customer.h"
#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcsim/scenario.h"
#include "common/thread_pool.h"

using namespace btcfast;
using namespace btcfast::core;

namespace {

constexpr std::uint64_t kHourMs = 60ULL * 60 * 1000;

struct CaseResult {
  psc::Gas merchant_gas = 0;
  psc::Gas customer_gas = 0;
  double merchant_us = 0.0;
  double customer_us = 0.0;
};

CaseResult run_case(std::uint32_t k, std::size_t threads) {
  common::ThreadPool::configure_global(threads);

  btc::ChainParams params = btc::ChainParams::regtest();
  btc::Chain chain(params);
  sim::Party customer_party = sim::Party::make(11);
  sim::Party merchant_party = sim::Party::make(22);
  for (const auto& b : sim::build_funding_chain(params, {customer_party.script}, 2)) {
    (void)chain.submit_block(b);
  }

  PayJudgerConfig cfg;
  cfg.pow_limit = params.pow_limit;
  cfg.initial_checkpoint = chain.tip_hash();
  cfg.required_depth = k;
  cfg.evidence_window_ms = kHourMs;
  cfg.min_collateral = 1'000;
  cfg.dispute_bond = 500;

  psc::PscChain psc;
  const auto judger = psc.deploy("payjudger", std::make_unique<PayJudger>(cfg));
  const auto customer_psc = psc::Address::from_label("customer");
  const auto merchant_psc = psc::Address::from_label("merchant");
  psc.mint(customer_psc, 1'000'000'000);
  psc.mint(merchant_psc, 1'000'000'000);

  CustomerWallet wallet(customer_party, customer_psc, 1);
  (void)psc.execute_now(wallet.make_deposit_tx(judger, 200'000, 100 * kHourMs), 0);

  const auto coins = sim::find_spendable(chain, customer_party.script);
  const auto [coin_op, coin] = coins.front();
  Invoice inv;
  inv.amount_sat = coin.out.value / 2;
  inv.compensation = 50'000;
  inv.pay_to = merchant_party.script;
  inv.merchant_psc = merchant_psc;
  inv.expires_at_ms = 100 * kHourMs;
  FastPayPackage pkg = wallet.create_fastpay(inv, coin_op, coin.out.value, 0, 100 * kHourMs);

  psc::PscTx open;
  open.from = merchant_psc;
  open.to = judger;
  open.value = cfg.dispute_bond;
  open.method = "openDispute";
  open.args = encode_open_dispute_args(1, pkg.binding);
  (void)psc.execute_now(open, kHourMs);

  // Mine the payment + k-1 more blocks.
  auto mine = [&](std::vector<btc::Transaction> txs) {
    btc::Block b;
    b.header.prev_hash = chain.tip_hash();
    b.header.time = chain.tip_header().time + 600;
    b.header.bits = params.genesis_bits;
    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = chain.height() + 1;
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, merchant_party.script});
    b.txs.push_back(cb);
    for (auto& tx : txs) b.txs.push_back(std::move(tx));
    (void)btc::mine_block(b, params);
    (void)chain.submit_block(b);
  };
  mine({pkg.payment_tx});
  for (std::uint32_t i = 1; i < k; ++i) mine({});

  const auto headers = *headers_since(chain, cfg.initial_checkpoint);

  psc::PscTx mev;
  mev.from = merchant_psc;
  mev.to = judger;
  mev.method = "submitMerchantEvidence";
  mev.args = encode_merchant_evidence_args(1, headers);
  mev.gas_limit = 20'000'000;
  const auto m0 = std::chrono::steady_clock::now();
  const auto mev_r = psc.execute_now(mev, kHourMs + 1);
  const auto m1 = std::chrono::steady_clock::now();

  const auto ev = build_inclusion_evidence(chain, cfg.initial_checkpoint, pkg.payment_tx.txid(), k);
  psc::PscTx cev;
  cev.from = customer_psc;
  cev.to = judger;
  cev.method = "submitCustomerEvidence";
  cev.args = encode_customer_evidence_args(1, ev->headers, ev->proof, ev->header_index);
  cev.gas_limit = 20'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  const auto cev_r = psc.execute_now(cev, kHourMs + 2);
  const auto t1 = std::chrono::steady_clock::now();

  auto us = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(b - a).count();
  };
  return CaseResult{mev_r.gas_used, cev_r.gas_used, us(m0, m1), us(t0, t1)};
}

}  // namespace

int main() {
  const auto gas_ref = analysis::GasReference::late2020();

  std::printf("# E5 — evidence verification cost vs chain length k\n");
  std::printf("# fresh dispute per row; payment mined in the first post-anchor block\n\n");

  bench::Table t({"k headers", "merchant ev. gas", "merchant USD", "customer ev. gas",
                  "customer USD", "CPU us mev (0t)", "CPU us mev (4t)", "CPU us cev (0t)",
                  "gas matches"});
  bool all_gas_match = true;

  for (std::uint32_t k = 1; k <= 12; ++k) {
    const CaseResult inline_run = run_case(k, 0);
    const CaseResult pooled_run = run_case(k, 4);
    const bool gas_match = inline_run.merchant_gas == pooled_run.merchant_gas &&
                           inline_run.customer_gas == pooled_run.customer_gas;
    all_gas_match &= gas_match;

    t.row({std::to_string(k), bench::fmt_u(inline_run.merchant_gas),
           bench::fmt(gas_ref.gas_to_usd(inline_run.merchant_gas), 4),
           bench::fmt_u(inline_run.customer_gas),
           bench::fmt(gas_ref.gas_to_usd(inline_run.customer_gas), 4),
           bench::fmt(inline_run.merchant_us, 1), bench::fmt(pooled_run.merchant_us, 1),
           bench::fmt(inline_run.customer_us, 1), gas_match ? "yes" : "NO"});
  }
  common::ThreadPool::configure_global(0);
  t.print();

  std::printf(
      "\n# Reading: verification cost is linear in k (one SHA-256d + target check\n"
      "# per header) plus a logarithmic Merkle term for the customer proof; even\n"
      "# k=12 stays far below a block gas limit, so judgments always fit on-chain.\n"
      "# Gas is identical with the PoW hashing pool at 0 and 4 threads: %s\n",
      all_gas_match ? "yes" : "NO");

  bench::JsonDoc doc;
  doc.set("experiment", "e5_evidence_scaling");
  doc.set("gas_thread_invariant", all_gas_match ? "yes" : "no");
  doc.add_table("evidence_cost", t);
  doc.write("BENCH_e5.json");
  return all_gas_match ? 0 : 1;
}
