// E6 — Economic security of the PoW judgment: the cost of forging a
// winning k-header evidence chain at mainnet difficulty vs the escrow
// value at stake, and the judgment depth needed for a given escrow size.
#include <cstdio>

#include "analysis/attack_cost.h"
#include "bench_table.h"

int main() {
  using namespace btcfast;
  using namespace btcfast::analysis;

  const auto ref = MainnetReference::late2020();
  std::printf("# E6 — attacker cost to forge winning PoW evidence (mainnet economics)\n");
  std::printf("# reference: difficulty=%.2fT, BTC=$%.0f, reward=%.2f+%.2f BTC/block\n\n",
              ref.difficulty / 1e12, ref.btc_usd, ref.block_reward_btc, ref.avg_fees_btc);

  bench::JsonDoc doc;
  doc.set("experiment", "e6_attack_cost");

  std::printf("## Forgery cost vs judgment depth k\n");
  {
    bench::Table t({"k (depth)", "expected hashes", "forgery cost (USD)",
                    "breakeven escrow (USD)"});
    for (const auto& row : attack_cost_table(ref, 12)) {
      t.row({std::to_string(row.k),
             bench::fmt_sci(hashes_per_block(ref) * row.k),
             bench::fmt(row.forgery_cost_usd, 0), bench::fmt(row.breakeven_escrow_usd, 0)});
    }
    t.print();
    doc.add_table("forgery_cost_vs_depth", t);
  }

  std::printf("\n## Judgment depth needed so forgery is unprofitable\n");
  {
    bench::Table t({"escrow value (USD)", "required depth k", "forgery cost at k (USD)"});
    for (double escrow : {1e3, 1e4, 1e5, 5e5, 1e6, 5e6, 1e7}) {
      const auto k = safe_depth_for_escrow(ref, escrow);
      t.row({bench::fmt(escrow, 0), std::to_string(k), bench::fmt(forgery_cost_usd(ref, k), 0)});
    }
    t.print();
    doc.add_table("required_depth_vs_escrow", t);
  }

  std::printf(
      "\n# Reading: attack cost grows linearly in k at ~$170k per block (cost +\n"
      "# opportunity); k=6 secures escrows up to ~$1M, matching the paper's\n"
      "# 'comparable security to 6 confirmations' at retail scales.\n");
  doc.write("BENCH_e6.json");
  return 0;
}
