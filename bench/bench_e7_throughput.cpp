// E7 — Merchant-side fast-pay throughput: how many acceptance decisions a
// merchant sustains through the fast-verify engine (wNAF/Shamir kernel +
// signature cache + batch intake across a thread pool), and the crypto
// ceiling that bounds it. Emits BENCH_e7.json for the perf trajectory.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_table.h"
#include "btcfast/orchestrator.h"
#include "common/thread_pool.h"
#include "crypto/ecdsa.h"
#include "crypto/sha256.h"
#include "crypto/sigcache.h"

using namespace btcfast;

namespace {

double ops_per_sec(double total_us, int n) { return n / (total_us / 1e6); }

double elapsed_us(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(b - a).count();
}

}  // namespace

int main() {
  std::printf("# E7 — merchant acceptance throughput (fast-verify engine)\n\n");

  constexpr int kPackages = 16;
  core::DeploymentConfig cfg;
  cfg.seed = 12;
  cfg.funded_coins = kPackages;
  core::Deployment dep(cfg);

  // One distinct package per funded coin: distinct binding signatures and
  // distinct payment-input signatures, so a cold cache takes real misses.
  const auto now = static_cast<std::uint64_t>(dep.simulator().now());
  const auto coins =
      sim::find_spendable(dep.customer_node().chain(), dep.customer().btc_identity().script);
  std::vector<core::Invoice> invoices;
  std::vector<core::FastPayPackage> pkgs;
  for (int i = 0; i < kPackages && i < static_cast<int>(coins.size()); ++i) {
    invoices.push_back(
        dep.merchant().make_invoice(2 * btc::kCoin, cfg.compensation, now, 60ULL * 60 * 1000));
    pkgs.push_back(dep.customer().create_fastpay(invoices.back(), coins[i].first,
                                                 coins[i].second.out.value, now,
                                                 cfg.binding_ttl_ms));
  }
  const int n = static_cast<int>(pkgs.size());
  auto& cache = crypto::SigCache::global();

  // --- Serial baseline (the seed's code path): per-decision latency. ---
  auto run_serial = [&]() {
    int ok = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
      ok += dep.merchant().evaluate_fastpay(pkgs[i], invoices[i], now).accepted;
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::pair<double, int>{elapsed_us(t0, t1) / n, ok};
  };
  cache.clear();
  cache.reset_stats();
  const auto [serial_cold_us, serial_cold_ok] = run_serial();
  const auto [serial_warm_us, serial_warm_ok] = run_serial();

  // --- Batch intake across the pool, cold and warm cache. ---
  bench::Table scaling({"threads", "cache", "per-decision (us)", "payments/s", "hits", "misses"});
  bench::Table summary({"stage", "latency (us)", "throughput (ops/s)"});
  bool all_ok = serial_cold_ok == n && serial_warm_ok == n;

  const int thread_counts[] = {1, 2, 4, 8};
  for (const int threads : thread_counts) {
    common::ThreadPool::configure_global(static_cast<std::size_t>(threads));
    for (const bool warm : {false, true}) {
      if (!warm) cache.clear();
      cache.reset_stats();
      const auto t0 = std::chrono::steady_clock::now();
      const auto decisions = dep.merchant().evaluate_fastpay_batch(pkgs, invoices, now);
      const auto t1 = std::chrono::steady_clock::now();
      for (const auto& d : decisions) all_ok &= d.accepted;
      const double per_us = elapsed_us(t0, t1) / n;
      const auto stats = cache.stats();
      scaling.row({bench::fmt_u(static_cast<std::uint64_t>(threads)), warm ? "warm" : "cold",
                   bench::fmt(per_us, 1), bench::fmt(ops_per_sec(per_us, 1), 0),
                   bench::fmt_u(stats.hits), bench::fmt_u(stats.misses)});
    }
  }
  common::ThreadPool::configure_global(0);

  // --- Crypto ceiling components. ---
  const auto key = *crypto::PrivateKey::from_scalar(crypto::U256(12345));
  const auto pub = crypto::PublicKey::derive(key);
  const auto digest = crypto::sha256(as_bytes(std::string("bench")));

  const int n_sign = 200;
  auto s0 = std::chrono::steady_clock::now();
  crypto::Signature sig{};
  for (int i = 0; i < n_sign; ++i) sig = crypto::ecdsa_sign(key, digest);
  auto s1 = std::chrono::steady_clock::now();
  const double sign_us = elapsed_us(s0, s1) / n_sign;

  const int n_verify = 200;
  auto v0 = std::chrono::steady_clock::now();
  bool sink = true;
  for (int i = 0; i < n_verify; ++i) sink &= crypto::ecdsa_verify(pub, digest, sig);
  auto v1 = std::chrono::steady_clock::now();
  const double verify_us = elapsed_us(v0, v1) / n_verify;

  // Cached verify: first call inserts, the rest are hash lookups.
  const auto enc = pub.serialize();
  const auto sig_ser = sig.serialize();
  const int n_cached = 2000;
  auto c0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n_cached; ++i) {
    sink &= crypto::ecdsa_verify_cached(&cache, {enc.data(), enc.size()}, digest,
                                        {sig_ser.data(), sig_ser.size()});
  }
  auto c1 = std::chrono::steady_clock::now();
  const double cached_us = elapsed_us(c0, c1) / n_cached;

  // Header hashing ceiling: every evidence header and txid ultimately
  // funnels through the sha256d_80/sha256d_64 kernels.
  std::uint8_t hdr80[80];
  for (int i = 0; i < 80; ++i) hdr80[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const int n_hash = 100000;
  std::uint8_t hacc = 0;  // fold digests so the loop can't be elided
  auto h0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n_hash; ++i) hacc ^= crypto::sha256d_80(hdr80)[0];
  auto h1 = std::chrono::steady_clock::now();
  hdr80[79] = hacc;
  const double hash_us = elapsed_us(h0, h1) / n_hash;
  const double hashes_s = ops_per_sec(hash_us, 1);

  summary.row({std::string("sha256d(header) [") + crypto::sha256_impl_name() + "]",
               bench::fmt(hash_us, 3), bench::fmt(hashes_s, 0)});
  summary.row({"ECDSA sign (RFC6979)", bench::fmt(sign_us, 1),
               bench::fmt(ops_per_sec(sign_us, 1), 0)});
  summary.row({"ECDSA verify", bench::fmt(verify_us, 1),
               bench::fmt(ops_per_sec(verify_us, 1), 0)});
  summary.row({"ECDSA verify (sigcache hit)", bench::fmt(cached_us, 2),
               bench::fmt(ops_per_sec(cached_us, 1), 0)});
  summary.row({"evaluate_fastpay serial cold", bench::fmt(serial_cold_us, 1),
               bench::fmt(ops_per_sec(serial_cold_us, 1), 0)});
  summary.row({"evaluate_fastpay serial warm", bench::fmt(serial_warm_us, 1),
               bench::fmt(ops_per_sec(serial_warm_us, 1), 0)});
  summary.print();
  std::printf("\n");
  scaling.print();

  std::printf("\n# packages: %d, every decision accepted: %s\n", n, all_ok && sink ? "yes" : "NO");
  std::printf(
      "# Reading: a cold decision is bounded by two ECDSA verifications\n"
      "# (payment input + binding); the warm path turns both into hash\n"
      "# lookups, so a repeat check costs microseconds. Batch intake fans\n"
      "# the cold verifications across the pool; decisions are identical\n"
      "# for every thread count by construction.\n");

  bench::JsonDoc doc;
  doc.set("experiment", "e7_throughput");
  doc.set("packages", n);
  doc.set("serial_cold_us", serial_cold_us);
  doc.set("serial_warm_us", serial_warm_us);
  doc.set("sign_us", sign_us);
  doc.set("verify_us", verify_us);
  doc.set("verify_cached_us", cached_us);
  doc.set("sha256_impl", crypto::sha256_impl_name());
  doc.set("header_hashes_per_s", hashes_s);
  doc.set("all_accepted", all_ok && sink ? "yes" : "no");
  doc.add_table("summary", summary);
  doc.add_table("scaling", scaling);
  doc.write("BENCH_e7.json");
  return 0;
}
