// E7 — Merchant-side fast-pay throughput: how many acceptance decisions a
// single merchant core sustains, and the crypto ceiling that bounds it.
#include <chrono>
#include <cstdio>

#include "bench_table.h"
#include "btcfast/orchestrator.h"
#include "crypto/ecdsa.h"
#include "crypto/sha256.h"

using namespace btcfast;

namespace {

double ops_per_sec(double total_us, int n) { return n / (total_us / 1e6); }

}  // namespace

int main() {
  std::printf("# E7 — merchant acceptance throughput (single core)\n\n");

  // --- Full evaluate_fastpay pipeline. ---
  core::DeploymentConfig cfg;
  cfg.seed = 12;
  cfg.funded_coins = 2;
  core::Deployment dep(cfg);

  // Build one valid package and decide on it repeatedly (evaluation is
  // read-only; repeated calls exercise the identical code path a stream
  // of distinct payments would).
  const auto now = static_cast<std::uint64_t>(dep.simulator().now());
  const auto invoice =
      dep.merchant().make_invoice(2 * btc::kCoin, cfg.compensation, now, 60ULL * 60 * 1000);
  const auto coins =
      sim::find_spendable(dep.customer_node().chain(), dep.customer().btc_identity().script);
  auto pkg = dep.customer().create_fastpay(invoice, coins[0].first, coins[0].second.out.value,
                                           now, cfg.binding_ttl_ms);

  const int decisions = 200;
  const auto t0 = std::chrono::steady_clock::now();
  int ok = 0;
  for (int i = 0; i < decisions; ++i) {
    ok += dep.merchant().evaluate_fastpay(pkg, invoice, now).accepted;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double eval_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(t1 - t0).count() /
      decisions;

  // --- Crypto ceiling components. ---
  const auto key = *crypto::PrivateKey::from_scalar(crypto::U256(12345));
  const auto pub = crypto::PublicKey::derive(key);
  const auto digest = crypto::sha256(as_bytes(std::string("bench")));

  const int n_sign = 100;
  auto s0 = std::chrono::steady_clock::now();
  crypto::Signature sig{};
  for (int i = 0; i < n_sign; ++i) sig = crypto::ecdsa_sign(key, digest);
  auto s1 = std::chrono::steady_clock::now();
  const double sign_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(s1 - s0).count() /
      n_sign;

  const int n_verify = 100;
  auto v0 = std::chrono::steady_clock::now();
  bool sink = true;
  for (int i = 0; i < n_verify; ++i) sink &= crypto::ecdsa_verify(pub, digest, sig);
  auto v1 = std::chrono::steady_clock::now();
  const double verify_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(v1 - v0).count() /
      n_verify;

  bench::Table t({"stage", "latency (us)", "throughput (ops/s)"});
  t.row({"ECDSA sign (RFC6979)", bench::fmt(sign_us, 1),
         bench::fmt(ops_per_sec(sign_us, 1), 0)});
  t.row({"ECDSA verify", bench::fmt(verify_us, 1), bench::fmt(ops_per_sec(verify_us, 1), 0)});
  t.row({"evaluate_fastpay (2 verifies + escrow view)", bench::fmt(eval_us, 1),
         bench::fmt(ops_per_sec(eval_us, 1), 0)});
  t.print();

  std::printf("\n# decisions evaluated: %d, all accepted: %s\n", decisions,
              ok == decisions && sink ? "yes" : "NO");
  std::printf(
      "# Reading: the decision is dominated by two signature verifications\n"
      "# (payment input + binding); a single merchant core clears hundreds of\n"
      "# payments per second — far above retail point-of-sale rates, and the\n"
      "# sub-millisecond latency keeps E1's sub-second bound comfortable.\n");
  return 0;
}
