// E8 — End-to-end dispute resolution: full-stack runs (Bitcoin network +
// attacker + PSC chain + PayJudger) reporting the dispute timeline and
// outcome for adversarial and wrongful-dispute scenarios.
#include <cstdio>

#include "bench_table.h"
#include "btcfast/orchestrator.h"

using namespace btcfast;
using namespace btcfast::core;

namespace {

constexpr SimTime kSimHour = 60 * 60 * 1000;

struct RunReport {
  std::string scenario;
  bool accepted = false;
  bool payment_survived = false;
  std::size_t disputes = 0;
  std::size_t merchant_wins = 0;
  std::size_t customer_wins = 0;
  double resolution_h = 0;  ///< accept -> judgment, simulated hours
  psc::Value merchant_delta = 0;
};

RunReport run(const std::string& name, DeploymentConfig cfg, SimTime duration) {
  Deployment dep(cfg);
  const psc::Value merchant_before =
      dep.psc().state().balance(dep.merchant().config().self_psc);
  const auto r = dep.perform_fastpay(10 * btc::kCoin);
  dep.run_for(duration);

  const auto s = dep.summarize();
  RunReport rep;
  rep.scenario = name;
  rep.accepted = r.accepted;
  rep.payment_survived = dep.merchant_node().chain().confirmations(r.txid) > 0;
  rep.disputes = s.disputes_opened;
  rep.merchant_wins = s.judged_for_merchant;
  rep.customer_wins = s.judged_for_customer;
  // Resolution time: dispute_after + evidence window + polling slack.
  const auto judged = dep.receipts_for("judge");
  if (!judged.empty()) {
    rep.resolution_h = static_cast<double>(judged.front().block_number) *
                       cfg.psc_block_interval_ms / 1000.0 / 3600.0;
  }
  const psc::Value after = dep.psc().state().balance(dep.merchant().config().self_psc);
  rep.merchant_delta = after > merchant_before ? after - merchant_before : 0;
  return rep;
}

}  // namespace

int main() {
  std::printf("# E8 — end-to-end dispute resolution on the full simulator\n");
  std::printf("# BTC blocks: 600 s; PSC blocks: 13 s; merchant polls every 60 s\n\n");

  std::vector<RunReport> reports;

  // Scenario A: double-spending customer (several attacker strengths).
  for (double q : {0.3, 0.45, 0.6}) {
    DeploymentConfig cfg;
    cfg.seed = 100 + static_cast<std::uint64_t>(q * 100);
    cfg.attacker_share = q;
    cfg.attacker_give_up_deficit = 50;
    cfg.required_depth = 3;
    cfg.dispute_after_ms = 90 * 60 * 1000;
    cfg.evidence_window_ms = 60 * 60 * 1000;
    reports.push_back(run("double-spend q=" + bench::fmt(q, 2), cfg, 8 * kSimHour));
  }

  // Scenario B: honest customer, impatient merchant (wrongful dispute).
  {
    DeploymentConfig cfg;
    cfg.seed = 200;
    cfg.attacker_share = 0.0;
    cfg.dispute_after_ms = 60'000;
    cfg.evidence_window_ms = 90 * 60 * 1000;
    cfg.required_depth = 3;
    cfg.settle_confirmations = 3;
    cfg.poll_interval_ms = 30'000;
    reports.push_back(run("wrongful dispute (honest customer)", cfg, 6 * kSimHour));
  }

  // Scenario C: honest everything (control).
  {
    DeploymentConfig cfg;
    cfg.seed = 300;
    cfg.settle_confirmations = 3;
    reports.push_back(run("honest control", cfg, 3 * kSimHour));
  }

  bench::Table t({"scenario", "accepted", "payment survived", "disputes",
                  "merchant wins", "customer wins", "judged at (sim h)",
                  "merchant payout"});
  for (const auto& r : reports) {
    t.row({r.scenario, r.accepted ? "yes" : "no", r.payment_survived ? "yes" : "no",
           std::to_string(r.disputes), std::to_string(r.merchant_wins),
           std::to_string(r.customer_wins), bench::fmt(r.resolution_h, 2),
           bench::fmt_u(r.merchant_delta)});
  }
  t.print();

  std::printf(
      "\n# Reading: a successful double spend always converts into a merchant\n"
      "# compensation via the PoW judgment; a wrongful dispute resolves for the\n"
      "# customer (who proves inclusion) and costs the merchant its bond; honest\n"
      "# runs never touch the contract after setup.\n");

  bench::JsonDoc doc;
  doc.set("experiment", "e8_dispute_e2e");
  doc.add_table("scenarios", t);
  doc.write("BENCH_e8.json");
  return 0;
}
