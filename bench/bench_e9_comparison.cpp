// E9 — Scheme comparison: BTCFast against every baseline across waiting
// time, security, trust assumptions, capital requirements and fees.
#include <cstdio>

#include "analysis/doublespend.h"
#include "analysis/economics.h"
#include "baselines/acceptance_policy.h"
#include "bench_table.h"

int main() {
  using namespace btcfast;
  using namespace btcfast::analysis;

  std::printf("# E9 — payment scheme comparison (q = attacker hash share)\n\n");

  const auto gas_ref = GasReference::late2020();
  const auto btc_ref = BtcFeeReference::late2020();
  const double risk6 = rosenfeld_probability(0.10, 6);
  const double risk0 = rosenfeld_probability(0.10, 0);

  bench::Table t({"scheme", "wait/payment", "double-spend risk (q=0.10)",
                  "trust assumption", "capital locked", "extra fee/payment"});
  t.row({"6-conf (status quo)", "~3600 s", bench::fmt_sci(risk6), "Bitcoin PoW majority",
         "none", "$0"});
  t.row({"1-conf", "~600 s", bench::fmt_sci(rosenfeld_probability(0.10, 1)),
         "Bitcoin PoW majority", "none", "$0"});
  t.row({"zero-conf", "~0.1 s", bench::fmt_sci(risk0), "first-seen relay policy", "none",
         "$0"});
  t.row({"payment channel", "~0.05 s (after 1 h setup)", "0 (in-channel)",
         "Bitcoin PoW majority", "capacity per merchant",
         "$" + bench::fmt(btc_ref.tx_fee_usd() / 100, 4) + " (open/close amortized /100)"});
  t.row({"central escrow", "~0.2 s", "custodian-dependent", "TRUSTED third party",
         "deposit with custodian", "custodian margin"});
  t.row({"BTCFast (this work)", "< 1 s", bench::fmt_sci(risk6) + " (k=6 judgment)",
         "Bitcoin PoW majority + PSC chain liveness", "one escrow, all merchants",
         "$" + bench::fmt(gas_ref.gas_to_usd(160'000) / 1000, 5) + " (setup amortized /1000)"});
  t.print();

  std::printf(
      "\n# Reading: BTCFast is the only scheme with sub-second acceptance, 6-conf\n"
      "# security, no trusted custodian, and collateral shared across merchants.\n"
      "# Its extra trust vs k-conf waiting is PSC-chain liveness for disputes only.\n");

  bench::JsonDoc doc;
  doc.set("experiment", "e9_comparison");
  doc.add_table("schemes", t);
  doc.write("BENCH_e9.json");
  return 0;
}
