// Crypto micro-benchmarks: the primitive costs under E1/E7's latency and
// throughput numbers. Google-benchmark timings first, then a hand-timed
// hashing-engine section that lands BENCH_micro_crypto.json — including
// the mine_header attempts/s comparison against a seed-style grind
// (per-attempt heap serialization + generic streaming sha256d on the
// portable kernel), which is the acceptance evidence for the midstate +
// specialized-kernel path.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_table.h"
#include "btc/header.h"
#include "btc/params.h"
#include "btc/pow.h"
#include "common/thread_pool.h"
#include "crypto/ecdsa.h"
#include "crypto/merkle.h"
#include "crypto/ripemd160.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace {

using namespace btcfast;
using namespace btcfast::crypto;

void BM_Sha256_64B(benchmark::State& state) {
  Bytes data(64, 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_1KiB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Sha256d_Header(benchmark::State& state) {
  Bytes data(80, 0x11);
  for (auto _ : state) benchmark::DoNotOptimize(sha256d(data));
}
BENCHMARK(BM_Sha256d_Header);

void BM_Sha256d64_Kernel(benchmark::State& state) {
  std::uint8_t data[64];
  std::memset(data, 0xab, sizeof(data));
  for (auto _ : state) benchmark::DoNotOptimize(sha256d_64(data));
}
BENCHMARK(BM_Sha256d64_Kernel);

void BM_Sha256d80_Kernel(benchmark::State& state) {
  std::uint8_t data[80];
  std::memset(data, 0x11, sizeof(data));
  for (auto _ : state) benchmark::DoNotOptimize(sha256d_80(data));
}
BENCHMARK(BM_Sha256d80_Kernel);

void BM_MidstateTail16(benchmark::State& state) {
  std::uint8_t data[80];
  std::memset(data, 0x11, sizeof(data));
  const auto midstate = Sha256Midstate::of_first_block(data);
  for (auto _ : state) benchmark::DoNotOptimize(midstate.sha256d_tail16(data + 64));
}
BENCHMARK(BM_MidstateTail16);

void BM_Hash160(benchmark::State& state) {
  Bytes data(33, 0x02);
  for (auto _ : state) benchmark::DoNotOptimize(hash160(data));
}
BENCHMARK(BM_Hash160);

void BM_EcdsaSign(benchmark::State& state) {
  const auto key = *PrivateKey::from_scalar(U256(987654321));
  const auto digest = sha256(as_bytes(std::string("bench message")));
  for (auto _ : state) benchmark::DoNotOptimize(ecdsa_sign(key, digest));
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const auto key = *PrivateKey::from_scalar(U256(987654321));
  const auto pub = PublicKey::derive(key);
  const auto digest = sha256(as_bytes(std::string("bench message")));
  const auto sig = ecdsa_sign(key, digest);
  for (auto _ : state) benchmark::DoNotOptimize(ecdsa_verify(pub, digest, sig));
}
BENCHMARK(BM_EcdsaVerify);

void BM_ScalarMulBase(benchmark::State& state) {
  const U256 k = *U256::from_hex("123456789abcdef123456789abcdef123456789abcdef");
  for (auto _ : state) benchmark::DoNotOptimize(secp::scalar_mul_base(k));
}
BENCHMARK(BM_ScalarMulBase);

void BM_ScalarMul(benchmark::State& state) {
  const U256 k = *U256::from_hex("123456789abcdef123456789abcdef123456789abcdef");
  const auto p = PublicKey::derive(*PrivateKey::from_scalar(U256(987654321))).point();
  for (auto _ : state) benchmark::DoNotOptimize(secp::scalar_mul(k, p));
}
BENCHMARK(BM_ScalarMul);

// The seed's bit-at-a-time kernel, kept as the correctness reference —
// benchmarked so the wNAF speedup stays visible in the same run.
void BM_ScalarMulNaive(benchmark::State& state) {
  const U256 k = *U256::from_hex("123456789abcdef123456789abcdef123456789abcdef");
  const auto p = PublicKey::derive(*PrivateKey::from_scalar(U256(987654321))).point();
  for (auto _ : state) benchmark::DoNotOptimize(secp::scalar_mul_naive(k, p));
}
BENCHMARK(BM_ScalarMulNaive);

void BM_PubkeyDecompress(benchmark::State& state) {
  const auto key = *PrivateKey::from_scalar(U256(42));
  const auto enc = PublicKey::derive(key).serialize();
  for (auto _ : state) benchmark::DoNotOptimize(secp::decompress({enc.data(), enc.size()}));
}
BENCHMARK(BM_PubkeyDecompress);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    leaves.push_back(sha256(as_bytes(std::to_string(i))));
  }
  for (auto _ : state) benchmark::DoNotOptimize(merkle_root(leaves));
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256)->Arg(2048);

void BM_MerkleProofVerify(benchmark::State& state) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < 2048; ++i) leaves.push_back(sha256(as_bytes(std::to_string(i))));
  const auto root = merkle_root(leaves);
  const auto branch = merkle_branch(leaves, 1027);
  for (auto _ : state) benchmark::DoNotOptimize(merkle_verify(leaves[1027], branch, root));
}
BENCHMARK(BM_MerkleProofVerify);

void BM_HeaderPowCheck(benchmark::State& state) {
  const auto params = btc::ChainParams::regtest();
  btc::BlockHeader h;
  h.bits = params.genesis_bits;
  (void)btc::mine_header(h, params.pow_limit);
  for (auto _ : state) benchmark::DoNotOptimize(btc::check_proof_of_work(h, params.pow_limit));
}
BENCHMARK(BM_HeaderPowCheck);

void BM_MineRegtestBlock(benchmark::State& state) {
  const auto params = btc::ChainParams::regtest();
  std::uint32_t salt = 0;
  for (auto _ : state) {
    btc::BlockHeader h;
    h.bits = params.genesis_bits;
    h.time = salt++;
    benchmark::DoNotOptimize(btc::mine_header(h, params.pow_limit));
  }
}
BENCHMARK(BM_MineRegtestBlock)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Hand-timed hashing-engine section → BENCH_micro_crypto.json
// ---------------------------------------------------------------------------

double elapsed_ns(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(b - a).count();
}

/// ns per op of `body(i)` over `iters` calls.
template <typename F>
double time_ns(std::uint64_t iters, F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) body(i);
  const auto t1 = std::chrono::steady_clock::now();
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

/// The seed's mining loop, byte for byte in behavior: per attempt, write
/// the nonce into the struct, heap-serialize all 80 bytes, and run the
/// generic streaming double-SHA. Called with the scalar kernel forced so
/// the comparison is against what the seed could actually do.
std::uint64_t seed_style_grind(btc::BlockHeader header, const U256& target,
                               std::uint64_t max_attempts) {
  std::uint64_t sink = 0;
  for (std::uint64_t a = 0; a < max_attempts; ++a) {
    header.nonce = static_cast<std::uint32_t>(a);
    const Bytes ser = header.serialize();
    Sha256 h;
    h.update(ser);
    const auto first = h.finalize();
    h.update({first.data(), first.size()});
    const auto digest = h.finalize();
    const auto value = U256::from_le_bytes({digest.data(), digest.size()});
    if (value <= target) ++sink;  // never at the bench target; defeats DCE
  }
  return sink;
}

double hashes_per_s(double ns_per_op) { return 1e9 / ns_per_op; }

void run_hashing_engine_section() {
  std::printf("\n# Hashing engine (hand-timed) — impl: %s\n\n", sha256_impl_name());

  bench::JsonDoc doc;
  doc.set("experiment", "micro_crypto");
  doc.set("sha256_impl", sha256_impl_name());

  std::uint8_t hdr[80];
  for (int i = 0; i < 80; ++i) hdr[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const Bytes hdr_bytes(hdr, hdr + 80);
  Sha256Digest sink{};

  // --- Per-kernel latency, dispatched vs forced-scalar. ---
  bench::Table kernels({"kernel", "impl", "ns/hash", "hashes/s"});
  constexpr std::uint64_t kHashIters = 200000;
  for (const bool scalar : {false, true}) {
    const bool prev = sha256_force_scalar(scalar);
    const std::string impl = sha256_impl_name();
    const double streaming_ns = time_ns(kHashIters, [&](std::uint64_t) {
      Sha256 h;
      h.update(hdr_bytes);
      const auto first = h.finalize();
      h.update({first.data(), first.size()});
      sink = h.finalize();
    });
    const double d64_ns = time_ns(kHashIters, [&](std::uint64_t) { sink = sha256d_64(hdr); });
    const double d80_ns = time_ns(kHashIters, [&](std::uint64_t) { sink = sha256d_80(hdr); });
    const auto midstate = Sha256Midstate::of_first_block(hdr);
    const double mid_ns =
        time_ns(kHashIters, [&](std::uint64_t) { sink = midstate.sha256d_tail16(hdr + 64); });
    kernels.row({"sha256d streaming 80B", impl, bench::fmt(streaming_ns, 1),
                 bench::fmt(hashes_per_s(streaming_ns), 0)});
    kernels.row({"sha256d_64", impl, bench::fmt(d64_ns, 1), bench::fmt(hashes_per_s(d64_ns), 0)});
    kernels.row({"sha256d_80", impl, bench::fmt(d80_ns, 1), bench::fmt(hashes_per_s(d80_ns), 0)});
    kernels.row({"midstate tail16", impl, bench::fmt(mid_ns, 1),
                 bench::fmt(hashes_per_s(mid_ns), 0)});
    if (!scalar) {
      doc.set("sha256d_80_ns", d80_ns);
      doc.set("midstate_tail16_ns", mid_ns);
      doc.set("header_hashes_per_s", hashes_per_s(mid_ns));
    }
    (void)sha256_force_scalar(prev);
  }
  kernels.print();

  // --- mine_header attempts/s: engine vs seed-style grind. ---
  // bits 0x03000001 → target 1: no attempt can succeed, so both loops run
  // exactly `kGrindAttempts` attempts and the timing is pure grind cost.
  btc::BlockHeader header;
  header.bits = 0x03000001;
  header.time = 1234;
  const auto target = *btc::bits_to_target(header.bits);
  const auto pow_limit = btc::ChainParams::regtest().pow_limit;
  constexpr std::uint64_t kGrindAttempts = 200000;

  const auto m0 = std::chrono::steady_clock::now();
  const bool mined = btc::mine_header(header, pow_limit, 0, kGrindAttempts);
  const auto m1 = std::chrono::steady_clock::now();
  const double mine_ns = elapsed_ns(m0, m1) / static_cast<double>(kGrindAttempts);

  const bool prev = sha256_force_scalar(true);  // the seed only had the portable kernel
  const auto s0 = std::chrono::steady_clock::now();
  const std::uint64_t seed_sink = seed_style_grind(header, target, kGrindAttempts);
  const auto s1 = std::chrono::steady_clock::now();
  (void)sha256_force_scalar(prev);
  const double seed_ns = elapsed_ns(s0, s1) / static_cast<double>(kGrindAttempts);

  const double mine_aps = hashes_per_s(mine_ns);
  const double seed_aps = hashes_per_s(seed_ns);
  const double speedup = seed_ns / mine_ns;

  bench::Table mining({"grind", "ns/attempt", "attempts/s"});
  mining.row({"seed-style (serialize + streaming scalar)", bench::fmt(seed_ns, 1),
              bench::fmt(seed_aps, 0)});
  mining.row({std::string("mine_header (midstate, ") + sha256_impl_name() + ")",
              bench::fmt(mine_ns, 1), bench::fmt(mine_aps, 0)});
  std::printf("\n");
  mining.print();
  std::printf("\n# mine_header speedup vs seed grind: %.1fx%s\n", speedup,
              mined || seed_sink != 0 ? " (WARNING: grind terminated early)" : "");

  doc.set("mine_attempts_per_s", mine_aps);
  doc.set("seed_grind_attempts_per_s", seed_aps);
  doc.set("mine_header_speedup", speedup);

  // --- merkle_root: serial vs thread-pooled level reduction. ---
  bench::Table merkle({"leaves", "threads", "us/root"});
  for (const std::size_t n : {512u, 4096u}) {
    std::vector<Hash32> leaves(n);
    for (std::size_t i = 0; i < n; ++i) {
      leaves[i] = sha256(as_bytes(std::to_string(i)));
    }
    for (const std::size_t threads : {0u, 4u}) {
      common::ThreadPool::configure_global(threads);
      const std::uint64_t iters = 200;
      Hash32 root{};
      const double ns = time_ns(iters, [&](std::uint64_t) { root = merkle_root(leaves); });
      merkle.row({bench::fmt_u(n), bench::fmt_u(threads), bench::fmt(ns / 1e3, 1)});
      if (n == 4096) {
        doc.set(threads == 0 ? "merkle_root_4096_serial_us" : "merkle_root_4096_pool4_us",
                ns / 1e3);
      }
      benchmark::DoNotOptimize(root);
    }
  }
  common::ThreadPool::configure_global(0);
  std::printf("\n");
  merkle.print();

  doc.add_table("kernels", kernels);
  doc.add_table("mining", mining);
  doc.add_table("merkle", merkle);
  doc.write("BENCH_micro_crypto.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_hashing_engine_section();
  return 0;
}
