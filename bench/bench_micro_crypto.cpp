// Crypto micro-benchmarks: the primitive costs under E1/E7's latency and
// throughput numbers. Google-benchmark timings first, then a hand-timed
// hashing-engine section that lands BENCH_micro_crypto.json — including
// the mine_header attempts/s comparison against a seed-style grind
// (per-attempt heap serialization + generic streaming sha256d on the
// portable kernel), which is the acceptance evidence for the midstate +
// specialized-kernel path.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_table.h"
#include "btc/header.h"
#include "btc/params.h"
#include "btc/pow.h"
#include "common/thread_pool.h"
#include "crypto/batch_verify.h"
#include "crypto/ecdsa.h"
#include "crypto/merkle.h"
#include "crypto/ripemd160.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "crypto/sigcache.h"

namespace {

using namespace btcfast;
using namespace btcfast::crypto;

void BM_Sha256_64B(benchmark::State& state) {
  Bytes data(64, 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_1KiB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Sha256d_Header(benchmark::State& state) {
  Bytes data(80, 0x11);
  for (auto _ : state) benchmark::DoNotOptimize(sha256d(data));
}
BENCHMARK(BM_Sha256d_Header);

void BM_Sha256d64_Kernel(benchmark::State& state) {
  std::uint8_t data[64];
  std::memset(data, 0xab, sizeof(data));
  for (auto _ : state) benchmark::DoNotOptimize(sha256d_64(data));
}
BENCHMARK(BM_Sha256d64_Kernel);

void BM_Sha256d80_Kernel(benchmark::State& state) {
  std::uint8_t data[80];
  std::memset(data, 0x11, sizeof(data));
  for (auto _ : state) benchmark::DoNotOptimize(sha256d_80(data));
}
BENCHMARK(BM_Sha256d80_Kernel);

void BM_MidstateTail16(benchmark::State& state) {
  std::uint8_t data[80];
  std::memset(data, 0x11, sizeof(data));
  const auto midstate = Sha256Midstate::of_first_block(data);
  for (auto _ : state) benchmark::DoNotOptimize(midstate.sha256d_tail16(data + 64));
}
BENCHMARK(BM_MidstateTail16);

void BM_Hash160(benchmark::State& state) {
  Bytes data(33, 0x02);
  for (auto _ : state) benchmark::DoNotOptimize(hash160(data));
}
BENCHMARK(BM_Hash160);

void BM_EcdsaSign(benchmark::State& state) {
  const auto key = *PrivateKey::from_scalar(U256(987654321));
  const auto digest = sha256(as_bytes(std::string("bench message")));
  for (auto _ : state) benchmark::DoNotOptimize(ecdsa_sign(key, digest));
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const auto key = *PrivateKey::from_scalar(U256(987654321));
  const auto pub = PublicKey::derive(key);
  const auto digest = sha256(as_bytes(std::string("bench message")));
  const auto sig = ecdsa_sign(key, digest);
  for (auto _ : state) benchmark::DoNotOptimize(ecdsa_verify(pub, digest, sig));
}
BENCHMARK(BM_EcdsaVerify);

void BM_ScalarMulBase(benchmark::State& state) {
  const U256 k = *U256::from_hex("123456789abcdef123456789abcdef123456789abcdef");
  for (auto _ : state) benchmark::DoNotOptimize(secp::scalar_mul_base(k));
}
BENCHMARK(BM_ScalarMulBase);

void BM_ScalarMul(benchmark::State& state) {
  const U256 k = *U256::from_hex("123456789abcdef123456789abcdef123456789abcdef");
  const auto p = PublicKey::derive(*PrivateKey::from_scalar(U256(987654321))).point();
  for (auto _ : state) benchmark::DoNotOptimize(secp::scalar_mul(k, p));
}
BENCHMARK(BM_ScalarMul);

// The seed's bit-at-a-time kernel, kept as the correctness reference —
// benchmarked so the wNAF speedup stays visible in the same run.
void BM_ScalarMulNaive(benchmark::State& state) {
  const U256 k = *U256::from_hex("123456789abcdef123456789abcdef123456789abcdef");
  const auto p = PublicKey::derive(*PrivateKey::from_scalar(U256(987654321))).point();
  for (auto _ : state) benchmark::DoNotOptimize(secp::scalar_mul_naive(k, p));
}
BENCHMARK(BM_ScalarMulNaive);

void BM_PubkeyDecompress(benchmark::State& state) {
  const auto key = *PrivateKey::from_scalar(U256(42));
  const auto enc = PublicKey::derive(key).serialize();
  for (auto _ : state) benchmark::DoNotOptimize(secp::decompress({enc.data(), enc.size()}));
}
BENCHMARK(BM_PubkeyDecompress);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    leaves.push_back(sha256(as_bytes(std::to_string(i))));
  }
  for (auto _ : state) benchmark::DoNotOptimize(merkle_root(leaves));
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256)->Arg(2048);

void BM_MerkleProofVerify(benchmark::State& state) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < 2048; ++i) leaves.push_back(sha256(as_bytes(std::to_string(i))));
  const auto root = merkle_root(leaves);
  const auto branch = merkle_branch(leaves, 1027);
  for (auto _ : state) benchmark::DoNotOptimize(merkle_verify(leaves[1027], branch, root));
}
BENCHMARK(BM_MerkleProofVerify);

void BM_HeaderPowCheck(benchmark::State& state) {
  const auto params = btc::ChainParams::regtest();
  btc::BlockHeader h;
  h.bits = params.genesis_bits;
  (void)btc::mine_header(h, params.pow_limit);
  for (auto _ : state) benchmark::DoNotOptimize(btc::check_proof_of_work(h, params.pow_limit));
}
BENCHMARK(BM_HeaderPowCheck);

void BM_MineRegtestBlock(benchmark::State& state) {
  const auto params = btc::ChainParams::regtest();
  std::uint32_t salt = 0;
  for (auto _ : state) {
    btc::BlockHeader h;
    h.bits = params.genesis_bits;
    h.time = salt++;
    benchmark::DoNotOptimize(btc::mine_header(h, params.pow_limit));
  }
}
BENCHMARK(BM_MineRegtestBlock)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Hand-timed hashing-engine section → BENCH_micro_crypto.json
// ---------------------------------------------------------------------------

double elapsed_ns(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(b - a).count();
}

/// ns per op of `body(i)` over `iters` calls.
template <typename F>
double time_ns(std::uint64_t iters, F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) body(i);
  const auto t1 = std::chrono::steady_clock::now();
  return elapsed_ns(t0, t1) / static_cast<double>(iters);
}

/// The seed's mining loop, byte for byte in behavior: per attempt, write
/// the nonce into the struct, heap-serialize all 80 bytes, and run the
/// generic streaming double-SHA. Called with the scalar kernel forced so
/// the comparison is against what the seed could actually do.
std::uint64_t seed_style_grind(btc::BlockHeader header, const U256& target,
                               std::uint64_t max_attempts) {
  std::uint64_t sink = 0;
  for (std::uint64_t a = 0; a < max_attempts; ++a) {
    header.nonce = static_cast<std::uint32_t>(a);
    const Bytes ser = header.serialize();
    Sha256 h;
    h.update(ser);
    const auto first = h.finalize();
    h.update({first.data(), first.size()});
    const auto digest = h.finalize();
    const auto value = U256::from_le_bytes({digest.data(), digest.size()});
    if (value <= target) ++sink;  // never at the bench target; defeats DCE
  }
  return sink;
}

double hashes_per_s(double ns_per_op) { return 1e9 / ns_per_op; }

/// Min-of-reps wall-clock: run `body` (which performs `iters` ops) `reps`
/// times and keep the fastest rep. On a shared/1-core host the min is the
/// only stable estimator — means absorb scheduler noise.
template <typename F>
double min_us_per_op(int reps, std::uint64_t iters, F&& body) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, elapsed_ns(t0, t1) / static_cast<double>(iters));
  }
  return best / 1e3;
}

// ---------------------------------------------------------------------------
// Hand-timed verify-engine section → the GLV / precomp / batch acceptance
// numbers. Returns false if the smoke-mode floors fail.
// ---------------------------------------------------------------------------

struct VerifyTriple {
  ByteArray<33> pubkey;
  Sha256Digest digest;
  ByteArray<64> sig;
};

VerifyTriple make_verify_triple(std::uint64_t key_seed, std::uint64_t msg_seed) {
  const auto key = *PrivateKey::from_scalar(U256(key_seed * 2654435761ULL + 12345));
  VerifyTriple t;
  t.digest = sha256(as_bytes(std::string("verify-bench-") + std::to_string(msg_seed)));
  t.pubkey = PublicKey::derive(key).serialize();
  t.sig = ecdsa_sign(key, t.digest).serialize();
  return t;
}

bool run_verify_engine_section(bench::JsonDoc& doc, bool smoke) {
  std::printf("\n# ECDSA verify engine (hand-timed, min-of-reps)\n\n");

  const int reps = smoke ? 3 : 12;
  const std::uint64_t n_single = smoke ? 16 : 64;
  const std::uint64_t n_batch = smoke ? 32 : 64;

  // Distinct-key triples: the cold path (decompress + per-call tables).
  std::vector<VerifyTriple> cold;
  for (std::uint64_t i = 0; i < n_single; ++i) cold.push_back(make_verify_triple(i + 1, i));
  // Repeat-payer triples: ONE key, distinct messages (the warm path).
  std::vector<VerifyTriple> warm;
  for (std::uint64_t i = 0; i < n_single; ++i) warm.push_back(make_verify_triple(7, 1000 + i));

  volatile bool sink = true;
  auto check = [&sink](bool ok) { sink = sink && ok; };

  // Legacy kernel (the retained Shamir baseline), parsed-key and
  // wire-level (decompress included — what a request actually costs).
  std::vector<PublicKey> cold_pubs;
  std::vector<Signature> cold_sigs;
  for (const auto& t : cold) {
    cold_pubs.push_back(*PublicKey::parse({t.pubkey.data(), t.pubkey.size()}));
    cold_sigs.push_back(*Signature::parse({t.sig.data(), t.sig.size()}));
  }
  const double legacy_us = min_us_per_op(reps, n_single, [&] {
    for (std::uint64_t i = 0; i < n_single; ++i) {
      check(ecdsa_verify_baseline(cold_pubs[i], cold[i].digest, cold_sigs[i]));
    }
  });
  const double legacy_wire_us = min_us_per_op(reps, n_single, [&] {
    for (std::uint64_t i = 0; i < n_single; ++i) {
      const auto pub = PublicKey::parse({cold[i].pubkey.data(), cold[i].pubkey.size()});
      check(pub && ecdsa_verify_baseline(*pub, cold[i].digest, cold_sigs[i]));
    }
  });

  // Cold GLV path: wire-level, no caches — decompress + glv_split +
  // per-call shared-frame tables + the four-stream chain.
  const double cold_us = min_us_per_op(reps, n_single, [&] {
    for (const auto& t : cold) {
      check(ecdsa_verify_cached(nullptr, {t.pubkey.data(), t.pubkey.size()}, t.digest,
                                {t.sig.data(), t.sig.size()}, nullptr));
    }
  });

  // Warm repeat-payer path: precomp tables resident, every message fresh
  // (no SigCache, so each op is a full verify through the wide tables).
  PubkeyPrecompCache pre(64);
  check(ecdsa_verify_cached(nullptr, {warm[0].pubkey.data(), 33}, warm[0].digest,
                            {warm[0].sig.data(), 64}, &pre));
  check(ecdsa_verify_cached(nullptr, {warm[1].pubkey.data(), 33}, warm[1].digest,
                            {warm[1].sig.data(), 64}, &pre));  // second touch builds
  const double warm_us = min_us_per_op(reps, n_single, [&] {
    for (const auto& t : warm) {
      check(ecdsa_verify_cached(nullptr, {t.pubkey.data(), t.pubkey.size()}, t.digest,
                                {t.sig.data(), t.sig.size()}, &pre));
    }
  });

  // Batch verify: one Montgomery inversion per batch. Cold = distinct
  // keys, warm = 4 repeat payers with resident precomp tables.
  common::ThreadPool inline_pool(0);
  std::vector<SigCheckJob> batch_cold;
  for (std::uint64_t i = 0; i < n_batch; ++i) {
    const auto t = make_verify_triple(100 + i, 5000 + i);
    batch_cold.push_back({t.digest, t.pubkey, t.sig});
  }
  std::vector<SigCheckJob> batch_warm;
  for (std::uint64_t i = 0; i < n_batch; ++i) {
    const auto t = make_verify_triple(200 + (i % 4), 6000 + i);
    batch_warm.push_back({t.digest, t.pubkey, t.sig});
  }
  PubkeyPrecompCache batch_pre(64);
  (void)batch_verify(inline_pool, batch_warm, nullptr, &batch_pre);  // note
  (void)batch_verify(inline_pool, batch_warm, nullptr, &batch_pre);  // build
  const double batch_cold_us = min_us_per_op(reps, n_batch, [&] {
    benchmark::DoNotOptimize(batch_verify(inline_pool, batch_cold, nullptr, nullptr));
  });
  const double batch_warm_us = min_us_per_op(reps, n_batch, [&] {
    benchmark::DoNotOptimize(batch_verify(inline_pool, batch_warm, nullptr, &batch_pre));
  });

  const double cold_speedup = legacy_wire_us / cold_us;
  const double warm_speedup = legacy_wire_us / warm_us;
  const double batch_warm_speedup = legacy_wire_us / batch_warm_us;

  bench::Table verify({"path", "us/verify", "speedup vs legacy wire"});
  verify.row({"legacy shamir (parsed key)", bench::fmt(legacy_us, 1), "-"});
  verify.row({"legacy shamir (wire: decompress+verify)", bench::fmt(legacy_wire_us, 1),
              bench::fmt(1.0, 2)});
  verify.row({"glv cold (wire, per-call tables)", bench::fmt(cold_us, 1),
              bench::fmt(cold_speedup, 2)});
  verify.row({"glv warm (precomp tables resident)", bench::fmt(warm_us, 1),
              bench::fmt(warm_speedup, 2)});
  verify.row({"batch cold (shared ninv, distinct keys)", bench::fmt(batch_cold_us, 1),
              bench::fmt(legacy_wire_us / batch_cold_us, 2)});
  verify.row({"batch warm (shared ninv, repeat payers)", bench::fmt(batch_warm_us, 1),
              bench::fmt(batch_warm_speedup, 2)});
  verify.print();
  if (!sink) std::printf("\n# WARNING: a benchmark verify returned false\n");

  doc.set("verify_legacy_us", legacy_us);
  doc.set("verify_legacy_wire_us", legacy_wire_us);
  doc.set("verify_cold_us", cold_us);
  doc.set("verify_warm_us", warm_us);
  doc.set("verify_batch_cold_us", batch_cold_us);
  doc.set("verify_batch_warm_us", batch_warm_us);
  doc.set("verify_cold_speedup", cold_speedup);
  doc.set("verify_warm_speedup", warm_speedup);
  doc.set("verify_batch_warm_speedup", batch_warm_speedup);
  doc.add_table("verify", verify);

  if (!smoke) return sink;

  // Smoke gates (tier1 --verify-smoke): relative floors always apply —
  // they compare two kernels in the same process, so they are
  // hardware-independent. The absolute-latency budget only applies when
  // the caller vouches for the hardware via BTCFAST_VERIFY_BUDGET_US.
  bool ok = sink;
  const double kColdFloor = 1.5;
  const double kWarmFloor = 2.0;
  std::printf("\n# verify-smoke: cold %.2fx (floor %.1f), warm %.2fx (floor %.1f)\n",
              cold_speedup, kColdFloor, warm_speedup, kWarmFloor);
  if (cold_speedup < kColdFloor || warm_speedup < kWarmFloor) ok = false;
  if (const char* budget_env = std::getenv("BTCFAST_VERIFY_BUDGET_US")) {
    const double budget = std::atof(budget_env);
    std::printf("# verify-smoke: cold %.1f us vs budget %.1f us\n", cold_us, budget);
    if (budget > 0 && cold_us > budget) ok = false;
  } else {
    std::printf("# verify-smoke: no BTCFAST_VERIFY_BUDGET_US — absolute check skipped\n");
  }
  std::printf("# verify-smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

void run_hashing_engine_section() {
  std::printf("\n# Hashing engine (hand-timed) — impl: %s\n\n", sha256_impl_name());

  bench::JsonDoc doc;
  doc.set("experiment", "micro_crypto");
  doc.set("sha256_impl", sha256_impl_name());

  std::uint8_t hdr[80];
  for (int i = 0; i < 80; ++i) hdr[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const Bytes hdr_bytes(hdr, hdr + 80);
  Sha256Digest sink{};

  // --- Per-kernel latency, dispatched vs forced-scalar. ---
  bench::Table kernels({"kernel", "impl", "ns/hash", "hashes/s"});
  constexpr std::uint64_t kHashIters = 200000;
  for (const bool scalar : {false, true}) {
    const bool prev = sha256_force_scalar(scalar);
    const std::string impl = sha256_impl_name();
    const double streaming_ns = time_ns(kHashIters, [&](std::uint64_t) {
      Sha256 h;
      h.update(hdr_bytes);
      const auto first = h.finalize();
      h.update({first.data(), first.size()});
      sink = h.finalize();
    });
    const double d64_ns = time_ns(kHashIters, [&](std::uint64_t) { sink = sha256d_64(hdr); });
    const double d80_ns = time_ns(kHashIters, [&](std::uint64_t) { sink = sha256d_80(hdr); });
    const auto midstate = Sha256Midstate::of_first_block(hdr);
    const double mid_ns =
        time_ns(kHashIters, [&](std::uint64_t) { sink = midstate.sha256d_tail16(hdr + 64); });
    kernels.row({"sha256d streaming 80B", impl, bench::fmt(streaming_ns, 1),
                 bench::fmt(hashes_per_s(streaming_ns), 0)});
    kernels.row({"sha256d_64", impl, bench::fmt(d64_ns, 1), bench::fmt(hashes_per_s(d64_ns), 0)});
    kernels.row({"sha256d_80", impl, bench::fmt(d80_ns, 1), bench::fmt(hashes_per_s(d80_ns), 0)});
    kernels.row({"midstate tail16", impl, bench::fmt(mid_ns, 1),
                 bench::fmt(hashes_per_s(mid_ns), 0)});
    if (!scalar) {
      doc.set("sha256d_80_ns", d80_ns);
      doc.set("midstate_tail16_ns", mid_ns);
      doc.set("header_hashes_per_s", hashes_per_s(mid_ns));
    }
    (void)sha256_force_scalar(prev);
  }
  kernels.print();

  // --- mine_header attempts/s: engine vs seed-style grind. ---
  // bits 0x03000001 → target 1: no attempt can succeed, so both loops run
  // exactly `kGrindAttempts` attempts and the timing is pure grind cost.
  btc::BlockHeader header;
  header.bits = 0x03000001;
  header.time = 1234;
  const auto target = *btc::bits_to_target(header.bits);
  const auto pow_limit = btc::ChainParams::regtest().pow_limit;
  constexpr std::uint64_t kGrindAttempts = 200000;

  const auto m0 = std::chrono::steady_clock::now();
  const bool mined = btc::mine_header(header, pow_limit, 0, kGrindAttempts);
  const auto m1 = std::chrono::steady_clock::now();
  const double mine_ns = elapsed_ns(m0, m1) / static_cast<double>(kGrindAttempts);

  const bool prev = sha256_force_scalar(true);  // the seed only had the portable kernel
  const auto s0 = std::chrono::steady_clock::now();
  const std::uint64_t seed_sink = seed_style_grind(header, target, kGrindAttempts);
  const auto s1 = std::chrono::steady_clock::now();
  (void)sha256_force_scalar(prev);
  const double seed_ns = elapsed_ns(s0, s1) / static_cast<double>(kGrindAttempts);

  const double mine_aps = hashes_per_s(mine_ns);
  const double seed_aps = hashes_per_s(seed_ns);
  const double speedup = seed_ns / mine_ns;

  bench::Table mining({"grind", "ns/attempt", "attempts/s"});
  mining.row({"seed-style (serialize + streaming scalar)", bench::fmt(seed_ns, 1),
              bench::fmt(seed_aps, 0)});
  mining.row({std::string("mine_header (midstate, ") + sha256_impl_name() + ")",
              bench::fmt(mine_ns, 1), bench::fmt(mine_aps, 0)});
  std::printf("\n");
  mining.print();
  std::printf("\n# mine_header speedup vs seed grind: %.1fx%s\n", speedup,
              mined || seed_sink != 0 ? " (WARNING: grind terminated early)" : "");

  doc.set("mine_attempts_per_s", mine_aps);
  doc.set("seed_grind_attempts_per_s", seed_aps);
  doc.set("mine_header_speedup", speedup);

  // --- merkle_root: serial vs thread-pooled level reduction. The pool
  // column must never read slower than serial: below the 4096-pair
  // cutover (and always on single-core hosts) the pool path IS the
  // serial loop, so any residual delta is timer noise. ---
  bench::Table merkle({"leaves", "threads", "us/root"});
  for (const std::size_t n : {512u, 4096u, 16384u}) {
    std::vector<Hash32> leaves(n);
    for (std::size_t i = 0; i < n; ++i) {
      leaves[i] = sha256(as_bytes(std::to_string(i)));
    }
    // Interleaved min-of-reps: each rep times serial then pool back to
    // back, so clock drift and scheduler noise hit both columns equally
    // instead of biasing whichever block ran second.
    const std::uint64_t iters = n >= 16384 ? 50 : 200;
    Hash32 root{};
    double us[2] = {1e18, 1e18};
    for (int rep = 0; rep < 9; ++rep) {
      for (int t = 0; t < 2; ++t) {
        common::ThreadPool::configure_global(t == 0 ? 0 : 4);
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < iters; ++i) root = merkle_root(leaves);
        const auto t1 = std::chrono::steady_clock::now();
        const double u =
            std::chrono::duration<double, std::micro>(t1 - t0).count() / static_cast<double>(iters);
        if (u < us[t]) us[t] = u;
      }
    }
    for (int t = 0; t < 2; ++t) {
      merkle.row({bench::fmt_u(n), bench::fmt_u(t == 0 ? 0 : 4), bench::fmt(us[t], 1)});
      if (n == 4096) doc.set(t == 0 ? "merkle_root_4096_serial_us" : "merkle_root_4096_pool4_us", us[t]);
      if (n == 16384) {
        doc.set(t == 0 ? "merkle_root_16384_serial_us" : "merkle_root_16384_pool4_us", us[t]);
      }
    }
    benchmark::DoNotOptimize(root);
  }
  common::ThreadPool::configure_global(0);
  std::printf("\n");
  merkle.print();

  (void)run_verify_engine_section(doc, /*smoke=*/false);

  doc.add_table("kernels", kernels);
  doc.add_table("mining", mining);
  doc.add_table("merkle", merkle);
  doc.write("BENCH_micro_crypto.json");
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* smoke_env = std::getenv("BTCFAST_VERIFY_SMOKE");
      smoke_env != nullptr && smoke_env[0] == '1') {
    // tier1 --verify-smoke: skip google-benchmark and the hashing
    // section; run just the verify gates and signal via exit code.
    bench::JsonDoc doc;
    doc.set("experiment", "micro_crypto_verify_smoke");
    return run_verify_engine_section(doc, /*smoke=*/true) ? 0 : 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_hashing_engine_section();
  return 0;
}
