// Crypto micro-benchmarks (google-benchmark): the primitive costs under
// E1/E7's latency and throughput numbers.
#include <benchmark/benchmark.h>

#include "btc/header.h"
#include "btc/pow.h"
#include "crypto/ecdsa.h"
#include "crypto/merkle.h"
#include "crypto/ripemd160.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace {

using namespace btcfast;
using namespace btcfast::crypto;

void BM_Sha256_64B(benchmark::State& state) {
  Bytes data(64, 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_1KiB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Sha256d_Header(benchmark::State& state) {
  Bytes data(80, 0x11);
  for (auto _ : state) benchmark::DoNotOptimize(sha256d(data));
}
BENCHMARK(BM_Sha256d_Header);

void BM_Hash160(benchmark::State& state) {
  Bytes data(33, 0x02);
  for (auto _ : state) benchmark::DoNotOptimize(hash160(data));
}
BENCHMARK(BM_Hash160);

void BM_EcdsaSign(benchmark::State& state) {
  const auto key = *PrivateKey::from_scalar(U256(987654321));
  const auto digest = sha256(as_bytes(std::string("bench message")));
  for (auto _ : state) benchmark::DoNotOptimize(ecdsa_sign(key, digest));
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const auto key = *PrivateKey::from_scalar(U256(987654321));
  const auto pub = PublicKey::derive(key);
  const auto digest = sha256(as_bytes(std::string("bench message")));
  const auto sig = ecdsa_sign(key, digest);
  for (auto _ : state) benchmark::DoNotOptimize(ecdsa_verify(pub, digest, sig));
}
BENCHMARK(BM_EcdsaVerify);

void BM_ScalarMulBase(benchmark::State& state) {
  const U256 k = *U256::from_hex("123456789abcdef123456789abcdef123456789abcdef");
  for (auto _ : state) benchmark::DoNotOptimize(secp::scalar_mul_base(k));
}
BENCHMARK(BM_ScalarMulBase);

void BM_ScalarMul(benchmark::State& state) {
  const U256 k = *U256::from_hex("123456789abcdef123456789abcdef123456789abcdef");
  const auto p = PublicKey::derive(*PrivateKey::from_scalar(U256(987654321))).point();
  for (auto _ : state) benchmark::DoNotOptimize(secp::scalar_mul(k, p));
}
BENCHMARK(BM_ScalarMul);

// The seed's bit-at-a-time kernel, kept as the correctness reference —
// benchmarked so the wNAF speedup stays visible in the same run.
void BM_ScalarMulNaive(benchmark::State& state) {
  const U256 k = *U256::from_hex("123456789abcdef123456789abcdef123456789abcdef");
  const auto p = PublicKey::derive(*PrivateKey::from_scalar(U256(987654321))).point();
  for (auto _ : state) benchmark::DoNotOptimize(secp::scalar_mul_naive(k, p));
}
BENCHMARK(BM_ScalarMulNaive);

void BM_PubkeyDecompress(benchmark::State& state) {
  const auto key = *PrivateKey::from_scalar(U256(42));
  const auto enc = PublicKey::derive(key).serialize();
  for (auto _ : state) benchmark::DoNotOptimize(secp::decompress({enc.data(), enc.size()}));
}
BENCHMARK(BM_PubkeyDecompress);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    leaves.push_back(sha256(as_bytes(std::to_string(i))));
  }
  for (auto _ : state) benchmark::DoNotOptimize(merkle_root(leaves));
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256)->Arg(2048);

void BM_MerkleProofVerify(benchmark::State& state) {
  std::vector<Hash32> leaves;
  for (int i = 0; i < 2048; ++i) leaves.push_back(sha256(as_bytes(std::to_string(i))));
  const auto root = merkle_root(leaves);
  const auto branch = merkle_branch(leaves, 1027);
  for (auto _ : state) benchmark::DoNotOptimize(merkle_verify(leaves[1027], branch, root));
}
BENCHMARK(BM_MerkleProofVerify);

void BM_HeaderPowCheck(benchmark::State& state) {
  const auto params = btc::ChainParams::regtest();
  btc::BlockHeader h;
  h.bits = params.genesis_bits;
  (void)btc::mine_header(h, params.pow_limit);
  for (auto _ : state) benchmark::DoNotOptimize(btc::check_proof_of_work(h, params.pow_limit));
}
BENCHMARK(BM_HeaderPowCheck);

void BM_MineRegtestBlock(benchmark::State& state) {
  const auto params = btc::ChainParams::regtest();
  std::uint32_t salt = 0;
  for (auto _ : state) {
    btc::BlockHeader h;
    h.bits = params.genesis_bits;
    h.time = salt++;
    benchmark::DoNotOptimize(btc::mine_header(h, params.pow_limit));
  }
}
BENCHMARK(BM_MineRegtestBlock)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
