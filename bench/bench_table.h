// Tiny fixed-width table printer shared by the experiment harnesses so
// every bench emits the same, diffable format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace btcfast::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
        if (r[i].size() > widths[i]) widths[i] = r[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < cells.size() ? cells[i] : std::string{};
        std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

}  // namespace btcfast::bench
