// Tiny fixed-width table printer shared by the experiment harnesses so
// every bench emits the same, diffable format — plus a JSON writer so
// each experiment also lands a machine-readable BENCH_*.json for
// cross-PR perf trajectories.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace btcfast::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  [[nodiscard]] const std::vector<std::string>& headers() const noexcept { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
        if (r[i].size() > widths[i]) widths[i] = r[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < cells.size() ? cells[i] : std::string{};
        std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Emit a table cell as a bare number when it parses as one (the diff
/// stays semantically meaningful), else as a quoted string.
inline std::string json_value(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    (void)std::strtod(cell.c_str(), &end);
    if (end != nullptr && *end == '\0') return cell;
  }
  return "\"" + json_escape(cell) + "\"";
}

}  // namespace detail

/// Collects scalars and tables from one experiment and writes them as a
/// single JSON document (BENCH_<name>.json by convention).
class JsonDoc {
 public:
  void set(const std::string& key, const std::string& value) {
    scalars_.emplace_back(key, "\"" + detail::json_escape(value) + "\"");
  }
  void set(const std::string& key, double value) { scalars_.emplace_back(key, fmt(value, 6)); }
  void set(const std::string& key, std::uint64_t value) {
    scalars_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, int value) { scalars_.emplace_back(key, std::to_string(value)); }

  void add_table(const std::string& name, const Table& t) { tables_.emplace_back(name, t); }

  /// Write the document atomically (temp file + rename), so a crashed or
  /// interrupted bench never leaves a truncated BENCH_*.json behind and
  /// concurrent readers only ever observe complete documents. Returns
  /// false (and prints a warning) on I/O error.
  bool write(const std::string& path) const {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: could not write %s\n", tmp.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    bool first = true;
    for (const auto& [k, v] : scalars_) {
      std::fprintf(f, "%s  \"%s\": %s", first ? "" : ",\n", detail::json_escape(k).c_str(),
                   v.c_str());
      first = false;
    }
    for (const auto& [name, t] : tables_) {
      std::fprintf(f, "%s  \"%s\": [\n", first ? "" : ",\n", detail::json_escape(name).c_str());
      first = false;
      const auto& hs = t.headers();
      for (std::size_t r = 0; r < t.rows().size(); ++r) {
        const auto& row = t.rows()[r];
        std::fprintf(f, "    {");
        for (std::size_t i = 0; i < hs.size(); ++i) {
          const std::string& cell = i < row.size() ? row[i] : std::string{};
          std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                       detail::json_escape(hs[i]).c_str(), detail::json_value(cell).c_str());
        }
        std::fprintf(f, "}%s\n", r + 1 < t.rows().size() ? "," : "");
      }
      std::fprintf(f, "  ]");
    }
    std::fprintf(f, "\n}\n");
    if (std::fclose(f) != 0 || std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::fprintf(stderr, "warning: could not finalize %s\n", path.c_str());
      std::remove(tmp.c_str());
      return false;
    }
    std::printf("# wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> scalars_;
  std::vector<std::pair<std::string, Table>> tables_;
};

}  // namespace btcfast::bench
