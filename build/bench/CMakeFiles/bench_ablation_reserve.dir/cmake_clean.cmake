file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reserve.dir/bench_ablation_reserve.cpp.o"
  "CMakeFiles/bench_ablation_reserve.dir/bench_ablation_reserve.cpp.o.d"
  "bench_ablation_reserve"
  "bench_ablation_reserve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reserve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
