# Empty dependencies file for bench_ablation_reserve.
# This may be replaced when dependencies are built.
