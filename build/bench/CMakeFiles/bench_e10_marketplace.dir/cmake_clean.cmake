file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_marketplace.dir/bench_e10_marketplace.cpp.o"
  "CMakeFiles/bench_e10_marketplace.dir/bench_e10_marketplace.cpp.o.d"
  "bench_e10_marketplace"
  "bench_e10_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
