file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_doublespend_prob.dir/bench_e2_doublespend_prob.cpp.o"
  "CMakeFiles/bench_e2_doublespend_prob.dir/bench_e2_doublespend_prob.cpp.o.d"
  "bench_e2_doublespend_prob"
  "bench_e2_doublespend_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_doublespend_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
