# Empty dependencies file for bench_e2_doublespend_prob.
# This may be replaced when dependencies are built.
