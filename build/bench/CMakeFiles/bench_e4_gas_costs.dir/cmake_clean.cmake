file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_gas_costs.dir/bench_e4_gas_costs.cpp.o"
  "CMakeFiles/bench_e4_gas_costs.dir/bench_e4_gas_costs.cpp.o.d"
  "bench_e4_gas_costs"
  "bench_e4_gas_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_gas_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
