# Empty compiler generated dependencies file for bench_e4_gas_costs.
# This may be replaced when dependencies are built.
