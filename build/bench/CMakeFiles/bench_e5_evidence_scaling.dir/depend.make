# Empty dependencies file for bench_e5_evidence_scaling.
# This may be replaced when dependencies are built.
