# Empty dependencies file for bench_e6_attack_cost.
# This may be replaced when dependencies are built.
