
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e8_dispute_e2e.cpp" "bench/CMakeFiles/bench_e8_dispute_e2e.dir/bench_e8_dispute_e2e.cpp.o" "gcc" "bench/CMakeFiles/bench_e8_dispute_e2e.dir/bench_e8_dispute_e2e.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/btcfast/CMakeFiles/btcfast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/btcsim/CMakeFiles/btcfast_btcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/btc/CMakeFiles/btcfast_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/psc/CMakeFiles/btcfast_psc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btcfast_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/btcfast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
