file(REMOVE_RECURSE
  "CMakeFiles/double_spend_dispute.dir/double_spend_dispute.cpp.o"
  "CMakeFiles/double_spend_dispute.dir/double_spend_dispute.cpp.o.d"
  "double_spend_dispute"
  "double_spend_dispute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_spend_dispute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
