# Empty dependencies file for double_spend_dispute.
# This may be replaced when dependencies are built.
