file(REMOVE_RECURSE
  "CMakeFiles/marketplace_day.dir/marketplace_day.cpp.o"
  "CMakeFiles/marketplace_day.dir/marketplace_day.cpp.o.d"
  "marketplace_day"
  "marketplace_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
