# Empty compiler generated dependencies file for marketplace_day.
# This may be replaced when dependencies are built.
