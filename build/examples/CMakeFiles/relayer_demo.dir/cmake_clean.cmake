file(REMOVE_RECURSE
  "CMakeFiles/relayer_demo.dir/relayer_demo.cpp.o"
  "CMakeFiles/relayer_demo.dir/relayer_demo.cpp.o.d"
  "relayer_demo"
  "relayer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relayer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
