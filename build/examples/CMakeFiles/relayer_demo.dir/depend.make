# Empty dependencies file for relayer_demo.
# This may be replaced when dependencies are built.
