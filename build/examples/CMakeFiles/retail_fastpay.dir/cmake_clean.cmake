file(REMOVE_RECURSE
  "CMakeFiles/retail_fastpay.dir/retail_fastpay.cpp.o"
  "CMakeFiles/retail_fastpay.dir/retail_fastpay.cpp.o.d"
  "retail_fastpay"
  "retail_fastpay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_fastpay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
