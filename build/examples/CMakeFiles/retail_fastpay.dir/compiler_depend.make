# Empty compiler generated dependencies file for retail_fastpay.
# This may be replaced when dependencies are built.
