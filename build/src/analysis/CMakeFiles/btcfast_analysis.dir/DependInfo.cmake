
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/attack_cost.cpp" "src/analysis/CMakeFiles/btcfast_analysis.dir/attack_cost.cpp.o" "gcc" "src/analysis/CMakeFiles/btcfast_analysis.dir/attack_cost.cpp.o.d"
  "/root/repo/src/analysis/collateral.cpp" "src/analysis/CMakeFiles/btcfast_analysis.dir/collateral.cpp.o" "gcc" "src/analysis/CMakeFiles/btcfast_analysis.dir/collateral.cpp.o.d"
  "/root/repo/src/analysis/doublespend.cpp" "src/analysis/CMakeFiles/btcfast_analysis.dir/doublespend.cpp.o" "gcc" "src/analysis/CMakeFiles/btcfast_analysis.dir/doublespend.cpp.o.d"
  "/root/repo/src/analysis/economics.cpp" "src/analysis/CMakeFiles/btcfast_analysis.dir/economics.cpp.o" "gcc" "src/analysis/CMakeFiles/btcfast_analysis.dir/economics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/btcfast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
