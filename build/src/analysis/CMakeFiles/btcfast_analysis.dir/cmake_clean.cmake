file(REMOVE_RECURSE
  "CMakeFiles/btcfast_analysis.dir/attack_cost.cpp.o"
  "CMakeFiles/btcfast_analysis.dir/attack_cost.cpp.o.d"
  "CMakeFiles/btcfast_analysis.dir/collateral.cpp.o"
  "CMakeFiles/btcfast_analysis.dir/collateral.cpp.o.d"
  "CMakeFiles/btcfast_analysis.dir/doublespend.cpp.o"
  "CMakeFiles/btcfast_analysis.dir/doublespend.cpp.o.d"
  "CMakeFiles/btcfast_analysis.dir/economics.cpp.o"
  "CMakeFiles/btcfast_analysis.dir/economics.cpp.o.d"
  "libbtcfast_analysis.a"
  "libbtcfast_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btcfast_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
