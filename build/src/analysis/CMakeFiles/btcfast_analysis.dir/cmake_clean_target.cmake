file(REMOVE_RECURSE
  "libbtcfast_analysis.a"
)
