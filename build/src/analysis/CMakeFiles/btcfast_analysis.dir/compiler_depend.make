# Empty compiler generated dependencies file for btcfast_analysis.
# This may be replaced when dependencies are built.
