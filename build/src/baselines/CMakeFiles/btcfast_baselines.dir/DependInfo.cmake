
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/acceptance_policy.cpp" "src/baselines/CMakeFiles/btcfast_baselines.dir/acceptance_policy.cpp.o" "gcc" "src/baselines/CMakeFiles/btcfast_baselines.dir/acceptance_policy.cpp.o.d"
  "/root/repo/src/baselines/central_escrow.cpp" "src/baselines/CMakeFiles/btcfast_baselines.dir/central_escrow.cpp.o" "gcc" "src/baselines/CMakeFiles/btcfast_baselines.dir/central_escrow.cpp.o.d"
  "/root/repo/src/baselines/channel.cpp" "src/baselines/CMakeFiles/btcfast_baselines.dir/channel.cpp.o" "gcc" "src/baselines/CMakeFiles/btcfast_baselines.dir/channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/btc/CMakeFiles/btcfast_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/btcfast_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btcfast_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/btcfast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
