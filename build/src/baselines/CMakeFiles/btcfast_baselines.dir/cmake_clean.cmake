file(REMOVE_RECURSE
  "CMakeFiles/btcfast_baselines.dir/acceptance_policy.cpp.o"
  "CMakeFiles/btcfast_baselines.dir/acceptance_policy.cpp.o.d"
  "CMakeFiles/btcfast_baselines.dir/central_escrow.cpp.o"
  "CMakeFiles/btcfast_baselines.dir/central_escrow.cpp.o.d"
  "CMakeFiles/btcfast_baselines.dir/channel.cpp.o"
  "CMakeFiles/btcfast_baselines.dir/channel.cpp.o.d"
  "libbtcfast_baselines.a"
  "libbtcfast_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btcfast_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
