file(REMOVE_RECURSE
  "libbtcfast_baselines.a"
)
