# Empty compiler generated dependencies file for btcfast_baselines.
# This may be replaced when dependencies are built.
