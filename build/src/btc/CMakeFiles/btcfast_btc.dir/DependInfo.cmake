
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btc/block.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/block.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/block.cpp.o.d"
  "/root/repo/src/btc/chain.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/chain.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/chain.cpp.o.d"
  "/root/repo/src/btc/header.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/header.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/header.cpp.o.d"
  "/root/repo/src/btc/light_client.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/light_client.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/light_client.cpp.o.d"
  "/root/repo/src/btc/mempool.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/mempool.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/mempool.cpp.o.d"
  "/root/repo/src/btc/params.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/params.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/params.cpp.o.d"
  "/root/repo/src/btc/pow.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/pow.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/pow.cpp.o.d"
  "/root/repo/src/btc/script.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/script.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/script.cpp.o.d"
  "/root/repo/src/btc/spv.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/spv.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/spv.cpp.o.d"
  "/root/repo/src/btc/transaction.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/transaction.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/transaction.cpp.o.d"
  "/root/repo/src/btc/utxo.cpp" "src/btc/CMakeFiles/btcfast_btc.dir/utxo.cpp.o" "gcc" "src/btc/CMakeFiles/btcfast_btc.dir/utxo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/btcfast_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/btcfast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
