file(REMOVE_RECURSE
  "CMakeFiles/btcfast_btc.dir/block.cpp.o"
  "CMakeFiles/btcfast_btc.dir/block.cpp.o.d"
  "CMakeFiles/btcfast_btc.dir/chain.cpp.o"
  "CMakeFiles/btcfast_btc.dir/chain.cpp.o.d"
  "CMakeFiles/btcfast_btc.dir/header.cpp.o"
  "CMakeFiles/btcfast_btc.dir/header.cpp.o.d"
  "CMakeFiles/btcfast_btc.dir/light_client.cpp.o"
  "CMakeFiles/btcfast_btc.dir/light_client.cpp.o.d"
  "CMakeFiles/btcfast_btc.dir/mempool.cpp.o"
  "CMakeFiles/btcfast_btc.dir/mempool.cpp.o.d"
  "CMakeFiles/btcfast_btc.dir/params.cpp.o"
  "CMakeFiles/btcfast_btc.dir/params.cpp.o.d"
  "CMakeFiles/btcfast_btc.dir/pow.cpp.o"
  "CMakeFiles/btcfast_btc.dir/pow.cpp.o.d"
  "CMakeFiles/btcfast_btc.dir/script.cpp.o"
  "CMakeFiles/btcfast_btc.dir/script.cpp.o.d"
  "CMakeFiles/btcfast_btc.dir/spv.cpp.o"
  "CMakeFiles/btcfast_btc.dir/spv.cpp.o.d"
  "CMakeFiles/btcfast_btc.dir/transaction.cpp.o"
  "CMakeFiles/btcfast_btc.dir/transaction.cpp.o.d"
  "CMakeFiles/btcfast_btc.dir/utxo.cpp.o"
  "CMakeFiles/btcfast_btc.dir/utxo.cpp.o.d"
  "libbtcfast_btc.a"
  "libbtcfast_btc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btcfast_btc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
