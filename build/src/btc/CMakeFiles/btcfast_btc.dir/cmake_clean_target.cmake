file(REMOVE_RECURSE
  "libbtcfast_btc.a"
)
