# Empty dependencies file for btcfast_btc.
# This may be replaced when dependencies are built.
