
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btcfast/customer.cpp" "src/btcfast/CMakeFiles/btcfast_core.dir/customer.cpp.o" "gcc" "src/btcfast/CMakeFiles/btcfast_core.dir/customer.cpp.o.d"
  "/root/repo/src/btcfast/evidence.cpp" "src/btcfast/CMakeFiles/btcfast_core.dir/evidence.cpp.o" "gcc" "src/btcfast/CMakeFiles/btcfast_core.dir/evidence.cpp.o.d"
  "/root/repo/src/btcfast/marketplace.cpp" "src/btcfast/CMakeFiles/btcfast_core.dir/marketplace.cpp.o" "gcc" "src/btcfast/CMakeFiles/btcfast_core.dir/marketplace.cpp.o.d"
  "/root/repo/src/btcfast/merchant.cpp" "src/btcfast/CMakeFiles/btcfast_core.dir/merchant.cpp.o" "gcc" "src/btcfast/CMakeFiles/btcfast_core.dir/merchant.cpp.o.d"
  "/root/repo/src/btcfast/orchestrator.cpp" "src/btcfast/CMakeFiles/btcfast_core.dir/orchestrator.cpp.o" "gcc" "src/btcfast/CMakeFiles/btcfast_core.dir/orchestrator.cpp.o.d"
  "/root/repo/src/btcfast/payjudger.cpp" "src/btcfast/CMakeFiles/btcfast_core.dir/payjudger.cpp.o" "gcc" "src/btcfast/CMakeFiles/btcfast_core.dir/payjudger.cpp.o.d"
  "/root/repo/src/btcfast/protocol.cpp" "src/btcfast/CMakeFiles/btcfast_core.dir/protocol.cpp.o" "gcc" "src/btcfast/CMakeFiles/btcfast_core.dir/protocol.cpp.o.d"
  "/root/repo/src/btcfast/relayer.cpp" "src/btcfast/CMakeFiles/btcfast_core.dir/relayer.cpp.o" "gcc" "src/btcfast/CMakeFiles/btcfast_core.dir/relayer.cpp.o.d"
  "/root/repo/src/btcfast/watchtower.cpp" "src/btcfast/CMakeFiles/btcfast_core.dir/watchtower.cpp.o" "gcc" "src/btcfast/CMakeFiles/btcfast_core.dir/watchtower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/btc/CMakeFiles/btcfast_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/btcsim/CMakeFiles/btcfast_btcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/psc/CMakeFiles/btcfast_psc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btcfast_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/btcfast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
