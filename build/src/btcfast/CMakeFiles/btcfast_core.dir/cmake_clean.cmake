file(REMOVE_RECURSE
  "CMakeFiles/btcfast_core.dir/customer.cpp.o"
  "CMakeFiles/btcfast_core.dir/customer.cpp.o.d"
  "CMakeFiles/btcfast_core.dir/evidence.cpp.o"
  "CMakeFiles/btcfast_core.dir/evidence.cpp.o.d"
  "CMakeFiles/btcfast_core.dir/marketplace.cpp.o"
  "CMakeFiles/btcfast_core.dir/marketplace.cpp.o.d"
  "CMakeFiles/btcfast_core.dir/merchant.cpp.o"
  "CMakeFiles/btcfast_core.dir/merchant.cpp.o.d"
  "CMakeFiles/btcfast_core.dir/orchestrator.cpp.o"
  "CMakeFiles/btcfast_core.dir/orchestrator.cpp.o.d"
  "CMakeFiles/btcfast_core.dir/payjudger.cpp.o"
  "CMakeFiles/btcfast_core.dir/payjudger.cpp.o.d"
  "CMakeFiles/btcfast_core.dir/protocol.cpp.o"
  "CMakeFiles/btcfast_core.dir/protocol.cpp.o.d"
  "CMakeFiles/btcfast_core.dir/relayer.cpp.o"
  "CMakeFiles/btcfast_core.dir/relayer.cpp.o.d"
  "CMakeFiles/btcfast_core.dir/watchtower.cpp.o"
  "CMakeFiles/btcfast_core.dir/watchtower.cpp.o.d"
  "libbtcfast_core.a"
  "libbtcfast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btcfast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
