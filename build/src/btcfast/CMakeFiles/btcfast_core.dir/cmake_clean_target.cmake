file(REMOVE_RECURSE
  "libbtcfast_core.a"
)
