# Empty compiler generated dependencies file for btcfast_core.
# This may be replaced when dependencies are built.
