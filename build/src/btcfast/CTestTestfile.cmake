# CMake generated Testfile for 
# Source directory: /root/repo/src/btcfast
# Build directory: /root/repo/build/src/btcfast
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
