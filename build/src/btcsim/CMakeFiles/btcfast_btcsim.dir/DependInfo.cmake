
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btcsim/attacker.cpp" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/attacker.cpp.o" "gcc" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/attacker.cpp.o.d"
  "/root/repo/src/btcsim/event.cpp" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/event.cpp.o" "gcc" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/event.cpp.o.d"
  "/root/repo/src/btcsim/miner.cpp" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/miner.cpp.o" "gcc" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/miner.cpp.o.d"
  "/root/repo/src/btcsim/network.cpp" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/network.cpp.o" "gcc" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/network.cpp.o.d"
  "/root/repo/src/btcsim/node.cpp" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/node.cpp.o" "gcc" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/node.cpp.o.d"
  "/root/repo/src/btcsim/race.cpp" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/race.cpp.o" "gcc" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/race.cpp.o.d"
  "/root/repo/src/btcsim/scenario.cpp" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/scenario.cpp.o" "gcc" "src/btcsim/CMakeFiles/btcfast_btcsim.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/btc/CMakeFiles/btcfast_btc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btcfast_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/btcfast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
