file(REMOVE_RECURSE
  "CMakeFiles/btcfast_btcsim.dir/attacker.cpp.o"
  "CMakeFiles/btcfast_btcsim.dir/attacker.cpp.o.d"
  "CMakeFiles/btcfast_btcsim.dir/event.cpp.o"
  "CMakeFiles/btcfast_btcsim.dir/event.cpp.o.d"
  "CMakeFiles/btcfast_btcsim.dir/miner.cpp.o"
  "CMakeFiles/btcfast_btcsim.dir/miner.cpp.o.d"
  "CMakeFiles/btcfast_btcsim.dir/network.cpp.o"
  "CMakeFiles/btcfast_btcsim.dir/network.cpp.o.d"
  "CMakeFiles/btcfast_btcsim.dir/node.cpp.o"
  "CMakeFiles/btcfast_btcsim.dir/node.cpp.o.d"
  "CMakeFiles/btcfast_btcsim.dir/race.cpp.o"
  "CMakeFiles/btcfast_btcsim.dir/race.cpp.o.d"
  "CMakeFiles/btcfast_btcsim.dir/scenario.cpp.o"
  "CMakeFiles/btcfast_btcsim.dir/scenario.cpp.o.d"
  "libbtcfast_btcsim.a"
  "libbtcfast_btcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btcfast_btcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
