file(REMOVE_RECURSE
  "libbtcfast_btcsim.a"
)
