# Empty compiler generated dependencies file for btcfast_btcsim.
# This may be replaced when dependencies are built.
