file(REMOVE_RECURSE
  "CMakeFiles/btcfast_common.dir/hex.cpp.o"
  "CMakeFiles/btcfast_common.dir/hex.cpp.o.d"
  "CMakeFiles/btcfast_common.dir/log.cpp.o"
  "CMakeFiles/btcfast_common.dir/log.cpp.o.d"
  "CMakeFiles/btcfast_common.dir/rng.cpp.o"
  "CMakeFiles/btcfast_common.dir/rng.cpp.o.d"
  "CMakeFiles/btcfast_common.dir/serialize.cpp.o"
  "CMakeFiles/btcfast_common.dir/serialize.cpp.o.d"
  "libbtcfast_common.a"
  "libbtcfast_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btcfast_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
