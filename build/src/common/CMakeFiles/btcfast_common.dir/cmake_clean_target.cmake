file(REMOVE_RECURSE
  "libbtcfast_common.a"
)
