# Empty dependencies file for btcfast_common.
# This may be replaced when dependencies are built.
