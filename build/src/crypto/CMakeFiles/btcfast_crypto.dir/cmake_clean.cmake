file(REMOVE_RECURSE
  "CMakeFiles/btcfast_crypto.dir/base58.cpp.o"
  "CMakeFiles/btcfast_crypto.dir/base58.cpp.o.d"
  "CMakeFiles/btcfast_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/btcfast_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/btcfast_crypto.dir/encoding.cpp.o"
  "CMakeFiles/btcfast_crypto.dir/encoding.cpp.o.d"
  "CMakeFiles/btcfast_crypto.dir/hmac.cpp.o"
  "CMakeFiles/btcfast_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/btcfast_crypto.dir/merkle.cpp.o"
  "CMakeFiles/btcfast_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/btcfast_crypto.dir/ripemd160.cpp.o"
  "CMakeFiles/btcfast_crypto.dir/ripemd160.cpp.o.d"
  "CMakeFiles/btcfast_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/btcfast_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/btcfast_crypto.dir/sha256.cpp.o"
  "CMakeFiles/btcfast_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/btcfast_crypto.dir/uint256.cpp.o"
  "CMakeFiles/btcfast_crypto.dir/uint256.cpp.o.d"
  "libbtcfast_crypto.a"
  "libbtcfast_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btcfast_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
