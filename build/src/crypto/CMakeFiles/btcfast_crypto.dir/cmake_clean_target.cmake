file(REMOVE_RECURSE
  "libbtcfast_crypto.a"
)
