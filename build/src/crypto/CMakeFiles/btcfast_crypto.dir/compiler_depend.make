# Empty compiler generated dependencies file for btcfast_crypto.
# This may be replaced when dependencies are built.
