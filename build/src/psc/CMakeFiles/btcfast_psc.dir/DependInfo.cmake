
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psc/chain.cpp" "src/psc/CMakeFiles/btcfast_psc.dir/chain.cpp.o" "gcc" "src/psc/CMakeFiles/btcfast_psc.dir/chain.cpp.o.d"
  "/root/repo/src/psc/gas.cpp" "src/psc/CMakeFiles/btcfast_psc.dir/gas.cpp.o" "gcc" "src/psc/CMakeFiles/btcfast_psc.dir/gas.cpp.o.d"
  "/root/repo/src/psc/host.cpp" "src/psc/CMakeFiles/btcfast_psc.dir/host.cpp.o" "gcc" "src/psc/CMakeFiles/btcfast_psc.dir/host.cpp.o.d"
  "/root/repo/src/psc/state.cpp" "src/psc/CMakeFiles/btcfast_psc.dir/state.cpp.o" "gcc" "src/psc/CMakeFiles/btcfast_psc.dir/state.cpp.o.d"
  "/root/repo/src/psc/vm.cpp" "src/psc/CMakeFiles/btcfast_psc.dir/vm.cpp.o" "gcc" "src/psc/CMakeFiles/btcfast_psc.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/btcfast_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/btcfast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
