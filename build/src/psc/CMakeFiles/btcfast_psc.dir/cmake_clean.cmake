file(REMOVE_RECURSE
  "CMakeFiles/btcfast_psc.dir/chain.cpp.o"
  "CMakeFiles/btcfast_psc.dir/chain.cpp.o.d"
  "CMakeFiles/btcfast_psc.dir/gas.cpp.o"
  "CMakeFiles/btcfast_psc.dir/gas.cpp.o.d"
  "CMakeFiles/btcfast_psc.dir/host.cpp.o"
  "CMakeFiles/btcfast_psc.dir/host.cpp.o.d"
  "CMakeFiles/btcfast_psc.dir/state.cpp.o"
  "CMakeFiles/btcfast_psc.dir/state.cpp.o.d"
  "CMakeFiles/btcfast_psc.dir/vm.cpp.o"
  "CMakeFiles/btcfast_psc.dir/vm.cpp.o.d"
  "libbtcfast_psc.a"
  "libbtcfast_psc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btcfast_psc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
