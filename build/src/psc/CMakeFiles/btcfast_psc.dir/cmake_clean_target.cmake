file(REMOVE_RECURSE
  "libbtcfast_psc.a"
)
