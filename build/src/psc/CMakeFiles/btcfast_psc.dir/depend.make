# Empty dependencies file for btcfast_psc.
# This may be replaced when dependencies are built.
