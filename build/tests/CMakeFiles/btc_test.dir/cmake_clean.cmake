file(REMOVE_RECURSE
  "CMakeFiles/btc_test.dir/btc_test.cpp.o"
  "CMakeFiles/btc_test.dir/btc_test.cpp.o.d"
  "btc_test"
  "btc_test.pdb"
  "btc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
