# Empty compiler generated dependencies file for btc_test.
# This may be replaced when dependencies are built.
