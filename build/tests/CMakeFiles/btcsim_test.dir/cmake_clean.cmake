file(REMOVE_RECURSE
  "CMakeFiles/btcsim_test.dir/btcsim_test.cpp.o"
  "CMakeFiles/btcsim_test.dir/btcsim_test.cpp.o.d"
  "btcsim_test"
  "btcsim_test.pdb"
  "btcsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btcsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
