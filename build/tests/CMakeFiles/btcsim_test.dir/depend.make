# Empty dependencies file for btcsim_test.
# This may be replaced when dependencies are built.
