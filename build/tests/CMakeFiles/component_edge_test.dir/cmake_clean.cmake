file(REMOVE_RECURSE
  "CMakeFiles/component_edge_test.dir/component_edge_test.cpp.o"
  "CMakeFiles/component_edge_test.dir/component_edge_test.cpp.o.d"
  "component_edge_test"
  "component_edge_test.pdb"
  "component_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/component_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
