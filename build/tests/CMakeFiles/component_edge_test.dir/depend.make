# Empty dependencies file for component_edge_test.
# This may be replaced when dependencies are built.
