file(REMOVE_RECURSE
  "CMakeFiles/eclipse_test.dir/eclipse_test.cpp.o"
  "CMakeFiles/eclipse_test.dir/eclipse_test.cpp.o.d"
  "eclipse_test"
  "eclipse_test.pdb"
  "eclipse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
