# Empty dependencies file for eclipse_test.
# This may be replaced when dependencies are built.
