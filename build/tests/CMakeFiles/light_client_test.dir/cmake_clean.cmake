file(REMOVE_RECURSE
  "CMakeFiles/light_client_test.dir/light_client_test.cpp.o"
  "CMakeFiles/light_client_test.dir/light_client_test.cpp.o.d"
  "light_client_test"
  "light_client_test.pdb"
  "light_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/light_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
