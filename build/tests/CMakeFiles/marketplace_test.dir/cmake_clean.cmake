file(REMOVE_RECURSE
  "CMakeFiles/marketplace_test.dir/marketplace_test.cpp.o"
  "CMakeFiles/marketplace_test.dir/marketplace_test.cpp.o.d"
  "marketplace_test"
  "marketplace_test.pdb"
  "marketplace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
