file(REMOVE_RECURSE
  "CMakeFiles/merchant_unit_test.dir/merchant_unit_test.cpp.o"
  "CMakeFiles/merchant_unit_test.dir/merchant_unit_test.cpp.o.d"
  "merchant_unit_test"
  "merchant_unit_test.pdb"
  "merchant_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merchant_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
