# Empty compiler generated dependencies file for merchant_unit_test.
# This may be replaced when dependencies are built.
