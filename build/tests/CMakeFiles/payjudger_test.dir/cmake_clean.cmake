file(REMOVE_RECURSE
  "CMakeFiles/payjudger_test.dir/payjudger_test.cpp.o"
  "CMakeFiles/payjudger_test.dir/payjudger_test.cpp.o.d"
  "payjudger_test"
  "payjudger_test.pdb"
  "payjudger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payjudger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
