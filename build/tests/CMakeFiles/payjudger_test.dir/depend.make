# Empty dependencies file for payjudger_test.
# This may be replaced when dependencies are built.
