
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/psc_test.cpp" "tests/CMakeFiles/psc_test.dir/psc_test.cpp.o" "gcc" "tests/CMakeFiles/psc_test.dir/psc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/psc/CMakeFiles/btcfast_psc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btcfast_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/btcfast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
