file(REMOVE_RECURSE
  "CMakeFiles/psc_test.dir/psc_test.cpp.o"
  "CMakeFiles/psc_test.dir/psc_test.cpp.o.d"
  "psc_test"
  "psc_test.pdb"
  "psc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
