# Empty compiler generated dependencies file for psc_test.
# This may be replaced when dependencies are built.
