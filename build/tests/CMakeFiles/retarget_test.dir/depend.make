# Empty dependencies file for retarget_test.
# This may be replaced when dependencies are built.
