file(REMOVE_RECURSE
  "CMakeFiles/watchtower_test.dir/watchtower_test.cpp.o"
  "CMakeFiles/watchtower_test.dir/watchtower_test.cpp.o.d"
  "watchtower_test"
  "watchtower_test.pdb"
  "watchtower_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watchtower_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
