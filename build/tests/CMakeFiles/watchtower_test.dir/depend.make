# Empty dependencies file for watchtower_test.
# This may be replaced when dependencies are built.
