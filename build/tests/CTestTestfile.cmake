# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_property_test[1]_include.cmake")
include("/root/repo/build/tests/btc_test[1]_include.cmake")
include("/root/repo/build/tests/btcsim_test[1]_include.cmake")
include("/root/repo/build/tests/psc_test[1]_include.cmake")
include("/root/repo/build/tests/payjudger_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/reservation_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/retarget_test[1]_include.cmake")
include("/root/repo/build/tests/light_client_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/watchtower_test[1]_include.cmake")
include("/root/repo/build/tests/marketplace_test[1]_include.cmake")
include("/root/repo/build/tests/eclipse_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/merchant_unit_test[1]_include.cmake")
include("/root/repo/build/tests/component_edge_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
