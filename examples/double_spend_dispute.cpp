// Adversarial scenario, narrated: a customer pays, ships a secret
// double-spend chain, and kills the payment — then PayJudger's PoW-based
// judgment compensates the merchant from the escrow.
#include <cstdio>

#include "btcfast/orchestrator.h"

int main() {
  using namespace btcfast;
  using namespace btcfast::core;

  std::printf("BTCFast dispute demo: double spend -> PoW judgment -> compensation\n");
  std::printf("===================================================================\n\n");

  DeploymentConfig config;
  config.seed = 21;
  config.attacker_share = 0.6;  // demonstration: a majority attacker so the
                                // double spend reliably lands
  config.attacker_give_up_deficit = 50;
  config.required_depth = 3;
  config.dispute_after_ms = 90 * 60 * 1000;
  config.evidence_window_ms = 60 * 60 * 1000;
  Deployment world(config);

  const psc::Value merchant_before =
      world.psc().state().balance(world.merchant().config().self_psc);

  const FastPayResult payment = world.perform_fastpay(10 * btc::kCoin);
  std::printf("[t=0] merchant accepts %s in %.0f us and hands over the goods\n",
              payment.txid.to_string().substr(0, 16).c_str(), payment.decision_micros);
  std::printf("[t=0] ...meanwhile the customer starts mining a secret conflicting chain\n\n");

  // Narrate in half-hour steps.
  bool reported_kill = false, reported_dispute = false, reported_judgment = false;
  for (int step = 1; step <= 16; ++step) {
    world.run_for(30 * kMinute);
    const double now_h = static_cast<double>(world.simulator().now()) / kHour;
    const auto conf = world.merchant_node().chain().confirmations(payment.txid);
    const auto view = world.escrow_view();

    if (!reported_kill && conf == 0 && world.merchant_node().reorgs() > 0) {
      std::printf("[t=%.1fh] REORG: the secret chain was released — payment is gone\n", now_h);
      reported_kill = true;
    }
    if (!reported_dispute && view && view->state == EscrowState::kDisputed) {
      std::printf("[t=%.1fh] merchant opened a dispute; evidence window until t=%.1fh\n",
                  now_h, static_cast<double>(view->dispute_deadline_ms) / kHour);
      reported_dispute = true;
    }
    const auto summary = world.summarize();
    if (!reported_judgment && summary.judged_for_merchant + summary.judged_for_customer > 0) {
      std::printf("[t=%.1fh] JUDGMENT: %s\n", now_h,
                  summary.judged_for_merchant > 0 ? "merchant wins — compensation paid"
                                                  : "customer wins");
      reported_judgment = true;
      break;
    }
  }

  const DeploymentSummary summary = world.summarize();
  const psc::Value merchant_after =
      world.psc().state().balance(world.merchant().config().self_psc);

  std::printf("\n=== outcome ===\n");
  std::printf("payment survived on Bitcoin : %s\n",
              world.merchant_node().chain().confirmations(payment.txid) > 0 ? "yes" : "no");
  std::printf("disputes opened             : %zu\n", summary.disputes_opened);
  std::printf("judged for merchant         : %zu\n", summary.judged_for_merchant);
  std::printf("escrow collateral remaining : %llu (was %llu)\n",
              static_cast<unsigned long long>(summary.escrow_collateral),
              static_cast<unsigned long long>(config.collateral));
  std::printf("merchant PSC balance delta  : %+lld (compensation %llu minus gas)\n",
              static_cast<long long>(merchant_after) - static_cast<long long>(merchant_before),
              static_cast<unsigned long long>(config.compensation));
  std::printf("\nThe double spend stole the BTC payment but paid for it out of escrow.\n");
  return 0;
}
