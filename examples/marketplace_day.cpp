// A day in a BTCFast marketplace: several customers (one crooked) buying
// from several merchants through one PayJudger contract. Prints the
// system-level ledger at close of business.
#include <cstdio>

#include "btcfast/marketplace.h"

int main() {
  using namespace btcfast;
  using namespace btcfast::core;

  std::printf("BTCFast marketplace: 4 customers x 3 merchants, one contract\n");
  std::printf("=============================================================\n\n");

  MarketplaceConfig cfg;
  cfg.customers = 4;
  cfg.merchants = 3;
  cfg.dishonest_customers = 1;  // customer #0 race-attacks every purchase
  cfg.payments_per_hour_per_customer = 1.0;
  cfg.duration = 10LL * 60 * 60 * 1000;
  cfg.seed = 2026;

  std::printf("running %lld simulated hours of trade (+dispute drain)...\n\n",
              static_cast<long long>(cfg.duration / (60 * 60 * 1000)));
  const MarketplaceResult r = run_marketplace(cfg);

  std::printf("payments attempted        : %zu\n", r.payments_attempted);
  std::printf("accepted (sub-second)     : %zu  (mean decision %.0f us)\n",
              r.payments_accepted, r.mean_decision_micros);
  std::printf("settled on Bitcoin        : %zu\n", r.payments_settled);
  std::printf("race attacks launched     : %zu\n", r.race_attacks);
  std::printf("double spends that landed : %zu\n", r.double_spends_landed);
  std::printf("disputes opened           : %zu\n", r.disputes_opened);
  std::printf("judged for merchants      : %zu\n", r.judged_for_merchant);
  std::printf("judged for customers      : %zu\n", r.judged_for_customer);
  std::printf("total PSC gas burnt       : %llu\n",
              static_cast<unsigned long long>(r.total_gas));
  std::printf("bitcoin height at close   : %u\n", r.btc_height);
  std::printf("\nmerchants made whole      : %s\n", r.merchants_made_whole ? "YES" : "NO");
  std::printf(
      "\nEvery Bitcoin payment the crook managed to claw back was paid out of\n"
      "his escrow collateral instead. Honest customers' escrows were never touched.\n");
  return 0;
}
