// Quickstart: the smallest end-to-end BTCFast run.
//
//   1. Deploy the world: a simulated Bitcoin network, a PSC chain running
//      the PayJudger contract, and customer/merchant/relayer processes.
//      (The customer's escrow deposit happens during deployment.)
//   2. The customer fast-pays the merchant — the merchant accepts after
//      purely local checks, in well under a second.
//   3. Simulated hours pass; the payment confirms on Bitcoin; the escrow
//      was never touched.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "btcfast/orchestrator.h"

int main() {
  using namespace btcfast;
  using namespace btcfast::core;

  std::printf("BTCFast quickstart\n");
  std::printf("==================\n\n");

  DeploymentConfig config;
  config.seed = 2026;
  config.settle_confirmations = 3;
  Deployment world(config);

  std::printf("[setup] escrow #%llu funded with %llu PSC units of collateral\n",
              static_cast<unsigned long long>(world.customer().escrow_id()),
              static_cast<unsigned long long>(world.escrow_view()->collateral));
  std::printf("[setup] PayJudger at %s, judgment depth k=%u\n\n",
              world.judger_address().to_string().c_str(), config.required_depth);

  // One fast payment of 10 BTC-sim.
  const FastPayResult payment = world.perform_fastpay(10 * btc::kCoin);
  if (!payment.accepted) {
    std::printf("payment rejected: %s\n", payment.reject_reason.c_str());
    return 1;
  }
  std::printf("[t=0] merchant ACCEPTED payment %s\n",
              payment.txid.to_string().substr(0, 16).c_str());
  std::printf("      decision took %.0f us of CPU + %lld ms network hop  (<1 s total)\n\n",
              payment.decision_micros, static_cast<long long>(payment.message_latency_ms));

  // Let three simulated hours elapse: blocks get mined, the tx confirms.
  world.run_for(3 * kHour);

  const DeploymentSummary summary = world.summarize();
  std::printf("[t=3h] Bitcoin height: %u, payment confirmations: %u\n", summary.btc_height,
              world.merchant_node().chain().confirmations(payment.txid));
  std::printf("[t=3h] payments settled: %zu, disputes: %zu\n", summary.payments_settled,
              summary.disputes_opened);
  std::printf("[t=3h] escrow collateral untouched: %llu (state=%s)\n",
              static_cast<unsigned long long>(summary.escrow_collateral),
              summary.escrow_state == EscrowState::kActive ? "ACTIVE" : "other");
  std::printf("\nHonest case: zero on-chain PayJudger operations per payment.\n");
  return 0;
}
