// Relayer demo: how PayJudger's view of Bitcoin stays fresh. A relayer
// watches the Bitcoin chain and periodically submits header batches; the
// contract verifies each header's proof-of-work before advancing its
// checkpoint — a minimal BTC-relay.
#include <cstdio>

#include "btcfast/orchestrator.h"

int main() {
  using namespace btcfast;
  using namespace btcfast::core;

  std::printf("BTCFast relayer demo: a gas-metered BTC-relay inside PayJudger\n");
  std::printf("===============================================================\n\n");

  DeploymentConfig config;
  config.seed = 777;
  config.relayer_lag_blocks = 3;  // aggressive for the demo
  Deployment world(config);

  const auto initial = world.relayer().read_checkpoint();
  std::printf("[t=0] contract checkpoint: %s... height +%llu\n",
              initial->first.to_string().substr(0, 16).c_str(),
              static_cast<unsigned long long>(initial->second));

  for (int hour = 1; hour <= 6; ++hour) {
    world.run_for(kHour);
    const auto cp = world.relayer().read_checkpoint();
    const auto tip = world.merchant_node().chain().height();
    const auto cp_abs = world.merchant_node().chain().block_height(cp->first);
    std::printf("[t=%dh] btc tip height %u | checkpoint at height %u (lag %lld, target %u)\n",
                hour, tip, cp_abs.value_or(0),
                static_cast<long long>(tip) - static_cast<long long>(cp_abs.value_or(0)),
                config.relayer_lag_blocks);
  }

  // Every updateCheckpoint receipt charged real gas for the PoW checks.
  const auto updates = world.receipts_for("updateCheckpoint");
  std::printf("\ncheckpoint updates executed: %zu\n", updates.size());
  psc::Gas total = 0;
  for (const auto& r : updates) total += r.gas_used;
  if (!updates.empty()) {
    std::printf("gas per update (avg)       : %llu\n",
                static_cast<unsigned long long>(total / updates.size()));
  }
  std::printf(
      "\nDisputes anchor at the checkpoint current when they open, so evidence\n"
      "chains stay short; the deliberate lag keeps disputed txs *after* the anchor.\n");
  return 0;
}
