// Retail scenario: a coffee bar accepts a stream of BTCFast payments over
// a simulated business day. Demonstrates escrow reuse across payments,
// merchant-side exposure tracking, settlement, and the amortized fee
// story the paper's evaluation makes.
#include <cstdio>
#include <vector>

#include "analysis/collateral.h"
#include "analysis/economics.h"
#include "btcfast/orchestrator.h"

int main() {
  using namespace btcfast;
  using namespace btcfast::core;

  std::printf("BTCFast retail demo: one escrow, a day of coffee\n");
  std::printf("=================================================\n\n");

  DeploymentConfig config;
  config.seed = 404;
  config.settle_confirmations = 2;
  config.compensation = 300'000;
  config.collateral = 3'000'000;  // covers ~10 concurrent unsettled payments
  config.funded_coins = 8;
  Deployment world(config);

  // Size check against the analysis module's collateral rule.
  const auto plan = analysis::size_collateral(config.compensation,
                                              /*payments_per_hour=*/4,
                                              config.settle_confirmations);
  std::printf("[plan] %u-conf settlement at 4 payments/h needs %llu collateral (have %llu)\n\n",
              config.settle_confirmations,
              static_cast<unsigned long long>(plan.required_collateral),
              static_cast<unsigned long long>(config.collateral));

  // A payment every ~25 simulated minutes.
  std::vector<FastPayResult> accepted;
  for (int i = 0; i < 8; ++i) {
    const FastPayResult r = world.perform_fastpay(2 * btc::kCoin);
    const double now_h = static_cast<double>(world.simulator().now()) / kHour;
    if (r.accepted) {
      std::printf("[t=%4.1fh] sale #%d accepted in %6.0f us  (txid %s...)\n", now_h, i + 1,
                  r.decision_micros, r.txid.to_string().substr(0, 12).c_str());
      accepted.push_back(r);
    } else {
      std::printf("[t=%4.1fh] sale #%d REJECTED: %s\n", now_h, i + 1, r.reject_reason.c_str());
    }
    world.run_for(25 * kMinute);
  }

  // Close out the day.
  world.run_for(2 * kHour);
  const DeploymentSummary summary = world.summarize();

  std::printf("\n[close] accepted %zu sales, settled %zu, disputes %zu\n", accepted.size(),
              summary.payments_settled, summary.disputes_opened);
  std::printf("[close] escrow: %llu collateral, state %s — reused for every sale\n",
              static_cast<unsigned long long>(summary.escrow_collateral),
              summary.escrow_state == EscrowState::kActive ? "ACTIVE" : "other");

  // The fee story: setup gas amortized over the day's sales.
  const auto gas_ref = analysis::GasReference::late2020();
  const auto amort =
      analysis::amortize(/*setup_gas=*/193'000, accepted.size(), gas_ref);
  std::printf("[fees ] one-time escrow setup ~$%.2f -> $%.4f per sale today;\n",
              amort.setup_usd, amort.per_payment_usd);
  std::printf("        a month of this traffic puts it below a hundredth of a cent.\n");
  return 0;
}
