#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
# Usage: scripts/tier1.sh [preset]   (preset defaults to "default";
# pass "tsan" to run the suite under ThreadSanitizer.)
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-default}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$jobs"
ctest --preset "$preset" -j "$jobs"
