#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
# Usage: scripts/tier1.sh [preset] [--bench-smoke] [--kernel-sanitize]
#                         [--fuzz-smoke] [--scenario-fuzz [N]] [--gateway-smoke]
#                         [--store-smoke] [--verify-smoke] [--net-smoke]
#                         [--dispute-smoke] [--replication-smoke]
#   preset             "default" (the gate), or "tsan"/"asan"/"ubsan" for a
#                      full sanitizer suite run.
#   --bench-smoke      after the tests, run every bench_* binary once (the
#                      google-benchmark suite at its minimum iteration
#                      budget, the bounded hand-timed harnesses at full
#                      length) in a scratch cwd — catches bench bit-rot
#                      without touching the curated BENCH_*.json artifacts.
#   --kernel-sanitize  additionally build the asan and ubsan trees and run
#                      the hashing-kernel + crypto tests there. Sanitizer
#                      builds pin the scalar SHA-256 fallback
#                      (BTCFAST_FORCE_SCALAR_SHA256), so this is what keeps
#                      the portable kernel honest while the default build
#                      dispatches to SHA-NI.
#   --fuzz-smoke       build the asan and ubsan trees and run the decoder
#                      fuzz tests at a fixed 10k-iteration corpus per
#                      decoder (BTCFAST_FUZZ_ITERS=2000 across the suite's
#                      5 fixed seeds) — the promoted version of the quick
#                      default-build fuzz pass.
#   --scenario-fuzz [N]
#                      run the adversarial scenario fuzzer over N seeds
#                      (default 25) in the current preset's tree. On an
#                      invariant violation the harness prints a one-line
#                      repro ("fuzz_scenario_test --replay <seed>") and a
#                      minimized event trace, and this script fails.
#   --gateway-smoke    run the gateway serving bench in its short 1-vs-8
#                      thread configuration (BTCFAST_GATEWAY_SMOKE) in a
#                      scratch cwd and assert the 8-thread run scales by
#                      at least BTCFAST_GATEWAY_SCALE_FACTOR (default 3x)
#                      over the 1-thread run — auto-skipped when the
#                      machine has fewer hardware threads than the bench
#                      asks for, or when BTCFAST_SKIP_SCALE_CHECK is set.
#                      Then build the asan and ubsan trees and run the
#                      gateway tests plus the wire-decoder fuzz corpus
#                      (BTCFAST_FUZZ_ITERS=2000) there.
#   --store-smoke      the durability gate: run the full recovery + fault
#                      suite (store_test) and the WAL/snapshot corruption
#                      fuzz corpus (BTCFAST_FUZZ_ITERS=2000) under both
#                      memory sanitizers, plus the durability bench in its
#                      short configuration (BTCFAST_DURABILITY_SMOKE) in a
#                      scratch cwd.
#   --net-smoke        the TCP front-end gate: run the network torture
#                      suite (net_test) and the frame-reassembly fuzz
#                      corpus (BTCFAST_FUZZ_ITERS=2000) under both memory
#                      sanitizers, then the fork-based loopback load bench
#                      in its short configuration (BTCFAST_E13_SMOKE) in a
#                      scratch cwd, asserting accepts/s > 0 and that the
#                      ban + shed coverage invariants held. The bench's
#                      size knobs (BTCFAST_E13_CLIENTS / _REQUESTS /
#                      _PIPELINE) pass through for bigger machines.
#   --dispute-smoke    the dispute-storm gate: run the storm parity +
#                      header-index + header-sync suite (dispute_test) and
#                      the dispute fuzz corpus (BTCFAST_FUZZ_ITERS=2000)
#                      under both memory sanitizers, then the storm bench
#                      in its short configuration (BTCFAST_E14_SMOKE) in a
#                      scratch cwd, asserting disputes/s > 0, a nonzero
#                      dedup hit rate on the shared-segment workload, and
#                      byte-identical gas between the batch and naive
#                      paths.
#   --replication-smoke
#                      the replication gate: run the primary/follower +
#                      failover + router suite (replication_test) under
#                      both memory sanitizers, then the replication bench
#                      in its short configuration (BTCFAST_E15_SMOKE) in a
#                      scratch cwd, asserting nonzero quorum-gated acks
#                      and a byte-exact promoted image after failover.
#   --verify-smoke     the ECDSA verify-speed gate: run the hand-timed
#                      verify section of bench_micro_crypto
#                      (BTCFAST_VERIFY_SMOKE=1) in a scratch cwd and fail
#                      if the GLV cold / warm-precomp paths fall under
#                      their relative floors (1.5x / 2.0x vs the frozen
#                      shamir baseline). Set BTCFAST_VERIFY_BUDGET_US to
#                      additionally enforce an absolute cold-verify budget
#                      in microseconds; without it, the absolute check
#                      self-skips (wall-clock budgets are meaningless on
#                      an arbitrarily loaded or throttled runner).
set -euo pipefail
cd "$(dirname "$0")/.."

preset="default"
bench_smoke=0
kernel_sanitize=0
verify_smoke=0
net_smoke=0
dispute_smoke=0
fuzz_smoke=0
gateway_smoke=0
store_smoke=0
replication_smoke=0
scenario_fuzz=0
scenario_seeds=25
expect_seed_count=0
for arg in "$@"; do
  if [[ "$expect_seed_count" == 1 ]]; then
    expect_seed_count=0
    if [[ "$arg" =~ ^[0-9]+$ ]]; then
      scenario_seeds="$arg"
      continue
    fi
  fi
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    --kernel-sanitize) kernel_sanitize=1 ;;
    --fuzz-smoke) fuzz_smoke=1 ;;
    --gateway-smoke) gateway_smoke=1 ;;
    --store-smoke) store_smoke=1 ;;
    --verify-smoke) verify_smoke=1 ;;
    --net-smoke) net_smoke=1 ;;
    --dispute-smoke) dispute_smoke=1 ;;
    --replication-smoke) replication_smoke=1 ;;
    --scenario-fuzz) scenario_fuzz=1; expect_seed_count=1 ;;
    *) preset="$arg" ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$jobs"
ctest --preset "$preset" -j "$jobs"

bindir="build"
case "$preset" in
  tsan) bindir="build-tsan" ;;
  asan) bindir="build-asan" ;;
  ubsan) bindir="build-ubsan" ;;
esac

if [[ "$bench_smoke" == 1 ]]; then
  echo "== bench smoke (${bindir}) =="
  # Run from a scratch directory: benches write BENCH_*.json into their
  # cwd, and the smoke run must not clobber the curated artifacts at the
  # repo root with noisy throwaway numbers.
  smoke_dir="$bindir/bench-smoke"
  mkdir -p "$smoke_dir"
  repo_root="$PWD"
  for bench in "$bindir"/bench/bench_*; do
    [[ -x "$bench" ]] || continue
    name="$(basename "$bench")"
    echo "-- $name"
    if [[ "$name" == "bench_micro_crypto" ]]; then
      # google-benchmark half at minimum iteration budget; the hand-timed
      # JSON half is already bounded and fast.
      (cd "$smoke_dir" && "$repo_root/$bench" --benchmark_min_time=0.001 >/dev/null)
    else
      (cd "$smoke_dir" && "$repo_root/$bench" >/dev/null)
    fi
  done
  echo "== bench smoke: all benches ran =="
fi

if [[ "$kernel_sanitize" == 1 ]]; then
  for san in asan ubsan; do
    echo "== kernel tests under $san (scalar SHA-256 pinned) =="
    cmake --preset "$san"
    cmake --build --preset "$san" -j "$jobs" \
      --target sha256_kernel_test crypto_test crypto_property_test thread_pool_test \
               sigcache_test
    for t in sha256_kernel_test crypto_test crypto_property_test thread_pool_test \
             sigcache_test; do
      "build-$san/tests/$t"
    done
  done
  echo "== kernel sanitize: clean =="
fi

if [[ "$fuzz_smoke" == 1 ]]; then
  # Promote the decoder fuzz tests from their quick default budget to a
  # fixed 10k-iteration corpus per decoder, under both memory sanitizers.
  # The iteration count is an env override so the default ctest pass stays
  # fast; seeds inside the suite are fixed, so this corpus is identical on
  # every run.
  for san in asan ubsan; do
    echo "== fuzz smoke under $san (10k iterations per decoder) =="
    cmake --preset "$san"
    cmake --build --preset "$san" -j "$jobs" --target fuzz_test
    BTCFAST_FUZZ_ITERS=2000 "build-$san/tests/fuzz_test"
  done
  echo "== fuzz smoke: clean =="
fi

if [[ "$gateway_smoke" == 1 ]]; then
  # The serving-layer gate: a short run of the concurrent gateway bench
  # (1 and 8 customer threads, shrunk payment volume), then the gateway
  # unit + pipeline tests and the wire-decoder fuzz corpus under both
  # memory sanitizers. Run from a scratch cwd for the same reason as the
  # bench smoke: keep the curated BENCH_e11_gateway.json artifact intact.
  echo "== gateway smoke bench (${bindir}) =="
  cmake --build --preset "$preset" -j "$jobs" --target bench_e11_gateway
  smoke_dir="$bindir/gateway-smoke"
  mkdir -p "$smoke_dir"
  repo_root="$PWD"
  (cd "$smoke_dir" && BTCFAST_GATEWAY_SMOKE=1 "$repo_root/$bindir/bench/bench_e11_gateway")
  # Thread-scaling assertion: the smoke JSON records accepts/s at 1 and 8
  # threads plus the machine's hardware thread count. On a machine with
  # enough cores, 8 threads must beat 1 thread by the configured factor;
  # on constrained runners (the reference container is single-core) the
  # check is meaningless and skips itself.
  smoke_json="$smoke_dir/BENCH_e11_gateway.json"
  json_num() { sed -n "s/^[[:space:]]*\"$1\":[[:space:]]*\([0-9.]*\).*/\1/p" "$smoke_json" | head -n1; }
  hw_threads="$(json_num hw_threads)"
  scale_threads="$(json_num scale_threads)"
  scale_ratio="$(json_num scale_ratio)"
  scale_factor="${BTCFAST_GATEWAY_SCALE_FACTOR:-3}"
  if [[ -n "${BTCFAST_SKIP_SCALE_CHECK:-}" ]]; then
    echo "== gateway scaling check: skipped (BTCFAST_SKIP_SCALE_CHECK) =="
  elif [[ -z "$hw_threads" || -z "$scale_ratio" || -z "$scale_threads" ]]; then
    echo "== gateway scaling check: FAILED to parse $smoke_json =="
    exit 1
  elif awk -v h="$hw_threads" -v t="$scale_threads" 'BEGIN{exit !(h < t)}'; then
    echo "== gateway scaling check: skipped (${hw_threads} hardware threads < ${scale_threads} bench threads) =="
  elif awk -v r="$scale_ratio" -v f="$scale_factor" 'BEGIN{exit !(r >= f)}'; then
    echo "== gateway scaling check: ${scale_threads}-thread/1-thread = ${scale_ratio}x (>= ${scale_factor}x) =="
  else
    echo "== gateway scaling check: FAILED — ${scale_threads}-thread/1-thread = ${scale_ratio}x < ${scale_factor}x =="
    echo "   (override the floor with BTCFAST_GATEWAY_SCALE_FACTOR or skip with BTCFAST_SKIP_SCALE_CHECK)"
    exit 1
  fi
  for san in asan ubsan; do
    echo "== gateway tests + wire fuzz under $san =="
    cmake --preset "$san"
    cmake --build --preset "$san" -j "$jobs" --target gateway_test fuzz_test
    "build-$san/tests/gateway_test"
    BTCFAST_FUZZ_ITERS=2000 "build-$san/tests/fuzz_test" \
      --gtest_filter='*ParserFuzz*'
  done
  echo "== gateway smoke: clean =="
fi

if [[ "$store_smoke" == 1 ]]; then
  # The durability gate: crash-consistency and corruption handling are
  # exactly where latent memory bugs hide (torn buffers, partial reads),
  # so the whole store suite runs under both memory sanitizers — the
  # FaultFile crash-shim tests, byte-exact recovery at every crash point,
  # and the WAL/snapshot corruption fuzz corpus at its promoted budget.
  echo "== store smoke bench (${bindir}) =="
  cmake --build --preset "$preset" -j "$jobs" --target bench_e12_durability
  smoke_dir="$bindir/store-smoke"
  mkdir -p "$smoke_dir"
  repo_root="$PWD"
  (cd "$smoke_dir" && BTCFAST_DURABILITY_SMOKE=1 "$repo_root/$bindir/bench/bench_e12_durability")
  for san in asan ubsan; do
    echo "== store recovery + fault suite under $san =="
    cmake --preset "$san"
    cmake --build --preset "$san" -j "$jobs" --target store_test fuzz_test
    "build-$san/tests/store_test"
    BTCFAST_FUZZ_ITERS=2000 "build-$san/tests/fuzz_test" \
      --gtest_filter='*ParserFuzz*:*StoreFuzz*'
  done
  echo "== store smoke: clean =="
fi

if [[ "$net_smoke" == 1 ]]; then
  # The TCP front-end gate. Socket code is where lifetime bugs hide
  # (buffers freed while epoll still references the fd, short reads into
  # stale spans), so the whole torture suite plus the reassembly fuzz
  # corpus runs under both memory sanitizers first. Then the fork-based
  # loopback bench runs short in the default tree: real TCP clients, real
  # bans, real sheds — and the smoke JSON must show a nonzero accept rate
  # with every coverage invariant intact.
  for san in asan ubsan; do
    echo "== net torture suite + reassembly fuzz under $san =="
    cmake --preset "$san"
    cmake --build --preset "$san" -j "$jobs" --target net_test fuzz_test
    "build-$san/tests/net_test"
    BTCFAST_FUZZ_ITERS=2000 "build-$san/tests/fuzz_test" \
      --gtest_filter='*NetFuzz*'
  done
  echo "== net smoke bench (${bindir}) =="
  cmake --build --preset "$preset" -j "$jobs" --target bench_e13_network
  smoke_dir="$bindir/net-smoke"
  mkdir -p "$smoke_dir"
  repo_root="$PWD"
  (cd "$smoke_dir" && BTCFAST_E13_SMOKE=1 "$repo_root/$bindir/bench/bench_e13_network")
  smoke_json="$smoke_dir/BENCH_e13_network.json"
  json_field() { sed -n "s/^[[:space:]]*\"$1\":[[:space:]]*\"\{0,1\}\([0-9.a-z]*\)\"\{0,1\}.*/\1/p" "$smoke_json" | head -n1; }
  accepts_s="$(json_field accepts_per_s)"
  coverage="$(json_field coverage_ok)"
  if [[ -z "$accepts_s" || -z "$coverage" ]]; then
    echo "== net smoke: FAILED to parse $smoke_json =="
    exit 1
  elif [[ "$coverage" != "yes" ]]; then
    echo "== net smoke: FAILED — coverage_ok=$coverage =="
    exit 1
  elif awk -v a="$accepts_s" 'BEGIN{exit !(a > 0)}'; then
    echo "== net smoke: ${accepts_s} accepts/s over loopback, coverage intact =="
  else
    echo "== net smoke: FAILED — accepts_per_s=$accepts_s =="
    exit 1
  fi
fi

if [[ "$dispute_smoke" == 1 ]]; then
  # The dispute-storm gate. The storm engine's whole value rests on a
  # byte-parity claim (batch == one-at-a-time), and the index/sync code
  # chews on adversarial evidence bytes, so the full dispute suite plus
  # the dispute fuzz corpus runs under both memory sanitizers first. Then
  # the storm bench runs short in the default tree and its smoke JSON
  # must show real throughput, real dedup, and exact gas parity.
  for san in asan ubsan; do
    echo "== dispute parity suite + dispute fuzz under $san =="
    cmake --preset "$san"
    cmake --build --preset "$san" -j "$jobs" --target dispute_test fuzz_test
    "build-$san/tests/dispute_test"
    BTCFAST_FUZZ_ITERS=2000 "build-$san/tests/fuzz_test" \
      --gtest_filter='*DisputeFuzz*'
  done
  echo "== dispute smoke bench (${bindir}) =="
  cmake --build --preset "$preset" -j "$jobs" --target bench_e14_dispute_storm
  smoke_dir="$bindir/dispute-smoke"
  mkdir -p "$smoke_dir"
  repo_root="$PWD"
  (cd "$smoke_dir" && BTCFAST_E14_SMOKE=1 "$repo_root/$bindir/bench/bench_e14_dispute_storm")
  smoke_json="$smoke_dir/BENCH_e14_dispute_storm.json"
  json_field() { sed -n "s/^[[:space:]]*\"$1\":[[:space:]]*\"\{0,1\}\([0-9.a-z]*\)\"\{0,1\}.*/\1/p" "$smoke_json" | head -n1; }
  storm_rate="$(json_field disputes_per_s_storm)"
  hit_rate="$(json_field dedup_hit_rate)"
  gas_parity="$(json_field gas_parity)"
  if [[ -z "$storm_rate" || -z "$hit_rate" || -z "$gas_parity" ]]; then
    echo "== dispute smoke: FAILED to parse $smoke_json =="
    exit 1
  elif [[ "$gas_parity" != "yes" ]]; then
    echo "== dispute smoke: FAILED — gas_parity=$gas_parity =="
    exit 1
  elif ! awk -v r="$storm_rate" 'BEGIN{exit !(r > 0)}'; then
    echo "== dispute smoke: FAILED — disputes_per_s_storm=$storm_rate =="
    exit 1
  elif ! awk -v h="$hit_rate" 'BEGIN{exit !(h > 0)}'; then
    echo "== dispute smoke: FAILED — dedup_hit_rate=$hit_rate =="
    exit 1
  else
    echo "== dispute smoke: ${storm_rate} disputes/s, dedup hit rate ${hit_rate}, gas parity exact =="
  fi
fi

if [[ "$replication_smoke" == 1 ]]; then
  # The replication gate. Promotion correctness is a byte-exactness claim
  # (the promoted image must equal a replay of the primary's acked
  # prefix), and the follower's fail-closed paths chew on adversarial
  # batch bytes, so the whole replication suite runs under both memory
  # sanitizers first. Then the bench runs short in the default tree and
  # its smoke JSON must show quorum-gated acks actually flowing and an
  # exact failover.
  for san in asan ubsan; do
    echo "== replication suite under $san =="
    cmake --preset "$san"
    cmake --build --preset "$san" -j "$jobs" --target replication_test
    "build-$san/tests/replication_test"
  done
  echo "== replication smoke bench (${bindir}) =="
  cmake --build --preset "$preset" -j "$jobs" --target bench_e15_replication
  smoke_dir="$bindir/replication-smoke"
  mkdir -p "$smoke_dir"
  repo_root="$PWD"
  (cd "$smoke_dir" && BTCFAST_E15_SMOKE=1 "$repo_root/$bindir/bench/bench_e15_replication")
  smoke_json="$smoke_dir/BENCH_e15_replication.json"
  json_field() { sed -n "s/^[[:space:]]*\"$1\":[[:space:]]*\"\{0,1\}\([0-9.a-z]*\)\"\{0,1\}.*/\1/p" "$smoke_json" | head -n1; }
  quorum_acks="$(json_field quorum_gated_acks)"
  failover_exact="$(json_field failover_exact)"
  catchup_rate="$(json_field catchup_records_per_s)"
  if [[ -z "$quorum_acks" || -z "$failover_exact" || -z "$catchup_rate" ]]; then
    echo "== replication smoke: FAILED to parse $smoke_json =="
    exit 1
  elif [[ "$failover_exact" != "yes" ]]; then
    echo "== replication smoke: FAILED — failover_exact=$failover_exact =="
    exit 1
  elif ! awk -v q="$quorum_acks" 'BEGIN{exit !(q > 0)}'; then
    echo "== replication smoke: FAILED — quorum_gated_acks=$quorum_acks =="
    exit 1
  elif ! awk -v c="$catchup_rate" 'BEGIN{exit !(c > 0)}'; then
    echo "== replication smoke: FAILED — catchup_records_per_s=$catchup_rate =="
    exit 1
  else
    echo "== replication smoke: ${quorum_acks} quorum-gated acks, failover byte-exact, catch-up ${catchup_rate} records/s =="
  fi
fi

if [[ "$verify_smoke" == 1 ]]; then
  # The verify-speed gate: the GLV + precomp verify engine must hold its
  # speedup over the frozen shamir baseline. Ratios are load-resilient
  # (both sides run on the same machine in the same process), so they are
  # always enforced; the absolute microsecond budget only applies when
  # the caller pins one via BTCFAST_VERIFY_BUDGET_US.
  echo "== verify smoke (${bindir}) =="
  cmake --build --preset "$preset" -j "$jobs" --target bench_micro_crypto
  smoke_dir="$bindir/verify-smoke"
  mkdir -p "$smoke_dir"
  repo_root="$PWD"
  (cd "$smoke_dir" && BTCFAST_VERIFY_SMOKE=1 "$repo_root/$bindir/bench/bench_micro_crypto")
  echo "== verify smoke: clean =="
fi

if [[ "$scenario_fuzz" == 1 ]]; then
  echo "== scenario fuzz (${scenario_seeds} seeds, ${bindir}) =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs" --target fuzz_scenario_test
  # On a violation the gtest batch prints the repro line + minimized trace
  # and exits nonzero, which fails the script via `set -e`.
  BTCFAST_SCENARIO_SEEDS="$scenario_seeds" \
    "$bindir/tests/fuzz_scenario_test" --gtest_filter='ScenarioFuzz.BatchSeeds'
  echo "== scenario fuzz: ${scenario_seeds} seeds clean =="
fi
