#include "analysis/attack_cost.h"

namespace btcfast::analysis {

double hashes_per_block(const MainnetReference& ref) {
  // Difficulty D means ~D * 2^32 hash evaluations per block on average.
  return ref.difficulty * 4294967296.0;
}

double cost_per_block_usd(const MainnetReference& ref) {
  return (ref.block_reward_btc + ref.avg_fees_btc) * ref.btc_usd;
}

double forgery_cost_usd(const MainnetReference& ref, std::uint32_t k) {
  // Each forged block costs the full expected mining cost AND forfeits the
  // revenue honest mining would have earned with the same hash power —
  // the standard 2x opportunity-cost accounting for withheld blocks. The
  // forged coinbase is worthless (the fork dies once the fraud fails, and
  // succeeds only against the escrow).
  return 2.0 * cost_per_block_usd(ref) * static_cast<double>(k);
}

std::vector<AttackCostRow> attack_cost_table(const MainnetReference& ref, std::uint32_t max_k) {
  std::vector<AttackCostRow> rows;
  rows.reserve(max_k + 1);
  for (std::uint32_t k = 1; k <= max_k; ++k) {
    AttackCostRow row;
    row.k = k;
    row.forgery_cost_usd = forgery_cost_usd(ref, k);
    row.breakeven_escrow_usd = row.forgery_cost_usd;
    rows.push_back(row);
  }
  return rows;
}

std::uint32_t safe_depth_for_escrow(const MainnetReference& ref, double escrow_usd) {
  std::uint32_t k = 1;
  while (forgery_cost_usd(ref, k) <= escrow_usd && k < 100000) ++k;
  return k;
}

}  // namespace btcfast::analysis
