// Economic security of the PoW judgment (E6): what would it cost an
// attacker to forge winning evidence — i.e. privately mine `k` Bitcoin
// headers heavier than the honest chain — versus the escrow value it
// could steal? All market constants are frozen references (see
// `MainnetReference`) so results are reproducible; the *shape* (linear
// attack cost in k, crossover where collateral exceeds forgery cost) is
// price-independent.
#pragma once

#include <cstdint>
#include <vector>

namespace btcfast::analysis {

/// Frozen market/consensus constants (circa the paper's evaluation,
/// late 2020). Documented substitution for live data — see DESIGN.md §4.
struct MainnetReference {
  double difficulty = 19.16e12;       ///< network difficulty
  double btc_usd = 13'000.0;          ///< BTC price
  double block_reward_btc = 6.25;     ///< subsidy (post-May-2020 halving)
  double avg_fees_btc = 0.75;         ///< average fees per block
  double block_interval_s = 600.0;

  [[nodiscard]] static MainnetReference late2020() { return {}; }
};

/// Expected hashes to mine one block at the given difficulty.
[[nodiscard]] double hashes_per_block(const MainnetReference& ref);

/// USD cost to mine one block. In miner equilibrium, marginal cost ≈
/// marginal revenue (reward + fees); we use that as the cost proxy.
[[nodiscard]] double cost_per_block_usd(const MainnetReference& ref);

/// Expected cost of forging a k-header private chain, including the
/// opportunity cost of not mining honestly (forged blocks earn nothing).
[[nodiscard]] double forgery_cost_usd(const MainnetReference& ref, std::uint32_t k);

/// Row of the E6 sweep: for each judgment depth k, the attack cost and
/// whether an escrow of `escrow_usd` would be profitable to steal.
struct AttackCostRow {
  std::uint32_t k = 0;
  double forgery_cost_usd = 0.0;
  double breakeven_escrow_usd = 0.0;  ///< escrow value making the attack profitable
};

[[nodiscard]] std::vector<AttackCostRow> attack_cost_table(const MainnetReference& ref,
                                                           std::uint32_t max_k);

/// Minimum judgment depth k such that forging costs more than the escrow.
[[nodiscard]] std::uint32_t safe_depth_for_escrow(const MainnetReference& ref,
                                                  double escrow_usd);

}  // namespace btcfast::analysis
