#include "analysis/collateral.h"

#include <cmath>

namespace btcfast::analysis {

CollateralPlan size_collateral(std::uint64_t payment_value, double payments_per_hour,
                               std::uint32_t settle_confirmations, double block_interval_s) {
  const double settle_hours =
      static_cast<double>(settle_confirmations) * block_interval_s / 3600.0;
  // Outstanding payments ~ arrival rate x settlement window (ceil for the
  // worst case, minimum 1 — a single payment still needs full cover).
  double concurrent = std::ceil(payments_per_hour * settle_hours);
  if (concurrent < 1.0) concurrent = 1.0;

  CollateralPlan plan;
  plan.required_collateral =
      static_cast<std::uint64_t>(concurrent) * payment_value;
  plan.multiplier = concurrent;
  return plan;
}

}  // namespace btcfast::analysis
