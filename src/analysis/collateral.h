// Collateral sizing: how much a customer must escrow to support a given
// payment stream, and how long capital is locked.
#pragma once

#include <cstdint>

namespace btcfast::analysis {

struct CollateralPlan {
  /// Peak concurrent unsettled exposure the escrow must cover.
  std::uint64_t required_collateral = 0;
  /// Collateral / typical payment: the capital multiplier.
  double multiplier = 0.0;
};

/// The escrow must cover every payment that could be outstanding at once:
/// payments arrive at `payments_per_hour` and stay "outstanding" until
/// settled on Bitcoin (settle_confirmations blocks) — that window bounds
/// the concurrent exposure.
[[nodiscard]] CollateralPlan size_collateral(std::uint64_t payment_value,
                                             double payments_per_hour,
                                             std::uint32_t settle_confirmations,
                                             double block_interval_s = 600.0);

}  // namespace btcfast::analysis
