#include "analysis/doublespend.h"

#include <cmath>

namespace btcfast::analysis {

double nakamoto_probability(double q, std::uint32_t z) {
  if (q <= 0.0) return 0.0;
  if (q >= 0.5) return 1.0;
  const double p = 1.0 - q;
  const double lambda = static_cast<double>(z) * q / p;

  // P = 1 - sum_{k=0}^{z} Poisson(k; lambda) * (1 - (q/p)^{z-k})
  double sum = 0.0;
  double poisson = std::exp(-lambda);  // k = 0 term
  for (std::uint32_t k = 0; k <= z; ++k) {
    if (k > 0) poisson *= lambda / static_cast<double>(k);
    sum += poisson * (1.0 - std::pow(q / p, static_cast<double>(z - k)));
  }
  double prob = 1.0 - sum;
  if (prob < 0.0) prob = 0.0;
  if (prob > 1.0) prob = 1.0;
  return prob;
}

double rosenfeld_probability(double q, std::uint32_t z) {
  if (q <= 0.0) return 0.0;
  if (q >= 0.5) return 1.0;
  const double p = 1.0 - q;
  if (z == 0) return q / p;

  // P = sum_{m=0}^{z} NB(m; z, p) * a(z - m) + P[m > z]
  // where NB(m; z, p) = C(m+z-1, m) p^z q^m (attacker mined m while the
  // honest chain mined z) and a(d) = (q/p)^{d+1} is the catch-up
  // probability from d behind (the attacker must end strictly ahead).
  double prob = 0.0;
  double nb = std::pow(p, static_cast<double>(z));  // m = 0: C(z-1,0) p^z
  double tail = 1.0 - nb;                            // P[m > current]
  for (std::uint32_t m = 0; m <= z; ++m) {
    if (m > 0) {
      // C(m+z-1, m) = C(m+z-2, m-1) * (m+z-1)/m
      nb *= q * static_cast<double>(m + z - 1) / static_cast<double>(m);
      tail -= nb;
    }
    const double catch_up = std::pow(q / p, static_cast<double>(z - m + 1));
    prob += nb * (catch_up < 1.0 ? catch_up : 1.0);
  }
  // If the attacker mined MORE than z blocks during the wait it is already
  // ahead (m >= z+1 implies attacker > honest): success with certainty.
  if (tail > 0.0) prob += tail;
  if (prob < 0.0) prob = 0.0;
  if (prob > 1.0) prob = 1.0;
  return prob;
}

std::uint32_t confirmations_for_risk(double q, double target, std::uint32_t max_z) {
  for (std::uint32_t z = 0; z <= max_z; ++z) {
    if (rosenfeld_probability(q, z) <= target) return z;
  }
  return max_z + 1;
}

std::uint32_t optimal_confirmations(double payment_value_usd, double q,
                                    double max_expected_loss_usd, std::uint32_t max_z) {
  if (payment_value_usd <= 0.0) return 0;
  return confirmations_for_risk(q, max_expected_loss_usd / payment_value_usd, max_z);
}

std::vector<DoubleSpendRow> double_spend_table(const std::vector<std::uint32_t>& zs,
                                               const std::vector<double>& qs) {
  std::vector<DoubleSpendRow> rows;
  rows.reserve(zs.size() * qs.size());
  for (const double q : qs) {
    for (const std::uint32_t z : zs) {
      rows.push_back(DoubleSpendRow{z, q, nakamoto_probability(q, z),
                                    rosenfeld_probability(q, z)});
    }
  }
  return rows;
}

}  // namespace btcfast::analysis
