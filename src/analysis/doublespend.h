// Closed-form double-spend success probabilities: Nakamoto's whitepaper
// approximation (Poisson attacker progress) and Rosenfeld's exact
// negative-binomial analysis. These are the paper's "comparable security"
// yardstick: BTCFast with judgment depth k gives the merchant the same
// bound as waiting k confirmations.
#pragma once

#include <cstdint>
#include <vector>

namespace btcfast::analysis {

/// Nakamoto (2008) §11: attacker progress modelled as Poisson with mean
/// z*q/p; catch-up from deficit d succeeds with probability (q/p)^d.
/// Returns 1.0 for q >= 0.5. z == 0 returns 1.0 by the formula's
/// convention (the merchant has no confirmations to attack).
[[nodiscard]] double nakamoto_probability(double q, std::uint32_t z);

/// Rosenfeld (2014) eq. 1: exact probability with the attacker needing to
/// get strictly ahead, attacker progress negative-binomial.
///   P = 1 - sum_{m=0}^{z} C(m+z-1, m) (p^z q^m - p^m q^z (q/p)^{z-m+1} ... )
/// implemented in the standard "catch-up" form:
///   P = sum_m NB(m; z, p) * min(1, (q/p)^{z-m+1}).
/// For z == 0 this degenerates to q/p (must get 1 ahead from even).
[[nodiscard]] double rosenfeld_probability(double q, std::uint32_t z);

/// Smallest z such that rosenfeld_probability(q, z) <= target. Returns
/// `max_z + 1` if not reachable within max_z.
[[nodiscard]] std::uint32_t confirmations_for_risk(double q, double target,
                                                   std::uint32_t max_z = 1000);

/// A rational k-conf merchant picks z so its *expected loss* per payment
/// (risk x value) stays below `max_expected_loss_usd`. Returns the
/// minimal such z — i.e. the waiting time grows with the payment value,
/// whereas BTCFast's stays constant (the contrast E1/E9 draw).
[[nodiscard]] std::uint32_t optimal_confirmations(double payment_value_usd, double q,
                                                  double max_expected_loss_usd,
                                                  std::uint32_t max_z = 1000);

/// A (z, probability) table row for E2.
struct DoubleSpendRow {
  std::uint32_t z = 0;
  double q = 0.0;
  double nakamoto = 0.0;
  double rosenfeld = 0.0;
};

/// Cartesian table over confirmation counts and attacker shares.
[[nodiscard]] std::vector<DoubleSpendRow> double_spend_table(
    const std::vector<std::uint32_t>& zs, const std::vector<double>& qs);

}  // namespace btcfast::analysis
