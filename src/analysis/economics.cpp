#include "analysis/economics.h"

namespace btcfast::analysis {

AmortizationRow amortize(std::uint64_t setup_gas, std::uint64_t payments,
                         const GasReference& ref) {
  AmortizationRow row;
  row.payments = payments;
  row.setup_usd = ref.gas_to_usd(setup_gas);
  row.per_payment_usd = payments == 0 ? row.setup_usd
                                      : row.setup_usd / static_cast<double>(payments);
  return row;
}

}  // namespace btcfast::analysis
