// Fee economics for E4: converting PSC gas to USD and amortizing the
// one-time escrow costs over payments — the quantitative backing for the
// paper's "no extra operation fee" claim.
#pragma once

#include <cstdint>

namespace btcfast::analysis {

/// Frozen Ethereum reference prices (late 2020, matching the paper era).
struct GasReference {
  double gas_price_gwei = 50.0;
  double eth_usd = 400.0;

  [[nodiscard]] static GasReference late2020() { return {}; }

  [[nodiscard]] double gas_to_usd(std::uint64_t gas) const {
    return static_cast<double>(gas) * gas_price_gwei * 1e-9 * eth_usd;
  }
};

/// Bitcoin on-chain fee reference for the baseline comparison.
struct BtcFeeReference {
  double sat_per_vbyte = 60.0;   ///< late-2020 congestion pricing
  double btc_usd = 13'000.0;
  double typical_tx_vbytes = 226.0;

  [[nodiscard]] static BtcFeeReference late2020() { return {}; }

  [[nodiscard]] double tx_fee_usd() const {
    return sat_per_vbyte * typical_tx_vbytes * 1e-8 * btc_usd;
  }
};

/// Amortized extra fee per fast payment given one-time setup costs.
struct AmortizationRow {
  std::uint64_t payments = 0;
  double setup_usd = 0.0;        ///< deposit + withdraw, one-time
  double per_payment_usd = 0.0;  ///< setup / payments
};

[[nodiscard]] AmortizationRow amortize(std::uint64_t setup_gas, std::uint64_t payments,
                                       const GasReference& ref);

}  // namespace btcfast::analysis
