// Header-only policy logic; this TU anchors the library target.
#include "baselines/acceptance_policy.h"
