// Baseline acceptance policies a Bitcoin merchant can run instead of
// BTCFast: wait k confirmations (k = 0 is naive zero-conf acceptance).
// These are the comparison points for E1 (waiting time) and E9 (scheme
// comparison).
#pragma once

#include <cstdint>
#include <string>

#include "analysis/doublespend.h"

namespace btcfast::baselines {

/// A k-confirmation merchant policy.
struct KConfPolicy {
  std::uint32_t k = 6;

  [[nodiscard]] std::string name() const {
    if (k == 0) return "zero-conf";
    return std::to_string(k) + "-conf";
  }

  /// Expected waiting time before goods release (seconds).
  [[nodiscard]] double expected_wait_s(double block_interval_s = 600.0) const {
    return static_cast<double>(k) * block_interval_s;
  }

  /// Double-spend success probability against this policy (Rosenfeld).
  [[nodiscard]] double double_spend_risk(double attacker_share) const {
    return analysis::rosenfeld_probability(attacker_share, k);
  }
};

/// One row of the E9 qualitative/quantitative comparison.
struct SchemeComparisonRow {
  std::string scheme;
  double wait_s = 0.0;              ///< merchant waiting time per payment
  double risk_at_q10 = 0.0;         ///< double-spend risk at q = 0.10
  std::string trust_assumption;
  std::string collateral;           ///< capital requirement
  std::string per_payment_fee;
};

}  // namespace btcfast::baselines
