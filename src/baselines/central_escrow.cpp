// Header-only; this TU anchors the library target.
#include "baselines/central_escrow.h"
