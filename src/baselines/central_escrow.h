// Centralized (trusted-third-party) escrow baseline: a custodian holds
// the customer's funds and attests payments to merchants instantly. Fast
// and cheap — but the custodian can steal, censor, or fail; it is the
// trust model BTCFast's decentralized PayJudger replaces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "btc/types.h"

namespace btcfast::baselines {

class CentralEscrow {
 public:
  using AccountId = std::uint64_t;

  AccountId open_account(btc::Amount deposit) {
    const AccountId id = next_id_++;
    balances_[id] = deposit;
    return id;
  }

  /// Instant payment attestation (one RTT to the custodian).
  [[nodiscard]] bool pay(AccountId from, btc::Amount amount) {
    auto it = balances_.find(from);
    if (it == balances_.end() || it->second < amount || frozen_) return false;
    it->second -= amount;
    merchant_receivable_ += amount;
    return true;
  }

  [[nodiscard]] btc::Amount balance(AccountId id) const {
    auto it = balances_.find(id);
    return it == balances_.end() ? 0 : it->second;
  }
  [[nodiscard]] btc::Amount merchant_receivable() const noexcept { return merchant_receivable_; }

  // --- the trust failure modes the baseline carries ---
  /// The custodian absconds: every balance is gone.
  void abscond() {
    balances_.clear();
    merchant_receivable_ = 0;
    frozen_ = true;
  }
  /// The custodian censors further payments.
  void freeze() { frozen_ = true; }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

 private:
  std::unordered_map<AccountId, btc::Amount> balances_;
  btc::Amount merchant_receivable_ = 0;
  AccountId next_id_ = 1;
  bool frozen_ = false;
};

}  // namespace btcfast::baselines
