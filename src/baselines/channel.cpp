#include "baselines/channel.h"

#include "common/serialize.h"

namespace btcfast::baselines {

PaymentChannel::PaymentChannel(const sim::Party& customer, const sim::Party& merchant,
                               const btc::OutPoint& coin, btc::Amount coin_value,
                               btc::Amount capacity, std::uint32_t funding_confirmations)
    : customer_(customer),
      merchant_(merchant),
      capacity_(capacity),
      funding_confirmations_(funding_confirmations) {
  // Funding: capacity locked to the channel (customer key held to the
  // channel's discipline), change back to the customer.
  funding_tx_ = sim::build_payment(customer, coin, coin_value, customer.script, capacity);
  const auto id = funding_txid();
  channel_nonce_ = 0;
  for (int i = 0; i < 8; ++i) channel_nonce_ = (channel_nonce_ << 8) | id.bytes[static_cast<std::size_t>(i)];
}

crypto::Sha256Digest PaymentChannel::state_digest(std::uint32_t sequence,
                                                  btc::Amount paid) const {
  Writer w;
  w.bytes(as_bytes(std::string("baseline/channel-state/v1")));
  w.u64le(channel_nonce_);
  w.u32le(sequence);
  w.i64le(paid);
  return crypto::sha256(w.data());
}

std::optional<PaymentChannel::State> PaymentChannel::pay(btc::Amount amount) {
  if (amount <= 0 || paid_ + amount > capacity_) return std::nullopt;
  paid_ += amount;
  State s;
  s.channel_nonce = channel_nonce_;
  s.sequence = latest_accepted_.sequence + 1;
  s.paid = paid_;
  s.customer_sig = crypto::ecdsa_sign(customer_.key, state_digest(s.sequence, s.paid)).serialize();
  return s;
}

bool PaymentChannel::verify(const State& state) const {
  if (state.channel_nonce != channel_nonce_) return false;
  if (state.sequence <= latest_accepted_.sequence && latest_accepted_.sequence != 0) return false;
  if (state.paid <= latest_accepted_.paid || state.paid > capacity_) return false;
  const auto sig = crypto::Signature::parse({state.customer_sig.data(), 64});
  if (!sig) return false;
  return crypto::ecdsa_verify(customer_.pub, state_digest(state.sequence, state.paid), *sig);
}

bool PaymentChannel::accept(const State& state) {
  if (!verify(state)) return false;
  latest_accepted_ = state;
  return true;
}

btc::Transaction PaymentChannel::close() const {
  btc::Transaction tx;
  tx.inputs.push_back(btc::TxIn{{funding_txid(), 0}, {}, 0xffffffff});
  const btc::Amount fee = 1000;
  const btc::Amount to_merchant = latest_accepted_.paid;
  btc::Amount to_customer = capacity_ - to_merchant - fee;
  if (to_customer < 0) to_customer = 0;
  if (to_merchant > 0) tx.outputs.push_back(btc::TxOut{to_merchant, merchant_.script});
  if (to_customer > 0) tx.outputs.push_back(btc::TxOut{to_customer, customer_.script});
  btc::sign_input(tx, 0, customer_.key, customer_.script);
  return tx;
}

}  // namespace btcfast::baselines
