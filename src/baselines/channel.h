// Unidirectional payment-channel baseline (Spilman-style): the customer
// locks capacity in a funding transaction, then pays the merchant with
// signed off-chain state updates; the merchant closes by broadcasting the
// latest state. Setup requires an on-chain confirmation wait; payments
// afterwards are sub-second but capacity is locked *per merchant* — the
// contrast BTCFast draws (one escrow serves all merchants).
//
// Simplification vs. real channels: the funding output is modelled as a
// plain P2PKH to the customer with the discipline enforced by the channel
// object (our script layer has no 2-of-2 multisig). Latency, capacity and
// fee accounting — what E1/E9 measure — are unaffected; see DESIGN.md §4.
#pragma once

#include <cstdint>
#include <optional>

#include "btc/transaction.h"
#include "btcsim/scenario.h"

namespace btcfast::baselines {

class PaymentChannel {
 public:
  /// Opens a channel: builds the funding tx spending `coin`. The channel
  /// is usable once the funding tx has `funding_confirmations` (caller
  /// tracks that; see is_usable()).
  PaymentChannel(const sim::Party& customer, const sim::Party& merchant,
                 const btc::OutPoint& coin, btc::Amount coin_value, btc::Amount capacity,
                 std::uint32_t funding_confirmations);

  [[nodiscard]] const btc::Transaction& funding_tx() const noexcept { return funding_tx_; }
  [[nodiscard]] btc::Txid funding_txid() const { return funding_tx_.txid(); }
  [[nodiscard]] std::uint32_t required_confirmations() const noexcept {
    return funding_confirmations_;
  }
  [[nodiscard]] bool is_usable(std::uint32_t funding_conf) const noexcept {
    return funding_conf >= funding_confirmations_;
  }

  /// A signed channel state: "merchant may claim `paid` of the capacity".
  struct State {
    std::uint64_t channel_nonce = 0;
    std::uint32_t sequence = 0;
    btc::Amount paid = 0;
    ByteArray<64> customer_sig{};
  };

  /// Customer side: pay `amount` more (cumulative). Returns nullopt if it
  /// would exceed capacity.
  [[nodiscard]] std::optional<State> pay(btc::Amount amount);

  /// Merchant side: verify a state update supersedes the previous one.
  [[nodiscard]] bool verify(const State& state) const;
  /// Merchant accepts the state (records it as latest).
  bool accept(const State& state);

  [[nodiscard]] btc::Amount paid_total() const noexcept { return paid_; }
  [[nodiscard]] btc::Amount capacity() const noexcept { return capacity_; }
  [[nodiscard]] btc::Amount remaining() const noexcept { return capacity_ - paid_; }

  /// Cooperative close: a transaction splitting the funding output
  /// according to the latest accepted state.
  [[nodiscard]] btc::Transaction close() const;

 private:
  [[nodiscard]] crypto::Sha256Digest state_digest(std::uint32_t sequence,
                                                  btc::Amount paid) const;

  sim::Party customer_;
  sim::Party merchant_;
  btc::Transaction funding_tx_;
  std::uint64_t channel_nonce_;
  btc::Amount capacity_;
  std::uint32_t funding_confirmations_;
  btc::Amount paid_ = 0;           // customer-side cumulative
  State latest_accepted_{};        // merchant-side
};

}  // namespace btcfast::baselines
