#include "btc/block.h"

#include <set>

namespace btcfast::btc {

Hash256 Block::compute_merkle_root() const {
  Hash256 root;
  root.bytes = crypto::merkle_root(txid_leaves());
  return root;
}

std::vector<crypto::Hash32> Block::txid_leaves() const {
  std::vector<crypto::Hash32> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.txid().bytes);
  return leaves;
}

Status check_block_structure(const Block& block) {
  if (block.txs.empty()) return make_error("bad-blk-empty", "block has no transactions");
  if (!block.txs[0].is_coinbase()) {
    return make_error("bad-cb-missing", "first transaction is not a coinbase");
  }
  for (std::size_t i = 1; i < block.txs.size(); ++i) {
    if (block.txs[i].is_coinbase()) {
      return make_error("bad-cb-multiple", "coinbase at position " + std::to_string(i));
    }
  }
  std::set<Txid> seen;
  for (const auto& tx : block.txs) {
    if (tx.inputs.empty() || tx.outputs.empty()) {
      return make_error("bad-tx-empty", "transaction missing inputs or outputs");
    }
    Amount total = 0;
    for (const auto& out : tx.outputs) {
      if (!money_range(out.value)) return make_error("bad-txout-value");
      total += out.value;
      if (!money_range(total)) return make_error("bad-txout-total");
    }
    if (!seen.insert(tx.txid()).second) {
      return make_error("bad-tx-duplicate", tx.txid().to_string());
    }
  }
  if (block.compute_merkle_root() != block.header.merkle_root) {
    return make_error("bad-merkle-root", "header root does not match transactions");
  }
  return Status::success();
}

}  // namespace btcfast::btc
