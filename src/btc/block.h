// Full blocks: a header plus the transaction list, with Merkle root
// computation and structural validity checks.
#pragma once

#include <vector>

#include "btc/header.h"
#include "btc/transaction.h"
#include "common/result.h"
#include "crypto/merkle.h"

namespace btcfast::btc {

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;

  [[nodiscard]] BlockHash hash() const { return header.hash(); }

  /// Merkle root over the txids, Bitcoin-style.
  [[nodiscard]] Hash256 compute_merkle_root() const;

  /// Fill header.merkle_root from the tx list.
  void seal_merkle_root() { header.merkle_root = compute_merkle_root(); }

  /// Txid list (leaf hashes for SPV proofs).
  [[nodiscard]] std::vector<crypto::Hash32> txid_leaves() const;
};

/// Context-free structural checks: non-empty, first tx is the only
/// coinbase, merkle root matches, no duplicate txids, amounts in range.
[[nodiscard]] Status check_block_structure(const Block& block);

}  // namespace btcfast::btc
