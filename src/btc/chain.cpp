#include "btc/chain.h"

#include <algorithm>

#include "btc/mempool.h"

namespace btcfast::btc {

Chain::Chain(ChainParams params) : params_(std::move(params)) {
  Block genesis;
  genesis.header = genesis_header(params_);
  genesis.txs.push_back(genesis_coinbase());

  BlockIndexEntry entry;
  entry.block = genesis;
  entry.height = 0;
  entry.chain_work = header_work(genesis.header.bits);
  const BlockHash gh = genesis.hash();
  index_[gh] = entry;
  active_.push_back(gh);
  undo_.emplace_back();

  // Genesis coinbase enters the UTXO set (unspendable burn output).
  const Transaction& cb = genesis.txs[0];
  const Txid cbid = cb.txid();
  for (std::uint32_t i = 0; i < cb.outputs.size(); ++i) {
    utxo_.add({cbid, i}, Coin{cb.outputs[i], 0, true});
  }
  tx_index_[cbid] = gh;
}

SubmitResult Chain::submit_block(const Block& block, std::string* reject_reason) {
  auto reject = [&](const std::string& why) {
    if (reject_reason != nullptr) *reject_reason = why;
  };

  const BlockHash hash = block.hash();
  if (index_.contains(hash)) return SubmitResult::kDuplicate;

  auto parent_it = index_.find(block.header.prev_hash);
  if (parent_it == index_.end()) {
    reject("orphan: unknown parent " + block.header.prev_hash.to_string());
    return SubmitResult::kOrphan;
  }
  if (parent_it->second.invalid) {
    reject("bad-prevblk: parent marked invalid");
    return SubmitResult::kInvalid;
  }

  if (const Status s = check_block_structure(block); !s.ok()) {
    reject(s.error().to_string());
    return SubmitResult::kInvalid;
  }
  if (block.header.bits != next_work_required(block.header.prev_hash)) {
    reject("bad-diffbits: incorrect difficulty target");
    return SubmitResult::kInvalid;
  }
  if (!check_proof_of_work(block.header, params_.pow_limit)) {
    reject("high-hash: proof of work failed");
    return SubmitResult::kInvalid;
  }

  BlockIndexEntry entry;
  entry.block = block;
  entry.height = parent_it->second.height + 1;
  entry.chain_work = parent_it->second.chain_work + header_work(block.header.bits);
  index_[hash] = entry;

  if (entry.chain_work <= tip_work()) return SubmitResult::kSideChain;

  if (!reorg_to(hash, reject_reason)) return SubmitResult::kInvalid;
  return SubmitResult::kActiveTip;
}

std::uint32_t Chain::height() const noexcept {
  return static_cast<std::uint32_t>(active_.size() - 1);
}

BlockHash Chain::tip_hash() const { return active_.back(); }

const BlockHeader& Chain::tip_header() const { return index_.at(active_.back()).block.header; }

crypto::U256 Chain::tip_work() const { return index_.at(active_.back()).chain_work; }

std::optional<BlockHash> Chain::hash_at_height(std::uint32_t h) const {
  if (h >= active_.size()) return std::nullopt;
  return active_[h];
}

std::optional<Block> Chain::block_at_height(std::uint32_t h) const {
  if (h >= active_.size()) return std::nullopt;
  return index_.at(active_[h]).block;
}

std::optional<Block> Chain::get_block(const BlockHash& hash) const {
  auto it = index_.find(hash);
  if (it == index_.end()) return std::nullopt;
  return it->second.block;
}

std::optional<std::uint32_t> Chain::block_height(const BlockHash& hash) const {
  auto it = index_.find(hash);
  if (it == index_.end()) return std::nullopt;
  return it->second.height;
}

bool Chain::is_on_active_chain(const BlockHash& hash) const {
  auto it = index_.find(hash);
  if (it == index_.end()) return false;
  return it->second.height < active_.size() && active_[it->second.height] == hash;
}

std::vector<BlockHeader> Chain::header_range(std::uint32_t from_height,
                                             std::uint32_t count) const {
  std::vector<BlockHeader> out;
  for (std::uint32_t h = from_height; h < from_height + count && h < active_.size(); ++h) {
    out.push_back(index_.at(active_[h]).block.header);
  }
  return out;
}

std::uint32_t Chain::confirmations(const Txid& txid) const {
  auto loc = tx_location(txid);
  if (!loc) return 0;
  return height() - loc->second + 1;
}

std::optional<std::pair<BlockHash, std::uint32_t>> Chain::tx_location(const Txid& txid) const {
  auto it = tx_index_.find(txid);
  if (it == tx_index_.end()) return std::nullopt;
  const auto& entry = index_.at(it->second);
  return std::make_pair(it->second, entry.height);
}

std::vector<Transaction> Chain::take_disconnected_txs() {
  return std::exchange(disconnected_txs_, {});
}

std::uint32_t Chain::next_work_required(const BlockHash& parent_hash) const {
  if (params_.retarget_interval == 0) return params_.genesis_bits;

  auto parent_it = index_.find(parent_hash);
  if (parent_it == index_.end()) return params_.genesis_bits;
  const BlockIndexEntry& parent = parent_it->second;
  const std::uint32_t next_height = parent.height + 1;

  if (next_height % params_.retarget_interval != 0) return parent.block.header.bits;

  // Walk back to the first block of the closing period (works on side
  // chains too — the walk follows prev_hash, not the active chain).
  const BlockIndexEntry* first = &parent;
  for (std::uint32_t i = 0; i + 1 < params_.retarget_interval; ++i) {
    auto it = index_.find(first->block.header.prev_hash);
    if (it == index_.end()) break;  // hit genesis
    first = &it->second;
  }

  const std::uint32_t target_timespan =
      params_.retarget_interval * params_.block_interval_s;
  std::uint32_t actual = parent.block.header.time > first->block.header.time
                             ? parent.block.header.time - first->block.header.time
                             : 1;
  // Bitcoin's 4x clamp either way.
  if (actual < target_timespan / params_.retarget_clamp) {
    actual = target_timespan / params_.retarget_clamp;
  }
  if (actual > target_timespan * params_.retarget_clamp) {
    actual = target_timespan * params_.retarget_clamp;
  }

  const auto old_target = bits_to_target(parent.block.header.bits);
  if (!old_target) return params_.genesis_bits;
  crypto::U256 new_target =
      (*old_target * crypto::U256(actual)) / crypto::U256(target_timespan);
  if (new_target > params_.pow_limit || new_target.is_zero()) new_target = params_.pow_limit;
  return target_to_bits(new_target);
}

Status Chain::connect_block(const BlockIndexEntry& entry) {
  const Block& block = entry.block;
  BlockUndo undo;
  Amount fees = 0;

  // Stage changes in a scratch list so a mid-block failure can roll back.
  // (Simpler: apply directly, undo on failure via the undo record.)
  std::vector<std::pair<OutPoint, Coin>> created;

  auto rollback = [&] {
    for (const auto& [op, coin] : created) utxo_.remove(op);
    for (const auto& [op, coin] : undo.spent) utxo_.add(op, coin);
  };

  for (std::size_t t = 1; t < block.txs.size(); ++t) {
    const Transaction& tx = block.txs[t];
    auto fee = check_tx_inputs(tx, utxo_, entry.height, params_.coinbase_maturity);
    if (!fee) {
      rollback();
      return fee.error();
    }
    fees += fee.value();
    for (const auto& in : tx.inputs) {
      auto coin = utxo_.spend(in.prevout);
      undo.spent.emplace_back(in.prevout, *coin);
    }
    const Txid id = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
      const OutPoint op{id, i};
      utxo_.add(op, Coin{tx.outputs[i], entry.height, false});
      created.emplace_back(op, Coin{});
    }
  }

  // Coinbase value rule.
  const Transaction& cb = block.txs[0];
  if (cb.total_output() > params_.subsidy + fees) {
    rollback();
    return make_error("bad-cb-amount", "coinbase pays more than subsidy + fees");
  }
  const Txid cbid = cb.txid();
  for (std::uint32_t i = 0; i < cb.outputs.size(); ++i) {
    utxo_.add({cbid, i}, Coin{cb.outputs[i], entry.height, true});
  }

  // Commit: record undo data and the tx locations.
  const BlockHash hash = block.hash();
  active_.push_back(hash);
  undo_.push_back(std::move(undo));
  for (const auto& tx : block.txs) tx_index_[tx.txid()] = hash;
  return Status::success();
}

void Chain::disconnect_tip() {
  const BlockHash hash = active_.back();
  const BlockIndexEntry& entry = index_.at(hash);
  const Block& block = entry.block;

  // Remove created outputs.
  for (const auto& tx : block.txs) {
    const Txid id = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) utxo_.remove({id, i});
    tx_index_.erase(id);
    if (!tx.is_coinbase()) disconnected_txs_.push_back(tx);
  }
  // Restore spent coins.
  for (const auto& [op, coin] : undo_.back().spent) utxo_.add(op, coin);

  active_.pop_back();
  undo_.pop_back();
}

bool Chain::reorg_to(const BlockHash& new_tip_hash, std::string* reject_reason) {
  // Collect the new branch back to a block on the active chain.
  std::vector<BlockHash> branch;  // new blocks, tip-first
  BlockHash cursor = new_tip_hash;
  while (!is_on_active_chain(cursor)) {
    branch.push_back(cursor);
    cursor = index_.at(cursor).block.header.prev_hash;
  }
  const std::uint32_t fork_height = index_.at(cursor).height;
  const std::uint32_t disconnect_depth = height() - fork_height;

  // Disconnect down to the fork point.
  while (height() > fork_height) disconnect_tip();

  // Connect the new branch, oldest first.
  std::reverse(branch.begin(), branch.end());
  for (std::size_t i = 0; i < branch.size(); ++i) {
    BlockIndexEntry& entry = index_.at(branch[i]);
    const Status s = connect_block(entry);
    if (!s.ok()) {
      // Mark the failing block (and its stored descendants) invalid and
      // restore the previous active chain by re-connecting it.
      entry.invalid = true;
      if (reject_reason != nullptr) *reject_reason = s.error().to_string();
      // Roll back what we just connected from the new branch.
      while (height() > fork_height) disconnect_tip();
      // Note: the old branch's blocks are still in index_; re-connect the
      // heaviest remaining valid chain descending from the fork point.
      // Find best candidate among stored blocks.
      const BlockHash* best = nullptr;
      crypto::U256 best_work = index_.at(active_.back()).chain_work;
      for (const auto& [h, e] : index_) {
        if (e.invalid || e.chain_work <= best_work) continue;
        // Walk ancestry: candidate must not pass through an invalid block
        // and must attach to the current chain state.
        bool usable = true;
        BlockHash walk = h;
        while (!is_on_active_chain(walk)) {
          const auto& we = index_.at(walk);
          if (we.invalid) {
            usable = false;
            break;
          }
          walk = we.block.header.prev_hash;
        }
        if (usable) {
          best = &h;
          best_work = e.chain_work;
        }
      }
      if (best != nullptr) {
        std::string ignored;
        (void)reorg_to(*best, &ignored);
      }
      return false;
    }
  }
  if (disconnect_depth > max_reorg_depth_) max_reorg_depth_ = disconnect_depth;
  return true;
}

}  // namespace btcfast::btc
