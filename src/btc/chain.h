// Chain management: block storage, heaviest-work active-chain selection,
// full reorg handling with UTXO undo, and confirmation queries. This is
// the consensus view a Bitcoin full node exposes; both honest nodes and
// the double-spend attacker in btcsim drive one of these.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "btc/block.h"
#include "btc/params.h"
#include "btc/utxo.h"
#include "common/result.h"

namespace btcfast::btc {

/// Metadata tracked per stored block.
struct BlockIndexEntry {
  Block block;
  std::uint32_t height = 0;
  crypto::U256 chain_work;  ///< cumulative work from genesis
  bool invalid = false;     ///< failed full validation during a connect attempt
};

/// Undo information to disconnect a block: the coins its inputs consumed.
struct BlockUndo {
  std::vector<std::pair<OutPoint, Coin>> spent;
};

/// Outcome of submitting a block.
enum class SubmitResult {
  kActiveTip,    ///< extended or became the active chain (possibly via reorg)
  kSideChain,    ///< stored, but not enough work to activate
  kDuplicate,
  kOrphan,       ///< parent unknown; caller may resubmit later
  kInvalid,
};

class Chain {
 public:
  explicit Chain(ChainParams params);

  /// Validate and store a block; activates the heaviest valid chain.
  SubmitResult submit_block(const Block& block, std::string* reject_reason = nullptr);

  // --- active-chain queries ---
  [[nodiscard]] std::uint32_t height() const noexcept;  ///< tip height (genesis = 0)
  [[nodiscard]] BlockHash tip_hash() const;
  [[nodiscard]] const BlockHeader& tip_header() const;
  [[nodiscard]] crypto::U256 tip_work() const;
  [[nodiscard]] std::optional<BlockHash> hash_at_height(std::uint32_t h) const;
  [[nodiscard]] std::optional<Block> block_at_height(std::uint32_t h) const;
  [[nodiscard]] std::optional<Block> get_block(const BlockHash& hash) const;
  [[nodiscard]] std::optional<std::uint32_t> block_height(const BlockHash& hash) const;
  [[nodiscard]] bool is_on_active_chain(const BlockHash& hash) const;

  /// Headers [from_height, from_height+count) of the active chain.
  [[nodiscard]] std::vector<BlockHeader> header_range(std::uint32_t from_height,
                                                      std::uint32_t count) const;

  /// Consensus difficulty for the block extending `parent_hash` (Bitcoin's
  /// GetNextWorkRequired): static when retargeting is disabled, otherwise
  /// adjusted every retarget_interval blocks by the period's actual
  /// timespan, clamped to params.retarget_clamp either way.
  [[nodiscard]] std::uint32_t next_work_required(const BlockHash& parent_hash) const;

  /// Confirmations of a transaction on the active chain (0 = unconfirmed).
  [[nodiscard]] std::uint32_t confirmations(const Txid& txid) const;
  /// Block (hash, height) containing the tx on the active chain.
  [[nodiscard]] std::optional<std::pair<BlockHash, std::uint32_t>> tx_location(
      const Txid& txid) const;

  [[nodiscard]] const UtxoSet& utxo() const noexcept { return utxo_; }
  [[nodiscard]] const ChainParams& params() const noexcept { return params_; }

  /// Total number of stored blocks (all forks).
  [[nodiscard]] std::size_t stored_blocks() const noexcept { return index_.size(); }

  /// Deepest reorg this view has survived, in blocks disconnected. The
  /// testkit made-whole invariant is only asserted while this stays
  /// within the protocol's k-confirmation security bound.
  [[nodiscard]] std::uint32_t max_reorg_depth() const noexcept { return max_reorg_depth_; }

  /// Transactions evicted from the active chain by the latest reorg; the
  /// owner (node) feeds them back through its mempool. Cleared on read.
  [[nodiscard]] std::vector<Transaction> take_disconnected_txs();

 private:
  /// Full contextual validation + UTXO application of `block` on top of
  /// the current view. On success, appends undo data and tx locations.
  Status connect_block(const BlockIndexEntry& entry);
  void disconnect_tip();
  /// Reorganize the active chain to end at `new_tip_hash`.
  bool reorg_to(const BlockHash& new_tip_hash, std::string* reject_reason);

  ChainParams params_;
  std::unordered_map<BlockHash, BlockIndexEntry, Hash256Hasher> index_;
  std::vector<BlockHash> active_;  ///< height -> hash
  UtxoSet utxo_;
  std::vector<BlockUndo> undo_;    ///< parallel to active_
  std::unordered_map<Txid, BlockHash, Hash256Hasher> tx_index_;  ///< active chain only
  std::vector<Transaction> disconnected_txs_;
  std::uint32_t max_reorg_depth_ = 0;
};

}  // namespace btcfast::btc
