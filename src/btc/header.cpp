#include "btc/header.h"

#include <cstring>

namespace btcfast::btc {

namespace {

inline void put_u32le(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint32_t get_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

Bytes BlockHeader::serialize() const {
  Bytes out(80);
  serialize_into(out.data());
  return out;
}

void BlockHeader::serialize_into(std::uint8_t out[80]) const noexcept {
  put_u32le(out, static_cast<std::uint32_t>(version));
  std::memcpy(out + 4, prev_hash.bytes.data(), 32);
  std::memcpy(out + 36, merkle_root.bytes.data(), 32);
  put_u32le(out + 68, time);
  put_u32le(out + 72, bits);
  put_u32le(out + 76, nonce);
}

std::optional<BlockHeader> BlockHeader::deserialize(ByteSpan data) {
  if (data.size() != 80) return std::nullopt;
  // Hot path (evidence chains decode tens of thousands of headers in a
  // dispute storm): the length check above covers every field, so read
  // with straight-line loads instead of per-field Reader bookkeeping.
  BlockHeader h;
  const std::uint8_t* p = data.data();
  h.version = static_cast<std::int32_t>(get_u32le(p));
  std::memcpy(h.prev_hash.bytes.data(), p + 4, 32);
  std::memcpy(h.merkle_root.bytes.data(), p + 36, 32);
  h.time = get_u32le(p + 68);
  h.bits = get_u32le(p + 72);
  h.nonce = get_u32le(p + 76);
  return h;
}

BlockHash BlockHeader::hash() const noexcept {
  std::uint8_t ser[80];
  serialize_into(ser);
  return BlockHash::from_digest(crypto::sha256d_80(ser));
}

namespace {
std::optional<crypto::U256> bits_to_target_uncached(std::uint32_t bits) noexcept;
}  // namespace

std::optional<crypto::U256> bits_to_target(std::uint32_t bits) noexcept {
  // Same single-entry memo rationale as header_work below: pure function
  // of `bits`, and evidence chains present long runs of one difficulty.
  struct Memo {
    std::uint32_t bits = 0;
    bool valid = false;
    std::optional<crypto::U256> target;
  };
  thread_local Memo memo;
  if (memo.valid && memo.bits == bits) return memo.target;
  memo.bits = bits;
  memo.valid = true;
  memo.target = bits_to_target_uncached(bits);
  return memo.target;
}

namespace {
std::optional<crypto::U256> bits_to_target_uncached(std::uint32_t bits) noexcept {
  const std::uint32_t exponent = bits >> 24;
  std::uint32_t mantissa = bits & 0x007fffff;
  if (bits & 0x00800000) return std::nullopt;  // negative
  if (mantissa == 0) return std::nullopt;
  crypto::U256 target;
  if (exponent <= 3) {
    mantissa >>= 8 * (3 - exponent);
    target = crypto::U256(mantissa);
  } else {
    if (exponent > 32) return std::nullopt;  // overflow
    target = crypto::U256(mantissa) << (8 * (exponent - 3));
    // Overflow check: shifting back must recover the mantissa.
    if ((target >> (8 * (exponent - 3))) != crypto::U256(mantissa)) return std::nullopt;
  }
  if (target.is_zero()) return std::nullopt;
  return target;
}
}  // namespace

std::uint32_t target_to_bits(const crypto::U256& target) noexcept {
  if (target.is_zero()) return 0;
  int size = (target.top_bit() / 8) + 1;
  std::uint32_t mantissa;
  if (size <= 3) {
    mantissa = static_cast<std::uint32_t>(target.low64() << (8 * (3 - size)));
  } else {
    mantissa = static_cast<std::uint32_t>((target >> (8 * (size - 3))).low64());
  }
  // Normalize: mantissa's top bit set would read as negative; shift.
  if (mantissa & 0x00800000) {
    mantissa >>= 8;
    ++size;
  }
  return (static_cast<std::uint32_t>(size) << 24) | (mantissa & 0x007fffff);
}

bool check_proof_of_work(const BlockHeader& header, const crypto::U256& pow_limit) noexcept {
  const auto target = bits_to_target(header.bits);
  if (!target || *target > pow_limit) return false;
  const BlockHash h = header.hash();
  const crypto::U256 hash_value =
      crypto::U256::from_le_bytes({h.bytes.data(), h.bytes.size()});
  return hash_value <= *target;
}

crypto::U256 header_work(std::uint32_t bits) noexcept {
  // Pure function of `bits`, and real workloads present long runs of the
  // same difficulty (retarget every 2016 blocks), so a single-entry memo
  // skips the 256-bit long division on the hot path. thread_local keeps
  // it race-free without locking.
  struct Memo {
    std::uint32_t bits = 0;
    bool valid = false;
    crypto::U256 work;
  };
  thread_local Memo memo;
  if (memo.valid && memo.bits == bits) return memo.work;

  const auto target = bits_to_target(bits);
  crypto::U256 work = crypto::U256::zero();
  if (target) {
    // work = 2^256 / (target + 1) == (~target / (target + 1)) + 1 in 256-bit
    // arithmetic (Bitcoin Core's identity avoiding 512-bit math).
    const crypto::U256 neg = crypto::U256::zero() - *target - crypto::U256(1);  // ~target
    work = neg / (*target + crypto::U256(1)) + crypto::U256(1);
  }
  memo.bits = bits;
  memo.valid = true;
  memo.work = work;
  return work;
}

}  // namespace btcfast::btc
