// Bitcoin block headers: the 80-byte structure, compact-bits target
// encoding, PoW validity and per-header work. Headers are the evidence
// objects the PayJudger contract adjudicates on, so everything here has a
// contract-side mirror in src/btcfast/payjudger.*.
#pragma once

#include <cstdint>
#include <optional>

#include "btc/types.h"
#include "common/serialize.h"
#include "crypto/uint256.h"

namespace btcfast::btc {

/// The 80-byte Bitcoin block header.
struct BlockHeader {
  std::int32_t version = 1;
  BlockHash prev_hash{};
  Hash256 merkle_root{};
  std::uint32_t time = 0;   ///< unix-style seconds (simulated)
  std::uint32_t bits = 0;   ///< compact difficulty target
  std::uint32_t nonce = 0;

  [[nodiscard]] bool operator==(const BlockHeader& o) const noexcept = default;

  /// Canonical 80-byte serialization.
  [[nodiscard]] Bytes serialize() const;
  /// Allocation-free serialization into a caller-provided 80-byte buffer
  /// (the PoW and evidence hot paths hash straight off the stack).
  void serialize_into(std::uint8_t out[80]) const noexcept;
  [[nodiscard]] static std::optional<BlockHeader> deserialize(ByteSpan data);

  /// sha256d of the serialization (sha256d_80 kernel, no heap traffic).
  [[nodiscard]] BlockHash hash() const noexcept;
};

/// Decode a compact-bits value into a 256-bit target. Returns nullopt for
/// negative or overflowing encodings (consensus: such targets are invalid).
[[nodiscard]] std::optional<crypto::U256> bits_to_target(std::uint32_t bits) noexcept;

/// Encode a target into compact bits (canonical form).
[[nodiscard]] std::uint32_t target_to_bits(const crypto::U256& target) noexcept;

/// True iff hash(header) <= target(bits) and the target is valid and does
/// not exceed `pow_limit`.
[[nodiscard]] bool check_proof_of_work(const BlockHeader& header,
                                       const crypto::U256& pow_limit) noexcept;

/// Work contributed by a header: 2^256 / (target + 1). Invalid bits -> 0.
[[nodiscard]] crypto::U256 header_work(std::uint32_t bits) noexcept;

}  // namespace btcfast::btc
