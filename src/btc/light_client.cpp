#include "btc/light_client.h"

#include <algorithm>

namespace btcfast::btc {

SpvClient::SpvClient(ChainParams params) : params_(std::move(params)) {
  const BlockHeader genesis = genesis_header(params_);
  HeaderEntry entry;
  entry.header = genesis;
  entry.height = 0;
  entry.chain_work = header_work(genesis.bits);
  const BlockHash gh = genesis.hash();
  index_[gh] = entry;
  active_.push_back(gh);
}

Status SpvClient::add_header(const BlockHeader& header) {
  const BlockHash hash = header.hash();
  if (index_.contains(hash)) return Status::success();  // idempotent

  auto parent_it = index_.find(header.prev_hash);
  if (parent_it == index_.end()) {
    return make_error("spv-orphan-header", "unknown parent " + header.prev_hash.to_string());
  }
  if (!check_proof_of_work(header, params_.pow_limit)) {
    return make_error("spv-bad-pow");
  }
  // Note: a header-only client cannot fully validate retarget transitions
  // without the whole period; with static difficulty we check exact bits.
  if (params_.retarget_interval == 0 && header.bits != params_.genesis_bits) {
    return make_error("spv-bad-bits");
  }

  HeaderEntry entry;
  entry.header = header;
  entry.height = parent_it->second.height + 1;
  entry.chain_work = parent_it->second.chain_work + header_work(header.bits);
  index_[hash] = entry;

  if (entry.chain_work > tip_work()) activate_best(hash);
  return Status::success();
}

Status SpvClient::add_headers(const std::vector<BlockHeader>& headers) {
  for (const auto& h : headers) {
    if (const Status s = add_header(h); !s.ok()) return s;
  }
  return Status::success();
}

void SpvClient::activate_best(const BlockHash& candidate_tip) {
  // Rebuild the active vector along the candidate's ancestry.
  std::vector<BlockHash> branch;
  BlockHash cursor = candidate_tip;
  while (!is_on_active_chain(cursor)) {
    branch.push_back(cursor);
    cursor = index_.at(cursor).header.prev_hash;
  }
  const std::uint32_t fork_height = index_.at(cursor).height;
  active_.resize(fork_height + 1);
  std::reverse(branch.begin(), branch.end());
  for (const auto& h : branch) active_.push_back(h);
}

std::uint32_t SpvClient::height() const noexcept {
  return static_cast<std::uint32_t>(active_.size() - 1);
}

BlockHash SpvClient::tip_hash() const { return active_.back(); }

crypto::U256 SpvClient::tip_work() const { return index_.at(active_.back()).chain_work; }

std::optional<std::uint32_t> SpvClient::header_height(const BlockHash& hash) const {
  auto it = index_.find(hash);
  if (it == index_.end()) return std::nullopt;
  return it->second.height;
}

bool SpvClient::is_on_active_chain(const BlockHash& hash) const {
  auto it = index_.find(hash);
  if (it == index_.end()) return false;
  return it->second.height < active_.size() && active_[it->second.height] == hash;
}

Status SpvClient::submit_proof(const TxInclusionProof& proof) {
  auto watch_it = watched_.find(proof.txid);
  if (watch_it == watched_.end()) return make_error("spv-not-watching");

  const BlockHash block_hash = proof.header.hash();
  if (!index_.contains(block_hash)) {
    return make_error("spv-unknown-header", "sync headers before proving");
  }
  if (!verify_inclusion_proof(proof)) return make_error("spv-bad-proof");

  watch_it->second = block_hash;
  return Status::success();
}

std::uint32_t SpvClient::confirmations(const Txid& txid) const {
  auto it = watched_.find(txid);
  if (it == watched_.end() || it->second.is_zero()) return 0;
  if (!is_on_active_chain(it->second)) return 0;  // proof's block reorged away
  return height() - index_.at(it->second).height + 1;
}

}  // namespace btcfast::btc
