// SPV light client: a header-only view of Bitcoin for devices that can't
// run a full node (the merchant's point-of-sale terminal). Maintains the
// heaviest valid header chain, watches txids, and accepts Merkle
// inclusion proofs — exactly the trust model PayJudger itself uses.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "btc/params.h"
#include "btc/spv.h"
#include "common/result.h"

namespace btcfast::btc {

class SpvClient {
 public:
  explicit SpvClient(ChainParams params);

  /// Validate and store one header (PoW, linkage, known parent). The
  /// heaviest chain becomes active; reorgs re-evaluate watched proofs.
  Status add_header(const BlockHeader& header);
  /// Convenience batch form; stops at the first failure.
  Status add_headers(const std::vector<BlockHeader>& headers);

  // --- chain queries ---
  [[nodiscard]] std::uint32_t height() const noexcept;
  [[nodiscard]] BlockHash tip_hash() const;
  [[nodiscard]] crypto::U256 tip_work() const;
  [[nodiscard]] bool has_header(const BlockHash& hash) const { return index_.contains(hash); }
  [[nodiscard]] std::optional<std::uint32_t> header_height(const BlockHash& hash) const;
  [[nodiscard]] bool is_on_active_chain(const BlockHash& hash) const;

  // --- tx watching via SPV proofs ---
  void watch(const Txid& txid) { watched_.try_emplace(txid); }
  [[nodiscard]] bool is_watching(const Txid& txid) const { return watched_.contains(txid); }

  /// Accept an inclusion proof for a watched txid. The proving header
  /// must already be known (it need not be active yet — a proof on a side
  /// chain counts once that chain wins).
  Status submit_proof(const TxInclusionProof& proof);

  /// Confirmations of a watched txid on the *active* chain (0 if its
  /// proof's block is unknown, inactive, or no proof was submitted).
  [[nodiscard]] std::uint32_t confirmations(const Txid& txid) const;

 private:
  struct HeaderEntry {
    BlockHeader header;
    std::uint32_t height = 0;
    crypto::U256 chain_work;
  };

  void activate_best(const BlockHash& candidate_tip);

  ChainParams params_;
  std::unordered_map<BlockHash, HeaderEntry, Hash256Hasher> index_;
  std::vector<BlockHash> active_;  ///< height -> hash
  /// watched txid -> block hash of an accepted proof (zero hash = none).
  std::unordered_map<Txid, BlockHash, Hash256Hasher> watched_;
};

}  // namespace btcfast::btc
