#include "btc/mempool.h"

namespace btcfast::btc {

Result<Amount> check_tx_inputs(const Transaction& tx, const UtxoSet& view,
                               std::uint32_t spend_height, std::uint32_t coinbase_maturity) {
  Amount value_in = 0;
  for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
    const auto coin = view.get(tx.inputs[i].prevout);
    if (!coin) {
      return make_error("bad-txns-inputs-missingorspent", tx.inputs[i].prevout.to_string());
    }
    if (coin->coinbase && spend_height < coin->height + coinbase_maturity) {
      return make_error("bad-txns-premature-spend-of-coinbase");
    }
    if (!verify_input(tx, i, coin->out.script_pubkey)) {
      return make_error("mandatory-script-verify-flag-failed",
                        "input " + std::to_string(i) + " signature invalid");
    }
    value_in += coin->out.value;
    if (!money_range(value_in)) return make_error("bad-txns-inputvalues-outofrange");
  }
  const Amount value_out = tx.total_output();
  if (value_in < value_out) return make_error("bad-txns-in-belowout");
  return value_in - value_out;
}

Status Mempool::accept(const Transaction& tx, const UtxoSet& utxo, std::uint32_t chain_height,
                       std::uint32_t coinbase_maturity) {
  if (tx.is_coinbase()) return make_error("coinbase", "coinbase may not enter the mempool");
  if (tx.inputs.empty() || tx.outputs.empty()) return make_error("bad-txns-empty");
  const Txid id = tx.txid();
  if (txs_.contains(id)) return make_error("txn-already-in-mempool");

  // Conflict check against the pool (the double-spend signal).
  for (const auto& in : tx.inputs) {
    if (auto spender = spender_of(in.prevout)) {
      return make_error("txn-mempool-conflict",
                        in.prevout.to_string() + " already spent by " + spender->to_string());
    }
  }

  auto fee = check_tx_inputs(tx, utxo, chain_height + 1, coinbase_maturity);
  if (!fee) return fee.error();

  for (const auto& out : tx.outputs) {
    if (!money_range(out.value)) return make_error("bad-txout-value");
  }

  txs_[id] = tx;
  for (const auto& in : tx.inputs) spends_[in.prevout] = id;
  return Status::success();
}

std::optional<Transaction> Mempool::get(const Txid& txid) const {
  auto it = txs_.find(txid);
  if (it == txs_.end()) return std::nullopt;
  return it->second;
}

std::optional<Txid> Mempool::spender_of(const OutPoint& op) const {
  auto it = spends_.find(op);
  if (it == spends_.end()) return std::nullopt;
  return it->second;
}

void Mempool::remove_for_block(const Block& block) {
  auto erase_tx = [this](const Txid& id) {
    auto it = txs_.find(id);
    if (it == txs_.end()) return;
    for (const auto& in : it->second.inputs) spends_.erase(in.prevout);
    txs_.erase(it);
  };

  for (const auto& tx : block.txs) {
    erase_tx(tx.txid());
    // Also evict pool txs that conflict with a confirmed spend.
    for (const auto& in : tx.inputs) {
      if (auto conflicting = spender_of(in.prevout)) erase_tx(*conflicting);
    }
  }
}

std::vector<Transaction> Mempool::drain() {
  std::vector<Transaction> out;
  out.reserve(txs_.size());
  for (auto& [id, tx] : txs_) out.push_back(std::move(tx));
  txs_.clear();
  spends_.clear();
  return out;
}

std::vector<Transaction> Mempool::snapshot() const {
  std::vector<Transaction> out;
  out.reserve(txs_.size());
  for (const auto& [id, tx] : txs_) out.push_back(tx);
  return out;
}

}  // namespace btcfast::btc
