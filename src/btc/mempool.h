// The memory pool of unconfirmed transactions, with the double-spend
// conflict detection that underpins the whole fast-payment problem: a
// merchant seeing tx A in its mempool can be defeated by a conflicting
// tx B confirming instead.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "btc/block.h"
#include "btc/transaction.h"
#include "btc/types.h"
#include "btc/utxo.h"
#include "common/result.h"

namespace btcfast::btc {

class Mempool {
 public:
  /// Validate and accept a transaction against the confirmed UTXO set.
  /// Rules: inputs exist and are unspent (both on-chain and in-pool),
  /// scripts verify, no value inflation, coinbase maturity respected.
  /// First-seen wins: a conflicting spend is rejected ("txn-mempool-conflict").
  Status accept(const Transaction& tx, const UtxoSet& utxo, std::uint32_t chain_height,
                std::uint32_t coinbase_maturity);

  [[nodiscard]] bool contains(const Txid& txid) const { return txs_.contains(txid); }
  [[nodiscard]] std::optional<Transaction> get(const Txid& txid) const;

  /// The txid currently spending an outpoint in the pool, if any. This is
  /// how a monitoring merchant *detects* an attempted double spend.
  [[nodiscard]] std::optional<Txid> spender_of(const OutPoint& op) const;

  /// Remove every pool tx confirmed by (or conflicting with) the block.
  void remove_for_block(const Block& block);

  /// Remove and return everything (reorg support; caller revalidates).
  [[nodiscard]] std::vector<Transaction> drain();

  [[nodiscard]] std::size_t size() const noexcept { return txs_.size(); }
  [[nodiscard]] std::vector<Transaction> snapshot() const;

 private:
  std::unordered_map<Txid, Transaction, Hash256Hasher> txs_;
  std::unordered_map<OutPoint, Txid, OutPointHasher> spends_;
};

/// Shared input-level validation used by both mempool and block connect:
/// checks existence, maturity, scripts and value conservation of `tx`
/// against `view`. Returns the fee on success.
[[nodiscard]] Result<Amount> check_tx_inputs(const Transaction& tx, const UtxoSet& view,
                                             std::uint32_t spend_height,
                                             std::uint32_t coinbase_maturity);

}  // namespace btcfast::btc
