#include "btc/params.h"

#include "crypto/merkle.h"

namespace btcfast::btc {

ChainParams ChainParams::regtest() {
  ChainParams p;
  // Target = 2^240: one block per ~2^16 hashes.
  p.pow_limit = crypto::U256::one() << 240;
  p.genesis_bits = target_to_bits(p.pow_limit);
  return p;
}

ChainParams ChainParams::regtest_hard() {
  ChainParams p;
  // Target = 2^236: ~2^20 hashes per block; still fast, more variance.
  p.pow_limit = crypto::U256::one() << 236;
  p.genesis_bits = target_to_bits(p.pow_limit);
  return p;
}

ChainParams ChainParams::regtest_retarget(std::uint32_t interval) {
  ChainParams p = regtest();
  // Start two octaves below the limit so retargets can move both ways.
  const crypto::U256 start = p.pow_limit >> 2;
  p.genesis_bits = target_to_bits(start);
  p.retarget_interval = interval;
  return p;
}

Transaction genesis_coinbase() {
  Transaction tx;
  TxIn in;
  in.prevout.index = 0xffffffff;  // null prevout
  tx.inputs.push_back(in);
  TxOut out;
  out.value = 50 * kCoin;
  // Burn output: all-zero pubkey hash (nobody holds its preimage).
  tx.outputs.push_back(out);
  return tx;
}

BlockHeader genesis_header(const ChainParams& params) {
  BlockHeader h;
  h.version = 1;
  h.time = 0;
  h.bits = params.genesis_bits;
  h.merkle_root.bytes = crypto::merkle_root({genesis_coinbase().txid().bytes});
  // The genesis header's PoW is not checked (Bitcoin hard-codes it too);
  // nonce stays zero.
  return h;
}

}  // namespace btcfast::btc
