// Chain parameters for the simulated Bitcoin network. The simulator runs
// at a drastically reduced difficulty (so blocks can be mined by grinding
// a few thousand nonces) while keeping the identical validation rules;
// analysis code converts results to mainnet difficulty where economics
// matter (see src/analysis/attack_cost.*).
#pragma once

#include <cstdint>

#include "btc/header.h"
#include "btc/transaction.h"
#include "crypto/uint256.h"

namespace btcfast::btc {

struct ChainParams {
  /// Easiest permitted target. Default: 2^240-ish so a block takes ~2^16
  /// hash attempts — instant to mine on a laptop, still real PoW.
  crypto::U256 pow_limit;
  /// Compact bits every simulated block uses (static difficulty).
  std::uint32_t genesis_bits = 0;
  /// Target seconds between blocks (mainnet: 600).
  std::uint32_t block_interval_s = 600;
  /// Coinbase subsidy.
  Amount subsidy = 50 * kCoin;
  /// Coinbase outputs spendable after this many confirmations.
  std::uint32_t coinbase_maturity = 10;
  /// Difficulty retarget period in blocks (mainnet: 2016). 0 disables
  /// retargeting (static difficulty — the simulator default).
  std::uint32_t retarget_interval = 0;
  /// Per-retarget adjustment clamp (mainnet: 4x either way).
  std::uint32_t retarget_clamp = 4;

  /// Simulation-friendly defaults (easy PoW, mainnet timing).
  [[nodiscard]] static ChainParams regtest();
  /// Harder variant used by mining-focused tests.
  [[nodiscard]] static ChainParams regtest_hard();
  /// Regtest with difficulty retargeting every `interval` blocks.
  [[nodiscard]] static ChainParams regtest_retarget(std::uint32_t interval);
};

/// Deterministic genesis block for a parameter set.
[[nodiscard]] Transaction genesis_coinbase();
[[nodiscard]] BlockHeader genesis_header(const ChainParams& params);

}  // namespace btcfast::btc
