#include "btc/pow.h"

namespace btcfast::btc {

bool mine_header(BlockHeader& header, const crypto::U256& pow_limit,
                 std::uint32_t start_nonce, std::uint64_t max_attempts) {
  const auto target = bits_to_target(header.bits);
  if (!target || *target > pow_limit) return false;

  std::uint64_t attempts = 0;
  std::uint32_t nonce = start_nonce;
  for (;;) {
    header.nonce = nonce;
    const BlockHash h = header.hash();
    const crypto::U256 value = crypto::U256::from_le_bytes({h.bytes.data(), h.bytes.size()});
    if (value <= *target) return true;
    ++nonce;
    if (++attempts >= max_attempts) return false;
    if (nonce == start_nonce) {
      // Nonce space exhausted; roll the timestamp like real miners do.
      ++header.time;
    }
  }
}

bool mine_block(Block& block, const ChainParams& params) {
  block.seal_merkle_root();
  return mine_header(block.header, params.pow_limit);
}

}  // namespace btcfast::btc
