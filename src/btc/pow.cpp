#include "btc/pow.h"

#include "crypto/sha256.h"

namespace btcfast::btc {

bool mine_header(BlockHeader& header, const crypto::U256& pow_limit,
                 std::uint32_t start_nonce, std::uint64_t max_attempts) {
  const auto target = bits_to_target(header.bits);
  if (!target || *target > pow_limit) return false;

  // Serialize once; the nonce (tail bytes 12..15) and, on nonce-space
  // exhaustion, the timestamp (tail bytes 4..7) both live in the final 16
  // header bytes, so the midstate over bytes 0..63 survives the whole
  // grind. Each attempt is two compressions + the digest re-hash instead
  // of a serialization plus a generic streaming sha256d.
  std::uint8_t ser[80];
  header.serialize_into(ser);
  const auto midstate = crypto::Sha256Midstate::of_first_block(ser);
  std::uint8_t* tail = ser + 64;

  const auto put_u32le = [](std::uint8_t* p, std::uint32_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
  };

  std::uint64_t attempts = 0;
  std::uint32_t nonce = start_nonce;
  for (;;) {
    put_u32le(tail + 12, nonce);
    const crypto::Sha256Digest digest = midstate.sha256d_tail16(tail);
    const crypto::U256 value = crypto::U256::from_le_bytes({digest.data(), digest.size()});
    if (value <= *target) {
      header.nonce = nonce;
      return true;
    }
    ++nonce;
    if (++attempts >= max_attempts) {
      header.nonce = nonce - 1;
      return false;
    }
    if (nonce == start_nonce) {
      // Nonce space exhausted; roll the timestamp like real miners do.
      ++header.time;
      put_u32le(tail + 4, header.time);
    }
  }
}

bool mine_block(Block& block, const ChainParams& params) {
  block.seal_merkle_root();
  return mine_header(block.header, params.pow_limit);
}

}  // namespace btcfast::btc
