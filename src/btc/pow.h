// Proof-of-work mining: grind the nonce until the header hash meets the
// target. At regtest difficulty this takes ~2^16 attempts.
#pragma once

#include <optional>

#include "btc/block.h"
#include "btc/params.h"

namespace btcfast::btc {

/// Grind `header.nonce` until the PoW check passes. Returns false if the
/// 32-bit nonce space is exhausted (bump `time` and retry in that case).
[[nodiscard]] bool mine_header(BlockHeader& header, const crypto::U256& pow_limit,
                               std::uint32_t start_nonce = 0,
                               std::uint64_t max_attempts = 1ULL << 34);

/// Convenience: seal the merkle root and mine the whole block.
[[nodiscard]] bool mine_block(Block& block, const ChainParams& params);

}  // namespace btcfast::btc
