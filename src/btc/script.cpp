#include "btc/script.h"

#include "crypto/base58.h"
#include "crypto/sigcache.h"

namespace btcfast::btc {

bool verify_script(const ScriptSig& sig, const ScriptPubKey& lock,
                   const crypto::Sha256Digest& sighash) noexcept {
  // 1. Pubkey must hash to the locked destination.
  const auto h = crypto::hash160({sig.pubkey.data(), sig.pubkey.size()});
  if (!equal_bytes({h.data(), h.size()}, {lock.dest.bytes.data(), lock.dest.bytes.size()})) {
    return false;
  }
  // 2. Signature must verify under that pubkey. Routed through the global
  // signature cache: a repeat check of an identical (sighash, key, sig)
  // triple skips even the pubkey decompression.
  return crypto::ecdsa_verify_cached(&crypto::SigCache::global(),
                                     {sig.pubkey.data(), sig.pubkey.size()}, sighash,
                                     {sig.signature.data(), sig.signature.size()});
}

std::string encode_address(const PubKeyHash& h) {
  return crypto::base58check_encode(0x00, {h.bytes.data(), h.bytes.size()});
}

std::optional<PubKeyHash> decode_address(const std::string& addr) {
  auto dec = crypto::base58check_decode(addr);
  if (!dec || dec->version != 0x00 || dec->payload.size() != 20) return std::nullopt;
  PubKeyHash h;
  h.bytes = to_array<20>(dec->payload);
  return h;
}

}  // namespace btcfast::btc
