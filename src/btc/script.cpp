#include "btc/script.h"

#include "crypto/base58.h"

namespace btcfast::btc {

bool verify_script(const ScriptSig& sig, const ScriptPubKey& lock,
                   const crypto::Sha256Digest& sighash) noexcept {
  // 1. Pubkey must hash to the locked destination.
  const auto h = crypto::hash160({sig.pubkey.data(), sig.pubkey.size()});
  if (!equal_bytes({h.data(), h.size()}, {lock.dest.bytes.data(), lock.dest.bytes.size()})) {
    return false;
  }
  // 2. Signature must verify under that pubkey.
  const auto pub = crypto::PublicKey::parse({sig.pubkey.data(), sig.pubkey.size()});
  if (!pub) return false;
  const auto parsed = crypto::Signature::parse({sig.signature.data(), sig.signature.size()});
  if (!parsed) return false;
  return crypto::ecdsa_verify(*pub, sighash, *parsed);
}

std::string encode_address(const PubKeyHash& h) {
  return crypto::base58check_encode(0x00, {h.bytes.data(), h.bytes.size()});
}

std::optional<PubKeyHash> decode_address(const std::string& addr) {
  auto dec = crypto::base58check_decode(addr);
  if (!dec || dec->version != 0x00 || dec->payload.size() != 20) return std::nullopt;
  PubKeyHash h;
  h.bytes = to_array<20>(dec->payload);
  return h;
}

}  // namespace btcfast::btc
