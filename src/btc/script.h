// Simplified Bitcoin script: only the P2PKH pattern is modelled, which is
// all the BTCFast protocol requires. A scriptPubKey is "pay to the owner
// of this pubkey hash"; a scriptSig is (signature, compressed pubkey).
#pragma once

#include <optional>

#include "common/bytes.h"
#include "crypto/ecdsa.h"
#include "crypto/ripemd160.h"

namespace btcfast::btc {

/// 20-byte HASH160 of a compressed public key.
struct PubKeyHash {
  ByteArray<20> bytes{};

  [[nodiscard]] static PubKeyHash of(const crypto::PublicKey& key) noexcept {
    const auto ser = key.serialize();
    PubKeyHash h;
    h.bytes = crypto::hash160({ser.data(), ser.size()});
    return h;
  }

  [[nodiscard]] auto operator<=>(const PubKeyHash& o) const noexcept = default;
};

/// The locking script: pay-to-pubkey-hash.
struct ScriptPubKey {
  PubKeyHash dest{};

  [[nodiscard]] auto operator<=>(const ScriptPubKey& o) const noexcept = default;
};

/// The unlocking script: a compact signature plus the compressed pubkey.
struct ScriptSig {
  ByteArray<64> signature{};
  ByteArray<33> pubkey{};

  [[nodiscard]] bool operator==(const ScriptSig& o) const noexcept = default;
};

/// Checks that `sig.pubkey` hashes to `lock.dest` and that the signature
/// verifies over `sighash`.
[[nodiscard]] bool verify_script(const ScriptSig& sig, const ScriptPubKey& lock,
                                 const crypto::Sha256Digest& sighash) noexcept;

/// Base58Check P2PKH address helpers (mainnet version byte 0x00).
[[nodiscard]] std::string encode_address(const PubKeyHash& h);
[[nodiscard]] std::optional<PubKeyHash> decode_address(const std::string& addr);

}  // namespace btcfast::btc
