#include "btc/spv.h"

#include "common/serialize.h"

namespace btcfast::btc {

Bytes TxInclusionProof::serialize() const {
  Writer w;
  w.bytes({txid.bytes.data(), txid.bytes.size()});
  w.bytes(header.serialize());
  w.u32le(branch.index);
  w.varint(branch.siblings.size());
  for (const auto& sib : branch.siblings) w.bytes({sib.data(), sib.size()});
  return std::move(w).take();
}

std::optional<TxInclusionProof> TxInclusionProof::deserialize(ByteSpan data) {
  Reader r(data);
  TxInclusionProof proof;
  auto txid = r.bytes(32);
  auto header_bytes = r.bytes(80);
  auto index = r.u32le();
  auto count = r.varint();
  if (!txid || !header_bytes || !index || !count || *count > 64) return std::nullopt;
  proof.txid.bytes = to_array<32>(*txid);
  auto header = BlockHeader::deserialize(*header_bytes);
  if (!header) return std::nullopt;
  proof.header = *header;
  proof.branch.index = *index;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto sib = r.bytes(32);
    if (!sib) return std::nullopt;
    proof.branch.siblings.push_back(to_array<32>(*sib));
  }
  if (!r.at_end()) return std::nullopt;
  return proof;
}

std::optional<TxInclusionProof> make_inclusion_proof(const Block& block, const Txid& txid) {
  const auto leaves = block.txid_leaves();
  for (std::uint32_t i = 0; i < leaves.size(); ++i) {
    if (leaves[i] == txid.bytes) {
      TxInclusionProof proof;
      proof.txid = txid;
      proof.header = block.header;
      proof.branch = crypto::merkle_branch(leaves, i);
      return proof;
    }
  }
  return std::nullopt;
}

bool verify_inclusion_proof(const TxInclusionProof& proof) noexcept {
  return crypto::merkle_verify(proof.txid.bytes, proof.branch, proof.header.merkle_root.bytes);
}

Result<HeaderChainSummary> verify_header_chain(const BlockHash& anchor,
                                               const std::vector<BlockHeader>& headers,
                                               const crypto::U256& pow_limit) {
  if (headers.empty()) return make_error("evidence-empty", "no headers supplied");

  HeaderChainSummary summary;
  BlockHash expected_prev = anchor;
  for (std::size_t i = 0; i < headers.size(); ++i) {
    const BlockHeader& h = headers[i];
    if (h.prev_hash != expected_prev) {
      return make_error("evidence-broken-link", "header " + std::to_string(i) +
                                                    " does not extend its predecessor");
    }
    if (!check_proof_of_work(h, pow_limit)) {
      return make_error("evidence-bad-pow", "header " + std::to_string(i) + " fails PoW");
    }
    summary.total_work += header_work(h.bits);
    expected_prev = h.hash();
  }
  summary.tip_hash = expected_prev;
  summary.length = static_cast<std::uint32_t>(headers.size());
  return summary;
}

Bytes serialize_headers(const std::vector<BlockHeader>& headers) {
  Writer w;
  w.varint(headers.size());
  for (const auto& h : headers) w.bytes(h.serialize());
  return std::move(w).take();
}

std::optional<std::vector<BlockHeader>> deserialize_headers(ByteSpan data) {
  Reader r(data);
  auto count = r.varint();
  if (!count || *count > 100000) return std::nullopt;
  std::vector<BlockHeader> out;
  out.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto bytes = r.bytes(80);
    if (!bytes) return std::nullopt;
    auto h = BlockHeader::deserialize(*bytes);
    if (!h) return std::nullopt;
    out.push_back(*h);
  }
  if (!r.at_end()) return std::nullopt;
  return out;
}

}  // namespace btcfast::btc
