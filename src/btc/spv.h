// SPV artifacts: Merkle inclusion proofs tying a txid to a block header,
// and header-chain evidence validation (linkage + per-header PoW + total
// work). The PayJudger contract runs exactly this logic on-chain; keeping
// it here lets the contract, merchants and tests share one implementation.
#pragma once

#include <optional>
#include <vector>

#include "btc/block.h"
#include "btc/header.h"
#include "common/result.h"
#include "crypto/merkle.h"

namespace btcfast::btc {

/// Proof that a transaction is included in the block with a given header.
struct TxInclusionProof {
  Txid txid{};
  BlockHeader header{};
  crypto::MerkleBranch branch{};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<TxInclusionProof> deserialize(ByteSpan data);
};

/// Build an inclusion proof for `txid` from a full block; nullopt if the
/// tx is not in the block.
[[nodiscard]] std::optional<TxInclusionProof> make_inclusion_proof(const Block& block,
                                                                   const Txid& txid);

/// Verify branch -> header.merkle_root. Does NOT check the header's PoW;
/// combine with verify_header_chain.
[[nodiscard]] bool verify_inclusion_proof(const TxInclusionProof& proof) noexcept;

/// Result of validating a contiguous header chain.
struct HeaderChainSummary {
  crypto::U256 total_work;
  BlockHash tip_hash{};
  std::uint32_t length = 0;
};

/// Validates that headers[0].prev_hash == anchor, every header links to
/// its predecessor, and each header satisfies its own PoW at or below
/// `pow_limit`. Returns the cumulative work on success.
[[nodiscard]] Result<HeaderChainSummary> verify_header_chain(
    const BlockHash& anchor, const std::vector<BlockHeader>& headers,
    const crypto::U256& pow_limit);

/// Serialization for shipping header chains as dispute evidence.
[[nodiscard]] Bytes serialize_headers(const std::vector<BlockHeader>& headers);
[[nodiscard]] std::optional<std::vector<BlockHeader>> deserialize_headers(ByteSpan data);

}  // namespace btcfast::btc
