#include "btc/transaction.h"

#include <array>
#include <cstdint>
#include <mutex>

namespace btcfast::btc {
namespace {

void write_outpoint(Writer& w, const OutPoint& op) {
  w.bytes({op.txid.bytes.data(), op.txid.bytes.size()});
  w.u32le(op.index);
}

std::optional<OutPoint> read_outpoint(Reader& r) {
  auto txid = r.bytes(32);
  auto index = r.u32le();
  if (!txid || !index) return std::nullopt;
  OutPoint op;
  op.txid.bytes = to_array<32>(*txid);
  op.index = *index;
  return op;
}

void write_tx(Writer& w, const Transaction& tx, bool with_scripts,
              std::size_t signed_input = SIZE_MAX, const ScriptPubKey* spent_script = nullptr) {
  w.u32le(tx.version);
  w.varint(tx.inputs.size());
  for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
    const TxIn& in = tx.inputs[i];
    write_outpoint(w, in.prevout);
    if (with_scripts) {
      // scriptSig: 64-byte signature + 33-byte pubkey, length-prefixed.
      Writer script;
      script.bytes({in.script_sig.signature.data(), in.script_sig.signature.size()});
      script.bytes({in.script_sig.pubkey.data(), in.script_sig.pubkey.size()});
      w.bytes_with_len(script.data());
    } else if (i == signed_input && spent_script != nullptr) {
      // Sighash form: the spent scriptPubKey stands in at the signed input.
      Writer script;
      script.bytes({spent_script->dest.bytes.data(), spent_script->dest.bytes.size()});
      w.bytes_with_len(script.data());
    } else {
      w.varint(0);
    }
    w.u32le(in.sequence);
  }
  w.varint(tx.outputs.size());
  for (const TxOut& out : tx.outputs) {
    w.i64le(out.value);
    w.bytes_with_len({out.script_pubkey.dest.bytes.data(), out.script_pubkey.dest.bytes.size()});
  }
  w.u32le(tx.lock_time);
}

}  // namespace

Bytes Transaction::serialize() const {
  Writer w;
  // Upper bound: version + counts + (outpoint + script + sequence) per
  // input + (value + script) per output + lock_time.
  w.reserve(4 + 9 + inputs.size() * (36 + 1 + 97 + 4) + 9 + outputs.size() * (8 + 1 + 20) + 4);
  write_tx(w, *this, /*with_scripts=*/true);
  return std::move(w).take();
}

std::optional<Transaction> Transaction::deserialize(ByteSpan data) {
  Reader r(data);
  Transaction tx;
  auto version = r.u32le();
  auto nin = r.varint();
  if (!version || !nin || *nin > 100000) return std::nullopt;
  tx.version = *version;
  tx.inputs.reserve(static_cast<std::size_t>(*nin));
  for (std::uint64_t i = 0; i < *nin; ++i) {
    TxIn in;
    auto op = read_outpoint(r);
    auto script = r.bytes_with_len();
    auto seq = r.u32le();
    if (!op || !script || !seq) return std::nullopt;
    in.prevout = *op;
    if (script->size() == 97) {
      in.script_sig.signature = to_array<64>({script->data(), 64});
      in.script_sig.pubkey = to_array<33>({script->data() + 64, 33});
    } else if (!script->empty()) {
      return std::nullopt;  // only empty or (sig, pubkey) scripts exist here
    }
    in.sequence = *seq;
    tx.inputs.push_back(in);
  }
  auto nout = r.varint();
  if (!nout || *nout > 100000) return std::nullopt;
  tx.outputs.reserve(static_cast<std::size_t>(*nout));
  for (std::uint64_t i = 0; i < *nout; ++i) {
    TxOut out;
    auto value = r.i64le();
    auto script = r.bytes_with_len();
    if (!value || !script || script->size() != 20) return std::nullopt;
    out.value = *value;
    out.script_pubkey.dest.bytes = to_array<20>(*script);
    tx.outputs.push_back(out);
  }
  auto lock = r.u32le();
  if (!lock || !r.at_end()) return std::nullopt;
  tx.lock_time = *lock;
  return tx;
}

namespace {

/// Two independent FNV-1a passes over the serialization (different offset
/// bases, lengths mixed in) — a 128-bit validity check for the txid memo.
/// Not cryptographic, but an accidental collision is ~2^-64 per
/// revalidation and a stale hit requires colliding *both* streams at
/// equal length against the cached serialization of the same object.
std::array<std::uint64_t, 2> serialization_fingerprint(ByteSpan ser) noexcept {
  std::uint64_t a = 0xcbf29ce484222325ULL;           // FNV-1a offset basis
  std::uint64_t b = 0x6c62272e07bb0142ULL;           // FNV-0 of a different seed
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  for (const std::uint8_t byte : ser) {
    a = (a ^ byte) * kPrime;
    b = (b ^ (byte + 0x9eULL)) * kPrime;
  }
  return {a ^ ser.size(), b + ser.size()};
}

/// Striped locks for the txid memo: keyed by object address, so
/// concurrent txid() calls on the same const Transaction serialize while
/// distinct transactions (the common batch case) almost never collide.
std::mutex& memo_mutex_for(const void* p) noexcept {
  static std::mutex stripes[64];
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  return stripes[(addr >> 6) & 63];  // drop cache-line-aligned low bits
}

}  // namespace

Txid Transaction::txid() const {
  const Bytes ser = serialize();
  const auto fp = serialization_fingerprint(ser);
  std::lock_guard<std::mutex> lock(memo_mutex_for(this));
  if (txid_memo_.valid && txid_memo_.fp[0] == fp[0] && txid_memo_.fp[1] == fp[1]) {
    return txid_memo_.id;
  }
  txid_memo_.id = Txid::from_digest(crypto::sha256d(ser));
  txid_memo_.fp[0] = fp[0];
  txid_memo_.fp[1] = fp[1];
  txid_memo_.valid = true;
  return txid_memo_.id;
}

crypto::Sha256Digest Transaction::signature_hash(std::size_t input_index,
                                                 const ScriptPubKey& spent_script) const {
  Writer w;
  write_tx(w, *this, /*with_scripts=*/false, input_index, &spent_script);
  w.u32le(1);  // SIGHASH_ALL
  return crypto::sha256d(w.data());
}

void sign_input(Transaction& tx, std::size_t input_index, const crypto::PrivateKey& key,
                const ScriptPubKey& spent_script) {
  const auto digest = tx.signature_hash(input_index, spent_script);
  const auto sig = crypto::ecdsa_sign(key, digest);
  tx.inputs[input_index].script_sig.signature = sig.serialize();
  tx.inputs[input_index].script_sig.pubkey = crypto::PublicKey::derive(key).serialize();
}

bool verify_input(const Transaction& tx, std::size_t input_index,
                  const ScriptPubKey& spent_script) {
  if (input_index >= tx.inputs.size()) return false;
  const auto digest = tx.signature_hash(input_index, spent_script);
  return verify_script(tx.inputs[input_index].script_sig, spent_script, digest);
}

}  // namespace btcfast::btc
