// Bitcoin transactions: inputs referencing prior outputs, outputs locking
// value to pubkey hashes, canonical serialization, txid computation and
// SIGHASH_ALL-style signature hashing.
#pragma once

#include <cstdint>
#include <vector>

#include "btc/script.h"
#include "btc/types.h"
#include "common/serialize.h"

namespace btcfast::btc {

struct TxIn {
  OutPoint prevout{};
  ScriptSig script_sig{};
  std::uint32_t sequence = 0xffffffff;

  [[nodiscard]] bool operator==(const TxIn& o) const noexcept = default;
};

struct TxOut {
  Amount value = 0;
  ScriptPubKey script_pubkey{};

  [[nodiscard]] bool operator==(const TxOut& o) const noexcept = default;
};

/// A transaction. A coinbase has exactly one input whose prevout is null.
///
/// txid() is memoized: the sha256d is computed once and revalidated
/// against a cheap 128-bit fingerprint of the serialization, so mutating
/// any field (directly or via sign_input) transparently invalidates the
/// cached id — no manual invalidation calls, and stale ids are
/// impossible short of a deliberate 128-bit fingerprint collision.
/// Concurrent txid() calls on the same const object are safe (a striped
/// lock guards the memo; the logical fields are never written).
struct Transaction {
  std::uint32_t version = 1;
  std::vector<TxIn> inputs;
  std::vector<TxOut> outputs;
  std::uint32_t lock_time = 0;

  [[nodiscard]] bool operator==(const Transaction& o) const noexcept {
    // Logical fields only — the txid memo is derived state.
    return version == o.version && inputs == o.inputs && outputs == o.outputs &&
           lock_time == o.lock_time;
  }

  [[nodiscard]] bool is_coinbase() const noexcept {
    return inputs.size() == 1 && inputs[0].prevout.txid.is_zero() &&
           inputs[0].prevout.index == 0xffffffff;
  }

  [[nodiscard]] Amount total_output() const noexcept {
    Amount sum = 0;
    for (const auto& out : outputs) sum += out.value;
    return sum;
  }

  /// Canonical wire serialization (little-endian, CompactSize counts).
  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Transaction> deserialize(ByteSpan data);

  /// txid = sha256d(serialization). Memoized; see the struct comment.
  [[nodiscard]] Txid txid() const;

  /// SIGHASH_ALL-style digest for signing input `input_index`: the tx with
  /// every scriptSig blanked and the spent scriptPubKey substituted at the
  /// signed input, double-hashed.
  [[nodiscard]] crypto::Sha256Digest signature_hash(std::size_t input_index,
                                                    const ScriptPubKey& spent_script) const;

 private:
  /// txid memo, revalidated by fingerprint. Copies carry the memo along
  /// (still fingerprint-checked, so a stale copy can never serve a wrong
  /// id); the default copy/move of the plain members is exactly right.
  struct TxidMemo {
    std::uint64_t fp[2] = {0, 0};
    Txid id{};
    bool valid = false;
  };
  mutable TxidMemo txid_memo_{};
};

/// Signs input `input_index` of `tx` with `key`; fills in its scriptSig.
void sign_input(Transaction& tx, std::size_t input_index, const crypto::PrivateKey& key,
                const ScriptPubKey& spent_script);

/// Verifies the signature on input `input_index` against the spent output.
[[nodiscard]] bool verify_input(const Transaction& tx, std::size_t input_index,
                                const ScriptPubKey& spent_script);

}  // namespace btcfast::btc
