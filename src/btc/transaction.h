// Bitcoin transactions: inputs referencing prior outputs, outputs locking
// value to pubkey hashes, canonical serialization, txid computation and
// SIGHASH_ALL-style signature hashing.
#pragma once

#include <cstdint>
#include <vector>

#include "btc/script.h"
#include "btc/types.h"
#include "common/serialize.h"

namespace btcfast::btc {

struct TxIn {
  OutPoint prevout{};
  ScriptSig script_sig{};
  std::uint32_t sequence = 0xffffffff;

  [[nodiscard]] bool operator==(const TxIn& o) const noexcept = default;
};

struct TxOut {
  Amount value = 0;
  ScriptPubKey script_pubkey{};

  [[nodiscard]] bool operator==(const TxOut& o) const noexcept = default;
};

/// A transaction. A coinbase has exactly one input whose prevout is null.
struct Transaction {
  std::uint32_t version = 1;
  std::vector<TxIn> inputs;
  std::vector<TxOut> outputs;
  std::uint32_t lock_time = 0;

  [[nodiscard]] bool operator==(const Transaction& o) const noexcept = default;

  [[nodiscard]] bool is_coinbase() const noexcept {
    return inputs.size() == 1 && inputs[0].prevout.txid.is_zero() &&
           inputs[0].prevout.index == 0xffffffff;
  }

  [[nodiscard]] Amount total_output() const noexcept {
    Amount sum = 0;
    for (const auto& out : outputs) sum += out.value;
    return sum;
  }

  /// Canonical wire serialization (little-endian, CompactSize counts).
  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Transaction> deserialize(ByteSpan data);

  /// txid = sha256d(serialization).
  [[nodiscard]] Txid txid() const;

  /// SIGHASH_ALL-style digest for signing input `input_index`: the tx with
  /// every scriptSig blanked and the spent scriptPubKey substituted at the
  /// signed input, double-hashed.
  [[nodiscard]] crypto::Sha256Digest signature_hash(std::size_t input_index,
                                                    const ScriptPubKey& spent_script) const;
};

/// Signs input `input_index` of `tx` with `key`; fills in its scriptSig.
void sign_input(Transaction& tx, std::size_t input_index, const crypto::PrivateKey& key,
                const ScriptPubKey& spent_script);

/// Verifies the signature on input `input_index` against the spent output.
[[nodiscard]] bool verify_input(const Transaction& tx, std::size_t input_index,
                                const ScriptPubKey& spent_script);

}  // namespace btcfast::btc
