// Core Bitcoin value types: txids, block hashes, amounts, outpoints.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "common/hex.h"
#include "crypto/sha256.h"

namespace btcfast::btc {

/// Satoshis. 1 BTC = 100'000'000 sat. Signed to surface accounting bugs.
using Amount = std::int64_t;

constexpr Amount kCoin = 100'000'000;
/// Bitcoin's 21M cap; used by validation sanity checks.
constexpr Amount kMaxMoney = 21'000'000 * kCoin;

[[nodiscard]] constexpr bool money_range(Amount a) noexcept { return a >= 0 && a <= kMaxMoney; }

/// 32-byte identifier (internal byte order, i.e. sha256d output as-is).
struct Hash256 {
  ByteArray<32> bytes{};

  [[nodiscard]] static Hash256 from_digest(const crypto::Sha256Digest& d) noexcept {
    Hash256 h;
    h.bytes = d;
    return h;
  }

  [[nodiscard]] bool is_zero() const noexcept {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }

  /// Bitcoin display convention (reversed hex).
  [[nodiscard]] std::string to_string() const { return to_hex_reversed({bytes.data(), bytes.size()}); }

  [[nodiscard]] auto operator<=>(const Hash256& o) const noexcept = default;
};

using Txid = Hash256;
using BlockHash = Hash256;

/// Reference to a transaction output.
struct OutPoint {
  Txid txid{};
  std::uint32_t index = 0;

  [[nodiscard]] auto operator<=>(const OutPoint& o) const noexcept = default;
  [[nodiscard]] std::string to_string() const {
    return txid.to_string().substr(0, 16) + ":" + std::to_string(index);
  }
};

struct Hash256Hasher {
  [[nodiscard]] std::size_t operator()(const Hash256& h) const noexcept {
    std::size_t v = 0;
    // The bytes are a hash already; fold the first words.
    for (int i = 0; i < 8; ++i) v = (v << 8) | h.bytes[static_cast<std::size_t>(i)];
    return v;
  }
};

struct OutPointHasher {
  [[nodiscard]] std::size_t operator()(const OutPoint& o) const noexcept {
    return Hash256Hasher{}(o.txid) * 1000003u + o.index;
  }
};

}  // namespace btcfast::btc
