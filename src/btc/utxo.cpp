// UtxoSet is header-only; this TU anchors the library target.
#include "btc/utxo.h"
