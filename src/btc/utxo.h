// The unspent-transaction-output set: the state a Bitcoin full node
// validates spends against.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "btc/transaction.h"
#include "btc/types.h"

namespace btcfast::btc {

/// One unspent output plus the metadata validation needs.
struct Coin {
  TxOut out{};
  std::uint32_t height = 0;  ///< height of the creating block
  bool coinbase = false;

  [[nodiscard]] bool operator==(const Coin& o) const noexcept = default;
};

/// In-memory UTXO set.
class UtxoSet {
 public:
  [[nodiscard]] std::optional<Coin> get(const OutPoint& op) const {
    auto it = map_.find(op);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool contains(const OutPoint& op) const { return map_.contains(op); }

  void add(const OutPoint& op, Coin coin) { map_[op] = std::move(coin); }

  /// Removes and returns the coin (nullopt if absent).
  std::optional<Coin> spend(const OutPoint& op) {
    auto it = map_.find(op);
    if (it == map_.end()) return std::nullopt;
    Coin c = std::move(it->second);
    map_.erase(it);
    return c;
  }

  void remove(const OutPoint& op) { map_.erase(op); }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

  /// Total value in the set (test/diagnostic helper; O(n)).
  [[nodiscard]] Amount total_value() const noexcept {
    Amount sum = 0;
    for (const auto& [op, coin] : map_) sum += coin.out.value;
    return sum;
  }

  /// Iteration support for wallets scanning their coins.
  [[nodiscard]] auto begin() const { return map_.begin(); }
  [[nodiscard]] auto end() const { return map_.end(); }

 private:
  std::unordered_map<OutPoint, Coin, OutPointHasher> map_;
};

}  // namespace btcfast::btc
