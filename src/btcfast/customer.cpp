#include "btcfast/customer.h"

namespace btcfast::core {

CustomerWallet::CustomerWallet(sim::Party btc_identity, psc::Address psc_address,
                               EscrowId escrow_id)
    : btc_(std::move(btc_identity)), psc_address_(psc_address), escrow_id_(escrow_id) {}

psc::PscTx CustomerWallet::make_deposit_tx(const psc::Address& judger, psc::Value collateral,
                                           std::uint64_t unlock_delay_ms) const {
  psc::PscTx tx;
  tx.from = psc_address_;
  tx.to = judger;
  tx.value = collateral;
  tx.method = "deposit";
  tx.args = encode_deposit_args(escrow_id_, unlock_delay_ms, btc_.pub.serialize());
  return tx;
}

psc::PscTx CustomerWallet::make_withdraw_tx(const psc::Address& judger) const {
  psc::PscTx tx;
  tx.from = psc_address_;
  tx.to = judger;
  tx.method = "withdraw";
  tx.args = encode_escrow_id_arg(escrow_id_);
  return tx;
}

psc::PscTx CustomerWallet::make_topup_tx(const psc::Address& judger, psc::Value amount) const {
  psc::PscTx tx;
  tx.from = psc_address_;
  tx.to = judger;
  tx.value = amount;
  tx.method = "topUp";
  tx.args = encode_escrow_id_arg(escrow_id_);
  return tx;
}

FastPayPackage CustomerWallet::create_fastpay(const Invoice& invoice, const btc::OutPoint& coin,
                                              btc::Amount coin_value, std::uint64_t now_ms,
                                              std::uint64_t binding_ttl_ms) {
  FastPayPackage pkg;
  pkg.payment_tx = sim::build_payment(btc_, coin, coin_value,
                                      invoice.pay_to, invoice.amount_sat);

  PaymentBinding binding;
  binding.escrow_id = escrow_id_;
  binding.btc_txid = pkg.payment_tx.txid();
  binding.compensation = invoice.compensation;
  binding.merchant = invoice.merchant_psc;
  binding.expiry_ms = now_ms + binding_ttl_ms;
  binding.nonce = next_nonce_++;

  pkg.binding.binding = binding;
  const auto sig = crypto::ecdsa_sign(btc_.key, binding.signing_digest());
  pkg.binding.customer_sig = sig.serialize();
  return pkg;
}

std::optional<psc::PscTx> CustomerWallet::make_defense_tx(const btc::Chain& btc_view,
                                                          const EscrowView& escrow,
                                                          const psc::Address& judger,
                                                          std::uint32_t required_depth) const {
  if (escrow.state != EscrowState::kDisputed) return std::nullopt;
  auto evidence = build_inclusion_evidence(btc_view, escrow.dispute_anchor,
                                           escrow.disputed_txid, required_depth);
  if (!evidence) return std::nullopt;

  psc::PscTx tx;
  tx.from = psc_address_;
  tx.to = judger;
  tx.method = "submitCustomerEvidence";
  tx.args = encode_customer_evidence_args(escrow_id_, evidence->headers, evidence->proof,
                                          evidence->header_index);
  tx.gas_limit = 8'000'000;  // evidence verification is the costly path
  return tx;
}

}  // namespace btcfast::core
