// The customer side of BTCFast: escrow funding, fast-pay package
// construction (the sub-second path) and honest dispute defense.
#pragma once

#include <optional>

#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcfast/protocol.h"
#include "btcsim/scenario.h"
#include "psc/chain.h"

namespace btcfast::core {

class CustomerWallet {
 public:
  CustomerWallet(sim::Party btc_identity, psc::Address psc_address, EscrowId escrow_id);

  // --- escrow management (PSC chain) ---
  [[nodiscard]] psc::PscTx make_deposit_tx(const psc::Address& judger, psc::Value collateral,
                                           std::uint64_t unlock_delay_ms) const;
  [[nodiscard]] psc::PscTx make_withdraw_tx(const psc::Address& judger) const;
  [[nodiscard]] psc::PscTx make_topup_tx(const psc::Address& judger, psc::Value amount) const;

  // --- the fast path ---
  /// Builds the payment transaction + signed binding for an invoice,
  /// spending `coin`. `now_ms` stamps the binding; expiry covers the
  /// merchant's dispute timeout plus the evidence window plus margin.
  [[nodiscard]] FastPayPackage create_fastpay(const Invoice& invoice, const btc::OutPoint& coin,
                                              btc::Amount coin_value, std::uint64_t now_ms,
                                              std::uint64_t binding_ttl_ms);

  // --- dispute defense ---
  /// If the escrow is disputed and the payment actually confirmed deep
  /// enough after the dispute anchor, build the inclusion-proof evidence tx.
  [[nodiscard]] std::optional<psc::PscTx> make_defense_tx(const btc::Chain& btc_view,
                                                          const EscrowView& escrow,
                                                          const psc::Address& judger,
                                                          std::uint32_t required_depth) const;

  [[nodiscard]] const sim::Party& btc_identity() const noexcept { return btc_; }
  [[nodiscard]] const psc::Address& psc_address() const noexcept { return psc_address_; }
  [[nodiscard]] EscrowId escrow_id() const noexcept { return escrow_id_; }
  [[nodiscard]] std::uint64_t bindings_issued() const noexcept { return next_nonce_; }

 private:
  sim::Party btc_;
  psc::Address psc_address_;
  EscrowId escrow_id_;
  std::uint64_t next_nonce_ = 0;
};

}  // namespace btcfast::core
