// Hook interfaces the watchtower uses to plug into the dispute subsystem
// (src/dispute) without a core -> dispute dependency: core declares the
// seams, dispute implements them (StormEngine is an EvidencePrehasher,
// HeaderSyncManager is a CheckpointSource), and the deployment wires the
// two together.
#pragma once

#include <vector>

#include "btc/header.h"
#include "psc/chain.h"

namespace btcfast::core {

/// Sweeps the header chains carried by a batch of evidence transactions
/// into a shared index in one deduped parallel pass, so the contract's
/// phase-1 hashing hits a warm cache when the txs execute. Purely an
/// accelerator: execution results are identical with or without it.
class EvidencePrehasher {
 public:
  virtual ~EvidencePrehasher() = default;
  /// Returns the number of headers swept.
  virtual std::size_t prehash(const std::vector<psc::PscTx>& txs) = 0;
};

/// Supplies checkpoint advancement chains from a reorg-aware header view:
/// best-chain headers extending `current_checkpoint`, safe against
/// shallow reorgs, ready for PayJudger::updateCheckpoint. Empty result
/// means nothing (safely) advanceable.
class CheckpointSource {
 public:
  virtual ~CheckpointSource() = default;
  virtual std::vector<btc::BlockHeader> checkpoint_advance(
      const btc::BlockHash& current_checkpoint) const = 0;
};

}  // namespace btcfast::core
