#include "btcfast/evidence.h"

namespace btcfast::core {

std::optional<std::vector<btc::BlockHeader>> headers_since(const btc::Chain& chain,
                                                           const btc::BlockHash& anchor) {
  if (!chain.is_on_active_chain(anchor)) return std::nullopt;
  const auto anchor_height = chain.block_height(anchor);
  if (!anchor_height) return std::nullopt;
  const std::uint32_t from = *anchor_height + 1;
  if (from > chain.height()) return std::vector<btc::BlockHeader>{};
  return chain.header_range(from, chain.height() - from + 1);
}

std::optional<InclusionEvidence> build_inclusion_evidence(const btc::Chain& chain,
                                                          const btc::BlockHash& anchor,
                                                          const btc::Txid& txid,
                                                          std::uint32_t required_depth) {
  const auto anchor_height = chain.block_height(anchor);
  if (!anchor_height || !chain.is_on_active_chain(anchor)) return std::nullopt;

  const auto loc = chain.tx_location(txid);
  if (!loc) return std::nullopt;
  const auto [block_hash, tx_height] = *loc;
  if (tx_height <= *anchor_height) return std::nullopt;  // confirmed before the anchor

  if (chain.confirmations(txid) < required_depth) return std::nullopt;

  const auto block = chain.get_block(block_hash);
  if (!block) return std::nullopt;
  auto proof = btc::make_inclusion_proof(*block, txid);
  if (!proof) return std::nullopt;

  InclusionEvidence ev;
  const std::uint32_t from = *anchor_height + 1;
  ev.headers = chain.header_range(from, chain.height() - from + 1);
  ev.proof = *proof;
  ev.header_index = tx_height - from;
  return ev;
}

}  // namespace btcfast::core
