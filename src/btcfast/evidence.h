// Evidence construction from a Bitcoin chain view: the header chains and
// SPV proofs parties submit to PayJudger during a dispute.
#pragma once

#include <optional>
#include <vector>

#include "btc/chain.h"
#include "btc/spv.h"

namespace btcfast::core {

/// Active-chain headers strictly after `anchor` up to the tip. Returns
/// nullopt if the anchor is not on the active chain.
[[nodiscard]] std::optional<std::vector<btc::BlockHeader>> headers_since(
    const btc::Chain& chain, const btc::BlockHash& anchor);

/// The customer's winning evidence: headers from the anchor through a
/// block containing `txid` with at least `required_depth` headers from
/// that block (inclusive) to the submitted tip.
struct InclusionEvidence {
  std::vector<btc::BlockHeader> headers;
  btc::TxInclusionProof proof;
  std::uint32_t header_index = 0;  ///< position of the proving header
};

[[nodiscard]] std::optional<InclusionEvidence> build_inclusion_evidence(
    const btc::Chain& chain, const btc::BlockHash& anchor, const btc::Txid& txid,
    std::uint32_t required_depth);

}  // namespace btcfast::core
