#include "btcfast/marketplace.h"

#include <chrono>

#include "btcfast/payjudger.h"

namespace btcfast::core {
namespace {

struct CustomerActor {
  sim::Party party;
  psc::Address psc_addr{};
  std::unique_ptr<CustomerWallet> wallet;
  std::vector<std::pair<btc::OutPoint, btc::Coin>> coins;
  std::size_t next_coin = 0;
  bool dishonest = false;
};

struct MerchantActor {
  sim::Party party;
  std::unique_ptr<MerchantService> service;
};

}  // namespace

MarketplaceResult run_marketplace(const MarketplaceConfig& config) {
  const btc::ChainParams params = btc::ChainParams::regtest();
  sim::Simulator simulator;
  sim::Network net(simulator, params, {}, config.seed * 17 + 3);
  Rng rng(config.seed * 7919 + 1);

  // --- nodes: miners + one user node + one node per merchant ---
  std::vector<sim::NodeId> miner_nodes;
  for (std::uint32_t i = 0; i < config.honest_miners; ++i) miner_nodes.push_back(net.add_node());
  const sim::NodeId user_node = net.add_node();
  std::vector<sim::NodeId> merchant_nodes;
  for (std::uint32_t i = 0; i < config.merchants; ++i) merchant_nodes.push_back(net.add_node());

  // --- parties & funding ---
  std::vector<CustomerActor> customers;
  customers.reserve(config.customers);
  std::vector<btc::ScriptPubKey> payout_scripts;
  const std::uint32_t expected_payments = static_cast<std::uint32_t>(
      config.payments_per_hour_per_customer * (config.duration / (60.0 * 60 * 1000))) + 4;
  for (std::uint32_t i = 0; i < config.customers; ++i) {
    CustomerActor c{sim::Party::make(config.seed * 131 + i), {}, nullptr, {}, 0, false};
    c.psc_addr = psc::Address::from_label("mkt/customer/" + std::to_string(i));
    c.dishonest = i < config.dishonest_customers;
    payout_scripts.push_back(c.party.script);
    customers.push_back(std::move(c));
  }
  const auto funding = sim::build_funding_chain(params, payout_scripts, expected_payments);
  for (std::size_t i = 0; i < net.size(); ++i) {
    sim::seed_node(net.node(static_cast<sim::NodeId>(i)), funding);
  }
  simulator.run_all();

  // --- PSC chain + judger ---
  psc::PscChain::Config psc_cfg;
  psc_cfg.block_interval_ms = config.psc_block_interval_ms;
  psc::PscChain psc(psc_cfg);
  PayJudgerConfig jcfg;
  jcfg.pow_limit = params.pow_limit;
  jcfg.initial_checkpoint = net.node(user_node).chain().tip_hash();
  jcfg.required_depth = config.required_depth;
  jcfg.evidence_window_ms = config.evidence_window_ms;
  jcfg.min_collateral = 1;
  jcfg.dispute_bond = config.dispute_bond;
  const auto judger = psc.deploy("payjudger", std::make_unique<PayJudger>(jcfg));

  // --- escrows ---
  for (std::uint32_t i = 0; i < config.customers; ++i) {
    psc.mint(customers[i].psc_addr, config.collateral * 2);
    customers[i].wallet = std::make_unique<CustomerWallet>(customers[i].party,
                                                           customers[i].psc_addr, i + 1);
    const auto r = psc.execute_now(
        customers[i].wallet->make_deposit_tx(judger, config.collateral, 1ULL << 40), 0);
    (void)r;
    customers[i].coins = sim::find_spendable(net.node(user_node).chain(),
                                             customers[i].party.script);
  }

  // --- merchants ---
  std::vector<MerchantActor> merchants;
  merchants.reserve(config.merchants);
  for (std::uint32_t i = 0; i < config.merchants; ++i) {
    MerchantActor actor{sim::Party::make(config.seed * 733 + i), nullptr};
    MerchantService::Config mcfg;
    mcfg.judger = judger;
    mcfg.self_psc = psc::Address::from_label("mkt/merchant/" + std::to_string(i));
    mcfg.dispute_bond = config.dispute_bond;
    mcfg.settle_confirmations = config.settle_confirmations;
    mcfg.dispute_after_ms = config.dispute_after_ms;
    mcfg.binding_safety_margin_ms = config.evidence_window_ms + 60ULL * 60 * 1000;
    psc.mint(mcfg.self_psc, 1'000'000'000);
    actor.service = std::make_unique<MerchantService>(actor.party,
                                                      net.node(merchant_nodes[i]), psc, mcfg);
    merchants.push_back(std::move(actor));
  }

  // --- miners ---
  std::vector<std::unique_ptr<sim::MinerProcess>> miners;
  const sim::Party miner_party = sim::Party::make(config.seed * 997);
  for (std::uint32_t i = 0; i < config.honest_miners; ++i) {
    miners.push_back(std::make_unique<sim::MinerProcess>(
        net, miner_nodes[i], 1.0 / config.honest_miners, miner_party.script,
        config.seed * 1009 + i));
    miners.back()->start();
  }

  MarketplaceResult result;
  double decision_sum_us = 0;

  // --- recurring processes ---
  // PSC block production.
  std::function<void()> produce = [&] {
    psc.produce_block(static_cast<std::uint64_t>(simulator.now()));
    simulator.schedule_in(static_cast<SimTime>(config.psc_block_interval_ms), produce);
  };
  simulator.schedule_in(static_cast<SimTime>(config.psc_block_interval_ms), produce);

  // Merchant + customer monitors.
  std::function<void()> monitors = [&] {
    const auto now = static_cast<std::uint64_t>(simulator.now());
    for (auto& m : merchants) {
      for (auto& tx : m.service->poll(now)) (void)psc.submit(tx);
    }
    // Customer defenses (all customers defend — even the dishonest ones
    // would if they could, but they have no valid proof).
    for (auto& c : customers) {
      psc::PscTx q;
      q.from = c.psc_addr;
      q.to = judger;
      q.method = "getEscrow";
      q.args = encode_escrow_id_arg(c.wallet->escrow_id());
      const auto vr = psc.view_call(q);
      if (!vr.success) continue;
      const auto view = PayJudger::decode_escrow_view(vr.return_data);
      if (!view || view->state != EscrowState::kDisputed) continue;
      if (auto defense = c.wallet->make_defense_tx(net.node(user_node).chain(), *view, judger,
                                                   jcfg.required_depth)) {
        if (!view->customer_proved) (void)psc.submit(*defense);
      }
    }
    simulator.schedule_in(static_cast<SimTime>(config.poll_interval_ms), monitors);
  };
  simulator.schedule_in(static_cast<SimTime>(config.poll_interval_ms), monitors);

  // Payment arrivals: one Poisson process per customer.
  struct TrackedPayment {
    btc::Txid txid{};
    std::size_t merchant = 0;
    bool attacked = false;
  };
  std::vector<TrackedPayment> tracked;

  std::function<void(std::size_t)> schedule_payment = [&](std::size_t ci) {
    const double mean_ms = 60.0 * 60 * 1000 / config.payments_per_hour_per_customer;
    simulator.schedule_in(static_cast<SimTime>(rng.exponential(mean_ms)) + 1, [&, ci] {
      CustomerActor& c = customers[ci];
      if (simulator.now() < config.duration && c.next_coin < c.coins.size()) {
        ++result.payments_attempted;
        const std::size_t mi = rng.below(merchants.size());
        MerchantActor& m = merchants[mi];
        const auto now = static_cast<std::uint64_t>(simulator.now());
        const auto [coin_op, coin] = c.coins[c.next_coin++];

        const Invoice invoice =
            m.service->make_invoice(coin.out.value / 2, config.compensation, now,
                                    10ULL * 60 * 1000);
        FastPayPackage pkg = c.wallet->create_fastpay(invoice, coin_op, coin.out.value, now,
                                                      24ULL * 60 * 60 * 1000);

        const auto t0 = std::chrono::steady_clock::now();
        const AcceptDecision d = m.service->evaluate_fastpay(pkg, invoice, now);
        const auto t1 = std::chrono::steady_clock::now();
        decision_sum_us += std::chrono::duration_cast<
                               std::chrono::duration<double, std::micro>>(t1 - t0)
                               .count();

        if (d.accepted) {
          ++result.payments_accepted;
          for (auto& tx : m.service->accept_payment(pkg, invoice, now)) (void)psc.submit(tx);
          tracked.push_back({pkg.payment_tx.txid(), mi, c.dishonest});

          if (c.dishonest) {
            // Race attack: fire a conflicting self-spend straight at a
            // miner a moment later.
            ++result.race_attacks;
            const btc::Transaction conflict = sim::build_payment(
                c.party, coin_op, coin.out.value, c.party.script, coin.out.value / 2, 5000);
            const sim::NodeId target = miner_nodes[rng.below(miner_nodes.size())];
            simulator.schedule_in(5, [&net, target, conflict] {
              net.node(target).receive_tx(conflict);
            });
          }
        }
        schedule_payment(ci);
      }
    });
  };
  for (std::size_t ci = 0; ci < customers.size(); ++ci) schedule_payment(ci);

  // --- run + drain (extra time for disputes to resolve) ---
  // Drain long enough for serialized per-escrow disputes to all resolve.
  simulator.run_until(config.duration + 18LL * 60 * 60 * 1000);
  for (auto& m : miners) m->stop();

  // --- results ---
  result.mean_decision_micros =
      result.payments_attempted > 0 ? decision_sum_us / result.payments_attempted : 0;
  const btc::Chain& view = net.node(user_node).chain();
  std::size_t lost = 0;
  for (const auto& t : tracked) {
    if (view.confirmations(t.txid) == 0) ++lost;
  }
  result.double_spends_landed = lost;
  for (const auto& m : merchants) {
    result.payments_settled += m.service->settled_count();
    result.disputes_opened += m.service->disputed_count();
  }
  for (const auto& log : psc.logs()) {
    if (log.topic == "JudgedForMerchant") ++result.judged_for_merchant;
    if (log.topic == "JudgedForCustomer") ++result.judged_for_customer;
  }
  result.total_gas = psc.total_gas_used();
  result.btc_height = view.height();
  // Made whole: every lost payment produced a merchant-won judgment.
  result.merchants_made_whole = result.judged_for_merchant >= lost;
  return result;
}

}  // namespace btcfast::core
