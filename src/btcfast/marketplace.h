// Marketplace simulation: many customers (some dishonest) paying many
// merchants through independent escrows, with Poisson payment arrivals —
// the workload a deployed BTCFast would actually face. Dishonest
// customers mount *race attacks*: immediately after a fast payment they
// broadcast a conflicting self-spend straight to the miners, hoping it
// confirms first (no secret mining power needed).
#pragma once

#include <memory>
#include <vector>

#include "btcfast/merchant.h"
#include "btcfast/customer.h"
#include "btcfast/relayer.h"
#include "btcsim/miner.h"

namespace btcfast::core {

struct MarketplaceConfig {
  std::uint32_t merchants = 3;
  std::uint32_t customers = 4;
  std::uint32_t dishonest_customers = 1;  ///< these race-attack every payment
  double payments_per_hour_per_customer = 2.0;
  SimTime duration = 12LL * 60 * 60 * 1000;

  std::uint32_t honest_miners = 3;
  std::uint32_t required_depth = 3;
  std::uint32_t settle_confirmations = 3;
  std::uint64_t dispute_after_ms = 75 * 60 * 1000;
  /// Must comfortably cover required_depth block intervals, or honest
  /// customers cannot prove inclusion before judgment.
  std::uint64_t evidence_window_ms = 60 * 60 * 1000;
  psc::Value collateral = 8'000'000;
  psc::Value compensation = 500'000;
  psc::Value dispute_bond = 10'000;
  std::uint64_t psc_block_interval_ms = 13'000;
  std::uint64_t poll_interval_ms = 60'000;
  std::uint64_t seed = 1;
};

struct MarketplaceResult {
  std::size_t payments_attempted = 0;
  std::size_t payments_accepted = 0;
  std::size_t payments_settled = 0;
  std::size_t race_attacks = 0;          ///< conflicting txs launched
  std::size_t double_spends_landed = 0;  ///< payment lost on BTC
  std::size_t disputes_opened = 0;
  std::size_t judged_for_merchant = 0;
  std::size_t judged_for_customer = 0;
  double mean_decision_micros = 0.0;
  psc::Gas total_gas = 0;
  std::uint32_t btc_height = 0;
  /// Every lost payment compensated? (the scheme's bottom line)
  bool merchants_made_whole = false;
};

/// Runs the whole marketplace scenario; deterministic per seed.
[[nodiscard]] MarketplaceResult run_marketplace(const MarketplaceConfig& config);

}  // namespace btcfast::core
