#include "btcfast/merchant.h"

#include "common/log.h"
#include "common/thread_pool.h"
#include "crypto/batch_verify.h"

namespace btcfast::core {

MerchantService::MerchantService(sim::Party btc_identity, sim::Node& btc_node,
                                 const psc::PscChain& psc, Config config)
    : btc_(std::move(btc_identity)), btc_node_(btc_node), psc_(psc), config_(config) {}

Invoice MerchantService::make_invoice(btc::Amount amount_sat, psc::Value compensation,
                                      std::uint64_t now_ms, std::uint64_t ttl_ms) {
  Invoice inv;
  inv.invoice_id = next_invoice_id_++;
  inv.amount_sat = amount_sat;
  inv.compensation = compensation;
  inv.pay_to = btc_.script;
  inv.merchant_psc = config_.self_psc;
  inv.expires_at_ms = now_ms + ttl_ms;
  return inv;
}

std::optional<EscrowView> MerchantService::escrow_view(EscrowId id) const {
  psc::PscTx q;
  q.from = config_.self_psc;
  q.to = config_.judger;
  q.method = "getEscrow";
  q.args = encode_escrow_id_arg(id);
  const psc::Receipt r = psc_.view_call(q);
  if (!r.success) return std::nullopt;
  return PayJudger::decode_escrow_view(r.return_data);
}

psc::Value MerchantService::outstanding_exposure(EscrowId escrow) const {
  psc::Value total = 0;
  for (const auto& p : pending_) {
    if (!p.settled && !p.judged && p.package.binding.binding.escrow_id == escrow) {
      total += p.package.binding.binding.compensation;
    }
  }
  return total;
}

AcceptDecision MerchantService::evaluate_against(const FastPayPackage& pkg,
                                                 const Invoice& invoice, std::uint64_t now_ms,
                                                 const std::optional<EscrowView>& escrow,
                                                 psc::Value outstanding) const {
  auto reject = [](RejectReason code, std::string why) {
    return AcceptDecision{false, std::move(why), code};
  };
  const PaymentBinding& b = pkg.binding.binding;

  // 1. Invoice conformance.
  if (now_ms > invoice.expires_at_ms) {
    return reject(RejectReason::kInvoiceExpired, "invoice expired");
  }
  if (b.merchant != config_.self_psc) {
    return reject(RejectReason::kWrongMerchant, "binding names another merchant");
  }
  if (b.compensation < invoice.compensation) {
    return reject(RejectReason::kCompensationBelowInvoice, "compensation below invoice");
  }
  if (b.expiry_ms < now_ms + config_.dispute_after_ms + config_.binding_safety_margin_ms) {
    return reject(RejectReason::kBindingExpiresTooSoon,
                  "binding expires before a dispute could resolve");
  }
  if (b.btc_txid != pkg.payment_tx.txid()) {
    return reject(RejectReason::kTxidMismatch, "binding txid mismatch");
  }

  // 2. The BTC transaction pays the invoice.
  btc::Amount paid = 0;
  for (const auto& out : pkg.payment_tx.outputs) {
    if (out.script_pubkey == invoice.pay_to) paid += out.value;
  }
  if (paid < invoice.amount_sat) {
    return reject(RejectReason::kUnderpayment, "payment output below invoice amount");
  }

  // 3. Escrow health (caller-supplied view — no on-chain write).
  if (!escrow) return reject(RejectReason::kEscrowLookupFailed, "escrow lookup failed");
  if (escrow->state != EscrowState::kActive) {
    return reject(RejectReason::kEscrowNotActive, "escrow not active");
  }
  // Coverage: collateral net of on-chain reservations (other merchants'
  // locked exposure) and of our own unsettled optimistic acceptances.
  // `b.compensation` is attacker-chosen, so compare against the headroom
  // instead of summing with `outstanding` — a near-2^64 compensation must
  // not wrap the exposure total past the check.
  const psc::Value available =
      escrow->collateral > escrow->reserved ? escrow->collateral - escrow->reserved : 0;
  if (b.compensation > available || outstanding > available - b.compensation) {
    return reject(RejectReason::kInsufficientCollateral, "collateral would not cover exposure");
  }
  if (config_.per_escrow_exposure_cap > 0 &&
      (b.compensation > config_.per_escrow_exposure_cap ||
       outstanding > config_.per_escrow_exposure_cap - b.compensation)) {
    return reject(RejectReason::kExposureCap, "per-escrow exposure cap exceeded");
  }
  // Binding must outlive neither the escrow unlock (customer could
  // withdraw before we can dispute).
  if (escrow->unlock_time_ms < b.expiry_ms) {
    return reject(RejectReason::kEscrowUnlocksTooSoon, "escrow unlocks before binding expires");
  }

  // 4. Binding signature under the escrow's registered customer key.
  const auto customer_key =
      crypto::PublicKey::parse({escrow->customer_btc_key.data(), escrow->customer_btc_key.size()});
  if (!customer_key) {
    return reject(RejectReason::kBadCustomerKey, "escrow holds an invalid customer key");
  }
  if (!pkg.binding.verify(*customer_key)) {
    return reject(RejectReason::kBindingSigInvalid, "binding signature invalid");
  }

  // 5. BTC transaction is currently spendable and unconflicted in our view.
  if (pkg.payment_tx.inputs.empty() || pkg.payment_tx.outputs.empty()) {
    return reject(RejectReason::kMalformedTx, "malformed payment tx");
  }
  btc::Amount in_value = 0;
  for (std::size_t i = 0; i < pkg.payment_tx.inputs.size(); ++i) {
    const auto& prevout = pkg.payment_tx.inputs[i].prevout;
    const auto coin = btc_node_.chain().utxo().get(prevout);
    if (!coin) {
      return reject(RejectReason::kInputMissing,
                    "input missing or already spent: " + prevout.to_string());
    }
    if (auto conflict = btc_node_.mempool().spender_of(prevout)) {
      if (*conflict != b.btc_txid) {
        return reject(RejectReason::kInputConflict,
                      "input double-spent in mempool by " + conflict->to_string());
      }
    }
    if (!btc::verify_input(pkg.payment_tx, i, coin->out.script_pubkey)) {
      return reject(RejectReason::kInputSigInvalid, "payment input signature invalid");
    }
    in_value += coin->out.value;
  }
  if (in_value < pkg.payment_tx.total_output()) {
    return reject(RejectReason::kValueInflation, "payment inflates value");
  }

  return AcceptDecision{true, {}, RejectReason::kNone};
}

AcceptDecision MerchantService::evaluate_fastpay(const FastPayPackage& pkg,
                                                 const Invoice& invoice, std::uint64_t now_ms) {
  // Admission: a bounded book rejects loudly instead of growing silently.
  if (config_.max_pending_payments > 0 &&
      active_pending_count() >= config_.max_pending_payments) {
    return AcceptDecision{false, "merchant pending-payment limit reached",
                          RejectReason::kPendingLimit};
  }
  const EscrowId escrow_id = pkg.binding.binding.escrow_id;
  return evaluate_against(pkg, invoice, now_ms, escrow_view(escrow_id),
                          outstanding_exposure(escrow_id));
}

std::vector<AcceptDecision> MerchantService::evaluate_fastpay_batch(
    const std::vector<FastPayPackage>& pkgs, const std::vector<Invoice>& invoices,
    std::uint64_t now_ms) {
  // Phase 1: collect every signature check the sequential path would run
  // and verify them in parallel into the global cache. Escrow lookups are
  // local view calls (cheap); the curve math is the expensive part.
  std::vector<crypto::SigCheckJob> jobs;
  for (const auto& pkg : pkgs) {
    const PaymentBinding& b = pkg.binding.binding;
    if (const auto escrow = escrow_view(b.escrow_id)) {
      crypto::SigCheckJob job;
      job.digest = b.signing_digest();
      job.pubkey = escrow->customer_btc_key;
      job.sig = pkg.binding.customer_sig;
      jobs.push_back(job);
    }
    for (std::size_t i = 0; i < pkg.payment_tx.inputs.size(); ++i) {
      const auto& in = pkg.payment_tx.inputs[i];
      if (const auto coin = btc_node_.chain().utxo().get(in.prevout)) {
        crypto::SigCheckJob job;
        job.digest = pkg.payment_tx.signature_hash(i, coin->out.script_pubkey);
        job.pubkey = in.script_sig.pubkey;
        job.sig = in.script_sig.signature;
        jobs.push_back(job);
      }
    }
  }
  (void)crypto::batch_verify(common::ThreadPool::global(), jobs, &crypto::SigCache::global());

  // Phase 2: unchanged sequential decisions. Signature checks hit the
  // cache; everything else (expiry, coverage, UTXO state) was always
  // sequential, so the outcome matches a plain loop exactly.
  std::vector<AcceptDecision> out;
  out.reserve(pkgs.size());
  for (std::size_t i = 0; i < pkgs.size(); ++i) {
    out.push_back(evaluate_fastpay(pkgs[i], invoices[i], now_ms));
  }
  return out;
}

std::vector<psc::PscTx> MerchantService::accept_payment(const FastPayPackage& pkg,
                                                        const Invoice& invoice,
                                                        std::uint64_t now_ms) {
  return accept_payment(FastPayPackage(pkg), Invoice(invoice), now_ms);
}

std::vector<psc::PscTx> MerchantService::accept_payment(FastPayPackage&& pkg, Invoice&& invoice,
                                                        std::uint64_t now_ms) {
  PendingPayment p;
  p.package = std::move(pkg);
  p.invoice = std::move(invoice);
  p.accepted_at_ms = now_ms;

  std::vector<psc::PscTx> actions;
  if (config_.reserve_payments) {
    psc::PscTx tx;
    tx.from = config_.self_psc;
    tx.to = config_.judger;
    tx.method = "reservePayment";
    tx.args = encode_open_dispute_args(p.package.binding.binding.escrow_id, p.package.binding);
    actions.push_back(std::move(tx));
    p.reserved = true;
  }

  pending_.push_back(std::move(p));
  // Broadcast through our own node so the network confirms it.
  btc_node_.receive_tx(pending_.back().package.payment_tx);
  return actions;
}

void MerchantService::restore_pending(const FastPayPackage& pkg, const Invoice& invoice,
                                      std::uint64_t accepted_at_ms) {
  PendingPayment p;
  p.package = pkg;
  p.invoice = invoice;
  p.accepted_at_ms = accepted_at_ms;
  // Reserved mode's on-chain reservation (if it happened) lives in the
  // contract, not in this flag; leaving it false just means poll() won't
  // try to release a reservation this process can't prove it made.
  pending_.push_back(std::move(p));
  if (invoice.invoice_id >= next_invoice_id_) next_invoice_id_ = invoice.invoice_id + 1;
}

std::vector<psc::PscTx> MerchantService::poll(std::uint64_t now_ms) {
  std::vector<psc::PscTx> actions;

  for (auto& p : pending_) {
    if (p.settled || p.judged) continue;
    const PaymentBinding& b = p.package.binding.binding;
    const auto conf = btc_node_.chain().confirmations(b.btc_txid);

    if (!p.dispute_opened && conf >= config_.settle_confirmations) {
      p.settled = true;
      BTCFAST_LOG(LogLevel::kInfo, "merchant")
          << "payment " << b.btc_txid.to_string().substr(0, 12) << " settled (" << conf
          << " conf)";
      if (p.reserved && !p.reservation_released) {
        // Free the escrow's reserved collateral now that BTC settled.
        psc::PscTx tx;
        tx.from = config_.self_psc;
        tx.to = config_.judger;
        tx.method = "releaseReservation";
        tx.args = encode_open_dispute_args(b.escrow_id, p.package.binding);
        actions.push_back(std::move(tx));
        p.reservation_released = true;
      }
      continue;
    }

    if (!p.dispute_opened) {
      if (now_ms >= p.accepted_at_ms + config_.dispute_after_ms) {
        psc::PscTx tx;
        tx.from = config_.self_psc;
        tx.to = config_.judger;
        tx.value = config_.dispute_bond;
        tx.method = "openDispute";
        tx.args = encode_open_dispute_args(b.escrow_id, p.package.binding);
        actions.push_back(std::move(tx));
        p.dispute_opened = true;
        p.last_dispute_attempt_ms = now_ms;
        BTCFAST_LOG(LogLevel::kInfo, "merchant")
            << "opening dispute for " << b.btc_txid.to_string().substr(0, 12);
      }
      continue;
    }

    // Dispute is open (or at least requested): follow its progress.
    const auto escrow = escrow_view(b.escrow_id);
    if (!escrow) continue;

    // Retry path: our openDispute never took effect (the escrow only
    // adjudicates one dispute at a time, so a concurrent dispute beats us
    // to it). Resubmit while the escrow is ACTIVE again.
    if (!p.dispute_active_seen && escrow->state == EscrowState::kActive &&
        now_ms >= p.last_dispute_attempt_ms + 5 * 60 * 1000) {
      psc::PscTx tx;
      tx.from = config_.self_psc;
      tx.to = config_.judger;
      tx.value = config_.dispute_bond;
      tx.method = "openDispute";
      tx.args = encode_open_dispute_args(b.escrow_id, p.package.binding);
      actions.push_back(std::move(tx));
      p.last_dispute_attempt_ms = now_ms;
      continue;
    }

    if (escrow->state == EscrowState::kDisputed &&
        escrow->dispute_merchant == config_.self_psc && escrow->disputed_txid == b.btc_txid) {
      p.dispute_active_seen = true;
      if (now_ms <= escrow->dispute_deadline_ms) {
        // Submit (or refresh) our header-chain evidence.
        auto headers = headers_since(btc_node_.chain(), escrow->dispute_anchor);
        if (headers && !headers->empty()) {
          // Only resubmit when our chain outweighs what the contract holds.
          crypto::U256 our_work;
          for (const auto& h : *headers) our_work += btc::header_work(h.bits);
          if (our_work > escrow->merchant_work) {
            psc::PscTx tx;
            tx.from = config_.self_psc;
            tx.to = config_.judger;
            tx.method = "submitMerchantEvidence";
            tx.args = encode_merchant_evidence_args(b.escrow_id, *headers);
            tx.gas_limit = 8'000'000;
            actions.push_back(std::move(tx));
            p.evidence_submitted = true;
          }
        }
      } else {
        // Window closed: request judgment.
        psc::PscTx tx;
        tx.from = config_.self_psc;
        tx.to = config_.judger;
        tx.method = "judge";
        tx.args = encode_escrow_id_arg(b.escrow_id);
        actions.push_back(std::move(tx));
        p.judged = true;
      }
    } else if (escrow->state != EscrowState::kDisputed && p.dispute_active_seen) {
      // Dispute resolved (by our judge call or someone else's).
      p.judged = true;
      if (conf >= config_.settle_confirmations) p.settled = true;
    }
  }
  return actions;
}

std::size_t MerchantService::settled_count() const noexcept {
  std::size_t n = 0;
  for (const auto& p : pending_) n += p.settled;
  return n;
}

std::size_t MerchantService::disputed_count() const noexcept {
  std::size_t n = 0;
  for (const auto& p : pending_) n += p.dispute_opened;
  return n;
}

std::size_t MerchantService::active_pending_count() const noexcept {
  std::size_t n = 0;
  for (const auto& p : pending_) n += !p.settled && !p.judged;
  return n;
}

}  // namespace btcfast::core
