// The merchant side of BTCFast: the sub-second acceptance decision, plus
// settlement monitoring and the dispute workflow (open, evidence, judge).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcfast/protocol.h"
#include "btcsim/node.h"
#include "btcsim/scenario.h"
#include "psc/chain.h"

namespace btcfast::core {

class MerchantService {
 public:
  struct Config {
    psc::Address judger{};
    psc::Address self_psc{};
    psc::Value dispute_bond = 10'000;
    std::uint32_t settle_confirmations = 6;   ///< payment considered settled
    std::uint64_t dispute_after_ms = 90 * 60 * 1000;  ///< open dispute if unconfirmed
    std::uint64_t binding_safety_margin_ms = 4 * 60 * 60 * 1000;
    /// Reserved mode (on-chain exposure): every accepted payment is
    /// registered with reservePayment, guaranteeing collateral coverage
    /// even against cross-merchant double-booking — at ~1 contract call
    /// per payment. Off (optimistic mode) reproduces the paper's zero-fee
    /// fast path. See bench_ablation_reserve for the trade-off.
    bool reserve_payments = false;
    /// Maximum unresolved accepted payments the merchant will carry
    /// (0 = unbounded). Beyond it the fast path rejects with
    /// RejectReason::kPendingLimit instead of silently growing the book.
    std::size_t max_pending_payments = 0;
    /// Merchant-side cap on total unsettled compensation against any one
    /// escrow (0 = uncapped). Tighter than collateral coverage: a cautious
    /// merchant bounds its exposure to a single customer even when the
    /// escrow could technically cover more (RejectReason::kExposureCap).
    psc::Value per_escrow_exposure_cap = 0;
  };

  /// A payment the merchant accepted and is tracking.
  struct PendingPayment {
    FastPayPackage package;
    Invoice invoice;
    std::uint64_t accepted_at_ms = 0;
    bool settled = false;
    bool dispute_opened = false;     ///< openDispute tx submitted
    bool dispute_active_seen = false;  ///< contract confirmed DISPUTED state
    bool evidence_submitted = false;
    bool judged = false;
    bool reserved = false;           ///< on-chain reservation submitted
    bool reservation_released = false;
    std::uint64_t last_dispute_attempt_ms = 0;  ///< for retry pacing
  };

  MerchantService(sim::Party btc_identity, sim::Node& btc_node, const psc::PscChain& psc,
                  Config config);

  /// Quote an invoice.
  [[nodiscard]] Invoice make_invoice(btc::Amount amount_sat, psc::Value compensation,
                                     std::uint64_t now_ms, std::uint64_t ttl_ms);

  /// THE FAST PATH (paper's "< 1 second"): decide entirely from local
  /// state — signature checks, escrow view (cached from the PSC chain),
  /// UTXO/mempool checks on the merchant's Bitcoin node. No network round
  /// trips, no on-chain writes.
  [[nodiscard]] AcceptDecision evaluate_fastpay(const FastPayPackage& pkg,
                                                const Invoice& invoice, std::uint64_t now_ms);

  /// The reentrant acceptance core: the full fast-path decision against a
  /// caller-supplied escrow view and outstanding-exposure figure. Const
  /// and safe to call concurrently (from gateway worker threads) while
  /// the simulation is quiescent — it only reads the merchant node's
  /// chain/UTXO/mempool and the process-global signature cache.
  /// evaluate_fastpay == pending-limit check + fetch_escrow + this.
  [[nodiscard]] AcceptDecision evaluate_against(const FastPayPackage& pkg, const Invoice& invoice,
                                                std::uint64_t now_ms,
                                                const std::optional<EscrowView>& escrow,
                                                psc::Value outstanding) const;

  /// Batch intake for N independent packages: a parallel phase verifies
  /// every signature (binding + per-input payment sigs) across the global
  /// thread pool, warming the signature cache; decisions are then made by
  /// the unchanged sequential fast path, whose signature checks all hit
  /// the cache. Results are index-aligned with the inputs and
  /// byte-identical to calling evaluate_fastpay in a loop — for any
  /// thread count, including the inline (0-thread) pool.
  [[nodiscard]] std::vector<AcceptDecision> evaluate_fastpay_batch(
      const std::vector<FastPayPackage>& pkgs, const std::vector<Invoice>& invoices,
      std::uint64_t now_ms);

  /// Accept (bookkeeping) after a positive evaluation; broadcasts the
  /// payment tx from the merchant's node. In reserved mode, returns the
  /// reservePayment transaction the caller must submit to the PSC chain.
  [[nodiscard]] std::vector<psc::PscTx> accept_payment(const FastPayPackage& pkg,
                                                       const Invoice& invoice,
                                                       std::uint64_t now_ms);
  /// Move overload for bulk drains (the gateway's epoch flush hands over
  /// thousands of packages per call): the package and invoice move into
  /// the pending book instead of being deep-copied.
  [[nodiscard]] std::vector<psc::PscTx> accept_payment(FastPayPackage&& pkg, Invoice&& invoice,
                                                       std::uint64_t now_ms);

  /// Periodic monitoring: settles confirmed payments and returns any PSC
  /// transactions the merchant must submit (dispute open / evidence /
  /// judge requests).
  [[nodiscard]] std::vector<psc::PscTx> poll(std::uint64_t now_ms);

  /// Reinstall an accepted payment recovered from the durable store
  /// after a crash: book-only — no BTC rebroadcast (the tx was already
  /// on the network pre-crash) and no fresh reservePayment; poll()'s
  /// settle/dispute machinery picks the payment up from here. Also bumps
  /// the invoice-id counter past the restored invoice so new invoices
  /// never collide with recovered ones.
  void restore_pending(const FastPayPackage& pkg, const Invoice& invoice,
                       std::uint64_t accepted_at_ms);

  [[nodiscard]] const std::vector<PendingPayment>& pending() const noexcept { return pending_; }
  [[nodiscard]] std::size_t settled_count() const noexcept;
  [[nodiscard]] std::size_t disputed_count() const noexcept;
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const sim::Party& btc_identity() const noexcept { return btc_; }
  /// Read-only node access for callers that pre-stage parallel signature
  /// checks (the gateway's batch intake mirrors evaluate_fastpay_batch).
  [[nodiscard]] const sim::Node& btc_node() const noexcept { return btc_node_; }

  /// Exposure the merchant already carries against an escrow (sum of
  /// unsettled accepted compensations) — the fast path refuses bindings
  /// that would overrun the collateral.
  [[nodiscard]] psc::Value outstanding_exposure(EscrowId escrow) const;

  /// Accepted payments still unresolved (neither settled nor judged) —
  /// the quantity Config::max_pending_payments bounds.
  [[nodiscard]] std::size_t active_pending_count() const noexcept;

  /// Current escrow record from the PSC chain (view call, no write).
  /// Public so the gateway's reconcile loop can refresh its reservation
  /// ledger from the authoritative contract state.
  [[nodiscard]] std::optional<EscrowView> escrow_view(EscrowId id) const;

 private:
  sim::Party btc_;
  sim::Node& btc_node_;
  const psc::PscChain& psc_;
  Config config_;
  std::vector<PendingPayment> pending_;
  std::uint64_t next_invoice_id_ = 1;
};

}  // namespace btcfast::core
