#include "btcfast/orchestrator.h"

#include <chrono>

#include "common/log.h"
#include "common/thread_pool.h"

namespace btcfast::core {

Deployment::Deployment(DeploymentConfig config)
    : config_(std::move(config)),
      params_(config_.params),
      customer_party_(sim::Party::make(config_.seed * 11 + 1)),
      merchant_party_(sim::Party::make(config_.seed * 11 + 2)),
      miner_party_(sim::Party::make(config_.seed * 11 + 3)) {
  common::ThreadPool::configure_global(config_.verify_threads);
  sim_ = std::make_unique<sim::Simulator>();
  net_ = std::make_unique<sim::Network>(*sim_, params_, config_.net, config_.seed * 13 + 7);

  // Nodes.
  for (std::uint32_t i = 0; i < config_.honest_miners; ++i) {
    miner_node_ids_.push_back(net_->add_node());
  }
  customer_node_id_ = net_->add_node();
  merchant_node_id_ = net_->add_node();

  // Fund the customer with mature coinbases and seed every node.
  const auto funding = sim::build_funding_chain(
      params_, {customer_party_.script},
      static_cast<std::uint32_t>(config_.funded_coins));
  for (std::size_t i = 0; i < net_->size(); ++i) {
    sim::seed_node(net_->node(static_cast<sim::NodeId>(i)), funding);
  }
  sim_->run_all();  // settle seeding chatter at t=0

  customer_coins_ = sim::find_spendable(customer_node().chain(), customer_party_.script);

  // PSC chain + PayJudger.
  psc::PscChain::Config psc_cfg;
  psc_cfg.block_interval_ms = config_.psc_block_interval_ms;
  psc_ = std::make_unique<psc::PscChain>(psc_cfg);

  judger_cfg_.pow_limit = params_.pow_limit;
  judger_cfg_.initial_checkpoint = customer_node().chain().tip_hash();
  judger_cfg_.required_depth = config_.required_depth;
  judger_cfg_.evidence_window_ms = config_.evidence_window_ms;
  judger_cfg_.min_collateral = 1;
  judger_cfg_.dispute_bond = config_.dispute_bond;
  judger_addr_ = psc_->deploy("payjudger", std::make_unique<PayJudger>(judger_cfg_));

  customer_psc_ = psc::Address::from_label("deployment/customer");
  merchant_psc_ = psc::Address::from_label("deployment/merchant");
  psc_->mint(customer_psc_, config_.collateral * 4);
  psc_->mint(merchant_psc_, config_.dispute_bond * 100 + 10'000'000);

  // Protocol actors.
  customer_ = std::make_unique<CustomerWallet>(customer_party_, customer_psc_, /*escrow_id=*/1);

  MerchantService::Config mcfg;
  mcfg.judger = judger_addr_;
  mcfg.self_psc = merchant_psc_;
  mcfg.dispute_bond = config_.dispute_bond;
  mcfg.settle_confirmations = config_.settle_confirmations;
  mcfg.dispute_after_ms = config_.dispute_after_ms;
  mcfg.binding_safety_margin_ms = config_.evidence_window_ms + 60 * 60 * 1000;
  mcfg.reserve_payments = config_.reserve_payments;
  merchant_ = std::make_unique<MerchantService>(merchant_party_, merchant_node(), *psc_, mcfg);

  Relayer::Config rcfg;
  rcfg.judger = judger_addr_;
  rcfg.self_psc = psc::Address::from_label("deployment/relayer");
  rcfg.lag_blocks = config_.relayer_lag_blocks;
  relayer_ = std::make_unique<Relayer>(merchant_node(), *psc_, rcfg);
  psc_->mint(rcfg.self_psc, 100'000'000);

  // Escrow deposit (executed immediately at t=0).
  const auto deposit = customer_->make_deposit_tx(judger_addr_, config_.collateral,
                                                  config_.escrow_unlock_delay_ms);
  const auto receipt = psc_->execute_now(deposit, 0);
  if (!receipt.success) {
    BTCFAST_LOG(LogLevel::kError, "deploy") << "deposit failed: " << receipt.revert_reason;
  }

  // Mining power: honest miners share (1 - q).
  const double honest_total = 1.0 - config_.attacker_share;
  for (std::uint32_t i = 0; i < config_.honest_miners; ++i) {
    miners_.push_back(std::make_unique<sim::MinerProcess>(
        *net_, miner_node_ids_[i], honest_total / config_.honest_miners, miner_party_.script,
        config_.seed * 101 + i));
    miners_.back()->start();
  }
  if (config_.attacker_share > 0) {
    sim::DoubleSpendAttacker::Config acfg;
    acfg.share = config_.attacker_share;
    acfg.target_confirmations = config_.attacker_release_confirmations;
    acfg.give_up_deficit = config_.attacker_give_up_deficit;
    attacker_ = std::make_unique<sim::DoubleSpendAttacker>(*net_, customer_node_id_, acfg,
                                                           customer_party_.script,
                                                           config_.seed * 503 + 3);
  }

  if (config_.watchtower_enabled) {
    Watchtower::Config wcfg;
    wcfg.judger = judger_addr_;
    wcfg.self_psc = psc::Address::from_label("deployment/watchtower");
    psc_->mint(wcfg.self_psc, 100'000'000);
    // The tower runs its own full node view (first miner node).
    watchtower_ = std::make_unique<Watchtower>(net_->node(miner_node_ids_[0]), *psc_, wcfg);
    watchtower_->protect(customer_->escrow_id());
  }

  if (!config_.store_dir.empty()) {
    store_ = store::DurableStore::open(config_.store_dir, config_.store_options, &last_recovery_);
    if (!store_) {
      BTCFAST_LOG(LogLevel::kError, "deploy")
          << "durable store open failed: " << last_recovery_.error;
    } else if (watchtower_) {
      watchtower_->attach_store(store_.get());
      watchtower_->restore(store_->image_copy());
    }
  }

  if (config_.net.loss_rate > 0) {
    // Lossy-network runs need the anti-entropy recovery path.
    net_->enable_sync(30 * kSecond);
  }

  schedule_psc_blocks();
  schedule_monitors();
}

void Deployment::schedule_psc_blocks() {
  const SimTime interval = static_cast<SimTime>(config_.psc_block_interval_ms);
  sim_->schedule_in(interval, [this] {
    psc_->produce_block(static_cast<std::uint64_t>(sim_->now()));
    schedule_psc_blocks();
  });
}

void Deployment::schedule_monitors() {
  sim_->schedule_in(static_cast<SimTime>(config_.poll_interval_ms), [this] {
    const auto now = static_cast<std::uint64_t>(sim_->now());
    pump_merchant(now);
    if (config_.customer_online) pump_customer_defense();
    if (watchtower_ && watchtower_online_) {
      for (auto& tx : watchtower_->poll(now)) {
        const auto id = psc_->submit(tx);
        submitted_txs_.emplace_back(tx.method, id);
      }
    }
    if (relayer_online_) pump_relayer();
    schedule_monitors();
  });
}

void Deployment::pump_merchant(std::uint64_t now_ms) {
  for (auto& tx : merchant_->poll(now_ms)) {
    const auto id = psc_->submit(tx);
    submitted_txs_.emplace_back(tx.method, id);
  }
}

void Deployment::pump_customer_defense() {
  const auto view = escrow_view();
  if (!view || view->state != EscrowState::kDisputed) return;
  // Past the deadline the customer requests judgment itself — its
  // collateral stays locked until someone does.
  if (static_cast<std::uint64_t>(sim_->now()) > view->dispute_deadline_ms) {
    psc::PscTx tx;
    tx.from = customer_psc_;
    tx.to = judger_addr_;
    tx.method = "judge";
    tx.args = encode_escrow_id_arg(customer_->escrow_id());
    const auto id = psc_->submit(tx);
    submitted_txs_.emplace_back(tx.method, id);
    return;
  }
  // Only defend if our chain since the anchor outweighs what's recorded.
  auto defense = customer_->make_defense_tx(customer_node().chain(), *view, judger_addr_,
                                            judger_cfg_.required_depth);
  if (!defense) return;
  crypto::U256 our_work;
  if (auto headers = headers_since(customer_node().chain(), view->dispute_anchor)) {
    for (const auto& h : *headers) our_work += btc::header_work(h.bits);
  }
  if (view->customer_proved && our_work <= view->customer_work) return;
  const auto id = psc_->submit(*defense);
  submitted_txs_.emplace_back(defense->method, id);
}

void Deployment::pump_relayer() {
  if (auto tx = relayer_->make_update_tx()) {
    const auto id = psc_->submit(*tx);
    submitted_txs_.emplace_back(tx->method, id);
  }
}

FastPayResult Deployment::perform_fastpay(btc::Amount amount_sat) {
  FastPayResult result;
  if (next_coin_ >= customer_coins_.size()) {
    result.reject_reason = "customer out of coins";
    return result;
  }
  const auto [coin_op, coin] = customer_coins_[next_coin_++];

  const auto now = static_cast<std::uint64_t>(sim_->now());
  const Invoice invoice =
      merchant_->make_invoice(amount_sat, config_.compensation, now, /*ttl=*/10 * 60 * 1000);
  result.invoice = invoice;

  FastPayPackage pkg =
      customer_->create_fastpay(invoice, coin_op, coin.out.value, now, config_.binding_ttl_ms);
  result.txid = pkg.payment_tx.txid();

  // One network hop carries the package to the merchant.
  result.message_latency_ms = config_.net.base_latency + config_.net.jitter / 2;

  const auto t0 = std::chrono::steady_clock::now();
  AcceptDecision decision;
  std::vector<psc::PscTx> actions;
  if (accept_route_) {
    // Gateway-routed acceptance: the route decides AND does the merchant
    // bookkeeping; we only submit the PSC txs it hands back.
    auto routed = accept_route_(pkg, invoice, now);
    decision = std::move(routed.first);
    actions = std::move(routed.second);
  } else {
    decision = merchant_->evaluate_fastpay(pkg, invoice, now);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.decision_micros =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(t1 - t0).count();

  result.accepted = decision.accepted;
  result.reject_reason = decision.reason;
  if (!decision.accepted) return result;

  if (!accept_route_) {
    actions = merchant_->accept_payment(pkg, invoice, now);
  }
  for (auto& tx : actions) {
    const auto id = psc_->submit(tx);
    submitted_txs_.emplace_back(tx.method, id);
  }

  if (attacker_) {
    // The malicious customer starts the secret race with a conflicting
    // self-spend of the same coin.
    const btc::Transaction conflict =
        sim::build_payment(customer_party_, coin_op, coin.out.value, customer_party_.script,
                           amount_sat, /*fee=*/2000);
    attacker_->begin_attack(pkg.payment_tx, conflict);
  }
  return result;
}

void Deployment::run_for(SimTime duration) { sim_->run_until(sim_->now() + duration); }

bool Deployment::restart_watchtower_from_store() {
  if (!store_ || !config_.watchtower_enabled) return false;

  // Capture the pre-crash image, make it durable, then genuinely wipe:
  // both the tower and the store handle are destroyed before recovery.
  store_->sync();
  const Bytes expect = store_->image_copy().serialize();
  watchtower_.reset();
  store_.reset();
  watchtower_online_ = false;

  store_ = store::DurableStore::open(config_.store_dir, config_.store_options, &last_recovery_);
  if (!store_) {
    BTCFAST_LOG(LogLevel::kError, "deploy")
        << "store recovery failed: " << last_recovery_.error;
    return false;
  }
  const bool exact = store_->image_copy().serialize() == expect;

  Watchtower::Config wcfg;
  wcfg.judger = judger_addr_;
  wcfg.self_psc = psc::Address::from_label("deployment/watchtower");
  watchtower_ = std::make_unique<Watchtower>(net_->node(miner_node_ids_[0]), *psc_, wcfg);
  watchtower_->protect(customer_->escrow_id());
  watchtower_->attach_store(store_.get());
  watchtower_->restore(store_->image_copy());
  watchtower_online_ = true;
  return exact;
}

void Deployment::adopt_store(std::unique_ptr<store::DurableStore> store) {
  store_ = std::move(store);
  if (store_) {
    // Later restart_watchtower_from_store() calls must reopen the
    // promoted node's directory, not the deposed primary's.
    config_.store_dir = store_->dir();
  }
  if (watchtower_ && store_) {
    watchtower_->attach_store(store_.get());
    watchtower_->restore(store_->image_copy());
  }
}

std::optional<EscrowView> Deployment::escrow_view() const {
  psc::PscTx q;
  q.from = customer_psc_;
  q.to = judger_addr_;
  q.method = "getEscrow";
  q.args = encode_escrow_id_arg(customer_->escrow_id());
  const auto r = psc_->view_call(q);
  if (!r.success) return std::nullopt;
  return PayJudger::decode_escrow_view(r.return_data);
}

std::vector<psc::Receipt> Deployment::receipts_for(const std::string& method) const {
  std::vector<psc::Receipt> out;
  for (const auto& [m, id] : submitted_txs_) {
    if (m == method && psc_->has_receipt(id)) out.push_back(psc_->receipt(id));
  }
  return out;
}

DeploymentSummary Deployment::summarize() const {
  DeploymentSummary s;
  s.btc_height = net_->node(merchant_node_id_).chain().height();
  s.psc_blocks = psc_->block_number();
  s.payments_settled = merchant_->settled_count();
  s.disputes_opened = merchant_->disputed_count();
  for (const auto& log : psc_->logs()) {
    if (log.topic == "JudgedForMerchant") ++s.judged_for_merchant;
    if (log.topic == "JudgedForCustomer") ++s.judged_for_customer;
  }
  s.merchant_psc_balance = psc_->state().balance(merchant_psc_);
  s.customer_psc_balance = psc_->state().balance(customer_psc_);
  if (const auto view = escrow_view()) {
    s.escrow_collateral = view->collateral;
    s.escrow_state = view->state;
  }
  s.total_gas_used = psc_->total_gas_used();
  return s;
}

}  // namespace btcfast::core
