// End-to-end deployment of BTCFast inside the simulator: a Bitcoin
// network (honest miners + optional attacking customer), a PSC chain
// running PayJudger, and the customer / merchant / relayer processes.
// Tests, examples and benches all drive scenarios through this.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include <string>

#include "btcfast/customer.h"
#include "btcfast/merchant.h"
#include "btcfast/relayer.h"
#include "btcfast/watchtower.h"
#include "btcsim/attacker.h"
#include "btcsim/miner.h"
#include "store/recovery.h"

namespace btcfast::core {

struct DeploymentConfig {
  std::uint32_t honest_miners = 3;
  /// Attacker (== customer) hash share. 0 disables secret mining entirely.
  double attacker_share = 0.0;
  int attacker_give_up_deficit = 12;
  /// Public confirmations of the payment the attacker waits for before it
  /// will release its secret chain. Against a BTCFast merchant the goods
  /// ship instantly, so the rational attacker releases as soon as it is
  /// ahead (0). Against a k-conf baseline merchant, set to k.
  std::uint32_t attacker_release_confirmations = 0;

  std::uint32_t required_depth = 6;         ///< k in PayJudger
  std::uint32_t settle_confirmations = 6;   ///< merchant settles at this depth
  std::uint64_t evidence_window_ms = 60 * 60 * 1000;
  std::uint64_t dispute_after_ms = 90 * 60 * 1000;
  std::uint64_t binding_ttl_ms = 24ULL * 60 * 60 * 1000;

  psc::Value collateral = 10'000'000;
  psc::Value compensation = 1'000'000;
  psc::Value dispute_bond = 10'000;
  std::uint64_t escrow_unlock_delay_ms = 48ULL * 60 * 60 * 1000;
  std::uint64_t psc_block_interval_ms = 13'000;

  std::uint64_t poll_interval_ms = 60'000;  ///< merchant/customer monitors
  std::uint32_t relayer_lag_blocks = 30;
  /// Reserved mode: merchants lock exposure on-chain per payment
  /// (cross-merchant safety at ~1 call/payment; see MerchantService).
  bool reserve_payments = false;
  /// When false, the customer never defends its own disputes (models an
  /// offline customer — the availability gap the watchtower closes).
  bool customer_online = true;
  /// Run a Watchtower protecting the customer's escrow from an
  /// independent Bitcoin view.
  bool watchtower_enabled = false;

  /// When non-empty, open a DurableStore at this directory and attach it
  /// to the watchtower (and to any gateway the caller wires up via
  /// Deployment::store()). Restart toggles then actually drop in-memory
  /// state and recover from disk instead of pretending.
  std::string store_dir;
  store::StoreOptions store_options{};

  std::uint64_t seed = 1;
  sim::NetworkConfig net{};
  btc::Amount funded_coins = 4;  ///< mature coinbases granted to the customer

  /// Bitcoin consensus parameters for the simulated network. The default
  /// regtest difficulty (~2^16 hashes/block) keeps PoW honest; the
  /// scenario fuzzer lowers it to afford hundreds of deployments per run.
  btc::ChainParams params = btc::ChainParams::regtest();

  /// Worker threads for the verification engine (batch signature checks,
  /// parallel evidence PoW hashing). 0 = inline execution on the calling
  /// thread — the deterministic baseline. Decisions and gas accounting are
  /// identical for every value; only wall-clock changes. Applied to the
  /// process-global pool at Deployment construction.
  std::size_t verify_threads = 0;
};

/// Result of one fast payment attempt.
struct FastPayResult {
  bool accepted = false;
  std::string reject_reason;
  double decision_micros = 0.0;    ///< measured CPU time of evaluate_fastpay
  SimTime message_latency_ms = 0;  ///< simulated C->M network delay
  btc::Txid txid{};
  Invoice invoice{};
};

/// Snapshot of the world after a run.
struct DeploymentSummary {
  std::uint32_t btc_height = 0;
  std::uint64_t psc_blocks = 0;
  std::size_t payments_settled = 0;
  std::size_t disputes_opened = 0;
  std::size_t judged_for_merchant = 0;
  std::size_t judged_for_customer = 0;
  psc::Value merchant_psc_balance = 0;
  psc::Value customer_psc_balance = 0;
  psc::Value escrow_collateral = 0;
  EscrowState escrow_state = EscrowState::kEmpty;
  psc::Gas total_gas_used = 0;
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config);

  /// One fast payment: invoice -> customer package -> merchant decision.
  /// On acceptance the payment tx is broadcast; if the deployment has an
  /// attacker share, the customer simultaneously starts the secret race.
  FastPayResult perform_fastpay(btc::Amount amount_sat);

  /// Advance simulated time (all processes run inside).
  void run_for(SimTime duration);

  [[nodiscard]] DeploymentSummary summarize() const;

  // --- component access for focused tests ---
  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] sim::Network& network() noexcept { return *net_; }
  [[nodiscard]] psc::PscChain& psc() noexcept { return *psc_; }
  [[nodiscard]] CustomerWallet& customer() noexcept { return *customer_; }
  [[nodiscard]] MerchantService& merchant() noexcept { return *merchant_; }
  [[nodiscard]] Relayer& relayer() noexcept { return *relayer_; }
  [[nodiscard]] Watchtower* watchtower() noexcept { return watchtower_.get(); }
  [[nodiscard]] const psc::Address& judger_address() const noexcept { return judger_addr_; }
  [[nodiscard]] sim::Node& merchant_node() noexcept { return net_->node(merchant_node_id_); }
  [[nodiscard]] sim::Node& customer_node() noexcept { return net_->node(customer_node_id_); }
  [[nodiscard]] sim::NodeId merchant_node_id() const noexcept { return merchant_node_id_; }
  [[nodiscard]] sim::NodeId customer_node_id() const noexcept { return customer_node_id_; }
  [[nodiscard]] const std::vector<sim::NodeId>& miner_node_ids() const noexcept {
    return miner_node_ids_;
  }
  [[nodiscard]] const DeploymentConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::optional<EscrowView> escrow_view() const;

  // --- state-inspection accessors for the testkit invariant harness ---
  [[nodiscard]] const psc::Address& customer_psc_address() const noexcept { return customer_psc_; }
  [[nodiscard]] const psc::Address& merchant_psc_address() const noexcept { return merchant_psc_; }
  [[nodiscard]] const PayJudgerConfig& judger_config() const noexcept { return judger_cfg_; }
  [[nodiscard]] const sim::DoubleSpendAttacker* attacker() const noexcept {
    return attacker_.get();
  }
  /// Every PSC transaction the deployment submitted, as (method, tx id).
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>& submitted_txs()
      const noexcept {
    return submitted_txs_;
  }

  // --- crash/restart fault injection (scenario fuzzing) ---
  /// While offline a process is simply not pumped on the monitor tick; it
  /// keeps its in-memory state, modelling a crash + restart of the same
  /// process rather than a wipe.
  void set_watchtower_online(bool online) noexcept { watchtower_online_ = online; }
  /// Durable-store variant of a watchtower restart: discards the tower's
  /// in-memory state entirely, closes the store, reopens it from disk
  /// (snapshot + WAL replay) and rebuilds the tower from the recovered
  /// image. Returns true iff recovery succeeded AND the recovered state
  /// image is byte-identical to the pre-crash one (exactness check).
  /// Requires `store_dir` configured and the watchtower enabled. Any
  /// gateway holding the old store pointer must re-attach afterwards.
  [[nodiscard]] bool restart_watchtower_from_store();
  /// Replication failover: swap in a promoted follower's store as the new
  /// primary handle. The watchtower, if enabled, re-attaches and restores
  /// from the adopted image; any gateway holding the old pointer must
  /// re-attach afterwards.
  void adopt_store(std::unique_ptr<store::DurableStore> store);
  [[nodiscard]] store::DurableStore* store() noexcept { return store_.get(); }
  [[nodiscard]] const store::RecoveryInfo& last_recovery() const noexcept {
    return last_recovery_;
  }
  void set_relayer_online(bool online) noexcept { relayer_online_ = online; }
  void set_customer_online(bool online) noexcept { config_.customer_online = online; }
  [[nodiscard]] bool watchtower_online() const noexcept { return watchtower_online_; }
  [[nodiscard]] bool relayer_online() const noexcept { return relayer_online_; }

  /// Gas used by a named receipt class (diagnostics for E4).
  [[nodiscard]] std::vector<psc::Receipt> receipts_for(const std::string& method) const;

  /// Alternate acceptance path, used to route perform_fastpay through the
  /// gateway serving layer instead of calling the merchant directly. The
  /// route returns the decision plus any PSC transactions to submit, and
  /// owns the merchant bookkeeping (accept_payment) for accepted
  /// payments; the deployment still submits the returned txs and runs the
  /// attacker race. Clear with an empty function.
  using AcceptRoute = std::function<std::pair<AcceptDecision, std::vector<psc::PscTx>>(
      const FastPayPackage& pkg, const Invoice& invoice, std::uint64_t now_ms)>;
  void set_accept_route(AcceptRoute route) { accept_route_ = std::move(route); }

 private:
  void schedule_psc_blocks();
  void schedule_monitors();
  void pump_merchant(std::uint64_t now_ms);
  void pump_customer_defense();
  void pump_relayer();

  DeploymentConfig config_;
  btc::ChainParams params_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<psc::PscChain> psc_;
  psc::Address judger_addr_{};
  PayJudgerConfig judger_cfg_{};

  std::vector<sim::NodeId> miner_node_ids_;
  sim::NodeId customer_node_id_ = 0;
  sim::NodeId merchant_node_id_ = 0;

  sim::Party customer_party_;
  sim::Party merchant_party_;
  sim::Party miner_party_;
  psc::Address customer_psc_{};
  psc::Address merchant_psc_{};

  std::vector<std::unique_ptr<sim::MinerProcess>> miners_;
  std::unique_ptr<sim::DoubleSpendAttacker> attacker_;
  std::unique_ptr<CustomerWallet> customer_;
  std::unique_ptr<MerchantService> merchant_;
  std::unique_ptr<Relayer> relayer_;
  std::unique_ptr<Watchtower> watchtower_;
  std::unique_ptr<store::DurableStore> store_;
  store::RecoveryInfo last_recovery_{};

  AcceptRoute accept_route_;
  std::vector<std::pair<std::string, std::uint64_t>> submitted_txs_;  ///< (method, id)
  std::vector<std::pair<btc::OutPoint, btc::Coin>> customer_coins_;
  std::size_t next_coin_ = 0;
  bool watchtower_online_ = true;
  bool relayer_online_ = true;
};

}  // namespace btcfast::core
