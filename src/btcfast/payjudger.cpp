#include "btcfast/payjudger.h"

#include "common/thread_pool.h"

namespace btcfast::core {
namespace {

using psc::Slot;

// --- storage layout helpers -------------------------------------------
// Slot keys are sha256("btcfast/slot" || tag || escrow_id), mirroring
// Solidity mapping-key hashing; key derivation is charged like KECCAK256.

enum class Field : std::uint8_t {
  kState = 1,
  kCustomer,
  kCollateral,
  kUnlockTime,
  kCustomerKeyHi,   // first 32 bytes of the compressed pubkey
  kCustomerKeyLo,   // last byte
  kDisputeMerchant,
  kDisputeCompensation,
  kDisputeDeadline,
  kDisputedTxid,
  kDisputeAnchor,
  kMerchantWork,
  kCustomerWork,
  kCustomerProved,
  kDisputeBond,
  kReservedTotal,
};

constexpr std::uint8_t kGlobalCheckpointHash = 0xF0;
constexpr std::uint8_t kGlobalCheckpointHeight = 0xF1;
constexpr std::uint8_t kUsedBindingTag = 0xF2;
constexpr std::uint8_t kReservationTag = 0xF3;

Slot field_slot(psc::HostContext& host, Field tag, EscrowId id) {
  host.charge_compute(42);  // KECCAK256-equivalent for mapping key derivation
  Writer w;
  w.bytes(as_bytes(std::string("btcfast/slot")));
  w.u8(static_cast<std::uint8_t>(tag));
  w.u64le(id);
  const auto digest = crypto::sha256(w.data());
  return crypto::U256::from_be_bytes({digest.data(), digest.size()});
}

Slot global_slot(psc::HostContext& host, std::uint8_t tag) {
  host.charge_compute(42);
  Writer w;
  w.bytes(as_bytes(std::string("btcfast/global")));
  w.u8(tag);
  const auto digest = crypto::sha256(w.data());
  return crypto::U256::from_be_bytes({digest.data(), digest.size()});
}

Slot binding_keyed_slot(psc::HostContext& host, std::uint8_t tag,
                        const crypto::Sha256Digest& binding_hash) {
  host.charge_compute(42);
  Writer w;
  w.bytes(as_bytes(std::string("btcfast/binding")));
  w.u8(tag);
  w.bytes({binding_hash.data(), binding_hash.size()});
  const auto digest = crypto::sha256(w.data());
  return crypto::U256::from_be_bytes({digest.data(), digest.size()});
}

Slot used_binding_slot(psc::HostContext& host, const crypto::Sha256Digest& binding_hash) {
  return binding_keyed_slot(host, kUsedBindingTag, binding_hash);
}

Slot reservation_slot(psc::HostContext& host, const crypto::Sha256Digest& binding_hash) {
  return binding_keyed_slot(host, kReservationTag, binding_hash);
}

// --- slot value packing -------------------------------------------------

Slot u64_slot(std::uint64_t v) { return crypto::U256(v); }

/// Shared validation for any merchant-presented binding: parses, checks
/// escrow linkage, caller identity, expiry, and the customer signature
/// against the escrow's registered key. Used by reservePayment,
/// releaseReservation and openDispute.
Result<SignedBinding> check_binding(psc::HostContext& host, EscrowId id,
                                    const Bytes& binding_bytes) {
  auto signed_binding = SignedBinding::deserialize(binding_bytes);
  if (!signed_binding) return make_error("bad-binding-encoding");
  const PaymentBinding& b = signed_binding->binding;

  if (b.escrow_id != id) return make_error("binding-escrow-mismatch");
  if (b.merchant != host.caller()) return make_error("not-binding-merchant");
  if (host.block_time_ms() > b.expiry_ms) return make_error("binding-expired");

  ByteArray<33> pubkey{};
  const auto hi = host.sload(field_slot(host, Field::kCustomerKeyHi, id)).to_be_bytes();
  for (std::size_t i = 0; i < 32; ++i) pubkey[i] = hi[i];
  pubkey[32] =
      static_cast<std::uint8_t>(host.sload(field_slot(host, Field::kCustomerKeyLo, id)).low64());
  host.charge_compute(64);  // binding-serialization hashing
  if (!host.ecdsa_verify({pubkey.data(), pubkey.size()}, b.signing_digest(),
                         {signed_binding->customer_sig.data(), 64})) {
    return make_error("bad-binding-signature");
  }
  return *signed_binding;
}

Slot addr_slot(const psc::Address& a) {
  ByteArray<32> buf{};
  for (std::size_t i = 0; i < 20; ++i) buf[12 + i] = a.bytes[i];
  return crypto::U256::from_be_bytes({buf.data(), buf.size()});
}

psc::Address slot_addr(const Slot& s) {
  const auto b = s.to_be_bytes();
  psc::Address a;
  for (std::size_t i = 0; i < 20; ++i) a.bytes[i] = b[12 + i];
  return a;
}

Slot hash_slot(ByteSpan bytes32) { return crypto::U256::from_be_bytes(bytes32); }

}  // namespace

PayJudger::PayJudger(PayJudgerConfig config) : config_(std::move(config)) {}

Status PayJudger::call(psc::HostContext& host, const std::string& method, ByteSpan args,
                       Bytes* ret) {
  host.charge_memory(args.size());
  if (method == "deposit") return deposit(host, args);
  if (method == "topUp") return top_up(host, args);
  if (method == "withdraw") return withdraw(host, args);
  if (method == "reservePayment") return reserve_payment(host, args);
  if (method == "releaseReservation") return release_reservation(host, args);
  if (method == "openDispute") return open_dispute(host, args);
  if (method == "submitMerchantEvidence") return submit_merchant_evidence(host, args);
  if (method == "submitCustomerEvidence") return submit_customer_evidence(host, args);
  if (method == "judge") return judge(host, args);
  if (method == "updateCheckpoint") return update_checkpoint(host, args);
  if (method == "getEscrow") return get_escrow(host, args, ret);
  if (method == "getCheckpoint") return get_checkpoint(host, ret);
  if (method == "getParams") {
    if (ret == nullptr) return make_error("no-return-buffer");
    Writer w;
    w.u32le(config_.required_depth);
    w.u64le(config_.evidence_window_ms);
    w.u64le(config_.min_collateral);
    w.u64le(config_.dispute_bond);
    *ret = std::move(w).take();
    return Status::success();
  }
  return make_error("unknown-method", method);
}

Status PayJudger::deposit(psc::HostContext& host, ByteSpan args) {
  Reader r(args);
  auto id = r.u64le();
  auto unlock_delay = r.u64le();
  auto pubkey = r.bytes(33);
  if (!id || !unlock_delay || !pubkey || !r.at_end()) return make_error("bad-args");

  const Slot state = host.sload(field_slot(host, Field::kState, *id));
  if (state.low64() != static_cast<std::uint64_t>(EscrowState::kEmpty)) {
    return make_error("escrow-exists");
  }
  if (host.call_value() < config_.min_collateral) {
    return make_error("collateral-too-small",
                      "need >= " + std::to_string(config_.min_collateral));
  }
  // The customer's binding key must be a valid curve point.
  if (!crypto::PublicKey::parse(*pubkey)) return make_error("bad-pubkey");

  host.sstore(field_slot(host, Field::kState, *id),
              u64_slot(static_cast<std::uint64_t>(EscrowState::kActive)));
  host.sstore(field_slot(host, Field::kCustomer, *id), addr_slot(host.caller()));
  host.sstore(field_slot(host, Field::kCollateral, *id), u64_slot(host.call_value()));
  host.sstore(field_slot(host, Field::kUnlockTime, *id),
              u64_slot(host.block_time_ms() + *unlock_delay));
  host.sstore(field_slot(host, Field::kCustomerKeyHi, *id),
              hash_slot({pubkey->data(), 32}));
  host.sstore(field_slot(host, Field::kCustomerKeyLo, *id), u64_slot((*pubkey)[32]));

  host.emit_log("Deposited");
  return Status::success();
}

Status PayJudger::top_up(psc::HostContext& host, ByteSpan args) {
  Reader r(args);
  auto id = r.u64le();
  if (!id || !r.at_end()) return make_error("bad-args");

  const Slot state = host.sload(field_slot(host, Field::kState, *id));
  if (state.low64() != static_cast<std::uint64_t>(EscrowState::kActive)) {
    return make_error("escrow-not-active");
  }
  if (slot_addr(host.sload(field_slot(host, Field::kCustomer, *id))) != host.caller()) {
    return make_error("not-customer");
  }
  const Slot collateral = host.sload(field_slot(host, Field::kCollateral, *id));
  host.sstore(field_slot(host, Field::kCollateral, *id),
              u64_slot(collateral.low64() + host.call_value()));
  host.emit_log("ToppedUp");
  return Status::success();
}

Status PayJudger::withdraw(psc::HostContext& host, ByteSpan args) {
  Reader r(args);
  auto id = r.u64le();
  if (!id || !r.at_end()) return make_error("bad-args");

  const Slot state = host.sload(field_slot(host, Field::kState, *id));
  if (state.low64() != static_cast<std::uint64_t>(EscrowState::kActive)) {
    return make_error("escrow-not-active", "state=" + std::to_string(state.low64()));
  }
  const psc::Address customer = slot_addr(host.sload(field_slot(host, Field::kCustomer, *id)));
  if (customer != host.caller()) return make_error("not-customer");
  const std::uint64_t unlock = host.sload(field_slot(host, Field::kUnlockTime, *id)).low64();
  if (host.block_time_ms() < unlock) {
    return make_error("still-locked", "until " + std::to_string(unlock));
  }
  if (host.sload(field_slot(host, Field::kReservedTotal, *id)).low64() != 0) {
    return make_error("reservations-outstanding");
  }

  const psc::Value collateral = host.sload(field_slot(host, Field::kCollateral, *id)).low64();
  // Clear state before paying (checks-effects-interactions).
  host.sstore(field_slot(host, Field::kState, *id), Slot{});
  host.sstore(field_slot(host, Field::kCollateral, *id), Slot{});
  host.sstore(field_slot(host, Field::kCustomer, *id), Slot{});
  if (!host.transfer_out(customer, collateral)) return make_error("payout-failed");
  host.emit_log("Withdrawn");
  return Status::success();
}

Status PayJudger::reserve_payment(psc::HostContext& host, ByteSpan args) {
  Reader r(args);
  auto id = r.u64le();
  auto binding_bytes = r.bytes_with_len(2048);
  if (!id || !binding_bytes || !r.at_end()) return make_error("bad-args");

  const Slot state = host.sload(field_slot(host, Field::kState, *id));
  if (state.low64() != static_cast<std::uint64_t>(EscrowState::kActive)) {
    return make_error("escrow-not-active");
  }
  auto binding = check_binding(host, *id, *binding_bytes);
  if (!binding) return binding.error();
  const PaymentBinding& b = binding.value().binding;

  const auto binding_hash = crypto::sha256(b.serialize());
  if (!host.sload(used_binding_slot(host, binding_hash)).is_zero()) {
    return make_error("binding-already-disputed");
  }
  const Slot res_slot = reservation_slot(host, binding_hash);
  if (!host.sload(res_slot).is_zero()) return make_error("binding-already-reserved");

  const psc::Value collateral = host.sload(field_slot(host, Field::kCollateral, *id)).low64();
  const psc::Value reserved = host.sload(field_slot(host, Field::kReservedTotal, *id)).low64();
  if (b.compensation > collateral - reserved) {
    return make_error("insufficient-unreserved-collateral");
  }

  host.sstore(res_slot, u64_slot(b.compensation));
  host.sstore(field_slot(host, Field::kReservedTotal, *id),
              u64_slot(reserved + b.compensation));
  host.emit_log("PaymentReserved");
  return Status::success();
}

Status PayJudger::release_reservation(psc::HostContext& host, ByteSpan args) {
  Reader r(args);
  auto id = r.u64le();
  auto binding_bytes = r.bytes_with_len(2048);
  if (!id || !binding_bytes || !r.at_end()) return make_error("bad-args");

  auto binding = check_binding(host, *id, *binding_bytes);
  if (!binding) return binding.error();
  const PaymentBinding& b = binding.value().binding;

  const auto binding_hash = crypto::sha256(b.serialize());
  const Slot res_slot = reservation_slot(host, binding_hash);
  const psc::Value amount = host.sload(res_slot).low64();
  if (amount == 0) return make_error("no-reservation");

  host.sstore(res_slot, Slot{});
  const psc::Value reserved = host.sload(field_slot(host, Field::kReservedTotal, *id)).low64();
  host.sstore(field_slot(host, Field::kReservedTotal, *id),
              u64_slot(reserved >= amount ? reserved - amount : 0));
  host.emit_log("ReservationReleased");
  return Status::success();
}

Status PayJudger::open_dispute(psc::HostContext& host, ByteSpan args) {
  Reader r(args);
  auto id = r.u64le();
  auto binding_bytes = r.bytes_with_len(2048);
  if (!id || !binding_bytes || !r.at_end()) return make_error("bad-args");

  if (host.call_value() < config_.dispute_bond) return make_error("bond-too-small");

  const Slot state = host.sload(field_slot(host, Field::kState, *id));
  if (state.low64() != static_cast<std::uint64_t>(EscrowState::kActive)) {
    return make_error("escrow-not-active");
  }
  auto binding = check_binding(host, *id, *binding_bytes);
  if (!binding) return binding.error();
  const PaymentBinding& b = binding.value().binding;

  // Replay protection: one dispute per binding, ever.
  const auto binding_hash = crypto::sha256(b.serialize());
  const Slot used_slot = used_binding_slot(host, binding_hash);
  if (!host.sload(used_slot).is_zero()) return make_error("binding-already-disputed");

  // Affordability: a reserved binding is pre-covered (consume the
  // reservation); an optimistic one must fit the unreserved collateral.
  const psc::Value collateral = host.sload(field_slot(host, Field::kCollateral, *id)).low64();
  const psc::Value reserved = host.sload(field_slot(host, Field::kReservedTotal, *id)).low64();
  const Slot res_slot = reservation_slot(host, binding_hash);
  const psc::Value this_reservation = host.sload(res_slot).low64();
  if (this_reservation > 0) {
    host.sstore(res_slot, Slot{});
    host.sstore(field_slot(host, Field::kReservedTotal, *id),
                u64_slot(reserved >= this_reservation ? reserved - this_reservation : 0));
  } else {
    if (b.compensation > collateral - reserved) {
      return make_error("compensation-exceeds-collateral");
    }
  }
  host.sstore(used_slot, u64_slot(1));

  // Record the dispute.
  host.sstore(field_slot(host, Field::kState, *id),
              u64_slot(static_cast<std::uint64_t>(EscrowState::kDisputed)));
  host.sstore(field_slot(host, Field::kDisputeMerchant, *id), addr_slot(b.merchant));
  host.sstore(field_slot(host, Field::kDisputeCompensation, *id), u64_slot(b.compensation));
  host.sstore(field_slot(host, Field::kDisputeDeadline, *id),
              u64_slot(host.block_time_ms() + config_.evidence_window_ms));
  host.sstore(field_slot(host, Field::kDisputedTxid, *id),
              hash_slot({b.btc_txid.bytes.data(), 32}));
  Slot anchor = host.sload(global_slot(host, kGlobalCheckpointHash));
  if (anchor.is_zero()) anchor = hash_slot({config_.initial_checkpoint.bytes.data(), 32});
  host.sstore(field_slot(host, Field::kDisputeAnchor, *id), anchor);
  host.sstore(field_slot(host, Field::kMerchantWork, *id), Slot{});
  host.sstore(field_slot(host, Field::kCustomerWork, *id), Slot{});
  host.sstore(field_slot(host, Field::kCustomerProved, *id), Slot{});
  host.sstore(field_slot(host, Field::kDisputeBond, *id), u64_slot(host.call_value()));

  host.emit_log("DisputeOpened");
  return Status::success();
}

Result<btc::HeaderChainSummary> PayJudger::verify_evidence_chain(
    psc::HostContext& host, const btc::BlockHash& anchor,
    const std::vector<btc::BlockHeader>& headers) {
  if (headers.empty()) return make_error("evidence-empty");
  if (headers.size() > 144) return make_error("evidence-too-long", "max 144 headers");

  // Phase 1: hash every header across the thread pool. This is raw CPU
  // work only — no metering — so it can run in any order on any number
  // of threads. Headers past an (as yet undetected) defect are hashed
  // speculatively and discarded. When a digest provider is attached
  // (dispute storm engine), it supplies the same digests from its shared
  // index instead — the metered phase below is identical either way.
  std::vector<crypto::Sha256Digest> digests(headers.size());
  if (digest_provider_ != nullptr) {
    digest_provider_->batch_digests(headers, digests.data());
  } else {
    common::ThreadPool::global().parallel_for(headers.size(), [&](std::size_t i) {
      std::uint8_t ser[80];
      headers[i].serialize_into(ser);
      digests[i] = crypto::sha256d_80(ser);
    });
  }

  // Phase 2: sequential validation issuing the exact gas charges, in the
  // exact order, with the exact early aborts of a serial implementation —
  // contract execution is deterministic regardless of thread count.
  btc::HeaderChainSummary summary;
  btc::BlockHash expected_prev = anchor;
  for (std::size_t i = 0; i < headers.size(); ++i) {
    const btc::BlockHeader& h = headers[i];
    if (h.prev_hash != expected_prev) return make_error("evidence-broken-link");

    const auto target = btc::bits_to_target(h.bits);
    if (!target || *target > config_.pow_limit) return make_error("evidence-bad-target");

    // Metered double-SHA over the 80-byte header (the PoW check); the
    // digest itself was computed in phase 1. Charged unconditionally —
    // even when phase 1 served the digest from a cache — so gas is a pure
    // function of the evidence bytes, never of cache state.
    host.meter().charge_sha256(80);
    host.meter().charge_sha256(32);
    const auto& digest = digests[i];
    const auto hash_value = crypto::U256::from_le_bytes({digest.data(), digest.size()});
    if (hash_value > *target) return make_error("evidence-bad-pow");

    host.charge_compute(20);  // work accumulation + comparisons
    summary.total_work += btc::header_work(h.bits);
    expected_prev.bytes = digest;
  }
  summary.tip_hash = expected_prev;
  summary.length = static_cast<std::uint32_t>(headers.size());
  return summary;
}

Status PayJudger::submit_merchant_evidence(psc::HostContext& host, ByteSpan args) {
  Reader r(args);
  auto id = r.u64le();
  auto headers_bytes = r.bytes_with_len(1 << 20);
  if (!id || !headers_bytes || !r.at_end()) return make_error("bad-args");

  const Slot state = host.sload(field_slot(host, Field::kState, *id));
  if (state.low64() != static_cast<std::uint64_t>(EscrowState::kDisputed)) {
    return make_error("no-open-dispute");
  }
  if (host.block_time_ms() >
      host.sload(field_slot(host, Field::kDisputeDeadline, *id)).low64()) {
    return make_error("evidence-window-closed");
  }

  auto headers = btc::deserialize_headers(*headers_bytes);
  if (!headers) return make_error("bad-headers-encoding");

  btc::BlockHash anchor;
  anchor.bytes =
      host.sload(field_slot(host, Field::kDisputeAnchor, *id)).to_be_bytes();
  auto summary = verify_evidence_chain(host, anchor, *headers);
  if (!summary) return summary.error();

  const Slot prev_work = host.sload(field_slot(host, Field::kMerchantWork, *id));
  if (summary.value().total_work > prev_work) {
    host.sstore(field_slot(host, Field::kMerchantWork, *id), summary.value().total_work);
    host.emit_log("MerchantEvidence");
  }
  return Status::success();
}

Status PayJudger::submit_customer_evidence(psc::HostContext& host, ByteSpan args) {
  Reader r(args);
  auto id = r.u64le();
  auto headers_bytes = r.bytes_with_len(1 << 20);
  auto proof_bytes = r.bytes_with_len(1 << 16);
  auto header_index = r.u32le();
  if (!id || !headers_bytes || !proof_bytes || !header_index || !r.at_end()) {
    return make_error("bad-args");
  }

  const Slot state = host.sload(field_slot(host, Field::kState, *id));
  if (state.low64() != static_cast<std::uint64_t>(EscrowState::kDisputed)) {
    return make_error("no-open-dispute");
  }
  if (host.block_time_ms() >
      host.sload(field_slot(host, Field::kDisputeDeadline, *id)).low64()) {
    return make_error("evidence-window-closed");
  }

  auto headers = btc::deserialize_headers(*headers_bytes);
  if (!headers) return make_error("bad-headers-encoding");
  auto proof = btc::TxInclusionProof::deserialize(*proof_bytes);
  if (!proof) return make_error("bad-proof-encoding");

  btc::BlockHash anchor;
  anchor.bytes = host.sload(field_slot(host, Field::kDisputeAnchor, *id)).to_be_bytes();
  auto summary = verify_evidence_chain(host, anchor, *headers);
  if (!summary) return summary.error();

  // The proof must target one of the submitted headers, deep enough.
  if (*header_index >= headers->size()) return make_error("proof-index-out-of-range");
  if (proof->header != (*headers)[*header_index]) return make_error("proof-header-mismatch");
  const std::uint32_t depth =
      static_cast<std::uint32_t>(headers->size()) - *header_index;
  if (depth < config_.required_depth) {
    return make_error("proof-too-shallow",
                      std::to_string(depth) + " < " + std::to_string(config_.required_depth));
  }

  // The proof must be over the disputed txid.
  btc::Txid disputed;
  disputed.bytes = host.sload(field_slot(host, Field::kDisputedTxid, *id)).to_be_bytes();
  if (proof->txid != disputed) return make_error("proof-wrong-txid");

  // Metered Merkle branch verification.
  if (proof->branch.siblings.size() > 32) return make_error("proof-too-deep");
  crypto::Hash32 acc = proof->txid.bytes;
  std::uint32_t pos = proof->branch.index;
  for (const auto& sibling : proof->branch.siblings) {
    ByteArray<64> cat{};
    if (pos & 1) {
      for (int i = 0; i < 32; ++i) cat[static_cast<std::size_t>(i)] = sibling[static_cast<std::size_t>(i)];
      for (int i = 0; i < 32; ++i) cat[static_cast<std::size_t>(32 + i)] = acc[static_cast<std::size_t>(i)];
    } else {
      for (int i = 0; i < 32; ++i) cat[static_cast<std::size_t>(i)] = acc[static_cast<std::size_t>(i)];
      for (int i = 0; i < 32; ++i) cat[static_cast<std::size_t>(32 + i)] = sibling[static_cast<std::size_t>(i)];
    }
    acc = host.sha256d({cat.data(), cat.size()});
    pos >>= 1;
  }
  if (acc != proof->header.merkle_root.bytes) return make_error("proof-invalid");

  const Slot prev_work = host.sload(field_slot(host, Field::kCustomerWork, *id));
  if (summary.value().total_work > prev_work) {
    host.sstore(field_slot(host, Field::kCustomerWork, *id), summary.value().total_work);
    host.sstore(field_slot(host, Field::kCustomerProved, *id), u64_slot(1));
    host.emit_log("CustomerEvidence");
  }
  return Status::success();
}

Status PayJudger::judge(psc::HostContext& host, ByteSpan args) {
  Reader r(args);
  auto id = r.u64le();
  if (!id || !r.at_end()) return make_error("bad-args");

  const Slot state = host.sload(field_slot(host, Field::kState, *id));
  if (state.low64() != static_cast<std::uint64_t>(EscrowState::kDisputed)) {
    return make_error("no-open-dispute");
  }
  if (host.block_time_ms() <=
      host.sload(field_slot(host, Field::kDisputeDeadline, *id)).low64()) {
    return make_error("evidence-window-open");
  }

  const bool customer_proved =
      host.sload(field_slot(host, Field::kCustomerProved, *id)).low64() != 0;
  const crypto::U256 customer_work = host.sload(field_slot(host, Field::kCustomerWork, *id));
  const crypto::U256 merchant_work = host.sload(field_slot(host, Field::kMerchantWork, *id));
  const psc::Value bond = host.sload(field_slot(host, Field::kDisputeBond, *id)).low64();
  const psc::Address merchant =
      slot_addr(host.sload(field_slot(host, Field::kDisputeMerchant, *id)));
  const psc::Address customer =
      slot_addr(host.sload(field_slot(host, Field::kCustomer, *id)));

  // Rule: the customer wins only by *proving* inclusion on a chain at
  // least as heavy as the merchant's counter-evidence. Ties favour the
  // customer's concrete proof over the merchant's absence claim.
  const bool customer_wins = customer_proved && customer_work >= merchant_work;

  psc::Value payout_merchant = 0;
  psc::Value payout_customer = 0;
  if (customer_wins) {
    payout_customer = bond;  // merchant forfeits the dispute bond
    host.emit_log("JudgedForCustomer");
  } else {
    const psc::Value compensation =
        host.sload(field_slot(host, Field::kDisputeCompensation, *id)).low64();
    const psc::Value collateral = host.sload(field_slot(host, Field::kCollateral, *id)).low64();
    const psc::Value paid = compensation < collateral ? compensation : collateral;
    host.sstore(field_slot(host, Field::kCollateral, *id), u64_slot(collateral - paid));
    payout_merchant = paid + bond;  // compensation plus bond refund
    host.emit_log("JudgedForMerchant");
  }

  // Clear dispute state; escrow returns to ACTIVE (or EMPTY if drained).
  const psc::Value remaining = host.sload(field_slot(host, Field::kCollateral, *id)).low64();
  host.sstore(field_slot(host, Field::kState, *id),
              u64_slot(static_cast<std::uint64_t>(remaining > 0 ? EscrowState::kActive
                                                                : EscrowState::kEmpty)));
  host.sstore(field_slot(host, Field::kDisputeMerchant, *id), Slot{});
  host.sstore(field_slot(host, Field::kDisputeCompensation, *id), Slot{});
  host.sstore(field_slot(host, Field::kDisputeDeadline, *id), Slot{});
  host.sstore(field_slot(host, Field::kDisputeBond, *id), Slot{});
  host.sstore(field_slot(host, Field::kCustomerProved, *id), Slot{});

  if (payout_merchant > 0 && !host.transfer_out(merchant, payout_merchant)) {
    return make_error("payout-failed");
  }
  if (payout_customer > 0 && !host.transfer_out(customer, payout_customer)) {
    return make_error("payout-failed");
  }
  return Status::success();
}

Status PayJudger::update_checkpoint(psc::HostContext& host, ByteSpan args) {
  Reader r(args);
  auto headers_bytes = r.bytes_with_len(1 << 20);
  if (!headers_bytes || !r.at_end()) return make_error("bad-args");

  auto headers = btc::deserialize_headers(*headers_bytes);
  if (!headers) return make_error("bad-headers-encoding");

  const Slot current = host.sload(global_slot(host, kGlobalCheckpointHash));
  btc::BlockHash anchor;
  if (current.is_zero()) {
    anchor = config_.initial_checkpoint;
  } else {
    anchor.bytes = current.to_be_bytes();
  }

  auto summary = verify_evidence_chain(host, anchor, *headers);
  if (!summary) return summary.error();

  host.sstore(global_slot(host, kGlobalCheckpointHash),
              hash_slot({summary.value().tip_hash.bytes.data(), 32}));
  const std::uint64_t height = host.sload(global_slot(host, kGlobalCheckpointHeight)).low64();
  host.sstore(global_slot(host, kGlobalCheckpointHeight),
              u64_slot(height + summary.value().length));
  host.emit_log("CheckpointUpdated");
  return Status::success();
}

Status PayJudger::get_escrow(psc::HostContext& host, ByteSpan args, Bytes* ret) {
  Reader r(args);
  auto id = r.u64le();
  if (!id || !r.at_end()) return make_error("bad-args");
  if (ret == nullptr) return make_error("no-return-buffer");

  Writer w;
  w.u64le(host.sload(field_slot(host, Field::kState, *id)).low64());
  const auto customer = slot_addr(host.sload(field_slot(host, Field::kCustomer, *id)));
  w.bytes({customer.bytes.data(), customer.bytes.size()});
  w.u64le(host.sload(field_slot(host, Field::kCollateral, *id)).low64());
  w.u64le(host.sload(field_slot(host, Field::kReservedTotal, *id)).low64());
  w.u64le(host.sload(field_slot(host, Field::kUnlockTime, *id)).low64());
  const auto key_hi = host.sload(field_slot(host, Field::kCustomerKeyHi, *id)).to_be_bytes();
  w.bytes({key_hi.data(), key_hi.size()});
  w.u8(static_cast<std::uint8_t>(host.sload(field_slot(host, Field::kCustomerKeyLo, *id)).low64()));
  const auto merchant = slot_addr(host.sload(field_slot(host, Field::kDisputeMerchant, *id)));
  w.bytes({merchant.bytes.data(), merchant.bytes.size()});
  w.u64le(host.sload(field_slot(host, Field::kDisputeCompensation, *id)).low64());
  w.u64le(host.sload(field_slot(host, Field::kDisputeDeadline, *id)).low64());
  const auto txid = host.sload(field_slot(host, Field::kDisputedTxid, *id)).to_be_bytes();
  w.bytes({txid.data(), txid.size()});
  const auto anchor = host.sload(field_slot(host, Field::kDisputeAnchor, *id)).to_be_bytes();
  w.bytes({anchor.data(), anchor.size()});
  const auto mw = host.sload(field_slot(host, Field::kMerchantWork, *id)).to_be_bytes();
  w.bytes({mw.data(), mw.size()});
  const auto cw = host.sload(field_slot(host, Field::kCustomerWork, *id)).to_be_bytes();
  w.bytes({cw.data(), cw.size()});
  w.u8(host.sload(field_slot(host, Field::kCustomerProved, *id)).low64() != 0 ? 1 : 0);
  *ret = std::move(w).take();
  return Status::success();
}

Status PayJudger::get_checkpoint(psc::HostContext& host, Bytes* ret) {
  if (ret == nullptr) return make_error("no-return-buffer");
  Writer w;
  const Slot hash = host.sload(global_slot(host, kGlobalCheckpointHash));
  if (hash.is_zero()) {
    w.bytes({config_.initial_checkpoint.bytes.data(), 32});
  } else {
    const auto b = hash.to_be_bytes();
    w.bytes({b.data(), b.size()});
  }
  w.u64le(host.sload(global_slot(host, kGlobalCheckpointHeight)).low64());
  *ret = std::move(w).take();
  return Status::success();
}

std::optional<EscrowView> PayJudger::decode_escrow_view(ByteSpan data) {
  Reader r(data);
  EscrowView v;
  auto state = r.u64le();
  auto customer = r.bytes(20);
  auto collateral = r.u64le();
  auto reserved = r.u64le();
  auto unlock = r.u64le();
  auto key_hi = r.bytes(32);
  auto key_lo = r.u8();
  auto merchant = r.bytes(20);
  auto comp = r.u64le();
  auto deadline = r.u64le();
  auto txid = r.bytes(32);
  auto anchor = r.bytes(32);
  auto mw = r.bytes(32);
  auto cw = r.bytes(32);
  auto proved = r.u8();
  if (!state || !customer || !collateral || !reserved || !unlock || !key_hi || !key_lo ||
      !merchant || !comp || !deadline || !txid || !anchor || !mw || !cw || !proved ||
      !r.at_end()) {
    return std::nullopt;
  }
  v.state = static_cast<EscrowState>(*state);
  v.customer.bytes = to_array<20>(*customer);
  v.collateral = *collateral;
  v.reserved = *reserved;
  v.unlock_time_ms = *unlock;
  for (std::size_t i = 0; i < 32; ++i) v.customer_btc_key[i] = (*key_hi)[i];
  v.customer_btc_key[32] = *key_lo;
  v.dispute_merchant.bytes = to_array<20>(*merchant);
  v.dispute_compensation = *comp;
  v.dispute_deadline_ms = *deadline;
  v.disputed_txid.bytes = to_array<32>(*txid);
  v.dispute_anchor.bytes = to_array<32>(*anchor);
  v.merchant_work = crypto::U256::from_be_bytes(*mw);
  v.customer_work = crypto::U256::from_be_bytes(*cw);
  v.customer_proved = *proved != 0;
  return v;
}

// --- client-side arg encoders -------------------------------------------

Bytes encode_deposit_args(EscrowId id, std::uint64_t unlock_delay_ms,
                          const ByteArray<33>& btc_pubkey) {
  Writer w;
  w.u64le(id);
  w.u64le(unlock_delay_ms);
  w.bytes({btc_pubkey.data(), btc_pubkey.size()});
  return std::move(w).take();
}

Bytes encode_escrow_id_arg(EscrowId id) {
  Writer w;
  w.u64le(id);
  return std::move(w).take();
}

Bytes encode_open_dispute_args(EscrowId id, const SignedBinding& binding) {
  Writer w;
  w.u64le(id);
  w.bytes_with_len(binding.serialize());
  return std::move(w).take();
}

Bytes encode_merchant_evidence_args(EscrowId id, const std::vector<btc::BlockHeader>& headers) {
  Writer w;
  w.u64le(id);
  w.bytes_with_len(btc::serialize_headers(headers));
  return std::move(w).take();
}

Bytes encode_customer_evidence_args(EscrowId id, const std::vector<btc::BlockHeader>& headers,
                                    const btc::TxInclusionProof& proof,
                                    std::uint32_t header_index) {
  Writer w;
  w.u64le(id);
  w.bytes_with_len(btc::serialize_headers(headers));
  w.bytes_with_len(proof.serialize());
  w.u32le(header_index);
  return std::move(w).take();
}

Bytes encode_checkpoint_args(const std::vector<btc::BlockHeader>& headers) {
  Writer w;
  w.bytes_with_len(btc::serialize_headers(headers));
  return std::move(w).take();
}

}  // namespace btcfast::core
