// PayJudger: the escrow + dispute-judgment smart contract at the heart of
// BTCFast, running on the PSC chain through the metered host interface.
//
// Life cycle per escrow:
//   EMPTY --deposit--> ACTIVE --openDispute--> DISPUTED --judge--> ACTIVE/EMPTY
//                        \--withdraw (after unlock, no dispute)--> EMPTY
//
// The PoW-based payment judgment (paper §judgment): during a dispute each
// side submits Bitcoin header chains anchored at the checkpoint recorded
// when the dispute opened. Every header's proof-of-work is verified
// in-contract (gas-metered SHA-256d); the customer additionally proves
// SPV inclusion of the bound txid at depth >= required_depth. After the
// evidence window, judge() rules for the customer iff its proven chain is
// at least as heavy as the merchant's; otherwise the merchant is paid the
// bound compensation from the escrow collateral. Forging a winning chain
// requires out-mining the real Bitcoin network for required_depth blocks,
// which is exactly the k-confirmation security bound.
#pragma once

#include <cstdint>

#include "btc/header.h"
#include "btc/spv.h"
#include "btcfast/protocol.h"
#include "psc/chain.h"

namespace btcfast::core {

/// Contract parameters fixed at deployment.
struct PayJudgerConfig {
  crypto::U256 pow_limit;              ///< max (easiest) target accepted in evidence
  btc::BlockHash initial_checkpoint{}; ///< trusted BTC block hash at deployment
  std::uint32_t required_depth = 6;    ///< k: inclusion depth the customer must prove
  std::uint64_t evidence_window_ms = 2 * 60 * 60 * 1000;  ///< dispute evidence period
  psc::Value min_collateral = 1'000'000;
  psc::Value dispute_bond = 10'000;    ///< posted by the merchant, forfeited if it loses
};

/// Escrow state machine values (stored in the kState slot).
enum class EscrowState : std::uint64_t {
  kEmpty = 0,
  kActive = 1,
  kDisputed = 2,
};

/// Decoded view of an escrow record (see PayJudger::read_escrow).
struct EscrowView {
  EscrowState state = EscrowState::kEmpty;
  psc::Address customer{};
  psc::Value collateral = 0;
  psc::Value reserved = 0;  ///< sum of on-chain payment reservations
  std::uint64_t unlock_time_ms = 0;
  ByteArray<33> customer_btc_key{};
  // Dispute-phase fields (valid when state == kDisputed):
  psc::Address dispute_merchant{};
  psc::Value dispute_compensation = 0;
  std::uint64_t dispute_deadline_ms = 0;
  btc::Txid disputed_txid{};
  btc::BlockHash dispute_anchor{};
  crypto::U256 merchant_work;
  crypto::U256 customer_work;
  bool customer_proved = false;
};

/// Seam for the dispute subsystem's shared header index: supplies the
/// *unmetered* phase-1 double-SHA digests of evidence headers, replacing
/// the contract's own thread-pool hashing sweep. Implementations must
/// return exactly sha256d(serialize(header)) for each input header — the
/// metered phase-2 walk (link checks, target checks, gas charges, PoW
/// comparison) is untouched, so verdicts and gas stay byte-identical by
/// construction ("verify once, charge always").
class HeaderDigestProvider {
 public:
  virtual ~HeaderDigestProvider() = default;
  /// Fill `out[i]` with sha256d_80(serialize(headers[i])). `out` has
  /// headers.size() slots already allocated.
  virtual void batch_digests(const std::vector<btc::BlockHeader>& headers,
                             crypto::Sha256Digest* out) = 0;
};

/// The contract. Methods (dispatched by name, args via Writer encoding):
///   deposit(escrow_id u64, unlock_delay_ms u64, btc_pubkey 33B)   [payable]
///   topUp(escrow_id u64)                                          [payable]
///   withdraw(escrow_id u64)
///   reservePayment(escrow_id u64, signed_binding len-prefixed)
///   releaseReservation(escrow_id u64, signed_binding len-prefixed)
///   openDispute(escrow_id u64, signed_binding len-prefixed)       [payable: bond]
///   submitMerchantEvidence(escrow_id u64, headers)
///   submitCustomerEvidence(escrow_id u64, headers, proof, index u32)
///   judge(escrow_id u64)
///   updateCheckpoint(headers)
///   getEscrow(escrow_id u64) -> packed EscrowView        [view]
///   getCheckpoint() -> hash 32B, height u64              [view]
class PayJudger final : public psc::Contract {
 public:
  explicit PayJudger(PayJudgerConfig config);

  [[nodiscard]] Status call(psc::HostContext& host, const std::string& method, ByteSpan args,
                            Bytes* ret) override;

  [[nodiscard]] const PayJudgerConfig& config() const noexcept { return config_; }

  /// Decode a getEscrow() return payload.
  [[nodiscard]] static std::optional<EscrowView> decode_escrow_view(ByteSpan data);

  /// Install (or clear, with nullptr) the phase-1 digest provider. Not
  /// owned; the caller must detach before destroying the provider. Gas
  /// metering and verdicts are independent of whether one is set.
  void set_digest_provider(HeaderDigestProvider* provider) noexcept {
    digest_provider_ = provider;
  }
  [[nodiscard]] HeaderDigestProvider* digest_provider() const noexcept {
    return digest_provider_;
  }

 private:
  Status deposit(psc::HostContext& host, ByteSpan args);
  Status top_up(psc::HostContext& host, ByteSpan args);
  Status withdraw(psc::HostContext& host, ByteSpan args);
  Status reserve_payment(psc::HostContext& host, ByteSpan args);
  Status release_reservation(psc::HostContext& host, ByteSpan args);
  Status open_dispute(psc::HostContext& host, ByteSpan args);
  Status submit_merchant_evidence(psc::HostContext& host, ByteSpan args);
  Status submit_customer_evidence(psc::HostContext& host, ByteSpan args);
  Status judge(psc::HostContext& host, ByteSpan args);
  Status update_checkpoint(psc::HostContext& host, ByteSpan args);
  Status get_escrow(psc::HostContext& host, ByteSpan args, Bytes* ret);
  Status get_checkpoint(psc::HostContext& host, Bytes* ret);

  /// Gas-metered header-chain verification (the contract-side mirror of
  /// btc::verify_header_chain). Returns total work on success.
  [[nodiscard]] Result<btc::HeaderChainSummary> verify_evidence_chain(
      psc::HostContext& host, const btc::BlockHash& anchor,
      const std::vector<btc::BlockHeader>& headers);

  PayJudgerConfig config_;
  HeaderDigestProvider* digest_provider_ = nullptr;
};

/// Argument encoders (client-side helpers mirrored by the contract).
[[nodiscard]] Bytes encode_deposit_args(EscrowId id, std::uint64_t unlock_delay_ms,
                                        const ByteArray<33>& btc_pubkey);
[[nodiscard]] Bytes encode_escrow_id_arg(EscrowId id);
[[nodiscard]] Bytes encode_open_dispute_args(EscrowId id, const SignedBinding& binding);
[[nodiscard]] Bytes encode_merchant_evidence_args(EscrowId id,
                                                  const std::vector<btc::BlockHeader>& headers);
[[nodiscard]] Bytes encode_customer_evidence_args(EscrowId id,
                                                  const std::vector<btc::BlockHeader>& headers,
                                                  const btc::TxInclusionProof& proof,
                                                  std::uint32_t header_index);
[[nodiscard]] Bytes encode_checkpoint_args(const std::vector<btc::BlockHeader>& headers);

}  // namespace btcfast::core
