#include "btcfast/protocol.h"

#include "crypto/sigcache.h"

namespace btcfast::core {
namespace {

constexpr char kBindingDomain[] = "btcfast/payment-binding/v1";

}  // namespace

const char* describe(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "accepted";
    case RejectReason::kInvoiceExpired: return "invoice-expired";
    case RejectReason::kWrongMerchant: return "wrong-merchant";
    case RejectReason::kCompensationBelowInvoice: return "compensation-below-invoice";
    case RejectReason::kBindingExpiresTooSoon: return "binding-expires-too-soon";
    case RejectReason::kTxidMismatch: return "txid-mismatch";
    case RejectReason::kUnderpayment: return "underpayment";
    case RejectReason::kEscrowLookupFailed: return "escrow-lookup-failed";
    case RejectReason::kEscrowNotActive: return "escrow-not-active";
    case RejectReason::kInsufficientCollateral: return "insufficient-collateral";
    case RejectReason::kEscrowUnlocksTooSoon: return "escrow-unlocks-too-soon";
    case RejectReason::kBadCustomerKey: return "bad-customer-key";
    case RejectReason::kBindingSigInvalid: return "binding-sig-invalid";
    case RejectReason::kMalformedTx: return "malformed-tx";
    case RejectReason::kInputMissing: return "input-missing";
    case RejectReason::kInputConflict: return "input-conflict";
    case RejectReason::kInputSigInvalid: return "input-sig-invalid";
    case RejectReason::kValueInflation: return "value-inflation";
    case RejectReason::kPendingLimit: return "pending-limit";
    case RejectReason::kExposureCap: return "exposure-cap";
    case RejectReason::kMalformedFrame: return "malformed-frame";
    case RejectReason::kUnknownInvoice: return "unknown-invoice";
    case RejectReason::kOverloaded: return "overloaded";
    case RejectReason::kMaxReason: break;
  }
  return "unknown";
}

Bytes PaymentBinding::serialize() const {
  Writer w;
  w.u64le(escrow_id);
  w.bytes({btc_txid.bytes.data(), btc_txid.bytes.size()});
  w.u64le(compensation);
  w.bytes({merchant.bytes.data(), merchant.bytes.size()});
  w.u64le(expiry_ms);
  w.u64le(nonce);
  return std::move(w).take();
}

std::optional<PaymentBinding> PaymentBinding::deserialize(ByteSpan data) {
  Reader r(data);
  PaymentBinding b;
  auto escrow = r.u64le();
  auto txid = r.bytes(32);
  auto comp = r.u64le();
  auto merchant = r.bytes(20);
  auto expiry = r.u64le();
  auto nonce = r.u64le();
  if (!escrow || !txid || !comp || !merchant || !expiry || !nonce || !r.at_end()) {
    return std::nullopt;
  }
  b.escrow_id = *escrow;
  b.btc_txid.bytes = to_array<32>(*txid);
  b.compensation = *comp;
  b.merchant.bytes = to_array<20>(*merchant);
  b.expiry_ms = *expiry;
  b.nonce = *nonce;
  return b;
}

crypto::Sha256Digest PaymentBinding::signing_digest() const {
  Writer w;
  w.bytes(as_bytes(std::string(kBindingDomain)));
  w.bytes(serialize());
  return crypto::sha256(w.data());
}

Bytes SignedBinding::serialize() const {
  Writer w;
  w.bytes_with_len(binding.serialize());
  w.bytes({customer_sig.data(), customer_sig.size()});
  return std::move(w).take();
}

std::optional<SignedBinding> SignedBinding::deserialize(ByteSpan data) {
  Reader r(data);
  auto body = r.bytes_with_len(1024);
  auto sig = r.bytes(64);
  if (!body || !sig || !r.at_end()) return std::nullopt;
  auto binding = PaymentBinding::deserialize(*body);
  if (!binding) return std::nullopt;
  SignedBinding out;
  out.binding = *binding;
  out.customer_sig = to_array<64>(*sig);
  return out;
}

bool SignedBinding::verify(const crypto::PublicKey& customer_key) const {
  // Cached: the merchant checks this binding at intake and PayJudger
  // re-checks the identical triple on dispute — the second check is a
  // hash lookup.
  return crypto::ecdsa_verify_cached(&crypto::SigCache::global(), customer_key,
                                     binding.signing_digest(),
                                     {customer_sig.data(), customer_sig.size()});
}

Bytes Invoice::serialize() const {
  Writer w;
  w.u64le(invoice_id);
  w.i64le(amount_sat);
  w.u64le(compensation);
  w.bytes({pay_to.dest.bytes.data(), pay_to.dest.bytes.size()});
  w.bytes({merchant_psc.bytes.data(), merchant_psc.bytes.size()});
  w.u64le(expires_at_ms);
  return std::move(w).take();
}

std::optional<Invoice> Invoice::deserialize(ByteSpan data) {
  Reader r(data);
  auto id = r.u64le();
  auto amount = r.i64le();
  auto comp = r.u64le();
  auto pay_to = r.bytes(20);
  auto merchant = r.bytes(20);
  auto expires = r.u64le();
  if (!id || !amount || !comp || !pay_to || !merchant || !expires || !r.at_end()) {
    return std::nullopt;
  }
  Invoice inv;
  inv.invoice_id = *id;
  inv.amount_sat = *amount;
  inv.compensation = *comp;
  inv.pay_to.dest.bytes = to_array<20>(*pay_to);
  inv.merchant_psc.bytes = to_array<20>(*merchant);
  inv.expires_at_ms = *expires;
  return inv;
}

Bytes FastPayPackage::serialize() const {
  Writer w;
  w.bytes_with_len(payment_tx.serialize());
  w.bytes_with_len(binding.serialize());
  return std::move(w).take();
}

std::optional<FastPayPackage> FastPayPackage::deserialize(ByteSpan data) {
  Reader r(data);
  auto tx_bytes = r.bytes_with_len();
  auto binding_bytes = r.bytes_with_len(2048);
  if (!tx_bytes || !binding_bytes || !r.at_end()) return std::nullopt;
  auto tx = btc::Transaction::deserialize(*tx_bytes);
  auto binding = SignedBinding::deserialize(*binding_bytes);
  if (!tx || !binding) return std::nullopt;
  FastPayPackage out;
  out.payment_tx = *tx;
  out.binding = *binding;
  return out;
}

}  // namespace btcfast::core
