// BTCFast protocol messages. The heart of the fast path is the
// PaymentBinding: a customer-signed statement tying a specific Bitcoin
// txid to an escrow on the PSC chain. The merchant accepts a payment the
// instant it holds (a) a well-formed BTC transaction paying it and (b) a
// valid binding whose escrow covers the amount — no on-chain interaction.
#pragma once

#include <cstdint>
#include <optional>

#include "btc/script.h"
#include "btc/transaction.h"
#include "common/serialize.h"
#include "crypto/ecdsa.h"
#include "psc/address.h"
#include "psc/state.h"

namespace btcfast::core {

using EscrowId = std::uint64_t;

/// The customer's signed commitment: "if BTC tx `btc_txid` fails to
/// confirm, escrow `escrow_id` owes `compensation` to `merchant`".
struct PaymentBinding {
  EscrowId escrow_id = 0;
  btc::Txid btc_txid{};
  psc::Value compensation = 0;   ///< PSC-chain units paid out if judged for merchant
  psc::Address merchant{};       ///< payout destination on the PSC chain
  std::uint64_t expiry_ms = 0;   ///< dispute must open before this (sim ms)
  std::uint64_t nonce = 0;       ///< uniquifies bindings within an escrow

  [[nodiscard]] bool operator==(const PaymentBinding& o) const noexcept = default;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<PaymentBinding> deserialize(ByteSpan data);

  /// Digest the customer signs (domain-separated).
  [[nodiscard]] crypto::Sha256Digest signing_digest() const;
};

/// A binding plus the customer's signature over it.
struct SignedBinding {
  PaymentBinding binding;
  ByteArray<64> customer_sig{};

  [[nodiscard]] bool operator==(const SignedBinding& o) const noexcept = default;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<SignedBinding> deserialize(ByteSpan data);

  /// Verify against the customer's binding key (the key registered in the
  /// escrow at deposit time).
  [[nodiscard]] bool verify(const crypto::PublicKey& customer_key) const;
};

/// What a merchant quotes to a customer.
struct Invoice {
  std::uint64_t invoice_id = 0;
  btc::Amount amount_sat = 0;
  psc::Value compensation = 0;        ///< required binding compensation
  btc::ScriptPubKey pay_to{};         ///< merchant's BTC destination
  psc::Address merchant_psc{};        ///< merchant's PSC payout address
  std::uint64_t expires_at_ms = 0;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<Invoice> deserialize(ByteSpan data);
};

/// The fast-pay message: everything the merchant needs to decide.
struct FastPayPackage {
  btc::Transaction payment_tx;
  SignedBinding binding;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<FastPayPackage> deserialize(ByteSpan data);
};

/// Machine-readable rejection codes for the fast-pay acceptance path.
/// The human-oriented `reason` string stays authoritative for logs; the
/// code is what the gateway wire protocol and per-reason counters key on.
enum class RejectReason : std::uint16_t {
  kNone = 0,  ///< accepted (no rejection)
  // Invoice / binding conformance.
  kInvoiceExpired = 1,
  kWrongMerchant = 2,
  kCompensationBelowInvoice = 3,
  kBindingExpiresTooSoon = 4,
  kTxidMismatch = 5,
  kUnderpayment = 6,
  // Escrow health.
  kEscrowLookupFailed = 7,
  kEscrowNotActive = 8,
  kInsufficientCollateral = 9,
  kEscrowUnlocksTooSoon = 10,
  kBadCustomerKey = 11,
  // Signatures and transaction validity.
  kBindingSigInvalid = 12,
  kMalformedTx = 13,
  kInputMissing = 14,
  kInputConflict = 15,
  kInputSigInvalid = 16,
  kValueInflation = 17,
  // Merchant-side admission limits (MerchantService::Config).
  kPendingLimit = 18,
  kExposureCap = 19,
  // Gateway serving-layer codes.
  kMalformedFrame = 20,
  kUnknownInvoice = 21,
  kOverloaded = 22,  ///< shed with RetryAfter; resubmit later
  kMaxReason = 23,   ///< array-sizing sentinel, never returned
};

/// Stable short slug for a rejection code (stats keys, wire diagnostics).
[[nodiscard]] const char* describe(RejectReason reason) noexcept;

/// Merchant-side acceptance decision with diagnostics.
struct AcceptDecision {
  bool accepted = false;
  std::string reason;                       ///< populated on rejection
  RejectReason code = RejectReason::kNone;  ///< machine-readable mirror of `reason`
};

}  // namespace btcfast::core
