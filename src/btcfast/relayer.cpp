#include "btcfast/relayer.h"

namespace btcfast::core {

Relayer::Relayer(sim::Node& btc_node, const psc::PscChain& psc, Config config)
    : btc_node_(btc_node), psc_(psc), config_(config) {}

std::optional<std::pair<btc::BlockHash, std::uint64_t>> Relayer::read_checkpoint() const {
  psc::PscTx q;
  q.from = config_.self_psc;
  q.to = config_.judger;
  q.method = "getCheckpoint";
  const psc::Receipt r = psc_.view_call(q);
  if (!r.success) return std::nullopt;
  Reader reader({r.return_data.data(), r.return_data.size()});
  auto hash = reader.bytes(32);
  auto height = reader.u64le();
  if (!hash || !height) return std::nullopt;
  btc::BlockHash h;
  h.bytes = to_array<32>(*hash);
  return std::make_pair(h, *height);
}

std::optional<psc::PscTx> Relayer::make_update_tx() const {
  const auto checkpoint = read_checkpoint();
  if (!checkpoint) return std::nullopt;
  const auto& [cp_hash, cp_height_claimed] = *checkpoint;

  const btc::Chain& chain = btc_node_.chain();
  const auto cp_height = chain.block_height(cp_hash);
  if (!cp_height || !chain.is_on_active_chain(cp_hash)) {
    // The contract's checkpoint fell off our active chain (deep reorg past
    // the checkpoint). Real deployments handle this with checkpoint
    // finality (lag >> max credible reorg); the relayer just waits.
    return std::nullopt;
  }

  if (chain.height() < *cp_height + config_.lag_blocks) return std::nullopt;
  const std::uint32_t target_tip = chain.height() - config_.lag_blocks;
  if (target_tip <= *cp_height) return std::nullopt;

  std::uint32_t count = target_tip - *cp_height;
  if (count > config_.max_batch) count = config_.max_batch;
  const auto headers = chain.header_range(*cp_height + 1, count);
  if (headers.empty()) return std::nullopt;

  psc::PscTx tx;
  tx.from = config_.self_psc;
  tx.to = config_.judger;
  tx.method = "updateCheckpoint";
  tx.args = encode_checkpoint_args(headers);
  tx.gas_limit = 10'000'000;
  return tx;
}

}  // namespace btcfast::core
