// The header relayer: keeps PayJudger's Bitcoin checkpoint fresh by
// submitting header chains. The checkpoint deliberately lags the tip so
// that freshly disputed transactions confirm *after* the dispute anchor.
#pragma once

#include <optional>

#include "btcfast/payjudger.h"
#include "btcsim/node.h"
#include "psc/chain.h"

namespace btcfast::core {

class Relayer {
 public:
  struct Config {
    psc::Address judger{};
    psc::Address self_psc{};
    std::uint32_t lag_blocks = 30;       ///< stay this far behind the BTC tip
    std::uint32_t max_batch = 100;       ///< headers per update tx
  };

  Relayer(sim::Node& btc_node, const psc::PscChain& psc, Config config);

  /// Builds the next updateCheckpoint tx, or nullopt when the contract is
  /// already within `lag_blocks` of the relayer's tip.
  [[nodiscard]] std::optional<psc::PscTx> make_update_tx() const;

  /// The contract's current checkpoint (hash, height) via a view call.
  [[nodiscard]] std::optional<std::pair<btc::BlockHash, std::uint64_t>> read_checkpoint() const;

 private:
  sim::Node& btc_node_;
  const psc::PscChain& psc_;
  Config config_;
};

}  // namespace btcfast::core
