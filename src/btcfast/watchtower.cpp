#include "btcfast/watchtower.h"

namespace btcfast::core {

Watchtower::Watchtower(sim::Node& btc_node, const psc::PscChain& psc, Config config)
    : btc_node_(btc_node), psc_(psc), config_(config) {}

void Watchtower::protect(EscrowId escrow) { protected_.insert(escrow); }

void Watchtower::restore(const store::StateImage& image) {
  logged_disputes_.clear();
  for (const auto& d : image.open_disputes) {
    btc::Txid txid;
    txid.bytes = d.txid;
    logged_disputes_.emplace(d.escrow_id, txid);
  }
}

std::optional<EscrowView> Watchtower::fetch_escrow(EscrowId id) const {
  psc::PscTx q;
  q.from = config_.self_psc;
  q.to = config_.judger;
  q.method = "getEscrow";
  q.args = encode_escrow_id_arg(id);
  const psc::Receipt r = psc_.view_call(q);
  if (!r.success) return std::nullopt;
  return PayJudger::decode_escrow_view(r.return_data);
}

void Watchtower::note_dispute_open(EscrowId id, const EscrowView& view) {
  const auto it = logged_disputes_.find(id);
  if (it != logged_disputes_.end()) {
    if (it->second == view.disputed_txid) return;  // already on the log
    // Same escrow, new txid: the earlier dispute must have closed while
    // we only saw the end state. Retire it before opening the new one.
    note_dispute_closed(id);
  }
  if (store_ != nullptr) {
    store::StoreRecord rec;
    rec.kind = store::RecordKind::kDisputeOpen;
    rec.escrow_id = id;
    rec.amount = view.dispute_compensation;
    rec.expires_at_ms = view.dispute_deadline_ms;
    rec.txid = view.disputed_txid.bytes;
    if (store_->append(rec)) (void)store_->commit();
  }
  logged_disputes_[id] = view.disputed_txid;
}

void Watchtower::note_dispute_closed(EscrowId id) {
  const auto it = logged_disputes_.find(id);
  if (it == logged_disputes_.end()) return;
  if (store_ != nullptr) {
    store::StoreRecord rec;
    rec.kind = store::RecordKind::kDisputeResolve;
    rec.escrow_id = id;
    rec.txid = it->second.bytes;
    if (store_->append(rec)) (void)store_->commit();
  }
  logged_disputes_.erase(it);
}

std::vector<psc::PscTx> Watchtower::poll(std::uint64_t now_ms) {
  std::vector<psc::PscTx> actions;
  for (const EscrowId id : protected_) {
    const auto view = fetch_escrow(id);
    if (!view) continue;

    // Settle the filed-defense ledger against observed contract state:
    // a defense counts only once the contract shows proven customer work
    // at or past what we filed. (judge() leaves kCustomerWork in place,
    // so this also settles correctly after the dispute closes.)
    const auto pending = pending_filed_.find(id);
    if (pending != pending_filed_.end() && view->customer_proved &&
        view->customer_work >= pending->second) {
      ++defenses_filed_;
      pending_filed_.erase(pending);
    }

    if (view->state != EscrowState::kDisputed) {
      note_dispute_closed(id);  // dispute we logged has since resolved
      pending_filed_.erase(id); // anything still unsettled never landed
      filed_tips_.erase(id);
      continue;
    }
    note_dispute_open(id, *view);

    if (now_ms > view->dispute_deadline_ms) {
      // Window closed: push for judgment so the escrow unlocks.
      psc::PscTx tx;
      tx.from = config_.self_psc;
      tx.to = config_.judger;
      tx.method = "judge";
      tx.args = encode_escrow_id_arg(id);
      actions.push_back(std::move(tx));
      continue;
    }

    // Lazily learn the contract's judgment depth (getParams view).
    if (required_depth_ == 0) {
      psc::PscTx q;
      q.from = config_.self_psc;
      q.to = config_.judger;
      q.method = "getParams";
      const auto r = psc_.view_call(q);
      if (r.success) {
        Reader reader({r.return_data.data(), r.return_data.size()});
        if (auto depth = reader.u32le()) required_depth_ = *depth;
      }
      if (required_depth_ == 0) continue;
    }

    auto evidence = build_inclusion_evidence(btc_node_.chain(), view->dispute_anchor,
                                             view->disputed_txid, required_depth_);
    if (!evidence) continue;  // tx not (yet) provable from our view

    // Only submit if our chain outweighs what the contract already holds.
    crypto::U256 our_work;
    for (const auto& h : evidence->headers) our_work += btc::header_work(h.bits);
    if (view->customer_proved && our_work <= view->customer_work) continue;

    // Identical evidence already in flight (the contract just hasn't
    // caught up yet): refiling it would burn gas every poll. The tip
    // hash commits to the whole chain, and the proof is a deterministic
    // function of the chain, so same tip == byte-identical args.
    const btc::BlockHash tip = evidence->headers.back().hash();
    const auto last = filed_tips_.find(id);
    if (last != filed_tips_.end() && last->second == tip) continue;

    psc::PscTx tx;
    tx.from = config_.self_psc;
    tx.to = config_.judger;
    tx.method = "submitCustomerEvidence";
    tx.args = encode_customer_evidence_args(id, evidence->headers, evidence->proof,
                                            evidence->header_index);
    tx.gas_limit = 8'000'000;
    actions.push_back(std::move(tx));
    filed_tips_[id] = tip;
    pending_filed_[id] = our_work;
  }

  maybe_advance_checkpoint(&actions);

  // One deduped parallel hashing sweep over every defense in this batch:
  // under a storm, the evidence chains overlap almost entirely, so the
  // contract's phase-1 hashing hits a warm index when these execute.
  if (prehasher_ != nullptr && !actions.empty()) (void)prehasher_->prehash(actions);
  return actions;
}

void Watchtower::maybe_advance_checkpoint(std::vector<psc::PscTx>* actions) {
  if (checkpoint_source_ == nullptr) return;
  psc::PscTx q;
  q.from = config_.self_psc;
  q.to = config_.judger;
  q.method = "getCheckpoint";
  const psc::Receipt r = psc_.view_call(q);
  if (!r.success) return;
  Reader reader({r.return_data.data(), r.return_data.size()});
  const auto raw = reader.bytes(32);
  if (!raw) return;
  btc::BlockHash current;
  std::copy(raw->begin(), raw->end(), current.bytes.begin());

  const auto advance = checkpoint_source_->checkpoint_advance(current);
  if (advance.empty()) return;
  const btc::BlockHash tip = advance.back().hash();
  if (tip == last_checkpoint_filed_) return;  // already in flight

  psc::PscTx tx;
  tx.from = config_.self_psc;
  tx.to = config_.judger;
  tx.method = "updateCheckpoint";
  tx.args = encode_checkpoint_args(advance);
  tx.gas_limit = 8'000'000;
  actions->push_back(std::move(tx));
  last_checkpoint_filed_ = tip;
}

}  // namespace btcfast::core
