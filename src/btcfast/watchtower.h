// Watchtower: defends customers who are offline during a dispute. The
// customer registers its escrow; the tower watches the PSC chain for
// DISPUTED states and, because customer evidence is *anyone-submittable*
// (the contract only checks the proof, not the sender), files the SPV
// inclusion defense from its own Bitcoin view. This closes the paper's
// implicit availability assumption: without a defender, a wrongful
// dispute against an offline customer would succeed by default.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcsim/node.h"
#include "psc/chain.h"
#include "store/recovery.h"

namespace btcfast::core {

class Watchtower {
 public:
  struct Config {
    psc::Address judger{};
    psc::Address self_psc{};  ///< pays the gas for defenses it files
  };

  Watchtower(sim::Node& btc_node, const psc::PscChain& psc, Config config);

  /// Customer subscribes an escrow for protection.
  void protect(EscrowId escrow);
  void unprotect(EscrowId escrow) { protected_.erase(escrow); }
  [[nodiscard]] bool is_protecting(EscrowId escrow) const { return protected_.contains(escrow); }

  /// Periodic scan: for every protected escrow in DISPUTED state, build
  /// the strongest available defense (headers + inclusion proof) and/or a
  /// judge request once the window closes. Returns the PSC txs to submit.
  [[nodiscard]] std::vector<psc::PscTx> poll(std::uint64_t now_ms);

  [[nodiscard]] std::size_t defenses_filed() const noexcept { return defenses_filed_; }

  /// Attach a durable store: poll() then logs dispute-open when a
  /// protected escrow enters DISPUTED and dispute-resolve when it
  /// leaves, making the dispute queue crash-recoverable. Not owned.
  void attach_store(store::DurableStore* store) noexcept { store_ = store; }

  /// Seed the dispute tracking from a recovered image after a restart:
  /// disputes recorded open survive the crash, so the resolve edge is
  /// still logged exactly once when the contract moves on.
  void restore(const store::StateImage& image);

  [[nodiscard]] std::size_t open_disputes_tracked() const noexcept {
    return logged_disputes_.size();
  }

 private:
  [[nodiscard]] std::optional<EscrowView> fetch_escrow(EscrowId id) const;
  void note_dispute_open(EscrowId id, const EscrowView& view);
  void note_dispute_closed(EscrowId id);

  sim::Node& btc_node_;
  const psc::PscChain& psc_;
  Config config_;
  std::unordered_set<EscrowId> protected_;
  std::size_t defenses_filed_ = 0;
  std::uint32_t required_depth_ = 0;  ///< learned from getParams on first use
  store::DurableStore* store_ = nullptr;
  /// Disputes we logged open and haven't seen resolve (escrow -> txid).
  std::unordered_map<EscrowId, btc::Txid> logged_disputes_;
};

}  // namespace btcfast::core
