// Watchtower: defends customers who are offline during a dispute. The
// customer registers its escrow; the tower watches the PSC chain for
// DISPUTED states and, because customer evidence is *anyone-submittable*
// (the contract only checks the proof, not the sender), files the SPV
// inclusion defense from its own Bitcoin view. This closes the paper's
// implicit availability assumption: without a defender, a wrongful
// dispute against an offline customer would succeed by default.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btcfast/dispute_hooks.h"
#include "btcfast/evidence.h"
#include "btcfast/payjudger.h"
#include "btcsim/node.h"
#include "psc/chain.h"
#include "store/recovery.h"

namespace btcfast::core {

class Watchtower {
 public:
  struct Config {
    psc::Address judger{};
    psc::Address self_psc{};  ///< pays the gas for defenses it files
  };

  Watchtower(sim::Node& btc_node, const psc::PscChain& psc, Config config);

  /// Customer subscribes an escrow for protection.
  void protect(EscrowId escrow);
  void unprotect(EscrowId escrow) { protected_.erase(escrow); }
  [[nodiscard]] bool is_protecting(EscrowId escrow) const { return protected_.contains(escrow); }

  /// Periodic scan: for every protected escrow in DISPUTED state, build
  /// the strongest available defense (headers + inclusion proof) and/or a
  /// judge request once the window closes. Returns the PSC txs to submit.
  [[nodiscard]] std::vector<psc::PscTx> poll(std::uint64_t now_ms);

  /// Defenses the contract has actually accepted: counted when a later
  /// poll observes customer_proved with work at or past what we filed,
  /// never when the tx is merely created.
  [[nodiscard]] std::size_t defenses_filed() const noexcept { return defenses_filed_; }

  /// Attach the dispute storm engine's prehasher: poll() then sweeps the
  /// header chains of every defense it is about to return through the
  /// shared index in one deduped parallel pass. Not owned. Optional —
  /// results are identical without it, just slower under a storm.
  void attach_prehasher(EvidencePrehasher* prehasher) noexcept { prehasher_ = prehasher; }

  /// Attach a reorg-aware checkpoint source (dispute::HeaderSyncManager):
  /// poll() then also files updateCheckpoint transactions keeping the
  /// contract's dispute anchor fresh. Not owned.
  void attach_checkpoint_source(CheckpointSource* source) noexcept {
    checkpoint_source_ = source;
  }

  /// Attach a durable store: poll() then logs dispute-open when a
  /// protected escrow enters DISPUTED and dispute-resolve when it
  /// leaves, making the dispute queue crash-recoverable. Not owned.
  void attach_store(store::DurableStore* store) noexcept { store_ = store; }

  /// Seed the dispute tracking from a recovered image after a restart:
  /// disputes recorded open survive the crash, so the resolve edge is
  /// still logged exactly once when the contract moves on.
  void restore(const store::StateImage& image);

  [[nodiscard]] std::size_t open_disputes_tracked() const noexcept {
    return logged_disputes_.size();
  }

 private:
  [[nodiscard]] std::optional<EscrowView> fetch_escrow(EscrowId id) const;
  void note_dispute_open(EscrowId id, const EscrowView& view);
  void note_dispute_closed(EscrowId id);
  void maybe_advance_checkpoint(std::vector<psc::PscTx>* actions);

  sim::Node& btc_node_;
  const psc::PscChain& psc_;
  Config config_;
  std::unordered_set<EscrowId> protected_;
  std::size_t defenses_filed_ = 0;
  std::uint32_t required_depth_ = 0;  ///< learned from getParams on first use
  store::DurableStore* store_ = nullptr;
  EvidencePrehasher* prehasher_ = nullptr;
  CheckpointSource* checkpoint_source_ = nullptr;
  /// Disputes we logged open and haven't seen resolve (escrow -> txid).
  std::unordered_map<EscrowId, btc::Txid> logged_disputes_;
  /// Tip hash of the last defense filed per escrow: byte-identical
  /// evidence (same tip => same chain, proof, and args) is not refiled.
  std::unordered_map<EscrowId, btc::BlockHash> filed_tips_;
  /// Work of defenses filed but not yet observed on the contract; moved
  /// into defenses_filed_ when a poll sees the contract catch up.
  std::unordered_map<EscrowId, crypto::U256> pending_filed_;
  /// Last checkpoint-advance tip filed, to suppress duplicates.
  btc::BlockHash last_checkpoint_filed_{};
};

}  // namespace btcfast::core
