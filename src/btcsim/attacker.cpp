#include "btcsim/attacker.h"

#include "common/log.h"

namespace btcfast::sim {

DoubleSpendAttacker::DoubleSpendAttacker(Network& network, NodeId node_id, Config config,
                                         btc::ScriptPubKey payout, std::uint64_t seed)
    : network_(network), node_id_(node_id), config_(config), payout_(payout), rng_(seed) {}

void DoubleSpendAttacker::begin_attack(const btc::Transaction& payment_tx,
                                       const btc::Transaction& conflict_tx) {
  active_ = true;
  outcome_.reset();
  payment_txid_ = payment_tx.txid();
  conflict_tx_ = conflict_tx;
  fork_height_ = network_.node(node_id_).chain().height();
  secret_blocks_.clear();
  ++generation_;
  schedule_next_block();
  schedule_tick();
}

void DoubleSpendAttacker::schedule_tick() {
  // Poll for release/give-up between discoveries (public blocks arrive
  // asynchronously via the network).
  const SimTime period =
      static_cast<SimTime>(network_.params().block_interval_s) * 1000 / 10 + 1;
  const std::uint64_t gen = generation_;
  network_.simulator().schedule_in(period, [this, gen] {
    if (gen != generation_ || !active_) return;
    tick();
    if (active_) schedule_tick();
  });
}

void DoubleSpendAttacker::schedule_next_block() {
  const double mean_ms =
      static_cast<double>(network_.params().block_interval_s) * 1000.0 / config_.share;
  const SimTime delay = static_cast<SimTime>(rng_.exponential(mean_ms)) + 1;
  const std::uint64_t gen = generation_;
  network_.simulator().schedule_in(delay, [this, gen] {
    if (gen == generation_) on_discovery();
  });
}

void DoubleSpendAttacker::on_discovery() {
  if (!active_) return;

  Node& node = network_.node(node_id_);
  const btc::Chain& chain = node.chain();

  // Parent: tip of the secret branch, or the public fork point.
  btc::BlockHash parent;
  std::uint32_t parent_time;
  if (secret_blocks_.empty()) {
    parent = *chain.hash_at_height(fork_height_);
    parent_time = chain.block_at_height(fork_height_)->header.time;
  } else {
    parent = secret_blocks_.back().hash();
    parent_time = secret_blocks_.back().header.time;
  }

  btc::Block b;
  b.header.version = 1;
  b.header.prev_hash = parent;
  b.header.time =
      std::max(static_cast<std::uint32_t>(network_.simulator().now() / 1000), parent_time + 1);
  b.header.bits = chain.next_work_required(parent);

  btc::Transaction cb;
  btc::TxIn in;
  in.prevout.index = 0xffffffff;
  in.sequence = 0x80000000u + static_cast<std::uint32_t>(secret_blocks_.size());
  cb.inputs.push_back(in);
  cb.outputs.push_back(btc::TxOut{network_.params().subsidy, payout_});
  b.txs.push_back(cb);
  if (secret_blocks_.empty()) b.txs.push_back(conflict_tx_);  // the double spend

  if (btc::mine_block(b, network_.params())) {
    secret_blocks_.push_back(std::move(b));
    BTCFAST_LOG(LogLevel::kDebug, "attacker")
        << "secret block " << secret_blocks_.size() << " (public +" << public_progress() << ")";
  }
  tick();
  if (active_) schedule_next_block();
}

std::uint32_t DoubleSpendAttacker::public_progress() const {
  const auto h = network_.node(node_id_).chain().height();
  return h > fork_height_ ? h - fork_height_ : 0;
}

void DoubleSpendAttacker::tick() {
  if (!active_) return;
  const Node& node = network_.node(node_id_);
  const std::uint32_t pub = public_progress();
  const std::uint32_t secret = static_cast<std::uint32_t>(secret_blocks_.size());

  // Merchant acceptance proxy: payment has >= z confirmations publicly.
  const bool merchant_paid = node.chain().confirmations(payment_txid_) >=
                             config_.target_confirmations;

  if (merchant_paid && secret > pub) {
    release();
    return;
  }
  if (pub > secret && pub - secret >= static_cast<std::uint32_t>(config_.give_up_deficit)) {
    give_up();
  }
}

void DoubleSpendAttacker::release() {
  active_ = false;
  ++generation_;
  Outcome out;
  out.attack_released = true;
  out.secret_blocks = static_cast<std::uint32_t>(secret_blocks_.size());
  out.finished_at = network_.simulator().now();
  outcome_ = out;

  Node& node = network_.node(node_id_);
  for (const auto& b : secret_blocks_) node.receive_block(b);  // relays network-wide
  secret_blocks_.clear();
}

void DoubleSpendAttacker::give_up() {
  active_ = false;
  ++generation_;
  Outcome out;
  out.gave_up = true;
  out.secret_blocks = static_cast<std::uint32_t>(secret_blocks_.size());
  out.finished_at = network_.simulator().now();
  outcome_ = out;
  secret_blocks_.clear();
}

}  // namespace btcfast::sim
