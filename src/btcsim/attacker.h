// The double-spend attacker: broadcasts a payment publicly while secretly
// mining a conflicting branch (Rosenfeld's race model). If the secret
// branch overtakes the public chain after the merchant accepts, releasing
// it reorgs the payment away — the exact hazard BTCFast defends against.
#pragma once

#include <optional>
#include <vector>

#include "btc/pow.h"
#include "btcsim/network.h"
#include "common/rng.h"

namespace btcfast::sim {

class DoubleSpendAttacker {
 public:
  struct Config {
    double share = 0.1;        ///< q: fraction of global hash rate
    std::uint32_t target_confirmations = 6;  ///< z the merchant waits for
    int give_up_deficit = 20;  ///< abandon when this far behind
  };

  struct Outcome {
    bool attack_released = false;  ///< secret chain was published
    bool gave_up = false;
    std::uint32_t secret_blocks = 0;
    SimTime finished_at = 0;
  };

  DoubleSpendAttacker(Network& network, NodeId node_id, Config config,
                      btc::ScriptPubKey payout, std::uint64_t seed);

  /// Start the attack: `payment_tx` was just broadcast publicly; the
  /// attacker forks from its current tip and secretly mines blocks whose
  /// first carries `conflict_tx` (same inputs, attacker-controlled output).
  void begin_attack(const btc::Transaction& payment_tx, const btc::Transaction& conflict_tx);

  /// Poll-driven progress: the scenario calls this on every simulated
  /// event boundary (cheap). Checks release / give-up conditions.
  void tick();

  [[nodiscard]] bool attack_active() const noexcept { return active_; }
  [[nodiscard]] const std::optional<Outcome>& outcome() const noexcept { return outcome_; }

 private:
  void schedule_next_block();
  void schedule_tick();
  void on_discovery();
  [[nodiscard]] std::uint32_t public_progress() const;  ///< public blocks since fork
  void release();
  void give_up();

  Network& network_;
  NodeId node_id_;
  Config config_;
  btc::ScriptPubKey payout_;
  Rng rng_;

  bool active_ = false;
  std::optional<Outcome> outcome_;
  btc::Txid payment_txid_{};
  btc::Transaction conflict_tx_{};
  std::uint32_t fork_height_ = 0;
  std::vector<btc::Block> secret_blocks_;
  std::uint64_t generation_ = 0;  ///< invalidates stale scheduled discoveries
};

}  // namespace btcfast::sim
