#include "btcsim/event.h"

namespace btcfast::sim {

void Simulator::schedule_at(SimTime when, Action action) {
  if (when < now()) when = now();
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move via const_cast is UB-adjacent, so
  // copy the small wrapper out before popping.
  Event ev = queue_.top();
  queue_.pop();
  clock_.advance_to(ev.time);
  ev.action();
  return true;
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) step();
  clock_.advance_to(deadline);
}

void Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    if (++n >= max_events) break;
  }
}

}  // namespace btcfast::sim
