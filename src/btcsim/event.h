// Discrete-event simulator: a time-ordered queue of callbacks driving a
// simulated clock. Single-threaded and deterministic given a fixed
// schedule and RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace btcfast::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return clock_.now(); }
  [[nodiscard]] const SimClock& clock() const noexcept { return clock_; }

  /// Schedule an action at an absolute simulated time (>= now).
  void schedule_at(SimTime when, Action action);
  /// Schedule an action `delay` ms from now.
  void schedule_in(SimTime delay, Action action) { schedule_at(now() + delay, std::move(action)); }

  /// Execute the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue is empty or the clock passes `deadline`.
  /// Events scheduled past the deadline remain queued.
  void run_until(SimTime deadline);

  /// Run until the queue drains (bounded by `max_events` as a runaway stop).
  void run_all(std::size_t max_events = 10'000'000);

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  ///< FIFO tie-break for equal timestamps
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace btcfast::sim
