#include "btcsim/miner.h"

namespace btcfast::sim {

MinerProcess::MinerProcess(Network& network, NodeId node_id, double share,
                           btc::ScriptPubKey payout, std::uint64_t seed)
    : network_(network), node_id_(node_id), share_(share), payout_(payout), rng_(seed) {}

void MinerProcess::start() {
  running_ = true;
  schedule_next();
}

void MinerProcess::schedule_next() {
  // Mean time between this miner's blocks: interval / share.
  const double mean_ms =
      static_cast<double>(network_.params().block_interval_s) * 1000.0 / share_;
  const SimTime delay = static_cast<SimTime>(rng_.exponential(mean_ms)) + 1;
  network_.simulator().schedule_in(delay, [this] { on_discovery(); });
}

void MinerProcess::on_discovery() {
  if (!running_) return;
  Node& node = network_.node(node_id_);
  btc::Block block = node.assemble_block(
      payout_, static_cast<std::uint32_t>(network_.simulator().now() / 1000));
  if (btc::mine_block(block, network_.params())) {
    ++blocks_found_;
    node.receive_block(block);  // relays to peers
  }
  schedule_next();
}

}  // namespace btcfast::sim
