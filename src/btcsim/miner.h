// An honest miner process: block discoveries follow an exponential
// inter-arrival distribution scaled by the miner's hash-rate share; on a
// discovery it assembles a block from its node's mempool, grinds real PoW
// (cheap at regtest difficulty) and broadcasts.
#pragma once

#include "btc/pow.h"
#include "btcsim/network.h"
#include "common/rng.h"

namespace btcfast::sim {

class MinerProcess {
 public:
  /// `share` in (0,1]: fraction of global hash rate. Global rate is
  /// calibrated so the *network* mines a block every params.block_interval.
  MinerProcess(Network& network, NodeId node_id, double share, btc::ScriptPubKey payout,
               std::uint64_t seed);

  /// Begin mining (schedules the first discovery).
  void start();
  /// Stop scheduling further blocks (pending discovery still fires but is
  /// discarded).
  void stop() noexcept { running_ = false; }

  [[nodiscard]] std::uint64_t blocks_found() const noexcept { return blocks_found_; }
  [[nodiscard]] double share() const noexcept { return share_; }

 private:
  void schedule_next();
  void on_discovery();

  Network& network_;
  NodeId node_id_;
  double share_;
  btc::ScriptPubKey payout_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t blocks_found_ = 0;
};

}  // namespace btcfast::sim
