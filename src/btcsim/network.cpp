#include "btcsim/network.h"

namespace btcfast::sim {

namespace {
// splitmix64 step — used to derive independent sub-stream seeds from the
// single scenario seed so each Rng starts decorrelated.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Network::Network(Simulator& sim, btc::ChainParams params, NetworkConfig config,
                 std::uint64_t seed)
    : sim_(sim),
      params_(std::move(params)),
      config_(config),
      fault_rng_(derive_seed(seed, 0)),
      latency_rng_(derive_seed(seed, 1)),
      sync_rng_(derive_seed(seed, 2)) {}

NodeId Network::add_node() {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, params_, this));
  return id;
}

SimTime Network::sample_latency() {
  SimTime lat = config_.base_latency;
  if (config_.jitter > 0) {
    lat += static_cast<SimTime>(latency_rng_.below(static_cast<std::uint64_t>(config_.jitter)));
  }
  return lat;
}

void Network::notify(NetEvent::Kind kind, NodeId from, NodeId to) {
  if (observer_) observer_(NetEvent{kind, from, to, sim_.now()});
}

void Network::set_isolated(NodeId id, bool isolated) {
  if (isolated) {
    isolated_.insert(id);
    notify(NetEvent::Kind::kNodeIsolated, id, id);
  } else {
    isolated_.erase(id);
    notify(NetEvent::Kind::kNodeReleased, id, id);
  }
}

void Network::broadcast_tx(NodeId from, const btc::Transaction& tx) {
  if (isolated_.contains(from)) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId to = static_cast<NodeId>(i);
    if (to == from) continue;
    if (isolated_.contains(to)) continue;
    if (config_.loss_rate > 0 && fault_rng_.chance(config_.loss_rate)) {
      ++drops_;
      notify(NetEvent::Kind::kTxDropped, from, to);
      continue;
    }
    Node* dest = nodes_[i].get();
    int copies = 1;
    if (config_.dup_rate > 0 && fault_rng_.chance(config_.dup_rate)) {
      ++duplicates_;
      notify(NetEvent::Kind::kTxDuplicated, from, to);
      ++copies;
    }
    for (int c = 0; c < copies; ++c) {
      ++deliveries_;
      sim_.schedule_in(sample_latency(), [this, from, to, dest, tx] {
        dest->receive_tx(tx);
        notify(NetEvent::Kind::kTxDelivered, from, to);
      });
    }
  }
}

void Network::broadcast_block(NodeId from, const btc::Block& block) {
  if (isolated_.contains(from)) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId to = static_cast<NodeId>(i);
    if (to == from) continue;
    if (isolated_.contains(to)) continue;
    if (config_.loss_rate > 0 && fault_rng_.chance(config_.loss_rate)) {
      ++drops_;
      notify(NetEvent::Kind::kBlockDropped, from, to);
      continue;
    }
    Node* dest = nodes_[i].get();
    int copies = 1;
    if (config_.dup_rate > 0 && fault_rng_.chance(config_.dup_rate)) {
      ++duplicates_;
      notify(NetEvent::Kind::kBlockDuplicated, from, to);
      ++copies;
    }
    for (int c = 0; c < copies; ++c) {
      ++deliveries_;
      sim_.schedule_in(sample_latency(), [this, from, to, dest, block] {
        dest->receive_block(block);
        notify(NetEvent::Kind::kBlockDelivered, from, to);
      });
    }
  }
}

void Network::enable_sync(SimTime period) {
  sync_period_ = period;
  sim_.schedule_in(period, [this] { sync_round(); });
}

void Network::sync_round() {
  if (nodes_.size() >= 2) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (isolated_.contains(static_cast<NodeId>(i))) continue;
      std::size_t j = static_cast<std::size_t>(sync_rng_.below(nodes_.size() - 1));
      if (j >= i) ++j;  // any peer but self
      if (isolated_.contains(static_cast<NodeId>(j))) continue;
      nodes_[i]->catch_up_from(*nodes_[j]);
    }
  }
  if (sync_period_ > 0) sim_.schedule_in(sync_period_, [this] { sync_round(); });
}

}  // namespace btcfast::sim
