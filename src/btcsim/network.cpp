#include "btcsim/network.h"

namespace btcfast::sim {

Network::Network(Simulator& sim, btc::ChainParams params, NetworkConfig config,
                 std::uint64_t seed)
    : sim_(sim), params_(std::move(params)), config_(config), rng_(seed) {}

NodeId Network::add_node() {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, params_, this));
  return id;
}

SimTime Network::sample_latency() {
  SimTime lat = config_.base_latency;
  if (config_.jitter > 0) lat += static_cast<SimTime>(rng_.below(static_cast<std::uint64_t>(config_.jitter)));
  return lat;
}

void Network::set_isolated(NodeId id, bool isolated) {
  if (isolated) {
    isolated_.insert(id);
  } else {
    isolated_.erase(id);
  }
}

void Network::broadcast_tx(NodeId from, const btc::Transaction& tx) {
  if (isolated_.contains(from)) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (static_cast<NodeId>(i) == from) continue;
    if (isolated_.contains(static_cast<NodeId>(i))) continue;
    if (config_.loss_rate > 0 && rng_.chance(config_.loss_rate)) {
      ++drops_;
      continue;
    }
    Node* dest = nodes_[i].get();
    ++deliveries_;
    sim_.schedule_in(sample_latency(), [dest, tx] { dest->receive_tx(tx); });
  }
}

void Network::broadcast_block(NodeId from, const btc::Block& block) {
  if (isolated_.contains(from)) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (static_cast<NodeId>(i) == from) continue;
    if (isolated_.contains(static_cast<NodeId>(i))) continue;
    if (config_.loss_rate > 0 && rng_.chance(config_.loss_rate)) {
      ++drops_;
      continue;
    }
    Node* dest = nodes_[i].get();
    ++deliveries_;
    sim_.schedule_in(sample_latency(), [dest, block] { dest->receive_block(block); });
  }
}

void Network::enable_sync(SimTime period) {
  sync_period_ = period;
  sim_.schedule_in(period, [this] { sync_round(); });
}

void Network::sync_round() {
  if (nodes_.size() >= 2) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (isolated_.contains(static_cast<NodeId>(i))) continue;
      std::size_t j = static_cast<std::size_t>(rng_.below(nodes_.size() - 1));
      if (j >= i) ++j;  // any peer but self
      if (isolated_.contains(static_cast<NodeId>(j))) continue;
      nodes_[i]->catch_up_from(*nodes_[j]);
    }
  }
  if (sync_period_ > 0) sim_.schedule_in(sync_period_, [this] { sync_round(); });
}

}  // namespace btcfast::sim
