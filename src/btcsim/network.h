// The simulated P2P network: owns the nodes and delivers broadcasts with
// configurable propagation latency (base + jitter).
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "btcsim/event.h"
#include "btcsim/node.h"
#include "common/rng.h"

namespace btcfast::sim {

struct NetworkConfig {
  SimTime base_latency = 50;    ///< ms, one hop
  SimTime jitter = 50;          ///< uniform extra delay in [0, jitter)
  /// Probability each individual delivery is silently dropped (failure
  /// injection). Pair with enable_sync() so nodes re-converge.
  double loss_rate = 0.0;
};

class Network {
 public:
  Network(Simulator& sim, btc::ChainParams params, NetworkConfig config, std::uint64_t seed);

  /// Create a node; returns its id. Topology is a full mesh.
  NodeId add_node();

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Relay a transaction from `from` to every other node after latency.
  void broadcast_tx(NodeId from, const btc::Transaction& tx);
  /// Relay a block likewise.
  void broadcast_block(NodeId from, const btc::Block& block);

  /// Inject a tx/block at a node at the current time (origin of traffic).
  void submit_tx(NodeId at, const btc::Transaction& tx) { node(at).receive_tx(tx); }
  void submit_block(NodeId at, const btc::Block& block) { node(at).receive_block(block); }

  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const btc::ChainParams& params() const noexcept { return params_; }

  /// Messages delivered so far (diagnostics).
  [[nodiscard]] std::uint64_t deliveries() const noexcept { return deliveries_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }

  /// Start periodic anti-entropy: every `period` each node pulls missing
  /// blocks from one random peer. Makes lossy networks converge.
  void enable_sync(SimTime period);

  /// Eclipse a node: it neither receives nor relays anything until
  /// released (direct submit_* at the node itself still works, modelling
  /// the eclipsing adversary's private feed).
  void set_isolated(NodeId id, bool isolated);
  [[nodiscard]] bool is_isolated(NodeId id) const {
    return isolated_.contains(id);
  }

 private:
  [[nodiscard]] SimTime sample_latency();
  void sync_round();

  Simulator& sim_;
  btc::ChainParams params_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t drops_ = 0;
  SimTime sync_period_ = 0;
  std::unordered_set<NodeId> isolated_;
};

}  // namespace btcfast::sim
