// The simulated P2P network: owns the nodes and delivers broadcasts with
// configurable propagation latency (base + jitter), plus failure
// injection (loss, duplication) and node isolation.
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "btcsim/event.h"
#include "btcsim/node.h"
#include "common/rng.h"

namespace btcfast::sim {

struct NetworkConfig {
  SimTime base_latency = 50;    ///< ms, one hop
  SimTime jitter = 50;          ///< uniform extra delay in [0, jitter)
  /// Probability each individual delivery is silently dropped (failure
  /// injection). Pair with enable_sync() so nodes re-converge.
  double loss_rate = 0.0;
  /// Probability each delivery is additionally delivered a second time
  /// after an independent latency sample (at-least-once networks; nodes
  /// must dedupe).
  double dup_rate = 0.0;
};

/// One observable network-layer event, reported to the registered
/// observer. Deliveries fire when the message arrives at `to` (after
/// latency); drops and duplicates fire at send time.
struct NetEvent {
  enum class Kind {
    kTxDelivered,
    kBlockDelivered,
    kTxDropped,
    kBlockDropped,
    kTxDuplicated,
    kBlockDuplicated,
    kNodeIsolated,
    kNodeReleased,
  };
  Kind kind;
  NodeId from = -1;
  NodeId to = -1;
  SimTime at = 0;
};

class Network {
 public:
  using Observer = std::function<void(const NetEvent&)>;

  Network(Simulator& sim, btc::ChainParams params, NetworkConfig config, std::uint64_t seed);

  /// Create a node; returns its id. Topology is a full mesh.
  NodeId add_node();

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Relay a transaction from `from` to every other node after latency.
  void broadcast_tx(NodeId from, const btc::Transaction& tx);
  /// Relay a block likewise.
  void broadcast_block(NodeId from, const btc::Block& block);

  /// Inject a tx/block at a node at the current time (origin of traffic).
  void submit_tx(NodeId at, const btc::Transaction& tx) { node(at).receive_tx(tx); }
  void submit_block(NodeId at, const btc::Block& block) { node(at).receive_block(block); }

  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const btc::ChainParams& params() const noexcept { return params_; }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }

  /// Messages delivered so far (diagnostics).
  [[nodiscard]] std::uint64_t deliveries() const noexcept { return deliveries_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t duplicates() const noexcept { return duplicates_; }

  /// Start periodic anti-entropy: every `period` each node pulls missing
  /// blocks from one random peer. Makes lossy networks converge.
  void enable_sync(SimTime period);

  /// Runtime failure-injection control (scenario fuzzing changes rates at
  /// epoch boundaries). The fault stream is independent of the latency
  /// stream, so toggling a rate mid-run never perturbs the latency
  /// schedule of unaffected deliveries.
  void set_loss_rate(double p) noexcept { config_.loss_rate = p; }
  void set_dup_rate(double p) noexcept { config_.dup_rate = p; }

  /// Eclipse a node: it neither receives nor relays anything until
  /// released (direct submit_* at the node itself still works, modelling
  /// the eclipsing adversary's private feed).
  void set_isolated(NodeId id, bool isolated);
  [[nodiscard]] bool is_isolated(NodeId id) const {
    return isolated_.contains(id);
  }

  /// Register a hook invoked on every network-layer event (delivery,
  /// drop, duplicate, isolation change). The testkit invariant harness
  /// evaluates protocol invariants from here. Pass nullptr to clear.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

 private:
  [[nodiscard]] SimTime sample_latency();
  void sync_round();
  void notify(NetEvent::Kind kind, NodeId from, NodeId to);

  Simulator& sim_;
  btc::ChainParams params_;
  NetworkConfig config_;
  // Independent deterministic streams, all derived from the scenario
  // seed: faults (loss/dup draws), latency jitter, and anti-entropy peer
  // selection. Separate streams keep runs byte-identical when one
  // consumer's draw count changes (e.g. a loss-rate epoch toggles) and
  // carry no platform dependence (xoshiro256**, never std::random_device
  // or wall-clock seeding).
  Rng fault_rng_;
  Rng latency_rng_;
  Rng sync_rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  SimTime sync_period_ = 0;
  std::unordered_set<NodeId> isolated_;
  Observer observer_;
};

}  // namespace btcfast::sim
