#include "btcsim/node.h"

#include "btcsim/network.h"
#include "common/log.h"

namespace btcfast::sim {

Node::Node(NodeId id, btc::ChainParams params, Network* network)
    : id_(id), chain_(std::move(params)), network_(network) {
  seen_blocks_.insert(chain_.tip_hash());
}

void Node::receive_tx(const btc::Transaction& tx) {
  const btc::Txid id = tx.txid();
  if (!seen_txs_.insert(id).second) return;

  const Status s =
      mempool_.accept(tx, chain_.utxo(), chain_.height(), chain_.params().coinbase_maturity);
  if (!s.ok()) {
    BTCFAST_LOG(LogLevel::kDebug, "node") << "node " << id_ << " rejected tx "
                                          << id.to_string().substr(0, 12) << ": "
                                          << s.error().to_string();
    return;
  }
  if (network_ != nullptr) network_->broadcast_tx(id_, tx);
}

void Node::receive_block(const btc::Block& block) {
  const btc::BlockHash hash = block.hash();
  if (!seen_blocks_.insert(hash).second) return;

  std::string why;
  const btc::SubmitResult r = chain_.submit_block(block, &why);
  switch (r) {
    case btc::SubmitResult::kOrphan:
      // Park until the parent shows up; allow re-delivery then.
      seen_blocks_.erase(hash);
      orphans_[block.header.prev_hash].push_back(block);
      return;
    case btc::SubmitResult::kInvalid:
      BTCFAST_LOG(LogLevel::kDebug, "node")
          << "node " << id_ << " rejected block: " << why;
      return;
    case btc::SubmitResult::kDuplicate:
      return;
    case btc::SubmitResult::kActiveTip: {
      // Evict confirmed/conflicting txs; resurrect reorg losers.
      mempool_.remove_for_block(block);
      auto disconnected = chain_.take_disconnected_txs();
      if (!disconnected.empty()) {
        ++reorg_count_;
        for (const auto& tx : disconnected) {
          (void)mempool_.accept(tx, chain_.utxo(), chain_.height(),
                                chain_.params().coinbase_maturity);
        }
      }
      break;
    }
    case btc::SubmitResult::kSideChain:
      break;
  }

  if (network_ != nullptr) network_->broadcast_block(id_, block);
  try_connect_orphans(hash);
}

void Node::catch_up_from(const Node& peer) {
  const btc::Chain& pc = peer.chain();
  if (pc.tip_work() <= chain_.tip_work()) return;

  // Collect peer blocks from its tip down to our first known ancestor.
  std::vector<btc::Block> missing;
  btc::BlockHash cursor = pc.tip_hash();
  while (!chain_.get_block(cursor).has_value()) {
    const auto b = pc.get_block(cursor);
    if (!b) break;  // defensive; the peer's active chain is contiguous
    cursor = b->header.prev_hash;
    missing.push_back(*b);
  }
  for (auto it = missing.rbegin(); it != missing.rend(); ++it) receive_block(*it);
}

void Node::try_connect_orphans(const btc::BlockHash& parent) {
  auto it = orphans_.find(parent);
  if (it == orphans_.end()) return;
  const std::vector<btc::Block> children = std::move(it->second);
  orphans_.erase(it);
  for (const auto& child : children) receive_block(child);
}

btc::Block Node::assemble_block(const btc::ScriptPubKey& coinbase_dest, std::uint32_t time_s) {
  btc::Block b;
  b.header.version = 1;
  b.header.prev_hash = chain_.tip_hash();
  b.header.time = std::max(time_s, chain_.tip_header().time + 1);
  b.header.bits = chain_.next_work_required(b.header.prev_hash);

  btc::Transaction cb;
  btc::TxIn in;
  in.prevout.index = 0xffffffff;
  // Salt with height and node id so coinbase txids are unique per miner.
  in.sequence = (chain_.height() + 1) * 1000 + static_cast<std::uint32_t>(id_);
  cb.inputs.push_back(in);
  cb.outputs.push_back(btc::TxOut{chain_.params().subsidy, coinbase_dest});
  b.txs.push_back(cb);

  // Greedy: include every mempool tx that still validates in order.
  // (Chained mempool spends are excluded by mempool policy, so a single
  // pass against the confirmed UTXO set is sound.)
  for (const auto& tx : mempool_.snapshot()) b.txs.push_back(tx);

  b.seal_merkle_root();
  return b;
}

}  // namespace btcfast::sim
