// A simulated Bitcoin node: full chain + mempool + relay behaviour +
// orphan management. Nodes communicate only through the Network, which
// imposes propagation latency.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btc/chain.h"
#include "btc/mempool.h"
#include "btc/script.h"

namespace btcfast::sim {

class Network;

using NodeId = int;

class Node {
 public:
  Node(NodeId id, btc::ChainParams params, Network* network);

  /// Deliver a transaction (validates into the mempool; relays if new).
  void receive_tx(const btc::Transaction& tx);
  /// Deliver a block (submits to the chain; relays; unblocks orphans;
  /// re-validates transactions disconnected by reorgs).
  void receive_block(const btc::Block& block);

  /// Build a block template on the current tip from mempool contents.
  [[nodiscard]] btc::Block assemble_block(const btc::ScriptPubKey& coinbase_dest,
                                          std::uint32_t time_s);

  /// Anti-entropy pull: if the peer's chain has more work, fetch its
  /// missing blocks (recovery path for lossy networks).
  void catch_up_from(const Node& peer);

  [[nodiscard]] btc::Chain& chain() noexcept { return chain_; }
  [[nodiscard]] const btc::Chain& chain() const noexcept { return chain_; }
  [[nodiscard]] btc::Mempool& mempool() noexcept { return mempool_; }
  [[nodiscard]] const btc::Mempool& mempool() const noexcept { return mempool_; }
  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Counters for experiment reporting.
  [[nodiscard]] std::size_t blocks_seen() const noexcept { return seen_blocks_.size(); }
  [[nodiscard]] std::size_t reorgs() const noexcept { return reorg_count_; }

 private:
  void try_connect_orphans(const btc::BlockHash& parent);

  NodeId id_;
  btc::Chain chain_;
  btc::Mempool mempool_;
  Network* network_;  ///< non-owning; the Network owns the nodes

  std::unordered_set<btc::BlockHash, btc::Hash256Hasher> seen_blocks_;
  std::unordered_set<btc::Txid, btc::Hash256Hasher> seen_txs_;
  std::unordered_map<btc::BlockHash, std::vector<btc::Block>, btc::Hash256Hasher> orphans_;
  std::size_t reorg_count_ = 0;
};

}  // namespace btcfast::sim
