#include "btcsim/race.h"

#include <cmath>

namespace btcfast::sim {

bool simulate_double_spend_race(Rng& rng, const RaceConfig& config) {
  // Phase 1: merchant waits for z honest blocks; attacker mines secretly.
  std::uint32_t honest = 0;
  std::uint32_t attacker = 0;
  while (honest < config.z) {
    if (rng.chance(config.q)) {
      ++attacker;
    } else {
      ++honest;
    }
  }
  // z == 0 means the merchant accepted instantly; the attacker still must
  // get ahead of the honest chain (which starts even).

  // Phase 2: gambler's ruin — attacker wins by getting strictly ahead.
  for (;;) {
    if (attacker > honest) return true;
    if (honest - attacker >= static_cast<std::uint32_t>(config.give_up_deficit)) return false;
    if (rng.chance(config.q)) {
      ++attacker;
    } else {
      ++honest;
    }
  }
}

MonteCarloResult estimate_double_spend_probability(const RaceConfig& config,
                                                   std::uint64_t trials, std::uint64_t seed) {
  Rng rng(seed);
  std::uint64_t wins = 0;
  for (std::uint64_t i = 0; i < trials; ++i) {
    if (simulate_double_spend_race(rng, config)) ++wins;
  }
  MonteCarloResult r;
  r.trials = trials;
  r.success_rate = static_cast<double>(wins) / static_cast<double>(trials);
  r.stderr_ = std::sqrt(r.success_rate * (1.0 - r.success_rate) /
                        static_cast<double>(trials));
  return r;
}

}  // namespace btcfast::sim
