// Lightweight block-race model for Monte-Carlo estimation of the
// double-spend success probability (E3): abstracts mining to Bernoulli
// trials (each next block is the attacker's with probability q), which is
// exact for exponential miners and lets us run millions of trials. The
// full network simulator (attacker.h) exercises the same race with real
// blocks; this model validates the closed forms in src/analysis.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace btcfast::sim {

struct RaceConfig {
  double q = 0.1;          ///< attacker hash share (0 < q < 1)
  std::uint32_t z = 6;     ///< confirmations the merchant waits for
  int give_up_deficit = 100;  ///< attacker abandons this far behind
};

/// One race: returns true iff the attacker's chain strictly overtakes the
/// honest chain after the merchant has seen z confirmations.
[[nodiscard]] bool simulate_double_spend_race(Rng& rng, const RaceConfig& config);

struct MonteCarloResult {
  double success_rate = 0.0;
  double stderr_ = 0.0;  ///< standard error of the estimate
  std::uint64_t trials = 0;
};

/// Repeated races; deterministic for a given seed.
[[nodiscard]] MonteCarloResult estimate_double_spend_probability(const RaceConfig& config,
                                                                 std::uint64_t trials,
                                                                 std::uint64_t seed);

}  // namespace btcfast::sim
