#include "btcsim/scenario.h"

#include <map>
#include <mutex>

#include "btc/pow.h"

namespace btcfast::sim {

Party Party::make(std::uint64_t seed) {
  // Derive a deterministic, valid scalar from the seed.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (;;) {
    const auto raw = rng.bytes<32>();
    auto key = crypto::PrivateKey::from_bytes({raw.data(), raw.size()});
    if (!key) continue;
    auto pub = crypto::PublicKey::derive(*key);
    return Party{*key, pub, btc::ScriptPubKey{btc::PubKeyHash::of(pub)}};
  }
}

std::vector<btc::Block> build_funding_chain(const btc::ChainParams& params,
                                            const std::vector<btc::ScriptPubKey>& payouts,
                                            std::uint32_t blocks_each) {
  // The result is a pure function of (params, payouts, blocks_each), and
  // mining it is the single most expensive part of standing up a
  // deployment (~10ms of PoW per block at regtest difficulty). Scenario
  // fuzzing builds hundreds of deployments over the same key material, so
  // memoize process-wide.
  std::string memo_key;
  {
    Writer w;
    for (const auto& word : params.pow_limit.w) w.u64le(word);
    w.u32le(params.genesis_bits);
    w.u64le(static_cast<std::uint64_t>(params.subsidy));
    w.u32le(params.coinbase_maturity);
    w.u32le(params.retarget_interval);
    w.u32le(blocks_each);
    for (const auto& script : payouts) {
      w.bytes({script.dest.bytes.data(), script.dest.bytes.size()});
    }
    const Bytes packed = std::move(w).take();
    memo_key.assign(packed.begin(), packed.end());
  }
  static std::mutex memo_mutex;
  static std::map<std::string, std::vector<btc::Block>> memo;
  {
    std::lock_guard<std::mutex> lock(memo_mutex);
    if (auto it = memo.find(memo_key); it != memo.end()) return it->second;
  }

  btc::Chain scratch(params);
  std::vector<btc::Block> out;

  auto mine_to = [&](const btc::ScriptPubKey& dest) {
    btc::Block b;
    b.header.version = 1;
    b.header.prev_hash = scratch.tip_hash();
    b.header.time = scratch.tip_header().time + 1;
    b.header.bits = scratch.next_work_required(b.header.prev_hash);

    btc::Transaction cb;
    btc::TxIn in;
    in.prevout.index = 0xffffffff;
    in.sequence = scratch.height() + 1;
    cb.inputs.push_back(in);
    cb.outputs.push_back(btc::TxOut{params.subsidy, dest});
    b.txs.push_back(cb);
    if (!btc::mine_block(b, params)) return;
    if (scratch.submit_block(b) == btc::SubmitResult::kActiveTip) out.push_back(std::move(b));
  };

  for (std::uint32_t round = 0; round < blocks_each; ++round) {
    for (const auto& script : payouts) mine_to(script);
  }
  // Maturity padding to an unspendable destination.
  for (std::uint32_t i = 0; i < params.coinbase_maturity; ++i) mine_to(btc::ScriptPubKey{});
  {
    std::lock_guard<std::mutex> lock(memo_mutex);
    memo.emplace(std::move(memo_key), out);
  }
  return out;
}

void seed_node(Node& node, const std::vector<btc::Block>& blocks) {
  for (const auto& b : blocks) node.receive_block(b);
}

std::vector<std::pair<btc::OutPoint, btc::Coin>> find_spendable(
    const btc::Chain& chain, const btc::ScriptPubKey& script) {
  std::vector<std::pair<btc::OutPoint, btc::Coin>> out;
  for (const auto& [op, coin] : chain.utxo()) {
    if (coin.out.script_pubkey != script) continue;
    if (coin.coinbase && chain.height() + 1 < coin.height + chain.params().coinbase_maturity) {
      continue;
    }
    out.emplace_back(op, coin);
  }
  return out;
}

btc::Transaction build_payment(const Party& from, const btc::OutPoint& coin,
                               btc::Amount coin_value, const btc::ScriptPubKey& to,
                               btc::Amount amount, btc::Amount fee) {
  btc::Transaction tx;
  tx.inputs.push_back(btc::TxIn{coin, {}, 0xffffffff});
  tx.outputs.push_back(btc::TxOut{amount, to});
  const btc::Amount change = coin_value - amount - fee;
  if (change > 0) tx.outputs.push_back(btc::TxOut{change, from.script});
  btc::sign_input(tx, 0, from.key, from.script);
  return tx;
}

DoubleSpendExperimentResult run_double_spend_experiment(
    const DoubleSpendExperimentConfig& config) {
  const btc::ChainParams params = btc::ChainParams::regtest();
  Simulator sim;
  Network net(sim, params, config.net, config.seed * 7919 + 13);

  // Parties.
  const Party customer = Party::make(config.seed * 101 + 1);  // also the attacker
  const Party merchant = Party::make(config.seed * 101 + 2);
  const Party miner_party = Party::make(config.seed * 101 + 3);

  // Nodes: honest miners + attacker node + merchant observer.
  std::vector<NodeId> miner_nodes;
  for (std::uint32_t i = 0; i < config.honest_miners; ++i) miner_nodes.push_back(net.add_node());
  const NodeId attacker_node = net.add_node();
  const NodeId merchant_node = net.add_node();

  // Fund the customer with one mature coinbase.
  const auto funding = build_funding_chain(params, {customer.script}, 1);
  for (std::size_t i = 0; i < net.size(); ++i) seed_node(net.node(static_cast<NodeId>(i)), funding);
  sim.run_all();  // drain any relay chatter from seeding

  // Locate the customer's coin.
  const auto coins = find_spendable(net.node(merchant_node).chain(), customer.script);
  DoubleSpendExperimentResult result;
  if (coins.empty()) return result;
  const auto [coin_op, coin] = coins.front();

  // The payment to the merchant, and the conflicting self-spend.
  const btc::Amount pay_amount = coin.out.value / 2;
  const btc::Transaction payment =
      build_payment(customer, coin_op, coin.out.value, merchant.script, pay_amount);
  const btc::Transaction conflict =
      build_payment(customer, coin_op, coin.out.value, customer.script, pay_amount, 2000);
  const btc::Txid payment_id = payment.txid();
  const btc::Txid conflict_id = conflict.txid();

  // Honest mining power: (1 - q) split across the honest miners.
  std::vector<std::unique_ptr<MinerProcess>> miners;
  const double honest_share = (1.0 - config.attacker_share) /
                              static_cast<double>(config.honest_miners);
  for (std::uint32_t i = 0; i < config.honest_miners; ++i) {
    miners.push_back(std::make_unique<MinerProcess>(net, miner_nodes[i], honest_share,
                                                    miner_party.script,
                                                    config.seed * 997 + i));
    miners.back()->start();
  }

  DoubleSpendAttacker::Config acfg;
  acfg.share = config.attacker_share;
  acfg.target_confirmations = config.merchant_confirmations;
  acfg.give_up_deficit = config.give_up_deficit;
  DoubleSpendAttacker attacker(net, attacker_node, acfg, customer.script,
                               config.seed * 31337 + 5);

  // t=0: the customer broadcasts the payment and the secret race begins.
  net.submit_tx(attacker_node, payment);
  attacker.begin_attack(payment, conflict);

  // Watch the merchant's view.
  bool accepted = false;
  SimTime accept_time = 0;
  std::function<void()> watch = [&] {
    const auto conf = net.node(merchant_node).chain().confirmations(payment_id);
    if (!accepted && conf >= config.merchant_confirmations) {
      accepted = true;
      accept_time = sim.now();
    }
    if (sim.now() < config.max_sim_time &&
        (attacker.attack_active() || !attacker.outcome().has_value() ||
         sim.now() < attacker.outcome()->finished_at + 30 * kMinute)) {
      sim.schedule_in(5 * kSecond, watch);
    }
  };
  sim.schedule_in(5 * kSecond, watch);

  sim.run_until(config.max_sim_time);

  for (auto& m : miners) m->stop();

  const btc::Chain& view = net.node(merchant_node).chain();
  result.merchant_accepted = accepted;
  result.merchant_accept_time = accept_time;
  result.attack_released = attacker.outcome() && attacker.outcome()->attack_released;
  result.payment_survives = view.confirmations(payment_id) > 0;
  result.double_spend_succeeded =
      view.confirmations(conflict_id) > 0 && accepted;
  result.final_height = view.height();
  result.merchant_reorgs = static_cast<std::uint32_t>(net.node(merchant_node).reorgs());
  return result;
}

}  // namespace btcfast::sim
