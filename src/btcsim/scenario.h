// Scenario plumbing: key material for protocol parties, funding-chain
// bootstrap, and a ready-made double-spend experiment wiring honest
// miners, an attacker, a merchant observer and a paying customer.
#pragma once

#include <optional>
#include <vector>

#include "btc/chain.h"
#include "btcsim/attacker.h"
#include "btcsim/miner.h"
#include "btcsim/network.h"

namespace btcfast::sim {

/// A protocol participant's Bitcoin key material.
struct Party {
  crypto::PrivateKey key;
  crypto::PublicKey pub;
  btc::ScriptPubKey script;

  /// Deterministic party from a seed (simulator convenience).
  [[nodiscard]] static Party make(std::uint64_t seed);
};

/// Builds a chain prefix of mined blocks paying `blocks_each` mature
/// coinbases to every script in `payouts` (plus maturity padding), for
/// seeding nodes with spendable funds.
[[nodiscard]] std::vector<btc::Block> build_funding_chain(
    const btc::ChainParams& params, const std::vector<btc::ScriptPubKey>& payouts,
    std::uint32_t blocks_each);

/// Feed a pre-built block sequence into a node without network relay.
void seed_node(Node& node, const std::vector<btc::Block>& blocks);

/// Spendable coins a party owns on a chain view.
[[nodiscard]] std::vector<std::pair<btc::OutPoint, btc::Coin>> find_spendable(
    const btc::Chain& chain, const btc::ScriptPubKey& script);

/// Builds a signed 1-in/1-out (plus optional change) payment.
[[nodiscard]] btc::Transaction build_payment(const Party& from, const btc::OutPoint& coin,
                                             btc::Amount coin_value,
                                             const btc::ScriptPubKey& to, btc::Amount amount,
                                             btc::Amount fee = 1000);

/// End-to-end double-spend experiment on the full network simulator.
struct DoubleSpendExperimentConfig {
  double attacker_share = 0.2;
  std::uint32_t honest_miners = 3;
  std::uint32_t merchant_confirmations = 2;  ///< z the merchant waits for
  int give_up_deficit = 12;
  SimTime max_sim_time = 400 * kMinute;
  std::uint64_t seed = 1;
  NetworkConfig net{};
};

struct DoubleSpendExperimentResult {
  bool merchant_accepted = false;       ///< payment reached z confirmations
  SimTime merchant_accept_time = 0;     ///< when it did
  bool attack_released = false;
  bool payment_survives = false;        ///< payment still confirmed at the end
  bool double_spend_succeeded = false;  ///< conflict tx confirmed instead
  std::uint32_t final_height = 0;
  std::uint32_t merchant_reorgs = 0;
};

/// Runs one full attack trial: customer pays merchant, attacker (who *is*
/// the customer) secretly mines the conflicting spend, merchant waits for
/// z confirmations. Reports who ended up with the money.
[[nodiscard]] DoubleSpendExperimentResult run_double_spend_experiment(
    const DoubleSpendExperimentConfig& config);

}  // namespace btcfast::sim
