// Byte-buffer aliases and small helpers shared by every module.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace btcfast {

/// Owning byte buffer.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only byte view.
using ByteSpan = std::span<const std::uint8_t>;

/// Non-owning writable byte view.
using MutByteSpan = std::span<std::uint8_t>;

/// Fixed-size byte array (hashes, keys, ...).
template <std::size_t N>
using ByteArray = std::array<std::uint8_t, N>;

/// Constant-time-ish equality for fixed buffers (not security critical in
/// the simulator, but avoids accidental short-circuit habits).
[[nodiscard]] inline bool equal_bytes(ByteSpan a, ByteSpan b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

/// Append a span to an owning buffer.
inline void append(Bytes& out, ByteSpan data) { out.insert(out.end(), data.begin(), data.end()); }

/// View a std::string's bytes.
[[nodiscard]] inline ByteSpan as_bytes(const std::string& s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Copy a span into a fixed array; the span must be exactly N bytes.
template <std::size_t N>
[[nodiscard]] ByteArray<N> to_array(ByteSpan s) {
  ByteArray<N> out{};
  if (s.size() == N) std::memcpy(out.data(), s.data(), N);
  return out;
}

}  // namespace btcfast
