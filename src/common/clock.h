// Simulated time. All protocol components take time as an input rather
// than reading a wall clock, which keeps runs deterministic and lets the
// event simulator compress hours of Bitcoin mining into milliseconds.
#pragma once

#include <cstdint>

namespace btcfast {

/// Simulated milliseconds since scenario start.
using SimTime = std::int64_t;

constexpr SimTime kMillisecond = 1;
constexpr SimTime kSecond = 1000;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

/// Monotone simulated clock. Owned by the event loop; components hold a
/// const reference for reads.
class SimClock {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Advance to an absolute time; never moves backwards.
  void advance_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }

 private:
  SimTime now_ = 0;
};

}  // namespace btcfast
