// Hex encoding/decoding helpers.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"

namespace btcfast {

/// Lower-case hex encoding of a byte span.
[[nodiscard]] std::string to_hex(ByteSpan data);

/// Hex encoding in byte-reversed order (Bitcoin's display convention for
/// txids and block hashes).
[[nodiscard]] std::string to_hex_reversed(ByteSpan data);

/// Decode a hex string (upper or lower case). Returns std::nullopt on any
/// malformed input (odd length, non-hex character).
[[nodiscard]] std::optional<Bytes> from_hex(const std::string& hex);

}  // namespace btcfast
