// Minimal leveled logger. Quiet by default so tests and benches stay
// clean; examples raise the level to narrate runs.
#pragma once

#include <sstream>
#include <string>

namespace btcfast {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold (process-wide; the simulator is single-threaded).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one line at the given level (no-op if below the threshold).
void log_line(LogLevel level, const std::string& component, const std::string& message);

/// Stream-style helper: LOG_AT(LogLevel::kInfo, "merchant") << "accepted " << txid;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, os_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace btcfast

#define BTCFAST_LOG(level, component) ::btcfast::LogStream((level), (component))
