// Minimal expected-style Result for protocol paths where failure is a
// normal outcome (rejected transaction, invalid evidence, ...). Exceptions
// remain for precondition violations at API boundaries.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace btcfast {

/// Error payload: a machine-checkable code plus human-readable detail.
struct Error {
  std::string code;    ///< stable identifier, e.g. "tx-conflict"
  std::string detail;  ///< free-form diagnostic

  [[nodiscard]] std::string to_string() const {
    return detail.empty() ? code : code + ": " + detail;
  }
};

/// Result<T>: either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error err) : v_(std::move(err)) {}  // NOLINT: implicit by design

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(std::move(v_));
  }
  [[nodiscard]] const Error& error() const& {
    if (ok()) throw std::logic_error("Result::error on value");
    return std::get<Error>(v_);
  }

  [[nodiscard]] T value_or(T fallback) const& { return ok() ? std::get<T>(v_) : std::move(fallback); }

 private:
  std::variant<T, Error> v_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : err_(std::move(err)), ok_(false) {}  // NOLINT: implicit by design

  [[nodiscard]] static Status success() { return {}; }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }
  [[nodiscard]] const Error& error() const {
    if (ok_) throw std::logic_error("Status::error on success");
    return err_;
  }

 private:
  Error err_{};
  bool ok_ = true;
};

/// Convenience factory.
[[nodiscard]] inline Error make_error(std::string code, std::string detail = {}) {
  return Error{std::move(code), std::move(detail)};
}

}  // namespace btcfast
