#include "common/rng.h"

#include <cmath>

namespace btcfast {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state (probability ~0 but cheap to rule out).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  // uniform() can return 0; log(0) is -inf, so nudge.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

void Rng::fill(MutByteSpan out) noexcept {
  std::size_t i = 0;
  while (i < out.size()) {
    const std::uint64_t v = next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

}  // namespace btcfast
