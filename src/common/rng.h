// Deterministic RNG (xoshiro256**) so every simulation run is
// reproducible from its seed. Not cryptographically secure — key
// generation in the simulator uses it deliberately for replayability.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace btcfast {

/// xoshiro256** with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform value in [0, bound) — bound must be nonzero.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Exponentially distributed sample with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Fill a buffer with pseudo-random bytes.
  void fill(MutByteSpan out) noexcept;

  /// Fixed-size random array.
  template <std::size_t N>
  [[nodiscard]] ByteArray<N> bytes() noexcept {
    ByteArray<N> a{};
    fill({a.data(), a.size()});
    return a;
  }

 private:
  std::uint64_t s_[4]{};
};

}  // namespace btcfast
