#include "common/serialize.h"

namespace btcfast {

void Writer::u16le(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32le(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64le(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u32be(std::uint32_t v) {
  for (int i = 3; i >= 0; --i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64be(std::uint64_t v) {
  for (int i = 7; i >= 0; --i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::varint(std::uint64_t v) {
  if (v < 0xfd) {
    u8(static_cast<std::uint8_t>(v));
  } else if (v <= 0xffff) {
    u8(0xfd);
    u16le(static_cast<std::uint16_t>(v));
  } else if (v <= 0xffffffff) {
    u8(0xfe);
    u32le(static_cast<std::uint32_t>(v));
  } else {
    u8(0xff);
    u64le(v);
  }
}

bool Reader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || remaining() < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::optional<std::uint8_t> Reader::u8() {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return std::nullopt;
  return *p;
}

std::optional<std::uint16_t> Reader::u16le() {
  const std::uint8_t* p = nullptr;
  if (!take(2, &p)) return std::nullopt;
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::optional<std::uint32_t> Reader::u32le() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::optional<std::uint64_t> Reader::u64le() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::optional<std::uint32_t> Reader::u32be() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
  return v;
}

std::optional<std::uint64_t> Reader::u64be() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

std::optional<std::int64_t> Reader::i64le() {
  auto v = u64le();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<std::uint64_t> Reader::varint() {
  auto tag = u8();
  if (!tag) return std::nullopt;
  switch (*tag) {
    case 0xfd: {
      auto v = u16le();
      if (!v) return std::nullopt;
      return static_cast<std::uint64_t>(*v);
    }
    case 0xfe: {
      auto v = u32le();
      if (!v) return std::nullopt;
      return static_cast<std::uint64_t>(*v);
    }
    case 0xff:
      return u64le();
    default:
      return static_cast<std::uint64_t>(*tag);
  }
}

std::optional<Bytes> Reader::bytes(std::size_t n) {
  const std::uint8_t* p = nullptr;
  if (!take(n, &p)) return std::nullopt;
  return Bytes(p, p + n);
}

std::optional<Bytes> Reader::bytes_with_len(std::size_t max_len) {
  auto n = varint();
  if (!n || *n > max_len) {
    ok_ = false;
    return std::nullopt;
  }
  return bytes(static_cast<std::size_t>(*n));
}

std::optional<ByteSpan> Reader::span(std::size_t n) {
  const std::uint8_t* p = nullptr;
  if (!take(n, &p)) return std::nullopt;
  return ByteSpan{p, n};
}

std::optional<ByteSpan> Reader::span_with_len(std::size_t max_len) {
  auto n = varint();
  if (!n || *n > max_len) {
    ok_ = false;
    return std::nullopt;
  }
  return span(static_cast<std::size_t>(*n));
}

std::optional<std::string> Reader::str_with_len(std::size_t max_len) {
  auto b = bytes_with_len(max_len);
  if (!b) return std::nullopt;
  return std::string(b->begin(), b->end());
}

}  // namespace btcfast
