// Endian-explicit binary serialization: Writer appends to an owning
// buffer, Reader consumes a span. Bitcoin wire encoding is little-endian
// with CompactSize varints; both are provided here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace btcfast {

/// Appends primitive values to a growing byte buffer.
class Writer {
 public:
  Writer() = default;

  /// Pre-size the buffer (exact or upper-bound) so hot serialization
  /// paths pay one allocation instead of a growth sequence.
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16le(std::uint16_t v);
  void u32le(std::uint32_t v);
  void u64le(std::uint64_t v);
  void u32be(std::uint32_t v);
  void u64be(std::uint64_t v);
  void i64le(std::int64_t v) { u64le(static_cast<std::uint64_t>(v)); }

  /// Bitcoin CompactSize encoding.
  void varint(std::uint64_t v);

  void bytes(ByteSpan data) { append(buf_, data); }

  /// varint length prefix followed by raw bytes.
  void bytes_with_len(ByteSpan data) {
    varint(data.size());
    bytes(data);
  }

  void str_with_len(const std::string& s) { bytes_with_len(as_bytes(s)); }

  [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consumes primitive values from a byte span. All accessors return
/// std::nullopt once the stream is exhausted or malformed; `ok()` stays
/// false afterwards so callers may batch reads and check once.
class Reader {
 public:
  explicit Reader(ByteSpan data) noexcept : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8();
  [[nodiscard]] std::optional<std::uint16_t> u16le();
  [[nodiscard]] std::optional<std::uint32_t> u32le();
  [[nodiscard]] std::optional<std::uint64_t> u64le();
  [[nodiscard]] std::optional<std::uint32_t> u32be();
  [[nodiscard]] std::optional<std::uint64_t> u64be();
  [[nodiscard]] std::optional<std::int64_t> i64le();
  [[nodiscard]] std::optional<std::uint64_t> varint();

  /// Copies exactly n bytes out of the stream.
  [[nodiscard]] std::optional<Bytes> bytes(std::size_t n);

  /// varint length prefix followed by that many bytes. `max_len` bounds the
  /// announced length to defuse absurd allocations from corrupt input.
  [[nodiscard]] std::optional<Bytes> bytes_with_len(std::size_t max_len = 1 << 24);

  /// Zero-copy variants: a view into the underlying buffer, valid only as
  /// long as the buffer outlives the Reader. Hot scan paths (the dispute
  /// storm sweep) use these to walk megabytes of evidence without copying.
  [[nodiscard]] std::optional<ByteSpan> span(std::size_t n);
  [[nodiscard]] std::optional<ByteSpan> span_with_len(std::size_t max_len = 1 << 24);

  [[nodiscard]] std::optional<std::string> str_with_len(std::size_t max_len = 1 << 20);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const noexcept { return ok_ && remaining() == 0; }

 private:
  [[nodiscard]] bool take(std::size_t n, const std::uint8_t** out);

  ByteSpan data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace btcfast
