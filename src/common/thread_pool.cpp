#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace btcfast::common {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // The join waits on *completed indices*, not on helper tasks: once
  // `done == n` the caller returns even if some queued helpers were never
  // scheduled (they find the range exhausted and exit without touching
  // `fn`). This is what keeps tiny warm batches flat as the thread count
  // grows — the old future-join paid one context switch per helper on an
  // oversubscribed machine, which dwarfed microsecond-scale work items.
  struct Shared {
    std::function<void(std::size_t)> fn;  // owned: late helpers may outlive the call frame
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto shared = std::make_shared<Shared>();
  shared->fn = fn;
  shared->n = n;
  // Claim indices in chunks so the atomic and the per-claim bookkeeping
  // amortize; cap the chunk so every participant still gets a share.
  shared->chunk = std::max<std::size_t>(1, n / (4 * (workers_.size() + 1)));

  auto drain = [](const std::shared_ptr<Shared>& s) {
    std::size_t completed = 0;
    while (!s->failed.load(std::memory_order_relaxed)) {
      const std::size_t begin = s->next.fetch_add(s->chunk, std::memory_order_relaxed);
      if (begin >= s->n) break;
      const std::size_t end = std::min(begin + s->chunk, s->n);
      try {
        for (std::size_t i = begin; i < end; ++i) {
          s->fn(i);
          ++completed;
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(s->mutex);
          if (!s->error) s->error = std::current_exception();
          s->failed.store(true, std::memory_order_relaxed);
        }
        s->cv.notify_all();
        break;
      }
    }
    if (completed > 0 &&
        s->done.fetch_add(completed, std::memory_order_acq_rel) + completed == s->n) {
      std::lock_guard<std::mutex> lock(s->mutex);  // pair with the waiter's predicate check
      s->cv.notify_all();
    }
  };

  const std::size_t helpers = std::min(workers_.size(), (n - 1) / shared->chunk);
  std::vector<std::future<void>> joins;
  joins.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) {
    joins.push_back(submit([shared, drain] { drain(shared); }));
  }
  drain(shared);  // the caller works too

  {
    std::unique_lock<std::mutex> lock(shared->mutex);
    shared->cv.wait(lock, [&] {
      return shared->done.load(std::memory_order_acquire) == n ||
             shared->failed.load(std::memory_order_relaxed);
    });
  }
  if (shared->failed.load(std::memory_order_relaxed)) {
    // A work item threw: wait for every helper task so no in-flight call
    // can touch caller state during unwinding, then propagate.
    for (auto& j : joins) j.get();
    std::rethrow_exception(shared->error);
  }
}

namespace {

// Leaked on purpose: worker threads must not be joined during static
// destruction, whose order across translation units is unspecified.
std::unique_ptr<ThreadPool>& global_slot() {
  static auto* slot = new std::unique_ptr<ThreadPool>(std::make_unique<ThreadPool>(0));
  return *slot;
}

}  // namespace

ThreadPool& ThreadPool::global() { return *global_slot(); }

void ThreadPool::configure_global(std::size_t threads) {
  static std::mutex m;
  std::lock_guard<std::mutex> lock(m);
  auto& slot = global_slot();
  if (slot->thread_count() == threads) return;
  slot = std::make_unique<ThreadPool>(threads);  // assignment joins the old pool
}

}  // namespace btcfast::common
