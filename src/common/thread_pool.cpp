#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

namespace btcfast::common {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto shared = std::make_shared<Shared>();
  auto drain = [shared, &fn, n] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || shared->failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->error_mutex);
        if (!shared->error) shared->error = std::current_exception();
        shared->failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  std::vector<std::future<void>> joins;
  joins.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) joins.push_back(submit(drain));
  drain();  // the caller works too
  for (auto& j : joins) j.get();
  if (shared->error) std::rethrow_exception(shared->error);
}

namespace {

// Leaked on purpose: worker threads must not be joined during static
// destruction, whose order across translation units is unspecified.
std::unique_ptr<ThreadPool>& global_slot() {
  static auto* slot = new std::unique_ptr<ThreadPool>(std::make_unique<ThreadPool>(0));
  return *slot;
}

}  // namespace

ThreadPool& ThreadPool::global() { return *global_slot(); }

void ThreadPool::configure_global(std::size_t threads) {
  static std::mutex m;
  std::lock_guard<std::mutex> lock(m);
  auto& slot = global_slot();
  if (slot->thread_count() == threads) return;
  slot = std::make_unique<ThreadPool>(threads);  // assignment joins the old pool
}

}  // namespace btcfast::common
