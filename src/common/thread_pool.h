// A small fixed-size worker pool for fan-out/join parallelism. The
// btcsim event loop stays single-threaded; the pool exists so leaf
// computations (signature checks, header PoW hashing) can be fanned
// across cores and joined before the caller continues — callers never
// observe partial results, so simulation outcomes are independent of
// the thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace btcfast::common {

class ThreadPool {
 public:
  /// `threads == 0` creates an inline pool: submitted work runs on the
  /// calling thread at submit time. This is the deterministic baseline
  /// (and the TSan-friendly degenerate case); any other count must
  /// produce byte-identical results.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Queue a task; the future carries the result or the thrown exception.
  template <typename Fn>
  [[nodiscard]] std::future<std::invoke_result_t<Fn>> submit(Fn&& fn) {
    using R = std::invoke_result_t<Fn>;
    // shared_ptr because std::function requires copyable targets and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    auto fut = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline mode
      return fut;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n), blocking until all complete. Indices are
  /// claimed in chunks; each is processed exactly once and the caller
  /// participates, so an inline pool degenerates to a plain loop. The
  /// join waits on completed indices, not helper tasks — helpers that
  /// never got scheduled before the range drained don't cost the caller a
  /// context switch (they later find no work and exit without touching
  /// fn). The first exception thrown by any fn(i) is rethrown here, after
  /// every in-flight helper has finished.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, sized by configure_global() (default: inline).
  [[nodiscard]] static ThreadPool& global();
  /// Replace the global pool's size. Not thread-safe against concurrent
  /// global() users — call during setup only.
  static void configure_global(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace btcfast::common
