#include "crypto/base58.h"

#include <algorithm>
#include <array>

#include "crypto/sha256.h"

namespace btcfast::crypto {
namespace {

constexpr char kAlphabet[] = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

std::array<int, 128> build_rev() {
  std::array<int, 128> rev{};
  rev.fill(-1);
  for (int i = 0; i < 58; ++i) rev[static_cast<unsigned char>(kAlphabet[i])] = i;
  return rev;
}

const std::array<int, 128> kRev = build_rev();

}  // namespace

std::string base58_encode(ByteSpan data) {
  // Count leading zeros; they map to '1'.
  std::size_t zeros = 0;
  while (zeros < data.size() && data[zeros] == 0) ++zeros;

  // Base conversion via repeated division in a big-endian digit buffer.
  std::vector<std::uint8_t> digits;  // base58 digits, little-endian
  for (std::size_t i = zeros; i < data.size(); ++i) {
    std::uint32_t carry = data[i];
    for (auto& d : digits) {
      const std::uint32_t acc = (static_cast<std::uint32_t>(d) << 8) + carry;
      d = static_cast<std::uint8_t>(acc % 58);
      carry = acc / 58;
    }
    while (carry != 0) {
      digits.push_back(static_cast<std::uint8_t>(carry % 58));
      carry /= 58;
    }
  }

  std::string out(zeros, '1');
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) out.push_back(kAlphabet[*it]);
  return out;
}

std::optional<Bytes> base58_decode(const std::string& s) {
  std::size_t zeros = 0;
  while (zeros < s.size() && s[zeros] == '1') ++zeros;

  Bytes bytes;  // little-endian byte accumulator
  for (std::size_t i = zeros; i < s.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c >= 128 || kRev[c] < 0) return std::nullopt;
    std::uint32_t carry = static_cast<std::uint32_t>(kRev[c]);
    for (auto& b : bytes) {
      const std::uint32_t acc = static_cast<std::uint32_t>(b) * 58 + carry;
      b = static_cast<std::uint8_t>(acc & 0xff);
      carry = acc >> 8;
    }
    while (carry != 0) {
      bytes.push_back(static_cast<std::uint8_t>(carry & 0xff));
      carry >>= 8;
    }
  }

  Bytes out(zeros, 0);
  out.insert(out.end(), bytes.rbegin(), bytes.rend());
  return out;
}

std::string base58check_encode(std::uint8_t version, ByteSpan payload) {
  Bytes full;
  full.reserve(payload.size() + 5);
  full.push_back(version);
  append(full, payload);
  const Sha256Digest check = sha256d({full.data(), full.size()});
  full.insert(full.end(), check.begin(), check.begin() + 4);
  return base58_encode({full.data(), full.size()});
}

std::optional<Base58CheckDecoded> base58check_decode(const std::string& s) {
  auto raw = base58_decode(s);
  if (!raw || raw->size() < 5) return std::nullopt;
  const std::size_t body_len = raw->size() - 4;
  const Sha256Digest check = sha256d({raw->data(), body_len});
  if (!std::equal(check.begin(), check.begin() + 4, raw->begin() + static_cast<std::ptrdiff_t>(body_len))) {
    return std::nullopt;
  }
  Base58CheckDecoded out;
  out.version = (*raw)[0];
  out.payload.assign(raw->begin() + 1, raw->begin() + static_cast<std::ptrdiff_t>(body_len));
  return out;
}

}  // namespace btcfast::crypto
