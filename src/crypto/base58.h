// Base58 and Base58Check (Bitcoin address encoding).
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"

namespace btcfast::crypto {

/// Plain Base58 encoding.
[[nodiscard]] std::string base58_encode(ByteSpan data);
/// Plain Base58 decoding; nullopt on invalid characters.
[[nodiscard]] std::optional<Bytes> base58_decode(const std::string& s);

/// Base58Check: version byte + payload + 4-byte sha256d checksum.
[[nodiscard]] std::string base58check_encode(std::uint8_t version, ByteSpan payload);
/// Decode and verify checksum; returns (version, payload).
struct Base58CheckDecoded {
  std::uint8_t version = 0;
  Bytes payload;
};
[[nodiscard]] std::optional<Base58CheckDecoded> base58check_decode(const std::string& s);

}  // namespace btcfast::crypto
