#include "crypto/batch_verify.h"

namespace btcfast::crypto {

std::vector<std::uint8_t> batch_verify(common::ThreadPool& pool,
                                       const std::vector<SigCheckJob>& jobs, SigCache* cache) {
  std::vector<std::uint8_t> results(jobs.size(), 0);
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const SigCheckJob& j = jobs[i];
    results[i] = ecdsa_verify_cached(cache, {j.pubkey.data(), j.pubkey.size()}, j.digest,
                                     {j.sig.data(), j.sig.size()})
                     ? 1
                     : 0;
  });
  return results;
}

}  // namespace btcfast::crypto
