#include "crypto/batch_verify.h"

#include <cstring>
#include <memory>
#include <optional>
#include <unordered_map>

#include "crypto/secp256k1.h"

namespace btcfast::crypto {
namespace {

enum class JobState : std::uint8_t {
  kPending,     // needs a curve computation
  kCacheHit,    // sigcache said valid
  kRejected,    // malformed encoding or bad pubkey group
};

/// Per-distinct-pubkey work unit for a batch.
struct KeyGroup {
  ByteArray<33> keybytes{};
  std::shared_ptr<const secp::PubkeyPrecomp> pre;  // warm: cached wide tables
  secp::PointTables tables;                        // cold: per-batch tables
  std::optional<PublicKey> pub;                    // cold: decompressed point
  bool bad = false;                                // pubkey failed to decompress
  bool any_valid = false;                          // drives note_verified
};

struct PubkeyBytesHash {
  std::size_t operator()(const ByteArray<33>& k) const noexcept {
    std::size_t h;
    std::memcpy(&h, k.data() + 1, sizeof(h));
    return h;
  }
};

}  // namespace

std::vector<std::uint8_t> batch_verify(common::ThreadPool& pool,
                                       const std::vector<SigCheckJob>& jobs, SigCache* cache,
                                       PubkeyPrecompCache* precomp) {
  const std::size_t n = jobs.size();
  std::vector<std::uint8_t> results(n, 0);
  if (n == 0) return results;

  std::vector<SigCache::Key> keys(n);
  std::vector<Signature> sigs(n);
  std::vector<JobState> state(n, JobState::kPending);

  // Pass 1 (parallel): sigcache probe + signature range checks.
  pool.parallel_for(n, [&](std::size_t i) {
    const SigCheckJob& j = jobs[i];
    if (cache != nullptr) {
      keys[i] = SigCache::make_key(j.digest, {j.pubkey.data(), j.pubkey.size()},
                                   {j.sig.data(), j.sig.size()});
      if (cache->contains(keys[i])) {
        state[i] = JobState::kCacheHit;
        results[i] = 1;
        return;
      }
    }
    const auto sig = Signature::parse({j.sig.data(), j.sig.size()});
    if (!sig) {
      state[i] = JobState::kRejected;
      return;
    }
    sigs[i] = *sig;
  });

  // Group the surviving jobs by pubkey (serial; batches are small).
  std::unordered_map<ByteArray<33>, std::uint32_t, PubkeyBytesHash> group_of;
  std::vector<KeyGroup> groups;
  std::vector<std::uint32_t> job_group(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] != JobState::kPending) continue;
    const auto [it, fresh] =
        group_of.emplace(jobs[i].pubkey, static_cast<std::uint32_t>(groups.size()));
    if (fresh) {
      groups.emplace_back();
      groups.back().keybytes = jobs[i].pubkey;
    }
    job_group[i] = it->second;
  }

  // Probe the precomp cache once per distinct key (serial: stat counts
  // stay per-key-per-batch, not per-job).
  if (precomp != nullptr) {
    for (auto& g : groups) g.pre = precomp->lookup(g.keybytes);
  }

  // Pass 2 (parallel over distinct keys): decompress + build the shared
  // projective-frame GLV tables for every key the precomp cache missed.
  // build_point_tables is inversion-free (co-Z ladder), so nothing here
  // needs the Montgomery batching — that is saved for the scalar side.
  pool.parallel_for(groups.size(), [&](std::size_t gi) {
    KeyGroup& g = groups[gi];
    if (g.pre != nullptr) return;
    g.pub = PublicKey::parse({g.keybytes.data(), g.keybytes.size()});
    if (!g.pub) {
      g.bad = true;
      return;
    }
    secp::build_point_tables(g.pub->point(), g.tables);
  });
  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] == JobState::kPending && groups[job_group[i]].bad) {
      state[i] = JobState::kRejected;
    }
  }

  // Pass 3 (serial): ONE Montgomery-trick inversion for every pending
  // job's s — w_i = s_i⁻¹ mod n via prefix products and a single ninv,
  // instead of one ~8 µs binary-GCD inversion per signature.
  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] == JobState::kPending) pending.push_back(i);
  }
  std::vector<U256> w(pending.size());
  if (!pending.empty()) {
    U256 acc = U256::one();
    for (std::size_t k = 0; k < pending.size(); ++k) {
      w[k] = acc;  // product of s_0..s_{k-1}
      acc = secp::nmul(acc, sigs[pending[k]].s);
    }
    U256 inv = secp::ninv(acc);
    for (std::size_t k = pending.size(); k-- > 0;) {
      const U256 wk = secp::nmul(inv, w[k]);
      inv = secp::nmul(inv, sigs[pending[k]].s);
      w[k] = wk;
    }
  }

  // Pass 4 (parallel): the GLV chains — wide cached tables when warm,
  // the per-batch shared-frame tables when cold.
  pool.parallel_for(pending.size(), [&](std::size_t k) {
    const std::size_t i = pending[k];
    const KeyGroup& g = groups[job_group[i]];
    const bool ok = g.pre != nullptr
                        ? ecdsa_verify_prepared(jobs[i].digest, sigs[i], w[k], *g.pre)
                        : ecdsa_verify_prepared(jobs[i].digest, sigs[i], w[k], g.tables);
    results[i] = ok ? 1 : 0;
  });

  // Pass 5 (serial): publish cache state for the verified-valid jobs.
  for (const std::size_t i : pending) {
    if (results[i] == 0) continue;
    if (cache != nullptr) cache->insert(keys[i]);
    groups[job_group[i]].any_valid = true;
  }
  if (precomp != nullptr) {
    for (const auto& g : groups) {
      if (g.any_valid && g.pre == nullptr && g.pub) {
        precomp->note_verified(g.keybytes, g.pub->point());
      }
    }
  }
  return results;
}

}  // namespace btcfast::crypto
