// Batch signature verification: fan independent ECDSA checks across a
// thread pool with deterministic, input-ordered results. Used by the
// merchant to warm the signature cache over a whole intake batch, and
// by benches to measure the parallel crypto ceiling.
//
// The batch is verified in stages rather than job-by-job: signature
// cache probes and parses fan out first, the surviving jobs are grouped
// by pubkey (escrow traffic repeats payers, so a batch usually holds
// far fewer distinct keys than jobs), per-key GLV tables are built (or
// fetched from the PubkeyPrecompCache) once per key, all the per-job
// mod-n scalar inversions collapse into ONE Montgomery-trick inversion,
// and finally the half-length GLV chains fan back out per job.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/thread_pool.h"
#include "crypto/sha256.h"
#include "crypto/sigcache.h"

namespace btcfast::crypto {

/// One independent verification: raw wire encodings, so a cache hit
/// avoids even the point decompression.
struct SigCheckJob {
  Sha256Digest digest{};
  ByteArray<33> pubkey{};
  ByteArray<64> sig{};
};

/// Verify every job, fanning across `pool` (inline when the pool has no
/// workers). `results[i]` is 1 iff `jobs[i]` verifies — ordering matches
/// the input regardless of thread count. Verified-valid jobs are
/// inserted into `cache` when non-null; distinct verified keys are
/// reported to `precomp` when non-null (and resident precomp tables
/// skip decompression and table building for their jobs).
[[nodiscard]] std::vector<std::uint8_t> batch_verify(common::ThreadPool& pool,
                                                     const std::vector<SigCheckJob>& jobs,
                                                     SigCache* cache,
                                                     PubkeyPrecompCache* precomp = nullptr);

}  // namespace btcfast::crypto
