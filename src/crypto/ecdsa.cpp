#include "crypto/ecdsa.h"

#include "crypto/hmac.h"

namespace btcfast::crypto {
namespace {

/// RFC 6979 nonce generation (SHA-256 variant), returning k in [1, n-1].
U256 rfc6979_nonce(const U256& d, const Sha256Digest& digest) noexcept {
  const U256& n = secp::order_n();
  const auto x = d.to_be_bytes();

  ByteArray<32> v{};
  ByteArray<32> k{};
  v.fill(0x01);
  k.fill(0x00);

  Bytes buf;
  buf.reserve(32 + 1 + 32 + 32);

  auto hmac_update = [&](std::uint8_t sep) {
    buf.assign(v.begin(), v.end());
    buf.push_back(sep);
    buf.insert(buf.end(), x.begin(), x.end());
    buf.insert(buf.end(), digest.begin(), digest.end());
    k = hmac_sha256({k.data(), k.size()}, {buf.data(), buf.size()});
    v = hmac_sha256({k.data(), k.size()}, {v.data(), v.size()});
  };

  hmac_update(0x00);
  hmac_update(0x01);

  for (;;) {
    v = hmac_sha256({k.data(), k.size()}, {v.data(), v.size()});
    const U256 cand = U256::from_be_bytes({v.data(), v.size()});
    if (!cand.is_zero() && cand < n) return cand;
    buf.assign(v.begin(), v.end());
    buf.push_back(0x00);
    k = hmac_sha256({k.data(), k.size()}, {buf.data(), buf.size()});
    v = hmac_sha256({k.data(), k.size()}, {v.data(), v.size()});
  }
}

U256 digest_to_scalar(const Sha256Digest& digest) noexcept {
  return secp::nreduce(U256::from_be_bytes({digest.data(), digest.size()}));
}

}  // namespace

std::optional<PrivateKey> PrivateKey::from_bytes(ByteSpan b) noexcept {
  if (b.size() != 32) return std::nullopt;
  return from_scalar(U256::from_be_bytes(b));
}

std::optional<PrivateKey> PrivateKey::from_scalar(const U256& d) noexcept {
  if (d.is_zero() || d >= secp::order_n()) return std::nullopt;
  return PrivateKey(d);
}

PublicKey PublicKey::derive(const PrivateKey& key) noexcept {
  return PublicKey(secp::to_affine(secp::scalar_mul_base(key.scalar())));
}

std::optional<PublicKey> PublicKey::parse(ByteSpan b) noexcept {
  auto p = secp::decompress(b);
  if (!p) return std::nullopt;
  return PublicKey(*p);
}

ByteArray<64> Signature::serialize() const noexcept {
  ByteArray<64> out{};
  const auto rb = r.to_be_bytes();
  const auto sb = s.to_be_bytes();
  for (std::size_t i = 0; i < 32; ++i) {
    out[i] = rb[i];
    out[32 + i] = sb[i];
  }
  return out;
}

std::optional<Signature> Signature::parse(ByteSpan b) noexcept {
  if (b.size() != 64) return std::nullopt;
  Signature sig;
  sig.r = U256::from_be_bytes(b.first(32));
  sig.s = U256::from_be_bytes(b.subspan(32));
  const U256& n = secp::order_n();
  if (sig.r.is_zero() || sig.s.is_zero() || sig.r >= n || sig.s >= n) return std::nullopt;
  return sig;
}

Signature ecdsa_sign(const PrivateKey& key, const Sha256Digest& digest) noexcept {
  const U256& n = secp::order_n();
  const U256 z = digest_to_scalar(digest);

  U256 k = rfc6979_nonce(key.scalar(), digest);
  for (;;) {
    const secp::AffinePoint rp = secp::to_affine(secp::scalar_mul_base(k));
    const U256 r = secp::nreduce(rp.x);
    if (!r.is_zero()) {
      const U256 kinv = secp::ninv(k);
      U256 s = secp::nmul(kinv, secp::nadd(z, secp::nmul(r, key.scalar())));
      if (!s.is_zero()) {
        if (s > secp::half_order()) s = n - s;  // low-s normalization
        return Signature{r, s};
      }
    }
    // Astronomically unlikely: derive a fresh nonce by re-keying on k.
    const auto kb = k.to_be_bytes();
    const Sha256Digest rehash = sha256({kb.data(), kb.size()});
    k = U256::from_be_bytes({rehash.data(), rehash.size()});
    if (k.is_zero() || k >= n) k = U256::one();
  }
}

namespace {

/// x(R) ≡ r (mod n) without normalizing R: x(R) = X/Z², so the affine x
/// is a candidate c < p with c ≡ r (mod n) iff X == c·Z² (mod p). The
/// candidates are r itself and, only when r + n < p, r + n.
bool check_r_matches(const U256& r, const secp::JacobianPoint& rj) noexcept {
  if (rj.is_infinity()) return false;
  const U256 zz = secp::fsqr(rj.z);
  if (secp::fmul(r, zz) == rj.x) return true;
  return r < secp::field_p() - secp::order_n() && secp::fmul(r + secp::order_n(), zz) == rj.x;
}

/// Range-check the signature and derive the two verify scalars.
bool verify_scalars(const Sha256Digest& digest, const Signature& sig, U256& u1,
                    U256& u2) noexcept {
  const U256& n = secp::order_n();
  if (sig.r.is_zero() || sig.s.is_zero() || sig.r >= n || sig.s >= n) return false;
  const U256 z = digest_to_scalar(digest);
  const U256 w = secp::ninv(sig.s);
  u1 = secp::nmul(z, w);
  u2 = secp::nmul(sig.r, w);
  return true;
}

/// Same derivation through the frozen binary-GCD inverse: the baseline
/// verify must keep the full PR-6 cost profile, inversion included.
bool verify_scalars_baseline(const Sha256Digest& digest, const Signature& sig, U256& u1,
                             U256& u2) noexcept {
  const U256& n = secp::order_n();
  if (sig.r.is_zero() || sig.s.is_zero() || sig.r >= n || sig.s >= n) return false;
  const U256 z = digest_to_scalar(digest);
  const U256 w = secp::ninv_baseline(sig.s);
  u1 = secp::nmul(z, w);
  u2 = secp::nmul(sig.r, w);
  return true;
}

}  // namespace

bool ecdsa_verify(const PublicKey& key, const Sha256Digest& digest, const Signature& sig) noexcept {
  U256 u1, u2;
  if (!verify_scalars(digest, sig, u1, u2)) return false;
  return check_r_matches(sig.r, secp::double_scalar_mul(u1, u2, key.point()));
}

bool ecdsa_verify_precomp(const Sha256Digest& digest, const Signature& sig,
                          const secp::PubkeyPrecomp& pre) noexcept {
  U256 u1, u2;
  if (!verify_scalars(digest, sig, u1, u2)) return false;
  return check_r_matches(sig.r, secp::double_scalar_mul_precomp(u1, u2, pre));
}

bool ecdsa_verify_baseline(const PublicKey& key, const Sha256Digest& digest,
                           const Signature& sig) noexcept {
  U256 u1, u2;
  if (!verify_scalars_baseline(digest, sig, u1, u2)) return false;
  return check_r_matches(sig.r, secp::double_scalar_mul_shamir(u1, u2, key.point()));
}

bool ecdsa_verify_prepared(const Sha256Digest& digest, const Signature& sig, const U256& w,
                           const secp::PointTables& tables) noexcept {
  // u2 = r·w is nonzero mod the prime n (r, w both nonzero), so the
  // tables path needs no u2 == 0 fallback.
  const U256 z = digest_to_scalar(digest);
  return check_r_matches(sig.r, secp::double_scalar_mul_tables(secp::nmul(z, w),
                                                               secp::nmul(sig.r, w), tables));
}

bool ecdsa_verify_prepared(const Sha256Digest& digest, const Signature& sig, const U256& w,
                           const secp::PubkeyPrecomp& pre) noexcept {
  const U256 z = digest_to_scalar(digest);
  return check_r_matches(sig.r, secp::double_scalar_mul_precomp(secp::nmul(z, w),
                                                                secp::nmul(sig.r, w), pre));
}

}  // namespace btcfast::crypto
