#include "crypto/ecdsa.h"

#include "crypto/hmac.h"

namespace btcfast::crypto {
namespace {

/// RFC 6979 nonce generation (SHA-256 variant), returning k in [1, n-1].
U256 rfc6979_nonce(const U256& d, const Sha256Digest& digest) noexcept {
  const U256& n = secp::order_n();
  const auto x = d.to_be_bytes();

  ByteArray<32> v{};
  ByteArray<32> k{};
  v.fill(0x01);
  k.fill(0x00);

  Bytes buf;
  buf.reserve(32 + 1 + 32 + 32);

  auto hmac_update = [&](std::uint8_t sep) {
    buf.assign(v.begin(), v.end());
    buf.push_back(sep);
    buf.insert(buf.end(), x.begin(), x.end());
    buf.insert(buf.end(), digest.begin(), digest.end());
    k = hmac_sha256({k.data(), k.size()}, {buf.data(), buf.size()});
    v = hmac_sha256({k.data(), k.size()}, {v.data(), v.size()});
  };

  hmac_update(0x00);
  hmac_update(0x01);

  for (;;) {
    v = hmac_sha256({k.data(), k.size()}, {v.data(), v.size()});
    const U256 cand = U256::from_be_bytes({v.data(), v.size()});
    if (!cand.is_zero() && cand < n) return cand;
    buf.assign(v.begin(), v.end());
    buf.push_back(0x00);
    k = hmac_sha256({k.data(), k.size()}, {buf.data(), buf.size()});
    v = hmac_sha256({k.data(), k.size()}, {v.data(), v.size()});
  }
}

U256 digest_to_scalar(const Sha256Digest& digest) noexcept {
  return secp::nreduce(U256::from_be_bytes({digest.data(), digest.size()}));
}

}  // namespace

std::optional<PrivateKey> PrivateKey::from_bytes(ByteSpan b) noexcept {
  if (b.size() != 32) return std::nullopt;
  return from_scalar(U256::from_be_bytes(b));
}

std::optional<PrivateKey> PrivateKey::from_scalar(const U256& d) noexcept {
  if (d.is_zero() || d >= secp::order_n()) return std::nullopt;
  return PrivateKey(d);
}

PublicKey PublicKey::derive(const PrivateKey& key) noexcept {
  return PublicKey(secp::to_affine(secp::scalar_mul_base(key.scalar())));
}

std::optional<PublicKey> PublicKey::parse(ByteSpan b) noexcept {
  auto p = secp::decompress(b);
  if (!p) return std::nullopt;
  return PublicKey(*p);
}

ByteArray<64> Signature::serialize() const noexcept {
  ByteArray<64> out{};
  const auto rb = r.to_be_bytes();
  const auto sb = s.to_be_bytes();
  for (std::size_t i = 0; i < 32; ++i) {
    out[i] = rb[i];
    out[32 + i] = sb[i];
  }
  return out;
}

std::optional<Signature> Signature::parse(ByteSpan b) noexcept {
  if (b.size() != 64) return std::nullopt;
  Signature sig;
  sig.r = U256::from_be_bytes(b.first(32));
  sig.s = U256::from_be_bytes(b.subspan(32));
  const U256& n = secp::order_n();
  if (sig.r.is_zero() || sig.s.is_zero() || sig.r >= n || sig.s >= n) return std::nullopt;
  return sig;
}

Signature ecdsa_sign(const PrivateKey& key, const Sha256Digest& digest) noexcept {
  const U256& n = secp::order_n();
  const U256 z = digest_to_scalar(digest);

  U256 k = rfc6979_nonce(key.scalar(), digest);
  for (;;) {
    const secp::AffinePoint rp = secp::to_affine(secp::scalar_mul_base(k));
    const U256 r = secp::nreduce(rp.x);
    if (!r.is_zero()) {
      const U256 kinv = secp::ninv(k);
      U256 s = secp::nmul(kinv, secp::nadd(z, secp::nmul(r, key.scalar())));
      if (!s.is_zero()) {
        if (s > secp::half_order()) s = n - s;  // low-s normalization
        return Signature{r, s};
      }
    }
    // Astronomically unlikely: derive a fresh nonce by re-keying on k.
    const auto kb = k.to_be_bytes();
    const Sha256Digest rehash = sha256({kb.data(), kb.size()});
    k = U256::from_be_bytes({rehash.data(), rehash.size()});
    if (k.is_zero() || k >= n) k = U256::one();
  }
}

bool ecdsa_verify(const PublicKey& key, const Sha256Digest& digest, const Signature& sig) noexcept {
  const U256& n = secp::order_n();
  if (sig.r.is_zero() || sig.s.is_zero() || sig.r >= n || sig.s >= n) return false;

  const U256 z = digest_to_scalar(digest);
  const U256 w = secp::ninv(sig.s);
  const U256 u1 = secp::nmul(z, w);
  const U256 u2 = secp::nmul(sig.r, w);

  const secp::JacobianPoint rj = secp::double_scalar_mul(u1, u2, key.point());
  if (rj.is_infinity()) return false;
  // x(R) ≡ r (mod n) without normalizing R: x(R) = X/Z², so the affine x
  // is a candidate c < p with c ≡ r (mod n) iff X == c·Z² (mod p). The
  // candidates are r itself and, only when r + n < p, r + n.
  const U256 zz = secp::fsqr(rj.z);
  if (secp::fmul(sig.r, zz) == rj.x) return true;
  return sig.r < secp::field_p() - n && secp::fmul(sig.r + n, zz) == rj.x;
}

}  // namespace btcfast::crypto
