// ECDSA over secp256k1 with RFC-6979 deterministic nonces and Bitcoin's
// low-s normalization. Signatures use the 64-byte compact encoding
// (r || s, both 32-byte big-endian).
#pragma once

#include <optional>

#include "common/bytes.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "crypto/uint256.h"

namespace btcfast::crypto {

/// A secp256k1 private key (scalar in [1, n-1]).
class PrivateKey {
 public:
  /// Construct from a 32-byte big-endian scalar; nullopt if out of range.
  [[nodiscard]] static std::optional<PrivateKey> from_bytes(ByteSpan b) noexcept;
  /// Construct from raw scalar; nullopt if zero or >= n.
  [[nodiscard]] static std::optional<PrivateKey> from_scalar(const U256& d) noexcept;

  [[nodiscard]] const U256& scalar() const noexcept { return d_; }
  [[nodiscard]] ByteArray<32> to_bytes() const noexcept { return d_.to_be_bytes(); }

 private:
  explicit PrivateKey(const U256& d) noexcept : d_(d) {}
  U256 d_;
};

/// A secp256k1 public key (affine point, never infinity).
class PublicKey {
 public:
  /// Derive from a private key (d * G).
  [[nodiscard]] static PublicKey derive(const PrivateKey& key) noexcept;
  /// Parse a 33-byte compressed encoding.
  [[nodiscard]] static std::optional<PublicKey> parse(ByteSpan b) noexcept;

  [[nodiscard]] ByteArray<33> serialize() const noexcept { return secp::compress(point_); }
  [[nodiscard]] const secp::AffinePoint& point() const noexcept { return point_; }

  [[nodiscard]] bool operator==(const PublicKey& o) const noexcept { return point_ == o.point_; }

 private:
  explicit PublicKey(const secp::AffinePoint& p) noexcept : point_(p) {}
  secp::AffinePoint point_;
};

/// Compact ECDSA signature.
struct Signature {
  U256 r;
  U256 s;

  [[nodiscard]] ByteArray<64> serialize() const noexcept;
  [[nodiscard]] static std::optional<Signature> parse(ByteSpan b) noexcept;
  [[nodiscard]] bool operator==(const Signature& o) const noexcept = default;
};

/// Sign a 32-byte message digest. Deterministic (RFC 6979), low-s.
[[nodiscard]] Signature ecdsa_sign(const PrivateKey& key, const Sha256Digest& digest) noexcept;

/// Verify a signature over a 32-byte message digest.
[[nodiscard]] bool ecdsa_verify(const PublicKey& key, const Sha256Digest& digest,
                                const Signature& sig) noexcept;

/// Verify against cached wide wNAF tables for the key (see
/// secp::build_pubkey_precomp / PubkeyPrecompCache): skips the per-call
/// table build and the point decompression a wire-encoded caller would
/// pay. `pre` must have been built from `key`'s point.
[[nodiscard]] bool ecdsa_verify_precomp(const Sha256Digest& digest, const Signature& sig,
                                        const secp::PubkeyPrecomp& pre) noexcept;

/// Verify via the retained pre-GLV Shamir kernel. Baseline for benches
/// and cross-kernel property tests only — not a production path.
[[nodiscard]] bool ecdsa_verify_baseline(const PublicKey& key, const Sha256Digest& digest,
                                         const Signature& sig) noexcept;

// Staged-verify building blocks for batch_verify: the caller has already
// range-checked the signature (Signature::parse) and holds w = s⁻¹ mod n
// from a batch-amortized Montgomery inversion; these derive (u1, u2) and
// run the GLV chain against prebuilt tables.
[[nodiscard]] bool ecdsa_verify_prepared(const Sha256Digest& digest, const Signature& sig,
                                         const U256& w, const secp::PointTables& tables) noexcept;
[[nodiscard]] bool ecdsa_verify_prepared(const Sha256Digest& digest, const Signature& sig,
                                         const U256& w, const secp::PubkeyPrecomp& pre) noexcept;

}  // namespace btcfast::crypto
