#include "crypto/encoding.h"

#include "crypto/base58.h"

namespace btcfast::crypto {
namespace {

/// Minimal big-endian magnitude of a U256 with DER sign-padding.
Bytes der_integer(const U256& v) {
  const auto be = v.to_be_bytes();
  std::size_t first = 0;
  while (first < 31 && be[first] == 0) ++first;
  Bytes out;
  if (be[first] & 0x80) out.push_back(0x00);  // keep it positive
  for (std::size_t i = first; i < be.size(); ++i) out.push_back(be[i]);
  return out;
}

/// Strict INTEGER parse: returns value and advances `pos`.
std::optional<U256> parse_der_integer(ByteSpan der, std::size_t& pos) {
  if (pos + 2 > der.size() || der[pos] != 0x02) return std::nullopt;
  const std::size_t len = der[pos + 1];
  pos += 2;
  if (len == 0 || len > 33 || pos + len > der.size()) return std::nullopt;
  // Strictness: no negative values, no non-minimal padding.
  if (der[pos] & 0x80) return std::nullopt;
  if (len > 1 && der[pos] == 0x00 && !(der[pos + 1] & 0x80)) return std::nullopt;
  ByteArray<32> buf{};
  const std::size_t skip = (len == 33) ? 1 : 0;  // the sign pad byte
  if (len == 33 && der[pos] != 0x00) return std::nullopt;
  for (std::size_t i = skip; i < len; ++i) buf[32 - (len - skip) + (i - skip)] = der[pos + i];
  pos += len;
  return U256::from_be_bytes({buf.data(), buf.size()});
}

}  // namespace

Bytes signature_to_der(const Signature& sig) {
  const Bytes r = der_integer(sig.r);
  const Bytes s = der_integer(sig.s);
  Bytes out;
  out.reserve(6 + r.size() + s.size());
  out.push_back(0x30);  // SEQUENCE
  out.push_back(static_cast<std::uint8_t>(4 + r.size() + s.size()));
  out.push_back(0x02);  // INTEGER
  out.push_back(static_cast<std::uint8_t>(r.size()));
  append(out, r);
  out.push_back(0x02);
  out.push_back(static_cast<std::uint8_t>(s.size()));
  append(out, s);
  return out;
}

std::optional<Signature> signature_from_der(ByteSpan der) {
  if (der.size() < 8 || der.size() > 72) return std::nullopt;
  if (der[0] != 0x30 || der[1] != der.size() - 2) return std::nullopt;
  std::size_t pos = 2;
  const auto r = parse_der_integer(der, pos);
  if (!r) return std::nullopt;
  const auto s = parse_der_integer(der, pos);
  if (!s || pos != der.size()) return std::nullopt;
  const U256& n = secp::order_n();
  if (r->is_zero() || s->is_zero() || *r >= n || *s >= n) return std::nullopt;
  return Signature{*r, *s};
}

std::string private_key_to_wif(const PrivateKey& key) {
  const auto raw = key.to_bytes();
  Bytes payload(raw.begin(), raw.end());
  payload.push_back(0x01);  // compressed-pubkey flag
  return base58check_encode(0x80, payload);
}

std::optional<PrivateKey> private_key_from_wif(const std::string& wif) {
  const auto decoded = base58check_decode(wif);
  if (!decoded || decoded->version != 0x80) return std::nullopt;
  if (decoded->payload.size() != 33 || decoded->payload.back() != 0x01) return std::nullopt;
  return PrivateKey::from_bytes({decoded->payload.data(), 32});
}

}  // namespace btcfast::crypto
