// Bitcoin wire encodings for keys and signatures: strict-DER ECDSA
// signatures (BIP-66 rules) and WIF private-key serialization.
#pragma once

#include <optional>
#include <string>

#include "crypto/ecdsa.h"

namespace btcfast::crypto {

/// DER-encode a signature: SEQUENCE { INTEGER r, INTEGER s } with minimal
/// integer encodings (no redundant leading zeros; 0x00 pad only when the
/// high bit is set).
[[nodiscard]] Bytes signature_to_der(const Signature& sig);

/// Strict (BIP-66 style) DER parse; rejects non-minimal or malformed
/// encodings and out-of-range values.
[[nodiscard]] std::optional<Signature> signature_from_der(ByteSpan der);

/// WIF (wallet import format) for a private key, compressed-pubkey flavor
/// (mainnet version byte 0x80, trailing 0x01 flag).
[[nodiscard]] std::string private_key_to_wif(const PrivateKey& key);

/// Parse WIF; rejects bad checksums, wrong lengths, and invalid scalars.
[[nodiscard]] std::optional<PrivateKey> private_key_from_wif(const std::string& wif);

}  // namespace btcfast::crypto
