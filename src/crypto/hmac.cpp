#include "crypto/hmac.h"

#include <cstring>

namespace btcfast::crypto {

Sha256Digest hmac_sha256(ByteSpan key, ByteSpan message) noexcept {
  std::uint8_t k[64]{};
  if (key.size() > 64) {
    const Sha256Digest kh = sha256(key);
    std::memcpy(k, kh.data(), kh.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }

  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update({ipad, 64}).update(message);
  const Sha256Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update({opad, 64}).update({inner_digest.data(), inner_digest.size()});
  return outer.finalize();
}

}  // namespace btcfast::crypto
