// HMAC-SHA256 (RFC 2104), needed by RFC-6979 deterministic ECDSA nonces.
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace btcfast::crypto {

/// HMAC-SHA256(key, message).
[[nodiscard]] Sha256Digest hmac_sha256(ByteSpan key, ByteSpan message) noexcept;

}  // namespace btcfast::crypto
