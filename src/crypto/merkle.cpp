#include "crypto/merkle.h"

#include <cstring>
#include <thread>

#include "common/thread_pool.h"

namespace btcfast::crypto {
namespace {

Hash32 hash_pair(const Hash32& left, const Hash32& right) noexcept {
  ByteArray<64> cat{};
  std::memcpy(cat.data(), left.data(), 32);
  std::memcpy(cat.data() + 32, right.data(), 32);
  return sha256d_64(cat.data());
}

/// Reduce `level` to its parent level, writing into `out` (resized by the
/// caller to (level.size()+1)/2). Pairs are independent, so large levels
/// fan across the global thread pool; output slots are indexed, so the
/// result is byte-identical for every thread count (the same
/// deterministic-sequencing contract as batch_verify).
void reduce_level(const std::vector<Hash32>& level, std::vector<Hash32>& out) {
  const std::size_t pairs = out.size();
  auto hash_one = [&](std::size_t i) {
    const Hash32& left = level[2 * i];
    const Hash32& right = (2 * i + 1 < level.size()) ? level[2 * i + 1] : level[2 * i];
    out[i] = hash_pair(left, right);
  };
  // Fan out only when it can actually win: a big enough level AND real
  // hardware parallelism. On one core (common in containers) the pool
  // path just time-slices the same work with extra context switches.
  static const bool multi_core = std::thread::hardware_concurrency() > 1;
  auto& pool = common::ThreadPool::global();
  if (multi_core && pairs >= kMerkleParallelPairs && pool.thread_count() > 0) {
    pool.parallel_for(pairs, hash_one);
  } else {
    for (std::size_t i = 0; i < pairs; ++i) hash_one(i);
  }
}

}  // namespace

Hash32 merkle_root(const std::vector<Hash32>& leaves) noexcept {
  if (leaves.empty()) return Hash32{};
  if (leaves.size() == 1) return leaves[0];

  // Ping-pong between two buffers, one reduce_level per tree level.
  std::vector<Hash32> a((leaves.size() + 1) / 2);
  reduce_level(leaves, a);
  std::vector<Hash32> b;
  while (a.size() > 1) {
    b.resize((a.size() + 1) / 2);
    reduce_level(a, b);
    a.swap(b);
  }
  return a[0];
}

MerkleBranch merkle_branch(const std::vector<Hash32>& leaves, std::uint32_t index) {
  MerkleBranch branch;
  branch.index = index;
  if (leaves.empty() || index >= leaves.size()) return branch;

  std::vector<Hash32> level = leaves;
  std::uint32_t pos = index;
  while (level.size() > 1) {
    const std::uint32_t sibling = pos ^ 1;
    branch.siblings.push_back(sibling < level.size() ? level[sibling] : level[pos]);

    std::vector<Hash32> next((level.size() + 1) / 2);
    reduce_level(level, next);
    level = std::move(next);
    pos >>= 1;
  }
  return branch;
}

Hash32 merkle_fold(const Hash32& leaf, const MerkleBranch& branch) noexcept {
  Hash32 acc = leaf;
  std::uint32_t pos = branch.index;
  for (const Hash32& sibling : branch.siblings) {
    acc = (pos & 1) ? hash_pair(sibling, acc) : hash_pair(acc, sibling);
    pos >>= 1;
  }
  return acc;
}

bool merkle_verify(const Hash32& leaf, const MerkleBranch& branch, const Hash32& root) noexcept {
  return merkle_fold(leaf, branch) == root;
}

}  // namespace btcfast::crypto
