#include "crypto/merkle.h"

namespace btcfast::crypto {
namespace {

Hash32 hash_pair(const Hash32& left, const Hash32& right) noexcept {
  ByteArray<64> cat{};
  for (std::size_t i = 0; i < 32; ++i) {
    cat[i] = left[i];
    cat[32 + i] = right[i];
  }
  return sha256d({cat.data(), cat.size()});
}

}  // namespace

Hash32 merkle_root(const std::vector<Hash32>& leaves) noexcept {
  if (leaves.empty()) return Hash32{};
  std::vector<Hash32> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash32> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash32& left = level[i];
      const Hash32& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(hash_pair(left, right));
    }
    level = std::move(next);
  }
  return level[0];
}

MerkleBranch merkle_branch(const std::vector<Hash32>& leaves, std::uint32_t index) {
  MerkleBranch branch;
  branch.index = index;
  if (leaves.empty() || index >= leaves.size()) return branch;

  std::vector<Hash32> level = leaves;
  std::uint32_t pos = index;
  while (level.size() > 1) {
    const std::uint32_t sibling = pos ^ 1;
    branch.siblings.push_back(sibling < level.size() ? level[sibling] : level[pos]);

    std::vector<Hash32> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash32& left = level[i];
      const Hash32& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(hash_pair(left, right));
    }
    level = std::move(next);
    pos >>= 1;
  }
  return branch;
}

Hash32 merkle_fold(const Hash32& leaf, const MerkleBranch& branch) noexcept {
  Hash32 acc = leaf;
  std::uint32_t pos = branch.index;
  for (const Hash32& sibling : branch.siblings) {
    acc = (pos & 1) ? hash_pair(sibling, acc) : hash_pair(acc, sibling);
    pos >>= 1;
  }
  return acc;
}

bool merkle_verify(const Hash32& leaf, const MerkleBranch& branch, const Hash32& root) noexcept {
  return merkle_fold(leaf, branch) == root;
}

}  // namespace btcfast::crypto
