// Bitcoin-style Merkle trees over 32-byte leaf hashes: root computation
// (odd levels duplicate the last node) and inclusion branches verifiable
// by SPV clients and by the PayJudger contract.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace btcfast::crypto {

/// A 32-byte node hash.
using Hash32 = ByteArray<32>;

/// Levels with at least this many pairs are hashed across the global
/// thread pool (one indexed output slot per pair, so the root is
/// byte-identical for every thread count). A pair costs ~3 SHA-256
/// compressions (~250 ns), so a level must carry several thousand pairs
/// before the wake/steal/join overhead of a pool dispatch amortizes —
/// the old 256-pair cutover measured *slower* than serial at 512 and
/// 4096 leaves. The pool path additionally requires more than one
/// hardware thread (see reduce_level): on a single-core host every
/// dispatch is pure context-switch overhead.
inline constexpr std::size_t kMerkleParallelPairs = 4096;

/// Compute the Merkle root of a non-empty list of leaf hashes using
/// Bitcoin's rule (duplicate the last node at odd-sized levels).
/// An empty list yields the all-zero hash. Pair hashing uses the
/// sha256d_64 kernel; levels of kMerkleParallelPairs+ pairs fan across
/// the global thread pool.
[[nodiscard]] Hash32 merkle_root(const std::vector<Hash32>& leaves) noexcept;

/// An inclusion proof: the sibling hashes from leaf to root plus the
/// leaf's index (whose bits select left/right at each level).
struct MerkleBranch {
  std::vector<Hash32> siblings;
  std::uint32_t index = 0;

  [[nodiscard]] bool operator==(const MerkleBranch& o) const noexcept = default;
};

/// Build the inclusion branch for leaves[index]. Index must be in range.
[[nodiscard]] MerkleBranch merkle_branch(const std::vector<Hash32>& leaves,
                                         std::uint32_t index);

/// Fold a leaf up the branch; returns the implied root.
[[nodiscard]] Hash32 merkle_fold(const Hash32& leaf, const MerkleBranch& branch) noexcept;

/// True iff the branch proves `leaf` is under `root`.
[[nodiscard]] bool merkle_verify(const Hash32& leaf, const MerkleBranch& branch,
                                 const Hash32& root) noexcept;

}  // namespace btcfast::crypto
