#include "crypto/ripemd160.h"

#include <cstring>

namespace btcfast::crypto {
namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) noexcept { return (x << n) | (x >> (32 - n)); }

inline std::uint32_t f(int j, std::uint32_t x, std::uint32_t y, std::uint32_t z) noexcept {
  if (j < 16) return x ^ y ^ z;
  if (j < 32) return (x & y) | (~x & z);
  if (j < 48) return (x | ~y) ^ z;
  if (j < 64) return (x & z) | (y & ~z);
  return x ^ (y | ~z);
}

constexpr std::uint32_t kKL[5] = {0x00000000, 0x5a827999, 0x6ed9eba1, 0x8f1bbcdc, 0xa953fd4e};
constexpr std::uint32_t kKR[5] = {0x50a28be6, 0x5c4dd124, 0x6d703ef3, 0x7a6d76e9, 0x00000000};

constexpr int kRL[80] = {0,  1, 2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15, 7,  4,
                         13, 1, 10, 6,  15, 3,  12, 0,  9,  5,  2,  14, 11, 8,  3,  10, 14, 4,
                         9,  15, 8, 1,  2,  7,  0,  6,  13, 11, 5,  12, 1,  9,  11, 10, 0,  8,
                         12, 4, 13, 3,  7,  15, 14, 5,  6,  2,  4,  0,  5,  9,  7,  12, 2,  10,
                         14, 1, 3,  8,  11, 6,  15, 13};
constexpr int kRR[80] = {5,  14, 7,  0,  9,  2,  11, 4,  13, 6,  15, 8,  1,  10, 3,  12, 6,  11,
                         3,  7,  0,  13, 5,  10, 14, 15, 8,  12, 4,  9,  1,  2,  15, 5,  1,  3,
                         7,  14, 6,  9,  11, 8,  12, 2,  10, 0,  4,  13, 8,  6,  4,  1,  3,  11,
                         15, 0,  5,  12, 2,  13, 9,  7,  10, 14, 12, 15, 10, 4,  1,  5,  8,  7,
                         6,  2,  13, 14, 0,  3,  9,  11};
constexpr int kSL[80] = {11, 14, 15, 12, 5,  8,  7,  9,  11, 13, 14, 15, 6,  7,  9,  8,  7,  6,
                         8,  13, 11, 9,  7,  15, 7,  12, 15, 9,  11, 7,  13, 12, 11, 13, 6,  7,
                         14, 9,  13, 15, 14, 8,  13, 6,  5,  12, 7,  5,  11, 12, 14, 15, 14, 15,
                         9,  8,  9,  14, 5,  6,  8,  6,  5,  12, 9,  15, 5,  11, 6,  8,  13, 12,
                         5,  12, 13, 14, 11, 8,  5,  6};
constexpr int kSR[80] = {8,  9,  9,  11, 13, 15, 15, 5,  7,  7,  8,  11, 14, 14, 12, 6,  9,  13,
                         15, 7,  12, 8,  9,  11, 7,  7,  12, 7,  6,  15, 13, 11, 9,  7,  15, 11,
                         8,  6,  6,  14, 12, 13, 5,  14, 13, 13, 7,  5,  15, 5,  8,  11, 14, 14,
                         6,  14, 6,  9,  12, 9,  12, 5,  15, 8,  8,  5,  12, 9,  12, 5,  14, 6,
                         8,  13, 6,  5,  15, 13, 11, 11};

struct State {
  std::uint32_t h[5] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0};
};

void compress(State& st, const std::uint8_t* block) noexcept {
  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = static_cast<std::uint32_t>(block[4 * i]) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 8) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 3]) << 24);
  }

  std::uint32_t al = st.h[0], bl = st.h[1], cl = st.h[2], dl = st.h[3], el = st.h[4];
  std::uint32_t ar = al, br = bl, cr = cl, dr = dl, er = el;

  for (int j = 0; j < 80; ++j) {
    std::uint32_t t = rotl(al + f(j, bl, cl, dl) + x[kRL[j]] + kKL[j / 16], kSL[j]) + el;
    al = el;
    el = dl;
    dl = rotl(cl, 10);
    cl = bl;
    bl = t;

    t = rotl(ar + f(79 - j, br, cr, dr) + x[kRR[j]] + kKR[j / 16], kSR[j]) + er;
    ar = er;
    er = dr;
    dr = rotl(cr, 10);
    cr = br;
    br = t;
  }

  const std::uint32_t t = st.h[1] + cl + dr;
  st.h[1] = st.h[2] + dl + er;
  st.h[2] = st.h[3] + el + ar;
  st.h[3] = st.h[4] + al + br;
  st.h[4] = st.h[0] + bl + cr;
  st.h[0] = t;
}

}  // namespace

Ripemd160Digest ripemd160(ByteSpan data) noexcept {
  State st;
  std::size_t off = 0;
  while (off + 64 <= data.size()) {
    compress(st, data.data() + off);
    off += 64;
  }

  // Final block(s) with padding: 0x80, zeros, 64-bit little-endian bit length.
  std::uint8_t tail[128];
  const std::size_t rem = data.size() - off;
  std::memcpy(tail, data.data() + off, rem);
  tail[rem] = 0x80;
  const std::size_t tail_len = rem < 56 ? 64 : 128;
  std::memset(tail + rem + 1, 0, tail_len - rem - 1 - 8);
  const std::uint64_t bitlen = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 8 + i] = static_cast<std::uint8_t>(bitlen >> (8 * i));
  }
  compress(st, tail);
  if (tail_len == 128) compress(st, tail + 64);

  Ripemd160Digest out{};
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(st.h[i]);
    out[4 * i + 1] = static_cast<std::uint8_t>(st.h[i] >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(st.h[i] >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(st.h[i] >> 24);
  }
  return out;
}

Ripemd160Digest hash160(ByteSpan data) noexcept {
  const Sha256Digest inner = sha256(data);
  return ripemd160({inner.data(), inner.size()});
}

}  // namespace btcfast::crypto
