// RIPEMD-160, used by Bitcoin's HASH160 = RIPEMD160(SHA256(x)) for
// address derivation.
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace btcfast::crypto {

/// 20-byte digest.
using Ripemd160Digest = ByteArray<20>;

/// One-shot RIPEMD-160.
[[nodiscard]] Ripemd160Digest ripemd160(ByteSpan data) noexcept;

/// Bitcoin HASH160: RIPEMD160(SHA256(data)).
[[nodiscard]] Ripemd160Digest hash160(ByteSpan data) noexcept;

}  // namespace btcfast::crypto
