#include "crypto/secp256k1.h"

#include <array>
#include <cstdint>
#include <vector>

namespace btcfast::crypto::secp {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// p = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE FFFFFC2F
constexpr U256 make_p() {
  U256 p;
  p.w[0] = 0xFFFFFFFEFFFFFC2FULL;
  p.w[1] = 0xFFFFFFFFFFFFFFFFULL;
  p.w[2] = 0xFFFFFFFFFFFFFFFFULL;
  p.w[3] = 0xFFFFFFFFFFFFFFFFULL;
  return p;
}

// n = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE BAAEDCE6 AF48A03B BFD25E8C D0364141
constexpr U256 make_n() {
  U256 n;
  n.w[0] = 0xBFD25E8CD0364141ULL;
  n.w[1] = 0xBAAEDCE6AF48A03BULL;
  n.w[2] = 0xFFFFFFFFFFFFFFFEULL;
  n.w[3] = 0xFFFFFFFFFFFFFFFFULL;
  return n;
}

const U256 kP = make_p();
const U256 kN = make_n();
const U256 kHalfN = make_n() >> 1;

// 2^256 ≡ kC (mod p) with kC = 2^32 + 977 — the pseudo-Mersenne constant
// that makes the field reduction a couple of single-limb multiplies.
constexpr u64 kC = 0x1000003D1ULL;

// --- flat 4-limb field engine -----------------------------------------
// The hot path avoids the generic U512 helpers entirely: one schoolbook
// 4x4 multiply into a stack array, then two inline folds of the high
// half through kC. Everything stays in registers; the only branches are
// the final carry fix-up and one conditional subtract of p. Additions and
// subtractions are likewise flattened so no cross-TU U256 helper call
// lands in the point-arithmetic inner loops.

inline bool ge_p(const u64 r[4]) noexcept {
  for (int i = 3; i >= 0; --i) {
    if (r[i] != kP.w[i]) return r[i] > kP.w[i];
  }
  return true;
}

inline void sub_p(u64 r[4]) noexcept {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = static_cast<u128>(r[i]) - kP.w[i] - borrow;
    r[i] = static_cast<u64>(d);
    borrow = static_cast<u64>(d >> 64) & 1;
  }
}

/// t[8] = a * b (full 256x256 product, row-by-row schoolbook).
inline void mul_4x4(u64 t[8], const u64 a[4], const u64 b[4]) noexcept {
  u128 acc;
  u64 carry = 0;
  acc = static_cast<u128>(a[0]) * b[0];
  t[0] = static_cast<u64>(acc);
  carry = static_cast<u64>(acc >> 64);
  acc = static_cast<u128>(a[0]) * b[1] + carry;
  t[1] = static_cast<u64>(acc);
  carry = static_cast<u64>(acc >> 64);
  acc = static_cast<u128>(a[0]) * b[2] + carry;
  t[2] = static_cast<u64>(acc);
  carry = static_cast<u64>(acc >> 64);
  acc = static_cast<u128>(a[0]) * b[3] + carry;
  t[3] = static_cast<u64>(acc);
  t[4] = static_cast<u64>(acc >> 64);
  for (int i = 1; i < 4; ++i) {
    carry = 0;
    for (int j = 0; j < 4; ++j) {
      acc = static_cast<u128>(a[i]) * b[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(acc);
      carry = static_cast<u64>(acc >> 64);
    }
    t[i + 4] = carry;
  }
}

/// t[8] = a² — cross products computed once, doubled, diagonals added.
inline void sqr_4(u64 t[8], const u64 a[4]) noexcept {
  u64 x[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  u128 acc;
  u64 carry;
  // a0 row: offsets 1..3
  acc = static_cast<u128>(a[0]) * a[1];
  x[1] = static_cast<u64>(acc);
  carry = static_cast<u64>(acc >> 64);
  acc = static_cast<u128>(a[0]) * a[2] + carry;
  x[2] = static_cast<u64>(acc);
  carry = static_cast<u64>(acc >> 64);
  acc = static_cast<u128>(a[0]) * a[3] + carry;
  x[3] = static_cast<u64>(acc);
  x[4] = static_cast<u64>(acc >> 64);
  // a1 row: offsets 3..4
  acc = static_cast<u128>(a[1]) * a[2] + x[3];
  x[3] = static_cast<u64>(acc);
  carry = static_cast<u64>(acc >> 64);
  acc = static_cast<u128>(a[1]) * a[3] + x[4] + carry;
  x[4] = static_cast<u64>(acc);
  x[5] = static_cast<u64>(acc >> 64);
  // a2 row: offset 5
  acc = static_cast<u128>(a[2]) * a[3] + x[5];
  x[5] = static_cast<u64>(acc);
  x[6] = static_cast<u64>(acc >> 64);
  // double the cross half
  for (int i = 7; i > 0; --i) x[i] = (x[i] << 1) | (x[i - 1] >> 63);
  x[0] <<= 1;
  // add diagonals a_i² at offsets 2i
  carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = static_cast<u128>(a[i]) * a[i];
    acc = static_cast<u128>(x[2 * i]) + static_cast<u64>(d) + carry;
    t[2 * i] = static_cast<u64>(acc);
    acc = static_cast<u128>(x[2 * i + 1]) + static_cast<u64>(d >> 64) +
          static_cast<u64>(acc >> 64);
    t[2 * i + 1] = static_cast<u64>(acc);
    carry = static_cast<u64>(acc >> 64);
  }
}

/// Reduce a 512-bit product t[8] mod p into r.
inline void fe_reduce(U256& r, const u64 t[8]) noexcept {
  u64 out[4];
  u128 acc;
  u64 carry = 0;
  // Fold 1: value = lo + hi*kC; the running carry stays < 2^34.
  for (int i = 0; i < 4; ++i) {
    acc = static_cast<u128>(t[4 + i]) * kC + t[i] + carry;
    out[i] = static_cast<u64>(acc);
    carry = static_cast<u64>(acc >> 64);
  }
  // Fold 2: carry < 2^34, carry*kC < 2^68.
  acc = static_cast<u128>(carry) * kC + out[0];
  out[0] = static_cast<u64>(acc);
  u64 c = static_cast<u64>(acc >> 64);
  for (int i = 1; i < 4 && c != 0; ++i) {
    acc = static_cast<u128>(out[i]) + c;
    out[i] = static_cast<u64>(acc);
    c = static_cast<u64>(acc >> 64);
  }
  if (c != 0) {
    // Wrapped past 2^256 exactly once; the residue is tiny, so adding kC
    // cannot carry again.
    acc = static_cast<u128>(out[0]) + kC;
    out[0] = static_cast<u64>(acc);
    u64 c2 = static_cast<u64>(acc >> 64);
    for (int i = 1; i < 4 && c2 != 0; ++i) {
      acc = static_cast<u128>(out[i]) + c2;
      out[i] = static_cast<u64>(acc);
      c2 = static_cast<u64>(acc >> 64);
    }
  }
  if (ge_p(out)) sub_p(out);  // value < 2^256 < 2p: one subtraction suffices
  r.w[0] = out[0];
  r.w[1] = out[1];
  r.w[2] = out[2];
  r.w[3] = out[3];
}

// 2^256 ≡ kNC (mod n); kNC = 2^256 - n is a 129-bit constant.
const U256 kNC = U256::zero() - make_n();  // wrapping arithmetic gives 2^256 - n

/// Reduce a 512-bit value mod n via repeated folding of the high part.
U256 reduce512_n(const U512& t) noexcept {
  // Fold 1: hi (<=256 bits) * c (129 bits) fits 385 bits.
  const U512 s1 = U512::from_u256(t.low256()) + t.high256().mul_wide(kNC);
  // Fold 2: hi < 2^129; product < 2^258.
  const U512 s2 = U512::from_u256(s1.low256()) + s1.high256().mul_wide(kNC);
  // Fold 3: hi < 2^3; product < 2^132.
  const U512 s3 = U512::from_u256(s2.low256()) + s2.high256().mul_wide(kNC);
  U256 r = s3.low256();
  if (!s3.high256().is_zero()) {
    bool carry = false;
    r = add_carry(r, kNC, carry);
  }
  while (r >= kN) r = r - kN;
  return r;
}

/// a^e mod p with the fast field multiply.
U256 fpow(const U256& a, const U256& e) noexcept {
  U256 result = U256::one();
  U256 base = a;
  const int top = e.top_bit();
  for (int i = 0; i <= top; ++i) {
    if (e.bit(static_cast<unsigned>(i))) result = fmul(result, base);
    base = fsqr(base);
  }
  return result;
}

AffinePoint make_generator() {
  AffinePoint g;
  g.infinity = false;
  g.x = *U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  g.y = *U256::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
  return g;
}

const AffinePoint kG = make_generator();

// --- GLV endomorphism constants ---------------------------------------
// φ(x, y) = (β·x, y) equals multiplication by λ; (λ, β) is the matched
// cube-root pair, and (g1, g2, -b1, -b2) drive the lattice decomposition
// k ≡ k1 + λ·k2 (mod n) with |k1|, |k2| ≲ 2^128:
//   c1 = round(k·g1 / 2^384),  c2 = round(k·g2 / 2^384)
//   k2 = c1·(-b1) + c2·(-b2) (mod n),  k1 = k - λ·k2 (mod n)
const U256 kLambda =
    *U256::from_hex("5363ad4cc05c30e0a5261c028812645a122e22ea20816678df02967c1b23bd72");
const U256 kBeta =
    *U256::from_hex("7ae96a2b657c07106e64479eac3434e99cf0497512f58995c1396c28719501ee");
const U256 kGlvG1 =
    *U256::from_hex("3086d221a7d46bcde86c90e49284eb153daa8a1471e8ca7fe893209a45dbb031");
const U256 kGlvG2 =
    *U256::from_hex("e4437ed6010e88286f547fa90abfe4c4221208ac9df506c61571b4ae8ac47f71");
const U256 kGlvMinusB1 = *U256::from_hex("e4437ed6010e88286f547fa90abfe4c3");
const U256 kGlvMinusB2 =
    *U256::from_hex("fffffffffffffffffffffffffffffffe8a280ac50774346dd765cda83db1562c");

/// round(k·g / 2^384): take limbs 6..7 of the 512-bit product, rounding
/// on bit 383. Results fit well under 2^129 for the GLV g constants.
inline U256 mul_shift_384(const U256& k, const U256& g) noexcept {
  const U512 prod = k.mul_wide(g);
  U256 r;
  r.w[0] = prod.w[6];
  r.w[1] = prod.w[7];
  r.w[2] = 0;
  r.w[3] = 0;
  if ((prod.w[5] >> 63) != 0) r += U256::one();  // cannot overflow 128 bits meaningfully
  return r;
}

/// -a mod n.
inline U256 nneg(const U256& a) noexcept { return a.is_zero() ? a : kN - a; }

}  // namespace

const U256& field_p() noexcept { return kP; }
const U256& order_n() noexcept { return kN; }
const U256& half_order() noexcept { return kHalfN; }
const AffinePoint& generator() noexcept { return kG; }

U256 fadd(const U256& a, const U256& b) noexcept {
  U256 r;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = static_cast<u128>(a.w[i]) + b.w[i] + carry;
    r.w[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  if (carry != 0 || ge_p(r.w)) sub_p(r.w);
  return r;
}

U256 fsub(const U256& a, const U256& b) noexcept {
  U256 r;
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = static_cast<u128>(a.w[i]) - b.w[i] - borrow;
    r.w[i] = static_cast<u64>(d);
    borrow = static_cast<u64>(d >> 64) & 1;
  }
  if (borrow != 0) {
    u64 carry = 0;
    for (int i = 0; i < 4; ++i) {
      const u128 s = static_cast<u128>(r.w[i]) + kP.w[i] + carry;
      r.w[i] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
  }
  return r;
}

U256 fmul(const U256& a, const U256& b) noexcept {
  u64 t[8];
  mul_4x4(t, a.w, b.w);
  U256 r;
  fe_reduce(r, t);
  return r;
}

U256 fsqr(const U256& a) noexcept {
  u64 t[8];
  sqr_4(t, a.w);
  U256 r;
  fe_reduce(r, t);
  return r;
}

U256 fneg(const U256& a) noexcept { return a.is_zero() ? a : kP - a; }

U256 nadd(const U256& a, const U256& b) noexcept { return addmod(a, b, kN); }

U256 nmul(const U256& a, const U256& b) noexcept { return reduce512_n(a.mul_wide(b)); }

U256 ninv(const U256& a) noexcept { return invmod_odd_var(a, kN); }

U256 ninv_baseline(const U256& a) noexcept { return invmod_odd(a, kN); }

U256 nreduce(const U256& a) noexcept { return a >= kN ? a - kN : a; }

U256 finv(const U256& a) noexcept { return invmod_odd_var(a, kP); }

U256 finv_baseline(const U256& a) noexcept { return invmod_odd(a, kP); }

std::optional<U256> fsqrt(const U256& a) noexcept {
  // p ≡ 3 (mod 4): candidate = a^((p+1)/4).
  const U256 exponent = (kP + U256::one()) >> 2;
  const U256 cand = fpow(a, exponent);
  if (fsqr(cand) != a) return std::nullopt;
  return cand;
}

JacobianPoint to_jacobian(const AffinePoint& p) noexcept {
  if (p.infinity) return JacobianPoint::identity();
  return {p.x, p.y, U256::one()};
}

AffinePoint to_affine(const JacobianPoint& p) noexcept {
  if (p.is_infinity()) return AffinePoint::identity();
  const U256 zinv = finv(p.z);
  const U256 zinv2 = fsqr(zinv);
  const U256 zinv3 = fmul(zinv2, zinv);
  return {fmul(p.x, zinv2), fmul(p.y, zinv3), false};
}

JacobianPoint jdouble(const JacobianPoint& p) noexcept {
  if (p.is_infinity() || p.y.is_zero()) return JacobianPoint::identity();
  // dbl-2009-l (a = 0): 2M + 5S, all small-constant multiplies as adds.
  const U256 a = fsqr(p.x);                                  // X1²
  const U256 b = fsqr(p.y);                                  // Y1²
  const U256 c = fsqr(b);                                    // B²
  U256 d = fsub(fsub(fsqr(fadd(p.x, b)), a), c);             // (X1+B)² - A - C
  d = fadd(d, d);                                            // D = 2·(...)
  const U256 e = fadd(fadd(a, a), a);                        // E = 3A
  const U256 f = fsqr(e);                                    // F = E²
  const U256 x3 = fsub(f, fadd(d, d));                       // X3 = F - 2D
  U256 c8 = fadd(c, c);
  c8 = fadd(c8, c8);
  c8 = fadd(c8, c8);                                         // 8C
  const U256 y3 = fsub(fmul(e, fsub(d, x3)), c8);            // Y3 = E(D-X3) - 8C
  const U256 z3 = fmul(fadd(p.y, p.y), p.z);                 // Z3 = 2·Y1·Z1
  return {x3, y3, z3};
}

JacobianPoint jadd(const JacobianPoint& a, const JacobianPoint& b) noexcept {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;
  const U256 z1z1 = fsqr(a.z);
  const U256 z2z2 = fsqr(b.z);
  const U256 u1 = fmul(a.x, z2z2);
  const U256 u2 = fmul(b.x, z1z1);
  const U256 s1 = fmul(a.y, fmul(z2z2, b.z));
  const U256 s2 = fmul(b.y, fmul(z1z1, a.z));
  if (u1 == u2) {
    if (s1 != s2) return JacobianPoint::identity();
    return jdouble(a);
  }
  const U256 h = fsub(u2, u1);
  const U256 r = fsub(s2, s1);
  const U256 h2 = fsqr(h);
  const U256 h3 = fmul(h2, h);
  const U256 u1h2 = fmul(u1, h2);
  const U256 x3 = fsub(fsub(fsqr(r), h3), fadd(u1h2, u1h2));
  const U256 y3 = fsub(fmul(r, fsub(u1h2, x3)), fmul(s1, h3));
  const U256 z3 = fmul(h, fmul(a.z, b.z));
  return {x3, y3, z3};
}

JacobianPoint jadd_mixed(const JacobianPoint& a, const AffinePoint& b) noexcept {
  if (b.infinity) return a;
  if (a.is_infinity()) return to_jacobian(b);
  const U256 z1z1 = fsqr(a.z);
  const U256 u2 = fmul(b.x, z1z1);
  const U256 s2 = fmul(b.y, fmul(z1z1, a.z));
  if (a.x == u2) {
    if (a.y != s2) return JacobianPoint::identity();
    return jdouble(a);
  }
  const U256 h = fsub(u2, a.x);
  const U256 r = fsub(s2, a.y);
  const U256 h2 = fsqr(h);
  const U256 h3 = fmul(h2, h);
  const U256 u1h2 = fmul(a.x, h2);
  const U256 x3 = fsub(fsub(fsqr(r), h3), fadd(u1h2, u1h2));
  const U256 y3 = fsub(fmul(r, fsub(u1h2, x3)), fmul(a.y, h3));
  const U256 z3 = fmul(h, a.z);
  return {x3, y3, z3};
}

namespace {

/// Batch Jacobian->affine normalization with one field inversion
/// (Montgomery's trick): invert the product of all z's, then peel.
std::vector<AffinePoint> batch_to_affine(const std::vector<JacobianPoint>& pts) {
  const std::size_t n = pts.size();
  std::vector<AffinePoint> out(n);
  std::vector<U256> prefix(n);
  U256 acc = U256::one();
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i] = acc;  // product of z_0..z_{i-1}
    acc = fmul(acc, pts[i].z);
  }
  U256 inv_all = finv(acc);  // 1 / (z_0 * ... * z_{n-1})
  for (std::size_t i = n; i-- > 0;) {
    const U256 zinv = fmul(inv_all, prefix[i]);
    inv_all = fmul(inv_all, pts[i].z);
    const U256 zinv2 = fsqr(zinv);
    out[i] = AffinePoint{fmul(pts[i].x, zinv2), fmul(pts[i].y, fmul(zinv2, zinv)), false};
  }
  return out;
}

/// Fixed-base comb table: kBaseTable[i][j] == (j+1) * 16^i * G, so a
/// 256-bit scalar resolves to at most 64 mixed additions with no
/// doublings. Built once per process (~1k point ops, batch-normalized).
struct BaseTable {
  AffinePoint pts[64][15];
};

const BaseTable& base_table() {
  static const BaseTable table = [] {
    std::vector<JacobianPoint> jac;
    jac.reserve(64 * 15);
    JacobianPoint row_base = to_jacobian(kG);  // 16^i * G
    for (int i = 0; i < 64; ++i) {
      JacobianPoint cur = row_base;
      for (int j = 0; j < 15; ++j) {
        jac.push_back(cur);
        cur = jadd(cur, row_base);
      }
      row_base = cur;  // 16 * previous row base
    }
    const auto affine = batch_to_affine(jac);
    BaseTable t;
    for (int i = 0; i < 64; ++i) {
      for (int j = 0; j < 15; ++j) t.pts[i][j] = affine[static_cast<std::size_t>(i * 15 + j)];
    }
    return t;
  }();
  return table;
}

/// Width-w NAF digits (odd values in ±{1, 3, ..., 2^w - 1}), LSB first,
/// written into `out` (needs room for 257). Returns the digit count.
/// Flat limb arithmetic: the scalar shrinks by one bit per digit.
/// Digits are int16 so widths up to 14 fit (width-8 digits reach ±255).
int wnaf_digits(std::int16_t* out, const U256& k, unsigned width) noexcept {
  u64 l[4] = {k.w[0], k.w[1], k.w[2], k.w[3]};
  const u64 mask = (1ULL << (width + 1)) - 1;
  const u64 half = 1ULL << width;
  int len = 0;
  while ((l[0] | l[1] | l[2] | l[3]) != 0) {
    std::int16_t d = 0;
    if (l[0] & 1) {
      const u64 m = l[0] & mask;
      if (m >= half) {
        d = static_cast<std::int16_t>(static_cast<int>(m) - static_cast<int>(mask + 1));
        // k += (2^(w+1) - m)
        u64 add = (mask + 1) - m;
        for (int i = 0; i < 4 && add != 0; ++i) {
          const u128 s = static_cast<u128>(l[i]) + add;
          l[i] = static_cast<u64>(s);
          add = static_cast<u64>(s >> 64);
        }
      } else {
        d = static_cast<std::int16_t>(m);
        // k -= m (only clears low bits; no borrow can propagate past a
        // nonzero limb chain because k ≥ m by construction)
        u64 borrow = m;
        for (int i = 0; i < 4 && borrow != 0; ++i) {
          const u64 before = l[i];
          l[i] = before - borrow;
          borrow = before < borrow ? 1 : 0;
        }
      }
    }
    out[len++] = d;
    l[0] = (l[0] >> 1) | (l[1] << 63);
    l[1] = (l[1] >> 1) | (l[2] << 63);
    l[2] = (l[2] >> 1) | (l[3] << 63);
    l[3] >>= 1;
  }
  return len;
}

/// Affine odd multiples {1P, 3P, ..., (2·count-1)P}, batch-normalized so
/// the wNAF loop uses mixed additions and negation is a y-flip.
std::vector<AffinePoint> odd_multiples_affine(const AffinePoint& p, std::size_t count) {
  std::vector<JacobianPoint> jac;
  jac.reserve(count);
  jac.push_back(to_jacobian(p));
  const JacobianPoint twop = jdouble(jac[0]);
  for (std::size_t i = 1; i < count; ++i) jac.push_back(jadd(jac[i - 1], twop));
  return batch_to_affine(jac);
}

constexpr std::size_t kPointTableSize = 16;  // wNAF-5 odd multiples

/// Stack-allocated variant of odd_multiples_affine for the per-call
/// scalar_mul / double_scalar_mul_shamir tables — no heap allocation.
/// Pinned to the binary-GCD finv_baseline: this build (one inversion per
/// table) is part of the frozen baseline verify kernel that the bench
/// speedup ratios are measured against.
void odd_multiples_affine_16(const AffinePoint& p, AffinePoint out[kPointTableSize]) noexcept {
  JacobianPoint jac[kPointTableSize];
  jac[0] = to_jacobian(p);
  const JacobianPoint twop = jdouble(jac[0]);
  for (std::size_t i = 1; i < kPointTableSize; ++i) jac[i] = jadd(jac[i - 1], twop);
  // Montgomery batch inversion with stack prefixes.
  U256 prefix[kPointTableSize];
  U256 acc = U256::one();
  for (std::size_t i = 0; i < kPointTableSize; ++i) {
    prefix[i] = acc;
    acc = fmul(acc, jac[i].z);
  }
  U256 inv_all = finv_baseline(acc);
  for (std::size_t i = kPointTableSize; i-- > 0;) {
    const U256 zinv = fmul(inv_all, prefix[i]);
    inv_all = fmul(inv_all, jac[i].z);
    const U256 zinv2 = fsqr(zinv);
    out[i] = AffinePoint{fmul(jac[i].x, zinv2), fmul(jac[i].y, fmul(zinv2, zinv)), false};
  }
}

inline AffinePoint affine_neg(const AffinePoint& p) noexcept {
  return {p.x, fneg(p.y), false};
}

/// Static generator table: 1G, 3G, ..., 511G (256 affine points) — wide
/// enough for the GLV chain's wNAF-9 digits; the legacy Shamir kernel's
/// wNAF-7 digits index the first 64 entries (the same points PR-6 built).
/// 256 entries × 64 bytes = 16 KiB per table (G and λG), built once.
const std::vector<AffinePoint>& gen_odd_multiples() {
  static const std::vector<AffinePoint> table = odd_multiples_affine(kG, 256);
  return table;
}

/// Static λG table: elementwise β·x image of the generator table, because
/// λ·((2i+1)·G) = φ((2i+1)·G) = (β·x_i, y_i).
const std::vector<AffinePoint>& gen_lambda_odd_multiples() {
  static const std::vector<AffinePoint> table = [] {
    const auto& g = gen_odd_multiples();
    std::vector<AffinePoint> t(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) t[i] = AffinePoint{fmul(kBeta, g[i].x), g[i].y, false};
    return t;
  }();
  return table;
}

constexpr unsigned kWnafWidthPoint = 5;  // per-call tables: 16 entries
constexpr unsigned kWnafWidthBase = 7;   // legacy Shamir G digits: 64 entries
constexpr unsigned kWnafWidthGlvBase = 9;  // GLV half-scalar G digits: 256 entries

}  // namespace

JacobianPoint scalar_mul(const U256& k, const AffinePoint& p) noexcept {
  if (k.is_zero() || p.infinity) return JacobianPoint::identity();
  std::int16_t naf[264];
  const int len = wnaf_digits(naf, k, kWnafWidthPoint);
  AffinePoint table[kPointTableSize];
  odd_multiples_affine_16(p, table);
  JacobianPoint acc = JacobianPoint::identity();
  for (int i = len; i-- > 0;) {
    acc = jdouble(acc);
    const int d = naf[i];
    if (d > 0) {
      acc = jadd_mixed(acc, table[static_cast<std::size_t>((d - 1) / 2)]);
    } else if (d < 0) {
      acc = jadd_mixed(acc, affine_neg(table[static_cast<std::size_t>((-d - 1) / 2)]));
    }
  }
  return acc;
}

JacobianPoint scalar_mul_naive(const U256& k, const AffinePoint& p) noexcept {
  // Reference bit-at-a-time double-and-add; the property tests pin the
  // windowed/wNAF/Shamir kernels against this.
  if (k.is_zero() || p.infinity) return JacobianPoint::identity();
  const JacobianPoint base = to_jacobian(p);
  JacobianPoint acc = JacobianPoint::identity();
  for (int i = k.top_bit(); i >= 0; --i) {
    acc = jdouble(acc);
    if (k.bit(static_cast<unsigned>(i))) acc = jadd(acc, base);
  }
  return acc;
}

JacobianPoint scalar_mul_base(const U256& k) noexcept {
  if (k.is_zero()) return JacobianPoint::identity();
  const BaseTable& table = base_table();
  JacobianPoint acc = JacobianPoint::identity();
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t nib =
        static_cast<std::uint32_t>((k.w[i / 16] >> (4 * (i % 16))) & 0xF);
    if (nib != 0) acc = jadd_mixed(acc, table.pts[i][nib - 1]);
  }
  return acc;
}

JacobianPoint double_scalar_mul_shamir(const U256& u1, const U256& u2,
                                       const AffinePoint& p) noexcept {
  // Shamir's trick, interleaved: one shared doubling chain; u1·G digits
  // come from the static wNAF-7 generator table, u2·P digits from a
  // per-call batch-normalized wNAF-5 table.
  if (u2.is_zero() || p.infinity) return scalar_mul_base(u1);
  if (u1.is_zero()) return scalar_mul(u2, p);

  std::int16_t naf1[264];
  std::int16_t naf2[264];
  const int len1 = wnaf_digits(naf1, u1, kWnafWidthBase);
  const int len2 = wnaf_digits(naf2, u2, kWnafWidthPoint);
  const auto& gtab = gen_odd_multiples();
  AffinePoint ptab[kPointTableSize];
  odd_multiples_affine_16(p, ptab);

  JacobianPoint acc = JacobianPoint::identity();
  for (int i = (len1 > len2 ? len1 : len2); i-- > 0;) {
    acc = jdouble(acc);
    if (i < len1) {
      const int d = naf1[i];
      if (d > 0) {
        acc = jadd_mixed(acc, gtab[static_cast<std::size_t>((d - 1) / 2)]);
      } else if (d < 0) {
        acc = jadd_mixed(acc, affine_neg(gtab[static_cast<std::size_t>((-d - 1) / 2)]));
      }
    }
    if (i < len2) {
      const int d = naf2[i];
      if (d > 0) {
        acc = jadd_mixed(acc, ptab[static_cast<std::size_t>((d - 1) / 2)]);
      } else if (d < 0) {
        acc = jadd_mixed(acc, affine_neg(ptab[static_cast<std::size_t>((-d - 1) / 2)]));
      }
    }
  }
  return acc;
}

const U256& glv_lambda() noexcept { return kLambda; }
const U256& glv_beta() noexcept { return kBeta; }

GlvSplit glv_split(const U256& k) noexcept {
  // Lattice round-off: both representatives land in [0, n); the signed
  // value is the representative itself when ≤ n/2, else representative−n.
  const U256 c1 = mul_shift_384(k, kGlvG1);
  const U256 c2 = mul_shift_384(k, kGlvG2);
  const U256 r2 = nadd(nmul(c1, kGlvMinusB1), nmul(c2, kGlvMinusB2));
  const U256 r1 = nadd(nreduce(k), nneg(nmul(r2, kLambda)));
  GlvSplit s;
  s.neg1 = r1 > kHalfN;
  s.k1 = s.neg1 ? kN - r1 : r1;
  s.neg2 = r2 > kHalfN;
  s.k2 = s.neg2 ? kN - r2 : r2;
  return s;
}

namespace {

/// acc = 2·acc in place — dbl-2009-l like jdouble, minus the 96-byte
/// struct copy per iteration that `acc = jdouble(acc)` costs the chain.
inline void jdouble_ip(JacobianPoint& p) noexcept {
  if (p.is_infinity() || p.y.is_zero()) {
    p = JacobianPoint::identity();
    return;
  }
  const U256 a = fsqr(p.x);
  const U256 b = fsqr(p.y);
  const U256 c = fsqr(b);
  U256 d = fsub(fsub(fsqr(fadd(p.x, b)), a), c);
  d = fadd(d, d);
  const U256 e = fadd(fadd(a, a), a);
  const U256 x3 = fsub(fsqr(e), fadd(d, d));
  U256 c8 = fadd(c, c);
  c8 = fadd(c8, c8);
  c8 = fadd(c8, c8);
  p.z = fmul(fadd(p.y, p.y), p.z);  // uses the original Y1 — before the overwrite
  p.y = fsub(fmul(e, fsub(d, x3)), c8);
  p.x = x3;
}

/// acc += (bx, ±by) in place for an affine non-infinity operand; `neg`
/// folds the wNAF sign into s2 (fneg(y·k) ≡ (−y)·k mod p) so the table
/// entry is never copied or rewritten.
inline void jadd_mixed_ip(JacobianPoint& a, const U256& bx, const U256& by, bool neg) noexcept {
  if (a.is_infinity()) {
    a.x = bx;
    a.y = neg ? fneg(by) : by;
    a.z = U256::one();
    return;
  }
  const U256 z1z1 = fsqr(a.z);
  const U256 u2 = fmul(bx, z1z1);
  U256 s2 = fmul(by, fmul(z1z1, a.z));
  if (neg) s2 = fneg(s2);
  if (a.x == u2) {
    if (a.y != s2) {
      a = JacobianPoint::identity();
      return;
    }
    jdouble_ip(a);
    return;
  }
  const U256 h = fsub(u2, a.x);
  const U256 r = fsub(s2, a.y);
  const U256 h2 = fsqr(h);
  const U256 h3 = fmul(h2, h);
  const U256 u1h2 = fmul(a.x, h2);
  const U256 x3 = fsub(fsub(fsqr(r), h3), fadd(u1h2, u1h2));
  a.y = fsub(fmul(r, fsub(u1h2, x3)), fmul(a.y, h3));
  a.x = x3;
  a.z = fmul(h, a.z);
}

/// Four-stream GLV wNAF chain computing u1·G + u2·Q: both scalars are
/// split into ~128-bit halves, so the shared doubling chain is ~128 deep
/// instead of ~256. G / λG digits come from the static wNAF-8 tables;
/// Q / λQ digits from `qtab`/`lqtab` (width `qwidth`), which are either
/// true affine (`qz == nullptr`, the precomp-cache path) or
/// effective-affine on the isomorphism with Jacobian Z = *qz (the
/// inversion-free per-call path) — in the latter frame the static G
/// entries are mapped in by (x·Z², y·Z³) on use and the accumulator's Z
/// is rescaled once at the end.
JacobianPoint glv_chain(const U256& u1, const U256& u2, const AffinePoint* qtab,
                        const AffinePoint* lqtab, unsigned qwidth, const U256* qz) noexcept {
  const GlvSplit s1 = glv_split(u1);
  const GlvSplit s2 = glv_split(u2);
  // Half-scalar magnitudes stay under 2^130, so 140 digits suffice.
  std::int16_t naf[4][140];
  int len[4];
  len[0] = wnaf_digits(naf[0], s1.k1, kWnafWidthGlvBase);
  len[1] = wnaf_digits(naf[1], s1.k2, kWnafWidthGlvBase);
  len[2] = wnaf_digits(naf[2], s2.k1, qwidth);
  len[3] = wnaf_digits(naf[3], s2.k2, qwidth);
  const bool neg[4] = {s1.neg1, s1.neg2, s2.neg1, s2.neg2};

  const auto& gtab = gen_odd_multiples();
  const auto& lgtab = gen_lambda_odd_multiples();
  const AffinePoint* tabs[4] = {gtab.data(), lgtab.data(), qtab, lqtab};

  const bool iso = qz != nullptr;
  U256 zz, zzz;
  if (iso) {
    zz = fsqr(*qz);
    zzz = fmul(zz, *qz);
  }

  int top = 0;
  for (int t = 0; t < 4; ++t) top = len[t] > top ? len[t] : top;

  JacobianPoint acc = JacobianPoint::identity();
  for (int i = top; i-- > 0;) {
    jdouble_ip(acc);
    for (int t = 0; t < 4; ++t) {
      if (i >= len[t]) continue;
      const int d = naf[t][i];
      if (d == 0) continue;
      const AffinePoint& e = tabs[t][static_cast<std::size_t>(((d < 0 ? -d : d) - 1) / 2)];
      const bool flip = (d < 0) != neg[t];
      if (iso && t < 2) {
        // Map the true-affine static entry into the shared frame.
        jadd_mixed_ip(acc, fmul(e.x, zz), fmul(e.y, zzz), flip);
      } else {
        jadd_mixed_ip(acc, e.x, e.y, flip);
      }
    }
  }
  if (iso && !acc.is_infinity()) acc.z = fmul(acc.z, *qz);
  return acc;
}

}  // namespace

void build_point_tables(const AffinePoint& p, PointTables& out) noexcept {
  // Odd multiples 1P, 3P, ..., 31P via a co-Z ZADDU ladder (5M + 2S per
  // entry instead of a full Jacobian add), then a global-Z rescale so the
  // whole table shares one projective frame — no field inversion anywhere.
  const JacobianPoint d = jdouble(to_jacobian(p));  // 2P, z = 2y (never 0 on secp256k1)
  const U256 dzz = fsqr(d.z);
  const U256 dzzz = fmul(dzz, d.z);
  U256 x[kPointTableEntries];
  U256 y[kPointTableEntries];
  U256 h[kPointTableEntries];  // h[i] = frame_i / frame_{i-1}
  x[0] = fmul(p.x, dzz);  // P rescaled into 2P's frame
  y[0] = fmul(p.y, dzzz);
  U256 bx = d.x;  // 2P, co-Z with the current odd multiple
  U256 by = d.y;
  for (std::size_t i = 1; i < kPointTableEntries; ++i) {
    // ZADDU(P1 = 2P, P2 = (2i-1)P), both in frame_{i-1}: produces
    // (2i+1)P and 2P rescaled, co-Z in frame_i = frame_{i-1}·(X2-X1).
    const U256 dx = fsub(x[i - 1], bx);
    const U256 a = fsqr(dx);
    const U256 b = fmul(bx, a);
    const U256 c = fmul(x[i - 1], a);
    const U256 dy = fsub(y[i - 1], by);
    const U256 x3 = fsub(fsub(fsqr(dy), b), c);
    const U256 a1 = fmul(by, fsub(c, b));
    y[i] = fsub(fmul(dy, fsub(b, x3)), a1);
    x[i] = x3;
    h[i] = dx;
    bx = b;
    by = a1;
  }
  // Normalize every entry into the deepest frame (frame_15).
  out.q[kPointTableEntries - 1] = AffinePoint{x[kPointTableEntries - 1], y[kPointTableEntries - 1], false};
  U256 cprod = U256::one();
  for (std::size_t i = kPointTableEntries - 1; i-- > 0;) {
    cprod = fmul(cprod, h[i + 1]);
    const U256 c2 = fsqr(cprod);
    out.q[i] = AffinePoint{fmul(x[i], c2), fmul(y[i], fmul(c2, cprod)), false};
  }
  out.z = fmul(d.z, cprod);
  // λQ table: the endomorphism commutes with the frame scaling, so it is
  // still just the β·x map.
  for (std::size_t i = 0; i < kPointTableEntries; ++i) {
    out.lq[i] = AffinePoint{fmul(kBeta, out.q[i].x), out.q[i].y, false};
  }
}

JacobianPoint double_scalar_mul_tables(const U256& u1, const U256& u2,
                                       const PointTables& tables) noexcept {
  return glv_chain(u1, u2, tables.q, tables.lq, kWnafWidthPoint, &tables.z);
}

JacobianPoint double_scalar_mul(const U256& u1, const U256& u2, const AffinePoint& p) noexcept {
  if (u2.is_zero() || p.infinity) return scalar_mul_base(u1);
  PointTables tables;
  build_point_tables(p, tables);
  return double_scalar_mul_tables(u1, u2, tables);
}

PubkeyPrecomp build_pubkey_precomp(const AffinePoint& p) {
  PubkeyPrecomp pre;
  const auto q = odd_multiples_affine(p, PubkeyPrecomp::kEntries);
  for (std::size_t i = 0; i < PubkeyPrecomp::kEntries; ++i) {
    pre.q[i] = q[i];
    pre.lq[i] = AffinePoint{fmul(kBeta, q[i].x), q[i].y, false};
  }
  return pre;
}

JacobianPoint double_scalar_mul_precomp(const U256& u1, const U256& u2,
                                        const PubkeyPrecomp& pre) noexcept {
  if (u2.is_zero()) return scalar_mul_base(u1);
  return glv_chain(u1, u2, pre.q, pre.lq, PubkeyPrecomp::kWidth, nullptr);
}

bool on_curve(const AffinePoint& p) noexcept {
  if (p.infinity) return true;
  if (p.x >= kP || p.y >= kP) return false;
  const U256 lhs = fsqr(p.y);
  const U256 rhs = fadd(fmul(fsqr(p.x), p.x), U256(7));
  return lhs == rhs;
}

ByteArray<33> compress(const AffinePoint& p) noexcept {
  ByteArray<33> out{};
  out[0] = p.y.bit(0) ? 0x03 : 0x02;
  const auto xb = p.x.to_be_bytes();
  for (std::size_t i = 0; i < 32; ++i) out[i + 1] = xb[i];
  return out;
}

std::optional<AffinePoint> decompress(ByteSpan bytes) noexcept {
  if (bytes.size() != 33 || (bytes[0] != 0x02 && bytes[0] != 0x03)) return std::nullopt;
  const U256 x = U256::from_be_bytes(bytes.subspan(1));
  if (x >= kP) return std::nullopt;
  const U256 rhs = fadd(fmul(fsqr(x), x), U256(7));
  auto y = fsqrt(rhs);
  if (!y) return std::nullopt;
  const bool want_odd = bytes[0] == 0x03;
  if (y->bit(0) != want_odd) y = fneg(*y);
  const AffinePoint p{x, *y, false};
  if (!on_curve(p)) return std::nullopt;
  return p;
}

}  // namespace btcfast::crypto::secp
