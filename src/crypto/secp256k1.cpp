#include "crypto/secp256k1.h"

#include <array>
#include <vector>

namespace btcfast::crypto::secp {
namespace {

// p = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE FFFFFC2F
constexpr U256 make_p() {
  U256 p;
  p.w[0] = 0xFFFFFFFEFFFFFC2FULL;
  p.w[1] = 0xFFFFFFFFFFFFFFFFULL;
  p.w[2] = 0xFFFFFFFFFFFFFFFFULL;
  p.w[3] = 0xFFFFFFFFFFFFFFFFULL;
  return p;
}

// n = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE BAAEDCE6 AF48A03B BFD25E8C D0364141
constexpr U256 make_n() {
  U256 n;
  n.w[0] = 0xBFD25E8CD0364141ULL;
  n.w[1] = 0xBAAEDCE6AF48A03BULL;
  n.w[2] = 0xFFFFFFFFFFFFFFFEULL;
  n.w[3] = 0xFFFFFFFFFFFFFFFFULL;
  return n;
}

const U256 kP = make_p();
const U256 kN = make_n();
const U256 kHalfN = make_n() >> 1;

// 2^256 ≡ kC (mod p) with kC = 2^32 + 977.
const U256 kC(0x1000003D1ULL);

/// Reduce a 512-bit value mod p using the pseudo-Mersenne fold.
U256 reduce512(const U512& t) noexcept {
  // First fold: t = hi*2^256 + lo ≡ hi*C + lo.
  const U512 s1 = U512::from_u256(t.low256()) + t.high256().mul_wide(kC);
  // Second fold: the high part of s1 is < 2^34.
  const U512 s2 = U512::from_u256(s1.low256()) + s1.high256().mul_wide(kC);
  U256 r = s2.low256();
  if (!s2.high256().is_zero()) {
    // s2 overflowed 2^256 exactly once; 2^256 ≡ C.
    bool carry = false;
    r = add_carry(r, kC, carry);
  }
  while (r >= kP) r = r - kP;
  return r;
}

// 2^256 ≡ kNC (mod n); kNC = 2^256 - n is a 129-bit constant.
const U256 kNC = U256::zero() - make_n();  // wrapping arithmetic gives 2^256 - n

/// Reduce a 512-bit value mod n via repeated folding of the high part.
U256 reduce512_n(const U512& t) noexcept {
  // Fold 1: hi (<=256 bits) * c (129 bits) fits 385 bits.
  const U512 s1 = U512::from_u256(t.low256()) + t.high256().mul_wide(kNC);
  // Fold 2: hi < 2^129; product < 2^258.
  const U512 s2 = U512::from_u256(s1.low256()) + s1.high256().mul_wide(kNC);
  // Fold 3: hi < 2^3; product < 2^132.
  const U512 s3 = U512::from_u256(s2.low256()) + s2.high256().mul_wide(kNC);
  U256 r = s3.low256();
  if (!s3.high256().is_zero()) {
    bool carry = false;
    r = add_carry(r, kNC, carry);
  }
  while (r >= kN) r = r - kN;
  return r;
}

/// a^e mod p with the fast field multiply.
U256 fpow(const U256& a, const U256& e) noexcept {
  U256 result = U256::one();
  U256 base = a;
  const int top = e.top_bit();
  for (int i = 0; i <= top; ++i) {
    if (e.bit(static_cast<unsigned>(i))) result = fmul(result, base);
    base = fsqr(base);
  }
  return result;
}

AffinePoint make_generator() {
  AffinePoint g;
  g.infinity = false;
  g.x = *U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  g.y = *U256::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
  return g;
}

const AffinePoint kG = make_generator();

}  // namespace

const U256& field_p() noexcept { return kP; }
const U256& order_n() noexcept { return kN; }
const U256& half_order() noexcept { return kHalfN; }
const AffinePoint& generator() noexcept { return kG; }

U256 fadd(const U256& a, const U256& b) noexcept { return addmod(a, b, kP); }
U256 fsub(const U256& a, const U256& b) noexcept { return submod(a, b, kP); }
U256 fmul(const U256& a, const U256& b) noexcept { return reduce512(a.mul_wide(b)); }
U256 fsqr(const U256& a) noexcept { return reduce512(a.mul_wide(a)); }

U256 fneg(const U256& a) noexcept { return a.is_zero() ? a : kP - a; }

U256 nadd(const U256& a, const U256& b) noexcept { return addmod(a, b, kN); }

U256 nmul(const U256& a, const U256& b) noexcept { return reduce512_n(a.mul_wide(b)); }

U256 ninv(const U256& a) noexcept {
  // Fermat with the fast scalar multiply.
  U256 result = U256::one();
  U256 base = a;
  const U256 e = kN - U256(2);
  const int top = e.top_bit();
  for (int i = 0; i <= top; ++i) {
    if (e.bit(static_cast<unsigned>(i))) result = nmul(result, base);
    base = nmul(base, base);
  }
  return result;
}

U256 nreduce(const U256& a) noexcept { return a >= kN ? a - kN : a; }

U256 finv(const U256& a) noexcept { return fpow(a, kP - U256(2)); }

std::optional<U256> fsqrt(const U256& a) noexcept {
  // p ≡ 3 (mod 4): candidate = a^((p+1)/4).
  const U256 exponent = (kP + U256::one()) >> 2;
  const U256 cand = fpow(a, exponent);
  if (fsqr(cand) != a) return std::nullopt;
  return cand;
}

JacobianPoint to_jacobian(const AffinePoint& p) noexcept {
  if (p.infinity) return JacobianPoint::identity();
  return {p.x, p.y, U256::one()};
}

AffinePoint to_affine(const JacobianPoint& p) noexcept {
  if (p.is_infinity()) return AffinePoint::identity();
  const U256 zinv = finv(p.z);
  const U256 zinv2 = fsqr(zinv);
  const U256 zinv3 = fmul(zinv2, zinv);
  return {fmul(p.x, zinv2), fmul(p.y, zinv3), false};
}

JacobianPoint jdouble(const JacobianPoint& p) noexcept {
  if (p.is_infinity() || p.y.is_zero()) return JacobianPoint::identity();
  // Standard a=0 doubling: S = 4xy², M = 3x², x' = M² - 2S,
  // y' = M(S - x') - 8y⁴, z' = 2yz.
  const U256 y2 = fsqr(p.y);
  const U256 s = fmul(fmul(U256(4), p.x), y2);
  const U256 m = fmul(U256(3), fsqr(p.x));
  const U256 x3 = fsub(fsqr(m), fadd(s, s));
  const U256 y3 = fsub(fmul(m, fsub(s, x3)), fmul(U256(8), fsqr(y2)));
  const U256 z3 = fmul(fadd(p.y, p.y), p.z);
  return {x3, y3, z3};
}

JacobianPoint jadd(const JacobianPoint& a, const JacobianPoint& b) noexcept {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;
  const U256 z1z1 = fsqr(a.z);
  const U256 z2z2 = fsqr(b.z);
  const U256 u1 = fmul(a.x, z2z2);
  const U256 u2 = fmul(b.x, z1z1);
  const U256 s1 = fmul(a.y, fmul(z2z2, b.z));
  const U256 s2 = fmul(b.y, fmul(z1z1, a.z));
  if (u1 == u2) {
    if (s1 != s2) return JacobianPoint::identity();
    return jdouble(a);
  }
  const U256 h = fsub(u2, u1);
  const U256 r = fsub(s2, s1);
  const U256 h2 = fsqr(h);
  const U256 h3 = fmul(h2, h);
  const U256 u1h2 = fmul(u1, h2);
  const U256 x3 = fsub(fsub(fsqr(r), h3), fadd(u1h2, u1h2));
  const U256 y3 = fsub(fmul(r, fsub(u1h2, x3)), fmul(s1, h3));
  const U256 z3 = fmul(h, fmul(a.z, b.z));
  return {x3, y3, z3};
}

JacobianPoint jadd_mixed(const JacobianPoint& a, const AffinePoint& b) noexcept {
  if (b.infinity) return a;
  if (a.is_infinity()) return to_jacobian(b);
  const U256 z1z1 = fsqr(a.z);
  const U256 u2 = fmul(b.x, z1z1);
  const U256 s2 = fmul(b.y, fmul(z1z1, a.z));
  if (a.x == u2) {
    if (a.y != s2) return JacobianPoint::identity();
    return jdouble(a);
  }
  const U256 h = fsub(u2, a.x);
  const U256 r = fsub(s2, a.y);
  const U256 h2 = fsqr(h);
  const U256 h3 = fmul(h2, h);
  const U256 u1h2 = fmul(a.x, h2);
  const U256 x3 = fsub(fsub(fsqr(r), h3), fadd(u1h2, u1h2));
  const U256 y3 = fsub(fmul(r, fsub(u1h2, x3)), fmul(a.y, h3));
  const U256 z3 = fmul(h, a.z);
  return {x3, y3, z3};
}

namespace {

/// Batch Jacobian->affine normalization with one field inversion
/// (Montgomery's trick): invert the product of all z's, then peel.
std::vector<AffinePoint> batch_to_affine(const std::vector<JacobianPoint>& pts) {
  const std::size_t n = pts.size();
  std::vector<AffinePoint> out(n);
  std::vector<U256> prefix(n);
  U256 acc = U256::one();
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i] = acc;  // product of z_0..z_{i-1}
    acc = fmul(acc, pts[i].z);
  }
  U256 inv_all = finv(acc);  // 1 / (z_0 * ... * z_{n-1})
  for (std::size_t i = n; i-- > 0;) {
    const U256 zinv = fmul(inv_all, prefix[i]);
    inv_all = fmul(inv_all, pts[i].z);
    const U256 zinv2 = fsqr(zinv);
    out[i] = AffinePoint{fmul(pts[i].x, zinv2), fmul(pts[i].y, fmul(zinv2, zinv)), false};
  }
  return out;
}

/// Fixed-base comb table: kBaseTable[i][j] == (j+1) * 16^i * G, so a
/// 256-bit scalar resolves to at most 64 mixed additions with no
/// doublings. Built once per process (~1k point ops, batch-normalized).
struct BaseTable {
  AffinePoint pts[64][15];
};

const BaseTable& base_table() {
  static const BaseTable table = [] {
    std::vector<JacobianPoint> jac;
    jac.reserve(64 * 15);
    JacobianPoint row_base = to_jacobian(kG);  // 16^i * G
    for (int i = 0; i < 64; ++i) {
      JacobianPoint cur = row_base;
      for (int j = 0; j < 15; ++j) {
        jac.push_back(cur);
        cur = jadd(cur, row_base);
      }
      row_base = cur;  // 16 * previous row base
    }
    const auto affine = batch_to_affine(jac);
    BaseTable t;
    for (int i = 0; i < 64; ++i) {
      for (int j = 0; j < 15; ++j) t.pts[i][j] = affine[static_cast<std::size_t>(i * 15 + j)];
    }
    return t;
  }();
  return table;
}

/// Width-4 wNAF digits (values in {0, ±1, ±3, ..., ±15}), LSB first.
std::vector<std::int8_t> wnaf4(U256 k) {
  std::vector<std::int8_t> digits;
  digits.reserve(260);
  while (!k.is_zero()) {
    std::int8_t d = 0;
    if (k.bit(0)) {
      const std::uint32_t m = static_cast<std::uint32_t>(k.low64() & 31);
      if (m >= 16) {
        d = static_cast<std::int8_t>(static_cast<int>(m) - 32);
        k = k + U256(32 - m);
      } else {
        d = static_cast<std::int8_t>(m);
        k = k - U256(m);
      }
    }
    digits.push_back(d);
    k = k >> 1;
  }
  return digits;
}

/// Odd multiples 1P, 3P, ..., 15P (Jacobian) for the wNAF loop.
std::array<JacobianPoint, 8> odd_multiples(const AffinePoint& p) {
  std::array<JacobianPoint, 8> table;
  table[0] = to_jacobian(p);
  const JacobianPoint twop = jdouble(table[0]);
  for (int i = 1; i < 8; ++i) table[static_cast<std::size_t>(i)] = jadd(table[static_cast<std::size_t>(i - 1)], twop);
  return table;
}

JacobianPoint jneg(const JacobianPoint& p) noexcept { return {p.x, fneg(p.y), p.z}; }

}  // namespace

JacobianPoint scalar_mul(const U256& k, const AffinePoint& p) noexcept {
  if (k.is_zero() || p.infinity) return JacobianPoint::identity();
  const auto naf = wnaf4(k);
  const auto table = odd_multiples(p);
  JacobianPoint acc = JacobianPoint::identity();
  for (std::size_t i = naf.size(); i-- > 0;) {
    acc = jdouble(acc);
    const int d = naf[i];
    if (d > 0) {
      acc = jadd(acc, table[static_cast<std::size_t>((d - 1) / 2)]);
    } else if (d < 0) {
      acc = jadd(acc, jneg(table[static_cast<std::size_t>((-d - 1) / 2)]));
    }
  }
  return acc;
}

JacobianPoint scalar_mul_base(const U256& k) noexcept {
  if (k.is_zero()) return JacobianPoint::identity();
  const BaseTable& table = base_table();
  JacobianPoint acc = JacobianPoint::identity();
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t nib =
        static_cast<std::uint32_t>((k.w[i / 16] >> (4 * (i % 16))) & 0xF);
    if (nib != 0) acc = jadd_mixed(acc, table.pts[i][nib - 1]);
  }
  return acc;
}

JacobianPoint double_scalar_mul(const U256& u1, const U256& u2, const AffinePoint& p) noexcept {
  // u2*P via wNAF, then the fixed-base u1*G folded in (table adds only).
  JacobianPoint acc = scalar_mul(u2, p);
  return jadd(acc, scalar_mul_base(u1));
}

bool on_curve(const AffinePoint& p) noexcept {
  if (p.infinity) return true;
  if (p.x >= kP || p.y >= kP) return false;
  const U256 lhs = fsqr(p.y);
  const U256 rhs = fadd(fmul(fsqr(p.x), p.x), U256(7));
  return lhs == rhs;
}

ByteArray<33> compress(const AffinePoint& p) noexcept {
  ByteArray<33> out{};
  out[0] = p.y.bit(0) ? 0x03 : 0x02;
  const auto xb = p.x.to_be_bytes();
  for (std::size_t i = 0; i < 32; ++i) out[i + 1] = xb[i];
  return out;
}

std::optional<AffinePoint> decompress(ByteSpan bytes) noexcept {
  if (bytes.size() != 33 || (bytes[0] != 0x02 && bytes[0] != 0x03)) return std::nullopt;
  const U256 x = U256::from_be_bytes(bytes.subspan(1));
  if (x >= kP) return std::nullopt;
  const U256 rhs = fadd(fmul(fsqr(x), x), U256(7));
  auto y = fsqrt(rhs);
  if (!y) return std::nullopt;
  const bool want_odd = bytes[0] == 0x03;
  if (y->bit(0) != want_odd) y = fneg(*y);
  const AffinePoint p{x, *y, false};
  if (!on_curve(p)) return std::nullopt;
  return p;
}

}  // namespace btcfast::crypto::secp
