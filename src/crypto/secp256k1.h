// secp256k1 elliptic-curve arithmetic implemented from scratch on top of
// U256: fast field reduction for p = 2^256 - 2^32 - 977, Jacobian point
// arithmetic, scalar multiplication, and compressed-point (de)serialization.
//
// NOTE: the implementation is *not* constant-time; it backs a protocol
// simulator, not a production signer. Functional behaviour (including
// RFC-6979 determinism in ecdsa.h) matches the real curve.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "crypto/uint256.h"

namespace btcfast::crypto::secp {

/// Field prime p = 2^256 - 2^32 - 977.
[[nodiscard]] const U256& field_p() noexcept;
/// Group order n.
[[nodiscard]] const U256& order_n() noexcept;
/// n / 2, for low-s signature normalization.
[[nodiscard]] const U256& half_order() noexcept;

// --- field arithmetic mod p (inputs must already be < p) ---
[[nodiscard]] U256 fadd(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fsub(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fmul(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fsqr(const U256& a) noexcept;
[[nodiscard]] U256 fneg(const U256& a) noexcept;
[[nodiscard]] U256 finv(const U256& a) noexcept;
/// Frozen binary-GCD field inverse — see ninv_baseline below.
[[nodiscard]] U256 finv_baseline(const U256& a) noexcept;
/// Square root mod p (p ≡ 3 mod 4). Returns nullopt if a is a non-residue.
[[nodiscard]] std::optional<U256> fsqrt(const U256& a) noexcept;

// --- scalar arithmetic mod the group order n (inputs < n) ---
// Uses the same pseudo-Mersenne folding as the field (n = 2^256 - c with a
// 129-bit c), ~50x faster than the generic bitwise divmod path; the ECDSA
// hot loop (one modular inversion per sign/verify) lives here.
[[nodiscard]] U256 nadd(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 nmul(const U256& a, const U256& b) noexcept;
/// Modular inverse mod n (batched-divsteps, variable time). a must be nonzero.
[[nodiscard]] U256 ninv(const U256& a) noexcept;
/// Frozen binary-GCD inverse mod n — the PR-6 baseline kernel's inversion,
/// kept verbatim so baseline-vs-optimized speedup ratios stay honest.
[[nodiscard]] U256 ninv_baseline(const U256& a) noexcept;
/// Reduce an arbitrary 256-bit value mod n.
[[nodiscard]] U256 nreduce(const U256& a) noexcept;

/// Affine curve point; `infinity` true means the identity element.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  [[nodiscard]] static AffinePoint identity() noexcept { return {}; }
  [[nodiscard]] bool operator==(const AffinePoint& o) const noexcept {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }
};

/// Jacobian projective point (z == 0 means infinity).
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;

  [[nodiscard]] static JacobianPoint identity() noexcept { return {U256::one(), U256::one(), U256::zero()}; }
  [[nodiscard]] bool is_infinity() const noexcept { return z.is_zero(); }
};

/// The curve generator G.
[[nodiscard]] const AffinePoint& generator() noexcept;

[[nodiscard]] JacobianPoint to_jacobian(const AffinePoint& p) noexcept;
[[nodiscard]] AffinePoint to_affine(const JacobianPoint& p) noexcept;

[[nodiscard]] JacobianPoint jdouble(const JacobianPoint& p) noexcept;
[[nodiscard]] JacobianPoint jadd(const JacobianPoint& a, const JacobianPoint& b) noexcept;
/// Mixed addition with an affine (non-infinity handled) second operand.
[[nodiscard]] JacobianPoint jadd_mixed(const JacobianPoint& a, const AffinePoint& b) noexcept;

/// k * P via width-5 wNAF over a batch-normalized affine odd-multiples
/// table (k taken mod n implicitly by callers).
[[nodiscard]] JacobianPoint scalar_mul(const U256& k, const AffinePoint& p) noexcept;
/// Reference bit-at-a-time double-and-add. Slow; exists so property tests
/// can pin the windowed/wNAF/Shamir kernels against an obviously-correct
/// implementation.
[[nodiscard]] JacobianPoint scalar_mul_naive(const U256& k, const AffinePoint& p) noexcept;
/// k * G.
[[nodiscard]] JacobianPoint scalar_mul_base(const U256& k) noexcept;
/// u1*G + u2*P — the ECDSA-verify hot path. Decomposes both scalars with
/// the GLV endomorphism (see glv_split) and runs one shared ~128-deep
/// doubling chain over four wNAF digit streams; the per-call P / λP
/// tables are built without any field inversion (co-Z ladder + shared
/// projective frame).
[[nodiscard]] JacobianPoint double_scalar_mul(const U256& u1, const U256& u2,
                                              const AffinePoint& p) noexcept;
/// The pre-GLV 2-term Shamir kernel (wNAF-7 G table + per-call wNAF-5 P
/// table over a full ~256-deep chain, one field inversion to normalize
/// the table). Retained as the in-binary baseline so benches can report
/// a hardware-independent speedup ratio and property tests can cross-pin
/// the kernels; not called on any production path.
[[nodiscard]] JacobianPoint double_scalar_mul_shamir(const U256& u1, const U256& u2,
                                                     const AffinePoint& p) noexcept;

// --- GLV endomorphism -------------------------------------------------
// secp256k1 has an efficient endomorphism φ(x, y) = (β·x, y) = λ·(x, y)
// with λ³ ≡ 1 (mod n), β³ ≡ 1 (mod p). Any scalar k splits into
// k ≡ ±k1 ± λ·k2 (mod n) with |k1|, |k2| ≲ 2^128, so k·P becomes
// k1·P + k2·φ(P) over a half-length doubling chain, and φ(P) costs one
// field multiply per table entry.

/// λ (the eigenvalue mod n) and β (the x-coordinate scale mod p).
[[nodiscard]] const U256& glv_lambda() noexcept;
[[nodiscard]] const U256& glv_beta() noexcept;

/// Signed decomposition k ≡ (neg1 ? -k1 : k1) + λ·(neg2 ? -k2 : k2)
/// (mod n); magnitudes k1, k2 fit ~129 bits.
struct GlvSplit {
  U256 k1;
  U256 k2;
  bool neg1 = false;
  bool neg2 = false;
};
[[nodiscard]] GlvSplit glv_split(const U256& k) noexcept;

// --- precomputed / staged verify tables -------------------------------

/// Number of odd multiples in the per-call wNAF-5 tables.
inline constexpr std::size_t kPointTableEntries = 16;

/// Per-call odd-multiple tables for Q and λQ in a shared projective
/// frame: entry i holds the coordinates of (2i+1)·Q on the curve
/// isomorphism with Jacobian Z = `z` (i.e. true affine x is x/z², y is
/// y/z³). Built with zero field inversions; double_scalar_mul_tables
/// consumes the frame directly and rescales once at the end.
struct PointTables {
  AffinePoint q[kPointTableEntries];
  AffinePoint lq[kPointTableEntries];
  U256 z;
};
/// Build the shared-frame tables for a non-infinity curve point.
void build_point_tables(const AffinePoint& p, PointTables& out) noexcept;
/// u1*G + u2*Q with tables prebuilt by build_point_tables — the staged
/// entry point batch_verify uses so table building, scalar inversion,
/// and chain evaluation can be scheduled independently across a batch.
[[nodiscard]] JacobianPoint double_scalar_mul_tables(const U256& u1, const U256& u2,
                                                     const PointTables& tables) noexcept;

/// Wide (wNAF-8) true-affine odd-multiple tables for a fixed public key,
/// cached across calls by PubkeyPrecompCache. ~18 KiB per key.
struct PubkeyPrecomp {
  static constexpr unsigned kWidth = 8;
  static constexpr std::size_t kEntries = 128;  // 1Q, 3Q, ..., 255Q
  AffinePoint q[kEntries];
  AffinePoint lq[kEntries];
};
/// Build the wide tables (one Montgomery-batched field inversion).
[[nodiscard]] PubkeyPrecomp build_pubkey_precomp(const AffinePoint& p);
/// u1*G + u2*Q against cached wide tables: skips the per-call table
/// build entirely and halves the Q-side additions (wNAF-7 vs wNAF-5).
[[nodiscard]] JacobianPoint double_scalar_mul_precomp(const U256& u1, const U256& u2,
                                                      const PubkeyPrecomp& pre) noexcept;

/// y² == x³ + 7 check.
[[nodiscard]] bool on_curve(const AffinePoint& p) noexcept;

/// 33-byte compressed SEC1 encoding (02/03 prefix). Identity not encodable.
[[nodiscard]] ByteArray<33> compress(const AffinePoint& p) noexcept;
/// Parse a 33-byte compressed point; validates curve membership.
[[nodiscard]] std::optional<AffinePoint> decompress(ByteSpan bytes) noexcept;

}  // namespace btcfast::crypto::secp
