// secp256k1 elliptic-curve arithmetic implemented from scratch on top of
// U256: fast field reduction for p = 2^256 - 2^32 - 977, Jacobian point
// arithmetic, scalar multiplication, and compressed-point (de)serialization.
//
// NOTE: the implementation is *not* constant-time; it backs a protocol
// simulator, not a production signer. Functional behaviour (including
// RFC-6979 determinism in ecdsa.h) matches the real curve.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "crypto/uint256.h"

namespace btcfast::crypto::secp {

/// Field prime p = 2^256 - 2^32 - 977.
[[nodiscard]] const U256& field_p() noexcept;
/// Group order n.
[[nodiscard]] const U256& order_n() noexcept;
/// n / 2, for low-s signature normalization.
[[nodiscard]] const U256& half_order() noexcept;

// --- field arithmetic mod p (inputs must already be < p) ---
[[nodiscard]] U256 fadd(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fsub(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fmul(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 fsqr(const U256& a) noexcept;
[[nodiscard]] U256 fneg(const U256& a) noexcept;
[[nodiscard]] U256 finv(const U256& a) noexcept;
/// Square root mod p (p ≡ 3 mod 4). Returns nullopt if a is a non-residue.
[[nodiscard]] std::optional<U256> fsqrt(const U256& a) noexcept;

// --- scalar arithmetic mod the group order n (inputs < n) ---
// Uses the same pseudo-Mersenne folding as the field (n = 2^256 - c with a
// 129-bit c), ~50x faster than the generic bitwise divmod path; the ECDSA
// hot loop (one modular inversion per sign/verify) lives here.
[[nodiscard]] U256 nadd(const U256& a, const U256& b) noexcept;
[[nodiscard]] U256 nmul(const U256& a, const U256& b) noexcept;
/// Modular inverse mod n via binary extended GCD. a must be nonzero.
[[nodiscard]] U256 ninv(const U256& a) noexcept;
/// Reduce an arbitrary 256-bit value mod n.
[[nodiscard]] U256 nreduce(const U256& a) noexcept;

/// Affine curve point; `infinity` true means the identity element.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  [[nodiscard]] static AffinePoint identity() noexcept { return {}; }
  [[nodiscard]] bool operator==(const AffinePoint& o) const noexcept {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }
};

/// Jacobian projective point (z == 0 means infinity).
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;

  [[nodiscard]] static JacobianPoint identity() noexcept { return {U256::one(), U256::one(), U256::zero()}; }
  [[nodiscard]] bool is_infinity() const noexcept { return z.is_zero(); }
};

/// The curve generator G.
[[nodiscard]] const AffinePoint& generator() noexcept;

[[nodiscard]] JacobianPoint to_jacobian(const AffinePoint& p) noexcept;
[[nodiscard]] AffinePoint to_affine(const JacobianPoint& p) noexcept;

[[nodiscard]] JacobianPoint jdouble(const JacobianPoint& p) noexcept;
[[nodiscard]] JacobianPoint jadd(const JacobianPoint& a, const JacobianPoint& b) noexcept;
/// Mixed addition with an affine (non-infinity handled) second operand.
[[nodiscard]] JacobianPoint jadd_mixed(const JacobianPoint& a, const AffinePoint& b) noexcept;

/// k * P via width-5 wNAF over a batch-normalized affine odd-multiples
/// table (k taken mod n implicitly by callers).
[[nodiscard]] JacobianPoint scalar_mul(const U256& k, const AffinePoint& p) noexcept;
/// Reference bit-at-a-time double-and-add. Slow; exists so property tests
/// can pin the windowed/wNAF/Shamir kernels against an obviously-correct
/// implementation.
[[nodiscard]] JacobianPoint scalar_mul_naive(const U256& k, const AffinePoint& p) noexcept;
/// k * G.
[[nodiscard]] JacobianPoint scalar_mul_base(const U256& k) noexcept;
/// u1*G + u2*P with interleaved (Shamir) evaluation — the ECDSA-verify hot path.
[[nodiscard]] JacobianPoint double_scalar_mul(const U256& u1, const U256& u2,
                                              const AffinePoint& p) noexcept;

/// y² == x³ + 7 check.
[[nodiscard]] bool on_curve(const AffinePoint& p) noexcept;

/// 33-byte compressed SEC1 encoding (02/03 prefix). Identity not encodable.
[[nodiscard]] ByteArray<33> compress(const AffinePoint& p) noexcept;
/// Parse a 33-byte compressed point; validates curve membership.
[[nodiscard]] std::optional<AffinePoint> decompress(ByteSpan bytes) noexcept;

}  // namespace btcfast::crypto::secp
