#include "crypto/sha256.h"

#include <atomic>
#include <cstring>

namespace btcfast::crypto {
namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

constexpr std::uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline std::uint32_t rotr(std::uint32_t x, int n) noexcept { return (x >> n) | (x << (32 - n)); }

inline std::uint32_t be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

inline void put_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline std::uint32_t sigma_big0(std::uint32_t x) noexcept {
  return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22);
}
inline std::uint32_t sigma_big1(std::uint32_t x) noexcept {
  return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25);
}
inline std::uint32_t sigma_sml0(std::uint32_t x) noexcept {
  return rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3);
}
inline std::uint32_t sigma_sml1(std::uint32_t x) noexcept {
  return rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10);
}

/// One round with rotating registers: updates d and h in place so the
/// unrolled caller never shuffles eight variables.
inline void round(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t& d,
                  std::uint32_t e, std::uint32_t f, std::uint32_t g, std::uint32_t& h,
                  std::uint32_t kw) noexcept {
  const std::uint32_t t1 = h + sigma_big1(e) + ((e & f) ^ (~e & g)) + kw;
  const std::uint32_t t2 = sigma_big0(a) + ((a & b) ^ (a & c) ^ (b & c));
  d += t1;
  h = t1 + t2;
}

}  // namespace

namespace detail {

void sha256_compress_scalar(std::uint32_t state[8], const std::uint8_t block[64]) noexcept {
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  std::uint32_t w0 = be32(block), w1 = be32(block + 4), w2 = be32(block + 8),
                w3 = be32(block + 12), w4 = be32(block + 16), w5 = be32(block + 20),
                w6 = be32(block + 24), w7 = be32(block + 28), w8 = be32(block + 32),
                w9 = be32(block + 36), w10 = be32(block + 40), w11 = be32(block + 44),
                w12 = be32(block + 48), w13 = be32(block + 52), w14 = be32(block + 56),
                w15 = be32(block + 60);

  round(a, b, c, d, e, f, g, h, kK[0] + w0);
  round(h, a, b, c, d, e, f, g, kK[1] + w1);
  round(g, h, a, b, c, d, e, f, kK[2] + w2);
  round(f, g, h, a, b, c, d, e, kK[3] + w3);
  round(e, f, g, h, a, b, c, d, kK[4] + w4);
  round(d, e, f, g, h, a, b, c, kK[5] + w5);
  round(c, d, e, f, g, h, a, b, kK[6] + w6);
  round(b, c, d, e, f, g, h, a, kK[7] + w7);
  round(a, b, c, d, e, f, g, h, kK[8] + w8);
  round(h, a, b, c, d, e, f, g, kK[9] + w9);
  round(g, h, a, b, c, d, e, f, kK[10] + w10);
  round(f, g, h, a, b, c, d, e, kK[11] + w11);
  round(e, f, g, h, a, b, c, d, kK[12] + w12);
  round(d, e, f, g, h, a, b, c, kK[13] + w13);
  round(c, d, e, f, g, h, a, b, kK[14] + w14);
  round(b, c, d, e, f, g, h, a, kK[15] + w15);

#define BTCFAST_SHA256_EXPAND()                                     \
  w0 += sigma_sml1(w14) + w9 + sigma_sml0(w1);                      \
  w1 += sigma_sml1(w15) + w10 + sigma_sml0(w2);                     \
  w2 += sigma_sml1(w0) + w11 + sigma_sml0(w3);                      \
  w3 += sigma_sml1(w1) + w12 + sigma_sml0(w4);                      \
  w4 += sigma_sml1(w2) + w13 + sigma_sml0(w5);                      \
  w5 += sigma_sml1(w3) + w14 + sigma_sml0(w6);                      \
  w6 += sigma_sml1(w4) + w15 + sigma_sml0(w7);                      \
  w7 += sigma_sml1(w5) + w0 + sigma_sml0(w8);                       \
  w8 += sigma_sml1(w6) + w1 + sigma_sml0(w9);                       \
  w9 += sigma_sml1(w7) + w2 + sigma_sml0(w10);                      \
  w10 += sigma_sml1(w8) + w3 + sigma_sml0(w11);                     \
  w11 += sigma_sml1(w9) + w4 + sigma_sml0(w12);                     \
  w12 += sigma_sml1(w10) + w5 + sigma_sml0(w13);                    \
  w13 += sigma_sml1(w11) + w6 + sigma_sml0(w14);                    \
  w14 += sigma_sml1(w12) + w7 + sigma_sml0(w15);                    \
  w15 += sigma_sml1(w13) + w8 + sigma_sml0(w0)

#define BTCFAST_SHA256_SIXTEEN(base)                                \
  round(a, b, c, d, e, f, g, h, kK[(base) + 0] + w0);               \
  round(h, a, b, c, d, e, f, g, kK[(base) + 1] + w1);               \
  round(g, h, a, b, c, d, e, f, kK[(base) + 2] + w2);               \
  round(f, g, h, a, b, c, d, e, kK[(base) + 3] + w3);               \
  round(e, f, g, h, a, b, c, d, kK[(base) + 4] + w4);               \
  round(d, e, f, g, h, a, b, c, kK[(base) + 5] + w5);               \
  round(c, d, e, f, g, h, a, b, kK[(base) + 6] + w6);               \
  round(b, c, d, e, f, g, h, a, kK[(base) + 7] + w7);               \
  round(a, b, c, d, e, f, g, h, kK[(base) + 8] + w8);               \
  round(h, a, b, c, d, e, f, g, kK[(base) + 9] + w9);               \
  round(g, h, a, b, c, d, e, f, kK[(base) + 10] + w10);             \
  round(f, g, h, a, b, c, d, e, kK[(base) + 11] + w11);             \
  round(e, f, g, h, a, b, c, d, kK[(base) + 12] + w12);             \
  round(d, e, f, g, h, a, b, c, kK[(base) + 13] + w13);             \
  round(c, d, e, f, g, h, a, b, kK[(base) + 14] + w14);             \
  round(b, c, d, e, f, g, h, a, kK[(base) + 15] + w15)

  BTCFAST_SHA256_EXPAND();
  BTCFAST_SHA256_SIXTEEN(16);
  BTCFAST_SHA256_EXPAND();
  BTCFAST_SHA256_SIXTEEN(32);
  BTCFAST_SHA256_EXPAND();
  BTCFAST_SHA256_SIXTEEN(48);

#undef BTCFAST_SHA256_EXPAND
#undef BTCFAST_SHA256_SIXTEEN

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace detail

namespace {

using CompressFn = void (*)(std::uint32_t*, const std::uint8_t*) noexcept;

// Sanitizer builds pin the scalar kernel so ASan/UBSan instrument plain
// C++ instead of intrinsics; otherwise tests may toggle at runtime.
#if defined(BTCFAST_FORCE_SCALAR_SHA256)
constexpr bool kScalarPinned = true;
#else
constexpr bool kScalarPinned = false;
#endif

std::atomic<bool> g_force_scalar{kScalarPinned};

CompressFn dispatched_compress() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  if (!g_force_scalar.load(std::memory_order_relaxed)) {
    static const bool shani = detail::sha256_shani_supported();
    if (shani) return &detail::sha256_compress_shani;
  }
#endif
  return &detail::sha256_compress_scalar;
}

/// Final sha256 pass over a 32-byte first-round digest: one compression
/// of digest || 0x80 || zeros || len(256 bits).
Sha256Digest sha256_of_digest(const std::uint32_t first[8], CompressFn compress) noexcept {
  std::uint8_t block[64] = {};
  for (int i = 0; i < 8; ++i) put_be32(block + 4 * i, first[i]);
  block[32] = 0x80;
  block[62] = 0x01;  // 256 bits, big-endian
  std::uint32_t state[8];
  std::memcpy(state, kInit, sizeof(state));
  compress(state, block);
  Sha256Digest out{};
  for (int i = 0; i < 8; ++i) put_be32(out.data() + 4 * i, state[i]);
  return out;
}

}  // namespace

void sha256_compress(std::uint32_t state[8], const std::uint8_t block[64]) noexcept {
  dispatched_compress()(state, block);
}

const char* sha256_impl_name() noexcept {
  return dispatched_compress() == &detail::sha256_compress_scalar ? "scalar" : "sha-ni";
}

bool sha256_force_scalar(bool force) noexcept {
  return g_force_scalar.exchange(kScalarPinned || force, std::memory_order_relaxed);
}

void Sha256::reset() noexcept {
  std::memcpy(state_, kInit, sizeof(state_));
  total_ = 0;
  buflen_ = 0;
}

Sha256& Sha256::update(ByteSpan data) noexcept {
  const CompressFn compress = dispatched_compress();
  total_ += data.size();
  std::size_t off = 0;
  if (buflen_ > 0) {
    const std::size_t need = 64 - buflen_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buf_ + buflen_, data.data(), take);
    buflen_ += take;
    off += take;
    if (buflen_ == 64) {
      compress(state_, buf_);
      buflen_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    compress(state_, data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_, data.data() + off, data.size() - off);
    buflen_ = data.size() - off;
  }
  return *this;
}

Sha256Digest Sha256::finalize() noexcept {
  const std::uint64_t bitlen = total_ * 8;
  std::uint8_t pad[72];
  pad[0] = 0x80;
  // Pad with zeros until (len % 64) == 56, then 8 bytes of big-endian length.
  const std::size_t padlen = 1 + ((119 - (total_ % 64)) % 64);
  std::memset(pad + 1, 0, padlen - 1);
  update({pad, padlen});
  std::uint8_t lenbuf[8];
  for (int i = 0; i < 8; ++i) lenbuf[i] = static_cast<std::uint8_t>(bitlen >> (56 - 8 * i));
  update({lenbuf, 8});

  Sha256Digest out{};
  for (int i = 0; i < 8; ++i) put_be32(out.data() + 4 * i, state_[i]);
  reset();  // auto-reset: see the contract in sha256.h
  return out;
}

Sha256Digest sha256(ByteSpan data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Sha256Digest sha256d(ByteSpan data) noexcept {
  // The two shapes that dominate (Merkle pairs, block headers) get the
  // unrolled kernels even through this generic entry point.
  if (data.size() == 64) return sha256d_64(data.data());
  if (data.size() == 80) return sha256d_80(data.data());
  const Sha256Digest first = sha256(data);
  return sha256({first.data(), first.size()});
}

Sha256Digest sha256d_64(const std::uint8_t data[64]) noexcept {
  const CompressFn compress = dispatched_compress();
  std::uint32_t state[8];
  std::memcpy(state, kInit, sizeof(state));
  compress(state, data);
  // Padding block for a 64-byte message: 0x80, zeros, len = 512 bits.
  std::uint8_t pad[64] = {};
  pad[0] = 0x80;
  pad[62] = 0x02;
  compress(state, pad);
  return sha256_of_digest(state, compress);
}

Sha256Digest sha256d_80(const std::uint8_t data[80]) noexcept {
  const CompressFn compress = dispatched_compress();
  std::uint32_t state[8];
  std::memcpy(state, kInit, sizeof(state));
  compress(state, data);
  // Tail block: 16 data bytes, 0x80, zeros, len = 640 bits.
  std::uint8_t tail[64] = {};
  std::memcpy(tail, data + 64, 16);
  tail[16] = 0x80;
  tail[62] = 0x02;
  tail[63] = 0x80;
  compress(state, tail);
  return sha256_of_digest(state, compress);
}

Sha256Midstate Sha256Midstate::of_first_block(const std::uint8_t block64[64]) noexcept {
  Sha256Midstate m;
  std::memcpy(m.state_, kInit, sizeof(m.state_));
  sha256_compress(m.state_, block64);
  return m;
}

Sha256Digest Sha256Midstate::sha256d_tail16(const std::uint8_t tail16[16]) const noexcept {
  const CompressFn compress = dispatched_compress();
  std::uint32_t state[8];
  std::memcpy(state, state_, sizeof(state));
  std::uint8_t tail[64] = {};
  std::memcpy(tail, tail16, 16);
  tail[16] = 0x80;
  tail[62] = 0x02;
  tail[63] = 0x80;  // 640 bits
  compress(state, tail);
  return sha256_of_digest(state, compress);
}

}  // namespace btcfast::crypto
