// SHA-256 (FIPS 180-4), implemented from scratch. Provides one-shot,
// streaming, and Bitcoin's double-SHA256 flavours.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace btcfast::crypto {

/// 32-byte digest.
using Sha256Digest = ByteArray<32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  Sha256& update(ByteSpan data) noexcept;
  /// Finalizes and returns the digest; the hasher must be reset() before reuse.
  [[nodiscard]] Sha256Digest finalize() noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::uint32_t state_[8]{};
  std::uint8_t buf_[64]{};
  std::uint64_t total_ = 0;  // bytes processed
  std::size_t buflen_ = 0;
};

/// One-shot SHA-256.
[[nodiscard]] Sha256Digest sha256(ByteSpan data) noexcept;

/// Bitcoin double hash: SHA-256(SHA-256(data)).
[[nodiscard]] Sha256Digest sha256d(ByteSpan data) noexcept;

}  // namespace btcfast::crypto
