// SHA-256 (FIPS 180-4), implemented from scratch. Provides one-shot,
// streaming, and Bitcoin's double-SHA256 flavours, plus a layered hashing
// engine for the shapes that dominate the hot paths:
//
//   kernel layer   — fully-unrolled one-shot transforms for the 64-byte
//                    Merkle pair (`sha256d_64`) and the 80-byte block
//                    header (`sha256d_80`), with runtime dispatch to the
//                    SHA-NI compression function when the CPU has it.
//   midstate layer — `Sha256Midstate` captures the compression of the
//                    first 64 header bytes once so a PoW nonce loop only
//                    compresses the 16-byte tail + padding per attempt.
//
// Every path is pinned byte-identical to the streaming implementation by
// property tests; sanitizer builds (BTCFAST_SANITIZE) force the scalar
// kernel so instrumented runs exercise plain C++.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace btcfast::crypto {

/// 32-byte digest.
using Sha256Digest = ByteArray<32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  Sha256& update(ByteSpan data) noexcept;
  /// Finalizes and returns the digest. The hasher then auto-resets to the
  /// fresh (empty-message) state, so reuse without an explicit reset() is
  /// well defined: a second finalize() yields the empty-message digest,
  /// never the garbage a spent internal state would produce.
  [[nodiscard]] Sha256Digest finalize() noexcept;

 private:
  std::uint32_t state_[8]{};
  std::uint8_t buf_[64]{};
  std::uint64_t total_ = 0;  // bytes processed
  std::size_t buflen_ = 0;
};

/// One-shot SHA-256.
[[nodiscard]] Sha256Digest sha256(ByteSpan data) noexcept;

/// Bitcoin double hash: SHA-256(SHA-256(data)). Shape-dispatches to the
/// specialized 64/80-byte kernels, so generic callers get them for free.
[[nodiscard]] Sha256Digest sha256d(ByteSpan data) noexcept;

// --- Kernel layer -------------------------------------------------------

/// One compression-function application: folds a 64-byte block into
/// `state` using the dispatched (SHA-NI or scalar) kernel.
void sha256_compress(std::uint32_t state[8], const std::uint8_t block[64]) noexcept;

/// sha256d of exactly 64 bytes (a Merkle node pair): three unrolled
/// compressions, no streaming buffer.
[[nodiscard]] Sha256Digest sha256d_64(const std::uint8_t data[64]) noexcept;

/// sha256d of exactly 80 bytes (a serialized block header): three
/// unrolled compressions, no streaming buffer.
[[nodiscard]] Sha256Digest sha256d_80(const std::uint8_t data[80]) noexcept;

// --- Midstate layer -----------------------------------------------------

/// Precomputed compression of the first 64 bytes of an 80-byte message.
/// A header's nonce (and timestamp) live in the final 16 bytes, so a
/// mining loop builds the midstate once and pays only the tail
/// compression + finalization per attempt (2 compressions instead of 3,
/// and no re-serialization).
class Sha256Midstate {
 public:
  Sha256Midstate() noexcept = default;

  /// Capture the state after compressing `block64` from the IV.
  [[nodiscard]] static Sha256Midstate of_first_block(const std::uint8_t block64[64]) noexcept;

  /// sha256d of the full 80-byte message `block64 || tail16`.
  [[nodiscard]] Sha256Digest sha256d_tail16(const std::uint8_t tail16[16]) const noexcept;

 private:
  std::uint32_t state_[8]{};
};

// --- Dispatch -----------------------------------------------------------

/// Name of the active compression kernel: "sha-ni" or "scalar".
[[nodiscard]] const char* sha256_impl_name() noexcept;

/// Test hook: force the scalar kernel (true) or restore runtime dispatch
/// (false). Returns the previous setting. Sanitizer builds are pinned to
/// scalar at compile time and ignore `false`.
bool sha256_force_scalar(bool force) noexcept;

namespace detail {
// Internal kernel entry points, exposed for the dispatcher and the
// equivalence tests only.
void sha256_compress_scalar(std::uint32_t state[8], const std::uint8_t block[64]) noexcept;
#if defined(__x86_64__) || defined(_M_X64)
void sha256_compress_shani(std::uint32_t state[8], const std::uint8_t block[64]) noexcept;
[[nodiscard]] bool sha256_shani_supported() noexcept;
#endif
}  // namespace detail

}  // namespace btcfast::crypto
