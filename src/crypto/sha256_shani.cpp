// SHA-NI compression kernel: the x86 SHA extensions compute four SHA-256
// rounds per `sha256rnds2` pair, putting one 64-byte compression at
// ~100 cycles versus ~1400 for the scalar kernel. Only this translation
// unit is built with the `sha` target so the rest of the library stays
// portable; the dispatcher in sha256.cpp checks CPUID before ever
// pointing here, and sanitizer builds pin the scalar kernel instead.
#include "crypto/sha256.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <cpuid.h>
#include <immintrin.h>

namespace btcfast::crypto::detail {
namespace {

// Same round constants as sha256.cpp, laid out so a 128-bit load yields
// the four packed 32-bit lanes `sha256rnds2` consumes.
alignas(16) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

}  // namespace

bool sha256_shani_supported() noexcept {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 29)) != 0;  // CPUID.7.0:EBX.SHA
}

__attribute__((target("sha,sse4.1,ssse3"))) void sha256_compress_shani(
    std::uint32_t state[8], const std::uint8_t block[64]) noexcept {
  // Lane order: the SHA instructions want state packed as ABEF / CDGH.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));  // DCBA
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));  // HGFE
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);     // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);          // CDGH
  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;

  const __m128i bswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);  // big-endian words

  __m128i msg0 =
      _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(block)), bswap);
  __m128i msg1 =
      _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16)), bswap);
  __m128i msg2 =
      _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32)), bswap);
  __m128i msg3 =
      _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48)), bswap);

  __m128i msg;
  const auto k4 = [](int i) {
    return _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[4 * i]));
  };

// Four rounds without schedule expansion (first and last groups).
#define BTCFAST_SHANI_QROUND(mi, ki)                      \
  msg = _mm_add_epi32((mi), k4(ki));                      \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);    \
  msg = _mm_shuffle_epi32(msg, 0x0E);                     \
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg)

// Four rounds that also fold (mi) into the schedule for (mnext):
// mnext += alignr(mi, mprev); mnext = msg2(mnext, mi).
#define BTCFAST_SHANI_QROUND_X(mi, mprev, mnext, ki)      \
  msg = _mm_add_epi32((mi), k4(ki));                      \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);    \
  tmp = _mm_alignr_epi8((mi), (mprev), 4);                \
  (mnext) = _mm_add_epi32((mnext), tmp);                  \
  (mnext) = _mm_sha256msg2_epu32((mnext), (mi));          \
  msg = _mm_shuffle_epi32(msg, 0x0E);                     \
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg)

  // Rounds 0-15: feed the raw message words, start msg1 expansion.
  BTCFAST_SHANI_QROUND(msg0, 0);
  BTCFAST_SHANI_QROUND(msg1, 1);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);
  BTCFAST_SHANI_QROUND(msg2, 2);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);
  BTCFAST_SHANI_QROUND_X(msg3, msg2, msg0, 3);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 16-51: the fully-expanded steady state.
  BTCFAST_SHANI_QROUND_X(msg0, msg3, msg1, 4);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);
  BTCFAST_SHANI_QROUND_X(msg1, msg0, msg2, 5);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);
  BTCFAST_SHANI_QROUND_X(msg2, msg1, msg3, 6);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);
  BTCFAST_SHANI_QROUND_X(msg3, msg2, msg0, 7);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);
  BTCFAST_SHANI_QROUND_X(msg0, msg3, msg1, 8);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);
  BTCFAST_SHANI_QROUND_X(msg1, msg0, msg2, 9);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);
  BTCFAST_SHANI_QROUND_X(msg2, msg1, msg3, 10);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);
  BTCFAST_SHANI_QROUND_X(msg3, msg2, msg0, 11);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);
  BTCFAST_SHANI_QROUND_X(msg0, msg3, msg1, 12);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 52-63: drain the schedule.
  BTCFAST_SHANI_QROUND_X(msg1, msg0, msg2, 13);
  BTCFAST_SHANI_QROUND_X(msg2, msg1, msg3, 14);
  BTCFAST_SHANI_QROUND(msg3, 15);

#undef BTCFAST_SHANI_QROUND
#undef BTCFAST_SHANI_QROUND_X

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // Back to DCBA / HGFE memory order.
  tmp = _mm_shuffle_epi32(state0, 0x1B);       // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);    // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);          // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);             // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

}  // namespace btcfast::crypto::detail

#endif  // x86-64
