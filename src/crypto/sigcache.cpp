#include "crypto/sigcache.h"

namespace btcfast::crypto {

SigCache::SigCache(std::size_t max_entries)
    : max_entries_(max_entries < kShardCount ? kShardCount : max_entries),
      per_shard_cap_((max_entries_ + kShardCount - 1) / kShardCount),
      shards_(kShardCount) {}

SigCache::Key SigCache::make_key(const Sha256Digest& digest, ByteSpan pubkey33,
                                 ByteSpan sig64) noexcept {
  // Domain-separated so the key space can't collide with bare digests.
  ByteArray<8 + 32 + 33 + 64> buf{};
  const char tag[8] = {'s', 'i', 'g', 'c', 'a', 'c', 'h', 'e'};
  std::size_t off = 0;
  for (char c : tag) buf[off++] = static_cast<std::uint8_t>(c);
  for (auto b : digest) buf[off++] = b;
  for (std::size_t i = 0; i < pubkey33.size() && i < 33; ++i) buf[off + i] = pubkey33[i];
  off += 33;
  for (std::size_t i = 0; i < sig64.size() && i < 64; ++i) buf[off + i] = sig64[i];
  return sha256({buf.data(), buf.size()});
}

SigCache::Shard& SigCache::shard_for(const Key& key) const noexcept {
  // Byte 8 is independent of the bytes KeyHash consumes for bucketing.
  return shards_[key[8] & (kShardCount - 1)];
}

bool SigCache::contains(const Key& key) const {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const bool hit = s.entries.find(key) != s.entries.end();
  (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void SigCache::insert(const Key& key) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.entries.size() >= per_shard_cap_) {
    // Evict the first resident of a pseudo-random bucket derived from the
    // incoming key — O(1), no recency bookkeeping, and deterministic for
    // a fixed insertion sequence.
    const std::size_t buckets = s.entries.bucket_count();
    std::size_t b;
    __builtin_memcpy(&b, key.data() + 16, sizeof(b));
    for (std::size_t probe = 0; probe < buckets; ++probe) {
      const std::size_t bucket = (b + probe) % buckets;
      if (s.entries.bucket_size(bucket) > 0) {
        s.entries.erase(*s.entries.begin(bucket));
        evictions_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  if (s.entries.insert(key).second) insertions_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t SigCache::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    n += s.entries.size();
  }
  return n;
}

SigCache::Stats SigCache::stats() const noexcept {
  return Stats{hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed),
               insertions_.load(std::memory_order_relaxed),
               evictions_.load(std::memory_order_relaxed)};
}

void SigCache::reset_stats() noexcept {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

void SigCache::clear() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.entries.clear();
  }
}

SigCache& SigCache::global() {
  static SigCache cache;
  return cache;
}

PubkeyPrecompCache::PubkeyPrecompCache(std::size_t max_entries)
    : max_entries_(max_entries), shards_(kShardCount) {}

PubkeyPrecompCache::Shard& PubkeyPrecompCache::shard_for(const Key& key) const noexcept {
  // Byte 9 is independent of the x-coordinate bytes KeyHash consumes.
  return shards_[key[9] & (kShardCount - 1)];
}

std::size_t PubkeyPrecompCache::per_shard_cap() const noexcept {
  const std::size_t max = max_entries_.load(std::memory_order_relaxed);
  const std::size_t cap = (max + kShardCount - 1) / kShardCount;
  return cap == 0 ? 0 : (cap < 1 ? 1 : cap);
}

void PubkeyPrecompCache::evict_one(Shard& s, const Key& incoming) {
  // Same O(1) pseudo-random-bucket scheme as SigCache: no recency
  // bookkeeping, deterministic for a fixed insertion sequence.
  const std::size_t buckets = s.entries.bucket_count();
  std::size_t b;
  __builtin_memcpy(&b, incoming.data() + 16, sizeof(b));
  for (std::size_t probe = 0; probe < buckets; ++probe) {
    const std::size_t bucket = (b + probe) % buckets;
    if (s.entries.bucket_size(bucket) > 0) {
      s.entries.erase(s.entries.begin(bucket)->first);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

std::shared_ptr<const secp::PubkeyPrecomp> PubkeyPrecompCache::lookup(const Key& key) {
  if (max_entries_.load(std::memory_order_relaxed) == 0) return nullptr;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.entries.find(key);
  if (it != s.entries.end() && it->second != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void PubkeyPrecompCache::note_verified(const Key& key, const secp::AffinePoint& point) {
  if (max_entries_.load(std::memory_order_relaxed) == 0) return;
  Shard& s = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end()) {
      // First sighting: marker only — a one-shot payer never pays a build.
      if (s.entries.size() >= per_shard_cap()) evict_one(s, key);
      s.entries.emplace(key, nullptr);
      return;
    }
    if (it->second != nullptr) return;  // tables already published
  }
  // Second sighting: build the ~18 KiB tables outside the shard lock so
  // concurrent lookups of other keys don't stall behind ~100 µs of point
  // arithmetic. A racing builder does redundant work but publishes an
  // identical value, so last-write-wins is harmless.
  auto built = std::make_shared<const secp::PubkeyPrecomp>(secp::build_pubkey_precomp(point));
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.entries.find(key);
  if (it == s.entries.end()) return;  // evicted while building: drop the work
  if (it->second == nullptr) {
    it->second = std::move(built);
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PubkeyPrecompCache::set_capacity(std::size_t max_entries) {
  max_entries_.store(max_entries, std::memory_order_relaxed);
  if (max_entries == 0) {
    clear();
    return;
  }
  const std::size_t cap = per_shard_cap();
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    while (s.entries.size() > cap) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
      s.entries.erase(s.entries.begin());
    }
  }
}

std::size_t PubkeyPrecompCache::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    n += s.entries.size();
  }
  return n;
}

PubkeyPrecompCache::Stats PubkeyPrecompCache::stats() const noexcept {
  return Stats{hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed),
               insertions_.load(std::memory_order_relaxed),
               evictions_.load(std::memory_order_relaxed)};
}

void PubkeyPrecompCache::reset_stats() noexcept {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

void PubkeyPrecompCache::clear() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.entries.clear();
  }
}

PubkeyPrecompCache& PubkeyPrecompCache::global() {
  static PubkeyPrecompCache cache;
  return cache;
}

bool ecdsa_verify_cached(SigCache* cache, ByteSpan pubkey33, const Sha256Digest& digest,
                         ByteSpan sig64, PubkeyPrecompCache* precomp) noexcept {
  if (pubkey33.size() != 33 || sig64.size() != 64) return false;
  SigCache::Key key{};
  if (cache != nullptr) {
    key = SigCache::make_key(digest, pubkey33, sig64);
    if (cache->contains(key)) return true;
  }
  if (precomp != nullptr) {
    PubkeyPrecompCache::Key pk{};
    for (std::size_t i = 0; i < 33; ++i) pk[i] = pubkey33[i];
    if (const auto pre = precomp->lookup(pk)) {
      // Warm repeat-payer path: no decompression, no table build.
      const auto sig = Signature::parse(sig64);
      if (!sig || !ecdsa_verify_precomp(digest, *sig, *pre)) return false;
      if (cache != nullptr) cache->insert(key);
      return true;
    }
    const auto pub = PublicKey::parse(pubkey33);
    if (!pub) return false;
    const auto sig = Signature::parse(sig64);
    if (!sig) return false;
    if (!ecdsa_verify(*pub, digest, *sig)) return false;
    if (cache != nullptr) cache->insert(key);
    precomp->note_verified(pk, pub->point());
    return true;
  }
  const auto pub = PublicKey::parse(pubkey33);
  if (!pub) return false;
  const auto sig = Signature::parse(sig64);
  if (!sig) return false;
  if (!ecdsa_verify(*pub, digest, *sig)) return false;
  if (cache != nullptr) cache->insert(key);
  return true;
}

bool ecdsa_verify_cached(SigCache* cache, const PublicKey& pubkey, const Sha256Digest& digest,
                         ByteSpan sig64, PubkeyPrecompCache* precomp) noexcept {
  if (sig64.size() != 64) return false;
  const auto enc = pubkey.serialize();  // compression is cheap (no curve math)
  SigCache::Key key{};
  if (cache != nullptr) {
    key = SigCache::make_key(digest, {enc.data(), enc.size()}, sig64);
    if (cache->contains(key)) return true;
  }
  const auto sig = Signature::parse(sig64);
  if (!sig) return false;
  if (precomp != nullptr) {
    if (const auto pre = precomp->lookup(enc)) {
      if (!ecdsa_verify_precomp(digest, *sig, *pre)) return false;
      if (cache != nullptr) cache->insert(key);
      return true;
    }
    if (!ecdsa_verify(pubkey, digest, *sig)) return false;
    if (cache != nullptr) cache->insert(key);
    precomp->note_verified(enc, pubkey.point());
    return true;
  }
  if (!ecdsa_verify(pubkey, digest, *sig)) return false;
  if (cache != nullptr) cache->insert(key);
  return true;
}

}  // namespace btcfast::crypto
