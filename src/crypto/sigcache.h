// Signature-verification cache (Bitcoin-Core style). A successful ECDSA
// verification inserts sha256(digest || pubkey33 || sig64) into a
// sharded, bounded set; a later check of the identical triple is a hash
// lookup instead of a ~100µs curve computation. Only *valid* triples are
// ever inserted, so a hit can never turn an invalid signature valid —
// mutating any byte of the signature, key, or message changes the key.
//
// The dominant consumer pattern: the merchant verifies a payment package
// at intake, then PayJudger re-validates the same binding when a dispute
// or reservation touches the contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "crypto/ecdsa.h"
#include "crypto/sha256.h"

namespace btcfast::crypto {

class SigCache {
 public:
  using Key = ByteArray<32>;

  /// `max_entries` bounds the total entry count across all shards
  /// (rounded up to a multiple of the shard count).
  explicit SigCache(std::size_t max_entries = kDefaultMaxEntries);

  static constexpr std::size_t kDefaultMaxEntries = 1 << 16;

  /// Cache key for a verification triple.
  [[nodiscard]] static Key make_key(const Sha256Digest& digest, ByteSpan pubkey33,
                                    ByteSpan sig64) noexcept;

  /// True iff the triple was previously inserted (i.e. verified valid).
  [[nodiscard]] bool contains(const Key& key) const;
  /// Record a verified-valid triple; evicts a pseudo-random resident
  /// entry of the same shard when the shard is full.
  void insert(const Key& key);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const noexcept { return max_entries_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const noexcept;
  void reset_stats() noexcept;
  /// Drop every entry (stats untouched). For benches that need cold runs.
  void clear();

  /// Process-wide cache shared by the merchant fast path, the btc script
  /// verifier, and the PSC host's ecdsa precompile.
  [[nodiscard]] static SigCache& global();

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h;
      static_assert(sizeof(h) <= 32);
      __builtin_memcpy(&h, k.data(), sizeof(h));
      return h;
    }
  };

  struct alignas(64) Shard {  // one cache line per shard: no false sharing
    mutable std::mutex mutex;
    std::unordered_set<Key, KeyHash> entries;
  };

  // 64 shards: at 8 intake threads the birthday collision probability on
  // a shard mutex per concurrent lookup pair stays ~10% (vs ~50% with the
  // original 16), and the E7 warm path is lookup-dominated. Each shard is
  // padded below so two shard mutexes never share a cache line.
  static constexpr std::size_t kShardBits = 6;
  static constexpr std::size_t kShardCount = 1 << kShardBits;

  [[nodiscard]] Shard& shard_for(const Key& key) const noexcept;

  std::size_t max_entries_;
  std::size_t per_shard_cap_;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Per-pubkey GLV precomp table cache (sibling of SigCache, keyed by the
/// 33-byte compressed pubkey). Escrow-bound customers are repeat payers:
/// once a key's wide wNAF-8 tables are resident, a verify against that
/// key skips point decompression and the per-call table build entirely
/// and runs the half-length GLV chain over the wider window.
///
/// Entries are ~18 KiB, so the cache is deliberately small (default 512
/// keys ≈ 9 MiB) and builds lazily on the *second* sighting of a key — a
/// one-shot payer never pays the ~100 µs table build. Values are
/// shared_ptr so a reader keeps its tables alive across a concurrent
/// eviction.
class PubkeyPrecompCache {
 public:
  using Key = ByteArray<33>;

  /// `max_entries` bounds resident keys across all shards (markers for
  /// once-seen keys count too). 0 disables the cache entirely.
  explicit PubkeyPrecompCache(std::size_t max_entries = kDefaultMaxEntries);

  static constexpr std::size_t kDefaultMaxEntries = 512;

  /// Tables for the key, or null when absent / not yet built / disabled.
  [[nodiscard]] std::shared_ptr<const secp::PubkeyPrecomp> lookup(const Key& key);

  /// Report a *successful* verification against `point` (the decompressed
  /// key): first sighting drops a marker, second builds and publishes the
  /// wide tables (build runs outside the shard lock). Only-valid keys get
  /// this far, so the cache can never hold tables for a point that was
  /// not on the curve.
  void note_verified(const Key& key, const secp::AffinePoint& point);

  /// Re-bound the cache; trims overflowing shards immediately. 0 disables
  /// (and clears).
  void set_capacity(std::size_t max_entries);
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const;

  struct Stats {
    std::uint64_t hits = 0;        // lookup returned built tables
    std::uint64_t misses = 0;      // lookup found nothing usable
    std::uint64_t insertions = 0;  // table builds published
    std::uint64_t evictions = 0;   // resident keys displaced (markers too)
  };
  [[nodiscard]] Stats stats() const noexcept;
  void reset_stats() noexcept;
  void clear();

  /// Process-wide cache used by the gateway verify path.
  [[nodiscard]] static PubkeyPrecompCache& global();

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h;
      static_assert(sizeof(h) <= 32);
      __builtin_memcpy(&h, k.data() + 1, sizeof(h));  // x-coordinate bytes: uniform
      return h;
    }
  };

  struct alignas(64) Shard {
    mutable std::mutex mutex;
    // null mapped value = seen-once marker (two-touch build policy).
    std::unordered_map<Key, std::shared_ptr<const secp::PubkeyPrecomp>, KeyHash> entries;
  };

  static constexpr std::size_t kShardBits = 4;
  static constexpr std::size_t kShardCount = 1 << kShardBits;

  [[nodiscard]] Shard& shard_for(const Key& key) const noexcept;
  [[nodiscard]] std::size_t per_shard_cap() const noexcept;
  /// Evict one pseudo-random resident to make room; caller holds the lock.
  void evict_one(Shard& s, const Key& incoming);

  std::atomic<std::size_t> max_entries_;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Cache-aware ECDSA verification over raw wire encodings. On a SigCache
/// hit the pubkey is never even decompressed; on a miss, resident precomp
/// tables (if `precomp` is non-null) still skip decompression *and* the
/// per-call table build; the slow path verifies cold and, if valid,
/// inserts into both caches. Null caches degrade to plain parse + verify.
[[nodiscard]] bool ecdsa_verify_cached(SigCache* cache, ByteSpan pubkey33,
                                       const Sha256Digest& digest, ByteSpan sig64,
                                       PubkeyPrecompCache* precomp = nullptr) noexcept;

/// Overload for callers that already hold a parsed key — a miss skips the
/// (expensive) decompression the span overload would redo.
[[nodiscard]] bool ecdsa_verify_cached(SigCache* cache, const PublicKey& pubkey,
                                       const Sha256Digest& digest, ByteSpan sig64,
                                       PubkeyPrecompCache* precomp = nullptr) noexcept;

}  // namespace btcfast::crypto
