#include "crypto/uint256.h"

#include <array>
#include <cstring>

#include "common/hex.h"

namespace btcfast::crypto {
namespace {

// 64x64 -> 128 multiply via __uint128_t (GCC/Clang).
inline void mul64(std::uint64_t a, std::uint64_t b, std::uint64_t& lo, std::uint64_t& hi) noexcept {
  const unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  lo = static_cast<std::uint64_t>(p);
  hi = static_cast<std::uint64_t>(p >> 64);
}

inline std::uint64_t adc(std::uint64_t a, std::uint64_t b, std::uint64_t& carry) noexcept {
  const unsigned __int128 s = static_cast<unsigned __int128>(a) + b + carry;
  carry = static_cast<std::uint64_t>(s >> 64);
  return static_cast<std::uint64_t>(s);
}

inline std::uint64_t sbb(std::uint64_t a, std::uint64_t b, std::uint64_t& borrow) noexcept {
  const unsigned __int128 d =
      static_cast<unsigned __int128>(a) - b - borrow;
  borrow = (d >> 64) ? 1 : 0;
  return static_cast<std::uint64_t>(d);
}

}  // namespace

U256 U256::from_be_bytes(ByteSpan b) noexcept {
  U256 v;
  if (b.size() != 32) return v;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x = (x << 8) | b[static_cast<std::size_t>((3 - limb) * 8 + i)];
    v.w[limb] = x;
  }
  return v;
}

U256 U256::from_le_bytes(ByteSpan b) noexcept {
  U256 v;
  if (b.size() != 32) return v;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t x = 0;
    for (int i = 7; i >= 0; --i) x = (x << 8) | b[static_cast<std::size_t>(limb * 8 + i)];
    v.w[limb] = x;
  }
  return v;
}

std::optional<U256> U256::from_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 64) return std::nullopt;
  std::string padded(64 - hex.size(), '0');
  padded += hex;
  auto bytes = btcfast::from_hex(padded);
  if (!bytes) return std::nullopt;
  return from_be_bytes(*bytes);
}

ByteArray<32> U256::to_be_bytes() const noexcept {
  ByteArray<32> out{};
  for (int limb = 0; limb < 4; ++limb) {
    for (int i = 0; i < 8; ++i) {
      out[static_cast<std::size_t>((3 - limb) * 8 + i)] =
          static_cast<std::uint8_t>(w[limb] >> (56 - 8 * i));
    }
  }
  return out;
}

ByteArray<32> U256::to_le_bytes() const noexcept {
  ByteArray<32> out{};
  for (int limb = 0; limb < 4; ++limb) {
    for (int i = 0; i < 8; ++i) {
      out[static_cast<std::size_t>(limb * 8 + i)] = static_cast<std::uint8_t>(w[limb] >> (8 * i));
    }
  }
  return out;
}

std::string U256::to_hex() const {
  const auto be = to_be_bytes();
  return btcfast::to_hex({be.data(), be.size()});
}

int U256::top_bit() const noexcept {
  for (int limb = 3; limb >= 0; --limb) {
    if (w[limb] != 0) return limb * 64 + 63 - __builtin_clzll(w[limb]);
  }
  return -1;
}

std::strong_ordering U256::operator<=>(const U256& o) const noexcept {
  for (int i = 3; i >= 0; --i) {
    if (w[i] != o.w[i]) return w[i] < o.w[i] ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

U256 U256::operator+(const U256& o) const noexcept {
  bool carry = false;
  return add_carry(*this, o, carry);
}

U256 U256::operator-(const U256& o) const noexcept {
  bool borrow = false;
  return sub_borrow(*this, o, borrow);
}

U256 add_carry(const U256& a, const U256& b, bool& carry_out) noexcept {
  U256 r;
  std::uint64_t c = 0;
  for (int i = 0; i < 4; ++i) r.w[i] = adc(a.w[i], b.w[i], c);
  carry_out = c != 0;
  return r;
}

U256 sub_borrow(const U256& a, const U256& b, bool& borrow_out) noexcept {
  U256 r;
  std::uint64_t br = 0;
  for (int i = 0; i < 4; ++i) r.w[i] = sbb(a.w[i], b.w[i], br);
  borrow_out = br != 0;
  return r;
}

U256 U256::operator<<(unsigned n) const noexcept {
  U256 r;
  if (n >= 256) return r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 3; i >= 0; --i) {
    std::uint64_t v = 0;
    const int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      v = w[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) v |= w[src - 1] >> (64 - bit_shift);
    }
    r.w[i] = v;
  }
  return r;
}

U256 U256::operator>>(unsigned n) const noexcept {
  U256 r;
  if (n >= 256) return r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    const unsigned src = static_cast<unsigned>(i) + limb_shift;
    if (src < 4) {
      v = w[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < 4) v |= w[src + 1] << (64 - bit_shift);
    }
    r.w[i] = v;
  }
  return r;
}

U256 U256::operator&(const U256& o) const noexcept {
  U256 r;
  for (int i = 0; i < 4; ++i) r.w[i] = w[i] & o.w[i];
  return r;
}

U256 U256::operator|(const U256& o) const noexcept {
  U256 r;
  for (int i = 0; i < 4; ++i) r.w[i] = w[i] | o.w[i];
  return r;
}

U512 U256::mul_wide(const U256& o) const noexcept {
  U512 r;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      std::uint64_t lo, hi;
      mul64(w[i], o.w[j], lo, hi);
      // r.w[i+j] += lo + carry; propagate into hi.
      unsigned __int128 acc = static_cast<unsigned __int128>(r.w[i + j]) + lo + carry;
      r.w[i + j] = static_cast<std::uint64_t>(acc);
      carry = hi + static_cast<std::uint64_t>(acc >> 64);
    }
    // Propagate the final carry.
    int k = i + 4;
    while (carry != 0 && k < 8) {
      unsigned __int128 acc = static_cast<unsigned __int128>(r.w[k]) + carry;
      r.w[k] = static_cast<std::uint64_t>(acc);
      carry = static_cast<std::uint64_t>(acc >> 64);
      ++k;
    }
  }
  return r;
}

U256 U256::operator*(const U256& o) const noexcept { return mul_wide(o).low256(); }

U256 U256::operator/(const U256& o) const noexcept {
  return divmod(U512::from_u256(*this), o).quotient.low256();
}

U256 U256::operator%(const U256& o) const noexcept {
  return divmod(U512::from_u256(*this), o).remainder;
}

U512 U512::from_u256(const U256& v) noexcept {
  U512 r;
  std::memcpy(r.w, v.w, sizeof(v.w));
  return r;
}

U256 U512::low256() const noexcept {
  U256 r;
  std::memcpy(r.w, w, sizeof(r.w));
  return r;
}

U256 U512::high256() const noexcept {
  U256 r;
  std::memcpy(r.w, w + 4, sizeof(r.w));
  return r;
}

bool U512::is_zero() const noexcept {
  std::uint64_t acc = 0;
  for (auto limb : w) acc |= limb;
  return acc == 0;
}

int U512::top_bit() const noexcept {
  for (int limb = 7; limb >= 0; --limb) {
    if (w[limb] != 0) return limb * 64 + 63 - __builtin_clzll(w[limb]);
  }
  return -1;
}

std::strong_ordering U512::operator<=>(const U512& o) const noexcept {
  for (int i = 7; i >= 0; --i) {
    if (w[i] != o.w[i]) return w[i] < o.w[i] ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

U512 U512::operator+(const U512& o) const noexcept {
  U512 r;
  std::uint64_t carry = 0;
  for (int i = 0; i < 8; ++i) r.w[i] = adc(w[i], o.w[i], carry);
  return r;
}

U512 U512::operator-(const U512& o) const noexcept {
  U512 r;
  std::uint64_t borrow = 0;
  for (int i = 0; i < 8; ++i) r.w[i] = sbb(w[i], o.w[i], borrow);
  return r;
}

U512 U512::operator<<(unsigned n) const noexcept {
  U512 r;
  if (n >= 512) return r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 7; i >= 0; --i) {
    std::uint64_t v = 0;
    const int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      v = w[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) v |= w[src - 1] >> (64 - bit_shift);
    }
    r.w[i] = v;
  }
  return r;
}

DivMod512 divmod(const U512& dividend, const U256& divisor) noexcept {
  DivMod512 out{};
  if (divisor.is_zero()) return out;  // caller precondition; return zeros defensively
  const int top = dividend.top_bit();
  if (top < 0) return out;

  // Bitwise shift-subtract long division; remainder tracked in 5 limbs
  // (never exceeds 2*divisor < 2^257).
  std::uint64_t rem[5]{};
  for (int i = top; i >= 0; --i) {
    // rem = (rem << 1) | dividend.bit(i)
    for (int k = 4; k >= 1; --k) rem[k] = (rem[k] << 1) | (rem[k - 1] >> 63);
    rem[0] = (rem[0] << 1) | (dividend.bit(static_cast<unsigned>(i)) ? 1 : 0);
    // if rem >= divisor: rem -= divisor; quotient bit = 1
    bool ge = rem[4] != 0;
    if (!ge) {
      ge = true;
      for (int k = 3; k >= 0; --k) {
        if (rem[k] != divisor.w[k]) {
          ge = rem[k] > divisor.w[k];
          break;
        }
      }
    }
    if (ge) {
      std::uint64_t borrow = 0;
      for (int k = 0; k < 4; ++k) rem[k] = sbb(rem[k], divisor.w[k], borrow);
      rem[4] = sbb(rem[4], 0, borrow);
      out.quotient.w[i >> 6] |= 1ULL << (i & 63);
    }
  }
  std::memcpy(out.remainder.w, rem, sizeof(out.remainder.w));
  return out;
}

U256 addmod(const U256& a, const U256& b, const U256& m) noexcept {
  bool carry = false;
  U256 s = add_carry(a, b, carry);
  if (carry || s >= m) s = s - m;
  return s;
}

U256 submod(const U256& a, const U256& b, const U256& m) noexcept {
  bool borrow = false;
  U256 d = sub_borrow(a, b, borrow);
  if (borrow) d = d + m;
  return d;
}

U256 mulmod(const U256& a, const U256& b, const U256& m) noexcept {
  return divmod(a.mul_wide(b), m).remainder;
}

U256 powmod(const U256& a, const U256& e, const U256& m) noexcept {
  U256 result = U256::one() % m;
  U256 base = a % m;
  const int top = e.top_bit();
  for (int i = 0; i <= top; ++i) {
    if (e.bit(static_cast<unsigned>(i))) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
  }
  return result;
}

U256 invmod_prime(const U256& a, const U256& m) noexcept {
  // Fermat: a^(m-2) mod m for prime m.
  return powmod(a, m - U256(2), m);
}

namespace {

// Flat 4-limb helpers for the binary-GCD inner loop: everything stays in
// registers and the compiler sees straight-line carry chains instead of
// U256 temporaries.
inline void shr1_4(std::uint64_t v[4], std::uint64_t top) noexcept {
  v[0] = (v[0] >> 1) | (v[1] << 63);
  v[1] = (v[1] >> 1) | (v[2] << 63);
  v[2] = (v[2] >> 1) | (v[3] << 63);
  v[3] = (v[3] >> 1) | (top << 63);
}

/// r += b, returning the carry-out bit.
inline std::uint64_t add_4(std::uint64_t r[4], const std::uint64_t b[4]) noexcept {
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) r[i] = adc(r[i], b[i], carry);
  return carry;
}

/// r -= b, returning the borrow-out bit.
inline std::uint64_t sub_4(std::uint64_t r[4], const std::uint64_t b[4]) noexcept {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) r[i] = sbb(r[i], b[i], borrow);
  return borrow;
}

/// a >= b as flat limbs.
inline bool ge_4(const std::uint64_t a[4], const std::uint64_t b[4]) noexcept {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

inline bool is_one_4(const std::uint64_t v[4]) noexcept {
  return v[0] == 1 && (v[1] | v[2] | v[3]) == 0;
}

/// Halve a residue mod odd m: if odd, add m first (the sum may carry one
/// bit past 2^256; shr1_4 folds it back in).
inline void halve_mod(std::uint64_t x[4], const std::uint64_t m[4]) noexcept {
  std::uint64_t top = 0;
  if (x[0] & 1) top = add_4(x, m);
  shr1_4(x, top);
}

}  // namespace

U256 invmod_odd(const U256& a, const U256& m) noexcept {
  // Binary extended GCD. Invariants: x1·a ≡ u (mod m) and x2·a ≡ v
  // (mod m); terminates with u or v at 1 and the matching coefficient
  // holding a⁻¹. No division, no exponentiation — a few hundred
  // shift/subtract rounds, ~40x faster than the Fermat path.
  const U256 ar = a < m ? a : a % m;  // bitwise divmod is slow; callers pass a < m
  if (ar.is_zero()) return U256::zero();  // caller precondition violated; stay defensive

  std::uint64_t u[4] = {ar.w[0], ar.w[1], ar.w[2], ar.w[3]};
  std::uint64_t v[4] = {m.w[0], m.w[1], m.w[2], m.w[3]};
  std::uint64_t x1[4] = {1, 0, 0, 0};
  std::uint64_t x2[4] = {0, 0, 0, 0};

  while (!is_one_4(u) && !is_one_4(v)) {
    while (!(u[0] & 1)) {
      shr1_4(u, 0);
      halve_mod(x1, m.w);
    }
    while (!(v[0] & 1)) {
      shr1_4(v, 0);
      halve_mod(x2, m.w);
    }
    if (ge_4(u, v)) {
      sub_4(u, v);
      if (sub_4(x1, x2)) add_4(x1, m.w);  // x1 = (x1 - x2) mod m
    } else {
      sub_4(v, u);
      if (sub_4(x2, x1)) add_4(x2, m.w);
    }
  }

  // x1/x2 never leave [0, m): halve_mod and the mod-m subtract preserve
  // the bound, so no final reduction is needed.
  U256 r;
  const std::uint64_t* x = is_one_4(u) ? x1 : x2;
  r.w[0] = x[0];
  r.w[1] = x[1];
  r.w[2] = x[2];
  r.w[3] = x[3];
  return r;
}

namespace {

// --- Batched-divstep (Bernstein–Yang safegcd) modular inverse ----------
//
// The binary GCD above retires one bit per shift/subtract round, and each
// round carries an unpredictable branch — on varied inputs (every verify
// sees a fresh s) it measures ~2.5x slower than on a hot loop replaying
// one value. The divstep form fixes this: 62 division steps run entirely
// on the LOW limbs of f and g, accumulating a 2x2 transition matrix of
// 62-bit integers, and only then is the matrix applied once to the full
// 5-limb numbers. The O(bits²) limb traffic of the schoolbook loop
// collapses to ~12 matrix applications.
//
// Like the binary GCD (and the rest of this library) this is VARIABLE
// TIME. Verify inputs are public, and signing already leaks through the
// vartime scalar ladder, so no side-channel regression is introduced.
//
// Representation: signed 62-bit limbs, value = Σ v[i]·2^(62·i), i < 5.

using i64 = std::int64_t;
using i128 = __int128;

constexpr i64 kM62 = static_cast<i64>(UINT64_MAX >> 2);

struct Signed62 {
  i64 v[5];
};

Signed62 to_signed62(const std::uint64_t w[4]) noexcept {
  Signed62 r;
  r.v[0] = static_cast<i64>(w[0] & static_cast<std::uint64_t>(kM62));
  r.v[1] = static_cast<i64>(((w[0] >> 62) | (w[1] << 2)) & static_cast<std::uint64_t>(kM62));
  r.v[2] = static_cast<i64>(((w[1] >> 60) | (w[2] << 4)) & static_cast<std::uint64_t>(kM62));
  r.v[3] = static_cast<i64>(((w[2] >> 58) | (w[3] << 6)) & static_cast<std::uint64_t>(kM62));
  r.v[4] = static_cast<i64>(w[3] >> 56);
  return r;
}

U256 from_signed62(const Signed62& s) noexcept {
  // Caller guarantees the value is normalized into [0, 2^256).
  U256 r;
  const std::uint64_t v0 = static_cast<std::uint64_t>(s.v[0]);
  const std::uint64_t v1 = static_cast<std::uint64_t>(s.v[1]);
  const std::uint64_t v2 = static_cast<std::uint64_t>(s.v[2]);
  const std::uint64_t v3 = static_cast<std::uint64_t>(s.v[3]);
  const std::uint64_t v4 = static_cast<std::uint64_t>(s.v[4]);
  r.w[0] = v0 | (v1 << 62);
  r.w[1] = (v1 >> 2) | (v2 << 60);
  r.w[2] = (v2 >> 4) | (v3 << 58);
  r.w[3] = (v3 >> 6) | (v4 << 56);
  return r;
}

/// Transition matrix for 62 divsteps; entries fit in 63 bits and
/// det = ±2^62.
struct Trans62 {
  i64 u, v, q, r;
};

/// -(2i+1)^{-1} mod 2^8: picking w = g·tab[(f>>1)&127] (mod 2^limit)
/// zeroes limit low bits of g + w·f in one multiply-add.
constexpr std::array<std::uint8_t, 128> make_neg_inv256() {
  std::array<std::uint8_t, 128> t{};
  for (int i = 0; i < 128; ++i) {
    const std::uint8_t f = static_cast<std::uint8_t>(2 * i + 1);
    std::uint8_t x = f;  // f^-1 mod 2^3 (odd² ≡ 1 mod 8)
    x = static_cast<std::uint8_t>(x * (2 - f * x));  // mod 2^6
    x = static_cast<std::uint8_t>(x * (2 - f * x));  // mod 2^8 (and beyond)
    t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(-x);
  }
  return t;
}
constexpr std::array<std::uint8_t, 128> kNegInv256 = make_neg_inv256();

/// Run 62 divsteps on the low limbs of f and g (variable time): returns
/// the new eta and fills `t` with the accumulated transition, such that
/// [f'; g'] = t·[f; g] / 2^62 holds for the full-width values.
i64 divsteps62_var(i64 eta, std::uint64_t f0, std::uint64_t g0, Trans62& t) noexcept {
  std::uint64_t u = 1, v = 0, q = 0, r = 1;
  std::uint64_t f = f0, g = g0;
  int i = 62;
  while (true) {
    // Strip trailing zeros of g (bounded by the steps left).
    const int zeros =
        __builtin_ctzll(g | (i < 64 ? (~std::uint64_t{0}) << i : std::uint64_t{0}));
    g >>= zeros;
    u <<= zeros;
    v <<= zeros;
    eta -= zeros;
    i -= zeros;
    if (i == 0) break;
    // f and g both odd now.
    if (eta < 0) {
      eta = -eta;
      std::uint64_t tmp = f;
      f = g;
      g = static_cast<std::uint64_t>(-static_cast<i64>(tmp));
      tmp = u;
      u = q;
      q = static_cast<std::uint64_t>(-static_cast<i64>(tmp));
      tmp = v;
      v = r;
      r = static_cast<std::uint64_t>(-static_cast<i64>(tmp));
    }
    // Cancel up to 8 low bits of g per round (more when eta allows less).
    const int limit = (eta + 1) > static_cast<i64>(i) ? i : static_cast<int>(eta) + 1;
    const std::uint64_t mask = (UINT64_MAX >> (64 - limit)) & 255U;
    const std::uint64_t w = (g * kNegInv256[(f >> 1) & 127]) & mask;
    g += w * f;
    q += w * u;
    r += w * v;
  }
  t.u = static_cast<i64>(u);
  t.v = static_cast<i64>(v);
  t.q = static_cast<i64>(q);
  t.r = static_cast<i64>(r);
  return eta;
}

/// [f; g] ← t·[f; g] / 2^62 over the full signed-62 numbers.
void update_fg62(Signed62& f, Signed62& g, const Trans62& t) noexcept {
  i128 cf = static_cast<i128>(t.u) * f.v[0] + static_cast<i128>(t.v) * g.v[0];
  i128 cg = static_cast<i128>(t.q) * f.v[0] + static_cast<i128>(t.r) * g.v[0];
  cf >>= 62;  // low 62 bits are zero by construction of the matrix
  cg >>= 62;
  for (int j = 1; j < 5; ++j) {
    cf += static_cast<i128>(t.u) * f.v[j] + static_cast<i128>(t.v) * g.v[j];
    cg += static_cast<i128>(t.q) * f.v[j] + static_cast<i128>(t.r) * g.v[j];
    f.v[j - 1] = static_cast<i64>(cf) & kM62;
    cf >>= 62;
    g.v[j - 1] = static_cast<i64>(cg) & kM62;
    cg >>= 62;
  }
  f.v[4] = static_cast<i64>(cf);
  g.v[4] = static_cast<i64>(cg);
}

/// [d; e] ← t·[d; e] / 2^62 (mod m): multiples of m are folded in so the
/// division by 2^62 is exact, keeping d ≡ (matrix-combined) values mod m.
void update_de62(Signed62& d, Signed62& e, const Trans62& t, const Signed62& m,
                 std::uint64_t m_inv62) noexcept {
  const i64 sd = d.v[4] >> 63;
  const i64 se = e.v[4] >> 63;
  i64 md = (t.u & sd) + (t.v & se);
  i64 me = (t.q & sd) + (t.r & se);
  i128 cd = static_cast<i128>(t.u) * d.v[0] + static_cast<i128>(t.v) * e.v[0];
  i128 ce = static_cast<i128>(t.q) * d.v[0] + static_cast<i128>(t.r) * e.v[0];
  md -= static_cast<i64>((m_inv62 * static_cast<std::uint64_t>(cd) +
                          static_cast<std::uint64_t>(md)) &
                         static_cast<std::uint64_t>(kM62));
  me -= static_cast<i64>((m_inv62 * static_cast<std::uint64_t>(ce) +
                          static_cast<std::uint64_t>(me)) &
                         static_cast<std::uint64_t>(kM62));
  cd += static_cast<i128>(m.v[0]) * md;
  ce += static_cast<i128>(m.v[0]) * me;
  cd >>= 62;
  ce >>= 62;
  for (int j = 1; j < 5; ++j) {
    cd += static_cast<i128>(t.u) * d.v[j] + static_cast<i128>(t.v) * e.v[j] +
          static_cast<i128>(m.v[j]) * md;
    ce += static_cast<i128>(t.q) * d.v[j] + static_cast<i128>(t.r) * e.v[j] +
          static_cast<i128>(m.v[j]) * me;
    d.v[j - 1] = static_cast<i64>(cd) & kM62;
    cd >>= 62;
    e.v[j - 1] = static_cast<i64>(ce) & kM62;
    ce >>= 62;
  }
  d.v[4] = static_cast<i64>(cd);
  e.v[4] = static_cast<i64>(ce);
}

/// Limbs 0..3 stay in [0, 2^62); the top limb carries the sign.
void add_m62(Signed62& d, const Signed62& m) noexcept {
  i128 c = 0;
  for (int j = 0; j < 4; ++j) {
    c += static_cast<i128>(d.v[j]) + m.v[j];
    d.v[j] = static_cast<i64>(c) & kM62;
    c >>= 62;
  }
  d.v[4] = static_cast<i64>(c + d.v[4] + m.v[4]);
}

bool sub_m62_if_ge(Signed62& d, const Signed62& m) noexcept {
  Signed62 r;
  i128 c = 0;
  for (int j = 0; j < 4; ++j) {
    c += static_cast<i128>(d.v[j]) - m.v[j];
    r.v[j] = static_cast<i64>(c) & kM62;
    c >>= 62;  // arithmetic shift: propagates the borrow
  }
  r.v[4] = static_cast<i64>(c + d.v[4] - m.v[4]);
  if (r.v[4] < 0) return false;  // d < m: keep d
  d = r;
  return true;
}

void neg62(Signed62& d) noexcept {
  i128 c = 0;
  for (int j = 0; j < 4; ++j) {
    c -= d.v[j];
    d.v[j] = static_cast<i64>(c) & kM62;
    c >>= 62;
  }
  d.v[4] = static_cast<i64>(c - d.v[4]);
}

}  // namespace

U256 invmod_odd_var(const U256& a, const U256& m) noexcept {
  const U256 ar = a < m ? a : a % m;
  if (ar.is_zero()) return U256::zero();

  Signed62 f = to_signed62(m.w);
  Signed62 g = to_signed62(ar.w);
  Signed62 d{{0, 0, 0, 0, 0}};
  Signed62 e{{1, 0, 0, 0, 0}};
  // Invariants: a·d ≡ f and a·e ≡ g (mod m). They hold initially
  // (f = m ≡ 0, g = a) and each update preserves them, so when g reaches
  // 0 and f = ±gcd(a, m) = ±1, d is ±a⁻¹.

  // m⁻¹ mod 2^62 by Newton lifting (odd² ≡ 1 mod 8 seeds 3 bits).
  std::uint64_t mi = m.w[0];
  for (int it = 0; it < 5; ++it) mi *= 2 - m.w[0] * mi;
  mi &= static_cast<std::uint64_t>(kM62);

  const Signed62 m62 = to_signed62(m.w);
  i64 eta = -1;
  // ⌈(49·256 + 57) / 17⌉ = 741 divsteps suffice for 256-bit inputs;
  // 12 batches of 62 cover that with slack. The loop almost always exits
  // early on g == 0.
  for (int round = 0; round < 14; ++round) {
    Trans62 t;
    eta = divsteps62_var(eta, static_cast<std::uint64_t>(f.v[0]),
                         static_cast<std::uint64_t>(g.v[0]), t);
    update_de62(d, e, t, m62, mi);
    update_fg62(f, g, t);
    if ((g.v[0] | g.v[1] | g.v[2] | g.v[3] | g.v[4]) == 0) break;
  }
  if ((g.v[0] | g.v[1] | g.v[2] | g.v[3] | g.v[4]) != 0) {
    return invmod_odd(ar, m);  // defensive: should be unreachable
  }

  // f holds ±gcd. gcd != 1 means no inverse (mirrors invmod_odd's
  // garbage-in behavior closely enough: return 0). When f = -1, the
  // invariant gives a·d ≡ -1, so negate d along with it.
  const bool neg_f = f.v[4] < 0;
  Signed62 af = f;
  if (neg_f) neg62(af);
  if (!(af.v[0] == 1 && (af.v[1] | af.v[2] | af.v[3] | af.v[4]) == 0)) return U256::zero();
  if (neg_f) neg62(d);

  // |d| stays within a few multiples of m through the updates; bounded
  // conditional adds/subtracts land it in [0, m).
  for (int k = 0; k < 4 && d.v[4] < 0; ++k) add_m62(d, m62);
  while (sub_m62_if_ge(d, m62)) {
  }
  return from_signed62(d);
}

}  // namespace btcfast::crypto
