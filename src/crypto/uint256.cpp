#include "crypto/uint256.h"

#include <cstring>

#include "common/hex.h"

namespace btcfast::crypto {
namespace {

// 64x64 -> 128 multiply via __uint128_t (GCC/Clang).
inline void mul64(std::uint64_t a, std::uint64_t b, std::uint64_t& lo, std::uint64_t& hi) noexcept {
  const unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  lo = static_cast<std::uint64_t>(p);
  hi = static_cast<std::uint64_t>(p >> 64);
}

inline std::uint64_t adc(std::uint64_t a, std::uint64_t b, std::uint64_t& carry) noexcept {
  const unsigned __int128 s = static_cast<unsigned __int128>(a) + b + carry;
  carry = static_cast<std::uint64_t>(s >> 64);
  return static_cast<std::uint64_t>(s);
}

inline std::uint64_t sbb(std::uint64_t a, std::uint64_t b, std::uint64_t& borrow) noexcept {
  const unsigned __int128 d =
      static_cast<unsigned __int128>(a) - b - borrow;
  borrow = (d >> 64) ? 1 : 0;
  return static_cast<std::uint64_t>(d);
}

}  // namespace

U256 U256::from_be_bytes(ByteSpan b) noexcept {
  U256 v;
  if (b.size() != 32) return v;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x = (x << 8) | b[static_cast<std::size_t>((3 - limb) * 8 + i)];
    v.w[limb] = x;
  }
  return v;
}

U256 U256::from_le_bytes(ByteSpan b) noexcept {
  U256 v;
  if (b.size() != 32) return v;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t x = 0;
    for (int i = 7; i >= 0; --i) x = (x << 8) | b[static_cast<std::size_t>(limb * 8 + i)];
    v.w[limb] = x;
  }
  return v;
}

std::optional<U256> U256::from_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 64) return std::nullopt;
  std::string padded(64 - hex.size(), '0');
  padded += hex;
  auto bytes = btcfast::from_hex(padded);
  if (!bytes) return std::nullopt;
  return from_be_bytes(*bytes);
}

ByteArray<32> U256::to_be_bytes() const noexcept {
  ByteArray<32> out{};
  for (int limb = 0; limb < 4; ++limb) {
    for (int i = 0; i < 8; ++i) {
      out[static_cast<std::size_t>((3 - limb) * 8 + i)] =
          static_cast<std::uint8_t>(w[limb] >> (56 - 8 * i));
    }
  }
  return out;
}

ByteArray<32> U256::to_le_bytes() const noexcept {
  ByteArray<32> out{};
  for (int limb = 0; limb < 4; ++limb) {
    for (int i = 0; i < 8; ++i) {
      out[static_cast<std::size_t>(limb * 8 + i)] = static_cast<std::uint8_t>(w[limb] >> (8 * i));
    }
  }
  return out;
}

std::string U256::to_hex() const {
  const auto be = to_be_bytes();
  return btcfast::to_hex({be.data(), be.size()});
}

int U256::top_bit() const noexcept {
  for (int limb = 3; limb >= 0; --limb) {
    if (w[limb] != 0) return limb * 64 + 63 - __builtin_clzll(w[limb]);
  }
  return -1;
}

std::strong_ordering U256::operator<=>(const U256& o) const noexcept {
  for (int i = 3; i >= 0; --i) {
    if (w[i] != o.w[i]) return w[i] < o.w[i] ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

U256 U256::operator+(const U256& o) const noexcept {
  bool carry = false;
  return add_carry(*this, o, carry);
}

U256 U256::operator-(const U256& o) const noexcept {
  bool borrow = false;
  return sub_borrow(*this, o, borrow);
}

U256 add_carry(const U256& a, const U256& b, bool& carry_out) noexcept {
  U256 r;
  std::uint64_t c = 0;
  for (int i = 0; i < 4; ++i) r.w[i] = adc(a.w[i], b.w[i], c);
  carry_out = c != 0;
  return r;
}

U256 sub_borrow(const U256& a, const U256& b, bool& borrow_out) noexcept {
  U256 r;
  std::uint64_t br = 0;
  for (int i = 0; i < 4; ++i) r.w[i] = sbb(a.w[i], b.w[i], br);
  borrow_out = br != 0;
  return r;
}

U256 U256::operator<<(unsigned n) const noexcept {
  U256 r;
  if (n >= 256) return r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 3; i >= 0; --i) {
    std::uint64_t v = 0;
    const int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      v = w[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) v |= w[src - 1] >> (64 - bit_shift);
    }
    r.w[i] = v;
  }
  return r;
}

U256 U256::operator>>(unsigned n) const noexcept {
  U256 r;
  if (n >= 256) return r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    const unsigned src = static_cast<unsigned>(i) + limb_shift;
    if (src < 4) {
      v = w[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < 4) v |= w[src + 1] << (64 - bit_shift);
    }
    r.w[i] = v;
  }
  return r;
}

U256 U256::operator&(const U256& o) const noexcept {
  U256 r;
  for (int i = 0; i < 4; ++i) r.w[i] = w[i] & o.w[i];
  return r;
}

U256 U256::operator|(const U256& o) const noexcept {
  U256 r;
  for (int i = 0; i < 4; ++i) r.w[i] = w[i] | o.w[i];
  return r;
}

U512 U256::mul_wide(const U256& o) const noexcept {
  U512 r;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      std::uint64_t lo, hi;
      mul64(w[i], o.w[j], lo, hi);
      // r.w[i+j] += lo + carry; propagate into hi.
      unsigned __int128 acc = static_cast<unsigned __int128>(r.w[i + j]) + lo + carry;
      r.w[i + j] = static_cast<std::uint64_t>(acc);
      carry = hi + static_cast<std::uint64_t>(acc >> 64);
    }
    // Propagate the final carry.
    int k = i + 4;
    while (carry != 0 && k < 8) {
      unsigned __int128 acc = static_cast<unsigned __int128>(r.w[k]) + carry;
      r.w[k] = static_cast<std::uint64_t>(acc);
      carry = static_cast<std::uint64_t>(acc >> 64);
      ++k;
    }
  }
  return r;
}

U256 U256::operator*(const U256& o) const noexcept { return mul_wide(o).low256(); }

U256 U256::operator/(const U256& o) const noexcept {
  return divmod(U512::from_u256(*this), o).quotient.low256();
}

U256 U256::operator%(const U256& o) const noexcept {
  return divmod(U512::from_u256(*this), o).remainder;
}

U512 U512::from_u256(const U256& v) noexcept {
  U512 r;
  std::memcpy(r.w, v.w, sizeof(v.w));
  return r;
}

U256 U512::low256() const noexcept {
  U256 r;
  std::memcpy(r.w, w, sizeof(r.w));
  return r;
}

U256 U512::high256() const noexcept {
  U256 r;
  std::memcpy(r.w, w + 4, sizeof(r.w));
  return r;
}

bool U512::is_zero() const noexcept {
  std::uint64_t acc = 0;
  for (auto limb : w) acc |= limb;
  return acc == 0;
}

int U512::top_bit() const noexcept {
  for (int limb = 7; limb >= 0; --limb) {
    if (w[limb] != 0) return limb * 64 + 63 - __builtin_clzll(w[limb]);
  }
  return -1;
}

std::strong_ordering U512::operator<=>(const U512& o) const noexcept {
  for (int i = 7; i >= 0; --i) {
    if (w[i] != o.w[i]) return w[i] < o.w[i] ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

U512 U512::operator+(const U512& o) const noexcept {
  U512 r;
  std::uint64_t carry = 0;
  for (int i = 0; i < 8; ++i) r.w[i] = adc(w[i], o.w[i], carry);
  return r;
}

U512 U512::operator-(const U512& o) const noexcept {
  U512 r;
  std::uint64_t borrow = 0;
  for (int i = 0; i < 8; ++i) r.w[i] = sbb(w[i], o.w[i], borrow);
  return r;
}

U512 U512::operator<<(unsigned n) const noexcept {
  U512 r;
  if (n >= 512) return r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 7; i >= 0; --i) {
    std::uint64_t v = 0;
    const int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      v = w[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) v |= w[src - 1] >> (64 - bit_shift);
    }
    r.w[i] = v;
  }
  return r;
}

DivMod512 divmod(const U512& dividend, const U256& divisor) noexcept {
  DivMod512 out{};
  if (divisor.is_zero()) return out;  // caller precondition; return zeros defensively
  const int top = dividend.top_bit();
  if (top < 0) return out;

  // Bitwise shift-subtract long division; remainder tracked in 5 limbs
  // (never exceeds 2*divisor < 2^257).
  std::uint64_t rem[5]{};
  for (int i = top; i >= 0; --i) {
    // rem = (rem << 1) | dividend.bit(i)
    for (int k = 4; k >= 1; --k) rem[k] = (rem[k] << 1) | (rem[k - 1] >> 63);
    rem[0] = (rem[0] << 1) | (dividend.bit(static_cast<unsigned>(i)) ? 1 : 0);
    // if rem >= divisor: rem -= divisor; quotient bit = 1
    bool ge = rem[4] != 0;
    if (!ge) {
      ge = true;
      for (int k = 3; k >= 0; --k) {
        if (rem[k] != divisor.w[k]) {
          ge = rem[k] > divisor.w[k];
          break;
        }
      }
    }
    if (ge) {
      std::uint64_t borrow = 0;
      for (int k = 0; k < 4; ++k) rem[k] = sbb(rem[k], divisor.w[k], borrow);
      rem[4] = sbb(rem[4], 0, borrow);
      out.quotient.w[i >> 6] |= 1ULL << (i & 63);
    }
  }
  std::memcpy(out.remainder.w, rem, sizeof(out.remainder.w));
  return out;
}

U256 addmod(const U256& a, const U256& b, const U256& m) noexcept {
  bool carry = false;
  U256 s = add_carry(a, b, carry);
  if (carry || s >= m) s = s - m;
  return s;
}

U256 submod(const U256& a, const U256& b, const U256& m) noexcept {
  bool borrow = false;
  U256 d = sub_borrow(a, b, borrow);
  if (borrow) d = d + m;
  return d;
}

U256 mulmod(const U256& a, const U256& b, const U256& m) noexcept {
  return divmod(a.mul_wide(b), m).remainder;
}

U256 powmod(const U256& a, const U256& e, const U256& m) noexcept {
  U256 result = U256::one() % m;
  U256 base = a % m;
  const int top = e.top_bit();
  for (int i = 0; i <= top; ++i) {
    if (e.bit(static_cast<unsigned>(i))) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
  }
  return result;
}

U256 invmod_prime(const U256& a, const U256& m) noexcept {
  // Fermat: a^(m-2) mod m for prime m.
  return powmod(a, m - U256(2), m);
}

namespace {

// Flat 4-limb helpers for the binary-GCD inner loop: everything stays in
// registers and the compiler sees straight-line carry chains instead of
// U256 temporaries.
inline void shr1_4(std::uint64_t v[4], std::uint64_t top) noexcept {
  v[0] = (v[0] >> 1) | (v[1] << 63);
  v[1] = (v[1] >> 1) | (v[2] << 63);
  v[2] = (v[2] >> 1) | (v[3] << 63);
  v[3] = (v[3] >> 1) | (top << 63);
}

/// r += b, returning the carry-out bit.
inline std::uint64_t add_4(std::uint64_t r[4], const std::uint64_t b[4]) noexcept {
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) r[i] = adc(r[i], b[i], carry);
  return carry;
}

/// r -= b, returning the borrow-out bit.
inline std::uint64_t sub_4(std::uint64_t r[4], const std::uint64_t b[4]) noexcept {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) r[i] = sbb(r[i], b[i], borrow);
  return borrow;
}

/// a >= b as flat limbs.
inline bool ge_4(const std::uint64_t a[4], const std::uint64_t b[4]) noexcept {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

inline bool is_one_4(const std::uint64_t v[4]) noexcept {
  return v[0] == 1 && (v[1] | v[2] | v[3]) == 0;
}

/// Halve a residue mod odd m: if odd, add m first (the sum may carry one
/// bit past 2^256; shr1_4 folds it back in).
inline void halve_mod(std::uint64_t x[4], const std::uint64_t m[4]) noexcept {
  std::uint64_t top = 0;
  if (x[0] & 1) top = add_4(x, m);
  shr1_4(x, top);
}

}  // namespace

U256 invmod_odd(const U256& a, const U256& m) noexcept {
  // Binary extended GCD. Invariants: x1·a ≡ u (mod m) and x2·a ≡ v
  // (mod m); terminates with u or v at 1 and the matching coefficient
  // holding a⁻¹. No division, no exponentiation — a few hundred
  // shift/subtract rounds, ~40x faster than the Fermat path.
  const U256 ar = a < m ? a : a % m;  // bitwise divmod is slow; callers pass a < m
  if (ar.is_zero()) return U256::zero();  // caller precondition violated; stay defensive

  std::uint64_t u[4] = {ar.w[0], ar.w[1], ar.w[2], ar.w[3]};
  std::uint64_t v[4] = {m.w[0], m.w[1], m.w[2], m.w[3]};
  std::uint64_t x1[4] = {1, 0, 0, 0};
  std::uint64_t x2[4] = {0, 0, 0, 0};

  while (!is_one_4(u) && !is_one_4(v)) {
    while (!(u[0] & 1)) {
      shr1_4(u, 0);
      halve_mod(x1, m.w);
    }
    while (!(v[0] & 1)) {
      shr1_4(v, 0);
      halve_mod(x2, m.w);
    }
    if (ge_4(u, v)) {
      sub_4(u, v);
      if (sub_4(x1, x2)) add_4(x1, m.w);  // x1 = (x1 - x2) mod m
    } else {
      sub_4(v, u);
      if (sub_4(x2, x1)) add_4(x2, m.w);
    }
  }

  // x1/x2 never leave [0, m): halve_mod and the mod-m subtract preserve
  // the bound, so no final reduction is needed.
  U256 r;
  const std::uint64_t* x = is_one_4(u) ? x1 : x2;
  r.w[0] = x[0];
  r.w[1] = x[1];
  r.w[2] = x[2];
  r.w[3] = x[3];
  return r;
}

}  // namespace btcfast::crypto
