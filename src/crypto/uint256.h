// 256-bit unsigned integer with full arithmetic, plus the 512-bit helper
// needed for products. Used for: hash comparison against PoW targets,
// cumulative chain work, and as the limb substrate of the from-scratch
// secp256k1 implementation.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace btcfast::crypto {

struct U512;

/// 256-bit unsigned integer; little-endian 64-bit limbs; wrapping semantics.
struct U256 {
  std::uint64_t w[4]{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : w{v, 0, 0, 0} {}

  [[nodiscard]] static constexpr U256 zero() { return U256{}; }
  [[nodiscard]] static constexpr U256 one() { return U256{1}; }
  /// All-ones value (2^256 - 1).
  [[nodiscard]] static constexpr U256 max() {
    U256 v;
    for (auto& limb : v.w) limb = ~0ULL;
    return v;
  }

  /// Interpret 32 bytes as a big-endian integer. Span must be 32 bytes.
  [[nodiscard]] static U256 from_be_bytes(ByteSpan b) noexcept;
  /// Interpret 32 bytes as a little-endian integer. Span must be 32 bytes.
  [[nodiscard]] static U256 from_le_bytes(ByteSpan b) noexcept;
  /// Parse a hex string (<= 64 digits, no 0x prefix).
  [[nodiscard]] static std::optional<U256> from_hex(const std::string& hex);

  [[nodiscard]] ByteArray<32> to_be_bytes() const noexcept;
  [[nodiscard]] ByteArray<32> to_le_bytes() const noexcept;
  [[nodiscard]] std::string to_hex() const;  ///< 64 lowercase hex digits

  [[nodiscard]] bool is_zero() const noexcept { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  [[nodiscard]] bool bit(unsigned i) const noexcept { return (w[i >> 6] >> (i & 63)) & 1; }
  void set_bit(unsigned i) noexcept { w[i >> 6] |= 1ULL << (i & 63); }
  /// Index of highest set bit (0-based), or -1 if zero.
  [[nodiscard]] int top_bit() const noexcept;
  [[nodiscard]] std::uint64_t low64() const noexcept { return w[0]; }

  [[nodiscard]] std::strong_ordering operator<=>(const U256& o) const noexcept;
  [[nodiscard]] bool operator==(const U256& o) const noexcept = default;

  /// Wrapping add/sub; out-parameter overflow variants below.
  [[nodiscard]] U256 operator+(const U256& o) const noexcept;
  [[nodiscard]] U256 operator-(const U256& o) const noexcept;
  U256& operator+=(const U256& o) noexcept { return *this = *this + o; }
  U256& operator-=(const U256& o) noexcept { return *this = *this - o; }

  [[nodiscard]] U256 operator<<(unsigned n) const noexcept;
  [[nodiscard]] U256 operator>>(unsigned n) const noexcept;
  [[nodiscard]] U256 operator&(const U256& o) const noexcept;
  [[nodiscard]] U256 operator|(const U256& o) const noexcept;

  /// Full 256x256 -> 512-bit product.
  [[nodiscard]] U512 mul_wide(const U256& o) const noexcept;
  /// Wrapping 256-bit product.
  [[nodiscard]] U256 operator*(const U256& o) const noexcept;

  /// Truncating division / remainder (divisor must be nonzero).
  [[nodiscard]] U256 operator/(const U256& o) const noexcept;
  [[nodiscard]] U256 operator%(const U256& o) const noexcept;
};

/// Add with carry-out.
[[nodiscard]] U256 add_carry(const U256& a, const U256& b, bool& carry_out) noexcept;
/// Subtract with borrow-out (a - b).
[[nodiscard]] U256 sub_borrow(const U256& a, const U256& b, bool& borrow_out) noexcept;

/// 512-bit unsigned integer (products, chain work sums won't exceed this).
struct U512 {
  std::uint64_t w[8]{};

  [[nodiscard]] static U512 from_u256(const U256& v) noexcept;
  [[nodiscard]] U256 low256() const noexcept;
  [[nodiscard]] U256 high256() const noexcept;
  [[nodiscard]] bool is_zero() const noexcept;
  [[nodiscard]] bool bit(unsigned i) const noexcept { return (w[i >> 6] >> (i & 63)) & 1; }
  [[nodiscard]] int top_bit() const noexcept;

  [[nodiscard]] std::strong_ordering operator<=>(const U512& o) const noexcept;
  [[nodiscard]] bool operator==(const U512& o) const noexcept = default;
  [[nodiscard]] U512 operator+(const U512& o) const noexcept;
  [[nodiscard]] U512 operator-(const U512& o) const noexcept;
  [[nodiscard]] U512 operator<<(unsigned n) const noexcept;
};

/// Divide a 512-bit dividend by a 256-bit divisor (must be nonzero).
/// Quotient may not fit 256 bits, hence U512.
struct DivMod512 {
  U512 quotient;
  U256 remainder;
};
[[nodiscard]] DivMod512 divmod(const U512& dividend, const U256& divisor) noexcept;

/// (a + b) mod m, for a,b < m.
[[nodiscard]] U256 addmod(const U256& a, const U256& b, const U256& m) noexcept;
/// (a - b) mod m, for a,b < m.
[[nodiscard]] U256 submod(const U256& a, const U256& b, const U256& m) noexcept;
/// (a * b) mod m (generic; secp field uses a faster specialized path).
[[nodiscard]] U256 mulmod(const U256& a, const U256& b, const U256& m) noexcept;
/// a^e mod m by square-and-multiply.
[[nodiscard]] U256 powmod(const U256& a, const U256& e, const U256& m) noexcept;
/// Modular inverse for prime modulus (Fermat). a must be nonzero mod m.
[[nodiscard]] U256 invmod_prime(const U256& a, const U256& m) noexcept;
/// Modular inverse for any odd modulus via binary extended GCD —
/// ~25-50x faster than the Fermat path (no 256-bit exponentiation).
/// a must be nonzero mod m and coprime to m; m must be odd.
[[nodiscard]] U256 invmod_odd(const U256& a, const U256& m) noexcept;
/// Modular inverse for any odd modulus via batched divsteps
/// (Bernstein-Yang safegcd, variable time): 62 division steps run on the
/// low limbs before each full-width matrix application, so it beats the
/// bit-at-a-time binary GCD ~3-5x on varied inputs. Same contract as
/// invmod_odd (returns 0 for a == 0 or gcd(a, m) != 1).
[[nodiscard]] U256 invmod_odd_var(const U256& a, const U256& m) noexcept;

}  // namespace btcfast::crypto
