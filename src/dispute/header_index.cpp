#include "dispute/header_index.h"

#include <algorithm>
#include <cstring>

#include "common/thread_pool.h"

namespace btcfast::dispute {

namespace {

[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t HeaderIndex::fingerprint(const std::uint8_t* raw80) noexcept {
  // Cheap word-load mix over the fields that actually vary. prev_hash
  // alone nearly determines the header on a single chain; merkle root and
  // time/bits/nonce defend against crafted same-parent siblings sharing a
  // bucket. Collisions are safe (full 80-byte equality resolves them),
  // only slow.
  std::uint64_t a = 0;  // prev_hash[0..8)
  std::uint64_t b = 0;  // merkle_root[0..8)
  std::uint64_t c = 0;  // merkle_root[28..32) + time
  std::uint64_t d = 0;  // bits + nonce
  std::memcpy(&a, raw80 + 4, 8);
  std::memcpy(&b, raw80 + 36, 8);
  std::memcpy(&c, raw80 + 64, 8);
  std::memcpy(&d, raw80 + 72, 8);
  std::uint64_t v = a;
  v = (v ^ b) * 0x9e3779b97f4a7c15ULL;
  v = (v ^ c) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ d) * 0x94d049bb133111ebULL;
  return v ^ (v >> 32);
}

HeaderIndex::HeaderIndex(Config config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.capacity > (std::size_t{1} << 30)) config_.capacity = std::size_t{1} << 30;
  ring_.resize(config_.capacity);
  fp_.resize(config_.capacity);
  table_.assign(next_pow2(std::max<std::size_t>(8, 2 * config_.capacity)), kEmpty);
  table_mask_ = table_.size() - 1;
}

std::int32_t HeaderIndex::find_locked(const std::uint8_t* raw80,
                                      std::uint64_t fp) const noexcept {
  std::uint64_t pos = fp & table_mask_;
  while (table_[pos] != kEmpty) {
    const std::int32_t slot = table_[pos];
    if (fp_[static_cast<std::size_t>(slot)] == fp &&
        std::memcmp(ring_[static_cast<std::size_t>(slot)].raw.data(), raw80, 80) == 0) {
      return slot;
    }
    pos = (pos + 1) & table_mask_;
  }
  return kEmpty;
}

void HeaderIndex::table_erase_locked(std::int32_t slot) noexcept {
  // Locate the table cell referencing `slot`, then backward-shift the
  // rest of its probe cluster so lookups never cross a false hole.
  std::uint64_t pos = fp_[static_cast<std::size_t>(slot)] & table_mask_;
  while (table_[pos] != slot) pos = (pos + 1) & table_mask_;
  table_[pos] = kEmpty;
  std::uint64_t next = (pos + 1) & table_mask_;
  while (table_[next] != kEmpty) {
    const std::uint64_t ideal = fp_[static_cast<std::size_t>(table_[next])] & table_mask_;
    if (((next - ideal) & table_mask_) >= ((next - pos) & table_mask_)) {
      table_[pos] = table_[next];
      table_[next] = kEmpty;
      pos = next;
    }
    next = (next + 1) & table_mask_;
  }
}

void HeaderIndex::insert_locked(const std::uint8_t* raw80, std::uint64_t fp,
                                const crypto::Sha256Digest& digest) {
  if (ring_count_ == config_.capacity) {
    table_erase_locked(static_cast<std::int32_t>(ring_head_));  // evict oldest (FIFO)
    --ring_count_;
    ++stats_.evictions;
  }
  const std::size_t slot = ring_head_;
  std::memcpy(ring_[slot].raw.data(), raw80, 80);
  ring_[slot].digest = digest;
  fp_[slot] = fp;
  std::uint64_t pos = fp & table_mask_;
  while (table_[pos] != kEmpty) pos = (pos + 1) & table_mask_;
  table_[pos] = static_cast<std::int32_t>(slot);
  ring_head_ = (ring_head_ + 1) % config_.capacity;
  ++ring_count_;
}

crypto::Sha256Digest HeaderIndex::digest(const btc::BlockHeader& header) {
  std::uint8_t raw[80];
  header.serialize_into(raw);
  const std::uint64_t fp = fingerprint(raw);
  {
    std::lock_guard lock(mu_);
    const std::int32_t slot = find_locked(raw, fp);
    if (slot != kEmpty) {
      ++stats_.hits;
      return ring_[static_cast<std::size_t>(slot)].digest;
    }
  }
  // Hash outside the lock; racing duplicates compute the same digest.
  const crypto::Sha256Digest digest = crypto::sha256d_80(raw);
  std::lock_guard lock(mu_);
  ++stats_.misses;
  if (find_locked(raw, fp) == kEmpty) insert_locked(raw, fp, digest);
  return digest;
}

void HeaderIndex::batch_digests(const std::vector<btc::BlockHeader>& headers,
                                crypto::Sha256Digest* out) {
  if (headers.empty()) return;
  // Re-serializing is ~25× cheaper than the double-SHA we are deduping,
  // and shares the raw sweep below with the storm engine's wire path.
  std::vector<std::uint8_t> raw(headers.size() * 80);
  for (std::size_t i = 0; i < headers.size(); ++i) {
    headers[i].serialize_into(raw.data() + i * 80);
  }
  batch_digests_raw(raw.data(), headers.size(), out);
}

void HeaderIndex::batch_digests_raw(const std::uint8_t* data, std::size_t count,
                                    crypto::Sha256Digest* out) {
  if (count == 0) return;
  std::vector<std::uint64_t> fps(count);
  for (std::size_t i = 0; i < count; ++i) fps[i] = fingerprint(data + i * 80);

  // Pass 1 (under lock): resolve index hits and dedup the misses within
  // the batch through a scratch probe table (fp -> first batch index).
  std::vector<std::size_t> slot_of(count);  // into unique_misses, or kHit
  constexpr std::size_t kHit = static_cast<std::size_t>(-1);
  std::vector<std::size_t> unique_misses;  // indices of first occurrences
  std::unique_lock lock(mu_);
  {
    const std::size_t want = next_pow2(std::max<std::size_t>(8, 2 * count));
    if (scratch_.size() < want) scratch_.resize(want);
    std::fill(scratch_.begin(), scratch_.end(), kEmpty);
    const std::uint64_t scratch_mask = scratch_.size() - 1;

    for (std::size_t i = 0; i < count; ++i) {
      const std::uint8_t* row = data + i * 80;
      const std::int32_t slot = find_locked(row, fps[i]);
      if (slot != kEmpty) {
        ++stats_.hits;
        if (out != nullptr) out[i] = ring_[static_cast<std::size_t>(slot)].digest;
        slot_of[i] = kHit;
        continue;
      }
      std::uint64_t pos = fps[i] & scratch_mask;
      std::size_t dup_of = kHit;
      while (scratch_[pos] != kEmpty) {
        const std::size_t j = static_cast<std::size_t>(scratch_[pos]);
        if (fps[j] == fps[i] && std::memcmp(data + j * 80, row, 80) == 0) {
          dup_of = j;
          break;
        }
        pos = (pos + 1) & scratch_mask;
      }
      if (dup_of != kHit) {
        // Within-batch duplicate of a miss: the dedup that matters most
        // on a cold index. Counts as a hit — it is hashed once.
        ++stats_.hits;
        slot_of[i] = slot_of[dup_of];
        continue;
      }
      scratch_[pos] = static_cast<std::int32_t>(i);
      slot_of[i] = unique_misses.size();
      unique_misses.push_back(i);
      ++stats_.misses;
    }
  }

  if (unique_misses.empty()) return;

  // Pass 2 (no lock): hash every unique miss across the thread pool.
  lock.unlock();
  std::vector<crypto::Sha256Digest> miss_digests(unique_misses.size());
  common::ThreadPool::global().parallel_for(unique_misses.size(), [&](std::size_t u) {
    miss_digests[u] = crypto::sha256d_80(data + unique_misses[u] * 80);
  });

  // Pass 3: fan results back out and publish to the index. A concurrent
  // caller may have inserted some of our misses meanwhile; skip those.
  if (out != nullptr) {
    for (std::size_t i = 0; i < count; ++i) {
      if (slot_of[i] != kHit) out[i] = miss_digests[slot_of[i]];
    }
  }
  lock.lock();
  for (std::size_t u = 0; u < unique_misses.size(); ++u) {
    const std::size_t i = unique_misses[u];
    if (find_locked(data + i * 80, fps[i]) == kEmpty) {
      insert_locked(data + i * 80, fps[i], miss_digests[u]);
    }
  }
}

HeaderIndexStats HeaderIndex::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t HeaderIndex::size() const {
  std::lock_guard lock(mu_);
  return ring_count_;
}

void HeaderIndex::clear() {
  std::lock_guard lock(mu_);
  std::fill(table_.begin(), table_.end(), kEmpty);
  ring_head_ = 0;
  ring_count_ = 0;
}

}  // namespace btcfast::dispute
