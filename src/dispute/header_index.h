// Shared header index: a content-addressed, bounded cache of verified
// header digests for the dispute storm engine (DESIGN.md §14).
//
// During a dispute storm, thousands of evidence chains overlap on the
// same header segments (everyone anchors at a recent checkpoint of the
// one real Bitcoin chain). The expensive part of contract-side evidence
// verification is the unmetered phase-1 double-SHA sweep; this index
// makes that sweep dedup-aware, so a header shared by N disputes is
// hashed once.
//
// Rule: verify once, **charge always**. The index only ever short-cuts
// the raw hashing — every dispute's gas meter is still charged the full
// sha256(80)+sha256(32) per header by PayJudger's metered phase, so gas
// stays a pure function of the evidence bytes, independent of cache
// state, thread count, or batch composition.
//
// The index is keyed by header *content* — the raw 80-byte wire
// serialization — not by the hash, which is exactly what we are trying
// not to recompute. A cheap 64-bit fingerprint buckets the table; full
// 80-byte equality resolves collisions, so the digest returned is always
// sha256d of the queried bytes. Raw keying also lets the storm engine's
// pre-execution sweep feed evidence bytes straight off the wire without
// decoding a single header.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "btc/header.h"
#include "common/bytes.h"
#include "crypto/sha256.h"

namespace btcfast::dispute {

struct HeaderIndexStats {
  std::uint64_t hits = 0;      ///< digests served from the index
  std::uint64_t misses = 0;    ///< digests that had to be hashed
  std::uint64_t evictions = 0; ///< entries dropped to the capacity bound
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class HeaderIndex {
 public:
  struct Config {
    /// Max cached headers. 2^16 entries ≈ 7 MB — about 45 days of Bitcoin
    /// headers, far past any dispute evidence window.
    std::size_t capacity = std::size_t{1} << 16;
  };

  HeaderIndex() : HeaderIndex(Config{}) {}
  explicit HeaderIndex(Config config);

  /// Digest of one header: served from the index when present, otherwise
  /// hashed, inserted, and returned. Thread-safe.
  [[nodiscard]] crypto::Sha256Digest digest(const btc::BlockHeader& header);

  /// Batch form used by PayJudger's phase-1 callback: dedups the batch
  /// against the index *and within itself*, hashes the unique misses in
  /// one parallel_for over the global thread pool, and fills `out[i]` =
  /// sha256d(serialize(headers[i])) for every i. Thread-safe; output is
  /// byte-identical at any thread count.
  void batch_digests(const std::vector<btc::BlockHeader>& headers,
                     crypto::Sha256Digest* out);

  /// Same sweep over raw wire bytes: `data` holds `count` consecutive
  /// 80-byte serialized headers (no varint framing). Used by the storm
  /// engine's pre-execution sweep, which never needs to decode a header
  /// to warm the index. `out` may be null to warm without reading back.
  void batch_digests_raw(const std::uint8_t* data, std::size_t count,
                         crypto::Sha256Digest* out);

  [[nodiscard]] HeaderIndexStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return config_.capacity; }
  void clear();

 private:
  // Storage is an open-addressing flat table over a FIFO ring, not a
  // node-based map: a storm sweep does one probe per header, and on this
  // path a hash-map node chase (~100ns) costs nearly half of the 80-byte
  // double-SHA it is meant to avoid (~260ns). Layout:
  //   ring_    fixed-capacity entries, overwritten FIFO;
  //   fp_      64-bit fingerprint per ring slot (probe filter);
  //   table_   power-of-two linear-probe index: slot number or kEmpty,
  //            kept ≤50% loaded, erased by backward-shift deletion.
  struct Entry {
    ByteArray<80> raw;  ///< wire serialization — the content key
    crypto::Sha256Digest digest;
  };
  static constexpr std::int32_t kEmpty = -1;

  [[nodiscard]] static std::uint64_t fingerprint(const std::uint8_t* raw80) noexcept;

  /// Probe for the 80-byte key; returns ring slot or kEmpty. Lock held.
  [[nodiscard]] std::int32_t find_locked(const std::uint8_t* raw80,
                                         std::uint64_t fp) const noexcept;
  /// Insert, evicting the oldest ring entry when full. Lock held.
  void insert_locked(const std::uint8_t* raw80, std::uint64_t fp,
                     const crypto::Sha256Digest& digest);
  /// Remove the table reference to `slot` by backward-shift deletion.
  void table_erase_locked(std::int32_t slot) noexcept;

  Config config_;
  mutable std::mutex mu_;
  std::vector<Entry> ring_;
  std::vector<std::uint64_t> fp_;
  std::vector<std::int32_t> table_;
  std::uint64_t table_mask_ = 0;
  std::size_t ring_head_ = 0;   ///< next slot to write (oldest when full)
  std::size_t ring_count_ = 0;  ///< live entries
  std::vector<std::int32_t> scratch_;  ///< per-batch dedup table (under mu_)
  HeaderIndexStats stats_;
};

}  // namespace btcfast::dispute
