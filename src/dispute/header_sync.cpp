#include "dispute/header_sync.h"

#include <algorithm>

#include "common/serialize.h"
#include "store/recovery.h"
#include "store/snapshot.h"

namespace btcfast::dispute {

HeaderSyncManager::HeaderSyncManager(btc::ChainParams params)
    : HeaderSyncManager(std::move(params), Config{}) {}

HeaderSyncManager::HeaderSyncManager(btc::ChainParams params, Config config)
    : params_(std::move(params)), config_(config) {
  const btc::BlockHeader genesis = btc::genesis_header(params_);
  Entry root;
  root.header = genesis;
  root.height = 0;
  root.chain_work = btc::header_work(genesis.bits);
  best_tip_ = genesis.hash();
  index_.emplace(best_tip_, std::move(root));
  best_spine_.push_back(best_tip_);
}

std::uint32_t HeaderSyncManager::tip_height() const noexcept {
  const auto it = index_.find(best_tip_);
  return it == index_.end() ? 0 : it->second.height;
}

crypto::U256 HeaderSyncManager::tip_work() const {
  const auto it = index_.find(best_tip_);
  return it == index_.end() ? crypto::U256::zero() : it->second.chain_work;
}

std::optional<std::uint32_t> HeaderSyncManager::height_of(const btc::BlockHash& hash) const {
  const auto it = index_.find(hash);
  if (it == index_.end()) return std::nullopt;
  return it->second.height;
}

bool HeaderSyncManager::on_best_chain(const btc::BlockHash& hash) const {
  const auto it = index_.find(hash);
  if (it == index_.end()) return false;
  const std::uint32_t h = it->second.height;
  return h < best_spine_.size() && best_spine_[h] == hash;
}

std::optional<btc::BlockHeader> HeaderSyncManager::header_at(std::uint32_t height) const {
  if (height >= best_spine_.size()) return std::nullopt;
  return index_.at(best_spine_[height]).header;
}

std::uint32_t HeaderSyncManager::reorg_depth_to(const btc::BlockHash& new_tip) const {
  // Walk the new tip's ancestry down to the first block that sits on the
  // current best spine; everything above that fork point on the old
  // chain gets disconnected.
  const std::uint32_t old_height = tip_height();
  auto it = index_.find(new_tip);
  while (it != index_.end()) {
    const Entry& e = it->second;
    if (e.height < best_spine_.size() && best_spine_[e.height] == it->first) {
      return old_height - e.height;  // fork point found
    }
    if (e.height == 0) break;
    it = index_.find(e.header.prev_hash);
  }
  // Disjoint ancestry (different genesis) — treat as a full disconnect.
  return old_height + 1;
}

void HeaderSyncManager::rebuild_best_spine() {
  std::vector<btc::BlockHash> spine;
  auto it = index_.find(best_tip_);
  while (it != index_.end()) {
    spine.push_back(it->first);
    if (it->second.height == 0) break;
    it = index_.find(it->second.header.prev_hash);
  }
  std::reverse(spine.begin(), spine.end());
  best_spine_ = std::move(spine);
}

SyncResult HeaderSyncManager::accept_headers(const std::vector<btc::BlockHeader>& headers) {
  SyncResult result;
  btc::BlockHash best_candidate = best_tip_;
  crypto::U256 best_candidate_work = tip_work();

  for (const btc::BlockHeader& h : headers) {
    const btc::BlockHash hash = h.hash();
    if (index_.contains(hash)) {
      ++result.known;
      continue;
    }
    const auto parent = index_.find(h.prev_hash);
    if (parent == index_.end()) {
      ++result.orphaned;
      continue;
    }
    const auto target = btc::bits_to_target(h.bits);
    if (!target || *target > params_.pow_limit ||
        !btc::check_proof_of_work(h, params_.pow_limit)) {
      ++result.rejected;
      ++stats_.headers_rejected;
      continue;
    }
    Entry e;
    e.header = h;
    e.height = parent->second.height + 1;
    e.chain_work = parent->second.chain_work + btc::header_work(h.bits);
    if (e.chain_work > best_candidate_work) {
      best_candidate = hash;
      best_candidate_work = e.chain_work;
    }
    index_.emplace(hash, std::move(e));
    ++result.connected;
    ++stats_.headers_connected;
    if (store_ != nullptr) {
      store::StoreRecord rec;
      rec.kind = store::RecordKind::kHeaderAccept;
      h.serialize_into(rec.header.data());
      (void)store_->append(rec);
    }
  }
  if (store_ != nullptr && result.connected > 0) (void)store_->commit();

  if (best_candidate != best_tip_) {
    const std::uint32_t depth = reorg_depth_to(best_candidate);
    if (depth > config_.max_reorg_depth) {
      // The heavier branch exists in the tree but we refuse to follow it
      // past the consensus bound — a reorg this deep means either an
      // attack or a broken source; either way defenses built on the old
      // spine stay valid and a human gets to look.
      result.reorg_refused = true;
    } else {
      best_tip_ = best_candidate;
      rebuild_best_spine();
      result.reorg_depth = depth;
      if (depth > 0) {
        ++stats_.reorgs;
        stats_.deepest_reorg = std::max(stats_.deepest_reorg, depth);
      }
    }
  }
  return result;
}

std::size_t HeaderSyncManager::restore(const store::StateImage& image) {
  store::DurableStore* saved = store_;
  store_ = nullptr;  // the records being replayed are already in the log
  std::vector<btc::BlockHeader> batch;
  batch.reserve(image.headers.size());
  for (const auto& raw : image.headers) {
    const auto h = btc::BlockHeader::deserialize(ByteSpan{raw.data(), raw.size()});
    if (h) batch.push_back(*h);
  }
  const SyncResult r = accept_headers(batch);
  store_ = saved;
  return r.connected;
}

std::vector<btc::BlockHash> HeaderSyncManager::locator() const {
  std::vector<btc::BlockHash> loc;
  if (best_spine_.empty()) return loc;
  std::uint32_t step = 1;
  std::uint32_t h = static_cast<std::uint32_t>(best_spine_.size() - 1);
  while (true) {
    loc.push_back(best_spine_[h]);
    if (h == 0) break;
    if (loc.size() >= 10) step *= 2;  // dense near the tip, sparse behind
    h = (h > step) ? h - step : 0;
  }
  return loc;
}

std::vector<btc::BlockHeader> HeaderSyncManager::headers_after(
    const btc::Chain& source, const std::vector<btc::BlockHash>& loc,
    std::size_t max_count) {
  // The first locator entry the source recognizes on its active chain is
  // the sync point; everything after it is what the requester is missing.
  std::uint32_t start = 1;  // nothing matched: serve from just past genesis
  for (const btc::BlockHash& hash : loc) {
    if (!source.is_on_active_chain(hash)) continue;
    const auto height = source.block_height(hash);
    if (!height) continue;
    start = *height + 1;
    break;
  }
  if (start > source.height()) return {};
  const std::uint32_t count = static_cast<std::uint32_t>(
      std::min<std::size_t>(max_count, source.height() - start + 1));
  return source.header_range(start, count);
}

SyncResult HeaderSyncManager::sync_round(const btc::Chain& source) {
  ++stats_.sync_rounds;
  SyncResult r = accept_headers(headers_after(source, locator(), config_.batch_size));
  // Equal-work ties break toward the source. Two branches of equal work
  // leave the best-chain choice ambiguous (accept_headers keeps the
  // first-seen one, as Bitcoin nodes do), but the node we sync from will
  // extend *its* tip, and checkpoints must anchor where the chain will
  // actually grow — so follow it, never past the reorg bound.
  const btc::BlockHash src_tip = source.tip_hash();
  if (src_tip != best_tip_) {
    const auto it = index_.find(src_tip);
    if (it != index_.end() && it->second.chain_work == tip_work()) {
      const std::uint32_t depth = reorg_depth_to(src_tip);
      if (depth <= config_.max_reorg_depth) {
        best_tip_ = src_tip;
        rebuild_best_spine();
        r.reorg_depth = std::max(r.reorg_depth, depth);
        if (depth > 0) {
          ++stats_.reorgs;
          stats_.deepest_reorg = std::max(stats_.deepest_reorg, depth);
        }
      }
    }
  }
  return r;
}

std::size_t HeaderSyncManager::sync_from(const btc::Chain& source) {
  std::size_t rounds = 0;
  while (true) {
    ++rounds;
    const SyncResult r = sync_round(source);
    if (r.connected == 0) break;
    if (rounds > 100000) break;  // defensive: a source that never converges
  }
  return rounds;
}

std::vector<btc::BlockHeader> HeaderSyncManager::checkpoint_advance(
    const btc::BlockHash& current_checkpoint) const {
  std::vector<btc::BlockHeader> advance;
  const auto it = index_.find(current_checkpoint);
  if (it == index_.end()) return advance;
  const std::uint32_t anchor_height = it->second.height;
  // The anchor must sit on our best chain — if it reorged out, filing on
  // top of it would extend a dead branch.
  if (anchor_height >= best_spine_.size() || best_spine_[anchor_height] != current_checkpoint) {
    return advance;
  }
  const std::uint32_t tip = tip_height();
  if (tip < config_.checkpoint_lag) return advance;
  const std::uint32_t safe_tip = tip - config_.checkpoint_lag;
  if (safe_tip <= anchor_height) return advance;
  const std::uint32_t count = std::min<std::uint32_t>(
      safe_tip - anchor_height, static_cast<std::uint32_t>(config_.max_checkpoint_step));
  advance.reserve(count);
  for (std::uint32_t h = anchor_height + 1; h <= anchor_height + count; ++h) {
    advance.push_back(index_.at(best_spine_[h]).header);
  }
  return advance;
}

Bytes serialize_locator(const std::vector<btc::BlockHash>& loc) {
  Writer w;
  w.u16le(static_cast<std::uint16_t>(std::min<std::size_t>(loc.size(), 0xffff)));
  for (std::size_t i = 0; i < loc.size() && i < 0xffff; ++i) {
    w.bytes({loc[i].bytes.data(), loc[i].bytes.size()});
  }
  return std::move(w).take();
}

std::optional<std::vector<btc::BlockHash>> deserialize_locator(ByteSpan data) {
  Reader r(data);
  const auto count = r.u16le();
  if (!count) return std::nullopt;
  std::vector<btc::BlockHash> loc;
  loc.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto raw = r.bytes(32);
    if (!raw) return std::nullopt;
    btc::BlockHash h;
    std::copy(raw->begin(), raw->end(), h.bytes.begin());
    loc.push_back(h);
  }
  if (!r.at_end()) return std::nullopt;
  return loc;
}

}  // namespace btcfast::dispute
