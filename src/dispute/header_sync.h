// Reorg-aware header-sync manager for the watchtower (DESIGN.md §14).
//
// The watchtower's defenses are only as good as its view of the Bitcoin
// header chain. HeaderSyncManager maintains a standalone header tree —
// every valid header it has ever seen, not just the active spine — so it
// can (a) catch up from its Bitcoin node with exponentially-spaced block
// locators (the P2P getheaders idiom), (b) follow the heaviest chain
// across reorgs while *measuring* them, refusing any reorg deeper than
// the consensus bound `Chain::max_reorg_depth`, and (c) mint checkpoint
// advancement chains for `PayJudger::updateCheckpoint` so dispute
// anchors stay fresh without ever feeding the contract a header that
// later reorgs out.
//
// The tree is header-only (SpvClient-style): PoW is checked per header
// against the chain's pow_limit, cumulative work decides the best tip.
// Unlike SpvClient it keeps parent links queryable, which is what reorg
// *depth* accounting needs.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "btc/chain.h"
#include "btc/header.h"
#include "btc/params.h"
#include "btcfast/dispute_hooks.h"

namespace btcfast::store {
class DurableStore;
struct StateImage;
}  // namespace btcfast::store

namespace btcfast::dispute {

/// Outcome of one accept_headers() batch.
struct SyncResult {
  std::size_t connected = 0;       ///< headers appended to the tree
  std::size_t known = 0;           ///< duplicates we already had
  std::size_t orphaned = 0;        ///< parent unknown (caller should widen the locator)
  std::size_t rejected = 0;        ///< bad PoW / bad target
  std::uint32_t reorg_depth = 0;   ///< blocks disconnected from the old best tip
  bool reorg_refused = false;      ///< a heavier branch exceeded max_reorg_depth
};

struct SyncStats {
  std::uint64_t headers_connected = 0;
  std::uint64_t headers_rejected = 0;
  std::uint64_t reorgs = 0;
  std::uint32_t deepest_reorg = 0;
  std::uint64_t sync_rounds = 0;
};

class HeaderSyncManager final : public core::CheckpointSource {
 public:
  struct Config {
    /// Max headers pulled per sync round (P2P headers message cap).
    std::size_t batch_size = 2000;
    /// Refuse to follow a heavier branch that would disconnect more than
    /// this many blocks from our best tip. One day of blocks — matches
    /// the contract's evidence cap, and comfortably above any
    /// Chain::max_reorg_depth() a healthy node reports.
    std::uint32_t max_reorg_depth = 144;
    /// Stay this many blocks behind tip when advancing the checkpoint,
    /// so a checkpoint never reorgs out within the consensus bound.
    std::uint32_t checkpoint_lag = 6;
    /// Contract-side cap on headers per updateCheckpoint call.
    std::size_t max_checkpoint_step = 144;
  };

  /// Roots the tree at the params' genesis header.
  explicit HeaderSyncManager(btc::ChainParams params);
  HeaderSyncManager(btc::ChainParams params, Config config);

  /// Ingest a batch of headers (from a node or from the network); links
  /// them into the tree, switches to the heaviest valid branch, and
  /// reports reorg depth. Never throws on junk input.
  SyncResult accept_headers(const std::vector<btc::BlockHeader>& headers);

  /// Exponentially-spaced locator starting at our best tip (step 1 for
  /// the last 10, then doubling), always ending with the genesis hash.
  [[nodiscard]] std::vector<btc::BlockHash> locator() const;

  /// Serve side of the locator protocol: headers of `source`'s active
  /// chain after the highest locator entry it recognizes (genesis if
  /// none), at most `max_count`.
  [[nodiscard]] static std::vector<btc::BlockHeader> headers_after(
      const btc::Chain& source, const std::vector<btc::BlockHash>& loc,
      std::size_t max_count);

  /// One locator round-trip against a local node's chain. Returns the
  /// batch result (connected == 0 means we are caught up).
  SyncResult sync_round(const btc::Chain& source);

  /// Loop sync_round until caught up; returns rounds taken.
  std::size_t sync_from(const btc::Chain& source);

  // --- best-chain queries ---
  [[nodiscard]] btc::BlockHash tip_hash() const noexcept { return best_tip_; }
  [[nodiscard]] std::uint32_t tip_height() const noexcept;
  [[nodiscard]] crypto::U256 tip_work() const;
  [[nodiscard]] bool contains(const btc::BlockHash& hash) const {
    return index_.contains(hash);
  }
  /// Height of a header in the tree (any branch), if known.
  [[nodiscard]] std::optional<std::uint32_t> height_of(const btc::BlockHash& hash) const;
  /// True iff `hash` is on the current best chain.
  [[nodiscard]] bool on_best_chain(const btc::BlockHash& hash) const;
  /// Best-chain header at `height`.
  [[nodiscard]] std::optional<btc::BlockHeader> header_at(std::uint32_t height) const;

  // --- checkpoint advancement ---
  /// Contiguous best-chain headers (anchor, tip_height - checkpoint_lag]
  /// starting just after `current_checkpoint`, capped at
  /// max_checkpoint_step — ready for encode_checkpoint_args. Empty when
  /// the anchor is unknown/off-best or there is nothing (safe) to file.
  /// (core::CheckpointSource)
  [[nodiscard]] std::vector<btc::BlockHeader> checkpoint_advance(
      const btc::BlockHash& current_checkpoint) const override;

  // --- durable persistence ---
  /// Attach a durable store: every header accept_headers() connects from
  /// now on is logged as a kHeaderAccept record (one commit per batch),
  /// so a watchtower restart rebuilds the tree from its own WAL instead
  /// of re-syncing from genesis. Logging is best-effort — an append
  /// failure costs a re-sync after restart, never a wrong tree.
  void attach_store(store::DurableStore* store) noexcept { store_ = store; }
  /// Rebuild the tree from a recovered image's header log. Headers were
  /// persisted in connection order (parent-first), so one sequential
  /// re-accept reconnects everything. Store logging is suppressed — the
  /// records are already in the log. Returns headers reconnected.
  std::size_t restore(const store::StateImage& image);

  [[nodiscard]] const SyncStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t tree_size() const noexcept { return index_.size(); }
  [[nodiscard]] const btc::ChainParams& params() const noexcept { return params_; }

 private:
  struct Entry {
    btc::BlockHeader header;
    std::uint32_t height = 0;
    crypto::U256 chain_work;
  };

  /// Walk ancestors of `a` and `b` (same height) to their fork point;
  /// returns the number of blocks disconnected below the old tip.
  [[nodiscard]] std::uint32_t reorg_depth_to(const btc::BlockHash& new_tip) const;
  void rebuild_best_spine();

  btc::ChainParams params_;
  Config config_;
  std::unordered_map<btc::BlockHash, Entry, btc::Hash256Hasher> index_;
  std::vector<btc::BlockHash> best_spine_;  ///< best chain by height, [0] = genesis
  btc::BlockHash best_tip_{};
  SyncStats stats_;
  store::DurableStore* store_ = nullptr;
};

/// Locator wire codec (watchtower <-> node catch-up messages): u16le
/// count followed by 32-byte hashes. Decoder tolerates arbitrary junk.
[[nodiscard]] Bytes serialize_locator(const std::vector<btc::BlockHash>& loc);
[[nodiscard]] std::optional<std::vector<btc::BlockHash>> deserialize_locator(ByteSpan data);

}  // namespace btcfast::dispute
