#include "dispute/storm_engine.h"

#include <algorithm>

#include "btc/spv.h"
#include "common/serialize.h"

namespace btcfast::dispute {

StormEngine::StormEngine(psc::PscChain& psc, const psc::Address& judger)
    : StormEngine(psc, judger, Config{}) {}

StormEngine::StormEngine(psc::PscChain& psc, const psc::Address& judger, Config config)
    : psc_(psc), judger_addr_(judger), config_(config), index_(config.index) {
  judger_contract_ = dynamic_cast<core::PayJudger*>(psc_.contract(judger_addr_));
  if (judger_contract_ != nullptr) judger_contract_->set_digest_provider(this);
}

StormEngine::~StormEngine() {
  if (judger_contract_ != nullptr && judger_contract_->digest_provider() == this) {
    judger_contract_->set_digest_provider(nullptr);
  }
}

void StormEngine::batch_digests(const std::vector<btc::BlockHeader>& headers,
                                crypto::Sha256Digest* out) {
  // The contract's phase-1 callback. Disputes anchored at the same
  // checkpoint submit the identical chain, so first try the whole-chain
  // memo: one equality scan serves every digest with no per-header work.
  if (headers.empty()) return;
  std::lock_guard lock(chain_mu_);
  for (const auto& cached : chain_cache_) {
    if (cached.headers.size() == headers.size() &&
        std::equal(cached.headers.begin(), cached.headers.end(), headers.begin())) {
      std::copy(cached.digests.begin(), cached.digests.end(), out);
      return;
    }
  }
  // First sight of this chain: per-header probes against the index. The
  // sweep already warmed the batch's headers; anything it never saw
  // (junk the scan skipped, a direct execute outside a batch) is hashed
  // on demand here. Either way every digest is sha256d of the queried
  // bytes — parity needs no other argument.
  index_.batch_digests(headers, out);
  CachedChain entry{headers, {out, out + headers.size()}};
  if (chain_cache_.size() < kChainCacheCap) {
    chain_cache_.push_back(std::move(entry));
  } else {
    chain_cache_[chain_cache_next_] = std::move(entry);
    chain_cache_next_ = (chain_cache_next_ + 1) % kChainCacheCap;
  }
}

std::size_t StormEngine::scan_tx_headers(const psc::PscTx& tx, std::size_t max_headers,
                                         std::vector<btc::BlockHeader>* out) {
  // Client-side mirror of the contract's argument decoding. This runs on
  // untrusted bytes (anyone can submit a tx), so every branch tolerates
  // junk: a chain that fails to decode, or that exceeds the contract's
  // header cap (which the contract rejects before hashing), adds nothing.
  const ByteSpan raw = scan_tx_header_span(tx, max_headers);
  const std::size_t n = raw.size() / 80;
  for (std::size_t i = 0; i < n; ++i) {
    const auto h = btc::BlockHeader::deserialize(raw.subspan(i * 80, 80));
    if (!h) return 0;  // unreachable: any 80 bytes decode
    out->push_back(*h);
  }
  return n;
}

ByteSpan StormEngine::scan_tx_header_span(const psc::PscTx& tx, std::size_t max_headers) {
  Reader r({tx.args.data(), tx.args.size()});
  std::optional<ByteSpan> headers_bytes;
  if (tx.method == "submitMerchantEvidence" || tx.method == "submitCustomerEvidence") {
    if (!r.u64le()) return {};  // escrow id
    headers_bytes = r.span_with_len(1 << 20);
  } else if (tx.method == "updateCheckpoint") {
    headers_bytes = r.span_with_len(1 << 20);
  } else {
    return {};
  }
  if (!headers_bytes) return {};
  // Inside: deserialize_headers framing — varint count, then `count` raw
  // 80-byte headers, nothing trailing.
  Reader h(*headers_bytes);
  const auto count = h.varint();
  if (!count || *count == 0 || *count > max_headers) return {};
  const std::size_t body = static_cast<std::size_t>(*count) * 80;
  if (h.remaining() != body) return {};
  return headers_bytes->last(body);
}

std::size_t StormEngine::sweep_batch(const std::vector<psc::PscTx>& txs) {
  sweep_buf_.clear();
  for (const auto& tx : txs) {
    if (tx.to != judger_addr_) continue;
    const ByteSpan raw = scan_tx_header_span(tx, config_.max_headers_per_tx);
    sweep_buf_.insert(sweep_buf_.end(), raw.begin(), raw.end());
  }
  const std::size_t count = sweep_buf_.size() / 80;
  if (count != 0) index_.batch_digests_raw(sweep_buf_.data(), count, nullptr);
  return count;
}

std::size_t StormEngine::prehash(const std::vector<psc::PscTx>& txs) {
  return sweep_batch(txs);
}

std::vector<psc::Receipt> StormEngine::execute_batch(const std::vector<psc::PscTx>& txs,
                                                     std::uint64_t now_ms) {
  // Phase 1: one deduped parallel hashing sweep over the whole batch's
  // raw evidence bytes — every unique header is hashed exactly once,
  // across all disputes, before any of them executes.
  sweep_batch(txs);

  // Phase 2: sequential execution in input order, one block per tx —
  // exactly what a one-at-a-time submitter produces, so block numbers,
  // receipts and state transitions match byte-for-byte. The contract's
  // phase-1 digests come out of the warm index.
  std::vector<psc::Receipt> receipts;
  receipts.reserve(txs.size());
  for (const auto& tx : txs) {
    receipts.push_back(psc_.execute_now(tx, now_ms));
  }
  return receipts;
}

}  // namespace btcfast::dispute
