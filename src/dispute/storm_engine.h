// Dispute storm engine: batch execution of dispute-evidence transactions
// with cross-dispute header dedup (DESIGN.md §14).
//
// A flash double-spend wave lands as a batch of evidence transactions
// whose header chains overlap heavily (shared checkpoint anchors, one
// real Bitcoin chain). The engine:
//
//   1. pre-scans the batch, locating every evidence/checkpoint header
//      run as raw wire bytes (same framing the contract decodes) —
//      zero-copy, no per-header decoding;
//   2. dedups the union against the shared HeaderIndex and hashes all
//      unique headers in ONE parallel_for sweep;
//   3. replays each transaction through the real PscChain in order —
//      the PayJudger's phase-1 hashing is served from the warm index via
//      the HeaderDigestProvider seam, while its metered phase-2 walk
//      (and every gas charge) runs exactly as in one-at-a-time execution.
//
// Hard invariant: receipts (verdict, revert reason, gas, return data,
// logs, block number) and contract state transitions are byte-identical
// to submitting the same transactions one at a time with no engine
// attached, at any thread count and any batch composition. The engine
// only ever relocates *unmetered* hashing; it never skips a gas charge
// (charge-always) and never reorders execution.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "btcfast/dispute_hooks.h"
#include "btcfast/payjudger.h"
#include "common/bytes.h"
#include "dispute/header_index.h"
#include "psc/chain.h"

namespace btcfast::dispute {

class StormEngine final : public core::HeaderDigestProvider, public core::EvidencePrehasher {
 public:
  struct Config {
    HeaderIndex::Config index;
    /// Pre-scan safety bound per evidence chain; mirrors the contract's
    /// 144-header cap so the engine never pre-hashes unbounded junk.
    std::size_t max_headers_per_tx = 144;
  };

  /// Attaches to the PayJudger deployed at `judger` on `psc` (no-op if
  /// the address holds no PayJudger). Detaches on destruction, so the
  /// engine must be destroyed before the chain.
  StormEngine(psc::PscChain& psc, const psc::Address& judger);
  StormEngine(psc::PscChain& psc, const psc::Address& judger, Config config);
  ~StormEngine() override;

  StormEngine(const StormEngine&) = delete;
  StormEngine& operator=(const StormEngine&) = delete;

  /// Execute a batch of transactions in order at `now_ms`, prehashing the
  /// deduped union of their evidence headers first. Returns one receipt
  /// per transaction, in input order.
  std::vector<psc::Receipt> execute_batch(const std::vector<psc::PscTx>& txs,
                                          std::uint64_t now_ms);

  /// Warm the index with header chains decoded from evidence-bearing
  /// transactions without executing anything (used by the watchtower to
  /// prehash defenses it is about to hand to the orchestrator). Returns
  /// the number of headers swept. (core::EvidencePrehasher)
  std::size_t prehash(const std::vector<psc::PscTx>& txs) override;

  /// HeaderDigestProvider: phase-1 digests for the attached PayJudger.
  void batch_digests(const std::vector<btc::BlockHeader>& headers,
                     crypto::Sha256Digest* out) override;

  [[nodiscard]] HeaderIndex& index() noexcept { return index_; }
  [[nodiscard]] HeaderIndexStats stats() const { return index_.stats(); }
  [[nodiscard]] bool attached() const noexcept { return judger_contract_ != nullptr; }

  /// Decode the header chains carried by an evidence/checkpoint tx into
  /// `out` (appending; caps each chain at `max_headers`). Exposed for
  /// fuzzing — must never crash on arbitrary args. Returns headers added.
  static std::size_t scan_tx_headers(const psc::PscTx& tx, std::size_t max_headers,
                                     std::vector<btc::BlockHeader>* out);

  /// Zero-copy sibling of scan_tx_headers: a view of the tx's raw
  /// 80-byte-per-header run (valid while `tx` lives), or an empty span
  /// for anything the contract would reject before hashing. Accepts
  /// exactly the byte strings scan_tx_headers decodes. Exposed for
  /// fuzzing — must never crash on arbitrary args.
  [[nodiscard]] static ByteSpan scan_tx_header_span(const psc::PscTx& tx,
                                                    std::size_t max_headers);

 private:
  /// Gather the batch's raw header runs into sweep_buf_ and warm the
  /// index with one deduped parallel sweep. Returns headers swept.
  std::size_t sweep_batch(const std::vector<psc::PscTx>& txs);

  /// Whole-chain memo over the header index. Every dispute anchored at
  /// the same checkpoint submits the *identical* evidence chain, so most
  /// provider calls in a storm repeat a chain seen moments ago; one
  /// std::equal then serves the whole chain without per-header probes.
  /// Serving requires full byte equality, so digests are still always
  /// sha256d of the queried headers. Bounded FIFO; misses fall through
  /// to the index and are then cached.
  struct CachedChain {
    std::vector<btc::BlockHeader> headers;
    std::vector<crypto::Sha256Digest> digests;
  };
  static constexpr std::size_t kChainCacheCap = 32;

  psc::PscChain& psc_;
  psc::Address judger_addr_;
  Config config_;
  HeaderIndex index_;
  core::PayJudger* judger_contract_ = nullptr;
  std::vector<std::uint8_t> sweep_buf_;  ///< scratch for phase-1 sweeps
  std::mutex chain_mu_;
  std::vector<CachedChain> chain_cache_;
  std::size_t chain_cache_next_ = 0;  ///< FIFO overwrite cursor
};

}  // namespace btcfast::dispute
