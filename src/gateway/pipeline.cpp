#include "gateway/pipeline.h"

#include <algorithm>
#include <chrono>

#include "crypto/batch_verify.h"
#include "crypto/sigcache.h"

namespace btcfast::gateway {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count());
}

std::uint64_t between_us(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

/// Pull the request_id out of a frame header without copying the payload,
/// so the shed path can echo it at near-zero cost. Returns 0 when the
/// header itself is malformed.
std::uint64_t peek_request_id(ByteSpan data) {
  Reader r(data);
  auto magic = r.u32le();
  auto type = r.u8();
  auto rid = r.u64le();
  if (!magic || !type || !rid || *magic != kWireMagic) return 0;
  return *rid;
}

/// RAII in-flight accounting: admission decisions and queue-depth stats
/// stay correct on every exit path, including exceptions.
struct InflightGuard {
  std::atomic<std::size_t>& counter;
  GatewayStats& stats;
  std::size_t depth;

  InflightGuard(std::atomic<std::size_t>& c, GatewayStats& s) : counter(c), stats(s) {
    depth = counter.fetch_add(1, std::memory_order_relaxed) + 1;
    stats.queue_enter();
  }
  ~InflightGuard() {
    counter.fetch_sub(1, std::memory_order_relaxed);
    stats.queue_exit();
  }
};

}  // namespace

Gateway::Gateway(core::MerchantService& merchant, common::ThreadPool& pool, GatewayConfig config)
    : merchant_(merchant),
      pool_(pool),
      config_(config),
      batcher_(pool, &crypto::SigCache::global(),
               VerifyBatcher::Config{config.verify_batch_max, config.verify_batch_wait_us},
               &crypto::PubkeyPrecompCache::global()) {
  crypto::PubkeyPrecompCache::global().set_capacity(config_.pubkey_precomp_max);
  const std::size_t n = std::clamp<std::size_t>(config_.shards, 1, 64);
  config_.shards = n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_.ledger_stripes, reservation_ids_));
  }
  receipt_cap_ =
      config_.max_receipts == 0 ? 0 : std::max<std::size_t>(1, config_.max_receipts / n);
}

void Gateway::attach_store(store::DurableStore* store) {
  store_ = store;
  sync_store_stats();
}

void Gateway::sync_store_stats() {
  if (store_ == nullptr) return;
  front_stats_.set_store_metrics(store_->wal_appends(), store_->wal_syncs(),
                                 store_->recovery().replayed_records, store_->snapshot_bytes());
}

bool Gateway::restore_from(const store::StateImage& image) {
  bool ok = true;
  for (const auto& r : image.reservations) {
    Shard& sh = shard_for(r.escrow_id);
    if (!sh.ledger.restore_reservation(r.id, r.escrow_id, r.amount, r.expires_at_ms)) ok = false;
    std::lock_guard lock(tracked_mu_);
    tracked_.insert(r.escrow_id);
  }
  for (const auto& a : image.accepted) {
    const auto pkg = core::FastPayPackage::deserialize(a.package);
    const auto inv = core::Invoice::deserialize(a.invoice);
    if (!pkg || !inv) {
      ok = false;
      continue;
    }
    merchant_.restore_pending(*pkg, *inv, a.accepted_at_ms);
    const EscrowId eid = pkg->binding.binding.escrow_id;
    shard_for(eid).live_reservations.emplace(a.reservation_id, pkg->binding.binding.btc_txid);
    std::lock_guard lock(tracked_mu_);
    tracked_.insert(eid);
  }
  // Restored ledger entries carry a placeholder view until refreshed;
  // pull authoritative contract state now so try_reserve sees reality.
  std::vector<EscrowId> ids;
  {
    std::lock_guard lock(tracked_mu_);
    ids.assign(tracked_.begin(), tracked_.end());
  }
  for (const EscrowId id : ids) {
    if (const auto view = merchant_.escrow_view(id)) shard_for(id).ledger.upsert_escrow(id, *view);
  }
  sync_store_stats();
  return ok;
}

void Gateway::register_invoice(const core::Invoice& invoice) {
  std::unique_lock lock(invoices_mu_);
  invoices_[invoice.invoice_id] = invoice;
}

void Gateway::track_escrow(EscrowId id) {
  {
    std::lock_guard lock(tracked_mu_);
    tracked_.insert(id);
  }
  if (const auto view = merchant_.escrow_view(id)) {
    shard_for(id).ledger.upsert_escrow(id, *view);
  }
}

std::optional<EscrowView> Gateway::escrow_for(EscrowId id) {
  Shard& sh = shard_for(id);
  if (const auto snap = sh.ledger.snapshot(id)) return snap->view;
  if (!config_.lazy_escrow_fetch) return std::nullopt;
  // The chain view call is not reentrant, so lazy fetches serialize on a
  // gateway-wide lock; re-check the ledger first so only the one thread
  // that actually fetched pays the contract call.
  std::lock_guard fetch_lock(lazy_fetch_mu_);
  if (const auto snap = sh.ledger.snapshot(id)) return snap->view;
  const auto view = merchant_.escrow_view(id);
  if (!view) return std::nullopt;
  {
    std::lock_guard lock(tracked_mu_);
    tracked_.insert(id);
  }
  sh.ledger.upsert_escrow(id, *view);
  return view;
}

void Gateway::record_receipt(std::uint64_t request_id, bool accepted, RejectReason code,
                             std::uint64_t now_ms) {
  if (receipt_cap_ == 0) return;
  Shard& sh = receipt_shard(request_id);
  ReceiptInfoResponse r;
  r.found = true;
  r.accepted = accepted;
  r.code = code;
  r.decided_at_ms = now_ms;
  std::lock_guard lock(sh.receipts_mu);
  // Receipts are best-effort: request ids are client-chosen, so each
  // shard's cache is a bounded FIFO — oldest decisions fall out first,
  // never the map growing with attacker-supplied fresh ids.
  const bool inserted = sh.receipts.insert_or_assign(request_id, r).second;
  if (inserted) {
    sh.receipt_order.push_back(request_id);
    while (sh.receipts.size() > receipt_cap_) {
      sh.receipts.erase(sh.receipt_order.front());
      sh.receipt_order.pop_front();
    }
  }
}

Bytes Gateway::serve(ByteSpan frame_bytes, std::uint64_t now_ms) {
  const auto start = Clock::now();
  InflightGuard guard(inflight_, front_stats_);

  // Admission before any parsing: when the gateway is saturated, the
  // cheapest honest answer is "come back later" — unbounded queueing
  // just converts overload into latency for everyone.
  if (guard.depth > config_.max_inflight) {
    front_stats_.on_shed();
    RetryAfterResponse shed;
    shed.retry_after_ms = config_.retry_after_ms;
    shed.queue_depth = guard.depth;
    return make_frame(MsgType::kRetryAfter, peek_request_id(frame_bytes), shed.serialize());
  }

  const auto frame = Frame::deserialize(frame_bytes);
  if (!frame) {
    front_stats_.on_reject(RejectReason::kMalformedFrame, elapsed_us(start));
    ErrorResponse err;
    err.code = RejectReason::kMalformedFrame;
    err.message = "undecodable frame";
    return make_frame(MsgType::kError, peek_request_id(frame_bytes), err.serialize());
  }

  switch (frame->type) {
    case MsgType::kSubmitFastPay: {
      const Bytes resp = handle_submit(*frame, now_ms);
      // handle_submit records accept/reject counters; latency is the
      // full serve() span, recorded there once the response exists.
      return resp;
    }
    case MsgType::kQueryEscrow:
      return handle_query_escrow(*frame, now_ms);
    case MsgType::kGetReceipt:
      return handle_get_receipt(*frame);
    default: {
      ErrorResponse err;
      err.code = RejectReason::kMalformedFrame;
      err.message = "unexpected message type";
      front_stats_.on_reject(RejectReason::kMalformedFrame, elapsed_us(start));
      return make_frame(MsgType::kError, frame->request_id, err.serialize());
    }
  }
}

Bytes Gateway::handle_submit(const Frame& frame, std::uint64_t now_ms) {
  const auto start = Clock::now();
  auto req = SubmitFastPayRequest::deserialize(frame.payload);
  if (!req) {
    // No escrow id to route by — the malformed reject is front-door work.
    record_receipt(frame.request_id, false, RejectReason::kMalformedFrame, now_ms);
    front_stats_.on_reject(RejectReason::kMalformedFrame, elapsed_us(start));
    FastPayResultResponse resp;
    resp.accepted = false;
    resp.code = RejectReason::kMalformedFrame;
    resp.reason = "undecodable SubmitFastPay payload";
    return make_frame(MsgType::kFastPayResult, frame.request_id, resp.serialize());
  }

  const core::PaymentBinding& b = req->package.binding.binding;
  Shard& sh = shard_for(b.escrow_id);
  auto stage_start = start;
  auto mark = [&](Stage stage) {
    const auto now = Clock::now();
    sh.stats.on_stage(stage, between_us(stage_start, now));
    stage_start = now;
  };
  mark(Stage::kDecode);

  auto finish = [&](bool accepted, RejectReason code, std::string reason,
                    ReservationId rid) -> Bytes {
    stage_start = Clock::now();
    record_receipt(frame.request_id, accepted, code, now_ms);
    FastPayResultResponse resp;
    resp.accepted = accepted;
    resp.code = code;
    resp.reason = std::move(reason);
    resp.reservation_id = rid;
    Bytes out = make_frame(MsgType::kFastPayResult, frame.request_id, resp.serialize());
    mark(Stage::kRespond);
    if (accepted) {
      sh.stats.on_accept(elapsed_us(start));
    } else {
      sh.stats.on_reject(code, elapsed_us(start));
    }
    return out;
  };

  std::optional<core::Invoice> invoice;
  {
    std::shared_lock lock(invoices_mu_);
    if (auto it = invoices_.find(req->invoice_id); it != invoices_.end()) {
      invoice = it->second;
    }
  }
  if (!invoice) {
    return finish(false, RejectReason::kUnknownInvoice, "invoice not registered", 0);
  }

  const auto escrow = escrow_for(b.escrow_id);
  psc::Value outstanding = 0;
  if (const auto snap = sh.ledger.snapshot(b.escrow_id)) outstanding = snap->local_reserved;

  // Stage: verify. Opportunistic micro-batch — this request's signature
  // jobs coalesce with every other concurrently in-flight submit into
  // one batch_verify that warms the global SigCache, so the inline
  // checks inside evaluate_against below are cache hits. Zero-latency
  // when single-threaded (no window opens) or disabled.
  if (config_.verify_batch_max > 0 && escrow.has_value()) {
    stage_start = Clock::now();
    std::vector<crypto::SigCheckJob> jobs;
    jobs.reserve(1 + req->package.payment_tx.inputs.size());
    {
      crypto::SigCheckJob job;
      job.digest = b.signing_digest();
      job.pubkey = escrow->customer_btc_key;
      job.sig = req->package.binding.customer_sig;
      jobs.push_back(job);
    }
    const auto& node = merchant_.btc_node();
    for (std::size_t i = 0; i < req->package.payment_tx.inputs.size(); ++i) {
      const auto& in = req->package.payment_tx.inputs[i];
      if (const auto coin = node.chain().utxo().get(in.prevout)) {
        crypto::SigCheckJob job;
        job.digest = req->package.payment_tx.signature_hash(i, coin->out.script_pubkey);
        job.pubkey = in.script_sig.pubkey;
        job.sig = in.script_sig.signature;
        jobs.push_back(job);
      }
    }
    const bool allow_wait = inflight_.load(std::memory_order_relaxed) > 1;
    (void)batcher_.verify(std::move(jobs), allow_wait);
    mark(Stage::kVerify);
  }

  // Stage: evaluate. Const and read-only — many threads run this
  // concurrently; signature checks go through the global SigCache.
  stage_start = Clock::now();
  const auto decision =
      merchant_.evaluate_against(req->package, *invoice, now_ms, escrow, outstanding);
  mark(Stage::kEvaluate);
  if (!decision.accepted) {
    return finish(false, decision.code, decision.reason, 0);
  }

  // Stage: reserve. The per-escrow serialization point — the shard's
  // ledger decides atomically whether this payment still fits the
  // escrow's collateral (and the merchant's exposure cap) given every
  // concurrent winner. The hold lasts until the binding's own expiry:
  // the merchant is exposed for as long as the binding is disputable, so
  // releasing any earlier would undercount exposure and let later
  // payments overcommit.
  RejectReason deny = RejectReason::kNone;
  const auto rid = sh.ledger.try_reserve(b.escrow_id, b.compensation, b.expiry_ms,
                                         merchant_.config().per_escrow_exposure_cap, &deny);
  mark(Stage::kReserve);
  if (!rid) {
    return finish(false, deny, std::string("reservation denied: ") + core::describe(deny), 0);
  }

  // Stage: durability. The reservation hits the WAL before the accept
  // response exists — a crash after this point recovers with the
  // collateral still held, so the acked binding stays covered.
  if (store_ != nullptr) {
    store::StoreRecord rec;
    rec.kind = store::RecordKind::kReserve;
    rec.reservation_id = *rid;
    rec.escrow_id = b.escrow_id;
    rec.amount = b.compensation;
    rec.expires_at_ms = b.expiry_ms;
    rec.txid = b.btc_txid.bytes;
    const auto seq = store_->append(rec);
    if (!seq || !store_->commit()) {
      (void)sh.ledger.release(*rid);
      return finish(false, RejectReason::kOverloaded, "durable store commit failed", 0);
    }
    // Replication gate: the accept response must not exist until a
    // quorum of followers durably hold the reservation. On failure the
    // local log stays consistent — the reserve is followed by a
    // rejected-release, and both ship once followers return.
    if (gate_ != nullptr && !gate_->quorum_commit(*seq, now_ms)) {
      (void)sh.ledger.release(*rid);
      store::StoreRecord rel;
      rel.kind = store::RecordKind::kRelease;
      rel.reservation_id = *rid;
      rel.cause = store::ReleaseCause::kRejected;
      (void)store_->append(rel);
      (void)store_->commit();
      return finish(false, RejectReason::kOverloaded, "replication quorum unreachable", 0);
    }
    sync_store_stats();
    mark(Stage::kWal);
  }

  // Stage: commit handoff. The merchant's book is bounded by claiming a
  // slot on the queued-accepts counter before the queue push — racing
  // accepts across shards cannot overshoot max_pending_payments, and no
  // cross-shard lock is taken.
  const std::size_t limit = merchant_.config().max_pending_payments;
  const std::size_t claimed = queued_accepts_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (limit > 0 && merchant_.active_pending_count() + claimed > limit) {
    queued_accepts_.fetch_sub(1, std::memory_order_acq_rel);
    (void)sh.ledger.release(*rid);
    if (store_ != nullptr) {
      store::StoreRecord rec;
      rec.kind = store::RecordKind::kRelease;
      rec.reservation_id = *rid;
      rec.cause = store::ReleaseCause::kRejected;
      (void)store_->append(rec);
      (void)store_->commit();
    }
    return finish(false, RejectReason::kPendingLimit, "merchant pending-payment limit reached",
                  0);
  }
  {
    Accepted a;
    a.package = std::move(req->package);
    a.invoice = *invoice;
    a.now_ms = now_ms;
    a.reservation_id = *rid;
    std::lock_guard lock(sh.commit_mu);
    sh.commit_queue.push_back(std::move(a));
  }
  mark(Stage::kCommit);
  return finish(true, RejectReason::kNone, {}, *rid);
}

Bytes Gateway::handle_query_escrow(const Frame& frame, std::uint64_t now_ms) {
  (void)now_ms;
  const auto req = QueryEscrowRequest::deserialize(frame.payload);
  if (!req) {
    ErrorResponse err;
    err.code = RejectReason::kMalformedFrame;
    err.message = "undecodable QueryEscrow payload";
    return make_frame(MsgType::kError, frame.request_id, err.serialize());
  }
  EscrowInfoResponse resp;
  (void)escrow_for(req->escrow_id);  // lazy mode: pull into the ledger
  if (const auto snap = shard_for(req->escrow_id).ledger.snapshot(req->escrow_id)) {
    resp.found = true;
    resp.state = static_cast<std::uint64_t>(snap->view.state);
    resp.collateral = snap->view.collateral;
    resp.reserved = snap->view.reserved + snap->local_reserved;
    resp.unlock_time_ms = snap->view.unlock_time_ms;
  }
  return make_frame(MsgType::kEscrowInfo, frame.request_id, resp.serialize());
}

Bytes Gateway::handle_get_receipt(const Frame& frame) {
  const auto req = GetReceiptRequest::deserialize(frame.payload);
  if (!req) {
    ErrorResponse err;
    err.code = RejectReason::kMalformedFrame;
    err.message = "undecodable GetReceipt payload";
    return make_frame(MsgType::kError, frame.request_id, err.serialize());
  }
  ReceiptInfoResponse resp;  // found=false default
  {
    Shard& sh = receipt_shard(req->request_id);
    std::lock_guard lock(sh.receipts_mu);
    if (auto it = sh.receipts.find(req->request_id); it != sh.receipts.end()) {
      resp = it->second;
    }
  }
  return make_frame(MsgType::kReceiptInfo, frame.request_id, resp.serialize());
}

std::future<Bytes> Gateway::submit(Bytes frame_bytes, std::uint64_t now_ms) {
  return pool_.submit([this, frame = std::move(frame_bytes), now_ms]() {
    return serve(frame, now_ms);
  });
}

std::vector<Bytes> Gateway::serve_batch(const std::vector<Bytes>& frames, std::uint64_t now_ms) {
  // Phase 1 (parallel): pre-verify every signature the sequential serves
  // below would check, warming the global cache — the same fast-verify
  // pipeline MerchantService::evaluate_fastpay_batch uses.
  std::vector<crypto::SigCheckJob> jobs;
  for (const auto& bytes : frames) {
    const auto frame = Frame::deserialize(bytes);
    if (!frame || frame->type != MsgType::kSubmitFastPay) continue;
    const auto req = SubmitFastPayRequest::deserialize(frame->payload);
    if (!req) continue;
    const core::PaymentBinding& b = req->package.binding.binding;
    if (const auto escrow = escrow_for(b.escrow_id)) {
      crypto::SigCheckJob job;
      job.digest = b.signing_digest();
      job.pubkey = escrow->customer_btc_key;
      job.sig = req->package.binding.customer_sig;
      jobs.push_back(job);
    }
    const auto& node = merchant_.btc_node();
    for (std::size_t i = 0; i < req->package.payment_tx.inputs.size(); ++i) {
      const auto& in = req->package.payment_tx.inputs[i];
      if (const auto coin = node.chain().utxo().get(in.prevout)) {
        crypto::SigCheckJob job;
        job.digest = req->package.payment_tx.signature_hash(i, coin->out.script_pubkey);
        job.pubkey = in.script_sig.pubkey;
        job.sig = in.script_sig.signature;
        jobs.push_back(job);
      }
    }
  }
  (void)crypto::batch_verify(pool_, jobs, &crypto::SigCache::global(),
                             &crypto::PubkeyPrecompCache::global());

  // Phase 2 (sequential): decisions in input order — identical responses
  // to a plain serve() loop for any pool size, just with hot caches.
  std::vector<Bytes> out;
  out.reserve(frames.size());
  for (const auto& bytes : frames) {
    out.push_back(serve(bytes, now_ms));
  }
  return out;
}

std::vector<psc::PscTx> Gateway::flush_accepted(std::uint64_t now_ms) {
  // Seal the epoch: swap out every shard's queue. Items accepted after
  // this point land in the next epoch.
  std::vector<std::vector<Accepted>> epoch(shards_.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard lock(shards_[i]->commit_mu);
    epoch[i].swap(shards_[i]->commit_queue);
    total += epoch[i].size();
  }
  if (total > 0) queued_accepts_.fetch_sub(total, std::memory_order_acq_rel);

  // The epoch drains through the WAL first: the accepted bindings are
  // group-committed before any merchant bookkeeping or BTC broadcast, so
  // a crash mid-flush recovers with every binding it committed to — and
  // none it didn't. Record encoding (package/invoice serialization) is
  // the expensive part, so it fans across the pool; the appends and the
  // single fsync stay sequential, preserving the byte layout a
  // single-threaded flush would write.
  if (store_ != nullptr && total > 0) {
    std::vector<store::StoreRecord> records(total);
    std::vector<const Accepted*> flat;
    flat.reserve(total);
    for (const auto& q : epoch) {
      for (const auto& a : q) flat.push_back(&a);
    }
    pool_.parallel_for(flat.size(), [&](std::size_t i) {
      const Accepted& a = *flat[i];
      store::StoreRecord& rec = records[i];
      rec.kind = store::RecordKind::kAcceptCommit;
      rec.reservation_id = a.reservation_id;
      rec.accepted_at_ms = a.now_ms;
      rec.package = a.package.serialize();
      rec.invoice = a.invoice.serialize();
    });
    for (auto& rec : records) (void)store_->append(rec);
    (void)store_->commit();
    // Replication gate on the epoch: merchant bookkeeping and the BTC
    // broadcast stay held back until a quorum of followers durably hold
    // every accept record. On failure the sealed epoch is re-queued
    // intact (front of each shard's queue, original order) and retried
    // by the next flush — the local WAL already has the records, so the
    // re-flush appends nothing new.
    if (gate_ != nullptr && !gate_->quorum_commit(store_->last_committed_seq(), now_ms)) {
      std::size_t requeued = 0;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (epoch[i].empty()) continue;
        requeued += epoch[i].size();
        std::lock_guard lock(shards_[i]->commit_mu);
        shards_[i]->commit_queue.insert(shards_[i]->commit_queue.begin(),
                                        std::make_move_iterator(epoch[i].begin()),
                                        std::make_move_iterator(epoch[i].end()));
      }
      queued_accepts_.fetch_add(requeued, std::memory_order_acq_rel);
      sync_store_stats();
      return {};
    }
    sync_store_stats();
  }

  // Apply merchant bookkeeping deterministically: shard order, then
  // queue order. The merchant book and BTC broadcast are not
  // thread-safe, and a parallel apply would make broadcast order depend
  // on scheduling — this stays the control thread's job by design.
  std::vector<psc::PscTx> actions;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (auto& a : epoch[i]) {
      const btc::Txid txid = a.package.binding.binding.btc_txid;
      auto txs = merchant_.accept_payment(std::move(a.package), std::move(a.invoice), a.now_ms);
      for (auto& tx : txs) actions.push_back(std::move(tx));
      shards_[i]->live_reservations.emplace(a.reservation_id, txid);
    }
  }
  return actions;
}

void Gateway::reconcile(std::uint64_t now_ms) {
  // Refresh every tracked escrow from authoritative contract state. A
  // reorg that shrank collateral, a judged dispute, a topped-up escrow —
  // all become visible to try_reserve here.
  std::vector<EscrowId> ids;
  {
    std::lock_guard lock(tracked_mu_);
    ids.assign(tracked_.begin(), tracked_.end());
  }
  for (const EscrowId id : ids) {
    if (const auto view = merchant_.escrow_view(id)) shard_for(id).ledger.upsert_escrow(id, *view);
  }

  // Release reservations whose payments resolved (settled on BTC or
  // judged on PSC) — the merchant book is the source of truth.
  bool logged = false;
  auto log_release = [&](ReservationId rid, store::ReleaseCause cause) {
    if (store_ == nullptr) return;
    store::StoreRecord rec;
    rec.kind = store::RecordKind::kRelease;
    rec.reservation_id = rid;
    rec.cause = cause;
    (void)store_->append(rec);
    logged = true;
  };
  std::unordered_set<std::string> resolved;
  bool resolved_built = false;
  for (auto& shard : shards_) {
    if (shard->live_reservations.empty()) continue;
    if (!resolved_built) {
      for (const auto& p : merchant_.pending()) {
        if (p.settled || p.judged) {
          resolved.insert(p.package.binding.binding.btc_txid.to_string());
        }
      }
      resolved_built = true;
    }
    for (auto it = shard->live_reservations.begin(); it != shard->live_reservations.end();) {
      if (resolved.count(it->second.to_string()) > 0) {
        (void)shard->ledger.release(it->first);
        log_release(it->first, store::ReleaseCause::kResolved);
        it = shard->live_reservations.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Drop reservations past their deadline: the binding can no longer be
  // disputed, so the collateral hold serves nobody.
  std::vector<ReservationId> expired;
  for (auto& shard : shards_) {
    (void)shard->ledger.expire_due(now_ms, store_ != nullptr ? &expired : nullptr);
  }
  for (const ReservationId rid : expired) log_release(rid, store::ReleaseCause::kExpired);
  if (logged) {
    (void)store_->commit();
    sync_store_stats();
  }
}

GatewayStats Gateway::stats() const {
  GatewayStats out(front_stats_);
  for (const auto& shard : shards_) out.accumulate(shard->stats);
  // The crypto caches are process-wide; snapshot their counters as
  // gauges so the JSON dump shows verify-cache efficacy next to the
  // serving counters.
  const auto sig = crypto::SigCache::global().stats();
  const auto pre = crypto::PubkeyPrecompCache::global().stats();
  out.set_cache_metrics(sig.hits, sig.misses, sig.insertions, sig.evictions, pre.hits, pre.misses,
                        pre.insertions, pre.evictions);
  return out;
}

const GatewayStats& Gateway::shard_stats(std::size_t i) const {
  return shards_[i % shards_.size()]->stats;
}

void Gateway::reset_stats() {
  front_stats_.reset();
  for (auto& shard : shards_) shard->stats.reset();
  sync_store_stats();
}

std::optional<ReservationLedger::EscrowSnapshot> Gateway::escrow_snapshot(EscrowId id) const {
  return shard_for(id).ledger.snapshot(id);
}

std::uint64_t Gateway::reservations_granted() const noexcept {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->ledger.total_granted();
  return n;
}

std::uint64_t Gateway::reservations_denied() const noexcept {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->ledger.total_denied();
  return n;
}

std::uint64_t Gateway::reservations_released() const noexcept {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->ledger.total_released();
  return n;
}

std::uint64_t Gateway::reservations_expired() const noexcept {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->ledger.total_expired();
  return n;
}

std::size_t Gateway::commit_queue_depth() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->commit_mu);
    n += shard->commit_queue.size();
  }
  return n;
}

}  // namespace btcfast::gateway
