#include "gateway/pipeline.h"

#include <chrono>

#include "crypto/batch_verify.h"
#include "crypto/sigcache.h"

namespace btcfast::gateway {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count());
}

/// Pull the request_id out of a frame header without copying the payload,
/// so the shed path can echo it at near-zero cost. Returns 0 when the
/// header itself is malformed.
std::uint64_t peek_request_id(ByteSpan data) {
  Reader r(data);
  auto magic = r.u32le();
  auto type = r.u8();
  auto rid = r.u64le();
  if (!magic || !type || !rid || *magic != kWireMagic) return 0;
  return *rid;
}

/// RAII in-flight accounting: admission decisions and queue-depth stats
/// stay correct on every exit path, including exceptions.
struct InflightGuard {
  std::atomic<std::size_t>& counter;
  GatewayStats& stats;
  std::size_t depth;

  InflightGuard(std::atomic<std::size_t>& c, GatewayStats& s) : counter(c), stats(s) {
    depth = counter.fetch_add(1, std::memory_order_relaxed) + 1;
    stats.queue_enter();
  }
  ~InflightGuard() {
    counter.fetch_sub(1, std::memory_order_relaxed);
    stats.queue_exit();
  }
};

}  // namespace

Gateway::Gateway(core::MerchantService& merchant, common::ThreadPool& pool, GatewayConfig config)
    : merchant_(merchant), pool_(pool), config_(config), ledger_(config.ledger_stripes) {}

void Gateway::attach_store(store::DurableStore* store) {
  store_ = store;
  sync_store_stats();
}

void Gateway::sync_store_stats() {
  if (store_ == nullptr) return;
  stats_.set_store_metrics(store_->wal_appends(), store_->wal_syncs(),
                           store_->recovery().replayed_records, store_->snapshot_bytes());
}

bool Gateway::restore_from(const store::StateImage& image) {
  bool ok = true;
  for (const auto& r : image.reservations) {
    if (!ledger_.restore_reservation(r.id, r.escrow_id, r.amount, r.expires_at_ms)) ok = false;
    tracked_.insert(r.escrow_id);
  }
  for (const auto& a : image.accepted) {
    const auto pkg = core::FastPayPackage::deserialize(a.package);
    const auto inv = core::Invoice::deserialize(a.invoice);
    if (!pkg || !inv) {
      ok = false;
      continue;
    }
    merchant_.restore_pending(*pkg, *inv, a.accepted_at_ms);
    live_reservations_.emplace(a.reservation_id, pkg->binding.binding.btc_txid);
    tracked_.insert(pkg->binding.binding.escrow_id);
  }
  // Restored ledger entries carry a placeholder view until refreshed;
  // pull authoritative contract state now so try_reserve sees reality.
  for (const EscrowId id : tracked_) {
    if (const auto view = merchant_.escrow_view(id)) ledger_.upsert_escrow(id, *view);
  }
  sync_store_stats();
  return ok;
}

void Gateway::register_invoice(const core::Invoice& invoice) {
  std::unique_lock lock(invoices_mu_);
  invoices_[invoice.invoice_id] = invoice;
}

void Gateway::track_escrow(EscrowId id) {
  tracked_.insert(id);
  if (const auto view = merchant_.escrow_view(id)) {
    ledger_.upsert_escrow(id, *view);
  }
}

std::optional<EscrowView> Gateway::escrow_for(EscrowId id) {
  if (const auto snap = ledger_.snapshot(id)) return snap->view;
  if (!config_.lazy_escrow_fetch) return std::nullopt;
  // Single-threaded mode only: the chain view call below is not safe
  // against concurrent servers (see GatewayConfig::lazy_escrow_fetch).
  const auto view = merchant_.escrow_view(id);
  if (!view) return std::nullopt;
  tracked_.insert(id);
  ledger_.upsert_escrow(id, *view);
  return view;
}

void Gateway::record_receipt(std::uint64_t request_id, bool accepted, RejectReason code,
                             std::uint64_t now_ms) {
  if (config_.max_receipts == 0) return;
  ReceiptInfoResponse r;
  r.found = true;
  r.accepted = accepted;
  r.code = code;
  r.decided_at_ms = now_ms;
  std::lock_guard lock(receipts_mu_);
  // Receipts are best-effort: request ids are client-chosen, so the cache
  // is a bounded FIFO — oldest decisions fall out first, never the map
  // growing with attacker-supplied fresh ids.
  const bool inserted = receipts_.insert_or_assign(request_id, r).second;
  if (inserted) {
    receipt_order_.push_back(request_id);
    while (receipts_.size() > config_.max_receipts) {
      receipts_.erase(receipt_order_.front());
      receipt_order_.pop_front();
    }
  }
}

Bytes Gateway::serve(ByteSpan frame_bytes, std::uint64_t now_ms) {
  const auto start = Clock::now();
  InflightGuard guard(inflight_, stats_);

  // Admission before any parsing: when the gateway is saturated, the
  // cheapest honest answer is "come back later" — unbounded queueing
  // just converts overload into latency for everyone.
  if (guard.depth > config_.max_inflight) {
    stats_.on_shed();
    RetryAfterResponse shed;
    shed.retry_after_ms = config_.retry_after_ms;
    shed.queue_depth = guard.depth;
    return make_frame(MsgType::kRetryAfter, peek_request_id(frame_bytes), shed.serialize());
  }

  const auto frame = Frame::deserialize(frame_bytes);
  if (!frame) {
    stats_.on_reject(RejectReason::kMalformedFrame, elapsed_us(start));
    ErrorResponse err;
    err.code = RejectReason::kMalformedFrame;
    err.message = "undecodable frame";
    return make_frame(MsgType::kError, peek_request_id(frame_bytes), err.serialize());
  }

  switch (frame->type) {
    case MsgType::kSubmitFastPay: {
      const Bytes resp = handle_submit(*frame, now_ms);
      // handle_submit records accept/reject counters; latency is the
      // full serve() span, recorded here once the response exists.
      return resp;
    }
    case MsgType::kQueryEscrow:
      return handle_query_escrow(*frame, now_ms);
    case MsgType::kGetReceipt:
      return handle_get_receipt(*frame);
    default: {
      ErrorResponse err;
      err.code = RejectReason::kMalformedFrame;
      err.message = "unexpected message type";
      stats_.on_reject(RejectReason::kMalformedFrame, elapsed_us(start));
      return make_frame(MsgType::kError, frame->request_id, err.serialize());
    }
  }
}

Bytes Gateway::handle_submit(const Frame& frame, std::uint64_t now_ms) {
  const auto start = Clock::now();
  auto finish = [&](bool accepted, RejectReason code, std::string reason,
                    ReservationId rid) -> Bytes {
    record_receipt(frame.request_id, accepted, code, now_ms);
    if (accepted) {
      stats_.on_accept(elapsed_us(start));
    } else {
      stats_.on_reject(code, elapsed_us(start));
    }
    FastPayResultResponse resp;
    resp.accepted = accepted;
    resp.code = code;
    resp.reason = std::move(reason);
    resp.reservation_id = rid;
    return make_frame(MsgType::kFastPayResult, frame.request_id, resp.serialize());
  };

  const auto req = SubmitFastPayRequest::deserialize(frame.payload);
  if (!req) {
    return finish(false, RejectReason::kMalformedFrame, "undecodable SubmitFastPay payload", 0);
  }

  std::optional<core::Invoice> invoice;
  {
    std::shared_lock lock(invoices_mu_);
    if (auto it = invoices_.find(req->invoice_id); it != invoices_.end()) {
      invoice = it->second;
    }
  }
  if (!invoice) {
    return finish(false, RejectReason::kUnknownInvoice, "invoice not registered", 0);
  }

  const core::PaymentBinding& b = req->package.binding.binding;
  const auto escrow = escrow_for(b.escrow_id);
  psc::Value outstanding = 0;
  if (const auto snap = ledger_.snapshot(b.escrow_id)) outstanding = snap->local_reserved;

  // Stage: evaluate. Const and read-only — many threads run this
  // concurrently; signature checks go through the global SigCache.
  const auto decision = merchant_.evaluate_against(req->package, *invoice, now_ms, escrow,
                                                   outstanding);
  if (!decision.accepted) {
    return finish(false, decision.code, decision.reason, 0);
  }

  // Stage: reserve. The single serialization point — the ledger decides
  // atomically whether this payment still fits the escrow's collateral
  // (and the merchant's exposure cap) given every concurrent winner. The
  // hold lasts until the binding's own expiry: the merchant is exposed
  // for as long as the binding is disputable, so releasing any earlier
  // would undercount exposure and let later payments overcommit.
  RejectReason deny = RejectReason::kNone;
  const auto rid = ledger_.try_reserve(b.escrow_id, b.compensation, b.expiry_ms,
                                       merchant_.config().per_escrow_exposure_cap, &deny);
  if (!rid) {
    return finish(false, deny, std::string("reservation denied: ") + core::describe(deny), 0);
  }

  // Stage: durability. The reservation hits the WAL before the accept
  // response exists — a crash after this point recovers with the
  // collateral still held, so the acked binding stays covered.
  if (store_ != nullptr) {
    store::StoreRecord rec;
    rec.kind = store::RecordKind::kReserve;
    rec.reservation_id = *rid;
    rec.escrow_id = b.escrow_id;
    rec.amount = b.compensation;
    rec.expires_at_ms = b.expiry_ms;
    rec.txid = b.btc_txid.bytes;
    if (!store_->append(rec) || !store_->commit()) {
      (void)ledger_.release(*rid);
      return finish(false, RejectReason::kOverloaded, "durable store commit failed", 0);
    }
    sync_store_stats();
  }

  // Stage: commit handoff. The merchant's book is bounded here (under
  // the same lock as the queue, so racing accepts cannot overshoot
  // max_pending_payments) and mutation is deferred to flush_accepted().
  {
    std::lock_guard lock(commit_mu_);
    const std::size_t limit = merchant_.config().max_pending_payments;
    if (limit > 0 && merchant_.active_pending_count() + commit_queue_.size() >= limit) {
      (void)ledger_.release(*rid);
      if (store_ != nullptr) {
        store::StoreRecord rec;
        rec.kind = store::RecordKind::kRelease;
        rec.reservation_id = *rid;
        rec.cause = store::ReleaseCause::kRejected;
        (void)store_->append(rec);
        (void)store_->commit();
      }
      return finish(false, RejectReason::kPendingLimit, "merchant pending-payment limit reached",
                    0);
    }
    Accepted a;
    a.package = req->package;
    a.invoice = *invoice;
    a.now_ms = now_ms;
    a.reservation_id = *rid;
    commit_queue_.push_back(std::move(a));
  }
  return finish(true, RejectReason::kNone, {}, *rid);
}

Bytes Gateway::handle_query_escrow(const Frame& frame, std::uint64_t now_ms) {
  (void)now_ms;
  const auto req = QueryEscrowRequest::deserialize(frame.payload);
  if (!req) {
    ErrorResponse err;
    err.code = RejectReason::kMalformedFrame;
    err.message = "undecodable QueryEscrow payload";
    return make_frame(MsgType::kError, frame.request_id, err.serialize());
  }
  EscrowInfoResponse resp;
  (void)escrow_for(req->escrow_id);  // lazy mode: pull into the ledger
  if (const auto snap = ledger_.snapshot(req->escrow_id)) {
    resp.found = true;
    resp.state = static_cast<std::uint64_t>(snap->view.state);
    resp.collateral = snap->view.collateral;
    resp.reserved = snap->view.reserved + snap->local_reserved;
    resp.unlock_time_ms = snap->view.unlock_time_ms;
  }
  return make_frame(MsgType::kEscrowInfo, frame.request_id, resp.serialize());
}

Bytes Gateway::handle_get_receipt(const Frame& frame) {
  const auto req = GetReceiptRequest::deserialize(frame.payload);
  if (!req) {
    ErrorResponse err;
    err.code = RejectReason::kMalformedFrame;
    err.message = "undecodable GetReceipt payload";
    return make_frame(MsgType::kError, frame.request_id, err.serialize());
  }
  ReceiptInfoResponse resp;  // found=false default
  {
    std::lock_guard lock(receipts_mu_);
    if (auto it = receipts_.find(req->request_id); it != receipts_.end()) {
      resp = it->second;
    }
  }
  return make_frame(MsgType::kReceiptInfo, frame.request_id, resp.serialize());
}

std::future<Bytes> Gateway::submit(Bytes frame_bytes, std::uint64_t now_ms) {
  return pool_.submit([this, frame = std::move(frame_bytes), now_ms]() {
    return serve(frame, now_ms);
  });
}

std::vector<Bytes> Gateway::serve_batch(const std::vector<Bytes>& frames, std::uint64_t now_ms) {
  // Phase 1 (parallel): pre-verify every signature the sequential serves
  // below would check, warming the global cache — the same fast-verify
  // pipeline MerchantService::evaluate_fastpay_batch uses.
  std::vector<crypto::SigCheckJob> jobs;
  for (const auto& bytes : frames) {
    const auto frame = Frame::deserialize(bytes);
    if (!frame || frame->type != MsgType::kSubmitFastPay) continue;
    const auto req = SubmitFastPayRequest::deserialize(frame->payload);
    if (!req) continue;
    const core::PaymentBinding& b = req->package.binding.binding;
    if (const auto escrow = escrow_for(b.escrow_id)) {
      crypto::SigCheckJob job;
      job.digest = b.signing_digest();
      job.pubkey = escrow->customer_btc_key;
      job.sig = req->package.binding.customer_sig;
      jobs.push_back(job);
    }
    const auto& node = merchant_.btc_node();
    for (std::size_t i = 0; i < req->package.payment_tx.inputs.size(); ++i) {
      const auto& in = req->package.payment_tx.inputs[i];
      if (const auto coin = node.chain().utxo().get(in.prevout)) {
        crypto::SigCheckJob job;
        job.digest = req->package.payment_tx.signature_hash(i, coin->out.script_pubkey);
        job.pubkey = in.script_sig.pubkey;
        job.sig = in.script_sig.signature;
        jobs.push_back(job);
      }
    }
  }
  (void)crypto::batch_verify(pool_, jobs, &crypto::SigCache::global());

  // Phase 2 (sequential): decisions in input order — identical responses
  // to a plain serve() loop for any pool size, just with hot caches.
  std::vector<Bytes> out;
  out.reserve(frames.size());
  for (const auto& bytes : frames) {
    out.push_back(serve(bytes, now_ms));
  }
  return out;
}

std::vector<psc::PscTx> Gateway::flush_accepted() {
  std::vector<Accepted> batch;
  {
    std::lock_guard lock(commit_mu_);
    batch.swap(commit_queue_);
  }
  // The queue drains through the WAL first: the accepted bindings are
  // group-committed before any merchant bookkeeping or BTC broadcast, so
  // a crash mid-flush recovers with every binding it committed to — and
  // none it didn't.
  if (store_ != nullptr && !batch.empty()) {
    for (const auto& a : batch) {
      store::StoreRecord rec;
      rec.kind = store::RecordKind::kAcceptCommit;
      rec.reservation_id = a.reservation_id;
      rec.accepted_at_ms = a.now_ms;
      rec.package = a.package.serialize();
      rec.invoice = a.invoice.serialize();
      (void)store_->append(rec);
    }
    (void)store_->commit();
    sync_store_stats();
  }
  std::vector<psc::PscTx> actions;
  for (auto& a : batch) {
    auto txs = merchant_.accept_payment(a.package, a.invoice, a.now_ms);
    for (auto& tx : txs) actions.push_back(std::move(tx));
    live_reservations_.emplace(a.reservation_id, a.package.binding.binding.btc_txid);
  }
  return actions;
}

void Gateway::reconcile(std::uint64_t now_ms) {
  // Refresh every tracked escrow from authoritative contract state. A
  // reorg that shrank collateral, a judged dispute, a topped-up escrow —
  // all become visible to try_reserve here.
  std::vector<std::pair<EscrowId, EscrowView>> views;
  views.reserve(tracked_.size());
  for (const EscrowId id : tracked_) {
    if (const auto view = merchant_.escrow_view(id)) views.emplace_back(id, *view);
  }
  ledger_.reconcile(views);

  // Release reservations whose payments resolved (settled on BTC or
  // judged on PSC) — the merchant book is the source of truth.
  bool logged = false;
  auto log_release = [&](ReservationId rid, store::ReleaseCause cause) {
    if (store_ == nullptr) return;
    store::StoreRecord rec;
    rec.kind = store::RecordKind::kRelease;
    rec.reservation_id = rid;
    rec.cause = cause;
    (void)store_->append(rec);
    logged = true;
  };
  if (!live_reservations_.empty()) {
    std::unordered_set<std::string> resolved;
    for (const auto& p : merchant_.pending()) {
      if (p.settled || p.judged) {
        resolved.insert(p.package.binding.binding.btc_txid.to_string());
      }
    }
    for (auto it = live_reservations_.begin(); it != live_reservations_.end();) {
      if (resolved.count(it->second.to_string()) > 0) {
        (void)ledger_.release(it->first);
        log_release(it->first, store::ReleaseCause::kResolved);
        it = live_reservations_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Drop reservations past their deadline: the binding can no longer be
  // disputed, so the collateral hold serves nobody.
  std::vector<ReservationId> expired;
  (void)ledger_.expire_due(now_ms, store_ != nullptr ? &expired : nullptr);
  for (const ReservationId rid : expired) log_release(rid, store::ReleaseCause::kExpired);
  if (logged) {
    (void)store_->commit();
    sync_store_stats();
  }
}

std::size_t Gateway::commit_queue_depth() const {
  std::lock_guard lock(commit_mu_);
  return commit_queue_.size();
}

}  // namespace btcfast::gateway
