// The gateway request pipeline: the concurrent front door in front of
// MerchantService. Stages per SubmitFastPay frame:
//
//   admission (shed when > max_inflight in flight, typed RetryAfter)
//     -> decode (total, fuzz-hardened wire decoders)
//     -> evaluate (MerchantService::evaluate_against — const, reentrant,
//        signature checks through the global SigCache)
//     -> reserve (ReservationLedger::try_reserve — the one serialization
//        point; two racing fast-pays cannot overcommit one escrow)
//     -> respond (+ queue the accept for single-threaded commit)
//
// Threading contract: serve() is safe from any number of threads while
// the merchant/simulation is quiescent — the concurrent stages only READ
// node state. Mutation (merchant bookkeeping, BTC broadcast, PSC txs) is
// deferred: accepted packages land in a commit queue that the control
// thread drains with flush_accepted(). reconcile() (also control-thread)
// refreshes escrow views from the contract each PSC block, releases
// reservations for settled/judged payments, and expires stale ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btcfast/merchant.h"
#include "common/thread_pool.h"
#include "gateway/reservation_ledger.h"
#include "gateway/stats.h"
#include "gateway/wire.h"
#include "store/recovery.h"

namespace btcfast::gateway {

struct GatewayConfig {
  /// Admission bound: requests beyond this many concurrently in flight
  /// are shed with kRetryAfter instead of queueing unboundedly.
  std::size_t max_inflight = 256;
  /// Hint returned in RetryAfter responses.
  std::uint64_t retry_after_ms = 50;
  /// Bound on the best-effort receipt cache behind GetReceipt: oldest
  /// receipts are evicted first once the cache is full (request ids are
  /// client-chosen, so an unbounded map would let an untrusted client
  /// exhaust gateway memory). 0 disables receipts entirely.
  std::size_t max_receipts = 4096;
  /// Fetch untracked escrows from the PSC chain on demand. Only safe
  /// when serve() is called single-threaded (the chain view call is not
  /// thread-safe); concurrent deployments pre-register via track_escrow.
  bool lazy_escrow_fetch = false;
  std::size_t ledger_stripes = 16;
};

class Gateway {
 public:
  Gateway(core::MerchantService& merchant, common::ThreadPool& pool, GatewayConfig config);

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Attach a durable store: from here on every granted reservation is
  /// WAL-committed before its accept response leaves serve(), and
  /// flush_accepted() drains the commit queue through the WAL before
  /// running merchant bookkeeping. Pass nullptr to detach. The store
  /// outlives the gateway's use of it (not owned).
  void attach_store(store::DurableStore* store);

  /// Rebuild gateway state from a recovered image (fresh gateway,
  /// control thread): reservations back into the ledger, accepted
  /// bindings back into the merchant book and the settle-release map.
  /// The ledger must be configured with the same `ledger_stripes` the
  /// log was written under. Returns false if any entry fails to decode
  /// or re-install — recovery then must not be trusted.
  [[nodiscard]] bool restore_from(const store::StateImage& image);

  /// Make an invoice resolvable by SubmitFastPay frames.
  void register_invoice(const core::Invoice& invoice);

  /// Snapshot an escrow's contract state into the ledger (control thread).
  void track_escrow(EscrowId id);

  /// Serve one encoded frame, returning the encoded response frame.
  /// Thread-safe; synchronous. `now_ms` is simulation/wall time supplied
  /// by the caller so the gateway stays clockless and deterministic.
  [[nodiscard]] Bytes serve(ByteSpan frame_bytes, std::uint64_t now_ms);

  /// Asynchronous serve on the thread pool.
  [[nodiscard]] std::future<Bytes> submit(Bytes frame_bytes, std::uint64_t now_ms);

  /// Bulk intake: one parallel batch-verify pass warms the signature
  /// cache across every submit frame (reusing the fast-verify engine),
  /// then frames are served in order. Responses are index-aligned and
  /// identical to serving sequentially — for any pool size.
  [[nodiscard]] std::vector<Bytes> serve_batch(const std::vector<Bytes>& frames,
                                               std::uint64_t now_ms);

  /// Drain the commit queue (control thread only): run merchant
  /// bookkeeping + BTC broadcast for every accepted payment, returning
  /// the PSC transactions the caller must submit (reserved mode).
  [[nodiscard]] std::vector<psc::PscTx> flush_accepted();

  /// Control-thread sync point, run on each new PSC block: refresh every
  /// tracked escrow view from the contract, release reservations whose
  /// payments settled or were judged, and expire overdue reservations.
  void reconcile(std::uint64_t now_ms);

  [[nodiscard]] GatewayStats& stats() noexcept { return stats_; }
  [[nodiscard]] const GatewayStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ReservationLedger& ledger() noexcept { return ledger_; }
  [[nodiscard]] std::size_t commit_queue_depth() const;

 private:
  struct Accepted {
    core::FastPayPackage package;
    core::Invoice invoice;
    std::uint64_t now_ms = 0;
    ReservationId reservation_id = 0;
  };

  [[nodiscard]] Bytes handle_submit(const Frame& frame, std::uint64_t now_ms);
  [[nodiscard]] Bytes handle_query_escrow(const Frame& frame, std::uint64_t now_ms);
  [[nodiscard]] Bytes handle_get_receipt(const Frame& frame);
  [[nodiscard]] std::optional<EscrowView> escrow_for(EscrowId id);
  void record_receipt(std::uint64_t request_id, bool accepted, RejectReason code,
                      std::uint64_t now_ms);
  void sync_store_stats();

  core::MerchantService& merchant_;
  common::ThreadPool& pool_;
  GatewayConfig config_;
  ReservationLedger ledger_;
  GatewayStats stats_;
  store::DurableStore* store_ = nullptr;

  std::atomic<std::size_t> inflight_{0};

  mutable std::shared_mutex invoices_mu_;
  std::unordered_map<std::uint64_t, core::Invoice> invoices_;

  mutable std::mutex receipts_mu_;
  std::unordered_map<std::uint64_t, ReceiptInfoResponse> receipts_;
  std::deque<std::uint64_t> receipt_order_;  ///< FIFO eviction order for receipts_

  mutable std::mutex commit_mu_;
  std::vector<Accepted> commit_queue_;

  // Control-thread state (no lock: reconcile/track_escrow/flush are
  // single-threaded by contract).
  std::unordered_set<EscrowId> tracked_;
  std::unordered_map<ReservationId, btc::Txid> live_reservations_;
};

}  // namespace btcfast::gateway
