// The gateway request pipeline: the concurrent front door in front of
// MerchantService, sharded by escrow affinity. Stages per SubmitFastPay
// frame:
//
//   admission (shed when > max_inflight in flight, typed RetryAfter)
//     -> decode (total, fuzz-hardened wire decoders)
//     -> route (escrow affinity byte -> owning shard: its ledger
//        stripes, commit queue, receipt cache and stats are private, so
//        traffic on unrelated escrows never contends)
//     -> verify (opportunistic micro-batch: concurrently in-flight
//        signature jobs coalesce into one crypto::batch_verify that
//        warms the global SigCache — bounded wait, zero added latency
//        when serving single-threaded)
//     -> evaluate (MerchantService::evaluate_against — const, reentrant,
//        signature checks hit the SigCache warmed above)
//     -> reserve (ReservationLedger::try_reserve on the shard's ledger —
//        the per-escrow serialization point; two racing fast-pays cannot
//        overcommit one escrow)
//     -> respond (+ queue the accept on the shard for epoch flush)
//
// Reservation ids draw from one gateway-wide counter and embed the
// escrow's geometry-independent affinity byte, so an N-shard gateway
// returns byte-identical responses to a 1-shard gateway for the same
// frame sequence.
//
// Threading contract: serve() is safe from any number of threads while
// the merchant/simulation is quiescent — the concurrent stages only READ
// node state (lazy escrow fetch, when enabled, is serialized by a
// gateway-wide fetch lock). Mutation (merchant bookkeeping, BTC
// broadcast, PSC txs) is deferred: accepted packages land in per-shard
// commit queues that the control thread drains with flush_accepted() —
// one sealed epoch, one group-commit fsync, then deterministic apply.
// reconcile() (also control-thread) refreshes escrow views from the
// contract each PSC block, releases reservations for settled/judged
// payments, and expires stale ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btcfast/merchant.h"
#include "common/thread_pool.h"
#include "gateway/reservation_ledger.h"
#include "gateway/stats.h"
#include "gateway/verify_batcher.h"
#include "gateway/wire.h"
#include "store/recovery.h"

namespace btcfast::gateway {

struct GatewayConfig {
  /// Admission bound: requests beyond this many concurrently in flight
  /// are shed with kRetryAfter instead of queueing unboundedly.
  std::size_t max_inflight = 256;
  /// Hint returned in RetryAfter responses.
  std::uint64_t retry_after_ms = 50;
  /// Bound on the best-effort receipt cache behind GetReceipt: oldest
  /// receipts are evicted first once the cache is full (request ids are
  /// client-chosen, so an unbounded map would let an untrusted client
  /// exhaust gateway memory). The budget is split evenly across shards
  /// (at least 1 per shard). 0 disables receipts entirely.
  std::size_t max_receipts = 4096;
  /// Fetch untracked escrows from the PSC chain on demand. Safe under
  /// concurrent serve(): the chain view call is serialized by a
  /// gateway-wide fetch lock, so only the first request for an unknown
  /// escrow pays it. Concurrent deployments that want zero locking on
  /// the hot path still pre-register via track_escrow.
  bool lazy_escrow_fetch = false;
  /// Reservation-ledger lock stripes per shard.
  std::size_t ledger_stripes = 16;
  /// Escrow-affinity pipeline shards (clamped to [1, 64]). Each shard
  /// owns its ledger stripes, commit queue, receipt cache and stats;
  /// responses are byte-identical for any value.
  std::size_t shards = 8;
  /// Hot-path verify micro-batching: a leader collects up to this many
  /// concurrently submitted signature jobs before flushing one
  /// batch_verify. 0 disables the prefetch stage entirely (evaluate
  /// verifies inline, as before).
  std::size_t verify_batch_max = 64;
  /// Bounded window the batch leader waits for followers. Only applies
  /// when more than one request is in flight — single-threaded serving
  /// never waits.
  std::uint64_t verify_batch_wait_us = 100;
  /// Bound on the process-wide per-pubkey GLV precomp table cache
  /// (entries are ~18 KiB, so the default 512 keys is ~9 MiB). Applied
  /// to crypto::PubkeyPrecompCache::global() at construction; 0 disables
  /// precomp caching entirely (verifies still run the GLV fast path,
  /// just with per-call tables).
  std::size_t pubkey_precomp_max = crypto::PubkeyPrecompCache::kDefaultMaxEntries;
};

class Gateway {
 public:
  Gateway(core::MerchantService& merchant, common::ThreadPool& pool, GatewayConfig config);

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Attach a durable store: from here on every granted reservation is
  /// WAL-committed before its accept response leaves serve(), and
  /// flush_accepted() drains the commit queues through the WAL before
  /// running merchant bookkeeping. Pass nullptr to detach. The store
  /// outlives the gateway's use of it (not owned).
  void attach_store(store::DurableStore* store);

  /// Attach a replication commit gate (store::CommitGate, implemented by
  /// replication::ReplicationGroup): after the local WAL commit, a
  /// reservation is acked only once the gate confirms a quorum of
  /// followers durably hold it, and flush_accepted() epochs are held
  /// back (re-queued) until their records reach quorum. Pass nullptr to
  /// detach. No-op without an attached store.
  void attach_commit_gate(store::CommitGate* gate) noexcept { gate_ = gate; }

  /// Rebuild gateway state from a recovered image (fresh gateway,
  /// control thread): reservations back into the owning shard's ledger,
  /// accepted bindings back into the merchant book and the
  /// settle-release map. Reservation ids are geometry-independent, so
  /// the shard/stripe counts need not match the writer's. Returns false
  /// if any entry fails to decode or re-install — recovery then must not
  /// be trusted.
  [[nodiscard]] bool restore_from(const store::StateImage& image);

  /// Make an invoice resolvable by SubmitFastPay frames.
  void register_invoice(const core::Invoice& invoice);

  /// Snapshot an escrow's contract state into the ledger (control thread).
  void track_escrow(EscrowId id);

  /// Serve one encoded frame, returning the encoded response frame.
  /// Thread-safe; synchronous. `now_ms` is simulation/wall time supplied
  /// by the caller so the gateway stays clockless and deterministic.
  [[nodiscard]] Bytes serve(ByteSpan frame_bytes, std::uint64_t now_ms);

  /// Asynchronous serve on the thread pool.
  [[nodiscard]] std::future<Bytes> submit(Bytes frame_bytes, std::uint64_t now_ms);

  /// Bulk intake: one parallel batch-verify pass warms the signature
  /// cache across every submit frame (reusing the fast-verify engine),
  /// then frames are served in order. Responses are index-aligned and
  /// identical to serving sequentially — for any pool size.
  [[nodiscard]] std::vector<Bytes> serve_batch(const std::vector<Bytes>& frames,
                                               std::uint64_t now_ms);

  /// Drain every shard's commit queue as one epoch (control thread
  /// only): seal the queues, encode the accept records in parallel on
  /// the pool, group-commit them through the WAL with a single fsync,
  /// then apply merchant bookkeeping + BTC broadcast deterministically
  /// (shard order, then queue order). Returns the PSC transactions the
  /// caller must submit (reserved mode).
  /// With a commit gate attached, the epoch's records must additionally
  /// reach replication quorum before any merchant bookkeeping runs — a
  /// quorum failure re-queues the sealed epoch intact for the next
  /// flush. `now_ms` feeds the gate's retry clock (0 reuses the latest
  /// time the gate has seen).
  [[nodiscard]] std::vector<psc::PscTx> flush_accepted(std::uint64_t now_ms = 0);

  /// Control-thread sync point, run on each new PSC block: refresh every
  /// tracked escrow view from the contract, release reservations whose
  /// payments settled or were judged, and expire overdue reservations.
  void reconcile(std::uint64_t now_ms);

  /// Aggregated counters across the admission front and every shard
  /// (relaxed snapshot; safe during concurrent serve).
  [[nodiscard]] GatewayStats stats() const;
  /// One shard's private counters (i < shard_count()).
  [[nodiscard]] const GatewayStats& shard_stats(std::size_t i) const;
  void reset_stats();

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t shard_index(EscrowId id) const noexcept {
    return ReservationLedger::affinity(id) % shards_.size();
  }

  /// Ledger views, routed to the owning shard.
  [[nodiscard]] std::optional<ReservationLedger::EscrowSnapshot> escrow_snapshot(
      EscrowId id) const;
  [[nodiscard]] std::uint64_t reservations_granted() const noexcept;
  [[nodiscard]] std::uint64_t reservations_denied() const noexcept;
  [[nodiscard]] std::uint64_t reservations_released() const noexcept;
  [[nodiscard]] std::uint64_t reservations_expired() const noexcept;

  [[nodiscard]] std::size_t commit_queue_depth() const;
  [[nodiscard]] const VerifyBatcher& batcher() const noexcept { return batcher_; }

  /// Mirror the TCP front end's counters into the stats JSON (gauge
  /// slots on the front stats, same pattern as the store metrics). The
  /// net server calls this via TcpServer::fold_into.
  void set_net_metrics(std::uint64_t conns_accepted, std::uint64_t conns_active,
                       std::uint64_t bans, std::uint64_t frames_in, std::uint64_t sheds_seen,
                       std::uint64_t disconnects) noexcept {
    front_stats_.set_net_metrics(conns_accepted, conns_active, bans, frames_in, sheds_seen,
                                 disconnects);
  }

  /// Mirror the replication group's gauges into the stats JSON (same
  /// gauge pattern as the net metrics; the deployment driver calls this
  /// after pumping the group).
  void set_replication_metrics(std::uint64_t epoch, std::uint64_t followers,
                               std::uint64_t quorum, std::uint64_t acked_seq,
                               std::uint64_t batches_shipped, std::uint64_t ship_failures,
                               std::uint64_t snapshot_installs) noexcept {
    front_stats_.set_replication_metrics(epoch, followers, quorum, acked_seq, batches_shipped,
                                         ship_failures, snapshot_installs);
  }

 private:
  struct Accepted {
    core::FastPayPackage package;
    core::Invoice invoice;
    std::uint64_t now_ms = 0;
    ReservationId reservation_id = 0;
  };

  /// Everything one escrow-affinity shard owns. Requests for different
  /// shards share nothing on the hot path except the global SigCache,
  /// the in-flight counter and the reservation-id counter (all atomic).
  struct Shard {
    Shard(std::size_t stripes, std::atomic<ReservationId>& ids) : ledger(stripes, &ids) {}

    ReservationLedger ledger;
    GatewayStats stats;

    std::mutex commit_mu;
    std::vector<Accepted> commit_queue;

    mutable std::mutex receipts_mu;
    std::unordered_map<std::uint64_t, ReceiptInfoResponse> receipts;
    std::deque<std::uint64_t> receipt_order;  ///< FIFO eviction order

    // Control-thread state (flush/reconcile are single-threaded by
    // contract, so no lock).
    std::unordered_map<ReservationId, btc::Txid> live_reservations;
  };

  [[nodiscard]] Shard& shard_for(EscrowId id) noexcept { return *shards_[shard_index(id)]; }
  [[nodiscard]] const Shard& shard_for(EscrowId id) const noexcept {
    return *shards_[shard_index(id)];
  }
  /// Receipts route by request id (GetReceipt carries nothing else).
  [[nodiscard]] Shard& receipt_shard(std::uint64_t request_id) noexcept {
    return *shards_[static_cast<std::size_t>((request_id * 0x9e3779b97f4a7c15ull) >> 56) %
                    shards_.size()];
  }

  [[nodiscard]] Bytes handle_submit(const Frame& frame, std::uint64_t now_ms);
  [[nodiscard]] Bytes handle_query_escrow(const Frame& frame, std::uint64_t now_ms);
  [[nodiscard]] Bytes handle_get_receipt(const Frame& frame);
  [[nodiscard]] std::optional<EscrowView> escrow_for(EscrowId id);
  void record_receipt(std::uint64_t request_id, bool accepted, RejectReason code,
                      std::uint64_t now_ms);
  void sync_store_stats();

  core::MerchantService& merchant_;
  common::ThreadPool& pool_;
  GatewayConfig config_;
  store::DurableStore* store_ = nullptr;
  store::CommitGate* gate_ = nullptr;

  /// One id space shared by every shard's ledger: grants are globally
  /// unique and independent of shard count.
  std::atomic<ReservationId> reservation_ids_{1};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t receipt_cap_ = 0;  ///< per-shard receipt budget

  /// Admission-front counters: sheds, top-level malformed frames, and
  /// the live queue depth (work that hasn't been routed to a shard yet).
  GatewayStats front_stats_;
  VerifyBatcher batcher_;

  std::atomic<std::size_t> inflight_{0};
  /// Accepts queued across all shards but not yet applied; bounds the
  /// merchant book (active + queued <= max_pending_payments) without a
  /// cross-shard lock.
  std::atomic<std::size_t> queued_accepts_{0};

  mutable std::shared_mutex invoices_mu_;
  std::unordered_map<std::uint64_t, core::Invoice> invoices_;

  /// Serializes lazy escrow fetches: PscChain::view_call is not safe
  /// against concurrent callers, so the first request for an unknown
  /// escrow takes this lock, re-checks the ledger, then fetches.
  std::mutex lazy_fetch_mu_;

  /// Escrows to refresh on reconcile. Guarded because lazy fetch inserts
  /// from serve threads; control-thread paths take the same lock.
  mutable std::mutex tracked_mu_;
  std::unordered_set<EscrowId> tracked_;
};

}  // namespace btcfast::gateway
