#include "gateway/reservation_ledger.h"

#include <algorithm>

namespace btcfast::gateway {

ReservationLedger::ReservationLedger(std::size_t stripes, std::atomic<ReservationId>* shared_ids)
    : stripes_(std::clamp<std::size_t>(stripes, 1, 256)),
      next_id_(shared_ids != nullptr ? shared_ids : &own_next_id_) {}

void ReservationLedger::upsert_escrow(EscrowId id, const EscrowView& view) {
  Stripe& s = stripe_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  s.escrows[id].view = view;  // local_reserved / reservations survive
}

void ReservationLedger::erase_escrow(EscrowId id) {
  Stripe& s = stripe_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.escrows.find(id);
  if (it == s.escrows.end()) return;
  for (const auto& [rid, res] : it->second.reservations) s.by_id.erase(rid);
  s.escrows.erase(it);
}

std::optional<ReservationId> ReservationLedger::try_reserve(EscrowId id, psc::Value amount,
                                                            std::uint64_t expires_at_ms,
                                                            psc::Value exposure_cap,
                                                            core::RejectReason* deny_reason) {
  Stripe& s = stripe_for(id);
  auto deny = [&](core::RejectReason why) -> std::optional<ReservationId> {
    if (deny_reason) *deny_reason = why;
    denied_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.escrows.find(id);
  if (it == s.escrows.end()) return deny(core::RejectReason::kEscrowLookupFailed);
  Entry& e = it->second;
  if (e.view.state != core::EscrowState::kActive) {
    return deny(core::RejectReason::kEscrowNotActive);
  }
  if (e.view.unlock_time_ms < expires_at_ms) {
    return deny(core::RejectReason::kEscrowUnlocksTooSoon);
  }
  // Coverage against the authoritative snapshot: everything already
  // pledged (on-chain reservations plus our own live grants) plus this
  // request must fit in the collateral. `amount` is attacker-chosen, so
  // the comparisons subtract from the collateral instead of summing —
  // a near-2^64 request must not wrap the total past the check.
  if (amount > e.view.collateral ||
      e.view.reserved > e.view.collateral - amount ||
      e.local_reserved > e.view.collateral - amount - e.view.reserved) {
    return deny(core::RejectReason::kInsufficientCollateral);
  }
  if (exposure_cap > 0 &&
      (amount > exposure_cap || e.local_reserved > exposure_cap - amount)) {
    return deny(core::RejectReason::kExposureCap);
  }
  const ReservationId rid =
      (next_id_->fetch_add(1, std::memory_order_relaxed) << 8) | affinity(id);
  e.local_reserved += amount;
  e.reservations.emplace(rid, Reservation{id, amount, expires_at_ms});
  s.by_id.emplace(rid, id);
  granted_.fetch_add(1, std::memory_order_relaxed);
  return rid;
}

bool ReservationLedger::release(ReservationId id) {
  // The low byte is the escrow's affinity byte, so affinity % stripes
  // lands on the same stripe stripe_for(escrow_id) would.
  Stripe& s = stripes_[(id & 0xff) % stripes_.size()];
  std::lock_guard<std::mutex> lock(s.mu);
  auto by = s.by_id.find(id);
  if (by == s.by_id.end()) return false;
  auto esc = s.escrows.find(by->second);
  s.by_id.erase(by);
  if (esc == s.escrows.end()) return false;
  auto res = esc->second.reservations.find(id);
  if (res == esc->second.reservations.end()) return false;
  esc->second.local_reserved -= res->second.amount;
  esc->second.reservations.erase(res);
  released_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t ReservationLedger::expire_due(std::uint64_t now_ms,
                                          std::vector<ReservationId>* expired) {
  std::size_t dropped = 0;
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto& [eid, entry] : s.escrows) {
      for (auto it = entry.reservations.begin(); it != entry.reservations.end();) {
        if (it->second.expires_at_ms <= now_ms) {
          entry.local_reserved -= it->second.amount;
          s.by_id.erase(it->first);
          if (expired != nullptr) expired->push_back(it->first);
          it = entry.reservations.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
    }
  }
  expired_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

bool ReservationLedger::restore_reservation(ReservationId id, EscrowId escrow_id,
                                            psc::Value amount, std::uint64_t expires_at_ms) {
  Stripe& s = stripe_for(escrow_id);
  // Ids embed their escrow's affinity byte (see try_reserve); release()
  // routes by it, so an id that disagrees with its claimed escrow is a
  // corrupt or foreign record. The check is geometry-independent: a log
  // written under any stripe/shard count restores anywhere.
  if ((id & 0xff) != affinity(escrow_id)) return false;
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.by_id.contains(id)) return false;
  Entry& e = s.escrows[escrow_id];  // default view until reconcile refreshes it
  e.local_reserved += amount;
  e.reservations.emplace(id, Reservation{escrow_id, amount, expires_at_ms});
  s.by_id.emplace(id, escrow_id);
  // Keep fresh grants collision-free with every restored id.
  const ReservationId counter = (id >> 8) + 1;
  ReservationId cur = next_id_->load(std::memory_order_relaxed);
  while (counter > cur &&
         !next_id_->compare_exchange_weak(cur, counter, std::memory_order_relaxed)) {
  }
  return true;
}

void ReservationLedger::reconcile(const std::vector<std::pair<EscrowId, EscrowView>>& views) {
  for (const auto& [id, view] : views) upsert_escrow(id, view);
}

std::optional<ReservationLedger::EscrowSnapshot> ReservationLedger::snapshot(EscrowId id) const {
  const Stripe& s = stripe_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.escrows.find(id);
  if (it == s.escrows.end()) return std::nullopt;
  EscrowSnapshot out;
  out.view = it->second.view;
  out.local_reserved = it->second.local_reserved;
  out.live_reservations = it->second.reservations.size();
  return out;
}

std::optional<ReservationLedger::Reservation> ReservationLedger::find(ReservationId id) const {
  const Stripe& s = stripes_[(id & 0xff) % stripes_.size()];
  std::lock_guard<std::mutex> lock(s.mu);
  auto by = s.by_id.find(id);
  if (by == s.by_id.end()) return std::nullopt;
  auto esc = s.escrows.find(by->second);
  if (esc == s.escrows.end()) return std::nullopt;
  auto res = esc->second.reservations.find(id);
  if (res == esc->second.reservations.end()) return std::nullopt;
  return res->second;
}

}  // namespace btcfast::gateway
