// Sharded in-memory reservation ledger: the gateway's defence against
// concurrent overcommit. Two fast-pays racing against the same escrow
// both pass the merchant's read-only evaluation (each sees the full
// collateral); the ledger is the single serialization point that makes
// exactly one of them win when only one fits.
//
// Escrows are partitioned across lock stripes by id hash, so unrelated
// escrows never contend. Within a stripe, try_reserve checks
//   on-chain reserved + local reservations + amount <= collateral
// (and an optional merchant-side exposure cap) and records the
// reservation atomically under the stripe lock. The invariant the TSan
// hammer proves: at no instant does the sum of granted local
// reservations plus the on-chain reserved figure exceed collateral.
//
// The ledger works on cached EscrowView snapshots; reconcile() refreshes
// them from PayJudger state each PSC block (and is how a reorg that
// shrinks collateral is noticed: subsequent try_reserves see the smaller
// figure immediately).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "btcfast/payjudger.h"
#include "btcfast/protocol.h"

namespace btcfast::gateway {

using core::EscrowId;
using core::EscrowView;

using ReservationId = std::uint64_t;

class ReservationLedger {
 public:
  /// A granted reservation, released on settle/expiry/reject.
  struct Reservation {
    EscrowId escrow_id = 0;
    psc::Value amount = 0;
    std::uint64_t expires_at_ms = 0;
  };

  /// Point-in-time view of one escrow's ledger entry.
  struct EscrowSnapshot {
    EscrowView view;
    psc::Value local_reserved = 0;   ///< sum of live gateway reservations
    std::size_t live_reservations = 0;
  };

  /// `shared_ids`, when non-null, is the reservation-id counter to draw
  /// from instead of a private one. The sharded gateway points every
  /// shard's ledger at one process-wide counter so the ids it hands out
  /// are independent of shard count — a 4-shard gateway serving a frame
  /// sequence produces byte-identical responses to a 1-shard gateway.
  explicit ReservationLedger(std::size_t stripes = 16,
                             std::atomic<ReservationId>* shared_ids = nullptr);

  ReservationLedger(const ReservationLedger&) = delete;
  ReservationLedger& operator=(const ReservationLedger&) = delete;

  /// Install or refresh the cached escrow view. Local reservations are
  /// preserved — a view refresh must not forget exposure the gateway has
  /// already promised against.
  void upsert_escrow(EscrowId id, const EscrowView& view);

  /// Forget an escrow entirely (e.g. judged to empty). Drops its local
  /// reservations too.
  void erase_escrow(EscrowId id);

  /// Atomically reserve `amount` against the escrow if, and only if,
  ///   view.reserved + local_reserved + amount <= view.collateral
  /// and, when `exposure_cap > 0`,
  ///   local_reserved + amount <= exposure_cap
  /// and the escrow is known, ACTIVE, and unlocks after `expires_at_ms`.
  /// Returns the reservation id, or nullopt without side effects; when
  /// denied and `deny_reason` is non-null it carries the typed cause.
  [[nodiscard]] std::optional<ReservationId> try_reserve(EscrowId id, psc::Value amount,
                                                         std::uint64_t expires_at_ms,
                                                         psc::Value exposure_cap = 0,
                                                         core::RejectReason* deny_reason = nullptr);

  /// Release a reservation (payment settled on-chain, or rejected after
  /// reserve). Returns false if the id is unknown — double releases are
  /// loud, not silent no-ops.
  bool release(ReservationId id);

  /// Drop every reservation whose expires_at_ms <= now. Returns how many
  /// were dropped; when `expired` is non-null the dropped ids are
  /// appended (the durable store logs each as a release). An expired
  /// reservation means the binding itself can no longer be disputed, so
  /// holding collateral for it is pointless.
  std::size_t expire_due(std::uint64_t now_ms, std::vector<ReservationId>* expired = nullptr);

  /// Re-install a reservation recovered from the durable store, creating
  /// the escrow entry if the view hasn't been re-tracked yet (the caller
  /// refreshes views via reconcile right after). Fails if the id's
  /// embedded affinity byte doesn't match the escrow id's (a corrupt or
  /// foreign record), or if the id is already present. Because the
  /// affinity byte is geometry-independent, a log written under any
  /// stripe or shard count restores into any ledger.
  bool restore_reservation(ReservationId id, EscrowId escrow_id, psc::Value amount,
                           std::uint64_t expires_at_ms);

  /// Refresh a batch of escrow views from authoritative contract state
  /// (caller fetches them via MerchantService::escrow_view). Equivalent
  /// to upsert_escrow per entry; named for the PSC-block reconcile loop.
  void reconcile(const std::vector<std::pair<EscrowId, EscrowView>>& views);

  [[nodiscard]] std::optional<EscrowSnapshot> snapshot(EscrowId id) const;
  [[nodiscard]] std::optional<Reservation> find(ReservationId id) const;

  /// Monotonic counters (relaxed; for stats only).
  [[nodiscard]] std::uint64_t total_granted() const noexcept {
    return granted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_denied() const noexcept {
    return denied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_released() const noexcept {
    return released_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_expired() const noexcept {
    return expired_.load(std::memory_order_relaxed);
  }

  /// The escrow's affinity byte: a geometry-independent hash used as the
  /// low byte of every reservation id granted against it, and by the
  /// gateway to route the escrow to a shard. Deriving stripe (affinity %
  /// stripes) and shard (affinity % shards) from the same byte means a
  /// reservation id alone is enough to find its stripe in any geometry.
  [[nodiscard]] static constexpr std::uint8_t affinity(EscrowId id) noexcept {
    return static_cast<std::uint8_t>((id * 0x9e3779b97f4a7c15ull) >> 56);
  }

 private:
  struct Entry {
    EscrowView view;
    psc::Value local_reserved = 0;
    std::unordered_map<ReservationId, Reservation> reservations;
  };

  // Cache-line sized so stripe locks never false-share.
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<EscrowId, Entry> escrows;
    // Reservation ids carry their escrow's affinity byte in the low
    // byte, so release() goes straight to the owning stripe; this map
    // completes the hop from id to escrow entry.
    std::unordered_map<ReservationId, EscrowId> by_id;
  };

  [[nodiscard]] Stripe& stripe_for(EscrowId id) noexcept {
    return stripes_[affinity(id) % stripes_.size()];
  }
  [[nodiscard]] const Stripe& stripe_for(EscrowId id) const noexcept {
    return stripes_[affinity(id) % stripes_.size()];
  }

  std::vector<Stripe> stripes_;
  std::atomic<ReservationId> own_next_id_{1};
  std::atomic<ReservationId>* next_id_;  ///< &own_next_id_ or a shared counter
  std::atomic<std::uint64_t> granted_{0};
  std::atomic<std::uint64_t> denied_{0};
  std::atomic<std::uint64_t> released_{0};
  std::atomic<std::uint64_t> expired_{0};
};

}  // namespace btcfast::gateway
