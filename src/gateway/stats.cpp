#include "gateway/stats.h"

#include <bit>
#include <cstdio>
#include <sstream>

namespace btcfast::gateway {

void LatencyHistogram::record_us(std::uint64_t us) noexcept {
  std::size_t idx = us == 0 ? 0 : static_cast<std::size_t>(std::bit_width(us) - 1);
  if (idx >= kBuckets) idx = kBuckets - 1;
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
}

void LatencyHistogram::accumulate(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const auto c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_us_.fetch_add(other.sum_us_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

double LatencyHistogram::percentile_us(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target sample (1-based), then walk buckets.
  const double rank = p / 100.0 * static_cast<double>(n);
  double seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const auto c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + static_cast<double>(c) >= rank) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(1ull << i);
      const double hi = static_cast<double>(1ull << (i + 1));
      const double frac = (rank - seen) / static_cast<double>(c);
      return lo + (hi - lo) * (frac < 0 ? 0 : frac);
    }
    seen += static_cast<double>(c);
  }
  return static_cast<double>(1ull << kBuckets);
}

double LatencyHistogram::mean_us() const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / static_cast<double>(n);
}

void LatencyHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kDecode: return "decode";
    case Stage::kVerify: return "verify";
    case Stage::kEvaluate: return "evaluate";
    case Stage::kReserve: return "reserve";
    case Stage::kWal: return "wal";
    case Stage::kCommit: return "commit";
    case Stage::kRespond: return "respond";
  }
  return "unknown";
}

void GatewayStats::accumulate(const GatewayStats& other) noexcept {
  accepts_.fetch_add(other.accepts(), std::memory_order_relaxed);
  rejects_.fetch_add(other.rejects(), std::memory_order_relaxed);
  sheds_.fetch_add(other.sheds(), std::memory_order_relaxed);
  queue_depth_.fetch_add(other.queue_depth(), std::memory_order_relaxed);
  // Peak depth is a high-water mark: summing shard peaks would report a
  // depth the queue never reached, so take the max.
  const auto other_peak = other.peak_queue_depth();
  auto peak = peak_queue_depth_.load(std::memory_order_relaxed);
  while (other_peak > peak &&
         !peak_queue_depth_.compare_exchange_weak(peak, other_peak, std::memory_order_relaxed)) {
  }
  for (std::size_t i = 0; i < by_reason_.size(); ++i) {
    const auto c = other.by_reason_[i].load(std::memory_order_relaxed);
    if (c != 0) by_reason_[i].fetch_add(c, std::memory_order_relaxed);
  }
  auto take_max = [](std::atomic<std::uint64_t>& dst, std::uint64_t v) {
    auto cur = dst.load(std::memory_order_relaxed);
    while (v > cur && !dst.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  };
  take_max(store_wal_appends_, other.store_wal_appends());
  take_max(store_wal_fsyncs_, other.store_wal_fsyncs());
  take_max(store_recovery_replayed_, other.store_recovery_replayed());
  take_max(store_snapshot_bytes_, other.store_snapshot_bytes());
  take_max(sigcache_hits_, other.sigcache_hits());
  take_max(sigcache_misses_, other.sigcache_misses());
  take_max(sigcache_insertions_, other.sigcache_insertions());
  take_max(sigcache_evictions_, other.sigcache_evictions());
  take_max(precomp_hits_, other.precomp_hits());
  take_max(precomp_misses_, other.precomp_misses());
  take_max(precomp_insertions_, other.precomp_insertions());
  take_max(precomp_evictions_, other.precomp_evictions());
  take_max(net_conns_accepted_, other.net_conns_accepted());
  take_max(net_conns_active_, other.net_conns_active());
  take_max(net_bans_, other.net_bans());
  take_max(net_frames_in_, other.net_frames_in());
  take_max(net_sheds_seen_, other.net_sheds_seen());
  take_max(net_disconnects_, other.net_disconnects());
  take_max(repl_epoch_, other.repl_epoch());
  take_max(repl_followers_, other.repl_followers());
  take_max(repl_quorum_, other.repl_quorum());
  take_max(repl_acked_seq_, other.repl_acked_seq());
  take_max(repl_batches_shipped_, other.repl_batches_shipped());
  take_max(repl_ship_failures_, other.repl_ship_failures());
  take_max(repl_snapshot_installs_, other.repl_snapshot_installs());
  latency_.accumulate(other.latency_);
  for (std::size_t i = 0; i < kStageCount; ++i) stages_[i].accumulate(other.stages_[i]);
}

void GatewayStats::on_accept(std::uint64_t latency_us) noexcept {
  accepts_.fetch_add(1, std::memory_order_relaxed);
  latency_.record_us(latency_us);
}

void GatewayStats::on_reject(core::RejectReason code, std::uint64_t latency_us) noexcept {
  rejects_.fetch_add(1, std::memory_order_relaxed);
  by_reason_[static_cast<std::size_t>(code) % by_reason_.size()].fetch_add(
      1, std::memory_order_relaxed);
  latency_.record_us(latency_us);
}

void GatewayStats::on_shed() noexcept {
  sheds_.fetch_add(1, std::memory_order_relaxed);
  by_reason_[static_cast<std::size_t>(core::RejectReason::kOverloaded)].fetch_add(
      1, std::memory_order_relaxed);
  note_depth();
}

void GatewayStats::note_depth() noexcept {
  const auto depth = queue_depth_.load(std::memory_order_relaxed);
  auto peak = peak_queue_depth_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !peak_queue_depth_.compare_exchange_weak(peak, depth, std::memory_order_relaxed)) {
  }
}

std::uint64_t GatewayStats::rejects_for(core::RejectReason code) const noexcept {
  return by_reason_[static_cast<std::size_t>(code) % by_reason_.size()].load(
      std::memory_order_relaxed);
}

std::string GatewayStats::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"accepts\": " << accepts() << ",\n";
  os << "  \"rejects\": " << rejects() << ",\n";
  os << "  \"sheds\": " << sheds() << ",\n";
  os << "  \"queue_depth\": " << queue_depth() << ",\n";
  os << "  \"peak_queue_depth\": " << peak_queue_depth() << ",\n";
  os << "  \"rejects_by_reason\": {";
  bool first = true;
  for (std::size_t i = 1; i < by_reason_.size(); ++i) {
    const auto c = by_reason_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << core::describe(static_cast<core::RejectReason>(i)) << "\": " << c;
  }
  os << (first ? "" : "\n  ") << "},\n";
  os << "  \"store\": {\n";
  os << "    \"wal_appends\": " << store_wal_appends() << ",\n";
  os << "    \"fsyncs\": " << store_wal_fsyncs() << ",\n";
  os << "    \"recovery_replayed_records\": " << store_recovery_replayed() << ",\n";
  os << "    \"snapshot_bytes\": " << store_snapshot_bytes() << "\n";
  os << "  },\n";
  os << "  \"caches\": {\n";
  os << "    \"sigcache\": {\"hits\": " << sigcache_hits() << ", \"misses\": " << sigcache_misses()
     << ", \"insertions\": " << sigcache_insertions() << ", \"evictions\": " << sigcache_evictions()
     << "},\n";
  os << "    \"pubkey_precomp\": {\"hits\": " << precomp_hits()
     << ", \"misses\": " << precomp_misses() << ", \"insertions\": " << precomp_insertions()
     << ", \"evictions\": " << precomp_evictions() << "}\n";
  os << "  },\n";
  os << "  \"net\": {\n";
  os << "    \"conns_accepted\": " << net_conns_accepted() << ",\n";
  os << "    \"conns_active\": " << net_conns_active() << ",\n";
  os << "    \"bans\": " << net_bans() << ",\n";
  os << "    \"frames_in\": " << net_frames_in() << ",\n";
  os << "    \"sheds_seen\": " << net_sheds_seen() << ",\n";
  os << "    \"disconnects\": " << net_disconnects() << "\n";
  os << "  },\n";
  os << "  \"replication\": {\n";
  os << "    \"epoch\": " << repl_epoch() << ",\n";
  os << "    \"followers\": " << repl_followers() << ",\n";
  os << "    \"quorum\": " << repl_quorum() << ",\n";
  os << "    \"acked_seq\": " << repl_acked_seq() << ",\n";
  os << "    \"batches_shipped\": " << repl_batches_shipped() << ",\n";
  os << "    \"ship_failures\": " << repl_ship_failures() << ",\n";
  os << "    \"snapshot_installs\": " << repl_snapshot_installs() << "\n";
  os << "  },\n";
  os << "  \"latency_us\": {\n";
  os << "    \"count\": " << latency_.count() << ",\n";
  os << "    \"mean\": " << latency_.mean_us() << ",\n";
  os << "    \"p50\": " << latency_.percentile_us(50) << ",\n";
  os << "    \"p90\": " << latency_.percentile_us(90) << ",\n";
  os << "    \"p99\": " << latency_.percentile_us(99) << "\n";
  os << "  },\n";
  os << "  \"stages_us\": {";
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto& h = stages_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    \"" << stage_name(static_cast<Stage>(i)) << "\": {"
       << "\"count\": " << h.count() << ", \"mean\": " << h.mean_us()
       << ", \"p50\": " << h.percentile_us(50) << ", \"p99\": " << h.percentile_us(99) << "}";
  }
  os << "\n  }\n";
  os << "}\n";
  return os.str();
}

bool GatewayStats::write_json(const std::string& path) const {
  const std::string body = to_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void GatewayStats::reset() noexcept {
  accepts_.store(0, std::memory_order_relaxed);
  rejects_.store(0, std::memory_order_relaxed);
  sheds_.store(0, std::memory_order_relaxed);
  queue_depth_.store(0, std::memory_order_relaxed);
  peak_queue_depth_.store(0, std::memory_order_relaxed);
  for (auto& r : by_reason_) r.store(0, std::memory_order_relaxed);
  store_wal_appends_.store(0, std::memory_order_relaxed);
  store_wal_fsyncs_.store(0, std::memory_order_relaxed);
  store_recovery_replayed_.store(0, std::memory_order_relaxed);
  store_snapshot_bytes_.store(0, std::memory_order_relaxed);
  set_cache_metrics(0, 0, 0, 0, 0, 0, 0, 0);
  set_net_metrics(0, 0, 0, 0, 0, 0);
  set_replication_metrics(0, 0, 0, 0, 0, 0, 0);
  latency_.reset();
  for (auto& s : stages_) s.reset();
}

}  // namespace btcfast::gateway
