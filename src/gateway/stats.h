// Gateway observability: lock-free counters (accepts, rejects keyed by
// RejectReason, sheds, queue depth) and a fixed-bucket latency histogram
// with percentile estimation, dumped as a JSON object. Everything here is
// safe to update from any worker thread; reads are racy-but-coherent
// (relaxed atomics), which is fine for monitoring.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "btcfast/protocol.h"

namespace btcfast::gateway {

/// Power-of-two bucketed histogram over microsecond latencies. Bucket i
/// covers [2^i, 2^(i+1)) us (bucket 0 also catches sub-microsecond);
/// percentile() interpolates linearly inside the winning bucket, which is
/// plenty of resolution for p50/p99 reporting across ns..minutes.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram& other) noexcept { accumulate(other); }
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record_us(std::uint64_t us) noexcept;

  /// Fold another histogram's counts into this one (relaxed reads, so a
  /// concurrent recorder yields a racy-but-coherent snapshot — the same
  /// guarantee every other read here gives).
  void accumulate(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// p in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double percentile_us(double p) const noexcept;
  [[nodiscard]] double mean_us() const noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// Pipeline stages instrumented with per-stage latency histograms, so a
/// p99 blow-up is attributable to decode vs verify vs WAL without a
/// profiler. kVerify covers the opportunistic micro-batch prefetch,
/// kEvaluate the merchant decision core, kCommit the queue handoff,
/// kRespond receipt recording + frame encoding.
enum class Stage : std::size_t {
  kDecode = 0,
  kVerify,
  kEvaluate,
  kReserve,
  kWal,
  kCommit,
  kRespond,
};
inline constexpr std::size_t kStageCount = 7;

[[nodiscard]] const char* stage_name(Stage stage) noexcept;

/// All gateway counters in one place.
class GatewayStats {
 public:
  GatewayStats() = default;
  /// Copying takes a relaxed snapshot — this is how Gateway::stats()
  /// returns an aggregated view over per-shard instances.
  GatewayStats(const GatewayStats& other) noexcept { accumulate(other); }
  GatewayStats& operator=(const GatewayStats&) = delete;

  void on_accept(std::uint64_t latency_us) noexcept;
  void on_reject(core::RejectReason code, std::uint64_t latency_us) noexcept;
  void on_shed() noexcept;  ///< overload rejection before any work

  void queue_enter() noexcept {
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
    note_depth();
  }
  void queue_exit() noexcept { queue_depth_.fetch_sub(1, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t accepts() const noexcept {
    return accepts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejects() const noexcept {
    return rejects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sheds() const noexcept {
    return sheds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejects_for(core::RejectReason code) const noexcept;
  [[nodiscard]] std::uint64_t queue_depth() const noexcept {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak_queue_depth() const noexcept {
    return peak_queue_depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const LatencyHistogram& latency() const noexcept { return latency_; }

  void on_stage(Stage stage, std::uint64_t latency_us) noexcept {
    stages_[static_cast<std::size_t>(stage) % kStageCount].record_us(latency_us);
  }
  [[nodiscard]] const LatencyHistogram& stage(Stage stage) const noexcept {
    return stages_[static_cast<std::size_t>(stage) % kStageCount];
  }

  /// Fold `other`'s counters into this instance (per-shard -> aggregate).
  /// Store metrics are process-wide gauges, not per-shard counters, so
  /// accumulate takes max instead of sum for them.
  void accumulate(const GatewayStats& other) noexcept;

  /// Mirror the durable store's counters into the stats dump (the
  /// gateway refreshes these after each commit point). All zeros when no
  /// store is attached.
  void set_store_metrics(std::uint64_t wal_appends, std::uint64_t wal_fsyncs,
                         std::uint64_t recovery_replayed, std::uint64_t snapshot_bytes) noexcept {
    store_wal_appends_.store(wal_appends, std::memory_order_relaxed);
    store_wal_fsyncs_.store(wal_fsyncs, std::memory_order_relaxed);
    store_recovery_replayed_.store(recovery_replayed, std::memory_order_relaxed);
    store_snapshot_bytes_.store(snapshot_bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t store_wal_appends() const noexcept {
    return store_wal_appends_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t store_wal_fsyncs() const noexcept {
    return store_wal_fsyncs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t store_recovery_replayed() const noexcept {
    return store_recovery_replayed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t store_snapshot_bytes() const noexcept {
    return store_snapshot_bytes_.load(std::memory_order_relaxed);
  }

  /// Mirror the process-wide crypto cache counters (SigCache and the
  /// per-pubkey GLV precomp cache) into the stats dump. Like the store
  /// metrics these are gauges filled at snapshot time, so accumulate()
  /// takes max instead of summing them across shards.
  void set_cache_metrics(std::uint64_t sig_hits, std::uint64_t sig_misses,
                         std::uint64_t sig_insertions, std::uint64_t sig_evictions,
                         std::uint64_t pre_hits, std::uint64_t pre_misses,
                         std::uint64_t pre_insertions, std::uint64_t pre_evictions) noexcept {
    sigcache_hits_.store(sig_hits, std::memory_order_relaxed);
    sigcache_misses_.store(sig_misses, std::memory_order_relaxed);
    sigcache_insertions_.store(sig_insertions, std::memory_order_relaxed);
    sigcache_evictions_.store(sig_evictions, std::memory_order_relaxed);
    precomp_hits_.store(pre_hits, std::memory_order_relaxed);
    precomp_misses_.store(pre_misses, std::memory_order_relaxed);
    precomp_insertions_.store(pre_insertions, std::memory_order_relaxed);
    precomp_evictions_.store(pre_evictions, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sigcache_hits() const noexcept {
    return sigcache_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sigcache_misses() const noexcept {
    return sigcache_misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sigcache_insertions() const noexcept {
    return sigcache_insertions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sigcache_evictions() const noexcept {
    return sigcache_evictions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t precomp_hits() const noexcept {
    return precomp_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t precomp_misses() const noexcept {
    return precomp_misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t precomp_insertions() const noexcept {
    return precomp_insertions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t precomp_evictions() const noexcept {
    return precomp_evictions_.load(std::memory_order_relaxed);
  }

  /// Mirror the TCP front end's counters (src/net TcpServer) into the
  /// stats dump. Gauges filled at snapshot time, like the store metrics,
  /// so accumulate() takes max instead of summing across shards.
  void set_net_metrics(std::uint64_t conns_accepted, std::uint64_t conns_active,
                       std::uint64_t bans, std::uint64_t frames_in, std::uint64_t sheds_seen,
                       std::uint64_t disconnects) noexcept {
    net_conns_accepted_.store(conns_accepted, std::memory_order_relaxed);
    net_conns_active_.store(conns_active, std::memory_order_relaxed);
    net_bans_.store(bans, std::memory_order_relaxed);
    net_frames_in_.store(frames_in, std::memory_order_relaxed);
    net_sheds_seen_.store(sheds_seen, std::memory_order_relaxed);
    net_disconnects_.store(disconnects, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t net_conns_accepted() const noexcept {
    return net_conns_accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t net_conns_active() const noexcept {
    return net_conns_active_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t net_bans() const noexcept {
    return net_bans_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t net_frames_in() const noexcept {
    return net_frames_in_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t net_sheds_seen() const noexcept {
    return net_sheds_seen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t net_disconnects() const noexcept {
    return net_disconnects_.load(std::memory_order_relaxed);
  }

  /// Mirror the replication group's gauges (primary epoch, follower
  /// count, quorum config, quorum-acked watermark, ship counters) into
  /// the stats dump. Gauge slots, like the net metrics.
  void set_replication_metrics(std::uint64_t epoch, std::uint64_t followers,
                               std::uint64_t quorum, std::uint64_t acked_seq,
                               std::uint64_t batches_shipped, std::uint64_t ship_failures,
                               std::uint64_t snapshot_installs) noexcept {
    repl_epoch_.store(epoch, std::memory_order_relaxed);
    repl_followers_.store(followers, std::memory_order_relaxed);
    repl_quorum_.store(quorum, std::memory_order_relaxed);
    repl_acked_seq_.store(acked_seq, std::memory_order_relaxed);
    repl_batches_shipped_.store(batches_shipped, std::memory_order_relaxed);
    repl_ship_failures_.store(ship_failures, std::memory_order_relaxed);
    repl_snapshot_installs_.store(snapshot_installs, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t repl_epoch() const noexcept {
    return repl_epoch_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t repl_followers() const noexcept {
    return repl_followers_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t repl_quorum() const noexcept {
    return repl_quorum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t repl_acked_seq() const noexcept {
    return repl_acked_seq_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t repl_batches_shipped() const noexcept {
    return repl_batches_shipped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t repl_ship_failures() const noexcept {
    return repl_ship_failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t repl_snapshot_installs() const noexcept {
    return repl_snapshot_installs_.load(std::memory_order_relaxed);
  }

  /// One JSON object: totals, per-reason reject counts (only nonzero
  /// reasons, keyed by describe()), queue depths, latency percentiles.
  [[nodiscard]] std::string to_json() const;

  /// Atomically write to_json() to `path` (temp file + rename), so a
  /// monitoring reader never sees a torn file. Returns false on IO error.
  bool write_json(const std::string& path) const;

  void reset() noexcept;

 private:
  void note_depth() noexcept;

  std::atomic<std::uint64_t> accepts_{0};
  std::atomic<std::uint64_t> rejects_{0};
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> peak_queue_depth_{0};
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(core::RejectReason::kMaxReason)>
      by_reason_{};
  std::atomic<std::uint64_t> store_wal_appends_{0};
  std::atomic<std::uint64_t> store_wal_fsyncs_{0};
  std::atomic<std::uint64_t> store_recovery_replayed_{0};
  std::atomic<std::uint64_t> store_snapshot_bytes_{0};
  std::atomic<std::uint64_t> sigcache_hits_{0};
  std::atomic<std::uint64_t> sigcache_misses_{0};
  std::atomic<std::uint64_t> sigcache_insertions_{0};
  std::atomic<std::uint64_t> sigcache_evictions_{0};
  std::atomic<std::uint64_t> precomp_hits_{0};
  std::atomic<std::uint64_t> precomp_misses_{0};
  std::atomic<std::uint64_t> precomp_insertions_{0};
  std::atomic<std::uint64_t> precomp_evictions_{0};
  std::atomic<std::uint64_t> net_conns_accepted_{0};
  std::atomic<std::uint64_t> net_conns_active_{0};
  std::atomic<std::uint64_t> net_bans_{0};
  std::atomic<std::uint64_t> net_frames_in_{0};
  std::atomic<std::uint64_t> net_sheds_seen_{0};
  std::atomic<std::uint64_t> net_disconnects_{0};
  std::atomic<std::uint64_t> repl_epoch_{0};
  std::atomic<std::uint64_t> repl_followers_{0};
  std::atomic<std::uint64_t> repl_quorum_{0};
  std::atomic<std::uint64_t> repl_acked_seq_{0};
  std::atomic<std::uint64_t> repl_batches_shipped_{0};
  std::atomic<std::uint64_t> repl_ship_failures_{0};
  std::atomic<std::uint64_t> repl_snapshot_installs_{0};
  LatencyHistogram latency_;
  std::array<LatencyHistogram, kStageCount> stages_;
};

}  // namespace btcfast::gateway
