#include "gateway/verify_batcher.h"

#include <chrono>

namespace btcfast::gateway {

std::vector<std::uint8_t> VerifyBatcher::verify(std::vector<crypto::SigCheckJob> jobs,
                                                bool allow_wait) {
  if (jobs.empty()) return {};
  jobs_.fetch_add(jobs.size(), std::memory_order_relaxed);

  if (!allow_wait) {
    // Single-threaded fast path: no window, no added latency.
    batches_.fetch_add(1, std::memory_order_relaxed);
    return crypto::batch_verify(pool_, jobs, cache_, precomp_);
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (open_ != nullptr) {
    // Follower: append to the open window and sleep until the leader
    // publishes. Our results occupy [offset, offset + n) of the batch.
    auto batch = open_;
    const std::size_t offset = batch->jobs.size();
    const std::size_t n = jobs.size();
    batch->jobs.insert(batch->jobs.end(), jobs.begin(), jobs.end());
    coalesced_.fetch_add(n, std::memory_order_relaxed);
    if (batch->jobs.size() >= config_.max_batch) batch->leader_wake.notify_one();
    batch->done.wait(lock, [&] { return batch->flushed; });
    return {batch->results.begin() + static_cast<std::ptrdiff_t>(offset),
            batch->results.begin() + static_cast<std::ptrdiff_t>(offset + n)};
  }

  // Leader: open a window, wait (bounded) for followers, then run one
  // batch_verify over everything collected.
  auto batch = std::make_shared<Batch>();
  const std::size_t n = jobs.size();
  batch->jobs = std::move(jobs);
  open_ = batch;
  batch->leader_wake.wait_for(lock, std::chrono::microseconds(config_.max_wait_us),
                              [&] { return batch->jobs.size() >= config_.max_batch; });
  // Close the window: late arrivals open a fresh batch while we verify.
  open_.reset();
  std::vector<crypto::SigCheckJob> collected = std::move(batch->jobs);
  lock.unlock();

  std::vector<std::uint8_t> results = crypto::batch_verify(pool_, collected, cache_, precomp_);

  lock.lock();
  batch->results = std::move(results);
  batch->flushed = true;
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch->done.notify_all();
  return {batch->results.begin(), batch->results.begin() + static_cast<std::ptrdiff_t>(n)};
}

}  // namespace btcfast::gateway
