// Opportunistic micro-batching for hot-path signature verification.
//
// Each serve() used to pay a cold ~330 us ECDSA verify inline. With N
// requests in flight that is N independent scalar verifies, even though
// crypto::batch_verify can fan the same work across the pool with far
// better cache behaviour. The batcher closes that gap without changing
// the caller contract: a thread submits its verify jobs and either
// becomes the *leader* of the currently-open batch (waits a bounded
// window for followers, then runs one batch_verify over everything
// collected) or a *follower* (appends its jobs and sleeps until the
// leader publishes results). Either way the verified-valid triples land
// in the shared SigCache, so the caller's subsequent inline verification
// (merchant evaluate) is a cache hit.
//
// The window only opens when the caller says concurrency is plausible
// (`allow_wait`): a single-threaded caller verifies immediately and pays
// zero added latency, which also keeps deterministic single-thread runs
// (scenario fuzzer, inline pools) byte-for-byte identical.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/batch_verify.h"

namespace btcfast::gateway {

class VerifyBatcher {
 public:
  struct Config {
    std::size_t max_batch = 64;        ///< leader flushes once this many jobs collect
    std::uint64_t max_wait_us = 100;   ///< leader's bounded wait for followers
  };

  /// `precomp` (optional) is the per-pubkey GLV table cache handed down
  /// to batch_verify — repeat-payer keys skip decompression and table
  /// building, and shard affinity upstream keeps it hot per escrow.
  VerifyBatcher(common::ThreadPool& pool, crypto::SigCache* cache, Config config,
                crypto::PubkeyPrecompCache* precomp = nullptr)
      : pool_(pool), cache_(cache), precomp_(precomp), config_(config) {
    if (config_.max_batch == 0) config_.max_batch = 1;
  }

  VerifyBatcher(const VerifyBatcher&) = delete;
  VerifyBatcher& operator=(const VerifyBatcher&) = delete;

  /// Verify `jobs`, populating the cache with the valid ones. Returns
  /// per-job verdicts in input order. `allow_wait == false` verifies
  /// inline with no batching window (single-threaded fast path).
  [[nodiscard]] std::vector<std::uint8_t> verify(std::vector<crypto::SigCheckJob> jobs,
                                                 bool allow_wait);

  /// Monotonic counters (relaxed; for stats/bench only).
  [[nodiscard]] std::uint64_t batches() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t jobs_verified() const noexcept {
    return jobs_.load(std::memory_order_relaxed);
  }
  /// Jobs that rode along in a batch another thread led.
  [[nodiscard]] std::uint64_t coalesced_jobs() const noexcept {
    return coalesced_.load(std::memory_order_relaxed);
  }

 private:
  /// One open collection window. Followers append under `mu` and wait on
  /// `done`; the leader flushes and publishes `results`.
  struct Batch {
    std::vector<crypto::SigCheckJob> jobs;
    std::vector<std::uint8_t> results;
    bool flushed = false;
    std::condition_variable done;
    std::condition_variable leader_wake;  ///< kicks the leader when the batch fills
  };

  common::ThreadPool& pool_;
  crypto::SigCache* cache_;
  crypto::PubkeyPrecompCache* precomp_;
  Config config_;

  std::mutex mu_;
  std::shared_ptr<Batch> open_;  ///< null when no window is open

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> coalesced_{0};
};

}  // namespace btcfast::gateway
