#include "gateway/wire.h"

namespace btcfast::gateway {
namespace {

constexpr std::size_t kMaxReasonLen = 256;

bool known_type(std::uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kSubmitFastPay:
    case MsgType::kQueryEscrow:
    case MsgType::kGetReceipt:
    case MsgType::kFastPayResult:
    case MsgType::kEscrowInfo:
    case MsgType::kRetryAfter:
    case MsgType::kReceiptInfo:
    case MsgType::kError:
      return true;
  }
  return false;
}

std::optional<RejectReason> parse_reason(std::uint16_t raw) {
  if (raw >= static_cast<std::uint16_t>(RejectReason::kMaxReason)) return std::nullopt;
  return static_cast<RejectReason>(raw);
}

}  // namespace

Bytes Frame::serialize() const {
  Writer w;
  w.reserve(4 + 1 + 8 + 5 + payload.size());
  w.u32le(kWireMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64le(request_id);
  w.bytes_with_len(payload);
  return std::move(w).take();
}

std::optional<Frame> Frame::deserialize(ByteSpan data) {
  Reader r(data);
  auto magic = r.u32le();
  auto type = r.u8();
  auto rid = r.u64le();
  auto payload = r.bytes_with_len(kMaxFramePayload);
  if (!magic || !type || !rid || !payload || !r.at_end()) return std::nullopt;
  if (*magic != kWireMagic || !known_type(*type)) return std::nullopt;
  Frame f;
  f.type = static_cast<MsgType>(*type);
  f.request_id = *rid;
  f.payload = std::move(*payload);
  return f;
}

Bytes make_frame(MsgType type, std::uint64_t request_id, Bytes payload) {
  Frame f;
  f.type = type;
  f.request_id = request_id;
  f.payload = std::move(payload);
  return f.serialize();
}

Bytes SubmitFastPayRequest::serialize() const {
  Writer w;
  w.u64le(invoice_id);
  w.bytes_with_len(package.serialize());
  return std::move(w).take();
}

std::optional<SubmitFastPayRequest> SubmitFastPayRequest::deserialize(ByteSpan data) {
  Reader r(data);
  auto invoice = r.u64le();
  auto pkg_bytes = r.bytes_with_len(kMaxFramePayload);
  if (!invoice || !pkg_bytes || !r.at_end()) return std::nullopt;
  auto pkg = core::FastPayPackage::deserialize(*pkg_bytes);
  if (!pkg) return std::nullopt;
  SubmitFastPayRequest out;
  out.invoice_id = *invoice;
  out.package = std::move(*pkg);
  return out;
}

Bytes QueryEscrowRequest::serialize() const {
  Writer w;
  w.u64le(escrow_id);
  return std::move(w).take();
}

std::optional<QueryEscrowRequest> QueryEscrowRequest::deserialize(ByteSpan data) {
  Reader r(data);
  auto id = r.u64le();
  if (!id || !r.at_end()) return std::nullopt;
  return QueryEscrowRequest{*id};
}

Bytes GetReceiptRequest::serialize() const {
  Writer w;
  w.u64le(request_id);
  return std::move(w).take();
}

std::optional<GetReceiptRequest> GetReceiptRequest::deserialize(ByteSpan data) {
  Reader r(data);
  auto id = r.u64le();
  if (!id || !r.at_end()) return std::nullopt;
  return GetReceiptRequest{*id};
}

Bytes FastPayResultResponse::serialize() const {
  Writer w;
  w.u8(accepted ? 1 : 0);
  w.u16le(static_cast<std::uint16_t>(code));
  w.str_with_len(reason);
  w.u64le(reservation_id);
  return std::move(w).take();
}

std::optional<FastPayResultResponse> FastPayResultResponse::deserialize(ByteSpan data) {
  Reader r(data);
  auto accepted = r.u8();
  auto code = r.u16le();
  auto reason = r.str_with_len(kMaxReasonLen);
  auto rid = r.u64le();
  if (!accepted || !code || !reason || !rid || !r.at_end()) return std::nullopt;
  if (*accepted > 1) return std::nullopt;
  auto parsed = parse_reason(*code);
  if (!parsed) return std::nullopt;
  FastPayResultResponse out;
  out.accepted = *accepted == 1;
  out.code = *parsed;
  out.reason = std::move(*reason);
  out.reservation_id = *rid;
  return out;
}

Bytes EscrowInfoResponse::serialize() const {
  Writer w;
  w.u8(found ? 1 : 0);
  w.u64le(state);
  w.u64le(collateral);
  w.u64le(reserved);
  w.u64le(unlock_time_ms);
  return std::move(w).take();
}

std::optional<EscrowInfoResponse> EscrowInfoResponse::deserialize(ByteSpan data) {
  Reader r(data);
  auto found = r.u8();
  auto state = r.u64le();
  auto collateral = r.u64le();
  auto reserved = r.u64le();
  auto unlock = r.u64le();
  if (!found || !state || !collateral || !reserved || !unlock || !r.at_end()) {
    return std::nullopt;
  }
  if (*found > 1) return std::nullopt;
  EscrowInfoResponse out;
  out.found = *found == 1;
  out.state = *state;
  out.collateral = *collateral;
  out.reserved = *reserved;
  out.unlock_time_ms = *unlock;
  return out;
}

Bytes ReceiptInfoResponse::serialize() const {
  Writer w;
  w.u8(found ? 1 : 0);
  w.u8(accepted ? 1 : 0);
  w.u16le(static_cast<std::uint16_t>(code));
  w.u64le(decided_at_ms);
  return std::move(w).take();
}

std::optional<ReceiptInfoResponse> ReceiptInfoResponse::deserialize(ByteSpan data) {
  Reader r(data);
  auto found = r.u8();
  auto accepted = r.u8();
  auto code = r.u16le();
  auto at = r.u64le();
  if (!found || !accepted || !code || !at || !r.at_end()) return std::nullopt;
  if (*found > 1 || *accepted > 1) return std::nullopt;
  auto parsed = parse_reason(*code);
  if (!parsed) return std::nullopt;
  ReceiptInfoResponse out;
  out.found = *found == 1;
  out.accepted = *accepted == 1;
  out.code = *parsed;
  out.decided_at_ms = *at;
  return out;
}

Bytes RetryAfterResponse::serialize() const {
  Writer w;
  w.u64le(retry_after_ms);
  w.u64le(queue_depth);
  return std::move(w).take();
}

std::optional<RetryAfterResponse> RetryAfterResponse::deserialize(ByteSpan data) {
  Reader r(data);
  auto after = r.u64le();
  auto depth = r.u64le();
  if (!after || !depth || !r.at_end()) return std::nullopt;
  return RetryAfterResponse{*after, *depth};
}

Bytes ErrorResponse::serialize() const {
  Writer w;
  w.u16le(static_cast<std::uint16_t>(code));
  w.str_with_len(message);
  return std::move(w).take();
}

std::optional<ErrorResponse> ErrorResponse::deserialize(ByteSpan data) {
  Reader r(data);
  auto code = r.u16le();
  auto msg = r.str_with_len(kMaxReasonLen);
  if (!code || !msg || !r.at_end()) return std::nullopt;
  auto parsed = parse_reason(*code);
  if (!parsed) return std::nullopt;
  ErrorResponse out;
  out.code = *parsed;
  out.message = std::move(*msg);
  return out;
}

}  // namespace btcfast::gateway
