// Gateway wire protocol: length-prefixed binary frames carrying fast-pay
// requests and responses. A frame is
//
//   u32le magic | u8 type | u64le request_id | varint len | payload
//
// and every payload is itself a fixed Writer/Reader encoding. Decoders are
// total: any byte sequence either parses into a value or returns nullopt —
// no exceptions, no unbounded allocation (announced lengths are capped) —
// so they can sit directly on an untrusted socket and in the fuzzer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "btcfast/protocol.h"
#include "common/serialize.h"

namespace btcfast::gateway {

using core::EscrowId;
using core::RejectReason;

/// Frame magic ("FPG1") — rejects cross-protocol garbage immediately.
inline constexpr std::uint32_t kWireMagic = 0x46504731;

/// Hard cap on a frame payload. A fast-pay package is a few KB; anything
/// approaching a megabyte is hostile or corrupt.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// Message discriminants. Requests are < 0x80, responses have the high
/// bit set.
enum class MsgType : std::uint8_t {
  kSubmitFastPay = 0x01,
  kQueryEscrow = 0x02,
  kGetReceipt = 0x03,
  kFastPayResult = 0x81,
  kEscrowInfo = 0x82,
  kReceiptInfo = 0x83,
  kRetryAfter = 0x90,  ///< overload shed: resubmit after the hinted delay
  kError = 0x91,       ///< malformed frame / unknown type
};

/// A decoded frame envelope. `request_id` is caller-chosen and echoed in
/// the response so clients can pipeline requests on one connection.
struct Frame {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  Bytes payload;

  [[nodiscard]] Bytes serialize() const;
  /// Strict decode: magic, known type, in-cap payload length, no trailing
  /// bytes. Returns nullopt on any violation.
  [[nodiscard]] static std::optional<Frame> deserialize(ByteSpan data);
};

// ---- Request payloads -------------------------------------------------

struct SubmitFastPayRequest {
  std::uint64_t invoice_id = 0;
  core::FastPayPackage package;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<SubmitFastPayRequest> deserialize(ByteSpan data);
};

struct QueryEscrowRequest {
  EscrowId escrow_id = 0;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<QueryEscrowRequest> deserialize(ByteSpan data);
};

struct GetReceiptRequest {
  std::uint64_t request_id = 0;  ///< the SubmitFastPay frame's request_id

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<GetReceiptRequest> deserialize(ByteSpan data);
};

// ---- Response payloads ------------------------------------------------

struct FastPayResultResponse {
  bool accepted = false;
  RejectReason code = RejectReason::kNone;
  std::string reason;               ///< human diagnostic, bounded
  std::uint64_t reservation_id = 0; ///< nonzero iff accepted

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<FastPayResultResponse> deserialize(ByteSpan data);
};

struct EscrowInfoResponse {
  bool found = false;
  std::uint64_t state = 0;       ///< core::EscrowState as integer
  std::uint64_t collateral = 0;
  std::uint64_t reserved = 0;    ///< on-chain + gateway-local reservations
  std::uint64_t unlock_time_ms = 0;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<EscrowInfoResponse> deserialize(ByteSpan data);
};

struct ReceiptInfoResponse {
  bool found = false;
  bool accepted = false;
  RejectReason code = RejectReason::kNone;
  std::uint64_t decided_at_ms = 0;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<ReceiptInfoResponse> deserialize(ByteSpan data);
};

struct RetryAfterResponse {
  std::uint64_t retry_after_ms = 0;
  std::uint64_t queue_depth = 0;  ///< in-flight requests at shed time

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<RetryAfterResponse> deserialize(ByteSpan data);
};

struct ErrorResponse {
  RejectReason code = RejectReason::kMalformedFrame;
  std::string message;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static std::optional<ErrorResponse> deserialize(ByteSpan data);
};

/// Convenience: wrap an encoded payload in a frame.
[[nodiscard]] Bytes make_frame(MsgType type, std::uint64_t request_id, Bytes payload);

}  // namespace btcfast::gateway
