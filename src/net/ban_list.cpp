#include "net/ban_list.h"

namespace btcfast::net {

bool BanList::is_banned(const std::string& addr, std::uint64_t now_ms) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(addr);
  if (it == entries_.end()) return false;
  if (it->second.banned_until_ms == 0) return false;
  if (now_ms >= it->second.banned_until_ms) {
    entries_.erase(it);  // served its time; score resets with the entry
    return false;
  }
  return true;
}

bool BanList::misbehave(const std::string& addr, std::uint32_t points, std::uint64_t now_ms) {
  std::lock_guard lock(mu_);
  Entry& e = entries_[addr];
  if (e.banned_until_ms != 0 && now_ms < e.banned_until_ms) return false;  // already banned
  // Saturating add: a hostile peer must not wrap its own score back down.
  const std::uint64_t next = static_cast<std::uint64_t>(e.score) + points;
  e.score = next > 0xffffffffull ? 0xffffffffu : static_cast<std::uint32_t>(next);
  if (e.score < config_.threshold) return false;
  e.banned_until_ms = now_ms + config_.duration_ms;
  bans_issued_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void BanList::ban(const std::string& addr, std::uint64_t now_ms) {
  std::lock_guard lock(mu_);
  Entry& e = entries_[addr];
  e.score = config_.threshold;
  e.banned_until_ms = now_ms + config_.duration_ms;
  bans_issued_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t BanList::score(const std::string& addr) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(addr);
  return it == entries_.end() ? 0 : it->second.score;
}

std::size_t BanList::tracked() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

void BanList::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
}

}  // namespace btcfast::net
