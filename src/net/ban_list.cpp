#include "net/ban_list.h"

#include <algorithm>

namespace btcfast::net {

void BanList::prune_locked(std::uint64_t now_ms) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& e = it->second;
    const bool ban_expired = e.banned_until_ms != 0 && now_ms >= e.banned_until_ms;
    const bool score_decayed = e.banned_until_ms == 0 && now_ms >= e.last_seen_ms &&
                               now_ms - e.last_seen_ms >= config_.duration_ms;
    if (ban_expired || score_decayed) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void BanList::maybe_prune_locked(std::uint64_t now_ms) {
  if (now_ms < next_sweep_ms_) return;
  prune_locked(now_ms);
  next_sweep_ms_ = now_ms + std::max<std::uint64_t>(1, config_.duration_ms / 2);
}

void BanList::enforce_cap_locked(const std::string& keep, std::uint64_t now_ms) {
  if (entries_.size() <= config_.max_entries) return;
  prune_locked(now_ms);
  while (entries_.size() > config_.max_entries) {
    // Stalest first, preferring non-banned victims; never the address
    // being scored right now.
    auto victim = entries_.end();
    bool victim_banned = false;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep) continue;
      const bool banned = it->second.banned_until_ms != 0 && now_ms < it->second.banned_until_ms;
      if (victim == entries_.end() || (!banned && victim_banned) ||
          (banned == victim_banned && it->second.last_seen_ms < victim->second.last_seen_ms)) {
        victim = it;
        victim_banned = banned;
      }
    }
    if (victim == entries_.end()) break;
    entries_.erase(victim);
  }
}

bool BanList::is_banned(const std::string& addr, std::uint64_t now_ms) {
  std::lock_guard lock(mu_);
  maybe_prune_locked(now_ms);
  auto it = entries_.find(addr);
  if (it == entries_.end()) return false;
  if (it->second.banned_until_ms == 0) return false;
  if (now_ms >= it->second.banned_until_ms) {
    entries_.erase(it);  // served its time; score resets with the entry
    return false;
  }
  return true;
}

bool BanList::misbehave(const std::string& addr, std::uint32_t points, std::uint64_t now_ms) {
  std::lock_guard lock(mu_);
  maybe_prune_locked(now_ms);
  Entry& e = entries_[addr];
  e.last_seen_ms = now_ms;
  enforce_cap_locked(addr, now_ms);
  if (e.banned_until_ms != 0 && now_ms < e.banned_until_ms) return false;  // already banned
  // Saturating add: a hostile peer must not wrap its own score back down.
  const std::uint64_t next = static_cast<std::uint64_t>(e.score) + points;
  e.score = next > 0xffffffffull ? 0xffffffffu : static_cast<std::uint32_t>(next);
  if (e.score < config_.threshold) return false;
  e.banned_until_ms = now_ms + config_.duration_ms;
  bans_issued_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void BanList::ban(const std::string& addr, std::uint64_t now_ms) {
  std::lock_guard lock(mu_);
  Entry& e = entries_[addr];
  e.score = config_.threshold;
  e.banned_until_ms = now_ms + config_.duration_ms;
  e.last_seen_ms = now_ms;
  enforce_cap_locked(addr, now_ms);
  bans_issued_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t BanList::score(const std::string& addr) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(addr);
  return it == entries_.end() ? 0 : it->second.score;
}

std::size_t BanList::tracked() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

void BanList::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
}

}  // namespace btcfast::net
