// Per-address misbehavior scoring and bans for the TCP front end.
// Malformed framing, oversized length announcements and timeout abuse
// each add points; crossing the threshold bans the address for a
// configured window, during which new connections are refused at accept.
// Entries are pruned when their ban expires (score included — a peer that
// served its ban starts clean), and sub-threshold scores age out after
// one quiet ban window — an address-rotating attacker committing one
// cheap offence per address must not grow the map forever. max_entries
// is the hard backstop: past it the stalest (non-banned first) entry is
// evicted, so memory stays bounded even against a fast rotation.
//
// Thread-safe: the server sweeps and scores from its loop thread while
// tests and monitoring read from others.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace btcfast::net {

struct BanConfig {
  /// Cumulative score at which an address is banned.
  std::uint32_t threshold = 100;
  /// How long a ban lasts. After expiry the address starts clean. Also
  /// the decay window: a sub-threshold score quiet for this long is
  /// forgotten.
  std::uint64_t duration_ms = 60'000;
  /// Hard cap on tracked addresses; beyond it the stalest entry
  /// (non-banned preferred) is evicted.
  std::size_t max_entries = 65'536;
};

class BanList {
 public:
  explicit BanList(BanConfig config = {}) : config_(config) {}

  /// Is this address currently banned? Prunes the entry once its ban has
  /// expired, which also resets the score.
  [[nodiscard]] bool is_banned(const std::string& addr, std::uint64_t now_ms);

  /// Add misbehavior points. Returns true when this call crossed the
  /// threshold and the address is now banned.
  bool misbehave(const std::string& addr, std::uint32_t points, std::uint64_t now_ms);

  /// Unconditional ban (operator action / tests).
  void ban(const std::string& addr, std::uint64_t now_ms);

  /// Current score (0 if untracked).
  [[nodiscard]] std::uint32_t score(const std::string& addr) const;

  /// Total bans ever issued.
  [[nodiscard]] std::uint64_t bans_issued() const noexcept {
    return bans_issued_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t tracked() const;
  void clear();

  [[nodiscard]] const BanConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    std::uint32_t score = 0;
    std::uint64_t banned_until_ms = 0;  ///< 0 = not banned
    std::uint64_t last_seen_ms = 0;     ///< last offence / ban touch
  };

  /// Drop expired bans and sub-threshold scores idle past one ban
  /// window. Called with mu_ held.
  void prune_locked(std::uint64_t now_ms);
  /// Amortized prune: full sweep at most once per half ban window.
  void maybe_prune_locked(std::uint64_t now_ms);
  /// Evict stalest entries (never `keep`) until the map fits the cap.
  void enforce_cap_locked(const std::string& keep, std::uint64_t now_ms);

  BanConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t next_sweep_ms_ = 0;
  std::atomic<std::uint64_t> bans_issued_{0};
};

}  // namespace btcfast::net
