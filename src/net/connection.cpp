#include "net/connection.h"

#include <cerrno>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace btcfast::net {

Connection::Connection(int fd, std::string peer, ConnConfig config, std::uint64_t now_ms)
    : fd_(fd),
      peer_(std::move(peer)),
      config_(config),
      assembler_(config.max_frame_payload),
      last_activity_ms_(now_ms) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  // Request/response framing and Nagle are a bad mix: once the first
  // response goes out, delayed ACKs on the peer hold every small segment
  // for an RTT+. Fails harmlessly on non-TCP fds (the socketpair tests).
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (config_.so_sndbuf > 0) {
    (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                       sizeof(config_.so_sndbuf));
  }
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

Connection::ReadEvent Connection::on_readable(std::uint64_t now_ms) {
  ReadEvent ev;
  Bytes chunk(config_.read_chunk);
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n > 0) {
      bytes_in_ += static_cast<std::uint64_t>(n);
      last_activity_ms_ = now_ms;
      if (!assembler_.feed({chunk.data(), static_cast<std::size_t>(n)})) break;
      while (auto frame = assembler_.next_frame()) ev.frames.push_back(std::move(*frame));
      if (assembler_.poisoned()) break;
      // Frame-stall clock: arm it when bytes of an incomplete frame are
      // pending, clear it once the stream is back on a frame boundary.
      frame_started_ms_ = assembler_.mid_frame()
                              ? (frame_started_ms_ == 0 ? now_ms : frame_started_ms_)
                              : 0;
      continue;
    }
    if (n == 0) {
      ev.eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    ev.eof = true;  // fatal socket error: treat as peer loss
    break;
  }
  if (assembler_.poisoned()) {
    ev.framing_error = true;
    ev.framing_error_rid = assembler_.error_request_id();
    ev.framing_kind = assembler_.error();
    frame_started_ms_ = 0;
  }
  return ev;
}

bool Connection::queue_response(ByteSpan frame) {
  if (write_buffered() + frame.size() > config_.write_buffer_hard) return false;
  // Compact before growing: keeps the flat buffer from accumulating a
  // dead prefix across a long-lived pipelined connection.
  if (write_pos_ > 0 && write_pos_ == write_buf_.size()) {
    write_buf_.clear();
    write_pos_ = 0;
  } else if (write_pos_ > 4096 && write_pos_ * 2 >= write_buf_.size()) {
    write_buf_.erase(write_buf_.begin(), write_buf_.begin() + static_cast<std::ptrdiff_t>(write_pos_));
    write_pos_ = 0;
  }
  append(write_buf_, frame);
  return true;
}

Connection::WriteResult Connection::on_writable() {
  while (write_pos_ < write_buf_.size()) {
    const ssize_t n = ::send(fd_, write_buf_.data() + write_pos_,
                             write_buf_.size() - write_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      write_pos_ += static_cast<std::size_t>(n);
      bytes_out_ += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return WriteResult::kAgain;
    if (n < 0 && errno == EINTR) continue;
    return WriteResult::kError;
  }
  write_buf_.clear();
  write_pos_ = 0;
  return WriteResult::kDrained;
}

Connection::TimeoutKind Connection::check_timeout(std::uint64_t now_ms) const noexcept {
  // now_ms >= anchor guards: a clock that steps backwards (a scripted
  // test ClockFn, or a rewound fake) must not wrap the unsigned delta
  // and fire every timeout at once.
  // The stall deadline binds first: a slow-loris drip refreshes
  // last_activity with every byte, so idle alone would never fire.
  if (frame_started_ms_ != 0 && now_ms >= frame_started_ms_ &&
      now_ms - frame_started_ms_ >= config_.frame_timeout_ms) {
    return TimeoutKind::kFrameStall;
  }
  if (now_ms >= last_activity_ms_ && now_ms - last_activity_ms_ >= config_.idle_timeout_ms) {
    return TimeoutKind::kIdle;
  }
  return TimeoutKind::kNone;
}

}  // namespace btcfast::net
