// One TCP connection to the gateway front end: a non-blocking fd, the
// incremental frame assembler on the read side, and a bounded write
// buffer on the response side. The class owns no event loop — the server
// (or a test harness over a socketpair) calls on_readable/on_writable
// when the fd is ready and check_timeout on its sweep tick, passing time
// in explicitly. That keeps every timeout and buffering decision
// reproducible under a fake clock.
//
// Backpressure contract:
//   - reads stop (wants_read() == false) while the write buffer sits
//     above the soft watermark, or during an explicit shed backoff window
//     (pause_reads_until) after the gateway shed this connection's batch;
//   - queue_response refuses once the hard cap would be exceeded — the
//     server then disconnects, so a client that never drains responses
//     costs one bounded buffer, never unbounded memory;
//   - a partially received frame must complete within frame_timeout_ms of
//     its first byte (slow-loris: dripping a header one byte per poll
//     resets no deadline), and a silent connection dies after
//     idle_timeout_ms.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "net/frame_assembler.h"

namespace btcfast::net {

struct ConnConfig {
  std::size_t max_frame_payload = gateway::kMaxFramePayload;
  /// recv() chunk size per call.
  std::size_t read_chunk = 16 * 1024;
  /// Hard cap on buffered response bytes: exceeding it disconnects.
  std::size_t write_buffer_hard = 1u << 20;
  /// Soft watermark: stop reading new requests above this.
  std::size_t write_buffer_soft = 256u * 1024;
  /// Close a connection with no received bytes for this long.
  std::uint64_t idle_timeout_ms = 30'000;
  /// A started frame must complete within this of its first byte.
  std::uint64_t frame_timeout_ms = 5'000;
  /// Kernel send-buffer size to request (0 = leave the default). Small
  /// values make write-stall behaviour testable without megabytes of
  /// kernel buffering in the way.
  int so_sndbuf = 0;
};

class Connection {
 public:
  /// Takes ownership of `fd` (closed on destruction) and switches it to
  /// non-blocking. `peer` is the remote address used for ban scoring.
  Connection(int fd, std::string peer, ConnConfig config, std::uint64_t now_ms);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  struct ReadEvent {
    std::vector<Bytes> frames;  ///< complete frames, in arrival order
    bool eof = false;           ///< peer closed (or fatal socket error)
    bool framing_error = false;
    std::uint64_t framing_error_rid = 0;  ///< echoed in the error response
    FrameAssembler::Error framing_kind = FrameAssembler::Error::kNone;
  };

  /// Drain the socket (until EAGAIN/EOF/poison) through the assembler.
  [[nodiscard]] ReadEvent on_readable(std::uint64_t now_ms);

  /// Queue an encoded response frame. Returns false when the hard cap is
  /// exceeded — the frame is NOT queued and the caller must disconnect.
  [[nodiscard]] bool queue_response(ByteSpan frame);

  enum class WriteResult {
    kDrained,  ///< write buffer empty
    kAgain,    ///< kernel buffer full; keep EPOLLOUT
    kError,    ///< fatal socket error; disconnect
  };
  [[nodiscard]] WriteResult on_writable();

  [[nodiscard]] bool wants_write() const noexcept { return write_pos_ < write_buf_.size(); }
  [[nodiscard]] std::size_t write_buffered() const noexcept {
    return write_buf_.size() - write_pos_;
  }
  /// Readable unless backpressured (soft watermark / shed backoff) or
  /// marked for close.
  [[nodiscard]] bool wants_read(std::uint64_t now_ms) const noexcept {
    return !close_after_flush_ && now_ms >= paused_until_ms_ &&
           write_buffered() <= config_.write_buffer_soft;
  }
  void pause_reads_until(std::uint64_t until_ms) noexcept { paused_until_ms_ = until_ms; }
  [[nodiscard]] std::uint64_t paused_until() const noexcept { return paused_until_ms_; }

  /// Stop reading, flush what is queued, then let the server close.
  void mark_close_after_flush() noexcept { close_after_flush_ = true; }
  [[nodiscard]] bool close_after_flush() const noexcept { return close_after_flush_; }

  enum class TimeoutKind { kNone, kIdle, kFrameStall };
  [[nodiscard]] TimeoutKind check_timeout(std::uint64_t now_ms) const noexcept;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] const std::string& peer() const noexcept { return peer_; }
  [[nodiscard]] const FrameAssembler& assembler() const noexcept { return assembler_; }
  [[nodiscard]] std::uint64_t bytes_in() const noexcept { return bytes_in_; }
  [[nodiscard]] std::uint64_t bytes_out() const noexcept { return bytes_out_; }

 private:
  int fd_;
  std::string peer_;
  ConnConfig config_;
  FrameAssembler assembler_;

  /// Flat write buffer with a consumed prefix, compacted when drained.
  Bytes write_buf_;
  std::size_t write_pos_ = 0;

  std::uint64_t last_activity_ms_;     ///< last byte received
  std::uint64_t frame_started_ms_ = 0; ///< first byte of the partial frame (0 = none)
  std::uint64_t paused_until_ms_ = 0;
  bool close_after_flush_ = false;

  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

}  // namespace btcfast::net
