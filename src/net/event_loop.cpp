#include "net/event_loop.h"

#include <cerrno>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace btcfast::net {
namespace {

/// Reserved tag for the internal wakeup eventfd; user tags must differ.
constexpr std::uint64_t kWakeTag = ~0ull;

std::uint32_t to_epoll(std::uint32_t events) {
  std::uint32_t e = 0;
  if (events & EventLoop::kRead) e |= EPOLLIN;
  if (events & EventLoop::kWrite) e |= EPOLLOUT;
  return e;
}

std::uint32_t from_epoll(std::uint32_t e) {
  std::uint32_t events = 0;
  if (e & (EPOLLIN | EPOLLRDHUP)) events |= EventLoop::kRead;
  if (e & EPOLLOUT) events |= EventLoop::kWrite;
  // Error/hangup conditions are surfaced as readable+writable so the
  // owner's next read/write observes the failure and closes.
  if (e & (EPOLLERR | EPOLLHUP)) events |= EventLoop::kRead | EventLoop::kWrite;
  return events;
}

}  // namespace

EventLoop::EventLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) return;
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    (void)::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epfd_ >= 0) ::close(epfd_);
}

bool EventLoop::add(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.u64 = tag;
  return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool EventLoop::mod(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.u64 = tag;
  return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

bool EventLoop::del(int fd) { return ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) == 0; }

int EventLoop::wait(std::vector<Ready>& out, int timeout_ms) {
  out.clear();
  epoll_event evs[64];
  int n;
  do {
    n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;
  for (int i = 0; i < n; ++i) {
    if (evs[i].data.u64 == kWakeTag) {
      std::uint64_t drain = 0;
      (void)!::read(wake_fd_, &drain, sizeof(drain));
      continue;
    }
    out.push_back({evs[i].data.u64, from_epoll(evs[i].events)});
  }
  return static_cast<int>(out.size());
}

void EventLoop::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

}  // namespace btcfast::net
