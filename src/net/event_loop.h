// Thin epoll wrapper: register fds under u64 tags, wait for readiness.
// Tags (not pointers) cross the epoll boundary so a connection destroyed
// between wait() and dispatch can never dangle — the server just finds no
// entry for the stale tag. Includes an eventfd-based wakeup so another
// thread can interrupt a blocking wait (stop(), config reload).
#pragma once

#include <cstdint>
#include <vector>

namespace btcfast::net {

class EventLoop {
 public:
  /// Readiness interest / result bits (mirror EPOLLIN/EPOLLOUT).
  static constexpr std::uint32_t kRead = 0x1;
  static constexpr std::uint32_t kWrite = 0x4;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] bool valid() const noexcept { return epfd_ >= 0; }

  bool add(int fd, std::uint32_t events, std::uint64_t tag);
  bool mod(int fd, std::uint32_t events, std::uint64_t tag);
  bool del(int fd);

  struct Ready {
    std::uint64_t tag = 0;
    std::uint32_t events = 0;  ///< kRead/kWrite bits; errors surface as kRead|kWrite
  };

  /// Blocks up to timeout_ms (-1 = forever, 0 = poll). Returns the number
  /// of ready entries appended to `out` (cleared first), or -1 on error.
  int wait(std::vector<Ready>& out, int timeout_ms);

  /// Thread-safe: interrupts a concurrent wait(). The wakeup is consumed
  /// internally and never surfaces as a Ready entry.
  void wake();

 private:
  int epfd_ = -1;
  int wake_fd_ = -1;
};

}  // namespace btcfast::net
