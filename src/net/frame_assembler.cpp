#include "net/frame_assembler.h"

#include "common/serialize.h"

namespace btcfast::net {
namespace {

/// Little-endian image of gateway::kWireMagic, byte-addressable so a
/// mismatch is caught on the first wrong byte, not after 4 arrive.
constexpr std::uint8_t kMagicBytes[4] = {
    static_cast<std::uint8_t>(gateway::kWireMagic & 0xff),
    static_cast<std::uint8_t>((gateway::kWireMagic >> 8) & 0xff),
    static_cast<std::uint8_t>((gateway::kWireMagic >> 16) & 0xff),
    static_cast<std::uint8_t>((gateway::kWireMagic >> 24) & 0xff),
};

/// CompactSize width from its tag byte.
std::size_t varint_width(std::uint8_t tag) {
  if (tag < 0xfd) return 1;
  if (tag == 0xfd) return 3;
  if (tag == 0xfe) return 5;
  return 9;
}

std::uint64_t u64le_at(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

bool FrameAssembler::feed(ByteSpan data) {
  if (poisoned()) return false;
  append(buf_, data);
  return true;
}

std::optional<Bytes> FrameAssembler::next_frame() {
  if (poisoned()) return std::nullopt;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::size_t avail = buf_.size() - pos_;

  // Magic, byte by byte: a stream that diverges here can never be
  // reframed, and catching it at the first byte keeps the per-byte
  // slow-loris drip from buffering garbage for a full header.
  const std::size_t check = avail < 4 ? avail : 4;
  for (std::size_t i = 0; i < check; ++i) {
    if (p[i] != kMagicBytes[i]) {
      error_ = Error::kBadMagic;
      buf_.clear();
      pos_ = 0;
      return std::nullopt;
    }
  }
  if (avail < kHeaderFixedBytes + 1) return std::nullopt;  // need the varint tag

  const std::size_t vwidth = varint_width(p[kHeaderFixedBytes]);
  if (avail < kHeaderFixedBytes + vwidth) return std::nullopt;

  // Decode the length with the same Reader the gateway's decoders use, so
  // stream framing and frame parsing can never disagree about a length.
  Reader r({p + kHeaderFixedBytes, vwidth});
  const auto len = r.varint();
  if (!len || *len > max_payload_) {
    error_ = Error::kOversizedLength;
    error_rid_ = u64le_at(p + 5);
    buf_.clear();
    pos_ = 0;
    return std::nullopt;
  }

  const std::size_t total = kHeaderFixedBytes + vwidth + static_cast<std::size_t>(*len);
  if (avail < total) return std::nullopt;

  Bytes frame(p, p + total);
  pos_ += total;
  ++frames_out_;
  // Compact lazily: only once the dead prefix dominates, so a burst of
  // coalesced frames pays one memmove, not one per frame.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return frame;
}

}  // namespace btcfast::net
