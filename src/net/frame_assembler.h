// Incremental reassembly of gateway wire frames from an untrusted TCP
// byte stream. The framing is the one wire.h defines —
//
//   u32le magic | u8 type | u64le request_id | varint len | payload
//
// — but a socket delivers it at arbitrary fragment boundaries: a length
// prefix one byte per poll, three frames coalesced into one read, a
// payload split mid-varint. FrameAssembler buffers bytes and emits each
// complete frame as the exact byte slice the sender framed, so the
// gateway's own Frame::deserialize (and its kError response for framed
// garbage) sees precisely what a direct serve() caller would pass.
//
// The assembler enforces only what stream framing requires:
//   - the 4 magic bytes (checked as soon as each arrives — without them
//     there is no way to find the next frame boundary, so a mismatch
//     poisons the stream);
//   - the announced payload length against a hard cap (an oversized
//     announcement would otherwise commit us to buffering it).
// Unknown message types and malformed payloads are NOT its business:
// they frame fine, and the gateway answers them with a typed error, which
// keeps TCP responses byte-identical to direct serve() output.
//
// Memory is bounded by one partial frame: at most
// kHeaderFixedBytes + 9 (varint) + max_payload bytes are ever retained.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "gateway/wire.h"

namespace btcfast::net {

/// magic + type + request_id — everything before the varint length.
inline constexpr std::size_t kHeaderFixedBytes = 4 + 1 + 8;

class FrameAssembler {
 public:
  enum class Error : std::uint8_t {
    kNone = 0,
    kBadMagic,         ///< stream cannot be reframed; fatal
    kOversizedLength,  ///< announced payload beyond the cap; fatal
  };

  explicit FrameAssembler(std::size_t max_payload = gateway::kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Append stream bytes. Returns false once the stream is poisoned
  /// (bytes after a framing error are dropped — there is no resync).
  bool feed(ByteSpan data);

  /// Pop the next complete frame, byte-identical to what the peer framed.
  /// nullopt when more bytes are needed or the stream is poisoned.
  [[nodiscard]] std::optional<Bytes> next_frame();

  [[nodiscard]] Error error() const noexcept { return error_; }
  [[nodiscard]] bool poisoned() const noexcept { return error_ != Error::kNone; }

  /// request_id of the offending header when the stream poisoned after
  /// the fixed header was readable (0 otherwise) — lets the server echo
  /// it in the kError response, matching direct serve() on the bytes.
  [[nodiscard]] std::uint64_t error_request_id() const noexcept { return error_rid_; }

  /// Bytes held for the frame in progress (0 = between frames).
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }
  [[nodiscard]] bool mid_frame() const noexcept { return buffered() > 0; }

  /// Total frames emitted so far.
  [[nodiscard]] std::uint64_t frames_out() const noexcept { return frames_out_; }

 private:
  std::size_t max_payload_;
  Bytes buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_ (compacted lazily)
  Error error_ = Error::kNone;
  std::uint64_t error_rid_ = 0;
  std::uint64_t frames_out_ = 0;
};

}  // namespace btcfast::net
