#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "gateway/wire.h"

namespace btcfast::net {
namespace {

constexpr std::uint64_t kListenTag = 0;

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Response frame type without a full decode (offset 4 per the framing).
bool is_shed_response(ByteSpan resp) {
  return resp.size() > 4 &&
         resp[4] == static_cast<std::uint8_t>(gateway::MsgType::kRetryAfter);
}

std::string peer_string(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) return "?";
  // Port excluded deliberately: misbehavior scores and bans attach to the
  // host, or a banned peer would evade by reconnecting from a new port.
  return buf;
}

}  // namespace

TcpServer::TcpServer(FrameHandler& handler, ServerConfig config, ClockFn clock)
    : handler_(handler),
      config_(std::move(config)),
      clock_(clock ? std::move(clock) : ClockFn(&steady_now_ms)),
      bans_(config_.ban) {}

TcpServer::~TcpServer() {
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool TcpServer::start() {
  if (!loop_.valid()) return false;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) return false;
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) return false;

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) return false;
  port_ = ntohs(bound.sin_port);

  return loop_.add(listen_fd_, EventLoop::kRead, kListenTag);
}

void TcpServer::handle_accepts(std::uint64_t now_ms) {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;  // take the next one
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        // Resource exhaustion: the backlog stays pending, so with
        // level-triggered epoll the listener would wake every poll and
        // spin a core. Mute it and re-arm after a backoff (poll_once).
        if (loop_.mod(listen_fd_, 0, kListenTag)) {
          accept_paused_until_ms_ = now_ms + config_.accept_backoff_ms;
          accept_backoffs_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return;  // EAGAIN or transient error: nothing more to take
    }
    const std::string peer = peer_string(addr);
    if (bans_.is_banned(peer, now_ms)) {
      refused_banned_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    if (conns_.size() >= config_.max_connections) {
      refused_full_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const std::uint64_t tag = next_tag_++;
    Entry entry;
    entry.conn = std::make_unique<Connection>(fd, peer, config_.conn, now_ms);
    entry.interest = EventLoop::kRead;
    if (!loop_.add(fd, EventLoop::kRead, tag)) continue;  // entry dies, fd closes
    conns_.emplace(tag, std::move(entry));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TcpServer::close_connection(std::uint64_t tag) {
  auto it = conns_.find(tag);
  if (it == conns_.end()) return;
  bytes_in_.fetch_add(it->second.conn->bytes_in(), std::memory_order_relaxed);
  bytes_out_.fetch_add(it->second.conn->bytes_out(), std::memory_order_relaxed);
  (void)loop_.del(it->second.conn->fd());
  conns_.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
  disconnects_.fetch_add(1, std::memory_order_relaxed);
}

void TcpServer::update_interest(std::uint64_t tag, Connection& conn, std::uint64_t now_ms) {
  if (conn.close_after_flush() && !conn.wants_write()) {
    close_connection(tag);
    return;
  }
  std::uint32_t mask = 0;
  if (conn.wants_read(now_ms)) mask |= EventLoop::kRead;
  if (conn.wants_write()) mask |= EventLoop::kWrite;
  auto it = conns_.find(tag);
  if (it == conns_.end()) return;
  if (mask != it->second.interest) {
    if (loop_.mod(conn.fd(), mask, tag)) it->second.interest = mask;
  }
}

void TcpServer::handle_event(std::uint64_t tag, std::uint32_t events, std::uint64_t now_ms,
                             std::vector<std::pair<std::uint64_t, std::vector<Bytes>>>& batches) {
  auto it = conns_.find(tag);
  if (it == conns_.end()) return;  // stale tag: closed earlier this iteration
  Connection& conn = *it->second.conn;

  if (events & EventLoop::kWrite) {
    switch (conn.on_writable()) {
      case Connection::WriteResult::kError:
        close_connection(tag);
        return;
      case Connection::WriteResult::kDrained:
      case Connection::WriteResult::kAgain:
        break;
    }
    if (conn.close_after_flush() && !conn.wants_write()) {
      close_connection(tag);
      return;
    }
  }

  if ((events & EventLoop::kRead) && conn.wants_read(now_ms)) {
    auto ev = conn.on_readable(now_ms);
    frames_in_.fetch_add(ev.frames.size(), std::memory_order_relaxed);
    if (ev.framing_error) {
      framing_errors_.fetch_add(1, std::memory_order_relaxed);
      (void)bans_.misbehave(conn.peer(), config_.score_framing, now_ms);
      it->second.error_rid = ev.framing_error_rid;
      it->second.error_pending = true;
    }
    if (ev.eof) it->second.eof_pending = true;
    if (!ev.frames.empty() || it->second.error_pending || it->second.eof_pending) {
      // Finalization (error response ordering, close-after-flush) is
      // deferred to dispatch so responses to frames that completed
      // before the error/EOF still go out first.
      batches.emplace_back(tag, std::move(ev.frames));
      return;
    }
  }
  update_interest(tag, conn, now_ms);
}

void TcpServer::dispatch(std::vector<std::pair<std::uint64_t, std::vector<Bytes>>>& batches,
                         std::uint64_t now_ms) {
  if (batches.empty()) return;
  // Accept order, then per-connection arrival order: deterministic for
  // the byte-parity harness regardless of epoll's readiness order.
  std::sort(batches.begin(), batches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<Bytes> flat;
  for (auto& [tag, frames] : batches) {
    for (auto& f : frames) flat.push_back(std::move(f));
  }
  std::vector<Bytes> responses;
  if (!flat.empty()) responses = handler_.handle(flat, now_ms);

  // Each batch's responses start at its cumulative frame offset. Never a
  // running index: a mid-batch close (write overflow) must not shift the
  // remaining connections onto the dead connection's leftover responses.
  std::size_t base = 0;
  for (auto& [tag, frames] : batches) {
    const std::size_t batch_base = base;
    base += frames.size();
    auto it = conns_.find(tag);
    if (it == conns_.end()) continue;
    Connection& conn = *it->second.conn;
    std::size_t sheds = 0;
    bool closed = false;
    for (std::size_t i = 0; i < frames.size() && batch_base + i < responses.size(); ++i) {
      const Bytes& resp = responses[batch_base + i];
      if (is_shed_response(resp)) {
        ++sheds;
        sheds_seen_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!conn.queue_response(resp)) {
        write_overflows_.fetch_add(1, std::memory_order_relaxed);
        close_connection(tag);
        closed = true;
        break;
      }
      responses_out_.fetch_add(1, std::memory_order_relaxed);
    }
    if (closed) continue;

    if (it->second.error_pending) {
      gateway::ErrorResponse err;
      err.code = core::RejectReason::kMalformedFrame;
      err.message = "framing violation";
      const Bytes resp =
          gateway::make_frame(gateway::MsgType::kError, it->second.error_rid, err.serialize());
      if (conn.queue_response(resp)) responses_out_.fetch_add(1, std::memory_order_relaxed);
      it->second.error_pending = false;
      conn.mark_close_after_flush();
    }
    if (it->second.eof_pending) conn.mark_close_after_flush();

    // Admission backpressure: when the gateway shed everything this
    // connection sent, stop reading from it for a beat instead of
    // spinning shed responses at wire speed.
    if (sheds > 0 && sheds == frames.size()) {
      conn.pause_reads_until(now_ms + config_.shed_backoff_ms);
      read_pauses_.fetch_add(1, std::memory_order_relaxed);
    }

    // Opportunistic flush: the common case finishes without waiting for
    // an EPOLLOUT round trip.
    if (conn.wants_write() && conn.on_writable() == Connection::WriteResult::kError) {
      close_connection(tag);
      continue;
    }
    update_interest(tag, conn, now_ms);
  }
}

void TcpServer::sweep_timeouts(std::uint64_t now_ms) {
  std::vector<std::uint64_t> to_close;
  for (auto& [tag, entry] : conns_) {
    Connection& conn = *entry.conn;
    switch (conn.check_timeout(now_ms)) {
      case Connection::TimeoutKind::kFrameStall:
        timeouts_stall_.fetch_add(1, std::memory_order_relaxed);
        (void)bans_.misbehave(conn.peer(), config_.score_stall, now_ms);
        to_close.push_back(tag);
        continue;
      case Connection::TimeoutKind::kIdle:
        timeouts_idle_.fetch_add(1, std::memory_order_relaxed);
        to_close.push_back(tag);
        continue;
      case Connection::TimeoutKind::kNone:
        break;
    }
    // Re-arm reads whose shed backoff expired, and reap drained
    // close-after-flush connections (update_interest may erase, so only
    // via the deferred list).
    if (conn.close_after_flush() && !conn.wants_write()) {
      to_close.push_back(tag);
      continue;
    }
    std::uint32_t mask = 0;
    if (conn.wants_read(now_ms)) mask |= EventLoop::kRead;
    if (conn.wants_write()) mask |= EventLoop::kWrite;
    if (mask != entry.interest && loop_.mod(conn.fd(), mask, tag)) entry.interest = mask;
  }
  for (const auto tag : to_close) close_connection(tag);
}

bool TcpServer::poll_once(int timeout_ms) {
  if (listen_fd_ < 0) return false;
  (void)loop_.wait(ready_, timeout_ms);
  const std::uint64_t now_ms = clock_();
  if (accept_paused_until_ms_ != 0 && now_ms >= accept_paused_until_ms_) {
    if (loop_.mod(listen_fd_, EventLoop::kRead, kListenTag)) accept_paused_until_ms_ = 0;
  }
  std::vector<std::pair<std::uint64_t, std::vector<Bytes>>> batches;
  for (const auto& ev : ready_) {
    if (ev.tag == kListenTag) {
      handle_accepts(now_ms);
    } else {
      handle_event(ev.tag, ev.events, now_ms, batches);
    }
  }
  dispatch(batches, now_ms);
  sweep_timeouts(now_ms);
  return true;
}

void TcpServer::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (!poll_once(config_.poll_timeout_ms)) return;
  }
}

void TcpServer::stop() {
  stop_.store(true, std::memory_order_release);
  loop_.wake();
}

NetStatsSnapshot TcpServer::stats() const {
  NetStatsSnapshot s;
  s.conns_accepted = accepted_.load(std::memory_order_relaxed);
  s.conns_refused_banned = refused_banned_.load(std::memory_order_relaxed);
  s.conns_refused_full = refused_full_.load(std::memory_order_relaxed);
  s.conns_active = active_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.responses_out = responses_out_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.framing_errors = framing_errors_.load(std::memory_order_relaxed);
  s.timeouts_idle = timeouts_idle_.load(std::memory_order_relaxed);
  s.timeouts_stall = timeouts_stall_.load(std::memory_order_relaxed);
  s.write_overflows = write_overflows_.load(std::memory_order_relaxed);
  s.sheds_seen = sheds_seen_.load(std::memory_order_relaxed);
  s.read_pauses = read_pauses_.load(std::memory_order_relaxed);
  s.accept_backoffs = accept_backoffs_.load(std::memory_order_relaxed);
  s.bans_issued = bans_.bans_issued();
  return s;
}

void TcpServer::fold_into(gateway::Gateway& gw) const {
  const auto s = stats();
  gw.set_net_metrics(s.conns_accepted, s.conns_active, s.bans_issued, s.frames_in,
                     s.sheds_seen, s.disconnects);
}

}  // namespace btcfast::net
