// The epoll TCP front end for the gateway: accepts connections, runs
// every fd through Connection's bounded buffering, batches the complete
// frames of each poll iteration into one FrameHandler::handle call (for
// the gateway that is serve_batch, so concurrent frames coalesce into the
// verify micro-batcher), and writes responses back per connection.
//
// Single-threaded by design: one loop thread owns every socket, and all
// request parallelism lives behind serve_batch's thread pool. That keeps
// the connection table lock-free and the dispatch order deterministic
// (connection id, then arrival order), which the byte-parity tests rely
// on. stop() is the only cross-thread entry point (eventfd wakeup);
// stats() reads relaxed atomics.
//
// Failure policy (DESIGN.md §12):
//   - framing violation (bad magic / oversized length): answer one typed
//     kError frame, score the address, flush, close;
//   - frame stall (slow-loris) and idle timeouts: score resp. close;
//   - write-buffer hard-cap overflow (client never drains): close
//     immediately — bounded memory beats a complete response stream;
//   - score over threshold: address banned; further accepts are closed
//     on arrival until the ban expires.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gateway/pipeline.h"
#include "net/ban_list.h"
#include "net/connection.h"
#include "net/event_loop.h"

namespace btcfast::net {

/// Supplies "now" in milliseconds. The default is the steady clock;
/// tests substitute a fake so timeout behaviour is scripted, not slept.
using ClockFn = std::function<std::uint64_t()>;

/// Serves batches of complete request frames. Responses must be
/// index-aligned with the input. Implementations must tolerate frames
/// that fail to decode (the gateway answers those with kError).
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;
  [[nodiscard]] virtual std::vector<Bytes> handle(const std::vector<Bytes>& frames,
                                                  std::uint64_t now_ms) = 0;
};

/// Adapter: frames go to Gateway::serve_batch. When the deployment's
/// simulation clock is quiescent while the server runs (every bench and
/// test here), pin_time supplies the sim timestamp for request semantics
/// while the server's own clock keeps driving socket timeouts.
class GatewayHandler final : public FrameHandler {
 public:
  explicit GatewayHandler(gateway::Gateway& gw) : gw_(gw) {}

  void pin_time(std::uint64_t now_ms) { pinned_now_ms_ = now_ms; }

  [[nodiscard]] std::vector<Bytes> handle(const std::vector<Bytes>& frames,
                                          std::uint64_t now_ms) override {
    return gw_.serve_batch(frames, pinned_now_ms_.value_or(now_ms));
  }

 private:
  gateway::Gateway& gw_;
  std::optional<std::uint64_t> pinned_now_ms_;
};

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  std::size_t max_connections = 1024;
  ConnConfig conn;
  BanConfig ban;
  /// Misbehavior points per offence (threshold lives in BanConfig).
  std::uint32_t score_framing = 50;
  std::uint32_t score_stall = 40;
  /// Pause reading a connection for this long after the gateway shed its
  /// whole batch — admission backpressure propagated to the socket.
  std::uint64_t shed_backoff_ms = 10;
  /// Mute the listener for this long when accept fails with fd/memory
  /// exhaustion (EMFILE/ENFILE/...), instead of spinning the
  /// level-triggered loop until an fd frees up.
  std::uint64_t accept_backoff_ms = 100;
  /// run()'s poll timeout; bounds how late a timeout sweep can fire.
  int poll_timeout_ms = 50;
};

/// Relaxed snapshot of the server's counters.
struct NetStatsSnapshot {
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_refused_banned = 0;
  std::uint64_t conns_refused_full = 0;
  std::uint64_t conns_active = 0;  ///< gauge
  std::uint64_t disconnects = 0;   ///< every close after a successful accept
  std::uint64_t frames_in = 0;
  std::uint64_t responses_out = 0;
  std::uint64_t bytes_in = 0;   ///< closed-connection totals
  std::uint64_t bytes_out = 0;  ///< closed-connection totals
  std::uint64_t framing_errors = 0;
  std::uint64_t timeouts_idle = 0;
  std::uint64_t timeouts_stall = 0;
  std::uint64_t write_overflows = 0;
  std::uint64_t sheds_seen = 0;  ///< kRetryAfter responses observed
  std::uint64_t read_pauses = 0;
  std::uint64_t accept_backoffs = 0;  ///< listener muted on fd/mem exhaustion
  std::uint64_t bans_issued = 0;
};

class TcpServer {
 public:
  TcpServer(FrameHandler& handler, ServerConfig config, ClockFn clock = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind + listen + register with epoll. False on any socket error.
  [[nodiscard]] bool start();
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// One poll iteration: accept, read, dispatch, write, sweep timeouts.
  /// Returns false when the server was never started.
  bool poll_once(int timeout_ms);

  /// Loop poll_once until stop(). Run from exactly one thread.
  void run();
  /// Thread-safe: request run() to return (wakes a blocking poll).
  void stop();

  [[nodiscard]] NetStatsSnapshot stats() const;
  [[nodiscard]] BanList& bans() noexcept { return bans_; }
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Fold the net counters into the gateway's stats JSON (gauge slots,
  /// same pattern as the store/cache metrics).
  void fold_into(gateway::Gateway& gw) const;

 private:
  void handle_accepts(std::uint64_t now_ms);
  void handle_event(std::uint64_t tag, std::uint32_t events, std::uint64_t now_ms,
                    std::vector<std::pair<std::uint64_t, std::vector<Bytes>>>& batches);
  void dispatch(std::vector<std::pair<std::uint64_t, std::vector<Bytes>>>& batches,
                std::uint64_t now_ms);
  void sweep_timeouts(std::uint64_t now_ms);
  void update_interest(std::uint64_t tag, Connection& conn, std::uint64_t now_ms);
  void close_connection(std::uint64_t tag);

  FrameHandler& handler_;
  ServerConfig config_;
  ClockFn clock_;
  EventLoop loop_;
  BanList bans_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_tag_ = 1;  ///< 0 is the listener's tag
  /// Non-zero while the listener is muted after an fd-exhaustion accept
  /// failure; poll_once re-arms it once the deadline passes.
  std::uint64_t accept_paused_until_ms_ = 0;

  struct Entry {
    std::unique_ptr<Connection> conn;
    std::uint32_t interest = 0;  ///< last mask handed to epoll
    /// A framing error queues its kError response only after the
    /// responses to frames that completed before it (parity with direct
    /// serve order), so it is parked here until dispatch.
    bool error_pending = false;
    std::uint64_t error_rid = 0;
    bool eof_pending = false;
  };
  /// Ordered map: dispatch iterates connections in accept order, which
  /// (with in-order frames per connection) makes response order — and so
  /// the parity tests — deterministic.
  std::map<std::uint64_t, Entry> conns_;

  std::atomic<bool> stop_{false};
  std::vector<EventLoop::Ready> ready_;

  // Counters (loop thread writes, any thread reads).
  std::atomic<std::uint64_t> accepted_{0}, refused_banned_{0}, refused_full_{0};
  std::atomic<std::uint64_t> active_{0}, disconnects_{0};
  std::atomic<std::uint64_t> frames_in_{0}, responses_out_{0};
  std::atomic<std::uint64_t> bytes_in_{0}, bytes_out_{0};
  std::atomic<std::uint64_t> framing_errors_{0};
  std::atomic<std::uint64_t> timeouts_idle_{0}, timeouts_stall_{0};
  std::atomic<std::uint64_t> write_overflows_{0};
  std::atomic<std::uint64_t> sheds_seen_{0}, read_pauses_{0};
  std::atomic<std::uint64_t> accept_backoffs_{0};
};

}  // namespace btcfast::net
