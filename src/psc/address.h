// PSC-chain account addresses (Ethereum-style 20-byte identifiers).
#pragma once

#include <compare>
#include <string>

#include "common/bytes.h"
#include "common/hex.h"
#include "crypto/ripemd160.h"

namespace btcfast::psc {

struct Address {
  ByteArray<20> bytes{};

  [[nodiscard]] static Address from_pubkey(ByteSpan compressed33) noexcept {
    Address a;
    a.bytes = crypto::hash160(compressed33);
    return a;
  }

  /// Deterministic address from a human label (test/simulator accounts).
  [[nodiscard]] static Address from_label(const std::string& label) noexcept {
    Address a;
    a.bytes = crypto::hash160(as_bytes(label));
    return a;
  }

  [[nodiscard]] bool is_zero() const noexcept {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }

  [[nodiscard]] std::string to_string() const {
    return "0x" + to_hex({bytes.data(), bytes.size()});
  }

  [[nodiscard]] auto operator<=>(const Address& o) const noexcept = default;
};

struct AddressHasher {
  [[nodiscard]] std::size_t operator()(const Address& a) const noexcept {
    std::size_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | a.bytes[static_cast<std::size_t>(i)];
    return v;
  }
};

}  // namespace btcfast::psc
