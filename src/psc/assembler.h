// A tiny structured assembler for VM bytecode: push helpers, labels with
// forward-reference fixups, and method-dispatch scaffolding. Keeps test
// and example contracts readable.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "psc/vm.h"

namespace btcfast::psc {

class Assembler {
 public:
  Assembler& op(Op o) {
    code_.push_back(static_cast<std::uint8_t>(o));
    return *this;
  }

  /// PUSHn with minimal width for the value.
  Assembler& push(const crypto::U256& v) {
    const auto be = v.to_be_bytes();
    std::size_t first = 0;
    while (first < 31 && be[first] == 0) ++first;
    const std::size_t n = 32 - first;
    code_.push_back(static_cast<std::uint8_t>(static_cast<std::uint8_t>(Op::kPush1) + n - 1));
    for (std::size_t i = first; i < 32; ++i) code_.push_back(be[i]);
    return *this;
  }
  Assembler& push(std::uint64_t v) { return push(crypto::U256(v)); }

  /// Define a label at the current position (emits JUMPDEST).
  Assembler& label(const std::string& name) {
    labels_[name] = code_.size();
    return op(Op::kJumpDest);
  }

  /// Push a label's address (2-byte fixup; resolved in assemble()).
  Assembler& push_label(const std::string& name) {
    code_.push_back(static_cast<std::uint8_t>(Op::kPush1) + 1);  // PUSH2
    fixups_.emplace_back(code_.size(), name);
    code_.push_back(0);
    code_.push_back(0);
    return *this;
  }

  Assembler& jump_to(const std::string& name) { return push_label(name).op(Op::kJump); }
  /// Consumes the condition already on the stack.
  Assembler& jump_if_to(const std::string& name) { return push_label(name).op(Op::kJumpI); }

  /// if (selector == method) goto label — expects nothing on the stack;
  /// loads calldata word 0 and shifts down to the 4-byte selector.
  Assembler& dispatch(const std::string& method, const std::string& label) {
    push(0);
    op(Op::kCallDataLoad);
    push(224);
    op(Op::kShr);  // top = selector
    push(method_selector(method));
    op(Op::kEq);
    return jump_if_to(label);
  }

  /// Stores the value on top of the stack at memory[mem_offset] and
  /// RETURNs those 32 bytes. Stack effect: [value] -> halt.
  Assembler& return_word(std::uint64_t mem_offset = 0) {
    push(mem_offset).op(Op::kMStore);          // MSTORE pops (offset, value)
    return push(32).push(mem_offset).op(Op::kReturn);  // RETURN pops (offset, len)
  }

  [[nodiscard]] Bytes assemble() const {
    Bytes out = code_;
    for (const auto& [pos, name] : fixups_) {
      const auto it = labels_.find(name);
      const std::size_t dest = it == labels_.end() ? 0 : it->second;
      out[pos] = static_cast<std::uint8_t>(dest >> 8);
      out[pos + 1] = static_cast<std::uint8_t>(dest & 0xff);
    }
    return out;
  }

 private:
  Bytes code_;
  std::unordered_map<std::string, std::size_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;
};

}  // namespace btcfast::psc
