#include "psc/chain.h"

namespace btcfast::psc {

PscChain::PscChain() : PscChain(Config{}) {}

PscChain::PscChain(Config config) : config_(config) {}

Address PscChain::deploy(const std::string& name, std::unique_ptr<Contract> contract) {
  const Address addr = Address::from_label("psc/contract/" + name);
  contracts_[addr] = std::move(contract);
  return addr;
}

std::uint64_t PscChain::submit(const PscTx& tx) {
  const std::uint64_t id = receipts_.size() + pending_.size();
  pending_.emplace_back(id, tx);
  return id;
}

void PscChain::produce_block(std::uint64_t time_ms) {
  ++block_number_;
  last_block_time_ms_ = time_ms;
  auto batch = std::move(pending_);
  pending_.clear();
  for (auto& [id, tx] : batch) {
    Receipt r = execute_tx(tx, id, state_, &all_logs_);
    total_gas_used_ += r.gas_used;
    receipts_.push_back(std::move(r));
  }
}

Receipt PscChain::execute_now(const PscTx& tx, std::uint64_t time_ms) {
  const std::uint64_t id = submit(tx);
  produce_block(time_ms);
  return receipts_.at(id);
}

Receipt PscChain::view_call(const PscTx& tx) const {
  WorldState scratch = state_;  // copy; views never commit
  // const_cast-free: execute against the scratch with a non-recording
  // logger via a local copy of *this's contract table (shared_ptr'd).
  PscChain* self = const_cast<PscChain*>(this);
  return self->execute_tx(tx, /*tx_id=*/~0ULL, scratch, nullptr);
}

Receipt PscChain::execute_tx(const PscTx& tx, std::uint64_t tx_id, WorldState& state,
                             std::vector<LogEvent>* log_sink) {
  Receipt r;
  r.tx_id = tx_id;
  r.block_number = block_number_;

  GasMeter meter(tx.gas_limit, config_.schedule);
  std::vector<LogEvent> logs;

  // Intrinsic gas.
  const Gas intrinsic =
      config_.schedule.tx_base +
      config_.schedule.tx_data_byte * static_cast<Gas>(tx.args.size() + tx.method.size());
  if (intrinsic > tx.gas_limit) {
    r.revert_reason = "intrinsic gas exceeds limit";
    r.gas_used = tx.gas_limit;
    return r;
  }

  // Up-front affordability: value + worst-case fee (EVM semantics).
  const Value max_fee = static_cast<Value>(tx.gas_limit) * tx.gas_price;
  if (state.balance(tx.from) < tx.value + max_fee) {
    r.revert_reason = "insufficient balance for value + gas";
    r.gas_used = 0;
    return r;
  }

  // Revert point: an undo journal of touched entries, not a deep copy of
  // the world — copying scales with total accounts × storage and melts
  // down under a mass-dispute storm, while the journal scales with the
  // handful of entries one transaction touches.
  state.journal_begin();
  bool success = true;
  std::string reason;
  Bytes ret;

  try {
    meter.charge(intrinsic);
    // Value moves first (visible to the callee).
    (void)state.sub_balance(tx.from, tx.value);
    state.add_balance(tx.to, tx.value);

    if (!tx.method.empty()) {
      auto it = contracts_.find(tx.to);
      if (it == contracts_.end()) {
        success = false;
        reason = "no contract at " + tx.to.to_string();
      } else {
        HostContext host(state, meter, tx.to, tx.from, tx.value, block_number_,
                         last_block_time_ms_, logs);
        const Status s = it->second->call(host, tx.method, tx.args, &ret);
        if (!s.ok()) {
          success = false;
          reason = s.error().to_string();
        }
      }
    }
  } catch (const OutOfGas&) {
    success = false;
    reason = "out of gas";
  }

  if (!success) {
    state.journal_revert();  // revert value transfer and all contract effects
    logs.clear();
    ret.clear();
  } else {
    state.journal_commit();
  }

  // Fee is charged even on revert; gas burnt goes to the sink.
  const Gas gas_used = success ? meter.used() : (reason == "out of gas" ? tx.gas_limit : meter.used());
  const Value fee = static_cast<Value>(gas_used) * tx.gas_price;
  (void)state.sub_balance(tx.from, fee);
  state.add_balance(fee_sink_, fee);
  state.bump_nonce(tx.from);

  r.success = success;
  r.revert_reason = reason;
  r.gas_used = gas_used;
  r.return_data = std::move(ret);
  r.logs = logs;
  if (log_sink != nullptr) {
    for (auto& log : logs) log_sink->push_back(log);
  }
  return r;
}

}  // namespace btcfast::psc
