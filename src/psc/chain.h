// The PSC (programmable-smart-contract) chain: account state, contract
// registry, transaction execution with gas accounting and receipts, and
// interval block production. Stands in for Ethereum/EOS in the BTCFast
// deployment (DESIGN.md §4 records the substitution).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "psc/host.h"

namespace btcfast::psc {

/// A transaction on the PSC chain. Empty `method` means a plain value
/// transfer; otherwise a contract call.
struct PscTx {
  Address from{};
  Address to{};
  Value value = 0;
  Gas gas_limit = 2'000'000;
  Value gas_price = 1;
  std::string method;
  Bytes args;
};

struct Receipt {
  std::uint64_t tx_id = 0;
  bool success = false;
  std::string revert_reason;
  Gas gas_used = 0;
  Bytes return_data;
  std::vector<LogEvent> logs;
  std::uint64_t block_number = 0;
};

class PscChain {
 public:
  struct Config {
    GasSchedule schedule = GasSchedule::istanbul();
    std::uint64_t block_interval_ms = 13'000;  ///< Ethereum-like default
  };

  PscChain();
  explicit PscChain(Config config);

  /// Register a contract at a deterministic address derived from `name`.
  /// Deployment gas (schedule.contract_deploy) is reported via the
  /// returned receipt-like cost but not charged to anyone at genesis.
  Address deploy(const std::string& name, std::unique_ptr<Contract> contract);

  /// Test/benchmark faucet.
  void mint(const Address& account, Value amount) {
    state_.add_balance(account, amount);
    total_minted_ += amount;
  }

  /// Sum of all mint() calls ever. Execution only moves value between
  /// accounts (fees land in the fee sink), so
  /// state().total_balance() == total_minted() is a global invariant.
  [[nodiscard]] Value total_minted() const noexcept { return total_minted_; }

  /// Queue a transaction for the next block; returns its id.
  std::uint64_t submit(const PscTx& tx);

  /// Produce a block at the given simulated time: executes every queued
  /// transaction in order.
  void produce_block(std::uint64_t time_ms);

  /// Convenience for tests: submit + produce a block immediately.
  Receipt execute_now(const PscTx& tx, std::uint64_t time_ms);

  /// Read-only call against a scratch copy of the state (free, like
  /// eth_call). Returns the receipt (gas_used reflects what it *would*
  /// cost); world state is untouched.
  [[nodiscard]] Receipt view_call(const PscTx& tx) const;

  [[nodiscard]] const Receipt& receipt(std::uint64_t tx_id) const { return receipts_.at(tx_id); }
  [[nodiscard]] bool has_receipt(std::uint64_t tx_id) const { return tx_id < receipts_.size(); }

  [[nodiscard]] WorldState& state() noexcept { return state_; }
  [[nodiscard]] const WorldState& state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t block_number() const noexcept { return block_number_; }
  [[nodiscard]] std::uint64_t last_block_time_ms() const noexcept { return last_block_time_ms_; }
  [[nodiscard]] std::uint64_t block_interval_ms() const noexcept {
    return config_.block_interval_ms;
  }
  [[nodiscard]] const GasSchedule& schedule() const noexcept { return config_.schedule; }
  [[nodiscard]] std::size_t pending_txs() const noexcept { return pending_.size(); }

  /// Look up a deployed contract by address (nullptr if none). Lets
  /// out-of-band infrastructure (e.g. the dispute storm engine) attach
  /// execution hooks to a contract instance it did not deploy itself.
  [[nodiscard]] Contract* contract(const Address& addr) const {
    const auto it = contracts_.find(addr);
    return it == contracts_.end() ? nullptr : it->second.get();
  }

  /// All logs emitted so far (search by topic in tests).
  [[nodiscard]] const std::vector<LogEvent>& logs() const noexcept { return all_logs_; }

  /// Total gas burnt across all transactions (fee accounting for E4).
  [[nodiscard]] Gas total_gas_used() const noexcept { return total_gas_used_; }

 private:
  Receipt execute_tx(const PscTx& tx, std::uint64_t tx_id, WorldState& state,
                     std::vector<LogEvent>* log_sink);

  Config config_;
  WorldState state_;
  std::unordered_map<Address, std::shared_ptr<Contract>, AddressHasher> contracts_;
  std::vector<std::pair<std::uint64_t, PscTx>> pending_;
  std::vector<Receipt> receipts_;
  std::vector<LogEvent> all_logs_;
  std::uint64_t block_number_ = 0;
  std::uint64_t last_block_time_ms_ = 0;
  Gas total_gas_used_ = 0;
  Value total_minted_ = 0;
  Address fee_sink_ = Address::from_label("psc/fee-sink");
};

}  // namespace btcfast::psc
