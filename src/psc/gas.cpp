#include "psc/gas.h"

namespace btcfast::psc {

const GasSchedule& GasSchedule::istanbul() noexcept {
  static const GasSchedule schedule{};
  return schedule;
}

}  // namespace btcfast::psc
