// Gas accounting. Native-code contracts run over a metered host
// interface; every host operation charges the cost the equivalent EVM
// operation would (Istanbul schedule), so fee results in E4/E5 carry over
// to a real Ethereum deployment within constant factors. See DESIGN.md §4.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace btcfast::psc {

using Gas = std::uint64_t;

/// Istanbul-derived cost table.
struct GasSchedule {
  Gas tx_base = 21'000;
  Gas tx_data_byte = 16;          ///< calldata, nonzero byte (we charge flat)
  Gas contract_deploy = 200'000;  ///< stand-in for CREATE + code deposit
  Gas sload = 800;
  Gas sstore_set = 20'000;        ///< zero -> nonzero
  Gas sstore_reset = 5'000;       ///< nonzero -> nonzero (or -> zero)
  Gas sha256_base = 60;
  Gas sha256_word = 12;           ///< per 32-byte word
  Gas ecdsa_verify = 3'000;       ///< ecrecover-equivalent
  Gas log_base = 375;
  Gas log_topic = 375;
  Gas log_data_byte = 8;
  Gas value_transfer = 9'000;     ///< CALL with value
  Gas memory_byte = 3;            ///< per byte of scratch copied
  Gas compute_step = 1;           ///< generic per-unit compute charge

  [[nodiscard]] static const GasSchedule& istanbul() noexcept;
};

/// Thrown when a call exhausts its gas allowance; the chain converts this
/// into a failed receipt that still charges the limit.
class OutOfGas : public std::runtime_error {
 public:
  OutOfGas() : std::runtime_error("out of gas") {}
};

/// Tracks gas within one transaction.
class GasMeter {
 public:
  GasMeter(Gas limit, const GasSchedule& schedule) noexcept
      : limit_(limit), schedule_(&schedule) {}

  /// Charge raw units; throws OutOfGas when the limit is exceeded.
  void charge(Gas amount) {
    used_ += amount;
    if (used_ > limit_) throw OutOfGas();
  }

  void charge_sha256(std::size_t input_len) {
    const Gas words = static_cast<Gas>((input_len + 31) / 32);
    charge(schedule_->sha256_base + schedule_->sha256_word * words);
  }

  [[nodiscard]] Gas used() const noexcept { return used_; }
  [[nodiscard]] Gas limit() const noexcept { return limit_; }
  [[nodiscard]] Gas remaining() const noexcept { return limit_ - used_; }
  [[nodiscard]] const GasSchedule& schedule() const noexcept { return *schedule_; }

 private:
  Gas used_ = 0;
  Gas limit_;
  const GasSchedule* schedule_;
};

}  // namespace btcfast::psc
