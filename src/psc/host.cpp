#include "psc/host.h"

#include "crypto/ecdsa.h"
#include "crypto/sigcache.h"

namespace btcfast::psc {

Slot HostContext::sload(const Slot& key) {
  meter_.charge(meter_.schedule().sload);
  return state_.storage_load(self_, key);
}

void HostContext::sstore(const Slot& key, const Slot& value) {
  // Peek the current value to price the store (free peek mirrors the EVM,
  // which prices SSTORE by transition).
  const Slot current = state_.storage_load(self_, key);
  const bool set = current.is_zero() && !value.is_zero();
  meter_.charge(set ? meter_.schedule().sstore_set : meter_.schedule().sstore_reset);
  (void)state_.storage_store(self_, key, value);
}

crypto::Sha256Digest HostContext::sha256(ByteSpan data) {
  meter_.charge_sha256(data.size());
  return crypto::sha256(data);
}

crypto::Sha256Digest HostContext::sha256d(ByteSpan data) {
  meter_.charge_sha256(data.size());
  meter_.charge_sha256(32);
  return crypto::sha256d(data);
}

bool HostContext::ecdsa_verify(ByteSpan pubkey33, const crypto::Sha256Digest& digest,
                               ByteSpan signature64) {
  // Gas is charged before (and independently of) the signature cache, so
  // contract execution costs are identical whether the triple is cached.
  meter_.charge(meter_.schedule().ecdsa_verify);
  return crypto::ecdsa_verify_cached(&crypto::SigCache::global(), pubkey33, digest, signature64);
}

bool HostContext::transfer_out(const Address& to, Value amount) {
  meter_.charge(meter_.schedule().value_transfer);
  if (!state_.sub_balance(self_, amount)) return false;
  state_.add_balance(to, amount);
  return true;
}

void HostContext::emit_log(std::string topic, Bytes data) {
  meter_.charge(meter_.schedule().log_base + meter_.schedule().log_topic +
                meter_.schedule().log_data_byte * static_cast<Gas>(data.size()));
  logs_.push_back(LogEvent{self_, std::move(topic), std::move(data)});
}

}  // namespace btcfast::psc
