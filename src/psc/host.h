// The metered host interface contracts execute against. Every operation
// charges its EVM-equivalent gas before touching state, so a contract
// cannot observe or mutate anything for free.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/sha256.h"
#include "crypto/uint256.h"
#include "psc/address.h"
#include "psc/gas.h"
#include "psc/state.h"

namespace btcfast::psc {

/// An emitted event (EVM log analogue).
struct LogEvent {
  Address contract{};
  std::string topic;
  Bytes data;
};

/// Per-call execution context handed to a contract method.
class HostContext {
 public:
  HostContext(WorldState& state, GasMeter& meter, Address self, Address caller, Value value,
              std::uint64_t block_number, std::uint64_t block_time_ms,
              std::vector<LogEvent>& logs) noexcept
      : state_(state),
        meter_(meter),
        self_(self),
        caller_(caller),
        value_(value),
        block_number_(block_number),
        block_time_ms_(block_time_ms),
        logs_(logs) {}

  // --- environment (free, like CALLER/CALLVALUE/TIMESTAMP) ---
  [[nodiscard]] const Address& self() const noexcept { return self_; }
  [[nodiscard]] const Address& caller() const noexcept { return caller_; }
  [[nodiscard]] Value call_value() const noexcept { return value_; }
  [[nodiscard]] std::uint64_t block_number() const noexcept { return block_number_; }
  /// Simulated wall-clock milliseconds (EVM exposes seconds; ms keeps the
  /// simulator's resolution).
  [[nodiscard]] std::uint64_t block_time_ms() const noexcept { return block_time_ms_; }

  // --- metered state access ---
  [[nodiscard]] Slot sload(const Slot& key);
  void sstore(const Slot& key, const Slot& value);

  // --- metered crypto ---
  [[nodiscard]] crypto::Sha256Digest sha256(ByteSpan data);
  [[nodiscard]] crypto::Sha256Digest sha256d(ByteSpan data);
  /// ecrecover-equivalent: verify a compact secp256k1 signature.
  [[nodiscard]] bool ecdsa_verify(ByteSpan pubkey33, const crypto::Sha256Digest& digest,
                                  ByteSpan signature64);

  // --- value movement ---
  /// Pay out of the contract's balance; charges CALL-with-value gas.
  /// Returns false (no state change) if the contract balance is short.
  [[nodiscard]] bool transfer_out(const Address& to, Value amount);
  [[nodiscard]] Value self_balance() const { return state_.balance(self_); }

  // --- events & compute ---
  void emit_log(std::string topic, Bytes data = {});
  /// Charge n abstract compute steps (loops over calldata etc.).
  void charge_compute(Gas n) { meter_.charge(n * meter_.schedule().compute_step); }
  void charge_memory(std::size_t bytes_copied) {
    meter_.charge(static_cast<Gas>(bytes_copied) * meter_.schedule().memory_byte);
  }

  [[nodiscard]] GasMeter& meter() noexcept { return meter_; }

 private:
  WorldState& state_;
  GasMeter& meter_;
  Address self_;
  Address caller_;
  Value value_;
  std::uint64_t block_number_;
  std::uint64_t block_time_ms_;
  std::vector<LogEvent>& logs_;
};

/// Contract interface. Implementations are stateless objects; all state
/// lives in WorldState storage slots, accessed through the host.
class Contract {
 public:
  virtual ~Contract() = default;

  /// Handle a method call. Returning a non-ok Status reverts the call's
  /// value transfer (the chain handles unwinding) and records the reason.
  [[nodiscard]] virtual Status call(HostContext& host, const std::string& method,
                                    ByteSpan args, Bytes* ret) = 0;
};

}  // namespace btcfast::psc
