#include "psc/state.h"

namespace btcfast::psc {

Value WorldState::balance(const Address& a) const {
  auto it = accounts_.find(a);
  return it == accounts_.end() ? 0 : it->second.balance;
}

std::uint64_t WorldState::nonce(const Address& a) const {
  auto it = accounts_.find(a);
  return it == accounts_.end() ? 0 : it->second.nonce;
}

bool WorldState::sub_balance(const Address& a, Value v) {
  auto it = accounts_.find(a);
  if (it == accounts_.end() || it->second.balance < v) return false;
  it->second.balance -= v;
  return true;
}

Value WorldState::total_balance() const noexcept {
  Value total = 0;
  for (const auto& [addr, account] : accounts_) total += account.balance;
  return total;
}

Slot WorldState::storage_load(const Address& contract, const Slot& key) const {
  auto cit = storage_.find(contract);
  if (cit == storage_.end()) return Slot{};
  auto sit = cit->second.find(key);
  return sit == cit->second.end() ? Slot{} : sit->second;
}

bool WorldState::storage_store(const Address& contract, const Slot& key, const Slot& value) {
  Storage& store = storage_[contract];
  auto it = store.find(key);
  const bool was_zero = (it == store.end()) || it->second.is_zero();
  if (value.is_zero()) {
    if (it != store.end()) store.erase(it);
  } else {
    store[key] = value;
  }
  return was_zero && !value.is_zero();
}

}  // namespace btcfast::psc
