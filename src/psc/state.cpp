#include "psc/state.h"

namespace btcfast::psc {

Value WorldState::balance(const Address& a) const {
  auto it = accounts_.find(a);
  return it == accounts_.end() ? 0 : it->second.balance;
}

std::uint64_t WorldState::nonce(const Address& a) const {
  auto it = accounts_.find(a);
  return it == accounts_.end() ? 0 : it->second.nonce;
}

bool WorldState::sub_balance(const Address& a, Value v) {
  auto it = accounts_.find(a);
  if (it == accounts_.end() || it->second.balance < v) return false;
  note_account(a);
  it->second.balance -= v;
  return true;
}

void WorldState::note_account(const Address& a) {
  if (!journaling_) return;
  Undo u;
  u.kind = Undo::Kind::kAccount;
  u.addr = a;
  const auto it = accounts_.find(a);
  u.existed = it != accounts_.end();
  if (u.existed) u.account = it->second;
  journal_.push_back(std::move(u));
}

void WorldState::note_slot(const Address& contract, const Slot& key) {
  if (!journaling_) return;
  Undo u;
  u.kind = Undo::Kind::kSlot;
  u.addr = contract;
  u.key = key;
  u.existed = false;
  const auto cit = storage_.find(contract);
  if (cit != storage_.end()) {
    const auto sit = cit->second.find(key);
    if (sit != cit->second.end()) {
      u.existed = true;
      u.value = sit->second;
    }
  }
  journal_.push_back(std::move(u));
}

void WorldState::journal_begin() {
  journal_.clear();
  journaling_ = true;
}

void WorldState::journal_commit() noexcept {
  journaling_ = false;
  journal_.clear();
}

void WorldState::journal_revert() {
  journaling_ = false;
  // Reverse order: when a transaction touched the same entry repeatedly,
  // the oldest record is applied last and wins, restoring the pre-image
  // from journal_begin().
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    if (it->kind == Undo::Kind::kAccount) {
      if (it->existed) {
        accounts_[it->addr] = it->account;
      } else {
        accounts_.erase(it->addr);
      }
    } else {
      Storage& store = storage_[it->addr];
      if (it->existed) {
        store[it->key] = it->value;
      } else {
        store.erase(it->key);
      }
    }
  }
  journal_.clear();
}

Value WorldState::total_balance() const noexcept {
  Value total = 0;
  for (const auto& [addr, account] : accounts_) total += account.balance;
  return total;
}

Slot WorldState::storage_load(const Address& contract, const Slot& key) const {
  auto cit = storage_.find(contract);
  if (cit == storage_.end()) return Slot{};
  auto sit = cit->second.find(key);
  return sit == cit->second.end() ? Slot{} : sit->second;
}

bool WorldState::storage_store(const Address& contract, const Slot& key, const Slot& value) {
  note_slot(contract, key);
  Storage& store = storage_[contract];
  auto it = store.find(key);
  const bool was_zero = (it == store.end()) || it->second.is_zero();
  if (value.is_zero()) {
    if (it != store.end()) store.erase(it);
  } else {
    store[key] = value;
  }
  return was_zero && !value.is_zero();
}

}  // namespace btcfast::psc
