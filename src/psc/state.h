// World state of the PSC chain: account balances/nonces plus per-contract
// key-value storage (the EVM storage model, 32-byte keys and values).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "crypto/uint256.h"
#include "psc/address.h"

namespace btcfast::psc {

/// Native token amounts (think gwei; 64 bits is plenty for the simulator).
using Value = std::uint64_t;

struct AccountState {
  Value balance = 0;
  std::uint64_t nonce = 0;
};

/// 32-byte storage slot key/value.
using Slot = crypto::U256;

class WorldState {
 public:
  // --- accounts ---
  [[nodiscard]] Value balance(const Address& a) const;
  [[nodiscard]] std::uint64_t nonce(const Address& a) const;
  void set_balance(const Address& a, Value v) { accounts_[a].balance = v; }
  void add_balance(const Address& a, Value v) { accounts_[a].balance += v; }
  /// Returns false (and leaves state unchanged) on insufficient funds.
  [[nodiscard]] bool sub_balance(const Address& a, Value v);
  void bump_nonce(const Address& a) { ++accounts_[a].nonce; }

  // --- contract storage ---
  [[nodiscard]] Slot storage_load(const Address& contract, const Slot& key) const;
  /// Returns true iff the slot transitioned zero -> nonzero (for gas).
  bool storage_store(const Address& contract, const Slot& key, const Slot& value);

  [[nodiscard]] std::size_t account_count() const noexcept { return accounts_.size(); }

  /// Sum of every account balance. With PscChain::total_minted() this is
  /// the chain-wide value-conservation check: gas fees move to the fee
  /// sink and transfers move between accounts, so the sum must equal the
  /// total ever minted at all times (testkit invariant #1).
  [[nodiscard]] Value total_balance() const noexcept;

 private:
  struct SlotKeyHasher {
    std::size_t operator()(const Slot& s) const noexcept {
      return static_cast<std::size_t>(s.w[0] ^ (s.w[1] * 0x9e3779b97f4a7c15ULL));
    }
  };
  using Storage = std::unordered_map<Slot, Slot, SlotKeyHasher>;

  std::unordered_map<Address, AccountState, AddressHasher> accounts_;
  std::unordered_map<Address, Storage, AddressHasher> storage_;
};

}  // namespace btcfast::psc
