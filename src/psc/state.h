// World state of the PSC chain: account balances/nonces plus per-contract
// key-value storage (the EVM storage model, 32-byte keys and values).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/uint256.h"
#include "psc/address.h"

namespace btcfast::psc {

/// Native token amounts (think gwei; 64 bits is plenty for the simulator).
using Value = std::uint64_t;

struct AccountState {
  Value balance = 0;
  std::uint64_t nonce = 0;
};

/// 32-byte storage slot key/value.
using Slot = crypto::U256;

class WorldState {
 public:
  // --- accounts ---
  [[nodiscard]] Value balance(const Address& a) const;
  [[nodiscard]] std::uint64_t nonce(const Address& a) const;
  void set_balance(const Address& a, Value v) {
    note_account(a);
    accounts_[a].balance = v;
  }
  void add_balance(const Address& a, Value v) {
    note_account(a);
    accounts_[a].balance += v;
  }
  /// Returns false (and leaves state unchanged) on insufficient funds.
  [[nodiscard]] bool sub_balance(const Address& a, Value v);
  void bump_nonce(const Address& a) {
    note_account(a);
    ++accounts_[a].nonce;
  }

  // --- transaction journal ---
  // Cheap revert for transaction execution: instead of deep-copying the
  // whole world (which scales with total accounts × storage — ruinous
  // under a mass-dispute storm), record the pre-image of every account
  // and slot the transaction touches and undo them in reverse order.
  /// Start recording pre-images. Discards any stale journal.
  void journal_begin();
  /// Stop recording and keep all changes.
  void journal_commit() noexcept;
  /// Stop recording and roll every journaled mutation back, restoring the
  /// exact map contents from journal_begin() — entries created since then
  /// are erased, not zeroed.
  void journal_revert();

  // --- contract storage ---
  [[nodiscard]] Slot storage_load(const Address& contract, const Slot& key) const;
  /// Returns true iff the slot transitioned zero -> nonzero (for gas).
  bool storage_store(const Address& contract, const Slot& key, const Slot& value);

  [[nodiscard]] std::size_t account_count() const noexcept { return accounts_.size(); }

  /// Sum of every account balance. With PscChain::total_minted() this is
  /// the chain-wide value-conservation check: gas fees move to the fee
  /// sink and transfers move between accounts, so the sum must equal the
  /// total ever minted at all times (testkit invariant #1).
  [[nodiscard]] Value total_balance() const noexcept;

 private:
  struct SlotKeyHasher {
    std::size_t operator()(const Slot& s) const noexcept {
      return static_cast<std::size_t>(s.w[0] ^ (s.w[1] * 0x9e3779b97f4a7c15ULL));
    }
  };
  using Storage = std::unordered_map<Slot, Slot, SlotKeyHasher>;

  struct Undo {
    enum class Kind : std::uint8_t { kAccount, kSlot };
    Kind kind;
    bool existed;   ///< entry was present before the mutation
    Address addr;   ///< account, or owning contract for kSlot
    AccountState account{};  ///< pre-image (kAccount, existed)
    Slot key{};              ///< slot key (kSlot)
    Slot value{};            ///< pre-image (kSlot, existed)
  };

  void note_account(const Address& a);
  void note_slot(const Address& contract, const Slot& key);

  std::unordered_map<Address, AccountState, AddressHasher> accounts_;
  std::unordered_map<Address, Storage, AddressHasher> storage_;
  std::vector<Undo> journal_;
  bool journaling_ = false;
};

}  // namespace btcfast::psc
